file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_outlier_bitrate.dir/bench_fig4_outlier_bitrate.cpp.o"
  "CMakeFiles/bench_fig4_outlier_bitrate.dir/bench_fig4_outlier_bitrate.cpp.o.d"
  "bench_fig4_outlier_bitrate"
  "bench_fig4_outlier_bitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_outlier_bitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
