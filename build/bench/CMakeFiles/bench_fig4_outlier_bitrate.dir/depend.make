# Empty dependencies file for bench_fig4_outlier_bitrate.
# This may be replaced when dependencies are built.
