
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_q_sweep.cpp" "bench/CMakeFiles/bench_fig3_q_sweep.dir/bench_fig3_q_sweep.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_q_sweep.dir/bench_fig3_q_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sperr/CMakeFiles/sperr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/speck/CMakeFiles/sperr_speck.dir/DependInfo.cmake"
  "/root/repo/build/src/outlier/CMakeFiles/sperr_outlier.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/sperr_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/lossless/CMakeFiles/sperr_lossless.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sperr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sperr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sperr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/szlike/CMakeFiles/sperr_szlike.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/zfplike/CMakeFiles/sperr_zfplike.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/tthreshlike/CMakeFiles/sperr_tthreshlike.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/mgardlike/CMakeFiles/sperr_mgardlike.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
