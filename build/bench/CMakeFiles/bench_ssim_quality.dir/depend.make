# Empty dependencies file for bench_ssim_quality.
# This may be replaced when dependencies are built.
