file(REMOVE_RECURSE
  "CMakeFiles/bench_ssim_quality.dir/bench_ssim_quality.cpp.o"
  "CMakeFiles/bench_ssim_quality.dir/bench_ssim_quality.cpp.o.d"
  "bench_ssim_quality"
  "bench_ssim_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssim_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
