file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_bitrate_at_tolerance.dir/bench_fig9_bitrate_at_tolerance.cpp.o"
  "CMakeFiles/bench_fig9_bitrate_at_tolerance.dir/bench_fig9_bitrate_at_tolerance.cpp.o.d"
  "bench_fig9_bitrate_at_tolerance"
  "bench_fig9_bitrate_at_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_bitrate_at_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
