# Empty dependencies file for bench_fig9_bitrate_at_tolerance.
# This may be replaced when dependencies are built.
