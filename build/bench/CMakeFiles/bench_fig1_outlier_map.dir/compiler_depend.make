# Empty compiler generated dependencies file for bench_fig1_outlier_map.
# This may be replaced when dependencies are built.
