file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_outlier_vs_sz.dir/bench_fig11_outlier_vs_sz.cpp.o"
  "CMakeFiles/bench_fig11_outlier_vs_sz.dir/bench_fig11_outlier_vs_sz.cpp.o.d"
  "bench_fig11_outlier_vs_sz"
  "bench_fig11_outlier_vs_sz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_outlier_vs_sz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
