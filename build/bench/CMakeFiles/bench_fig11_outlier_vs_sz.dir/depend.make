# Empty dependencies file for bench_fig11_outlier_vs_sz.
# This may be replaced when dependencies are built.
