# Empty compiler generated dependencies file for test_zfplike.
# This may be replaced when dependencies are built.
