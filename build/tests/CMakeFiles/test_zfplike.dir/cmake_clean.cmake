file(REMOVE_RECURSE
  "CMakeFiles/test_zfplike.dir/test_zfplike.cpp.o"
  "CMakeFiles/test_zfplike.dir/test_zfplike.cpp.o.d"
  "test_zfplike"
  "test_zfplike.pdb"
  "test_zfplike[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zfplike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
