# Empty dependencies file for test_outlier.
# This may be replaced when dependencies are built.
