file(REMOVE_RECURSE
  "CMakeFiles/test_wavelet.dir/test_cdf97.cpp.o"
  "CMakeFiles/test_wavelet.dir/test_cdf97.cpp.o.d"
  "CMakeFiles/test_wavelet.dir/test_dwt.cpp.o"
  "CMakeFiles/test_wavelet.dir/test_dwt.cpp.o.d"
  "CMakeFiles/test_wavelet.dir/test_kernels.cpp.o"
  "CMakeFiles/test_wavelet.dir/test_kernels.cpp.o.d"
  "test_wavelet"
  "test_wavelet.pdb"
  "test_wavelet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
