file(REMOVE_RECURSE
  "CMakeFiles/test_speck.dir/test_raw_bitplane.cpp.o"
  "CMakeFiles/test_speck.dir/test_raw_bitplane.cpp.o.d"
  "CMakeFiles/test_speck.dir/test_speck.cpp.o"
  "CMakeFiles/test_speck.dir/test_speck.cpp.o.d"
  "test_speck"
  "test_speck.pdb"
  "test_speck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
