# Empty compiler generated dependencies file for test_sperr.
# This may be replaced when dependencies are built.
