
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_archive.cpp" "tests/CMakeFiles/test_sperr.dir/test_archive.cpp.o" "gcc" "tests/CMakeFiles/test_sperr.dir/test_archive.cpp.o.d"
  "/root/repo/tests/test_chunker.cpp" "tests/CMakeFiles/test_sperr.dir/test_chunker.cpp.o" "gcc" "tests/CMakeFiles/test_sperr.dir/test_chunker.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/test_sperr.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_sperr.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_header.cpp" "tests/CMakeFiles/test_sperr.dir/test_header.cpp.o" "gcc" "tests/CMakeFiles/test_sperr.dir/test_header.cpp.o.d"
  "/root/repo/tests/test_outofcore.cpp" "tests/CMakeFiles/test_sperr.dir/test_outofcore.cpp.o" "gcc" "tests/CMakeFiles/test_sperr.dir/test_outofcore.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/test_sperr.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_sperr.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_sperr_properties.cpp" "tests/CMakeFiles/test_sperr.dir/test_sperr_properties.cpp.o" "gcc" "tests/CMakeFiles/test_sperr.dir/test_sperr_properties.cpp.o.d"
  "/root/repo/tests/test_sperr_roundtrip.cpp" "tests/CMakeFiles/test_sperr.dir/test_sperr_roundtrip.cpp.o" "gcc" "tests/CMakeFiles/test_sperr.dir/test_sperr_roundtrip.cpp.o.d"
  "/root/repo/tests/test_truncate.cpp" "tests/CMakeFiles/test_sperr.dir/test_truncate.cpp.o" "gcc" "tests/CMakeFiles/test_sperr.dir/test_truncate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sperr/CMakeFiles/sperr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/speck/CMakeFiles/sperr_speck.dir/DependInfo.cmake"
  "/root/repo/build/src/outlier/CMakeFiles/sperr_outlier.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/sperr_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/lossless/CMakeFiles/sperr_lossless.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sperr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sperr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sperr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
