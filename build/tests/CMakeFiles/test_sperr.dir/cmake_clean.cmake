file(REMOVE_RECURSE
  "CMakeFiles/test_sperr.dir/test_archive.cpp.o"
  "CMakeFiles/test_sperr.dir/test_archive.cpp.o.d"
  "CMakeFiles/test_sperr.dir/test_chunker.cpp.o"
  "CMakeFiles/test_sperr.dir/test_chunker.cpp.o.d"
  "CMakeFiles/test_sperr.dir/test_extensions.cpp.o"
  "CMakeFiles/test_sperr.dir/test_extensions.cpp.o.d"
  "CMakeFiles/test_sperr.dir/test_header.cpp.o"
  "CMakeFiles/test_sperr.dir/test_header.cpp.o.d"
  "CMakeFiles/test_sperr.dir/test_outofcore.cpp.o"
  "CMakeFiles/test_sperr.dir/test_outofcore.cpp.o.d"
  "CMakeFiles/test_sperr.dir/test_pipeline.cpp.o"
  "CMakeFiles/test_sperr.dir/test_pipeline.cpp.o.d"
  "CMakeFiles/test_sperr.dir/test_sperr_properties.cpp.o"
  "CMakeFiles/test_sperr.dir/test_sperr_properties.cpp.o.d"
  "CMakeFiles/test_sperr.dir/test_sperr_roundtrip.cpp.o"
  "CMakeFiles/test_sperr.dir/test_sperr_roundtrip.cpp.o.d"
  "CMakeFiles/test_sperr.dir/test_truncate.cpp.o"
  "CMakeFiles/test_sperr.dir/test_truncate.cpp.o.d"
  "test_sperr"
  "test_sperr.pdb"
  "test_sperr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sperr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
