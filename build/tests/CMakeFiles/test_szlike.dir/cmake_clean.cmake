file(REMOVE_RECURSE
  "CMakeFiles/test_szlike.dir/test_szlike.cpp.o"
  "CMakeFiles/test_szlike.dir/test_szlike.cpp.o.d"
  "test_szlike"
  "test_szlike.pdb"
  "test_szlike[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_szlike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
