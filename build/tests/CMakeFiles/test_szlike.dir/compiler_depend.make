# Empty compiler generated dependencies file for test_szlike.
# This may be replaced when dependencies are built.
