file(REMOVE_RECURSE
  "CMakeFiles/test_tthreshlike.dir/test_tthreshlike.cpp.o"
  "CMakeFiles/test_tthreshlike.dir/test_tthreshlike.cpp.o.d"
  "test_tthreshlike"
  "test_tthreshlike.pdb"
  "test_tthreshlike[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tthreshlike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
