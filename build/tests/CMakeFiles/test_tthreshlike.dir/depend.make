# Empty dependencies file for test_tthreshlike.
# This may be replaced when dependencies are built.
