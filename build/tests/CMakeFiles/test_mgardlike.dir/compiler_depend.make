# Empty compiler generated dependencies file for test_mgardlike.
# This may be replaced when dependencies are built.
