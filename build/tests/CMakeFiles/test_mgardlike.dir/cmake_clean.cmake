file(REMOVE_RECURSE
  "CMakeFiles/test_mgardlike.dir/test_mgardlike.cpp.o"
  "CMakeFiles/test_mgardlike.dir/test_mgardlike.cpp.o.d"
  "test_mgardlike"
  "test_mgardlike.pdb"
  "test_mgardlike[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mgardlike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
