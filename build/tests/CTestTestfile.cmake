# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_lossless[1]_include.cmake")
include("/root/repo/build/tests/test_wavelet[1]_include.cmake")
include("/root/repo/build/tests/test_speck[1]_include.cmake")
include("/root/repo/build/tests/test_outlier[1]_include.cmake")
include("/root/repo/build/tests/test_sperr[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_szlike[1]_include.cmake")
include("/root/repo/build/tests/test_zfplike[1]_include.cmake")
include("/root/repo/build/tests/test_tthreshlike[1]_include.cmake")
include("/root/repo/build/tests/test_mgardlike[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
add_test(cli_make_field "/root/repo/build/tools/make_field" "miranda_pressure" "48" "48" "24" "/root/repo/build/tests/cli_work/field.raw" "--type" "f64")
set_tests_properties(cli_make_field PROPERTIES  FIXTURES_SETUP "cli_field" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_compress_pwe_verify "/root/repo/build/tools/sperr_cc" "c" "/root/repo/build/tests/cli_work/field.raw" "/root/repo/build/tests/cli_work/field.sperr" "--dims" "48" "48" "24" "--type" "f64" "--idx" "20" "--chunk" "32" "32" "32" "--verify")
set_tests_properties(cli_compress_pwe_verify PROPERTIES  FIXTURES_REQUIRED "cli_field" FIXTURES_SETUP "cli_blob" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/sperr_cc" "info" "/root/repo/build/tests/cli_work/field.sperr")
set_tests_properties(cli_info PROPERTIES  FIXTURES_REQUIRED "cli_blob" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;51;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_decompress "/root/repo/build/tools/sperr_cc" "d" "/root/repo/build/tests/cli_work/field.sperr" "/root/repo/build/tests/cli_work/restored.raw")
set_tests_properties(cli_decompress PROPERTIES  FIXTURES_REQUIRED "cli_blob" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;54;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_compress_rate "/root/repo/build/tools/sperr_cc" "c" "/root/repo/build/tests/cli_work/field.raw" "/root/repo/build/tests/cli_work/rate.sperr" "--dims" "48" "48" "24" "--type" "f64" "--bpp" "2.0" "--verify")
set_tests_properties(cli_compress_rate PROPERTIES  FIXTURES_REQUIRED "cli_field" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;58;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_lowres_decompress "/root/repo/build/tools/sperr_cc" "c" "/root/repo/build/tests/cli_work/field.raw" "/root/repo/build/tests/cli_work/one.sperr" "--dims" "48" "48" "24" "--type" "f64" "--idx" "10")
set_tests_properties(cli_lowres_decompress PROPERTIES  FIXTURES_REQUIRED "cli_field" FIXTURES_SETUP "cli_one" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;63;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_lowres_drop "/root/repo/build/tools/sperr_cc" "d" "/root/repo/build/tests/cli_work/one.sperr" "/root/repo/build/tests/cli_work/coarse.raw" "--drop" "1")
set_tests_properties(cli_lowres_drop PROPERTIES  FIXTURES_REQUIRED "cli_one" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;68;add_test;/root/repo/tests/CMakeLists.txt;0;")
