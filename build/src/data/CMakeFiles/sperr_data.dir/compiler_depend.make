# Empty compiler generated dependencies file for sperr_data.
# This may be replaced when dependencies are built.
