file(REMOVE_RECURSE
  "libsperr_data.a"
)
