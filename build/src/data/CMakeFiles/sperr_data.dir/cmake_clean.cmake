file(REMOVE_RECURSE
  "CMakeFiles/sperr_data.dir/spectral.cpp.o"
  "CMakeFiles/sperr_data.dir/spectral.cpp.o.d"
  "CMakeFiles/sperr_data.dir/synthetic.cpp.o"
  "CMakeFiles/sperr_data.dir/synthetic.cpp.o.d"
  "libsperr_data.a"
  "libsperr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
