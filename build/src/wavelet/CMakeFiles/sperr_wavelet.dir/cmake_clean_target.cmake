file(REMOVE_RECURSE
  "libsperr_wavelet.a"
)
