# Empty compiler generated dependencies file for sperr_wavelet.
# This may be replaced when dependencies are built.
