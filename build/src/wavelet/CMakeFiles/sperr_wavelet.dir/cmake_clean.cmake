file(REMOVE_RECURSE
  "CMakeFiles/sperr_wavelet.dir/cdf97.cpp.o"
  "CMakeFiles/sperr_wavelet.dir/cdf97.cpp.o.d"
  "CMakeFiles/sperr_wavelet.dir/dwt.cpp.o"
  "CMakeFiles/sperr_wavelet.dir/dwt.cpp.o.d"
  "CMakeFiles/sperr_wavelet.dir/kernels.cpp.o"
  "CMakeFiles/sperr_wavelet.dir/kernels.cpp.o.d"
  "libsperr_wavelet.a"
  "libsperr_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
