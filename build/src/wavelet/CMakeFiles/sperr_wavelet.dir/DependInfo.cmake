
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wavelet/cdf97.cpp" "src/wavelet/CMakeFiles/sperr_wavelet.dir/cdf97.cpp.o" "gcc" "src/wavelet/CMakeFiles/sperr_wavelet.dir/cdf97.cpp.o.d"
  "/root/repo/src/wavelet/dwt.cpp" "src/wavelet/CMakeFiles/sperr_wavelet.dir/dwt.cpp.o" "gcc" "src/wavelet/CMakeFiles/sperr_wavelet.dir/dwt.cpp.o.d"
  "/root/repo/src/wavelet/kernels.cpp" "src/wavelet/CMakeFiles/sperr_wavelet.dir/kernels.cpp.o" "gcc" "src/wavelet/CMakeFiles/sperr_wavelet.dir/kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sperr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
