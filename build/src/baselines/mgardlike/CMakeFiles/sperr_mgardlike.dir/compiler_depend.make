# Empty compiler generated dependencies file for sperr_mgardlike.
# This may be replaced when dependencies are built.
