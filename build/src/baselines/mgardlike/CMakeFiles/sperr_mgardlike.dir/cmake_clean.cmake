file(REMOVE_RECURSE
  "CMakeFiles/sperr_mgardlike.dir/compressor.cpp.o"
  "CMakeFiles/sperr_mgardlike.dir/compressor.cpp.o.d"
  "libsperr_mgardlike.a"
  "libsperr_mgardlike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_mgardlike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
