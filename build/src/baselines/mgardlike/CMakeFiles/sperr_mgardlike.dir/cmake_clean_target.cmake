file(REMOVE_RECURSE
  "libsperr_mgardlike.a"
)
