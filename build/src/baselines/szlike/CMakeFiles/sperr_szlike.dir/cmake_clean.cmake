file(REMOVE_RECURSE
  "CMakeFiles/sperr_szlike.dir/compressor.cpp.o"
  "CMakeFiles/sperr_szlike.dir/compressor.cpp.o.d"
  "CMakeFiles/sperr_szlike.dir/quant_bins.cpp.o"
  "CMakeFiles/sperr_szlike.dir/quant_bins.cpp.o.d"
  "libsperr_szlike.a"
  "libsperr_szlike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_szlike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
