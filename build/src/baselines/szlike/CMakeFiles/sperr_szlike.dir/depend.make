# Empty dependencies file for sperr_szlike.
# This may be replaced when dependencies are built.
