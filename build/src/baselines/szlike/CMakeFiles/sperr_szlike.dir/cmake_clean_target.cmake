file(REMOVE_RECURSE
  "libsperr_szlike.a"
)
