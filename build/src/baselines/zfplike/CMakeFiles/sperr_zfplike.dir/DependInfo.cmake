
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/zfplike/block_codec.cpp" "src/baselines/zfplike/CMakeFiles/sperr_zfplike.dir/block_codec.cpp.o" "gcc" "src/baselines/zfplike/CMakeFiles/sperr_zfplike.dir/block_codec.cpp.o.d"
  "/root/repo/src/baselines/zfplike/compressor.cpp" "src/baselines/zfplike/CMakeFiles/sperr_zfplike.dir/compressor.cpp.o" "gcc" "src/baselines/zfplike/CMakeFiles/sperr_zfplike.dir/compressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sperr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
