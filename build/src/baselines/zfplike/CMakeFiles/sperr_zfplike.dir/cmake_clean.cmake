file(REMOVE_RECURSE
  "CMakeFiles/sperr_zfplike.dir/block_codec.cpp.o"
  "CMakeFiles/sperr_zfplike.dir/block_codec.cpp.o.d"
  "CMakeFiles/sperr_zfplike.dir/compressor.cpp.o"
  "CMakeFiles/sperr_zfplike.dir/compressor.cpp.o.d"
  "libsperr_zfplike.a"
  "libsperr_zfplike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_zfplike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
