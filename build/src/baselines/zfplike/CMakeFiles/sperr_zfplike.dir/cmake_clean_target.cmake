file(REMOVE_RECURSE
  "libsperr_zfplike.a"
)
