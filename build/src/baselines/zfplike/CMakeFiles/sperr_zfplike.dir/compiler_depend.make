# Empty compiler generated dependencies file for sperr_zfplike.
# This may be replaced when dependencies are built.
