file(REMOVE_RECURSE
  "libsperr_tthreshlike.a"
)
