
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/tthreshlike/compressor.cpp" "src/baselines/tthreshlike/CMakeFiles/sperr_tthreshlike.dir/compressor.cpp.o" "gcc" "src/baselines/tthreshlike/CMakeFiles/sperr_tthreshlike.dir/compressor.cpp.o.d"
  "/root/repo/src/baselines/tthreshlike/linalg.cpp" "src/baselines/tthreshlike/CMakeFiles/sperr_tthreshlike.dir/linalg.cpp.o" "gcc" "src/baselines/tthreshlike/CMakeFiles/sperr_tthreshlike.dir/linalg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sperr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/speck/CMakeFiles/sperr_speck.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
