# Empty dependencies file for sperr_tthreshlike.
# This may be replaced when dependencies are built.
