file(REMOVE_RECURSE
  "CMakeFiles/sperr_tthreshlike.dir/compressor.cpp.o"
  "CMakeFiles/sperr_tthreshlike.dir/compressor.cpp.o.d"
  "CMakeFiles/sperr_tthreshlike.dir/linalg.cpp.o"
  "CMakeFiles/sperr_tthreshlike.dir/linalg.cpp.o.d"
  "libsperr_tthreshlike.a"
  "libsperr_tthreshlike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_tthreshlike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
