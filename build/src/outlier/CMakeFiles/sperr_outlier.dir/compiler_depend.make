# Empty compiler generated dependencies file for sperr_outlier.
# This may be replaced when dependencies are built.
