file(REMOVE_RECURSE
  "libsperr_outlier.a"
)
