file(REMOVE_RECURSE
  "CMakeFiles/sperr_outlier.dir/coder.cpp.o"
  "CMakeFiles/sperr_outlier.dir/coder.cpp.o.d"
  "libsperr_outlier.a"
  "libsperr_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
