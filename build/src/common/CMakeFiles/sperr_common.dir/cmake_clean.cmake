file(REMOVE_RECURSE
  "CMakeFiles/sperr_common.dir/bitstream.cpp.o"
  "CMakeFiles/sperr_common.dir/bitstream.cpp.o.d"
  "CMakeFiles/sperr_common.dir/byteio.cpp.o"
  "CMakeFiles/sperr_common.dir/byteio.cpp.o.d"
  "CMakeFiles/sperr_common.dir/stats.cpp.o"
  "CMakeFiles/sperr_common.dir/stats.cpp.o.d"
  "libsperr_common.a"
  "libsperr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
