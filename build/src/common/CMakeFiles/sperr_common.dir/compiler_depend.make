# Empty compiler generated dependencies file for sperr_common.
# This may be replaced when dependencies are built.
