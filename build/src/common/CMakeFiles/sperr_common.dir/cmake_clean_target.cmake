file(REMOVE_RECURSE
  "libsperr_common.a"
)
