file(REMOVE_RECURSE
  "CMakeFiles/sperr_speck.dir/decoder.cpp.o"
  "CMakeFiles/sperr_speck.dir/decoder.cpp.o.d"
  "CMakeFiles/sperr_speck.dir/encoder.cpp.o"
  "CMakeFiles/sperr_speck.dir/encoder.cpp.o.d"
  "CMakeFiles/sperr_speck.dir/raw_bitplane.cpp.o"
  "CMakeFiles/sperr_speck.dir/raw_bitplane.cpp.o.d"
  "libsperr_speck.a"
  "libsperr_speck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_speck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
