# Empty dependencies file for sperr_speck.
# This may be replaced when dependencies are built.
