
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/speck/decoder.cpp" "src/speck/CMakeFiles/sperr_speck.dir/decoder.cpp.o" "gcc" "src/speck/CMakeFiles/sperr_speck.dir/decoder.cpp.o.d"
  "/root/repo/src/speck/encoder.cpp" "src/speck/CMakeFiles/sperr_speck.dir/encoder.cpp.o" "gcc" "src/speck/CMakeFiles/sperr_speck.dir/encoder.cpp.o.d"
  "/root/repo/src/speck/raw_bitplane.cpp" "src/speck/CMakeFiles/sperr_speck.dir/raw_bitplane.cpp.o" "gcc" "src/speck/CMakeFiles/sperr_speck.dir/raw_bitplane.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sperr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
