file(REMOVE_RECURSE
  "libsperr_speck.a"
)
