file(REMOVE_RECURSE
  "libsperr_lossless.a"
)
