file(REMOVE_RECURSE
  "CMakeFiles/sperr_lossless.dir/codec.cpp.o"
  "CMakeFiles/sperr_lossless.dir/codec.cpp.o.d"
  "CMakeFiles/sperr_lossless.dir/huffman.cpp.o"
  "CMakeFiles/sperr_lossless.dir/huffman.cpp.o.d"
  "CMakeFiles/sperr_lossless.dir/lz77.cpp.o"
  "CMakeFiles/sperr_lossless.dir/lz77.cpp.o.d"
  "libsperr_lossless.a"
  "libsperr_lossless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_lossless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
