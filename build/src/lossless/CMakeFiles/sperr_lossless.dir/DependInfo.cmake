
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lossless/codec.cpp" "src/lossless/CMakeFiles/sperr_lossless.dir/codec.cpp.o" "gcc" "src/lossless/CMakeFiles/sperr_lossless.dir/codec.cpp.o.d"
  "/root/repo/src/lossless/huffman.cpp" "src/lossless/CMakeFiles/sperr_lossless.dir/huffman.cpp.o" "gcc" "src/lossless/CMakeFiles/sperr_lossless.dir/huffman.cpp.o.d"
  "/root/repo/src/lossless/lz77.cpp" "src/lossless/CMakeFiles/sperr_lossless.dir/lz77.cpp.o" "gcc" "src/lossless/CMakeFiles/sperr_lossless.dir/lz77.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sperr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
