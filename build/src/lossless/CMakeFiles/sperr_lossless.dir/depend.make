# Empty dependencies file for sperr_lossless.
# This may be replaced when dependencies are built.
