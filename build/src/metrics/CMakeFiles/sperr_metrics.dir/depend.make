# Empty dependencies file for sperr_metrics.
# This may be replaced when dependencies are built.
