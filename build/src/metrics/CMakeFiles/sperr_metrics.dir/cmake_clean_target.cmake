file(REMOVE_RECURSE
  "libsperr_metrics.a"
)
