file(REMOVE_RECURSE
  "CMakeFiles/sperr_metrics.dir/metrics.cpp.o"
  "CMakeFiles/sperr_metrics.dir/metrics.cpp.o.d"
  "libsperr_metrics.a"
  "libsperr_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
