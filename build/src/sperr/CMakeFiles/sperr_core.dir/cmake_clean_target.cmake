file(REMOVE_RECURSE
  "libsperr_core.a"
)
