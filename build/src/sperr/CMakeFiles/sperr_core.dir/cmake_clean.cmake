file(REMOVE_RECURSE
  "CMakeFiles/sperr_core.dir/archive.cpp.o"
  "CMakeFiles/sperr_core.dir/archive.cpp.o.d"
  "CMakeFiles/sperr_core.dir/chunker.cpp.o"
  "CMakeFiles/sperr_core.dir/chunker.cpp.o.d"
  "CMakeFiles/sperr_core.dir/compressor.cpp.o"
  "CMakeFiles/sperr_core.dir/compressor.cpp.o.d"
  "CMakeFiles/sperr_core.dir/decompressor.cpp.o"
  "CMakeFiles/sperr_core.dir/decompressor.cpp.o.d"
  "CMakeFiles/sperr_core.dir/header.cpp.o"
  "CMakeFiles/sperr_core.dir/header.cpp.o.d"
  "CMakeFiles/sperr_core.dir/outofcore.cpp.o"
  "CMakeFiles/sperr_core.dir/outofcore.cpp.o.d"
  "CMakeFiles/sperr_core.dir/pipeline.cpp.o"
  "CMakeFiles/sperr_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/sperr_core.dir/truncate.cpp.o"
  "CMakeFiles/sperr_core.dir/truncate.cpp.o.d"
  "libsperr_core.a"
  "libsperr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
