# Empty dependencies file for sperr_core.
# This may be replaced when dependencies are built.
