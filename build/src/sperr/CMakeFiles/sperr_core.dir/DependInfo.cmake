
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sperr/archive.cpp" "src/sperr/CMakeFiles/sperr_core.dir/archive.cpp.o" "gcc" "src/sperr/CMakeFiles/sperr_core.dir/archive.cpp.o.d"
  "/root/repo/src/sperr/chunker.cpp" "src/sperr/CMakeFiles/sperr_core.dir/chunker.cpp.o" "gcc" "src/sperr/CMakeFiles/sperr_core.dir/chunker.cpp.o.d"
  "/root/repo/src/sperr/compressor.cpp" "src/sperr/CMakeFiles/sperr_core.dir/compressor.cpp.o" "gcc" "src/sperr/CMakeFiles/sperr_core.dir/compressor.cpp.o.d"
  "/root/repo/src/sperr/decompressor.cpp" "src/sperr/CMakeFiles/sperr_core.dir/decompressor.cpp.o" "gcc" "src/sperr/CMakeFiles/sperr_core.dir/decompressor.cpp.o.d"
  "/root/repo/src/sperr/header.cpp" "src/sperr/CMakeFiles/sperr_core.dir/header.cpp.o" "gcc" "src/sperr/CMakeFiles/sperr_core.dir/header.cpp.o.d"
  "/root/repo/src/sperr/outofcore.cpp" "src/sperr/CMakeFiles/sperr_core.dir/outofcore.cpp.o" "gcc" "src/sperr/CMakeFiles/sperr_core.dir/outofcore.cpp.o.d"
  "/root/repo/src/sperr/pipeline.cpp" "src/sperr/CMakeFiles/sperr_core.dir/pipeline.cpp.o" "gcc" "src/sperr/CMakeFiles/sperr_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/sperr/truncate.cpp" "src/sperr/CMakeFiles/sperr_core.dir/truncate.cpp.o" "gcc" "src/sperr/CMakeFiles/sperr_core.dir/truncate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sperr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/sperr_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/speck/CMakeFiles/sperr_speck.dir/DependInfo.cmake"
  "/root/repo/build/src/outlier/CMakeFiles/sperr_outlier.dir/DependInfo.cmake"
  "/root/repo/build/src/lossless/CMakeFiles/sperr_lossless.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
