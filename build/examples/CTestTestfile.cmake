# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_climate_archive "/root/repo/build/examples/climate_archive")
set_tests_properties(example_climate_archive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_turbulence_progressive "/root/repo/build/examples/turbulence_progressive")
set_tests_properties(example_turbulence_progressive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_database_server "/root/repo/build/examples/database_server")
set_tests_properties(example_database_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
