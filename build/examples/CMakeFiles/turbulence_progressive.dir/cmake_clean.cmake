file(REMOVE_RECURSE
  "CMakeFiles/turbulence_progressive.dir/turbulence_progressive.cpp.o"
  "CMakeFiles/turbulence_progressive.dir/turbulence_progressive.cpp.o.d"
  "turbulence_progressive"
  "turbulence_progressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbulence_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
