# Empty dependencies file for turbulence_progressive.
# This may be replaced when dependencies are built.
