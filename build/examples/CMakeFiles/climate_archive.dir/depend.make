# Empty dependencies file for climate_archive.
# This may be replaced when dependencies are built.
