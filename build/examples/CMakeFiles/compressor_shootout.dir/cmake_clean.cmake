file(REMOVE_RECURSE
  "CMakeFiles/compressor_shootout.dir/compressor_shootout.cpp.o"
  "CMakeFiles/compressor_shootout.dir/compressor_shootout.cpp.o.d"
  "compressor_shootout"
  "compressor_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressor_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
