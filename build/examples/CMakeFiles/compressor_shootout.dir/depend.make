# Empty dependencies file for compressor_shootout.
# This may be replaced when dependencies are built.
