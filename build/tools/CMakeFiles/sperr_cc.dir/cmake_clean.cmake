file(REMOVE_RECURSE
  "CMakeFiles/sperr_cc.dir/sperr_cc.cpp.o"
  "CMakeFiles/sperr_cc.dir/sperr_cc.cpp.o.d"
  "sperr_cc"
  "sperr_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperr_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
