# Empty dependencies file for sperr_cc.
# This may be replaced when dependencies are built.
