file(REMOVE_RECURSE
  "CMakeFiles/make_field.dir/make_field.cpp.o"
  "CMakeFiles/make_field.dir/make_field.cpp.o.d"
  "make_field"
  "make_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
