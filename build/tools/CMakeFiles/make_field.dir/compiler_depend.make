# Empty compiler generated dependencies file for make_field.
# This may be replaced when dependencies are built.
