// Table I reproduction: translation of the tolerance label idx into an
// actual point-wise error tolerance t = Range / 2^idx, illustrated on a
// concrete field so the absolute magnitudes are visible.

#include <cstdio>

#include "common/stats.h"
#include "data/synthetic.h"
#include "sperr/sperr.h"
#include "support.h"

int main() {
  bench::print_title("Table I: tolerance label idx -> PWE tolerance t = Range / 2^idx");

  const auto& field = bench::field_by_label("Press");
  const auto data = bench::load_field(field);
  const auto stats = sperr::compute_stats(data.data(), data.size());
  std::printf("Example field: %s (%s), Range = %.6g\n\n", field.label.c_str(),
              field.dims.to_string().c_str(), stats.range());

  std::printf("%-5s %-22s %-28s %s\n", "idx", "t (formula)", "t (this field)",
              "intuition");
  bench::print_rule();
  const struct {
    int idx;
    const char* intuition;
  } rows[] = {
      {10, "one thousandth of the data range"},
      {20, "one millionth of the data range"},
      {30, "one billionth of the data range"},
      {40, "one trillionth of the data range"},
  };
  for (const auto& r : rows) {
    const double t = sperr::tolerance_from_idx(data.data(), data.size(), r.idx);
    std::printf("%-5d Range/2^%-13d %-28.6g %s\n", r.idx, r.idx, t, r.intuition);
  }
  return 0;
}
