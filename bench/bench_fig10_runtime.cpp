// Fig. 10 reproduction: compression wall-clock time per compressor on the
// Table II cases. The paper runs all tools with 4 OpenMP threads; here SPERR
// uses up to 4 chunk threads and the baseline reimplementations are serial
// (their reference implementations parallelize internally). The paper's
// finding is about ordering, which survives: SZ3 and ZFP are the fast pair,
// SPERR runs a few times slower (comparable to MGARD), TTHRESH is slowest.
// TTHRESH PSNR targets: 120.41 dB at idx=20 and 240.82 dB at idx=40 (the
// paper's 6.02*idx translation).

#include <cstdio>
#include <vector>

#include "baselines/mgardlike/compressor.h"
#include "baselines/szlike/compressor.h"
#include "baselines/tthreshlike/compressor.h"
#include "baselines/zfplike/compressor.h"
#include "common/timer.h"
#include "sperr/sperr.h"
#include "support.h"

namespace {

template <class Fn>
double time_best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    sperr::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  bench::print_title("Fig. 10: compression time (seconds) on Table II cases");
  std::printf("(MGARD-like shown at idx=40 too; the paper excludes it there "
              "for bound violations)\n\n");
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "case", "SZ-like", "ZFP-like",
              "SPERR", "MGARD-like", "TTHRESH");
  bench::print_rule();

  for (const auto& c : bench::table2_cases()) {
    const auto& field = bench::field_by_label(c.field_label);
    const auto data = bench::load_field(field);
    const double t = sperr::tolerance_from_idx(data.data(), data.size(), c.idx);

    const double t_sz = time_best_of(
        2, [&] { (void)sperr::szlike::compress(data.data(), field.dims, t); });
    const double t_zfp = time_best_of(2, [&] {
      (void)sperr::zfplike::compress_accuracy(data.data(), field.dims, t);
    });
    const double t_sperr = time_best_of(2, [&] {
      sperr::Config cfg = bench::sperr_config_for(field);
      cfg.tolerance = t;
      cfg.num_threads = 4;
      if (field.sperr_chunk.total() <= 1) cfg.chunk_dims = sperr::Dims{64, 64, 64};
      (void)sperr::compress(data.data(), field.dims, cfg);
    });
    const double t_mgard = time_best_of(
        2, [&] { (void)sperr::mgardlike::compress(data.data(), field.dims, t); });
    const double t_tth = time_best_of(1, [&] {
      (void)sperr::tthreshlike::compress(data.data(), field.dims,
                                         6.02059991 * c.idx);
    });

    std::printf("%-10s %10.3f %10.3f %10.3f %10.3f %10.3f\n", c.abbrev.c_str(),
                t_sz, t_zfp, t_sperr, t_mgard, t_tth);
  }
  bench::print_rule();
  std::printf(
      "Paper expectation: SZ3 and ZFP comparable and fastest; SPERR a few\n"
      "times slower but well ahead of TTHRESH; SPERR comparable to MGARD.\n");
  return 0;
}
