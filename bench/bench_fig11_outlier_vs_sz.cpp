// Fig. 11 reproduction: outlier-coding efficiency, SPERR vs SZ, on identical
// outlier lists. Following §VI-E, we intercept SPERR's pipeline to obtain
// the outlier list for each Table II case, then code the same list two ways:
//   * SPERR's outlier coder (positions + corrections, SPECK-style);
//   * SZ's scheme: corrections quantized to integer multiples of 2t, a dense
//     per-point bin array (inliers = 0) Huffman-coded and ZSTD'd — the
//     QCAT `compressQuantBins` path, reproduced by szlike::encode_quant_bins.
// Cost metric: average bits per outlier, including stream headers.

#include <cmath>
#include <cstdio>
#include <vector>

#include <algorithm>

#include "baselines/szlike/quant_bins.h"
#include "lossless/codec.h"
#include "sperr/pipeline.h"
#include "sperr/sperr.h"
#include "support.h"

int main() {
  bench::print_title("Fig. 11: bits per outlier — SPERR coder vs SZ quant-bin coder");
  std::printf("%-10s %12s %12s %14s %14s %10s\n", "case", "outliers",
              "outlier %", "SPERR b/outl", "SZ b/outl", "margin");
  bench::print_rule();

  double sperr_total = 0, sz_total = 0;
  int rows = 0;
  for (const auto& c : bench::table2_cases()) {
    const auto& field = bench::field_by_label(c.field_label);
    const auto data = bench::load_field(field);
    const double t = sperr::tolerance_from_idx(data.data(), data.size(), c.idx);

    // Intercept the pipeline to get the outlier list (paper's methodology).
    std::vector<sperr::outlier::Outlier> outliers;
    const auto cs = sperr::pipeline::encode_pwe(data.data(), field.dims, t, 1.5,
                                                &outliers);
    if (outliers.empty()) {
      std::printf("%-10s %12s\n", c.abbrev.c_str(), "none");
      continue;
    }
    const double n_outl = double(outliers.size());

    // SPERR's coder: the produced outlier stream (header included), after
    // the same lossless pass SPERR applies to its concatenated streams and
    // SZ applies to its Huffman output (§V, §VI-E).
    const auto sperr_packed = sperr::lossless::compress(cs.outlier);
    const double sperr_bits =
        double(std::min(sperr_packed.size(), cs.outlier.size())) * 8.0 / n_outl;

    // SZ's scheme: dense bin array over every data point.
    std::vector<int32_t> bins(data.size(), 0);
    for (const auto& o : outliers)
      bins[o.pos] = int32_t(std::llround(o.corr / (2.0 * t)));
    sperr::szlike::QuantBinStats qstats;
    const auto sz_stream = sperr::szlike::encode_quant_bins(bins, &qstats);
    const double sz_bits = double(sz_stream.size()) * 8.0 / n_outl;

    std::printf("%-10s %12zu %11.2f%% %14.2f %14.2f %+9.2f\n", c.abbrev.c_str(),
                outliers.size(), 100.0 * n_outl / double(data.size()),
                sperr_bits, sz_bits, sz_bits - sperr_bits);
    sperr_total += sperr_bits;
    sz_total += sz_bits;
    ++rows;
  }
  bench::print_rule();
  if (rows)
    std::printf("means: SPERR %.2f bits/outlier, SZ %.2f bits/outlier\n",
                sperr_total / rows, sz_total / rows);
  std::printf(
      "Paper expectation: SPERR ~10 bits/outlier across settings, and\n"
      "consistently 1-2 bits cheaper than SZ's scheme on the same outliers.\n");
  return 0;
}
