// Fig. 2 reproduction: total coding cost as a function of the quantization
// step q (in units of the tolerance t), broken into wavelet-coefficient cost
// and outlier cost. The paper uses Miranda Pressure at a tight tolerance
// (t = 3.64e-11 for their data; we use idx = 40 of the stand-in's range) and
// observes a U-shaped total with the outlier share growing with q.

#include <cstdio>
#include <vector>

#include "sperr/pipeline.h"
#include "sperr/sperr.h"
#include "support.h"

int main() {
  bench::print_title(
      "Fig. 2: coding cost vs quantization step q (Miranda-like Pressure, idx=40)");

  const auto& field = bench::field_by_label("Press");
  const auto data = bench::load_field(field);
  const double t = sperr::tolerance_from_idx(data.data(), data.size(), 40);
  const double n = double(field.dims.total());
  std::printf("field %s, t = %.4g\n\n", field.dims.to_string().c_str(), t);

  std::printf("%-6s %12s %12s %12s %10s\n", "q/t", "total BPP", "coeff BPP",
              "outlier BPP", "outlier %");
  bench::print_rule();

  double best_total = 1e300;
  double best_q = 0;
  for (double q = 1.0; q <= 3.001; q += 0.2) {
    const auto cs = sperr::pipeline::encode_pwe(data.data(), field.dims, t, q);
    const double coeff_bpp = double(cs.speck.size()) * 8.0 / n;
    const double outl_bpp = double(cs.outlier.size()) * 8.0 / n;
    const double total = coeff_bpp + outl_bpp;
    std::printf("%-6.1f %12.3f %12.3f %12.3f %9.1f%%\n", q, total, coeff_bpp,
                outl_bpp, 100.0 * outl_bpp / total);
    if (total < best_total) {
      best_total = total;
      best_q = q;
    }
  }
  bench::print_rule();
  std::printf(
      "minimum total cost at q = %.1ft (paper: U-shaped curve with the sweet\n"
      "spot between 1.4t and 1.8t; outlier share grows monotonically with q)\n",
      best_q);
  return 0;
}
