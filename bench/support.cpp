#include "support.h"

#include <cstdio>
#include <stdexcept>

#include "common/stats.h"
#include "data/synthetic.h"

namespace bench {

const std::vector<Field>& paper_fields() {
  // Paper originals (SDRBench):            here (scaled stand-ins):
  //   Miranda double 384^2 x 256       ->    96^2 x 64
  //   S3D double 500^3                 ->    80^3
  //   Nyx single 512^3                 ->    96^3
  //   QMCPACK single 69^2 x 115 (x288) ->    48^2 x 40 (stack handled by callers)
  // QMCPACK is a stack of 8 orbital volumes of 48^2 x 40 (standing in for
  // the paper's 288 x 69^2 x 115): SPERR chunks per orbital; the other
  // compressors receive the whole 48^2 x 320 volume, mirroring §VI-B.
  static const std::vector<Field> fields = {
      {"CH4", "s3d_ch4", Dims{80, 80, 80}, false, {}},
      {"Temp", "s3d_temperature", Dims{80, 80, 80}, false, {}},
      {"VX1", "s3d_velocity_x", Dims{80, 80, 80}, false, {}},
      {"Press", "miranda_pressure", Dims{96, 96, 64}, false, {}},
      {"Visc", "miranda_viscosity", Dims{96, 96, 64}, false, {}},
      {"VX2", "miranda_velocity_x", Dims{96, 96, 64}, false, {}},
      {"QMC", "qmcpack_orbitals", Dims{48, 48, 320}, true, Dims{48, 48, 40}},
      {"Nyx", "nyx_dark_matter_density", Dims{96, 96, 96}, true, {}},
      {"VX3", "nyx_velocity_x", Dims{96, 96, 96}, true, {}},
  };
  return fields;
}

const Field& field_by_label(const std::string& label) {
  for (const auto& f : paper_fields())
    if (f.label == label) return f;
  throw std::invalid_argument("unknown bench field: " + label);
}

std::vector<double> load_field(const Field& f) {
  if (f.generator == "qmcpack_orbitals") {
    // A stack of per-orbital volumes along z.
    const size_t per = f.sperr_chunk.z ? f.sperr_chunk.z : f.dims.z;
    const Dims orbital_dims{f.dims.x, f.dims.y, per};
    std::vector<double> stack;
    stack.reserve(f.dims.total());
    for (size_t k = 0; k * per < f.dims.z; ++k) {
      const auto orb = sperr::data::qmcpack_orbital(orbital_dims, int(k));
      stack.insert(stack.end(), orb.begin(), orb.end());
    }
    return stack;
  }
  return sperr::data::make_field(f.generator, f.dims);
}

sperr::Config sperr_config_for(const Field& f) {
  sperr::Config cfg;
  // Dims{} default-constructs to 1x1x1, so "no preference" is total() <= 1.
  if (f.sperr_chunk.total() > 1) cfg.chunk_dims = f.sperr_chunk;
  return cfg;
}

const std::vector<Case>& table2_cases() {
  static const std::vector<Case> cases = {
      {"CH4-20", "CH4", 20},     {"CH4-40", "CH4", 40},
      {"Temp-20", "Temp", 20},   {"Temp-40", "Temp", 40},
      {"VX1-20", "VX1", 20},     {"VX1-40", "VX1", 40},
      {"Press-20", "Press", 20}, {"Press-40", "Press", 40},
      {"Visc-20", "Visc", 20},   {"Visc-40", "Visc", 40},
      {"VX2-20", "VX2", 20},     {"VX2-40", "VX2", 40},
      {"QMC-20", "QMC", 20},     {"Nyx-20", "Nyx", 20},
      {"VX3-20", "VX3", 20},
  };
  return cases;
}

RdPoint evaluate(const std::vector<double>& orig, const std::vector<double>& recon,
                 size_t compressed_bytes) {
  const auto q = sperr::metrics::compare(orig.data(), recon.data(), orig.size());
  RdPoint p;
  p.bpp = double(compressed_bytes) * 8.0 / double(orig.size());
  p.psnr = q.psnr;
  p.max_pwe = q.max_pwe;
  p.gain = sperr::metrics::accuracy_gain(q.sigma, q.rmse, p.bpp);
  return p;
}

void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

void print_title(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace bench
