// Fig. 5 reproduction: impact of chunk size on compression efficiency
// (accuracy gain). The paper compresses a 1024^3 cut-out of the Miranda
// density field with chunk sizes from 64^3 to 1024^3; bigger chunks give
// higher accuracy gain with diminishing returns, and the penalty of small
// chunks grows as tolerances tighten. We use a 128^3 stand-in with chunks
// 16^3..128^3 (the same 3-octave span below the full volume).

#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "sperr/sperr.h"
#include "support.h"

int main() {
  bench::print_title("Fig. 5: accuracy gain vs chunk size (Miranda-like density)");

  const sperr::Dims dims{128, 128, 128};
  const auto data = sperr::data::make_field("miranda_density", dims);
  const std::vector<size_t> chunk_sides = {16, 32, 64, 128};
  const std::vector<int> idx_levels = {10, 20, 30};

  std::printf("%-8s", "chunk");
  for (const int idx : idx_levels) std::printf("  gain(idx=%-2d) d(idx=%-2d)", idx, idx);
  std::printf("\n");
  bench::print_rule();

  // Collect gains, then print the *difference* to the best chunk size, as
  // the paper plots.
  std::vector<std::vector<double>> gains(chunk_sides.size(),
                                         std::vector<double>(idx_levels.size()));
  for (size_t ci = 0; ci < chunk_sides.size(); ++ci) {
    for (size_t ti = 0; ti < idx_levels.size(); ++ti) {
      sperr::Config cfg;
      cfg.tolerance =
          sperr::tolerance_from_idx(data.data(), data.size(), idx_levels[ti]);
      const size_t side = chunk_sides[ci];
      cfg.chunk_dims = sperr::Dims{side, side, side};
      const auto blob = sperr::compress(data.data(), dims, cfg);
      std::vector<double> recon;
      sperr::Dims od;
      (void)sperr::decompress(blob.data(), blob.size(), recon, od);
      const auto rd = bench::evaluate(data, recon, blob.size());
      gains[ci][ti] = rd.gain;
    }
  }
  std::vector<double> best(idx_levels.size(), -1e300);
  for (size_t ti = 0; ti < idx_levels.size(); ++ti)
    for (size_t ci = 0; ci < chunk_sides.size(); ++ci)
      best[ti] = std::max(best[ti], gains[ci][ti]);

  for (size_t ci = 0; ci < chunk_sides.size(); ++ci) {
    std::printf("%zu^3    ", chunk_sides[ci]);
    for (size_t ti = 0; ti < idx_levels.size(); ++ti)
      std::printf("  %11.3f %9.3f", gains[ci][ti], gains[ci][ti] - best[ti]);
    std::printf("\n");
  }
  bench::print_rule();
  std::printf(
      "Paper expectation: gain increases with chunk size with diminishing\n"
      "returns; the small-chunk penalty grows at tighter tolerances (larger\n"
      "idx). SPERR defaults to 256^3 as the efficiency/parallelism balance.\n");
  return 0;
}
