// Domain-specific quality evaluation the paper's §VI-C calls for: "accuracy
// gain ... is generic in nature ... Evaluations using more domain-specific
// metrics (e.g., SSIM) are likely necessary." This bench compares the five
// compressors at matched *low* bitrates — the aggressive-compression regime
// where perceptual quality actually differentiates tools — using mean SSIM
// over 2-D slices.
//
// SPERR and ZFP-like use their native fixed-rate modes; the tolerance-driven
// compressors are rate-matched by geometric bisection on their quality knob.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/mgardlike/compressor.h"
#include "baselines/szlike/compressor.h"
#include "baselines/tthreshlike/compressor.h"
#include "baselines/zfplike/compressor.h"
#include "metrics/metrics.h"
#include "sperr/sperr.h"
#include "support.h"

namespace {

struct Scored {
  double ssim = -1.0;
  double bpp = 0.0;
};

/// Geometric bisection of a quality knob to hit a target bitrate.
template <class CompressFn>
std::vector<uint8_t> match_rate(CompressFn&& fn, double target_bpp, size_t npts,
                                double knob_lo, double knob_hi) {
  std::vector<uint8_t> best;
  double best_err = 1e300;
  for (int iter = 0; iter < 16; ++iter) {
    const double knob = std::sqrt(knob_lo * knob_hi);
    auto blob = fn(knob);
    const double bpp = double(blob.size()) * 8 / double(npts);
    if (std::fabs(bpp - target_bpp) < best_err) {
      best_err = std::fabs(bpp - target_bpp);
      best = std::move(blob);
    }
    if (bpp > target_bpp)
      knob_lo = knob;  // too many bits: loosen the bound
    else
      knob_hi = knob;
    if (knob_hi / knob_lo < 1.02) break;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_title(
      "SSIM at matched low bitrates (domain-specific follow-up to Fig. 8, §VI-C)");
  std::printf("cells: mean slice SSIM (achieved bits/point)\n");

  for (const char* label : {"Press", "Temp", "Nyx"}) {
    const auto& field = bench::field_by_label(label);
    const auto data = bench::load_field(field);
    const size_t npts = data.size();
    const double range =
        sperr::tolerance_from_idx(data.data(), npts, 0);  // = field range

    std::printf("\n=== %s ===\n", label);
    std::printf("%-6s %18s %18s %18s %18s %18s\n", "bpp", "SPERR", "SZ-like",
                "ZFP-like", "MGARD-like", "TTHRESH");
    bench::print_rule(100);

    for (const double target_bpp : {0.25, 0.5, 1.0, 2.0}) {
      auto score = [&](const std::vector<uint8_t>& blob, auto&& dec) {
        Scored s;
        std::vector<double> recon;
        sperr::Dims od;
        if (blob.empty() ||
            dec(blob.data(), blob.size(), recon, od) != sperr::Status::ok)
          return s;
        s.ssim = sperr::metrics::mean_ssim(data.data(), recon.data(), field.dims);
        s.bpp = double(blob.size()) * 8 / double(npts);
        return s;
      };

      sperr::Config cfg = bench::sperr_config_for(field);
      cfg.mode = sperr::Mode::fixed_rate;
      cfg.bpp = target_bpp;
      const Scored s_sperr =
          score(sperr::compress(data.data(), field.dims, cfg),
                [](const uint8_t* p, size_t n, std::vector<double>& o,
                   sperr::Dims& d) { return sperr::decompress(p, n, o, d); });
      const Scored s_zfp =
          score(sperr::zfplike::compress_rate(data.data(), field.dims, target_bpp),
                sperr::zfplike::decompress);
      const Scored s_sz = score(
          match_rate(
              [&](double tol) {
                return sperr::szlike::compress(data.data(), field.dims, tol);
              },
              target_bpp, npts, range * 1e-10, range),
          sperr::szlike::decompress);
      const Scored s_mgard = score(
          match_rate(
              [&](double tol) {
                return sperr::mgardlike::compress(data.data(), field.dims, tol);
              },
              target_bpp, npts, range * 1e-10, range),
          sperr::mgardlike::decompress);
      const Scored s_tth = score(
          match_rate(
              [&](double rel) {
                const double psnr = 20.0 * std::log10(1.0 / rel);
                return sperr::tthreshlike::compress(data.data(), field.dims,
                                                    std::max(psnr, 5.0));
              },
              target_bpp, npts, 1e-8, 0.5),
          sperr::tthreshlike::decompress);

      std::printf("%-6.2f", target_bpp);
      for (const Scored& s : {s_sperr, s_sz, s_zfp, s_mgard, s_tth}) {
        if (s.ssim < 0)
          std::printf(" %17s", "n/a");
        else
          std::printf("   %8.4f (%4.2f)", s.ssim, s.bpp);
      }
      std::printf("\n");
    }
  }
  bench::print_rule(100);
  std::printf(
      "Reading: higher SSIM at the same storage is better. Expectation: the\n"
      "Fig. 8 low-rate ordering (SPERR competitive, TTHRESH strong at very\n"
      "low rates) carries over to the perceptual metric.\n");
  return 0;
}
