// Fig. 8 reproduction: rate-distortion (accuracy gain vs bitrate) for five
// compressors on nine data fields. Tolerance-driven compressors (SPERR,
// SZ-like, ZFP-like, MGARD-like) sweep PWE tolerances t = Range/2^idx;
// TTHRESH-like takes PSNR targets 6.02*idx (the paper's Eq. translation).
//
// Following the paper's §VI-C protocol:
//  * a TTHRESH series is terminated once more bits stop reducing error;
//  * an MGARD point that exceeds its tolerance is flagged (the paper
//    terminates those runs);
//  * TTHRESH is skipped on QMCPACK (it failed on that set in the paper).

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/mgardlike/compressor.h"
#include "baselines/szlike/compressor.h"
#include "baselines/tthreshlike/compressor.h"
#include "baselines/zfplike/compressor.h"
#include "sperr/sperr.h"
#include "support.h"

namespace {

constexpr double kDbPerBit = 6.02059991;  // 20*log10(2)

struct Point {
  int idx;
  bench::RdPoint rd;
  bool bound_violated = false;
};

void print_series(const char* name, const std::vector<Point>& pts,
                  const char* note = nullptr) {
  std::printf("  %-10s", name);
  if (pts.empty()) {
    std::printf(" (skipped%s%s)\n", note ? ": " : "", note ? note : "");
    return;
  }
  std::printf(" idx:   ");
  for (const auto& p : pts) std::printf("%8d", p.idx);
  std::printf("\n  %-10s bpp:   ", "");
  for (const auto& p : pts) std::printf("%8.3f", p.rd.bpp);
  std::printf("\n  %-10s gain:  ", "");
  for (const auto& p : pts)
    std::printf("%7.2f%c", p.rd.gain, p.bound_violated ? '!' : ' ');
  std::printf("\n");
  if (note) std::printf("  %-10s note: %s\n", "", note);
}

}  // namespace

int main() {
  bench::print_title(
      "Fig. 8: rate-distortion (accuracy gain vs BPP) — five compressors, nine fields");
  std::printf("('!' marks a point whose achieved max error exceeded the tolerance)\n");

  for (const auto& field : bench::paper_fields()) {
    const auto data = bench::load_field(field);
    std::vector<int> levels = field.single_precision
                                  ? std::vector<int>{2, 5, 10, 15, 20, 25, 30}
                                  : std::vector<int>{2, 5, 10, 20, 30, 40, 50};

    std::printf("\n=== %s (%s, %s precision) ===\n", field.label.c_str(),
                field.dims.to_string().c_str(),
                field.single_precision ? "single" : "double");

    // SPERR.
    std::vector<Point> sperr_pts;
    for (const int idx : levels) {
      sperr::Config cfg = bench::sperr_config_for(field);
      cfg.tolerance = sperr::tolerance_from_idx(data.data(), data.size(), idx);
      const auto blob = sperr::compress(data.data(), field.dims, cfg);
      std::vector<double> recon;
      sperr::Dims od;
      if (sperr::decompress(blob.data(), blob.size(), recon, od) != sperr::Status::ok)
        continue;
      Point p{idx, bench::evaluate(data, recon, blob.size())};
      p.bound_violated = p.rd.max_pwe > cfg.tolerance;
      sperr_pts.push_back(p);
    }
    print_series("SPERR", sperr_pts);

    // SZ-like.
    std::vector<Point> sz_pts;
    for (const int idx : levels) {
      const double t = sperr::tolerance_from_idx(data.data(), data.size(), idx);
      const auto blob = sperr::szlike::compress(data.data(), field.dims, t);
      std::vector<double> recon;
      sperr::Dims od;
      if (sperr::szlike::decompress(blob.data(), blob.size(), recon, od) !=
          sperr::Status::ok)
        continue;
      Point p{idx, bench::evaluate(data, recon, blob.size())};
      p.bound_violated = p.rd.max_pwe > t;
      sz_pts.push_back(p);
    }
    print_series("SZ-like", sz_pts);

    // ZFP-like (fixed accuracy).
    std::vector<Point> zfp_pts;
    for (const int idx : levels) {
      const double t = sperr::tolerance_from_idx(data.data(), data.size(), idx);
      const auto blob = sperr::zfplike::compress_accuracy(data.data(), field.dims, t);
      std::vector<double> recon;
      sperr::Dims od;
      if (sperr::zfplike::decompress(blob.data(), blob.size(), recon, od) !=
          sperr::Status::ok)
        continue;
      Point p{idx, bench::evaluate(data, recon, blob.size())};
      p.bound_violated = p.rd.max_pwe > t;
      zfp_pts.push_back(p);
    }
    print_series("ZFP-like", zfp_pts);

    // MGARD-like: terminate the series once the bound is exceeded (paper
    // protocol for offending runs).
    std::vector<Point> mgard_pts;
    for (const int idx : levels) {
      const double t = sperr::tolerance_from_idx(data.data(), data.size(), idx);
      const auto blob = sperr::mgardlike::compress(data.data(), field.dims, t);
      std::vector<double> recon;
      sperr::Dims od;
      if (sperr::mgardlike::decompress(blob.data(), blob.size(), recon, od) !=
          sperr::Status::ok)
        continue;
      Point p{idx, bench::evaluate(data, recon, blob.size())};
      p.bound_violated = p.rd.max_pwe > t;
      mgard_pts.push_back(p);
      if (p.bound_violated) break;
    }
    print_series("MGARD-like", mgard_pts);

    // TTHRESH-like: PSNR targets; stop once extra bits stop buying quality.
    if (field.label == "QMC") {
      print_series("TTHRESH", {}, "paper: TTHRESH did not finish on QMCPACK");
    } else {
      std::vector<Point> tth_pts;
      double prev_gain = -1e300;
      for (const int idx : levels) {
        const double target = kDbPerBit * idx;
        const auto blob =
            sperr::tthreshlike::compress(data.data(), field.dims, target);
        std::vector<double> recon;
        sperr::Dims od;
        if (sperr::tthreshlike::decompress(blob.data(), blob.size(), recon, od) !=
            sperr::Status::ok)
          continue;
        Point p{idx, bench::evaluate(data, recon, blob.size())};
        if (p.rd.gain < prev_gain - 1.0) break;  // bits no longer buy quality
        prev_gain = std::max(prev_gain, p.rd.gain);
        tth_pts.push_back(p);
      }
      print_series("TTHRESH", tth_pts);
    }
  }

  std::printf(
      "\nPaper expectation: curves rise at low rates, then plateau (each extra\n"
      "bit halves the error). SPERR leads at mid-to-high rates (> 2 BPP) and\n"
      "stays competitive below 1 BPP; TTHRESH is strongest only at low rates.\n");
  return 0;
}
