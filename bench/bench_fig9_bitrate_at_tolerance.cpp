// Fig. 9 reproduction: how many bits each error-bounded compressor needs to
// satisfy a given PWE tolerance, on the Table II field/level cases. TTHRESH
// is excluded (no error-bounded mode); the paper also excludes MGARD at
// idx = 40 for exceeding the bound — we run it and report whether the bound
// held instead.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/mgardlike/compressor.h"
#include "baselines/szlike/compressor.h"
#include "baselines/zfplike/compressor.h"
#include "sperr/sperr.h"
#include "support.h"

namespace {

struct Entry {
  double bpp = -1.0;
  bool violated = false;
};

}  // namespace

int main() {
  bench::print_title(
      "Fig. 9: achieved BPP to satisfy a PWE tolerance (Table II cases)");
  std::printf("('!' = achieved max error exceeded the tolerance; '*' = best bpp)\n\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "case", "SPERR", "SZ-like",
              "ZFP-like", "MGARD-like");
  bench::print_rule();

  int sperr_wins = 0, cases_run = 0;
  for (const auto& c : bench::table2_cases()) {
    const auto& field = bench::field_by_label(c.field_label);
    const auto data = bench::load_field(field);
    const double t = sperr::tolerance_from_idx(data.data(), data.size(), c.idx);
    const double npts = double(data.size());

    auto measure = [&](const std::vector<uint8_t>& blob,
                       auto&& decompress_fn) -> Entry {
      std::vector<double> recon;
      sperr::Dims od;
      if (decompress_fn(blob.data(), blob.size(), recon, od) != sperr::Status::ok)
        return {};
      const auto rd = bench::evaluate(data, recon, blob.size());
      return {double(blob.size()) * 8.0 / npts, rd.max_pwe > t};
    };

    sperr::Config cfg = bench::sperr_config_for(field);
    cfg.tolerance = t;
    const Entry e_sperr = measure(
        sperr::compress(data.data(), field.dims, cfg),
        [](const uint8_t* p, size_t n, std::vector<double>& o, sperr::Dims& d) {
          return sperr::decompress(p, n, o, d);
        });
    const Entry e_sz =
        measure(sperr::szlike::compress(data.data(), field.dims, t),
                sperr::szlike::decompress);
    const Entry e_zfp =
        measure(sperr::zfplike::compress_accuracy(data.data(), field.dims, t),
                sperr::zfplike::decompress);
    const Entry e_mgard =
        measure(sperr::mgardlike::compress(data.data(), field.dims, t),
                sperr::mgardlike::decompress);

    const Entry entries[] = {e_sperr, e_sz, e_zfp, e_mgard};
    double best = 1e300;
    for (const auto& e : entries)
      if (e.bpp > 0 && !e.violated) best = std::min(best, e.bpp);

    std::printf("%-10s", c.abbrev.c_str());
    for (const auto& e : entries) {
      if (e.bpp < 0) {
        std::printf(" %11s ", "n/a");
      } else {
        std::printf(" %10.3f%c%c", e.bpp, e.violated ? '!' : ' ',
                    (!e.violated && e.bpp == best) ? '*' : ' ');
      }
    }
    std::printf("\n");
    ++cases_run;
    if (!e_sperr.violated && e_sperr.bpp == best) ++sperr_wins;
  }
  bench::print_rule();
  std::printf(
      "SPERR wins %d of %d cases.\n"
      "Paper expectation: SPERR uses the fewest bits in all but two cases.\n",
      sperr_wins, cases_run);
  return 0;
}
