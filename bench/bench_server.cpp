// bench_server — load generator and correctness harness for sperr_serve.
//
//   bench_server [--smoke] [--json PATH] [--port P] [--clients N]
//                [--requests N] [--n SIZE] [--workers N] [--queue-depth Q]
//
// Three phases:
//
//   1. Identity probes: one connection issues COMPRESS / DECOMPRESS /
//      VERIFY / EXTRACT_CHUNK requests and compares every reply byte-for-
//      byte against direct sperr library calls with the same Config. The
//      wire must be a transport, not a transformation.
//   2. Mixed traffic: --clients connections each issue --requests requests
//      cycling through all five opcodes; reports requests/s and p50/p99
//      latency over the merged per-request timings.
//   3. Backpressure: a dedicated in-process server (workers=1, queue=1)
//      holds its only worker on a latch, fills the queue, and asserts the
//      next request is rejected with BUSY while every admitted request is
//      still answered after release — the bounded-queue contract of
//      docs/PROTOCOL.md, made deterministic via ServerConfig::process_hook.
//   4. Hardening: dedicated in-process servers with tight limits assert the
//      degraded-conditions contracts — a stalled 23-byte header connection
//      is reaped by the idle/IO deadline while other clients keep working
//      (timeouts_read_ok), a request outliving --request-deadline-ms is
//      answered DEADLINE_EXCEEDED (timeouts_request_ok), and a connection
//      past --max-conns gets one unsolicited BUSY and a close
//      (conns_rejected_ok).
//   5. Resource governance: a sub-kilobyte container declaring terabytes is
//      answered RESOURCE_EXHAUSTED in bounded time while a neighbouring
//      connection's honest traffic stays byte-identical (bomb_rejected_ok),
//      and a server started with --max-output-mb below an honest request's
//      decoded size rejects it with status 8 where a generous budget admits
//      it (budget_enforced_ok).
//
// Without --port the traffic phases run against an in-process Server;
// with --port they target an already-running sperr_serve (the CI smoke job
// does this) while phases 3-4 stay in-process. All wire traffic goes
// through the retrying Client (server/client.h): connects retry with
// backoff under a budget (no ephemeral-port race against a just-started
// server) and every operation carries a transport deadline, so a server
// that dies mid-run surfaces as exit 2 rather than a hang. Writes a
// BENCH_server.json record (--json) gated by tools/check_bench.py; exits 2
// on any correctness failure so CI notices without parsing JSON.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/byteio.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "common/types.h"
#include "data/synthetic.h"
#include "server/client.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/server.h"
#include "sperr/sperr.h"

namespace {

using namespace sperr::server;
using sperr::Dims;

struct Options {
  size_t n = 64;         // field is n^3, chunked n/2 -> 8 chunks
  int clients = 4;
  int per_client = 30;   // requests per client in the traffic phase
  uint16_t port = 0;     // 0 = in-process server
  int workers = 0;       // in-process server lanes (0 = one per core)
  size_t queue_depth = 64;
  std::string json;
  bool smoke = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_server [--smoke] [--json PATH] [--port P]\n"
               "                    [--clients N] [--requests N] [--n SIZE]\n"
               "                    [--workers N] [--queue-depth Q]\n");
  std::exit(2);
}

/// The workload everything measures: one deterministic field and the SPERR
/// Config both the direct reference calls and the wire requests use.
struct Workload {
  Dims dims;
  sperr::Config cfg;
  std::vector<double> field;
  std::vector<uint8_t> container;  // direct sperr::compress output
  std::vector<double> decoded;     // direct sperr::decompress output
  size_t nchunks = 0;

  explicit Workload(size_t n) {
    dims = Dims{n, n, n};
    field = sperr::data::miranda_pressure(dims);
    cfg.tolerance = sperr::tolerance_from_idx(field.data(), field.size(), 20);
    cfg.chunk_dims = Dims{n / 2, n / 2, n / 2};
    container = sperr::compress(field.data(), dims, cfg);
    Dims od;
    (void)sperr::decompress(container.data(), container.size(), decoded, od);
    nchunks = 8;
  }
};

/// Raw blocking connection for the phases that speak the wire directly
/// (backpressure, hardening): those assert on exact frames, not outcomes.
struct RawConn {
  int fd = -1;
  explicit RawConn(uint16_t port) : fd(connect_loopback(port)) {}
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;
};

/// Retrying-client settings shared by the probe and traffic phases.
ClientConfig client_config(uint16_t port, uint64_t seed) {
  ClientConfig cc;
  cc.port = port;
  cc.connect_budget_ms = 10'000;  // rides out the ephemeral-port race
  cc.op_timeout_ms = 60'000;      // a dead server fails the call, never hangs
  cc.max_attempts = 3;
  cc.seed = seed;
  return cc;
}

// --- phase 1: identity probes ----------------------------------------------

bool check_identity(Client& c, const Workload& w) {
  bool ok = true;

  // COMPRESS must reproduce the direct container byte-for-byte.
  CallResult r = c.call(Opcode::compress,
                        build_compress_body(w.cfg, w.dims, w.field.data()));
  if (!r.ok || r.status != WireStatus::ok || r.body != w.container) {
    std::fprintf(stderr, "bench_server: COMPRESS reply differs from direct call\n");
    ok = false;
  }

  // DECOMPRESS must reproduce the direct decode (dims header + f64 samples).
  r = c.call(Opcode::decompress,
             build_decompress_body(0, 8, w.container.data(), w.container.size()));
  if (!r.ok || r.status != WireStatus::ok ||
      r.body.size() != 24 + w.decoded.size() * 8 ||
      std::memcmp(r.body.data() + 24, w.decoded.data(), w.decoded.size() * 8) != 0) {
    std::fprintf(stderr, "bench_server: DECOMPRESS reply differs from direct call\n");
    ok = false;
  }

  // VERIFY must report a clean container with the expected chunk count.
  r = c.call(Opcode::verify, w.container);
  if (!r.ok || r.status != WireStatus::ok ||
      r.body.size() != kVerifyReplyHeaderBytes + w.nchunks * kVerifyChunkRecordBytes ||
      r.body[1] != 1) {
    std::fprintf(stderr, "bench_server: VERIFY did not report a clean container\n");
    ok = false;
  }

  // Every EXTRACT_CHUNK must equal the matching region of the full decode
  // (a chunk decodes to exactly the same doubles either way).
  for (uint32_t k = 0; ok && k < w.nchunks; ++k) {
    r = c.call(Opcode::extract_chunk,
               build_extract_body(k, w.container.data(), w.container.size()));
    if (!r.ok || r.status != WireStatus::ok || r.body.size() < 48) {
      std::fprintf(stderr, "bench_server: EXTRACT_CHUNK %u failed\n", k);
      ok = false;
      break;
    }
    const std::vector<uint8_t>& reply = r.body;
    sperr::ByteReader br(reply.data(), reply.size());
    const Dims origin{size_t(br.u64()), size_t(br.u64()), size_t(br.u64())};
    const Dims cdims{size_t(br.u64()), size_t(br.u64()), size_t(br.u64())};
    if (reply.size() != 48 + cdims.total() * 8) {
      std::fprintf(stderr, "bench_server: EXTRACT_CHUNK %u reply size mismatch\n", k);
      ok = false;
      break;
    }
    const auto* got = reinterpret_cast<const double*>(reply.data() + 48);
    for (size_t z = 0; ok && z < cdims.z; ++z)
      for (size_t y = 0; ok && y < cdims.y; ++y) {
        const size_t src = (origin.z + z) * w.dims.y * w.dims.x +
                           (origin.y + y) * w.dims.x + origin.x;
        if (std::memcmp(got + (z * cdims.y + y) * cdims.x, w.decoded.data() + src,
                        cdims.x * 8) != 0) {
          std::fprintf(stderr,
                       "bench_server: EXTRACT_CHUNK %u differs from full decode\n", k);
          ok = false;
        }
      }
  }
  return ok;
}

// --- phase 2: mixed traffic -------------------------------------------------

struct TrafficResult {
  uint64_t requests = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  uint64_t retries = 0;     // retrying-client extra attempts
  uint64_t bytes_up = 0;    // request bodies sent
  uint64_t bytes_down = 0;  // reply bodies received
  double wall_s = 0.0;
  std::vector<double> latencies_ms;
};

TrafficResult run_traffic(uint16_t port, const Workload& w, int clients,
                          int per_client) {
  // Bodies are immutable and shared across client threads.
  const auto compress_body = build_compress_body(w.cfg, w.dims, w.field.data());
  const auto decompress_body =
      build_decompress_body(0, 8, w.container.data(), w.container.size());
  const std::vector<uint8_t> stats_body;

  TrafficResult total;
  std::mutex merge_mu;
  std::vector<std::thread> threads;
  sperr::Timer wall;
  for (int cidx = 0; cidx < clients; ++cidx) {
    threads.emplace_back([&, cidx] {
      TrafficResult local;
      Client c(client_config(port, 0xbe4c0 + uint64_t(cidx)));
      sperr::Timer timer;
      for (int i = 0; i < per_client; ++i) {
        // 1:2:1:1 compress:decompress-ish mix; compress dominates cost, so
        // it appears once per five requests.
        const int kind = i % 5;
        const std::vector<uint8_t>* body = &stats_body;
        Opcode op = Opcode::stats;
        std::vector<uint8_t> extract_body;
        switch (kind) {
          case 0: op = Opcode::compress; body = &compress_body; break;
          case 1: op = Opcode::decompress; body = &decompress_body; break;
          case 2: op = Opcode::verify; body = &w.container; break;
          case 3:
            op = Opcode::extract_chunk;
            extract_body = build_extract_body(uint32_t(i) % uint32_t(w.nchunks),
                                              w.container.data(), w.container.size());
            body = &extract_body;
            break;
          default: break;  // stats
        }
        timer.reset();
        const CallResult res = c.call(op, *body);
        if (!res.ok) {
          // Transport failure that survived the retry policy: the server
          // is gone or wedged. Stop this client; main exits 2.
          ++local.errors;
          break;
        }
        local.latencies_ms.push_back(timer.seconds() * 1e3);
        ++local.requests;
        local.bytes_up += body->size();
        local.bytes_down += res.body.size();
        if (res.status == WireStatus::busy)
          ++local.busy;
        else if (res.status != WireStatus::ok)
          ++local.errors;
      }
      local.retries = c.stats().retries;
      std::lock_guard<std::mutex> lk(merge_mu);
      total.requests += local.requests;
      total.busy += local.busy;
      total.errors += local.errors;
      total.retries += local.retries;
      total.bytes_up += local.bytes_up;
      total.bytes_down += local.bytes_down;
      total.latencies_ms.insert(total.latencies_ms.end(),
                                local.latencies_ms.begin(),
                                local.latencies_ms.end());
    });
  }
  for (auto& t : threads) t.join();
  total.wall_s = wall.seconds();
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  return total;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t i = size_t(p * double(sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

// --- phase 3: deterministic backpressure ------------------------------------

bool check_backpressure() {
  ServerConfig sc;
  sc.workers = 1;
  sc.queue_capacity = 1;
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> held{0};
  // Hold the single worker on its first job so the queue's one slot and
  // the BUSY path can be exercised without sleeps or timing assumptions.
  sc.process_hook = [&](uint8_t) {
    if (held.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return release; });
    }
  };
  Server srv(sc);
  if (srv.start() != sperr::Status::ok) return false;

  const std::vector<uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};  // VERIFY -> corrupt
  auto ask = [&](uint64_t id, uint8_t& status) {
    RawConn c(srv.port());
    FrameHeader h;
    std::vector<uint8_t> reply;
    if (c.fd < 0 || !roundtrip(c.fd, Opcode::verify, id, junk, h, reply))
      return false;
    status = h.code;
    return true;
  };

  uint8_t st_a = 0xff, st_b = 0xff, st_c = 0xff;
  bool ok_a = false, ok_b = false;
  std::thread ta([&] { ok_a = ask(1, st_a); });  // occupies the worker
  while (held.load() == 0) std::this_thread::yield();
  std::thread tb([&] { ok_b = ask(2, st_b); });  // occupies the queue slot
  sperr::Timer guard;
  while (srv.stats().queue_depth < 1 && guard.seconds() < 10.0)
    std::this_thread::yield();
  // Worker held + queue full: the next request must be rejected, not queued.
  const bool ok_c = ask(3, st_c);
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  ta.join();
  tb.join();
  srv.stop();

  const bool ok = ok_a && ok_b && ok_c &&
                  st_a == uint8_t(WireStatus::corrupt) &&
                  st_b == uint8_t(WireStatus::corrupt) &&
                  st_c == uint8_t(WireStatus::busy);
  if (!ok)
    std::fprintf(stderr,
                 "bench_server: backpressure contract violated "
                 "(status a=%u b=%u c=%u, transport %d/%d/%d)\n",
                 st_a, st_b, st_c, ok_a, ok_b, ok_c);
  return ok;
}

// --- phase 4: degraded-conditions hardening ---------------------------------

struct HardeningResult {
  bool timeouts_read_ok = false;
  bool timeouts_request_ok = false;
  bool conns_rejected_ok = false;
  bool bomb_rejected_ok = false;
  bool budget_enforced_ok = false;
};

/// 96-byte v2 container declaring 2^21 x 2^21 x 1 doubles (32 TiB).
std::vector<uint8_t> bomb_container() {
  std::vector<uint8_t> inner;
  sperr::put_u32(inner, 0x43525053);  // 'SPRC'
  sperr::put_u8(inner, 0);            // mode = pwe
  sperr::put_u8(inner, 8);            // precision = f64
  sperr::put_u64(inner, uint64_t(1) << 21);
  sperr::put_u64(inner, uint64_t(1) << 21);
  sperr::put_u64(inner, 1);
  for (int i = 0; i < 3; ++i) sperr::put_u64(inner, 256);  // chunk dims
  sperr::put_f64(inner, 1e-6);
  sperr::put_u32(inner, 1);  // nchunks
  sperr::put_u64(inner, 0);  // entry 0: speck_len
  sperr::put_u64(inner, 0);  // entry 0: outlier_len
  std::vector<uint8_t> out;
  sperr::put_u32(out, 0x5a525053);  // 'SPRZ'
  sperr::put_u8(out, 2);
  sperr::put_u8(out, 0);
  sperr::put_u64(out, inner.size());
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

/// STATS over a raw connection, parsed into a snapshot.
bool fetch_stats(int fd, uint64_t id, StatsSnapshot& snap) {
  FrameHeader h;
  std::vector<uint8_t> reply;
  return roundtrip(fd, Opcode::stats, id, {}, h, reply) &&
         h.code == uint8_t(WireStatus::ok) &&
         StatsSnapshot::parse(reply.data(), reply.size(), snap);
}

HardeningResult check_hardening() {
  HardeningResult r;

  // (a) A connection that sends 23 of 24 header bytes and stalls must be
  //     reaped by the I/O deadline — while a well-behaved client on
  //     another connection keeps getting answers.
  {
    ServerConfig sc;
    sc.workers = 1;
    sc.io_timeout_ms = 200;
    sc.idle_timeout_ms = 2000;
    Server srv(sc);
    if (srv.start() != sperr::Status::ok) return r;
    RawConn stall(srv.port());
    std::vector<uint8_t> header;
    put_frame_header(header, kRequestMagic, uint8_t(Opcode::stats), 7, 0);
    bool ok = stall.fd >= 0 && write_all(stall.fd, header.data(), 23);
    RawConn good(srv.port());
    StatsSnapshot snap;
    ok = ok && good.fd >= 0 && fetch_stats(good.fd, 1, snap);
    sperr::Timer guard;
    while (ok && guard.seconds() < 10.0) {
      if (!fetch_stats(good.fd, 2, snap)) {
        ok = false;
        break;
      }
      if (snap.timeouts_read >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // The stalled connection is gone, the good one still answers.
    ok = ok && snap.timeouts_read >= 1 && fetch_stats(good.fd, 3, snap) &&
         snap.active_connections == 1;
    srv.stop();
    r.timeouts_read_ok = ok;
    if (!ok) std::fprintf(stderr, "bench_server: stalled-header reap failed\n");
  }

  // (b) A request that outlives the compute deadline is answered
  //     DEADLINE_EXCEEDED promptly instead of pinning the connection.
  {
    ServerConfig sc;
    sc.workers = 1;
    sc.request_deadline_ms = 100;
    sc.process_hook = [](uint8_t opcode) {
      if (Opcode(opcode) == Opcode::verify)
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
    };
    Server srv(sc);
    if (srv.start() != sperr::Status::ok) return r;
    RawConn c(srv.port());
    const std::vector<uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
    FrameHeader h;
    std::vector<uint8_t> reply;
    bool ok = c.fd >= 0 && roundtrip(c.fd, Opcode::verify, 9, junk, h, reply) &&
              h.code == uint8_t(WireStatus::deadline_exceeded);
    // The lone worker is still inside the hook; let it drain so the STATS
    // probe below is answered inside its own deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    StatsSnapshot snap;
    ok = ok && fetch_stats(c.fd, 10, snap) && snap.timeouts_request >= 1;
    srv.stop();
    r.timeouts_request_ok = ok;
    if (!ok) std::fprintf(stderr, "bench_server: request deadline failed\n");
  }

  // (c) Past --max-conns, a new connection gets exactly one unsolicited
  //     BUSY (request id 0) and a close; the capped connection count shows
  //     up in conns_rejected.
  {
    ServerConfig sc;
    sc.workers = 1;
    sc.max_connections = 1;
    Server srv(sc);
    if (srv.start() != sperr::Status::ok) return r;
    RawConn a(srv.port());
    StatsSnapshot snap;
    bool ok = a.fd >= 0 && fetch_stats(a.fd, 1, snap);  // a is registered now
    RawConn b(srv.port());
    uint8_t raw[kFrameHeaderBytes];
    ok = ok && b.fd >= 0 && read_exact(b.fd, raw, sizeof raw);
    if (ok) {
      const FrameHeader h = parse_frame_header(raw);
      ok = h.magic == kReplyMagic && h.code == uint8_t(WireStatus::busy) &&
           h.request_id == 0 && h.body_len == 0;
      // ... followed by EOF, not more frames.
      char extra;
      ok = ok && ::recv(b.fd, &extra, 1, 0) == 0;
    }
    ok = ok && fetch_stats(a.fd, 2, snap) && snap.conns_rejected >= 1 &&
         snap.active_connections == 1;
    srv.stop();
    r.conns_rejected_ok = ok;
    if (!ok) std::fprintf(stderr, "bench_server: connection cap failed\n");
  }

  // (d) A terabyte-declaring bomb is answered RESOURCE_EXHAUSTED in bounded
  //     time, accounted in STATS, and honest traffic on a neighbouring
  //     connection is untouched — byte-identical replies before and after.
  {
    ServerConfig sc;
    sc.workers = 2;
    Server srv(sc);
    if (srv.start() != sperr::Status::ok) return r;
    const Dims dims{16, 16, 16};
    const auto field = sperr::data::miranda_pressure(dims);
    sperr::Config cfg;
    cfg.tolerance = sperr::tolerance_from_idx(field.data(), field.size(), 18);
    const auto honest = sperr::compress(field.data(), dims, cfg);
    const auto bomb = bomb_container();

    RawConn victim(srv.port());
    RawConn attacker(srv.port());
    FrameHeader h;
    std::vector<uint8_t> before, after, reply;
    bool ok = victim.fd >= 0 && attacker.fd >= 0 &&
              roundtrip(victim.fd, Opcode::decompress, 1,
                        build_decompress_body(0, 8, honest.data(),
                                              honest.size()),
                        h, before) &&
              h.code == uint8_t(WireStatus::ok);
    sperr::Timer bomb_timer;
    ok = ok &&
         roundtrip(attacker.fd, Opcode::decompress, 2,
                   build_decompress_body(0, 8, bomb.data(), bomb.size()), h,
                   reply) &&
         h.code == uint8_t(WireStatus::resource_exhausted) && reply.empty() &&
         bomb_timer.seconds() < 0.25;
    ok = ok &&
         roundtrip(victim.fd, Opcode::decompress, 3,
                   build_decompress_body(0, 8, honest.data(), honest.size()),
                   h, after) &&
         h.code == uint8_t(WireStatus::ok) && after == before;
    StatsSnapshot snap;
    ok = ok && fetch_stats(attacker.fd, 4, snap) &&
         snap.resource_exhausted >= 1;
    srv.stop();
    r.bomb_rejected_ok = ok;
    if (!ok) std::fprintf(stderr, "bench_server: bomb rejection failed\n");
  }

  // (e) The --max-output-mb / --max-memory-mb knobs bind: a ceiling below
  //     an honest request's decoded size rejects it with status 8; a
  //     generous budget admits the same bytes.
  {
    const Dims dims{32, 32, 32};  // decodes to 256 KiB
    const auto field = sperr::data::miranda_pressure(dims);
    sperr::Config cfg;
    cfg.tolerance = sperr::tolerance_from_idx(field.data(), field.size(), 18);
    const auto honest = sperr::compress(field.data(), dims, cfg);
    const auto body = build_decompress_body(0, 8, honest.data(), honest.size());

    auto decompress_status = [&](uint64_t max_output, uint64_t max_memory,
                                 uint8_t& code) {
      ServerConfig sc;
      sc.workers = 1;
      sc.max_output_bytes = max_output;
      sc.max_memory_bytes = max_memory;
      Server srv(sc);
      if (srv.start() != sperr::Status::ok) return false;
      RawConn c(srv.port());
      FrameHeader h;
      std::vector<uint8_t> reply;
      const bool ok =
          c.fd >= 0 && roundtrip(c.fd, Opcode::decompress, 1, body, h, reply);
      code = h.code;
      srv.stop();
      return ok;
    };

    uint8_t tight = 0xff, pooled = 0xff, generous = 0xff;
    bool ok = decompress_status(64 << 10, 0, tight) &&
              tight == uint8_t(WireStatus::resource_exhausted);
    ok = ok && decompress_status(0, 128 << 10, pooled) &&
         pooled == uint8_t(WireStatus::resource_exhausted);
    ok = ok && decompress_status(4 << 20, 16 << 20, generous) &&
         generous == uint8_t(WireStatus::ok);
    r.budget_enforced_ok = ok;
    if (!ok) std::fprintf(stderr, "bench_server: budget enforcement failed\n");
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (a == "--smoke") {
      opt.smoke = true;
    } else if (a == "--json") {
      opt.json = next();
    } else if (a == "--port") {
      opt.port = uint16_t(std::atoi(next()));
    } else if (a == "--clients") {
      opt.clients = std::atoi(next());
    } else if (a == "--requests") {
      opt.per_client = std::atoi(next());
    } else if (a == "--n") {
      opt.n = size_t(std::atol(next()));
    } else if (a == "--workers") {
      opt.workers = std::atoi(next());
    } else if (a == "--queue-depth") {
      opt.queue_depth = size_t(std::atol(next()));
    } else {
      usage();
    }
  }
  if (opt.smoke) {  // quick pass: fewer clients/requests, same field size
    opt.clients = std::min(opt.clients, 2);
    opt.per_client = std::min(opt.per_client, 10);
  }
  if (opt.clients < 1 || opt.per_client < 1 || opt.n < 8) usage();

  std::printf("bench_server: preparing %zu^3 workload...\n", opt.n);
  const Workload w(opt.n);

  // In-process server unless --port points at a running sperr_serve.
  std::unique_ptr<Server> local;
  uint16_t port = opt.port;
  const int workers = sperr::resolve_thread_count(opt.workers);
  if (port == 0) {
    ServerConfig sc;
    sc.workers = workers;
    sc.queue_capacity = opt.queue_depth;
    local = std::make_unique<Server>(sc);
    if (local->start() != sperr::Status::ok) {
      std::fprintf(stderr, "bench_server: cannot start in-process server\n");
      return 1;
    }
    port = local->port();
  }

  bool identical = false;
  {
    Client probe(client_config(port, 0x1de47ULL));
    identical = check_identity(probe, w);
  }
  std::printf("bench_server: identity probes %s\n", identical ? "ok" : "FAILED");

  const TrafficResult t = run_traffic(port, w, opt.clients, opt.per_client);
  const double rps = t.wall_s > 0 ? double(t.requests) / t.wall_s : 0.0;
  const double p50 = percentile(t.latencies_ms, 0.50);
  const double p99 = percentile(t.latencies_ms, 0.99);
  std::printf(
      "bench_server: %llu requests over %d client(s) in %.2fs -> %.1f req/s, "
      "p50 %.2f ms, p99 %.2f ms, %llu busy, %llu error(s)\n",
      static_cast<unsigned long long>(t.requests), opt.clients, t.wall_s, rps,
      p50, p99, static_cast<unsigned long long>(t.busy),
      static_cast<unsigned long long>(t.errors));

  if (local) local->stop();

  const bool backpressure_ok = check_backpressure();
  std::printf("bench_server: backpressure contract %s\n",
              backpressure_ok ? "ok" : "FAILED");

  const HardeningResult hr = check_hardening();
  std::printf(
      "bench_server: hardening checks: stalled-header reap %s, "
      "request deadline %s, connection cap %s, bomb rejection %s, "
      "memory budget %s\n",
      hr.timeouts_read_ok ? "ok" : "FAILED",
      hr.timeouts_request_ok ? "ok" : "FAILED",
      hr.conns_rejected_ok ? "ok" : "FAILED",
      hr.bomb_rejected_ok ? "ok" : "FAILED",
      hr.budget_enforced_ok ? "ok" : "FAILED");

  const bool traffic_ok = t.errors == 0 && t.requests > 0;

  char buf[2048];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"benchmark\": \"server\",\n"
                "  \"dims\": [%zu, %zu, %zu],\n"
                "  \"clients\": %d,\n"
                "  \"workers\": %d,\n"
                "  \"queue_capacity\": %zu,\n"
                "  \"requests_total\": %llu,\n"
                "  \"wall_seconds\": %.4f,\n"
                "  \"requests_per_s\": %.1f,\n"
                "  \"p50_ms\": %.3f,\n"
                "  \"p99_ms\": %.3f,\n"
                "  \"busy_replies\": %llu,\n"
                "  \"request_errors\": %llu,\n"
                "  \"client_retries\": %llu,\n"
                "  \"mb_up\": %.2f,\n"
                "  \"mb_down\": %.2f,\n"
                "  \"responses_identical\": %s,\n"
                "  \"backpressure_ok\": %s,\n"
                "  \"timeouts_read_ok\": %s,\n"
                "  \"timeouts_request_ok\": %s,\n"
                "  \"conns_rejected_ok\": %s,\n"
                "  \"bomb_rejected_ok\": %s,\n"
                "  \"budget_enforced_ok\": %s,\n"
                "  \"traffic_ok\": %s\n"
                "}\n",
                w.dims.x, w.dims.y, w.dims.z, opt.clients, workers,
                opt.queue_depth, static_cast<unsigned long long>(t.requests),
                t.wall_s, rps, p50, p99,
                static_cast<unsigned long long>(t.busy),
                static_cast<unsigned long long>(t.errors),
                static_cast<unsigned long long>(t.retries),
                double(t.bytes_up) / 1e6, double(t.bytes_down) / 1e6,
                identical ? "true" : "false", backpressure_ok ? "true" : "false",
                hr.timeouts_read_ok ? "true" : "false",
                hr.timeouts_request_ok ? "true" : "false",
                hr.conns_rejected_ok ? "true" : "false",
                hr.bomb_rejected_ok ? "true" : "false",
                hr.budget_enforced_ok ? "true" : "false",
                traffic_ok ? "true" : "false");
  std::printf("%s", buf);
  if (!opt.json.empty()) {
    std::ofstream out(opt.json);
    out << buf;
  }
  return (identical && backpressure_ok && hr.timeouts_read_ok &&
          hr.timeouts_request_ok && hr.conns_rejected_ok &&
          hr.bomb_rejected_ok && hr.budget_enforced_ok && traffic_ok)
             ? 0
             : 2;
}
