// Microbenchmarks (google-benchmark) for the individual pipeline stages:
// wavelet transforms, SPECK encode/decode, the outlier coder, the lossless
// back end, and the ZFP-like block codec. Useful for tracking throughput
// regressions independent of the figure-level harnesses.
//
// A second mode records the blocked-vs-reference wavelet speedup as a
// machine-readable JSON file (the PR-over-PR perf trail; CI uploads it as
// an artifact):
//   bench_micro --wavelet_json=BENCH_wavelet.json [--wavelet_n=256]
// A third mode does the same for the flattened-vs-reference SPECK coder:
//   bench_micro --speck_json=BENCH_speck.json [--speck_n=256] [--speck_threads=8]
// A fourth mode records the block-parallel lossless codec against the
// single-block reference on a real SPERR container payload:
//   bench_micro --lossless_json=BENCH_lossless.json [--lossless_n=256]
//               [--lossless_threads=8]
// A fifth mode records the cost of the fault-isolation layer: checksum
// verification overhead and tolerant decode of a damaged archive:
//   bench_micro --recovery_json=BENCH_recovery.json [--recovery_n=128]

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/timer.h"

#include "baselines/zfplike/block_codec.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "lossless/codec.h"
#include "outlier/coder.h"
#include "speck/decoder.h"
#include "speck/encoder.h"
#include "sperr/sperr.h"
#include "wavelet/dwt.h"

namespace {

using sperr::Dims;

const std::vector<double>& test_volume(Dims dims) {
  static const Dims cached_dims{64, 64, 64};
  static const std::vector<double> vol =
      sperr::data::miranda_pressure(cached_dims);
  (void)dims;
  return vol;
}

void BM_ForwardDwt3D(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  const auto& vol = test_volume(dims);
  std::vector<double> work(vol.size());
  for (auto _ : state) {
    work = vol;
    sperr::wavelet::forward_dwt(work.data(), dims);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(vol.size()));
}
BENCHMARK(BM_ForwardDwt3D);

void BM_InverseDwt3D(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  std::vector<double> work(coeffs.size());
  for (auto _ : state) {
    work = coeffs;
    sperr::wavelet::inverse_dwt(work.data(), dims);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(coeffs.size()));
}
BENCHMARK(BM_InverseDwt3D);

void BM_ForwardDwt3D_Reference(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  const auto& vol = test_volume(dims);
  std::vector<double> work(vol.size());
  for (auto _ : state) {
    work = vol;
    sperr::wavelet::forward_dwt_reference(work.data(), dims);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(vol.size()));
}
BENCHMARK(BM_ForwardDwt3D_Reference);

void BM_InverseDwt3D_Reference(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  std::vector<double> work(coeffs.size());
  for (auto _ : state) {
    work = coeffs;
    sperr::wavelet::inverse_dwt_reference(work.data(), dims);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(coeffs.size()));
}
BENCHMARK(BM_InverseDwt3D_Reference);

void BM_SpeckEncode(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  const double q = std::ldexp(1.0e6, -int(state.range(0)));  // vs field scale
  for (auto _ : state) {
    auto stream = sperr::speck::encode(coeffs.data(), dims, q);
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(coeffs.size()));
}
BENCHMARK(BM_SpeckEncode)->Arg(10)->Arg(20)->Arg(30);

void BM_SpeckDecode(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  const double q = std::ldexp(1.0e6, -int(state.range(0)));
  const auto stream = sperr::speck::encode(coeffs.data(), dims, q);
  std::vector<double> out(coeffs.size());
  for (auto _ : state) {
    (void)sperr::speck::decode(stream.data(), stream.size(), dims, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(coeffs.size()));
}
BENCHMARK(BM_SpeckDecode)->Arg(10)->Arg(20)->Arg(30);

void BM_SpeckEncode_Reference(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  const double q = std::ldexp(1.0e6, -int(state.range(0)));
  for (auto _ : state) {
    auto stream = sperr::speck::encode_reference(coeffs.data(), dims, q);
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(coeffs.size()));
}
BENCHMARK(BM_SpeckEncode_Reference)->Arg(10)->Arg(20)->Arg(30);

void BM_SpeckDecode_Reference(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  const double q = std::ldexp(1.0e6, -int(state.range(0)));
  const auto stream = sperr::speck::encode(coeffs.data(), dims, q);
  std::vector<double> out(coeffs.size());
  for (auto _ : state) {
    (void)sperr::speck::decode_reference(stream.data(), stream.size(), dims,
                                         out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(coeffs.size()));
}
BENCHMARK(BM_SpeckDecode_Reference)->Arg(10)->Arg(20)->Arg(30);

void BM_OutlierEncode(benchmark::State& state) {
  sperr::Rng rng(1);
  const uint64_t len = 1 << 20;
  const size_t count = size_t(state.range(0));
  std::vector<sperr::outlier::Outlier> outliers;
  for (size_t i = 0; i < count; ++i)
    outliers.push_back({rng.below(len), (rng.uniform() - 0.5) * 10.0 + 2.0});
  for (auto _ : state) {
    auto stream = sperr::outlier::encode(outliers, len, 1.0);
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(count));
}
BENCHMARK(BM_OutlierEncode)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LosslessCompress(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  const auto stream = sperr::speck::encode(coeffs.data(), dims, 1.0);
  for (auto _ : state) {
    auto packed = sperr::lossless::compress(stream);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(stream.size()));
}
BENCHMARK(BM_LosslessCompress);

void BM_ZfpBlockEncode(benchmark::State& state) {
  sperr::Rng rng(2);
  double block[64];
  for (auto& v : block) v = rng.gaussian();
  sperr::zfplike::BlockParams params;
  params.dims = 3;
  params.minexp = -20;
  for (auto _ : state) {
    sperr::BitWriter bw;
    sperr::zfplike::encode_block(bw, block, params);
    benchmark::DoNotOptimize(bw.byte_count());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 64);
}
BENCHMARK(BM_ZfpBlockEncode);

void BM_SperrEndToEnd(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  const auto& vol = test_volume(dims);
  sperr::Config cfg;
  cfg.tolerance = sperr::tolerance_from_idx(vol.data(), vol.size(), int(state.range(0)));
  for (auto _ : state) {
    auto blob = sperr::compress(vol.data(), dims, cfg);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(vol.size()));
}
BENCHMARK(BM_SperrEndToEnd)->Arg(10)->Arg(20)->Arg(30);

void BM_SyntheticGenerator(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  for (auto _ : state) {
    auto f = sperr::data::nyx_dark_matter_density(dims, uint64_t(state.iterations()));
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(dims.total()));
}
BENCHMARK(BM_SyntheticGenerator);

// --- BENCH_wavelet.json: blocked-vs-reference CDF 9/7 speedup record -------

struct WaveletRecord {
  Dims dims;
  int repeats = 3;
  double reference_s = 0.0;  // best-of-repeats forward+inverse, per-line path
  double blocked_s = 0.0;    // same volume, blocked/batched path
  bool bit_identical = false;
};

WaveletRecord run_wavelet_record(size_t n, int repeats) {
  using namespace sperr::wavelet;
  WaveletRecord rec;
  rec.dims = Dims{n, n, n};
  rec.repeats = repeats;

  const auto vol = sperr::data::miranda_pressure(rec.dims);
  std::vector<double> a(vol), b(vol);

  // Equivalence first: the speedup claim is only meaningful if the blocked
  // path produces the very same bits as the reference it replaces.
  forward_dwt(a.data(), rec.dims);
  forward_dwt_reference(b.data(), rec.dims);
  rec.bit_identical =
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
  inverse_dwt(a.data(), rec.dims);
  inverse_dwt_reference(b.data(), rec.dims);
  rec.bit_identical = rec.bit_identical &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;

  sperr::Timer timer;
  std::vector<double> work(vol.size());
  rec.reference_s = 1e300;
  rec.blocked_s = 1e300;
  for (int r = 0; r < repeats; ++r) {
    work = vol;
    timer.reset();
    forward_dwt_reference(work.data(), rec.dims);
    inverse_dwt_reference(work.data(), rec.dims);
    rec.reference_s = std::min(rec.reference_s, timer.seconds());

    work = vol;
    timer.reset();
    forward_dwt(work.data(), rec.dims);
    inverse_dwt(work.data(), rec.dims);
    rec.blocked_s = std::min(rec.blocked_s, timer.seconds());
  }
  return rec;
}

int write_wavelet_json(const std::string& path, size_t n, int repeats) {
  const WaveletRecord rec = run_wavelet_record(n, repeats);
  const double bytes = double(rec.dims.total()) * sizeof(double);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return 1;
  }
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"benchmark\": \"cdf97_3d_forward_inverse\",\n"
                "  \"dims\": [%zu, %zu, %zu],\n"
                "  \"repeats\": %d,\n"
                "  \"line_batch\": %zu,\n"
                "  \"reference_seconds\": %.6f,\n"
                "  \"blocked_seconds\": %.6f,\n"
                "  \"speedup\": %.3f,\n"
                "  \"reference_mbps\": %.1f,\n"
                "  \"blocked_mbps\": %.1f,\n"
                "  \"bit_identical\": %s\n"
                "}\n",
                rec.dims.x, rec.dims.y, rec.dims.z, rec.repeats,
                sperr::wavelet::kLineBatch, rec.reference_s, rec.blocked_s,
                rec.reference_s / rec.blocked_s, bytes / rec.reference_s / 1e6,
                bytes / rec.blocked_s / 1e6, rec.bit_identical ? "true" : "false");
  out << buf;
  std::printf("%s", buf);
  // A blocked path that is not bit-identical to the reference is a
  // correctness regression: fail so CI notices.
  if (!rec.bit_identical) return 2;
  return 0;
}

// --- BENCH_speck.json: flattened-vs-reference SPECK speedup record ---------

struct SpeckRecord {
  Dims dims;
  int repeats = 3;
  int threads = 8;             // lanes for the parallel measurements
  size_t planes = 0;
  size_t payload_bits = 0;
  double ref_encode_s = 0.0;   // best-of-repeats, recursive reference coder
  double ref_decode_s = 0.0;
  double fast_encode_s = 0.0;  // flattened production coder, serial
  double fast_decode_s = 0.0;
  double par_encode_s = 0.0;   // production coder at `threads` lanes
  double par_decode_s = 0.0;
  bool bit_identical = false;      // serial fast coder vs reference
  bool parallel_bit_identical = false;  // every thread count vs reference
  std::vector<sperr::speck::PassTiming> passes;  // serial fast encode
};

SpeckRecord run_speck_record(size_t n, int repeats, int threads) {
  using namespace sperr::speck;
  SpeckRecord rec;
  rec.dims = Dims{n, n, n};
  rec.repeats = repeats;
  rec.threads = threads;

  auto coeffs = sperr::data::miranda_pressure(rec.dims);
  sperr::wavelet::forward_dwt(coeffs.data(), rec.dims);
  double max_mag = 0.0;
  for (const double c : coeffs) max_mag = std::max(max_mag, std::fabs(c));
  const double q = std::ldexp(max_mag, -20);  // ~20 bitplanes of payload

  // Equivalence first: streams byte-identical, decodes bit-identical, stats
  // equal. The speedup claim is meaningless without this.
  EncodeStats ref_stats, fast_stats;
  const auto ref_stream = encode_reference(coeffs.data(), rec.dims, q, 0, &ref_stats);
  const auto fast_stream = encode(coeffs.data(), rec.dims, q, 0, &fast_stats);
  std::vector<double> ref_out(coeffs.size()), fast_out(coeffs.size());
  (void)decode_reference(ref_stream.data(), ref_stream.size(), rec.dims, ref_out.data());
  (void)decode(fast_stream.data(), fast_stream.size(), rec.dims, fast_out.data());
  rec.bit_identical =
      fast_stream == ref_stream &&
      fast_stats.payload_bits == ref_stats.payload_bits &&
      fast_stats.planes_coded == ref_stats.planes_coded &&
      fast_stats.significant_count == ref_stats.significant_count &&
      std::memcmp(fast_out.data(), ref_out.data(),
                  ref_out.size() * sizeof(double)) == 0;
  rec.planes = fast_stats.planes_coded;
  rec.payload_bits = fast_stats.payload_bits;
  rec.passes = fast_stats.passes;

  // Intra-chunk lane determinism: streams and decodes must stay identical
  // at every thread count, not just the benchmarked one.
  rec.parallel_bit_identical = rec.bit_identical;
  for (const int t : {2, 4, 8}) {
    const auto s = encode(coeffs.data(), rec.dims, q, 0, nullptr, nullptr, t);
    std::vector<double> out(coeffs.size());
    (void)decode(s.data(), s.size(), rec.dims, out.data(), nullptr, t);
    rec.parallel_bit_identical =
        rec.parallel_bit_identical && s == ref_stream &&
        std::memcmp(out.data(), ref_out.data(),
                    out.size() * sizeof(double)) == 0;
  }

  sperr::Timer timer;
  rec.ref_encode_s = rec.ref_decode_s = 1e300;
  rec.fast_encode_s = rec.fast_decode_s = 1e300;
  rec.par_encode_s = rec.par_decode_s = 1e300;
  for (int r = 0; r < repeats; ++r) {
    timer.reset();
    auto s = encode_reference(coeffs.data(), rec.dims, q);
    rec.ref_encode_s = std::min(rec.ref_encode_s, timer.seconds());
    benchmark::DoNotOptimize(s.data());

    timer.reset();
    s = encode(coeffs.data(), rec.dims, q);
    rec.fast_encode_s = std::min(rec.fast_encode_s, timer.seconds());
    benchmark::DoNotOptimize(s.data());

    timer.reset();
    s = encode(coeffs.data(), rec.dims, q, 0, nullptr, nullptr, threads);
    rec.par_encode_s = std::min(rec.par_encode_s, timer.seconds());
    benchmark::DoNotOptimize(s.data());

    timer.reset();
    (void)decode_reference(ref_stream.data(), ref_stream.size(), rec.dims,
                           ref_out.data());
    rec.ref_decode_s = std::min(rec.ref_decode_s, timer.seconds());
    benchmark::DoNotOptimize(ref_out.data());

    timer.reset();
    (void)decode(fast_stream.data(), fast_stream.size(), rec.dims, fast_out.data());
    rec.fast_decode_s = std::min(rec.fast_decode_s, timer.seconds());
    benchmark::DoNotOptimize(fast_out.data());

    timer.reset();
    (void)decode(fast_stream.data(), fast_stream.size(), rec.dims,
                 fast_out.data(), nullptr, threads);
    rec.par_decode_s = std::min(rec.par_decode_s, timer.seconds());
    benchmark::DoNotOptimize(fast_out.data());
  }
  return rec;
}

int write_speck_json(const std::string& path, size_t n, int repeats, int threads) {
  const SpeckRecord rec = run_speck_record(n, repeats, threads);
  const double mvox_e = double(rec.dims.total()) / 1e6;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return 1;
  }
  char buf[2560];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"benchmark\": \"speck_3d_encode_decode\",\n"
      "  \"dims\": [%zu, %zu, %zu],\n"
      "  \"repeats\": %d,\n"
      "  \"threads\": %d,\n"
      "  \"planes\": %zu,\n"
      "  \"payload_bits\": %zu,\n"
      "  \"reference_encode_seconds\": %.6f,\n"
      "  \"reference_decode_seconds\": %.6f,\n"
      "  \"fast_encode_seconds\": %.6f,\n"
      "  \"fast_decode_seconds\": %.6f,\n"
      "  \"parallel_encode_seconds\": %.6f,\n"
      "  \"parallel_decode_seconds\": %.6f,\n"
      "  \"encode_speedup\": %.3f,\n"
      "  \"decode_speedup\": %.3f,\n"
      "  \"combined_speedup\": %.3f,\n"
      "  \"parallel_encode_speedup\": %.3f,\n"
      "  \"parallel_decode_speedup\": %.3f,\n"
      "  \"fast_encode_mvox_s\": %.2f,\n"
      "  \"fast_decode_mvox_s\": %.2f,\n"
      "  \"bit_identical\": %s,\n"
      "  \"parallel_bit_identical\": %s,\n",
      rec.dims.x, rec.dims.y, rec.dims.z, rec.repeats, rec.threads, rec.planes,
      rec.payload_bits, rec.ref_encode_s, rec.ref_decode_s, rec.fast_encode_s,
      rec.fast_decode_s, rec.par_encode_s, rec.par_decode_s,
      rec.ref_encode_s / rec.fast_encode_s,
      rec.ref_decode_s / rec.fast_decode_s,
      (rec.ref_encode_s + rec.ref_decode_s) /
          (rec.fast_encode_s + rec.fast_decode_s),
      rec.fast_encode_s / rec.par_encode_s,
      rec.fast_decode_s / rec.par_decode_s,
      mvox_e / rec.fast_encode_s, mvox_e / rec.fast_decode_s,
      rec.bit_identical ? "true" : "false",
      rec.parallel_bit_identical ? "true" : "false");
  std::string json(buf);
  // Per-pass cost records from the serial fast encode, top plane first. The
  // bit counts are stream properties (reproducible anywhere); the seconds
  // are this machine's wall clock.
  json += "  \"per_pass\": [\n";
  for (size_t i = 0; i < rec.passes.size(); ++i) {
    const auto& p = rec.passes[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"plane\": %d, \"sorting_seconds\": %.6f,"
                  " \"significance_seconds\": %.6f,"
                  " \"refinement_seconds\": %.6f,"
                  " \"sorting_bits\": %llu, \"refinement_bits\": %llu}%s\n",
                  p.plane, p.sorting_s, p.significance_s, p.refinement_s,
                  static_cast<unsigned long long>(p.sorting_bits),
                  static_cast<unsigned long long>(p.refinement_bits),
                  i + 1 < rec.passes.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  out << json;
  std::printf("%s", json.c_str());
  // A fast coder that is not bit-identical to the reference — serial or at
  // any lane count — is a correctness regression: fail so CI notices.
  if (!rec.bit_identical || !rec.parallel_bit_identical) return 2;
  return 0;
}

// --- BENCH_lossless.json: block-parallel vs reference lossless codec -------

struct LosslessRecord {
  Dims dims;
  int repeats = 3;
  int threads = 8;
  size_t input_bytes = 0;
  size_t nblocks = 0;
  size_t reference_bytes = 0;
  size_t blocked_bytes = 0;
  double ref_encode_s = 0.0;       // best-of-repeats, single-block reference
  double ref_decode_s = 0.0;
  double serial_encode_s = 0.0;    // blocked codec, 1 thread
  double serial_decode_s = 0.0;
  double parallel_encode_s = 0.0;  // blocked codec, `threads` threads
  double parallel_decode_s = 0.0;
  bool round_trip_ok = false;
};

LosslessRecord run_lossless_record(size_t n, int repeats, int threads) {
  namespace ll = sperr::lossless;
  LosslessRecord rec;
  rec.dims = Dims{n, n, n};
  rec.repeats = repeats;
  rec.threads = threads;

  // The codec's production workload: a real SPERR container (SPECK +
  // outlier payloads, lossless pass withheld so we can apply it here).
  const auto vol = sperr::data::miranda_pressure(rec.dims);
  sperr::Config cfg;
  cfg.tolerance = sperr::tolerance_from_idx(vol.data(), vol.size(), 20);
  cfg.lossless_pass = false;
  const auto input = sperr::compress(vol.data(), rec.dims, cfg);
  rec.input_bytes = input.size();

  // Equivalence first: both framings must reproduce the input exactly.
  const auto ref_stream = ll::encode_reference(input);
  const auto blocked_stream = ll::compress(input, {size_t(1) << 20, threads});
  rec.reference_bytes = ref_stream.size();
  rec.blocked_bytes = blocked_stream.size();
  std::vector<uint8_t> ref_out, blocked_out;
  rec.round_trip_ok =
      ll::decode_reference(ref_stream.data(), ref_stream.size(), ref_out) ==
          sperr::Status::ok &&
      ll::decompress(blocked_stream, blocked_out) == sperr::Status::ok &&
      ref_out == input && blocked_out == input;
  ll::StreamInfo info;
  if (ll::inspect(blocked_stream.data(), blocked_stream.size(), info) ==
      sperr::Status::ok)
    rec.nblocks = info.blocks.size();

  sperr::Timer timer;
  rec.ref_encode_s = rec.ref_decode_s = 1e300;
  rec.serial_encode_s = rec.serial_decode_s = 1e300;
  rec.parallel_encode_s = rec.parallel_decode_s = 1e300;
  for (int r = 0; r < repeats; ++r) {
    timer.reset();
    auto s = ll::encode_reference(input);
    rec.ref_encode_s = std::min(rec.ref_encode_s, timer.seconds());
    benchmark::DoNotOptimize(s.data());

    timer.reset();
    s = ll::compress(input, {size_t(1) << 20, 1});
    rec.serial_encode_s = std::min(rec.serial_encode_s, timer.seconds());
    benchmark::DoNotOptimize(s.data());

    timer.reset();
    s = ll::compress(input, {size_t(1) << 20, threads});
    rec.parallel_encode_s = std::min(rec.parallel_encode_s, timer.seconds());
    benchmark::DoNotOptimize(s.data());

    timer.reset();
    (void)ll::decode_reference(ref_stream.data(), ref_stream.size(), ref_out);
    rec.ref_decode_s = std::min(rec.ref_decode_s, timer.seconds());
    benchmark::DoNotOptimize(ref_out.data());

    timer.reset();
    (void)ll::decompress(blocked_stream.data(), blocked_stream.size(),
                         blocked_out, nullptr, 1);
    rec.serial_decode_s = std::min(rec.serial_decode_s, timer.seconds());
    benchmark::DoNotOptimize(blocked_out.data());

    timer.reset();
    (void)ll::decompress(blocked_stream.data(), blocked_stream.size(),
                         blocked_out, nullptr, threads);
    rec.parallel_decode_s = std::min(rec.parallel_decode_s, timer.seconds());
    benchmark::DoNotOptimize(blocked_out.data());
  }
  return rec;
}

int write_lossless_json(const std::string& path, size_t n, int repeats, int threads) {
  const LosslessRecord rec = run_lossless_record(n, repeats, threads);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return 1;
  }
  const double mb = double(rec.input_bytes) / 1e6;
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"benchmark\": \"lossless_blocked_encode_decode\",\n"
      "  \"dims\": [%zu, %zu, %zu],\n"
      "  \"repeats\": %d,\n"
      "  \"threads\": %d,\n"
      "  \"input_bytes\": %zu,\n"
      "  \"nblocks\": %zu,\n"
      "  \"reference_bytes\": %zu,\n"
      "  \"blocked_bytes\": %zu,\n"
      "  \"reference_encode_seconds\": %.6f,\n"
      "  \"reference_decode_seconds\": %.6f,\n"
      "  \"serial_encode_seconds\": %.6f,\n"
      "  \"serial_decode_seconds\": %.6f,\n"
      "  \"parallel_encode_seconds\": %.6f,\n"
      "  \"parallel_decode_seconds\": %.6f,\n"
      "  \"serial_speedup\": %.3f,\n"
      "  \"parallel_speedup\": %.3f,\n"
      "  \"serial_encode_mbps\": %.1f,\n"
      "  \"parallel_encode_mbps\": %.1f,\n"
      "  \"round_trip_ok\": %s\n"
      "}\n",
      rec.dims.x, rec.dims.y, rec.dims.z, rec.repeats, rec.threads,
      rec.input_bytes, rec.nblocks, rec.reference_bytes, rec.blocked_bytes,
      rec.ref_encode_s, rec.ref_decode_s, rec.serial_encode_s,
      rec.serial_decode_s, rec.parallel_encode_s, rec.parallel_decode_s,
      (rec.ref_encode_s + rec.ref_decode_s) /
          (rec.serial_encode_s + rec.serial_decode_s),
      (rec.ref_encode_s + rec.ref_decode_s) /
          (rec.parallel_encode_s + rec.parallel_decode_s),
      mb / rec.serial_encode_s, mb / rec.parallel_encode_s,
      rec.round_trip_ok ? "true" : "false");
  out << buf;
  std::printf("%s", buf);
  // A blocked codec that does not reproduce the input exactly is a
  // correctness regression: fail so CI notices.
  if (!rec.round_trip_ok) return 2;
  return 0;
}

// --- BENCH_recovery.json: fault-isolation overhead record ------------------

struct RecoveryRecord {
  Dims dims;
  int repeats = 3;
  size_t nchunks = 0;
  size_t blob_bytes = 0;
  double strict_decode_s = 1e300;    // best-of-repeats, plain decompress
  double verify_s = 1e300;           // verify_container (checksums only)
  double tolerant_clean_s = 1e300;   // decompress_tolerant, nothing damaged
  double zero_fill_damaged_s = 1e300;
  double coarse_fill_damaged_s = 1e300;
  bool recovery_ok = false;  // damaged decode succeeded and isolated the chunk
};

RecoveryRecord run_recovery_record(size_t n, int repeats) {
  RecoveryRecord rec;
  rec.dims = Dims{n, n, n};
  rec.repeats = repeats;

  // Lossless pass off so the damage lands verbatim in one chunk's streams
  // (checksum verification cost is the same either way).
  const auto vol = sperr::data::miranda_pressure(rec.dims);
  sperr::Config cfg;
  cfg.tolerance = sperr::tolerance_from_idx(vol.data(), vol.size(), 20);
  cfg.chunk_dims = Dims{n / 2, n / 2, n / 2};  // 8 chunks
  cfg.lossless_pass = false;
  const auto blob = sperr::compress(vol.data(), rec.dims, cfg);
  rec.blob_bytes = blob.size();

  auto damaged = blob;
  damaged[blob.size() / 2] ^= 0x40;  // mid-file: inside some chunk's streams

  sperr::Timer timer;
  std::vector<double> out;
  sperr::Dims od;
  for (int r = 0; r < repeats; ++r) {
    timer.reset();
    (void)sperr::decompress(blob.data(), blob.size(), out, od);
    rec.strict_decode_s = std::min(rec.strict_decode_s, timer.seconds());

    timer.reset();
    sperr::DecodeReport vrep;
    (void)sperr::verify_container(blob.data(), blob.size(), &vrep);
    rec.verify_s = std::min(rec.verify_s, timer.seconds());
    rec.nchunks = vrep.chunks.size();

    timer.reset();
    (void)sperr::decompress_tolerant(blob.data(), blob.size(),
                                     sperr::Recovery::zero_fill, out, od, nullptr);
    rec.tolerant_clean_s = std::min(rec.tolerant_clean_s, timer.seconds());

    timer.reset();
    sperr::DecodeReport zrep;
    const sperr::Status zs =
        sperr::decompress_tolerant(damaged.data(), damaged.size(),
                                   sperr::Recovery::zero_fill, out, od, &zrep);
    rec.zero_fill_damaged_s = std::min(rec.zero_fill_damaged_s, timer.seconds());
    rec.recovery_ok = zs == sperr::Status::ok && zrep.damaged == 1;

    timer.reset();
    (void)sperr::decompress_tolerant(damaged.data(), damaged.size(),
                                     sperr::Recovery::coarse_fill, out, od, nullptr);
    rec.coarse_fill_damaged_s = std::min(rec.coarse_fill_damaged_s, timer.seconds());
  }
  return rec;
}

int write_recovery_json(const std::string& path, size_t n, int repeats) {
  const RecoveryRecord rec = run_recovery_record(n, repeats);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return 1;
  }
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"benchmark\": \"recovery_tolerant_decode\",\n"
      "  \"dims\": [%zu, %zu, %zu],\n"
      "  \"repeats\": %d,\n"
      "  \"nchunks\": %zu,\n"
      "  \"blob_bytes\": %zu,\n"
      "  \"strict_decode_seconds\": %.6f,\n"
      "  \"verify_seconds\": %.6f,\n"
      "  \"tolerant_clean_seconds\": %.6f,\n"
      "  \"zero_fill_damaged_seconds\": %.6f,\n"
      "  \"coarse_fill_damaged_seconds\": %.6f,\n"
      "  \"verify_vs_decode\": %.4f,\n"
      "  \"tolerant_overhead\": %.4f,\n"
      "  \"recovery_ok\": %s\n"
      "}\n",
      rec.dims.x, rec.dims.y, rec.dims.z, rec.repeats, rec.nchunks,
      rec.blob_bytes, rec.strict_decode_s, rec.verify_s, rec.tolerant_clean_s,
      rec.zero_fill_damaged_s, rec.coarse_fill_damaged_s,
      rec.verify_s / rec.strict_decode_s,
      rec.tolerant_clean_s / rec.strict_decode_s - 1.0,
      rec.recovery_ok ? "true" : "false");
  out << buf;
  std::printf("%s", buf);
  // A tolerant decoder that cannot isolate a single flipped bit is a
  // correctness regression: fail so CI notices.
  if (!rec.recovery_ok) return 2;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string speck_json_path;
  std::string lossless_json_path;
  std::string recovery_json_path;
  size_t wavelet_n = 256;
  size_t speck_n = 256;
  size_t lossless_n = 256;
  size_t recovery_n = 128;
  int repeats = 3;
  int speck_repeats = 3;
  int speck_threads = 8;
  int lossless_repeats = 3;
  int recovery_repeats = 3;
  int lossless_threads = 8;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--wavelet_json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--wavelet_json="));
    } else if (arg.rfind("--wavelet_n=", 0) == 0) {
      wavelet_n = std::stoul(arg.substr(std::strlen("--wavelet_n=")));
    } else if (arg.rfind("--wavelet_repeats=", 0) == 0) {
      repeats = std::stoi(arg.substr(std::strlen("--wavelet_repeats=")));
    } else if (arg.rfind("--speck_json=", 0) == 0) {
      speck_json_path = arg.substr(std::strlen("--speck_json="));
    } else if (arg.rfind("--speck_n=", 0) == 0) {
      speck_n = std::stoul(arg.substr(std::strlen("--speck_n=")));
    } else if (arg.rfind("--speck_repeats=", 0) == 0) {
      speck_repeats = std::stoi(arg.substr(std::strlen("--speck_repeats=")));
    } else if (arg.rfind("--speck_threads=", 0) == 0) {
      speck_threads = std::stoi(arg.substr(std::strlen("--speck_threads=")));
    } else if (arg.rfind("--lossless_json=", 0) == 0) {
      lossless_json_path = arg.substr(std::strlen("--lossless_json="));
    } else if (arg.rfind("--lossless_n=", 0) == 0) {
      lossless_n = std::stoul(arg.substr(std::strlen("--lossless_n=")));
    } else if (arg.rfind("--lossless_repeats=", 0) == 0) {
      lossless_repeats = std::stoi(arg.substr(std::strlen("--lossless_repeats=")));
    } else if (arg.rfind("--lossless_threads=", 0) == 0) {
      lossless_threads = std::stoi(arg.substr(std::strlen("--lossless_threads=")));
    } else if (arg.rfind("--recovery_json=", 0) == 0) {
      recovery_json_path = arg.substr(std::strlen("--recovery_json="));
    } else if (arg.rfind("--recovery_n=", 0) == 0) {
      recovery_n = std::stoul(arg.substr(std::strlen("--recovery_n=")));
    } else if (arg.rfind("--recovery_repeats=", 0) == 0) {
      recovery_repeats = std::stoi(arg.substr(std::strlen("--recovery_repeats=")));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return write_wavelet_json(json_path, wavelet_n, repeats);
  if (!speck_json_path.empty())
    return write_speck_json(speck_json_path, speck_n, speck_repeats,
                            speck_threads);
  if (!lossless_json_path.empty())
    return write_lossless_json(lossless_json_path, lossless_n, lossless_repeats,
                               lossless_threads);
  if (!recovery_json_path.empty())
    return write_recovery_json(recovery_json_path, recovery_n, recovery_repeats);

  int pass_argc = int(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
