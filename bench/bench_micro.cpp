// Microbenchmarks (google-benchmark) for the individual pipeline stages:
// wavelet transforms, SPECK encode/decode, the outlier coder, the lossless
// back end, and the ZFP-like block codec. Useful for tracking throughput
// regressions independent of the figure-level harnesses.

#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/zfplike/block_codec.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "lossless/codec.h"
#include "outlier/coder.h"
#include "speck/decoder.h"
#include "speck/encoder.h"
#include "sperr/sperr.h"
#include "wavelet/dwt.h"

namespace {

using sperr::Dims;

const std::vector<double>& test_volume(Dims dims) {
  static const Dims cached_dims{64, 64, 64};
  static const std::vector<double> vol =
      sperr::data::miranda_pressure(cached_dims);
  (void)dims;
  return vol;
}

void BM_ForwardDwt3D(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  const auto& vol = test_volume(dims);
  std::vector<double> work(vol.size());
  for (auto _ : state) {
    work = vol;
    sperr::wavelet::forward_dwt(work.data(), dims);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(vol.size()));
}
BENCHMARK(BM_ForwardDwt3D);

void BM_InverseDwt3D(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  std::vector<double> work(coeffs.size());
  for (auto _ : state) {
    work = coeffs;
    sperr::wavelet::inverse_dwt(work.data(), dims);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(coeffs.size()));
}
BENCHMARK(BM_InverseDwt3D);

void BM_SpeckEncode(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  const double q = std::ldexp(1.0e6, -int(state.range(0)));  // vs field scale
  for (auto _ : state) {
    auto stream = sperr::speck::encode(coeffs.data(), dims, q);
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(coeffs.size()));
}
BENCHMARK(BM_SpeckEncode)->Arg(10)->Arg(20)->Arg(30);

void BM_SpeckDecode(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  const double q = std::ldexp(1.0e6, -int(state.range(0)));
  const auto stream = sperr::speck::encode(coeffs.data(), dims, q);
  std::vector<double> out(coeffs.size());
  for (auto _ : state) {
    (void)sperr::speck::decode(stream.data(), stream.size(), dims, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(coeffs.size()));
}
BENCHMARK(BM_SpeckDecode)->Arg(10)->Arg(20)->Arg(30);

void BM_OutlierEncode(benchmark::State& state) {
  sperr::Rng rng(1);
  const uint64_t len = 1 << 20;
  const size_t count = size_t(state.range(0));
  std::vector<sperr::outlier::Outlier> outliers;
  for (size_t i = 0; i < count; ++i)
    outliers.push_back({rng.below(len), (rng.uniform() - 0.5) * 10.0 + 2.0});
  for (auto _ : state) {
    auto stream = sperr::outlier::encode(outliers, len, 1.0);
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(count));
}
BENCHMARK(BM_OutlierEncode)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LosslessCompress(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  auto coeffs = test_volume(dims);
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  const auto stream = sperr::speck::encode(coeffs.data(), dims, 1.0);
  for (auto _ : state) {
    auto packed = sperr::lossless::compress(stream);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(stream.size()));
}
BENCHMARK(BM_LosslessCompress);

void BM_ZfpBlockEncode(benchmark::State& state) {
  sperr::Rng rng(2);
  double block[64];
  for (auto& v : block) v = rng.gaussian();
  sperr::zfplike::BlockParams params;
  params.dims = 3;
  params.minexp = -20;
  for (auto _ : state) {
    sperr::BitWriter bw;
    sperr::zfplike::encode_block(bw, block, params);
    benchmark::DoNotOptimize(bw.byte_count());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 64);
}
BENCHMARK(BM_ZfpBlockEncode);

void BM_SperrEndToEnd(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  const auto& vol = test_volume(dims);
  sperr::Config cfg;
  cfg.tolerance = sperr::tolerance_from_idx(vol.data(), vol.size(), int(state.range(0)));
  for (auto _ : state) {
    auto blob = sperr::compress(vol.data(), dims, cfg);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(vol.size()));
}
BENCHMARK(BM_SperrEndToEnd)->Arg(10)->Arg(20)->Arg(30);

void BM_SyntheticGenerator(benchmark::State& state) {
  const Dims dims{64, 64, 64};
  for (auto _ : state) {
    auto f = sperr::data::nyx_dark_matter_density(dims, uint64_t(state.iterations()));
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(dims.total()));
}
BENCHMARK(BM_SyntheticGenerator);

}  // namespace

BENCHMARK_MAIN();
