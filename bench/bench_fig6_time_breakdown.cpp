// Fig. 6 reproduction: serial compression time broken into the four pipeline
// stages — wavelet transform, SPECK coding, outlier locating (inverse
// transform + comparison), outlier coding — across five tolerance levels on
// the Miranda-like Viscosity field. The paper observes: total time grows as
// the tolerance tightens, driven almost entirely by SPECK time; transform
// time is constant; outlier time is small and stable.

#include <cstdio>

#include "sperr/pipeline.h"
#include "sperr/sperr.h"
#include "support.h"

int main() {
  bench::print_title(
      "Fig. 6: serial compression time breakdown (Miranda-like Viscosity)");

  const auto& field = bench::field_by_label("Visc");
  const auto data = bench::load_field(field);
  std::printf("field %s (paper: 384^2 x 256)\n\n", field.dims.to_string().c_str());

  std::printf("%-6s %12s %12s %12s %12s %12s %10s\n", "idx", "transform",
              "SPECK", "locate", "outlier", "total (s)", "outliers");
  bench::print_rule();

  for (const int idx : {10, 20, 30, 40, 50}) {
    const double t = sperr::tolerance_from_idx(data.data(), data.size(), idx);
    // Median of 3 runs to stabilize the wall-clock numbers.
    sperr::pipeline::ChunkStream best;
    double best_total = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      auto cs = sperr::pipeline::encode_pwe(data.data(), field.dims, t, 1.5);
      if (cs.timing.total() < best_total) {
        best_total = cs.timing.total();
        best = std::move(cs);
      }
    }
    std::printf("%-6d %12.4f %12.4f %12.4f %12.4f %12.4f %10zu\n", idx,
                best.timing.transform_s, best.timing.speck_s,
                best.timing.locate_s, best.timing.outlier_s,
                best.timing.total(), best.num_outliers);
  }
  bench::print_rule();
  std::printf(
      "Paper expectation: total grows with idx via SPECK time (more planes,\n"
      "finer precision); transform time constant; outlier counts and coding\n"
      "time stable by design of the q = 1.5t balance.\n");
  return 0;
}
