// Fig. 3 reproduction: for four fields and several tolerance levels, sweep
// the quantization step q in [t, 3t] and report (top) the bitrate increase
// over the best observed q and (bottom) the PSNR increase over the worst.
// The paper's findings: the bitrate curves are U-shaped with sweet spots
// mostly in q = 1.4t..1.8t, while PSNR decreases monotonically with q —
// motivating the shipped default q = 1.5t.

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "sperr/pipeline.h"
#include "sperr/sperr.h"
#include "support.h"

namespace {

struct Sample {
  double bpp;
  double psnr;
};

}  // namespace

int main() {
  bench::print_title("Fig. 3: bitrate and PSNR vs quantization step q");

  const struct {
    const char* label;
    std::vector<int> idx_levels;
  } plan[] = {
      {"Press", {10, 20, 30, 40}},  // double-precision fields: deeper levels
      {"Visc", {10, 20, 30, 40}},
      {"Nyx", {10, 15, 20, 25}},  // single-precision fields
      {"VX3", {10, 15, 20, 25}},
  };
  std::vector<double> q_steps;
  for (double q = 1.0; q <= 3.001; q += 0.25) q_steps.push_back(q);

  for (const auto& p : plan) {
    const auto& field = bench::field_by_label(p.label);
    const auto data = bench::load_field(field);
    const double npts = double(field.dims.total());

    std::printf("\n=== %s (%s) ===\n", p.label, field.dims.to_string().c_str());
    for (const int idx : p.idx_levels) {
      const double t = sperr::tolerance_from_idx(data.data(), data.size(), idx);
      std::vector<Sample> samples;
      for (const double q : q_steps) {
        std::vector<uint8_t> blob;
        const auto cs = sperr::pipeline::encode_pwe(data.data(), field.dims, t, q);
        std::vector<double> recon(field.dims.total());
        (void)sperr::pipeline::decode(cs.speck, cs.outlier, field.dims,
                                      recon.data());
        const auto qual =
            sperr::metrics::compare(data.data(), recon.data(), data.size());
        samples.push_back(
            {double(cs.speck.size() + cs.outlier.size()) * 8.0 / npts, qual.psnr});
      }
      double min_bpp = 1e300, min_psnr = 1e300;
      size_t best_q_i = 0;
      for (size_t i = 0; i < samples.size(); ++i) {
        if (samples[i].bpp < min_bpp) {
          min_bpp = samples[i].bpp;
          best_q_i = i;
        }
        min_psnr = std::min(min_psnr, samples[i].psnr);
      }

      std::printf("\nidx=%d (t=%.3g), sweet spot at q=%.2ft\n", idx, t,
                  q_steps[best_q_i]);
      std::printf("  %-6s %14s %14s\n", "q/t", "dBPP (vs min)", "dPSNR (vs min)");
      for (size_t i = 0; i < samples.size(); ++i)
        std::printf("  %-6.2f %14.3f %14.2f\n", q_steps[i],
                    samples[i].bpp - min_bpp, samples[i].psnr - min_psnr);
    }
  }

  std::printf(
      "\nPaper expectation: U-shaped dBPP with minima mostly at q in\n"
      "[1.4t, 1.8t]; dPSNR monotonically decreasing in q. Both motivate the\n"
      "shipped default q = 1.5t.\n");
  return 0;
}
