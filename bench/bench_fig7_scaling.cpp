// Fig. 7 reproduction: strong-scaling of chunk-parallel compression. The
// paper compresses a 2048^3 cut-out with 256^3 chunks (512-way parallelism)
// on a 128-core node, sweeping 1..126 OpenMP threads at three tolerance
// levels, and observes near-linear speedup to ~16 cores, flattening toward a
// plateau past 64. We use a 128^3 stand-in with 32^3 chunks (64-way
// parallelism) and sweep 1..2*hardware threads.
//
// NOTE: on a single-core machine this bench still runs and prints the curve,
// but every thread count necessarily reports speedup ~1 — see EXPERIMENTS.md.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "data/synthetic.h"
#include "sperr/sperr.h"
#include "support.h"

int main() {
  bench::print_title("Fig. 7: strong scaling of chunk-parallel compression");

  const sperr::Dims dims{128, 128, 128};
  const auto data = sperr::data::make_field("miranda_density", dims);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> threads = {1};
  for (int t = 2; t <= int(2 * hw) && t <= 128; t *= 2) threads.push_back(t);
  std::printf("hardware threads: %u; chunk 32^3 => %d-way parallelism\n\n", hw, 64);

  std::printf("%-9s", "threads");
  for (const int idx : {10, 15, 20}) std::printf("  idx=%-2d t(s)  speedup", idx);
  std::printf("\n");
  bench::print_rule();

  std::vector<double> serial(3, 0.0);
  for (const int nt : threads) {
    std::printf("%-9d", nt);
    int col = 0;
    for (const int idx : {10, 15, 20}) {
      sperr::Config cfg;
      cfg.tolerance = sperr::tolerance_from_idx(data.data(), data.size(), idx);
      cfg.chunk_dims = sperr::Dims{32, 32, 32};
      cfg.num_threads = nt;
      // Best of 2 runs.
      double best = 1e300;
      for (int rep = 0; rep < 2; ++rep) {
        sperr::Timer timer;
        const auto blob = sperr::compress(data.data(), dims, cfg);
        best = std::min(best, timer.seconds());
        (void)blob;
      }
      if (nt == 1) serial[size_t(col)] = best;
      std::printf("  %10.3f  %7.2f", best, serial[size_t(col)] / best);
      ++col;
    }
    std::printf("\n");
  }
  bench::print_rule();
  std::printf(
      "Paper expectation: near-linear speedup to ~16 cores, slower growth\n"
      "after, plateau past 64 cores (limits of the embarrassingly parallel\n"
      "chunk strategy).\n");
  return 0;
}
