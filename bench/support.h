#pragma once

// Shared harness pieces for the per-figure/table benchmark binaries: the
// canonical set of synthetic stand-in fields (paper §VI-B / Table II), field
// loading, quality evaluation, and table printing.
//
// Grid sizes are scaled down from the paper's (e.g. 96^2 x 64 instead of
// 384^2 x 256, 80^3 instead of 500^3) so the full harness regenerates every
// figure on a laptop in minutes; the fields keep the statistical structure
// that determines compressor behaviour, so curve *shapes* and compressor
// orderings reproduce even though absolute numbers differ.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "metrics/metrics.h"
#include "sperr/config.h"

namespace bench {

using sperr::Dims;

struct Field {
  std::string label;      ///< short name used in tables (e.g. "Press")
  std::string generator;  ///< sperr::data::make_field name
  Dims dims;
  bool single_precision;  ///< paper precision of the original data set
  /// Chunk extents SPERR should use. Matters for QMCPACK (paper §VI-B):
  /// SPERR compresses the orbital stack per-orbital while the other tools
  /// get one tall volume. A degenerate value (total() <= 1, the Dims
  /// default) means "library default (256^3)".
  Dims sperr_chunk{};
};

/// The nine data fields of the paper's comparison (Fig. 8, Table II).
const std::vector<Field>& paper_fields();

/// Field lookup by label; throws on unknown labels.
const Field& field_by_label(const std::string& label);

/// Generate the field's data (deterministic).
std::vector<double> load_field(const Field& f);

/// A default SPERR config honouring the field's preferred chunking.
sperr::Config sperr_config_for(const Field& f);

/// A (field, tolerance-idx) pair from Table II, e.g. "Press-20".
struct Case {
  std::string abbrev;
  std::string field_label;
  int idx;
};

/// The Table II case list used by Figs. 9, 10, 11.
const std::vector<Case>& table2_cases();

/// One rate-distortion sample.
struct RdPoint {
  double bpp = 0.0;
  double psnr = 0.0;
  double gain = 0.0;  ///< accuracy gain (paper Eq. 2)
  double max_pwe = 0.0;
};

RdPoint evaluate(const std::vector<double>& orig, const std::vector<double>& recon,
                 size_t compressed_bytes);

/// Print a horizontal separator / header helpers for the text tables.
void print_rule(int width = 78);
void print_title(const std::string& title);

}  // namespace bench
