// Fig. 1 reproduction: outliers show little or no spatial correlation.
//
// The paper renders outlier positions of the Kodak Lighthouse image at three
// q settings (1.3t, 1.5t, 1.7t). We use the synthetic lighthouse stand-in,
// print (a) the outlier percentage, (b) a nearest-neighbour spatial
// statistic — the Clark-Evans ratio R = observed mean NN distance / expected
// mean NN distance under complete spatial randomness (R ~ 1 means random,
// R << 1 clustered, R > 1 dispersed) — and (c) a coarse ASCII density map.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "sperr/pipeline.h"
#include "support.h"

namespace {

using sperr::Dims;

double clark_evans_ratio(const std::vector<sperr::outlier::Outlier>& outliers,
                         Dims dims) {
  if (outliers.size() < 2) return 1.0;
  // Positions in 2-D.
  std::vector<std::pair<double, double>> pts;
  pts.reserve(outliers.size());
  for (const auto& o : outliers)
    pts.emplace_back(double(o.pos % dims.x), double(o.pos / dims.x));

  // Mean nearest-neighbour distance via a coarse grid (exact enough here).
  std::sort(pts.begin(), pts.end());
  double total = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    double best = 1e300;
    // Scan sorted-by-x neighbours outward until the x gap exceeds best.
    for (size_t j = i + 1; j < pts.size(); ++j) {
      const double dx = pts[j].first - pts[i].first;
      if (dx * dx >= best) break;
      const double dy = pts[j].second - pts[i].second;
      best = std::min(best, dx * dx + dy * dy);
    }
    for (size_t j = i; j-- > 0;) {
      const double dx = pts[i].first - pts[j].first;
      if (dx * dx >= best) break;
      const double dy = pts[i].second - pts[j].second;
      best = std::min(best, dx * dx + dy * dy);
    }
    total += std::sqrt(best);
  }
  const double observed = total / double(pts.size());
  const double density = double(pts.size()) / (double(dims.x) * double(dims.y));
  const double expected = 0.5 / std::sqrt(density);  // CSR expectation
  return observed / expected;
}

void ascii_map(const std::vector<sperr::outlier::Outlier>& outliers, Dims dims) {
  constexpr int kW = 64, kH = 20;
  std::vector<int> cells(kW * kH, 0);
  for (const auto& o : outliers) {
    const size_t x = o.pos % dims.x, y = o.pos / dims.x;
    const int cx = int(x * kW / dims.x), cy = int(y * kH / dims.y);
    ++cells[cy * kW + cx];
  }
  const int peak = *std::max_element(cells.begin(), cells.end());
  const char* shades = " .:-=+*#%@";
  for (int y = 0; y < kH; ++y) {
    std::putchar('|');
    for (int x = 0; x < kW; ++x) {
      const int c = cells[y * kW + x];
      const int level = peak ? std::min(9, c * 10 / (peak + 1)) : 0;
      std::putchar(shades[level]);
    }
    std::printf("|\n");
  }
}

}  // namespace

int main() {
  bench::print_title(
      "Fig. 1: outlier positions are spatially uncorrelated (lighthouse 2-D)");

  const Dims dims{384, 256, 1};
  const auto img = sperr::data::lighthouse_2d(dims);
  // Tolerance around 1/2^9 of the 0..255 range gives the paper's few-percent
  // outlier regime.
  const double t = 0.5;

  for (const double q_over_t : {1.3, 1.5, 1.7}) {
    std::vector<sperr::outlier::Outlier> outliers;
    (void)sperr::pipeline::encode_pwe(img.data(), dims, t, q_over_t, &outliers);
    const double pct = 100.0 * double(outliers.size()) / double(dims.total());
    const double r = clark_evans_ratio(outliers, dims);
    std::printf("\nq = %.1ft: %zu outliers (%.2f%%), Clark-Evans R = %.2f %s\n",
                q_over_t, outliers.size(), pct, r,
                r > 0.7 ? "(~random: no exploitable clustering)" : "(clustered)");
    ascii_map(outliers, dims);
  }
  std::printf(
      "\nPaper expectation: outliers appear at effectively random positions at\n"
      "every q — justifying SPERR's choice to linearize to 1-D before coding.\n");
  return 0;
}
