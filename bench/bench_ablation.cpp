// Ablation studies for the design choices the paper makes (and this
// reproduction documents in DESIGN.md):
//
//  A. Wavelet kernel (§III-A): CDF 9/7 vs CDF 5/3 vs Haar on the SPERR
//     coefficient path — why the paper's kernel choice matters.
//  B. Set partitioning (§III-B): SPECK vs a dense per-coefficient bitplane
//     coder with identical quantization — what "zooming in" buys.
//  C. Outlier linearization (§IV-C): row-major flattening vs Morton order
//     vs a random permutation — the paper argues outliers carry no spatial
//     correlation, so fancier space-filling orders should win nothing.
//  D. Final lossless pass (§V): container sizes with and without it.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "lossless/codec.h"
#include "metrics/metrics.h"
#include "outlier/coder.h"
#include "speck/decoder.h"
#include "speck/encoder.h"
#include "speck/raw_bitplane.h"
#include "sperr/pipeline.h"
#include "sperr/sperr.h"
#include "support.h"
#include "wavelet/dwt.h"

namespace {

using sperr::Dims;

// Interleave the bits of (x, y, z) -> Morton code (21 bits per axis).
uint64_t morton3(uint64_t x, uint64_t y, uint64_t z) {
  auto spread = [](uint64_t v) {
    v &= 0x1fffff;
    v = (v | v << 32) & 0x1f00000000ffffULL;
    v = (v | v << 16) & 0x1f0000ff0000ffULL;
    v = (v | v << 8) & 0x100f00f00f00f00fULL;
    v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
    v = (v | v << 2) & 0x1249249249249249ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1) | (spread(z) << 2);
}

void ablation_wavelet_kernel() {
  bench::print_title("Ablation A (§III-A): wavelet kernel on the coefficient path");
  const auto& field = bench::field_by_label("Press");
  const auto data = bench::load_field(field);
  const double npts = double(data.size());

  std::printf("%-10s %8s %12s %12s %12s\n", "kernel", "idx", "BPP", "PSNR (dB)",
              "acc. gain");
  bench::print_rule();
  for (const auto kernel : {sperr::wavelet::Kernel::cdf97,
                            sperr::wavelet::Kernel::cdf53,
                            sperr::wavelet::Kernel::haar}) {
    for (const int idx : {10, 20, 30}) {
      const double t = sperr::tolerance_from_idx(data.data(), data.size(), idx);
      std::vector<double> coeffs = data;
      sperr::wavelet::forward_dwt(coeffs.data(), field.dims, kernel);
      const auto stream = sperr::speck::encode(coeffs.data(), field.dims, 1.5 * t);
      std::vector<double> recon(data.size());
      (void)sperr::speck::decode(stream.data(), stream.size(), field.dims,
                                 recon.data());
      sperr::wavelet::inverse_dwt(recon.data(), field.dims, kernel);
      const auto q = sperr::metrics::compare(data.data(), recon.data(), data.size());
      const double bpp = double(stream.size()) * 8 / npts;
      std::printf("%-10s %8d %12.3f %12.1f %12.2f\n",
                  sperr::wavelet::to_string(kernel), idx, bpp, q.psnr,
                  sperr::metrics::accuracy_gain(q.sigma, q.rmse, bpp));
    }
    bench::print_rule();
  }
  std::printf("Expectation: CDF 9/7 achieves the best gain at every level —\n"
              "the basis of the paper's kernel choice.\n");
}

void ablation_set_partitioning() {
  bench::print_title(
      "Ablation B (§III-B): SPECK set partitioning vs dense bitplane coding");
  const auto& field = bench::field_by_label("Visc");
  const auto data = bench::load_field(field);
  const double npts = double(data.size());

  std::printf("%-8s %14s %14s %14s %10s\n", "idx", "SPECK BPP", "dense BPP",
              "dense+LZ BPP", "savings");
  bench::print_rule();
  for (const int idx : {10, 20, 30, 40}) {
    const double t = sperr::tolerance_from_idx(data.data(), data.size(), idx);
    std::vector<double> coeffs = data;
    sperr::wavelet::forward_dwt(coeffs.data(), field.dims);
    const auto speck = sperr::speck::encode(coeffs.data(), field.dims, 1.5 * t);
    const auto dense =
        sperr::speck::raw_bitplane_encode(coeffs.data(), field.dims, 1.5 * t);
    const auto dense_lz = sperr::lossless::compress(dense);

    // Sanity: the dense coder must reconstruct identically well.
    std::vector<double> recon(data.size());
    (void)sperr::speck::raw_bitplane_decode(dense.data(), dense.size(), field.dims,
                                            recon.data());

    const double speck_bpp = double(speck.size()) * 8 / npts;
    const double dense_bpp = double(dense.size()) * 8 / npts;
    const double dense_lz_bpp = double(dense_lz.size()) * 8 / npts;
    std::printf("%-8d %14.3f %14.3f %14.3f %9.1f%%\n", idx, speck_bpp, dense_bpp,
                dense_lz_bpp,
                100.0 * (1.0 - speck_bpp / std::min(dense_bpp, dense_lz_bpp)));
  }
  bench::print_rule();
  std::printf("Expectation: set partitioning prunes insignificant regions in\n"
              "large groups; a dense significance map cannot, even with a\n"
              "lossless pass over it.\n");
}

void ablation_linearization() {
  bench::print_title(
      "Ablation C (§IV-C): outlier position linearization order");
  const auto& field = bench::field_by_label("Nyx");
  const auto data = bench::load_field(field);
  const Dims dims = field.dims;
  const double t = sperr::tolerance_from_idx(data.data(), data.size(), 20);

  std::vector<sperr::outlier::Outlier> outliers;
  (void)sperr::pipeline::encode_pwe(data.data(), dims, t, 1.5, &outliers);
  std::printf("field %s, %zu outliers (%.2f%%)\n\n", field.label.c_str(),
              outliers.size(), 100.0 * double(outliers.size()) / double(data.size()));

  auto cost = [&](const std::vector<sperr::outlier::Outlier>& list,
                  uint64_t array_len) {
    sperr::outlier::EncodeStats stats;
    (void)sperr::outlier::encode(list, array_len, t, &stats);
    return double(stats.payload_bits) / double(stats.num_outliers);
  };

  // Row-major (the shipped choice).
  const double rowmajor = cost(outliers, data.size());

  // Morton order: positions remapped onto a 2^k cube's Z-curve.
  uint64_t side = 1;
  while (side < std::max({dims.x, dims.y, dims.z})) side *= 2;
  std::vector<sperr::outlier::Outlier> morton = outliers;
  for (auto& o : morton) {
    const uint64_t x = o.pos % dims.x;
    const uint64_t y = (o.pos / dims.x) % dims.y;
    const uint64_t z = o.pos / (dims.x * dims.y);
    o.pos = morton3(x, y, z);
  }
  const double morton_cost = cost(morton, side * side * side);

  // Random permutation: destroys whatever correlation exists.
  sperr::Rng rng(99);
  std::vector<uint64_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), uint64_t(0));
  for (size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
  std::vector<sperr::outlier::Outlier> shuffled = outliers;
  for (auto& o : shuffled) o.pos = perm[o.pos];
  const double shuffled_cost = cost(shuffled, data.size());

  std::printf("%-24s %14s\n", "linearization", "bits/outlier");
  bench::print_rule();
  std::printf("%-24s %14.2f\n", "row-major (shipped)", rowmajor);
  std::printf("%-24s %14.2f\n", "Morton / Z-curve", morton_cost);
  std::printf("%-24s %14.2f\n", "random permutation", shuffled_cost);
  bench::print_rule();
  std::printf("Expectation: all within a fraction of a bit — outlier positions\n"
              "carry (almost) no spatial correlation, so the paper's simple\n"
              "row-major flattening loses nothing (§IV-C, Fig. 1).\n");
}

void ablation_lossless_pass() {
  bench::print_title("Ablation D (§V): the final lossless pass");
  std::printf("%-10s %14s %14s %10s\n", "case", "raw BPP", "w/ lossless",
              "saved");
  bench::print_rule();
  for (const char* label : {"Press", "Visc", "Nyx"}) {
    const auto& field = bench::field_by_label(label);
    const auto data = bench::load_field(field);
    for (const int idx : {10, 30}) {
      sperr::Config cfg;
      cfg.tolerance = sperr::tolerance_from_idx(data.data(), data.size(), idx);
      sperr::Stats with_stats, without_stats;
      cfg.lossless_pass = false;
      const auto raw = sperr::compress(data.data(), field.dims, cfg, &without_stats);
      cfg.lossless_pass = true;
      const auto packed = sperr::compress(data.data(), field.dims, cfg, &with_stats);
      std::printf("%s-%-6d %14.3f %14.3f %9.1f%%\n", label, idx,
                  without_stats.bpp, with_stats.bpp,
                  100.0 * (1.0 - with_stats.bpp / without_stats.bpp));
    }
  }
  bench::print_rule();
  std::printf("Expectation: a few percent at loose tolerances (structured\n"
              "significance maps), shrinking toward zero as planes deepen and\n"
              "the bitstream approaches incompressibility.\n");
}

}  // namespace

int main() {
  ablation_wavelet_kernel();
  ablation_set_partitioning();
  ablation_linearization();
  ablation_lossless_pass();
  return 0;
}
