// Fig. 4 reproduction: outlier coding bitrate (bits per outlier, solid lines
// in the paper) and outlier percentage (dashed lines) as q varies. The paper
// reports 6-16 bits/outlier, decreasing with q (shared significance tests
// amortize over more outliers), ~10 bits/outlier at the default q = 1.5t.

#include <cstdio>
#include <vector>

#include "sperr/pipeline.h"
#include "sperr/sperr.h"
#include "support.h"

int main() {
  bench::print_title("Fig. 4: outlier bitrate and percentage vs q");

  const struct {
    const char* label;
    int idx;
  } cases[] = {
      {"Visc", 20}, {"Visc", 40}, {"Nyx", 20}, {"Nyx", 30}};

  std::printf("%-10s %-6s %16s %14s %14s\n", "case", "q/t", "outliers",
              "% of points", "bits/outlier");
  bench::print_rule();

  for (const auto& c : cases) {
    const auto& field = bench::field_by_label(c.label);
    const auto data = bench::load_field(field);
    const double t = sperr::tolerance_from_idx(data.data(), data.size(), c.idx);
    for (double q = 1.0; q <= 3.001; q += 0.25) {
      const auto cs = sperr::pipeline::encode_pwe(data.data(), field.dims, t, q);
      const double pct = 100.0 * double(cs.num_outliers) / double(data.size());
      const double bits = cs.num_outliers
                              ? double(cs.outlier_payload_bits) / double(cs.num_outliers)
                              : 0.0;
      std::printf("%s-%-5d %-6.2f %16zu %13.2f%% %14.2f\n", c.label, c.idx, q,
                  cs.num_outliers, pct, bits);
    }
    bench::print_rule();
  }
  std::printf(
      "Paper expectation: bits/outlier mostly in 6-16, decreasing with q;\n"
      "~10 bits/outlier at the shipped q = 1.5t; outlier %% rises with q.\n");
  return 0;
}
