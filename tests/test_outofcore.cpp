#include "sperr/outofcore.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "data/synthetic.h"
#include "sperr/sperr.h"

namespace sperr::outofcore {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& suffix) {
    static int counter = 0;
    path_ = testing::TempDir() + "sperr_ooc_" + std::to_string(counter++) + suffix;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void write_raw(const std::string& path, const std::vector<double>& field,
               int precision) {
  std::ofstream out(path, std::ios::binary);
  if (precision == 4) {
    std::vector<float> f32(field.begin(), field.end());
    out.write(reinterpret_cast<const char*>(f32.data()),
              std::streamsize(f32.size() * 4));
  } else {
    out.write(reinterpret_cast<const char*>(field.data()),
              std::streamsize(field.size() * 8));
  }
}

std::vector<double> read_raw(const std::string& path, size_t n, int precision) {
  std::ifstream in(path, std::ios::binary);
  std::vector<double> out(n);
  if (precision == 4) {
    std::vector<float> f32(n);
    in.read(reinterpret_cast<char*>(f32.data()), std::streamsize(n * 4));
    out.assign(f32.begin(), f32.end());
  } else {
    in.read(reinterpret_cast<char*>(out.data()), std::streamsize(n * 8));
  }
  EXPECT_TRUE(bool(in));
  return out;
}

TEST(OutOfCore, PweRoundTripMatchesInMemoryPath) {
  const Dims dims{50, 40, 30};  // non-divisible by the chunk size
  const auto field = data::miranda_density(dims);
  TempFile raw(".raw"), packed(".sperr"), restored(".raw");
  write_raw(raw.path(), field, 8);

  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 15);
  cfg.chunk_dims = Dims{32, 32, 32};
  Stats stats;
  ASSERT_EQ(compress_file(raw.path(), dims, 8, cfg, packed.path(), &stats),
            Status::ok);
  EXPECT_GT(stats.num_chunks, 1u);

  // The streamed container decodes exactly like an in-memory one.
  std::ifstream in(packed.path(), std::ios::binary);
  const std::vector<uint8_t> blob{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  std::vector<double> mem_recon;
  Dims od;
  ASSERT_EQ(decompress(blob.data(), blob.size(), mem_recon, od), Status::ok);

  ASSERT_EQ(decompress_file(packed.path(), restored.path(), 8), Status::ok);
  const auto file_recon = read_raw(restored.path(), field.size(), 8);
  EXPECT_EQ(file_recon, mem_recon);

  // And the PWE guarantee holds end to end.
  double max_err = 0;
  for (size_t i = 0; i < field.size(); ++i)
    max_err = std::max(max_err, std::fabs(field[i] - file_recon[i]));
  EXPECT_LE(max_err, cfg.tolerance);
}

TEST(OutOfCore, SinglePrecisionFiles) {
  const Dims dims{48, 24, 16};
  const auto field64 = data::nyx_velocity_x(dims);
  const std::vector<float> field32(field64.begin(), field64.end());
  std::vector<double> field(field32.begin(), field32.end());

  TempFile raw(".raw"), packed(".sperr"), restored(".raw");
  write_raw(raw.path(), field, 4);

  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 12);
  ASSERT_EQ(compress_file(raw.path(), dims, 4, cfg, packed.path()), Status::ok);
  ASSERT_EQ(decompress_file(packed.path(), restored.path(), 4), Status::ok);

  const auto recon = read_raw(restored.path(), field.size(), 4);
  double max_err = 0;
  for (size_t i = 0; i < field.size(); ++i)
    max_err = std::max(max_err, std::fabs(field[i] - recon[i]));
  // f32 output rounding adds at most one float ulp on top of the bound.
  EXPECT_LE(max_err, cfg.tolerance * (1.0 + 1e-5));
}

TEST(OutOfCore, FixedRateFiles) {
  const Dims dims{32, 32, 32};
  const auto field = data::s3d_temperature(dims);
  TempFile raw(".raw"), packed(".sperr");
  write_raw(raw.path(), field, 8);

  Config cfg;
  cfg.mode = Mode::fixed_rate;
  cfg.bpp = 2.0;
  Stats stats;
  ASSERT_EQ(compress_file(raw.path(), dims, 8, cfg, packed.path(), &stats),
            Status::ok);
  EXPECT_LE(stats.bpp, 2.3);
}

TEST(OutOfCore, SizeMismatchRejected) {
  const Dims dims{16, 16, 16};
  const auto field = data::s3d_ch4(dims);
  TempFile raw(".raw"), packed(".sperr");
  write_raw(raw.path(), field, 8);
  Config cfg;
  cfg.tolerance = 1e-3;
  // Claiming the wrong extents must be rejected, not mis-read.
  EXPECT_EQ(compress_file(raw.path(), Dims{16, 16, 17}, 8, cfg, packed.path()),
            Status::invalid_argument);
  EXPECT_EQ(compress_file(raw.path(), dims, 4, cfg, packed.path()),
            Status::invalid_argument);
}

// --- torn-write crash points ------------------------------------------------
//
// The crash-consistency contract of outofcore.h: kill the writer at EVERY
// stage boundary of the atomic write path and the destination is either
// absent, its previous content, or the complete new content — never a torn
// container. Each case forks, _exit()s inside the crash hook at one stage,
// and inspects what the "crashed" process left on disk.

const char* g_crash_stage = nullptr;

void crash_at_stage(const char* stage) {
  if (std::strcmp(stage, g_crash_stage) == 0) _exit(42);
}

std::vector<uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

constexpr const char* kCrashStages[] = {"tmp_open",   "tmp_partial", "tmp_written",
                                        "tmp_synced", "renamed",     "dir_synced"};

/// Run `op` in a forked child that _exit(42)s at `stage`; returns true when
/// the hook actually fired (guards against a stage silently not reached).
template <class Op>
bool crash_child_at(const char* stage, Op&& op) {
  const pid_t pid = fork();
  if (pid == 0) {
    g_crash_stage = stage;
    detail::set_crash_hook(&crash_at_stage);
    op();
    _exit(0);  // hook never fired
  }
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  return WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 42;
}

TEST(OutOfCoreCrash, CompressKilledAtEveryStageNeverTearsDestination) {
  const Dims dims{24, 24, 24};
  const auto field = data::miranda_density(dims);
  TempFile raw(".raw"), expected(".sperr"), dest(".sperr");
  write_raw(raw.path(), field, 8);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 15);
  cfg.chunk_dims = Dims{16, 16, 16};

  // Clean run: the content every successful write must reproduce exactly.
  ASSERT_EQ(compress_file(raw.path(), dims, 8, cfg, expected.path()), Status::ok);
  const std::vector<uint8_t> clean = slurp(expected.path());
  ASSERT_FALSE(clean.empty());

  const std::vector<uint8_t> old_content = {'o', 'l', 'd'};
  for (const char* stage : kCrashStages) {
    SCOPED_TRACE(stage);
    // Pre-populate the destination: a crash must leave either this exact
    // old content or the complete new container.
    {
      std::ofstream out(dest.path(), std::ios::binary);
      out.write(reinterpret_cast<const char*>(old_content.data()),
                std::streamsize(old_content.size()));
    }
    ASSERT_TRUE(crash_child_at(stage, [&] {
      compress_file(raw.path(), dims, 8, cfg, dest.path());
    }));
    ASSERT_TRUE(file_exists(dest.path()));
    const std::vector<uint8_t> found = slurp(dest.path());
    EXPECT_TRUE(found == old_content || found == clean)
        << "destination torn after crash at " << stage << " (size "
        << found.size() << ")";
    std::remove((dest.path() + ".tmp").c_str());
    std::remove(dest.path().c_str());
  }

  // Fresh-destination variant: the destination must be absent or complete,
  // never a partial file.
  for (const char* stage : kCrashStages) {
    SCOPED_TRACE(stage);
    ASSERT_TRUE(crash_child_at(stage, [&] {
      compress_file(raw.path(), dims, 8, cfg, dest.path());
    }));
    if (file_exists(dest.path())) {
      EXPECT_EQ(slurp(dest.path()), clean);
    }
    std::remove((dest.path() + ".tmp").c_str());
    std::remove(dest.path().c_str());
  }
}

TEST(OutOfCoreCrash, DecompressKilledAtEveryStageNeverTearsDestination) {
  const Dims dims{24, 24, 24};
  const auto field = data::nyx_velocity_x(dims);
  TempFile raw(".raw"), packed(".sperr"), expected(".raw"), dest(".raw");
  write_raw(raw.path(), field, 8);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 12);
  cfg.chunk_dims = Dims{16, 16, 16};
  ASSERT_EQ(compress_file(raw.path(), dims, 8, cfg, packed.path()), Status::ok);
  ASSERT_EQ(decompress_file(packed.path(), expected.path(), 8), Status::ok);
  const std::vector<uint8_t> clean = slurp(expected.path());
  ASSERT_FALSE(clean.empty());

  for (const char* stage : kCrashStages) {
    SCOPED_TRACE(stage);
    ASSERT_TRUE(crash_child_at(stage, [&] {
      decompress_file(packed.path(), dest.path(), 8);
    }));
    if (file_exists(dest.path())) {
      EXPECT_EQ(slurp(dest.path()), clean);
    }
    std::remove((dest.path() + ".tmp").c_str());
    std::remove(dest.path().c_str());
  }
}

TEST(OutOfCore, MissingInputRejected) {
  Config cfg;
  cfg.tolerance = 1.0;
  EXPECT_EQ(compress_file("/nonexistent/file.raw", Dims{8, 8, 8}, 8, cfg,
                          "/tmp/out.sperr"),
            Status::invalid_argument);
  EXPECT_EQ(decompress_file("/nonexistent/file.sperr", "/tmp/out.raw", 8),
            Status::invalid_argument);
}

}  // namespace
}  // namespace sperr::outofcore
