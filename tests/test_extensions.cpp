// Tests for the paper's §VII extension features implemented here:
// average-error-targeted compression and multi-resolution reconstruction.

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "sperr/pipeline.h"
#include "sperr/sperr.h"
#include "wavelet/dwt.h"

namespace sperr {
namespace {

double rmse_of(const std::vector<double>& a, const std::vector<double>& b) {
  double sq = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double e = a[i] - b[i];
    sq += e * e;
  }
  return std::sqrt(sq / double(a.size()));
}

TEST(TargetRmse, AchievedRmseAtOrBelowTarget) {
  const Dims dims{64, 64, 32};
  const auto field = data::miranda_pressure(dims);
  const FieldStats fs = compute_stats(field.data(), field.size());

  for (const double rel : {1e-2, 1e-4, 1e-6}) {
    Config cfg;
    cfg.mode = Mode::target_rmse;
    cfg.rmse = fs.stddev() * rel;
    const auto blob = compress(field.data(), dims, cfg);
    std::vector<double> recon;
    Dims od;
    ASSERT_EQ(decompress(blob.data(), blob.size(), recon, od), Status::ok);
    const double achieved = rmse_of(field, recon);
    EXPECT_LE(achieved, cfg.rmse) << "relative target " << rel;
    // Not wastefully below target either (within ~8x).
    EXPECT_GE(achieved, cfg.rmse / 8.0) << "relative target " << rel;
  }
}

TEST(TargetRmse, TighterTargetCostsMoreBits) {
  const Dims dims{48, 48, 48};
  const auto field = data::s3d_temperature(dims);
  size_t prev = 0;
  for (const double rmse : {10.0, 1.0, 0.1, 0.01}) {
    Config cfg;
    cfg.mode = Mode::target_rmse;
    cfg.rmse = rmse;
    const auto blob = compress(field.data(), dims, cfg);
    EXPECT_GT(blob.size(), prev);
    prev = blob.size();
  }
}

TEST(TargetRmse, InvalidTargetThrows) {
  std::vector<double> f(64, 1.0);
  Config cfg;
  cfg.mode = Mode::target_rmse;
  cfg.rmse = 0.0;
  EXPECT_THROW((void)compress(f.data(), Dims{4, 4, 4}, cfg), std::invalid_argument);
}

TEST(LowRes, CoarseDimsFollowLevelPlan) {
  const Dims dims{64, 64, 64};
  const auto field = data::miranda_density(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 15);
  const auto blob = compress(field.data(), dims, cfg);

  std::vector<double> coarse;
  Dims cd;
  ASSERT_EQ(decompress_lowres(blob.data(), blob.size(), 1, coarse, cd), Status::ok);
  EXPECT_EQ(cd, (Dims{32, 32, 32}));
  ASSERT_EQ(decompress_lowres(blob.data(), blob.size(), 2, coarse, cd), Status::ok);
  EXPECT_EQ(cd, (Dims{16, 16, 16}));
  // Dropping more levels than the plan has clamps at the final corner.
  ASSERT_EQ(decompress_lowres(blob.data(), blob.size(), 99, coarse, cd), Status::ok);
  EXPECT_EQ(cd, (Dims{4, 4, 4}));
}

TEST(LowRes, CoarseFieldApproximatesDownsampledData) {
  const Dims dims{64, 64, 64};
  // Smooth field: coarse reconstruction should track a subsampled original.
  const auto field = data::nyx_velocity_x(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 20);
  const auto blob = compress(field.data(), dims, cfg);

  std::vector<double> coarse;
  Dims cd;
  ASSERT_EQ(decompress_lowres(blob.data(), blob.size(), 1, coarse, cd), Status::ok);
  ASSERT_EQ(cd, (Dims{32, 32, 32}));

  // Compare against 2x-decimated original values.
  double sq = 0, ref_sq = 0;
  for (size_t z = 0; z < cd.z; ++z)
    for (size_t y = 0; y < cd.y; ++y)
      for (size_t x = 0; x < cd.x; ++x) {
        const double ref = field[dims.index(2 * x, 2 * y, 2 * z)];
        const double e = coarse[cd.index(x, y, z)] - ref;
        sq += e * e;
        ref_sq += ref * ref;
      }
  // Within ~20% relative L2 of the decimation (the low-pass filter differs
  // from pure subsampling, so exact agreement is not expected).
  EXPECT_LT(std::sqrt(sq / ref_sq), 0.2);
}

TEST(LowRes, ZeroDropEqualsFullResolutionModuloOutliers) {
  const Dims dims{48, 48, 16};
  const auto field = data::s3d_ch4(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 20);
  const auto blob = compress(field.data(), dims, cfg);

  std::vector<double> lowres;
  Dims cd;
  ASSERT_EQ(decompress_lowres(blob.data(), blob.size(), 0, lowres, cd), Status::ok);
  EXPECT_EQ(cd, dims);
  // Without outlier corrections the error may exceed t, but only by the
  // outliers' (bounded) overshoot — which is small on this smooth field.
  const auto q = metrics::compare(field.data(), lowres.data(), field.size());
  EXPECT_LT(q.rmse, cfg.tolerance);
}

TEST(LowRes, MultiChunkContainerRejected) {
  const Dims dims{64, 64, 64};
  const auto field = data::miranda_density(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 10);
  cfg.chunk_dims = Dims{32, 32, 32};
  const auto blob = compress(field.data(), dims, cfg);
  std::vector<double> coarse;
  Dims cd;
  EXPECT_EQ(decompress_lowres(blob.data(), blob.size(), 1, coarse, cd),
            Status::invalid_argument);
}

TEST(PartialInverseDwt, KeepAllLevelsIsIdentity) {
  const Dims dims{32, 32, 8};
  auto field = data::miranda_viscosity(dims);
  const auto orig = field;
  wavelet::forward_dwt(field.data(), dims);
  const size_t levels = wavelet::plan_levels(dims).max();
  wavelet::inverse_dwt_partial(field.data(), dims, levels);  // undo nothing
  // Still in the fully transformed domain: differs from the original.
  double diff = 0;
  for (size_t i = 0; i < field.size(); ++i) diff += std::fabs(field[i] - orig[i]);
  EXPECT_GT(diff, 1.0);
  wavelet::inverse_dwt_partial(field.data(), dims, 0);  // now undo all
  for (size_t i = 0; i < field.size(); ++i)
    ASSERT_NEAR(field[i], orig[i], 1e-8 * (1.0 + std::fabs(orig[i])));
}

TEST(PartialInverseDwt, DcGainNormalizesConstants) {
  // A constant field's coarse reconstruction must reproduce the constant.
  const Dims dims{32, 32, 32};
  std::vector<double> field(dims.total(), 7.25);
  Config cfg;
  cfg.tolerance = 1e-6;
  const auto blob = compress(field.data(), dims, cfg);
  std::vector<double> coarse;
  Dims cd;
  ASSERT_EQ(decompress_lowres(blob.data(), blob.size(), 2, coarse, cd), Status::ok);
  for (size_t i = 0; i < coarse.size(); ++i)
    EXPECT_NEAR(coarse[i], 7.25, 0.02) << "coarse sample " << i;
}

}  // namespace
}  // namespace sperr
