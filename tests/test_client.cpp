// Retrying client tests (src/server/client.h): backoff determinism and
// bounds, bounded connect failure, idempotency gating (VERIFY retries
// through a deadline, COMPRESS does not), the lifetime retry budget, and a
// mini chaos soak driving every fault kind through the ChaosProxy.

#include "server/client.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "server/chaosproxy.h"
#include "server/server.h"
#include "sperr/sperr.h"

namespace {

using namespace sperr::server;
using sperr::Dims;
using sperr::Rng;

TEST(Backoff, DeterministicAndBounded) {
  // Same seed, same sequence; every step inside [base, cap].
  Rng a(123), b(123);
  int prev_a = 0, prev_b = 0;
  for (int i = 0; i < 200; ++i) {
    const int na = backoff_next_ms(prev_a, 5, 500, a);
    const int nb = backoff_next_ms(prev_b, 5, 500, b);
    EXPECT_EQ(na, nb);
    EXPECT_GE(na, 5);
    EXPECT_LE(na, 500);
    prev_a = na;
    prev_b = nb;
  }
}

TEST(Backoff, GrowsFromBaseAndSaturatesAtCap) {
  // From prev = cap the next step can reach cap but never beyond; from
  // prev = 0 it starts at the base.
  Rng rng(7);
  EXPECT_EQ(backoff_next_ms(0, 10, 1000, rng), 10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(backoff_next_ms(1000, 10, 1000, rng), 1000);
  }
}

TEST(ClientConnect, FailsWithinBudgetWhenNothingListens) {
  ClientConfig cfg;
  cfg.port = 1;  // nothing listens on port 1
  cfg.connect_budget_ms = 300;
  Client c(cfg);
  sperr::Timer t;
  EXPECT_FALSE(c.connect());
  EXPECT_LT(t.seconds(), 5.0);  // bounded, not a hang
  EXPECT_FALSE(c.connected());
  EXPECT_GE(c.stats().transport_errors, 1u);
}

TEST(ClientCall, PlainRoundTripAndMismatchedJunk) {
  ServerConfig sc;
  sc.workers = 1;
  Server srv(sc);
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  ClientConfig cfg;
  cfg.port = srv.port();
  Client c(cfg);

  CallResult r = c.call(Opcode::stats, {});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.status, WireStatus::ok);
  EXPECT_EQ(r.attempts, 1);

  // A deterministic rejection comes back ok=true (transport worked) with
  // the server's verdict, and is never retried.
  const std::vector<uint8_t> junk = {1, 2, 3};
  r = c.call(Opcode::verify, junk);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.status, WireStatus::corrupt);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(c.stats().retries, 0u);
  srv.stop();
}

/// Server whose lone worker stalls the first `stalls` requests of a given
/// opcode past the tight request deadline: those attempts are answered
/// DEADLINE_EXCEEDED, later ones succeed. Paired with a client backoff
/// (250–400 ms) long enough that each retry arrives after the worker has
/// drained the abandoned stall, so attempt counts are deterministic.
struct FlakyServer {
  std::atomic<int> remaining;
  Server srv;

  explicit FlakyServer(Opcode op, int stalls)
      : remaining(stalls), srv(make_config(op, this)) {}

  ServerConfig make_config(Opcode op, FlakyServer* self) {
    ServerConfig sc;
    sc.workers = 1;
    sc.request_deadline_ms = 80;
    sc.process_hook = [op, self](uint8_t code) {
      if (Opcode(code) != op) return;
      if (self->remaining.fetch_sub(1) > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      else
        self->remaining.fetch_add(1);  // clamp: stay spent, don't go negative
    };
    return sc;
  }
};

TEST(ClientRetry, IdempotentOpRetriesThroughDeadline) {
  FlakyServer flaky(Opcode::verify, 2);
  ASSERT_EQ(flaky.srv.start(), sperr::Status::ok);
  ClientConfig cfg;
  cfg.port = flaky.srv.port();
  cfg.max_attempts = 6;
  cfg.backoff_base_ms = 250;
  cfg.backoff_cap_ms = 400;
  Client c(cfg);

  // VERIFY on junk: the first two attempts hit the deadline, the third is
  // served (verdict: corrupt — junk is junk, but the transport recovered).
  const std::vector<uint8_t> junk = {9, 9, 9};
  const CallResult r = c.call(Opcode::verify, junk);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.status, WireStatus::corrupt);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(c.stats().retries, 2u);
  flaky.srv.stop();
}

TEST(ClientRetry, NonIdempotentOpIsNotRetried) {
  FlakyServer flaky(Opcode::compress, 1);
  ASSERT_EQ(flaky.srv.start(), sperr::Status::ok);
  ClientConfig cfg;
  cfg.port = flaky.srv.port();
  cfg.max_attempts = 6;
  cfg.backoff_base_ms = 250;
  cfg.backoff_cap_ms = 400;
  Client c(cfg);

  // A COMPRESS answered DEADLINE_EXCEEDED must NOT be auto-retried: the
  // reply is returned as-is after one attempt.
  const std::vector<uint8_t> junk = {1};  // malformed, but never dispatched
  const CallResult r = c.call(Opcode::compress, junk);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.status, WireStatus::deadline_exceeded);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(c.stats().retries, 0u);

  // Same server, same flake budget — with the opt-in the retry happens.
  flaky.remaining.store(1);
  ClientConfig cfg2 = cfg;
  cfg2.retry_non_idempotent = true;
  Client c2(cfg2);
  const CallResult r2 = c2.call(Opcode::compress, junk);
  EXPECT_TRUE(r2.ok);
  EXPECT_EQ(r2.status, WireStatus::bad_request);  // served on the retry
  EXPECT_EQ(r2.attempts, 2);
  flaky.srv.stop();
}

TEST(ClientRetry, LifetimeBudgetCapsRetries) {
  // No server at all: every attempt is a transport failure, and the
  // lifetime budget (not max_attempts) is what stops the second call early.
  ClientConfig cfg;
  cfg.port = 1;
  cfg.connect_budget_ms = 50;
  cfg.max_attempts = 100;
  cfg.retry_budget = 3;
  cfg.backoff_base_ms = 1;
  cfg.backoff_cap_ms = 2;
  Client c(cfg);

  CallResult r = c.call(Opcode::stats, {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 4);  // 1 initial + 3 budgeted retries
  EXPECT_EQ(c.stats().retries, 3u);

  r = c.call(Opcode::stats, {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 1);  // budget exhausted: no retries left
  EXPECT_EQ(c.stats().retries, 3u);
  EXPECT_EQ(c.stats().giveups, 2u);
}

TEST(ChaosSoak, IdempotentOpsAlwaysRecover) {
  // Mini soak: drive VERIFY/STATS/EXTRACT traffic through a seeded
  // ChaosProxy until a few dozen fault events have fired; every call must
  // come back ok. (The full >= 200-event campaign is the chaos_selftest
  // ctest running tools/sperr_chaos.cpp.)
  ServerConfig sc;
  sc.workers = 2;
  sc.io_timeout_ms = 3000;
  sc.idle_timeout_ms = 10'000;
  Server srv(sc);
  ASSERT_EQ(srv.start(), sperr::Status::ok);

  ChaosConfig cc;
  cc.upstream_port = srv.port();
  cc.seed = 99;
  ChaosProxy proxy(cc);
  ASSERT_TRUE(proxy.start());

  const Dims dims{16, 16, 16};
  const auto field = sperr::data::s3d_temperature(dims);
  sperr::Config scfg;
  scfg.tolerance = 1e-3;
  const std::vector<uint8_t> container =
      sperr::compress(field.data(), dims, scfg);
  ASSERT_FALSE(container.empty());
  const auto extract_body =
      build_extract_body(0, container.data(), container.size());

  ClientConfig cfg;
  cfg.port = proxy.port();
  cfg.op_timeout_ms = 5000;
  cfg.max_attempts = 25;
  cfg.retry_budget = uint64_t(1) << 20;
  cfg.backoff_base_ms = 1;
  cfg.backoff_cap_ms = 20;
  cfg.seed = 99;
  Client c(cfg);

  sperr::Timer guard;
  while (proxy.counters().events() < 40 && guard.seconds() < 60.0) {
    CallResult r = c.call(Opcode::verify, container);
    EXPECT_TRUE(r.ok && r.status == WireStatus::ok) << "verify unrecovered";
    r = c.call(Opcode::extract_chunk, extract_body);
    EXPECT_TRUE(r.ok && r.status == WireStatus::ok) << "extract unrecovered";
    r = c.call(Opcode::stats, {});
    EXPECT_TRUE(r.ok && r.status == WireStatus::ok) << "stats unrecovered";
    c.disconnect();  // fresh connection -> fresh fault plan
  }
  EXPECT_GE(proxy.counters().events(), 40u);
  proxy.stop();
  srv.stop();
}

TEST(ChaosPlan, SameSeedSamePlan) {
  ChaosConfig a, b;
  a.seed = b.seed = 4242;
  a.upstream_port = b.upstream_port = 1;
  const auto plan_a = make_fault_plan(a, 3);
  const auto plan_b = make_fault_plan(b, 3);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  for (size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].upstream, plan_b[i].upstream);
    EXPECT_EQ(plan_a[i].at_byte, plan_b[i].at_byte);
    EXPECT_EQ(plan_a[i].kind, plan_b[i].kind);
  }
  // Different connection index, different plan stream (usually).
  b.seed = 4243;
  const auto plan_c = make_fault_plan(b, 3);
  // No assertion on inequality (could legitimately collide) — just that it
  // is well-formed: offsets within the window, kinds valid.
  for (const auto& ev : plan_c) {
    EXPECT_LT(ev.at_byte, uint64_t(b.offset_window));
    EXPECT_LE(unsigned(ev.kind), unsigned(FaultKind::truncate_close));
  }
}

}  // namespace
