#include "wavelet/cdf97.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace sperr::wavelet {
namespace {

void expect_reconstruction(const std::vector<double>& input, double tol = 1e-10) {
  std::vector<double> work = input;
  std::vector<double> scratch(input.size());
  cdf97_analysis(work.data(), work.size(), scratch.data());
  cdf97_synthesis(work.data(), work.size(), scratch.data());
  for (size_t i = 0; i < input.size(); ++i)
    EXPECT_NEAR(work[i], input[i], tol) << "sample " << i << " of " << input.size();
}

TEST(Cdf97, PerfectReconstructionEveryLengthUpTo64) {
  Rng rng(21);
  for (size_t n = 1; n <= 64; ++n) {
    std::vector<double> input(n);
    for (auto& v : input) v = rng.uniform(-10.0, 10.0);
    expect_reconstruction(input);
  }
}

TEST(Cdf97, PerfectReconstructionLongSignal) {
  Rng rng(22);
  std::vector<double> input(4099);  // odd, prime-ish length
  for (auto& v : input) v = rng.gaussian() * 100.0;
  expect_reconstruction(input, 1e-8);
}

TEST(Cdf97, ConstantSignalHasNoDetail) {
  // A constant is perfectly represented by the low-pass branch: all detail
  // coefficients must vanish (the 9/7 high-pass filter kills constants).
  std::vector<double> input(64, 3.5);
  std::vector<double> scratch(64);
  cdf97_analysis(input.data(), input.size(), scratch.data());
  const size_t na = approx_len(64);
  // The published lifting constants are truncated decimals, so "zero"
  // detail carries ~1e-12 of numerical residue relative to the input scale.
  for (size_t i = na; i < 64; ++i) EXPECT_NEAR(input[i], 0.0, 1e-10);
}

TEST(Cdf97, LinearRampHasNoDetail) {
  // The CDF 9/7 wavelet has four vanishing moments; linear signals also
  // produce (near-)zero detail away from boundaries.
  std::vector<double> input(64);
  std::iota(input.begin(), input.end(), 0.0);
  std::vector<double> scratch(64);
  cdf97_analysis(input.data(), input.size(), scratch.data());
  const size_t na = approx_len(64);
  // Skip the two boundary-adjacent detail coefficients at each end.
  for (size_t i = na + 2; i < 62; ++i) EXPECT_NEAR(input[i], 0.0, 1e-9);
}

TEST(Cdf97, ApproxCoefficientsCarryTheMeanEnergy) {
  std::vector<double> input(128, 1.0);
  std::vector<double> scratch(128);
  cdf97_analysis(input.data(), input.size(), scratch.data());
  const size_t na = approx_len(128);
  for (size_t i = 0; i < na; ++i) EXPECT_GT(input[i], 0.5);
}

TEST(Cdf97, NearUnitNormEnergyPreservation) {
  // Biorthogonal 9/7 is only near-orthogonal: energy is preserved to within
  // a few percent, which is the property SPERR's error estimation relies on.
  Rng rng(23);
  std::vector<double> input(1024);
  for (auto& v : input) v = rng.gaussian();
  const double energy_in =
      std::inner_product(input.begin(), input.end(), input.begin(), 0.0);
  std::vector<double> scratch(1024);
  cdf97_analysis(input.data(), input.size(), scratch.data());
  const double energy_out =
      std::inner_product(input.begin(), input.end(), input.begin(), 0.0);
  EXPECT_NEAR(energy_out / energy_in, 1.0, 0.10);
}

TEST(Cdf97, ImpulseRoundTripsEveryPosition) {
  for (size_t pos = 0; pos < 32; ++pos) {
    std::vector<double> input(32, 0.0);
    input[pos] = 1.0;
    expect_reconstruction(input);
  }
}

TEST(Cdf97, TrivialLengthsAreNoOps) {
  std::vector<double> one = {7.0};
  std::vector<double> scratch(1);
  cdf97_analysis(one.data(), 1, scratch.data());
  EXPECT_EQ(one[0], 7.0);
  cdf97_synthesis(one.data(), 1, scratch.data());
  EXPECT_EQ(one[0], 7.0);
}

TEST(LevelPolicy, MatchesPaperFormula) {
  EXPECT_EQ(num_levels(1), 0u);
  EXPECT_EQ(num_levels(7), 0u);
  EXPECT_EQ(num_levels(8), 1u);    // log2(8)-2 = 1
  EXPECT_EQ(num_levels(15), 1u);   // floor(log2 15) = 3
  EXPECT_EQ(num_levels(16), 2u);
  EXPECT_EQ(num_levels(64), 4u);
  EXPECT_EQ(num_levels(256), 6u);  // hits the cap: min(6, 8-2)
  EXPECT_EQ(num_levels(4096), 6u); // capped at 6
}

}  // namespace
}  // namespace sperr::wavelet
