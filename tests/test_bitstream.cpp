#include "common/bitstream.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sperr {
namespace {

TEST(BitWriter, EmptyStream) {
  BitWriter bw;
  EXPECT_EQ(bw.bit_count(), 0u);
  EXPECT_EQ(bw.byte_count(), 0u);
  EXPECT_TRUE(bw.take().empty());
}

TEST(BitWriter, SingleBitOccupiesOneByte) {
  BitWriter bw;
  bw.put(true);
  EXPECT_EQ(bw.bit_count(), 1u);
  EXPECT_EQ(bw.byte_count(), 1u);
  EXPECT_EQ(bw.bytes()[0], 0x01);
}

TEST(BitWriter, LsbFirstPacking) {
  BitWriter bw;
  // Bits 1,0,1,1 -> binary ...1101 = 0x0d.
  bw.put(true);
  bw.put(false);
  bw.put(true);
  bw.put(true);
  EXPECT_EQ(bw.bytes()[0], 0x0d);
}

TEST(BitWriter, CrossesByteBoundary) {
  BitWriter bw;
  for (int i = 0; i < 9; ++i) bw.put(true);
  EXPECT_EQ(bw.byte_count(), 2u);
  EXPECT_EQ(bw.bytes()[0], 0xff);
  EXPECT_EQ(bw.bytes()[1], 0x01);
}

TEST(BitWriter, PutBitsLittleEndian) {
  BitWriter bw;
  bw.put_bits(0b1011, 4);
  EXPECT_EQ(bw.bytes()[0], 0b1011);
}

TEST(BitStream, RoundTripRandomBits) {
  Rng rng(42);
  std::vector<bool> bits;
  BitWriter bw;
  for (int i = 0; i < 10007; ++i) {  // deliberately not a multiple of 8
    const bool b = rng.next() & 1;
    bits.push_back(b);
    bw.put(b);
  }
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(br.get(), bits[i]) << "bit " << i;
  }
  EXPECT_FALSE(br.exhausted());
}

TEST(BitReader, ExactBitCountLimitsReads) {
  BitWriter bw;
  for (int i = 0; i < 16; ++i) bw.put(true);
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size(), 10);  // only 10 bits are valid
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(br.get());
    EXPECT_FALSE(br.exhausted());
  }
  EXPECT_FALSE(br.get());  // reads as 0 past the limit
  EXPECT_TRUE(br.exhausted());
}

TEST(BitReader, ExhaustionLatches) {
  BitReader br(nullptr, 0);
  EXPECT_FALSE(br.get());
  EXPECT_TRUE(br.exhausted());
  EXPECT_FALSE(br.get());
  EXPECT_TRUE(br.exhausted());
}

TEST(BitReader, GetBitsRoundTrip) {
  Rng rng(7);
  std::vector<std::pair<uint64_t, unsigned>> values;
  BitWriter bw;
  for (int i = 0; i < 500; ++i) {
    const unsigned width = 1 + unsigned(rng.below(32));
    const uint64_t v = rng.next() & ((width == 64 ? 0 : (uint64_t(1) << width)) - 1);
    values.emplace_back(v, width);
    bw.put_bits(v, width);
  }
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  for (const auto& [v, w] : values) EXPECT_EQ(br.get_bits(w), v);
}

TEST(WordBitWriter, MatchesBitWriterOnRandomSequences) {
  // Byte-for-byte equivalence with BitWriter is the class's documented
  // invariant. Widths sweep the full 1..56 contract, including long runs of
  // wide writes that keep the accumulator nearly full — the regime where a
  // deferred-spill implementation overflows the 64-bit register.
  for (const uint64_t seed : {3u, 77u, 2026u}) {
    Rng rng(seed);
    BitWriter ref;
    WordBitWriter fast;
    for (int i = 0; i < 20000; ++i) {
      const unsigned width = 1 + unsigned(rng.below(56));
      const uint64_t v = rng.next() & ((uint64_t(1) << width) - 1);
      ref.put_bits(v, width);
      fast.put_bits(v, width);
      ASSERT_EQ(fast.bit_count(), ref.bit_count());
    }
    EXPECT_EQ(fast.finish(), ref.bytes());
  }
}

TEST(WordBitWriter, MaxWidthWritesBackToBack) {
  // All-ones 56-bit writes at every starting phase 0..7 of the accumulator.
  for (unsigned phase = 0; phase < 8; ++phase) {
    BitWriter ref;
    WordBitWriter fast;
    if (phase != 0) {
      ref.put_bits(0, phase);
      fast.put_bits(0, phase);
    }
    const uint64_t ones = (uint64_t(1) << 56) - 1;
    for (int i = 0; i < 64; ++i) {
      ref.put_bits(ones, 56);
      fast.put_bits(ones, 56);
    }
    EXPECT_EQ(fast.finish(), ref.bytes()) << "phase " << phase;
  }
}

TEST(WordBitWriter, ClearResetsForReuse) {
  WordBitWriter w;
  w.put_bits(0x3FF, 10);
  (void)w.finish();
  w.clear();
  EXPECT_EQ(w.bit_count(), 0u);
  w.put_bits(0x5, 3);
  const auto& bytes = w.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x5);
}

TEST(BitReader, BitsReadAndLeft) {
  BitWriter bw;
  bw.put_bits(0xabcd, 16);
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  EXPECT_EQ(br.bits_left(), 16u);
  (void)br.get_bits(5);
  EXPECT_EQ(br.bits_read(), 5u);
  EXPECT_EQ(br.bits_left(), 11u);
}

}  // namespace
}  // namespace sperr
