#include "common/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace sperr {
namespace {

uint64_t hash_str(const std::string& s, uint64_t seed = 0) {
  return xxhash64(s.data(), s.size(), seed);
}

// Published XXH64 reference values (the upstream xxHash sanity vectors).
TEST(Checksum, MatchesPublishedXxh64Vectors) {
  EXPECT_EQ(hash_str(""), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(hash_str("abc"), 0x44BC2CF5AD770999ull);
}

TEST(Checksum, SeedChangesTheHash) {
  const std::string msg = "scientific data";
  EXPECT_NE(hash_str(msg, 0), hash_str(msg, 1));
  EXPECT_NE(hash_str("", 0), xxhash64("", 0, 1));
}

TEST(Checksum, DeterministicAcrossCalls) {
  Rng rng(77);
  std::vector<uint8_t> buf(100000);
  for (auto& b : buf) b = uint8_t(rng.next());
  const uint64_t h1 = xxhash64(buf.data(), buf.size());
  const uint64_t h2 = xxhash64(buf.data(), buf.size());
  EXPECT_EQ(h1, h2);
}

TEST(Checksum, SingleBitFlipChangesTheHash) {
  // The checksum's whole job in the lossless block directory: any one-bit
  // payload change must be detected.
  Rng rng(78);
  std::vector<uint8_t> buf(4096);
  for (auto& b : buf) b = uint8_t(rng.next());
  const uint64_t base = xxhash64(buf.data(), buf.size());
  for (const size_t byte : {size_t(0), size_t(31), size_t(32), size_t(1000),
                            buf.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= uint8_t(1 << bit);
      EXPECT_NE(xxhash64(buf.data(), buf.size()), base)
          << "byte " << byte << " bit " << bit;
      buf[byte] ^= uint8_t(1 << bit);
    }
  }
  EXPECT_EQ(xxhash64(buf.data(), buf.size()), base);
}

TEST(Checksum, EveryLengthUpToTwoStripesHashesDistinctly) {
  // Exercises all tail paths (8-byte, 4-byte, 1-byte) and the 32-byte stripe
  // loop boundary; a prefix and its extension must not collide.
  std::vector<uint8_t> buf(96);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = uint8_t(i * 37 + 11);
  std::vector<uint64_t> seen;
  for (size_t n = 0; n <= buf.size(); ++n) seen.push_back(xxhash64(buf.data(), n));
  for (size_t a = 0; a < seen.size(); ++a)
    for (size_t b = a + 1; b < seen.size(); ++b)
      EXPECT_NE(seen[a], seen[b]) << "lengths " << a << " and " << b;
}

TEST(Checksum, IndependentOfBufferAlignment) {
  std::vector<uint8_t> storage(200);
  for (size_t i = 0; i < storage.size(); ++i) storage[i] = uint8_t(i);
  const uint64_t ref = xxhash64(storage.data(), 64);
  for (size_t shift = 1; shift < 8; ++shift) {
    std::vector<uint8_t> moved(storage.size() + shift);
    std::memcpy(moved.data() + shift, storage.data(), 64);
    EXPECT_EQ(xxhash64(moved.data() + shift, 64), ref);
  }
}

}  // namespace
}  // namespace sperr
