#include "sperr/header.h"

#include <gtest/gtest.h>

#include "common/byteio.h"

namespace sperr {
namespace {

ContainerHeader sample_header() {
  ContainerHeader hdr;
  hdr.mode = Mode::pwe;
  hdr.precision = 4;
  hdr.dims = Dims{384, 384, 256};
  hdr.chunk_dims = Dims{256, 256, 256};
  hdr.quality = 3.64e-11;
  hdr.entries = {ChunkEntry(1000, 50), ChunkEntry(2000, 0), ChunkEntry(0, 10)};
  hdr.entries[0].checksum = 0x0123456789abcdefULL;
  hdr.entries[0].mean = -3.75;
  hdr.entries[1].checksum = 0xfeedfacecafef00dULL;
  hdr.entries[1].mean = 1e20;
  return hdr;
}

TEST(ContainerHeader, RoundTrip) {
  const ContainerHeader hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);

  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  ASSERT_EQ(parsed.deserialize(br), Status::ok);
  EXPECT_EQ(parsed.mode, hdr.mode);
  EXPECT_EQ(parsed.precision, hdr.precision);
  EXPECT_EQ(parsed.dims, hdr.dims);
  EXPECT_EQ(parsed.chunk_dims, hdr.chunk_dims);
  EXPECT_DOUBLE_EQ(parsed.quality, hdr.quality);
  EXPECT_EQ(parsed.entries, hdr.entries);
  EXPECT_EQ(parsed.version, ContainerHeader::kVersion);
  EXPECT_TRUE(parsed.has_integrity());
}

TEST(ContainerHeader, SelfChecksumCatchesDirectoryDamage) {
  const ContainerHeader hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  // Flip one byte inside the directory (after the fixed fields, before the
  // trailing self-checksum): the lengths would mis-slice the payload, so the
  // parse must fail loudly instead.
  const size_t fixed = 4 + 1 + 1 + 6 * 8 + 8 + 4;
  for (const size_t at : {fixed + 3, fixed + 20, buf.size() - 16}) {
    auto bad = buf;
    bad[at] ^= 0x10;
    ByteReader br(bad.data(), bad.size());
    ContainerHeader parsed;
    EXPECT_EQ(parsed.deserialize(br), Status::corrupt_stream) << "byte " << at;
  }
}

TEST(ContainerHeader, ParsesLegacyV2Layout) {
  // Hand-build a v2 header: same fixed fields, 16-byte directory entries,
  // no self-checksum.
  const ContainerHeader hdr = sample_header();
  std::vector<uint8_t> buf;
  put_u32(buf, ContainerHeader::kInnerMagic);
  put_u8(buf, uint8_t(hdr.mode));
  put_u8(buf, hdr.precision);
  put_u64(buf, hdr.dims.x);
  put_u64(buf, hdr.dims.y);
  put_u64(buf, hdr.dims.z);
  put_u64(buf, hdr.chunk_dims.x);
  put_u64(buf, hdr.chunk_dims.y);
  put_u64(buf, hdr.chunk_dims.z);
  put_f64(buf, hdr.quality);
  put_u32(buf, uint32_t(hdr.entries.size()));
  for (const ChunkEntry& e : hdr.entries) {
    put_u64(buf, e.speck_len);
    put_u64(buf, e.outlier_len);
  }

  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  ASSERT_EQ(parsed.deserialize(br, 2), Status::ok);
  EXPECT_EQ(parsed.version, 2);
  EXPECT_FALSE(parsed.has_integrity());
  ASSERT_EQ(parsed.entries.size(), hdr.entries.size());
  for (size_t i = 0; i < hdr.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].speck_len, hdr.entries[i].speck_len);
    EXPECT_EQ(parsed.entries[i].outlier_len, hdr.entries[i].outlier_len);
    EXPECT_EQ(parsed.entries[i].checksum, 0u);  // absent in v2
  }
}

TEST(ContainerHeader, RejectsBadMagic) {
  auto hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  buf[0] ^= 0xff;
  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  EXPECT_EQ(parsed.deserialize(br), Status::corrupt_stream);
}

TEST(ContainerHeader, RejectsBadMode) {
  auto hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  buf[4] = 99;  // mode byte
  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  EXPECT_EQ(parsed.deserialize(br), Status::corrupt_stream);
}

TEST(ContainerHeader, RejectsBadPrecision) {
  auto hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  buf[5] = 3;  // precision byte
  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  EXPECT_EQ(parsed.deserialize(br), Status::corrupt_stream);
}

TEST(ContainerHeader, RejectsImplausibleExtents) {
  auto hdr = sample_header();
  hdr.dims = Dims{size_t(1) << 40, 1, 1};  // beyond kMaxAxisExtent
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  EXPECT_EQ(parsed.deserialize(br), Status::corrupt_stream);
}

TEST(ContainerHeader, RejectsTruncation) {
  auto hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  for (const size_t keep : {0u, 3u, 10u, 40u, 70u}) {
    ByteReader br(buf.data(), std::min<size_t>(keep, buf.size()));
    ContainerHeader parsed;
    EXPECT_NE(parsed.deserialize(br), Status::ok) << "kept " << keep;
  }
}

TEST(Wrapper, RoundTripBothModes) {
  std::vector<uint8_t> payload(5000);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = uint8_t(i % 7);
  for (const bool lossless : {false, true}) {
    const auto wrapped = wrap_container(payload, lossless);
    std::vector<uint8_t> inner;
    ASSERT_EQ(unwrap_container(wrapped.data(), wrapped.size(), inner), Status::ok);
    EXPECT_EQ(inner, payload);
  }
}

TEST(Wrapper, LosslessPassShrinksRedundantPayload) {
  std::vector<uint8_t> payload(50000, 0xaa);
  const auto raw = wrap_container(payload, false);
  const auto packed = wrap_container(payload, true);
  EXPECT_LT(packed.size(), raw.size() / 10);
}

TEST(Wrapper, RejectsWrongVersion) {
  const auto wrapped = wrap_container({1, 2, 3}, false);
  auto bad = wrapped;
  bad[4] = 0x7f;  // version byte
  std::vector<uint8_t> inner;
  EXPECT_EQ(unwrap_container(bad.data(), bad.size(), inner),
            Status::corrupt_stream);
}

}  // namespace
}  // namespace sperr
