#include "sperr/header.h"

#include <gtest/gtest.h>

#include "common/byteio.h"

namespace sperr {
namespace {

ContainerHeader sample_header() {
  ContainerHeader hdr;
  hdr.mode = Mode::pwe;
  hdr.precision = 4;
  hdr.dims = Dims{384, 384, 256};
  hdr.chunk_dims = Dims{256, 256, 256};
  hdr.quality = 3.64e-11;
  hdr.chunk_lens = {{1000, 50}, {2000, 0}, {0, 10}};
  return hdr;
}

TEST(ContainerHeader, RoundTrip) {
  const ContainerHeader hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);

  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  ASSERT_EQ(parsed.deserialize(br), Status::ok);
  EXPECT_EQ(parsed.mode, hdr.mode);
  EXPECT_EQ(parsed.precision, hdr.precision);
  EXPECT_EQ(parsed.dims, hdr.dims);
  EXPECT_EQ(parsed.chunk_dims, hdr.chunk_dims);
  EXPECT_DOUBLE_EQ(parsed.quality, hdr.quality);
  EXPECT_EQ(parsed.chunk_lens, hdr.chunk_lens);
}

TEST(ContainerHeader, RejectsBadMagic) {
  auto hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  buf[0] ^= 0xff;
  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  EXPECT_EQ(parsed.deserialize(br), Status::corrupt_stream);
}

TEST(ContainerHeader, RejectsBadMode) {
  auto hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  buf[4] = 99;  // mode byte
  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  EXPECT_EQ(parsed.deserialize(br), Status::corrupt_stream);
}

TEST(ContainerHeader, RejectsBadPrecision) {
  auto hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  buf[5] = 3;  // precision byte
  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  EXPECT_EQ(parsed.deserialize(br), Status::corrupt_stream);
}

TEST(ContainerHeader, RejectsImplausibleExtents) {
  auto hdr = sample_header();
  hdr.dims = Dims{size_t(1) << 40, 1, 1};  // beyond kMaxAxisExtent
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  ByteReader br(buf.data(), buf.size());
  ContainerHeader parsed;
  EXPECT_EQ(parsed.deserialize(br), Status::corrupt_stream);
}

TEST(ContainerHeader, RejectsTruncation) {
  auto hdr = sample_header();
  std::vector<uint8_t> buf;
  hdr.serialize(buf);
  for (const size_t keep : {0u, 3u, 10u, 40u, 70u}) {
    ByteReader br(buf.data(), std::min<size_t>(keep, buf.size()));
    ContainerHeader parsed;
    EXPECT_NE(parsed.deserialize(br), Status::ok) << "kept " << keep;
  }
}

TEST(Wrapper, RoundTripBothModes) {
  std::vector<uint8_t> payload(5000);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = uint8_t(i % 7);
  for (const bool lossless : {false, true}) {
    const auto wrapped = wrap_container(payload, lossless);
    std::vector<uint8_t> inner;
    ASSERT_EQ(unwrap_container(wrapped.data(), wrapped.size(), inner), Status::ok);
    EXPECT_EQ(inner, payload);
  }
}

TEST(Wrapper, LosslessPassShrinksRedundantPayload) {
  std::vector<uint8_t> payload(50000, 0xaa);
  const auto raw = wrap_container(payload, false);
  const auto packed = wrap_container(payload, true);
  EXPECT_LT(packed.size(), raw.size() / 10);
}

TEST(Wrapper, RejectsWrongVersion) {
  const auto wrapped = wrap_container({1, 2, 3}, false);
  auto bad = wrapped;
  bad[4] = 0x7f;  // version byte
  std::vector<uint8_t> inner;
  EXPECT_EQ(unwrap_container(bad.data(), bad.size(), inner),
            Status::corrupt_stream);
}

}  // namespace
}  // namespace sperr
