// Fault-isolated decoding: container v3 checksums every chunk, so a damaged
// archive must (a) name exactly the damaged chunks, (b) hand back every
// other chunk bit-identical to a clean decode under the fill policies, and
// (c) fail deterministically (lowest damaged index) under fail_fast. Plus
// unit coverage of the faultinject planner these guarantees are fuzzed with.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <string>

#include "common/faultinject.h"
#include "data/synthetic.h"
#include "sperr/archive.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/outofcore.h"
#include "sperr/sperr.h"

namespace sperr {
namespace {

constexpr size_t kOuterBytes = 14;  // magic + version + lossless flag + length

/// An 8-chunk PWE archive (48^3 field, 24^3 chunks), lossless pass optional.
std::vector<uint8_t> make_multichunk_blob(std::vector<double>* field_out = nullptr,
                                          bool lossless = false) {
  const Dims dims{48, 48, 48};
  auto field = data::miranda_pressure(dims, 5);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 16);
  cfg.chunk_dims = Dims{24, 24, 24};
  cfg.lossless_pass = lossless;
  auto blob = compress(field.data(), dims, cfg);
  if (field_out) *field_out = std::move(field);
  return blob;
}

/// Absolute byte ranges of each chunk's streams within a NON-lossless blob
/// (inner bytes sit verbatim after the outer wrapper).
std::vector<faultinject::ByteRange> chunk_ranges(const std::vector<uint8_t>& blob,
                                                 ContainerHeader* hdr_out = nullptr) {
  std::vector<uint8_t> inner;
  ContainerHeader hdr;
  size_t payload_pos = 0;
  EXPECT_EQ(open_container(blob.data(), blob.size(), inner, hdr, &payload_pos),
            Status::ok);
  std::vector<faultinject::ByteRange> ranges;
  size_t pos = kOuterBytes + payload_pos;
  for (const ChunkEntry& e : hdr.entries) {
    ranges.push_back({pos, size_t(e.total_len())});
    pos += size_t(e.total_len());
  }
  if (hdr_out) *hdr_out = hdr;
  return ranges;
}

/// Every sample of every chunk NOT in `damaged` must match the clean decode
/// exactly; damaged chunks must at least be finite.
void expect_good_chunks_bit_identical(const std::vector<double>& clean,
                                      const std::vector<double>& recovered,
                                      Dims dims, Dims chunk_dims,
                                      const std::vector<size_t>& damaged) {
  ASSERT_EQ(clean.size(), recovered.size());
  const auto chunks = make_chunks(dims, chunk_dims);
  for (size_t i = 0; i < chunks.size(); ++i) {
    const bool bad =
        std::find(damaged.begin(), damaged.end(), i) != damaged.end();
    const Chunk& c = chunks[i];
    for (size_t z = 0; z < c.dims.z; ++z)
      for (size_t y = 0; y < c.dims.y; ++y)
        for (size_t x = 0; x < c.dims.x; ++x) {
          const size_t vi =
              dims.index(c.origin.x + x, c.origin.y + y, c.origin.z + z);
          if (bad) {
            ASSERT_TRUE(std::isfinite(recovered[vi])) << "chunk " << i;
          } else {
            ASSERT_EQ(clean[vi], recovered[vi])
                << "chunk " << i << " should be untouched";
          }
        }
  }
}

// ---- faultinject unit tests ------------------------------------------------

TEST(FaultInject, PlanIsDeterministicAndRespectsStructure) {
  const std::vector<faultinject::ByteRange> slices{{10, 30}, {40, 0}, {40, 25}};
  const auto a = faultinject::plan(42, 5, slices, 100);
  const auto b = faultinject::plan(42, 5, slices, 100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].mask, b[i].mask);
  }
  EXPECT_FALSE(a.empty());
  // At most one structural fault, and only in last position.
  for (size_t i = 0; i + 1 < a.size(); ++i)
    EXPECT_LE(uint8_t(a[i].kind), uint8_t(faultinject::FaultKind::zero_range));
  for (const auto& f : a) {
    EXPECT_NE(f.target, 1u) << "zero-length slice must never be targeted";
    EXPECT_FALSE(to_string(f).empty());
  }
  // Different seeds diverge (overwhelmingly likely over 5 faults).
  const auto c = faultinject::plan(43, 5, slices, 100);
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].kind != c[i].kind || a[i].offset != c[i].offset ||
              a[i].mask != c[i].mask || a[i].target != c[i].target;
  EXPECT_TRUE(differs);
}

TEST(FaultInject, DamagedSlicesIsExactGroundTruth) {
  std::vector<uint8_t> buf(100);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = uint8_t(i);
  const std::vector<faultinject::ByteRange> slices{{0, 25}, {25, 25}, {50, 25}, {75, 25}};

  // A single bit flip in slice 2 damages exactly slice 2.
  faultinject::Fault f;
  f.kind = faultinject::FaultKind::bit_flip;
  f.target = 2;
  f.offset = 7;
  f.mask = 0x20;
  const auto mutated = faultinject::apply(buf.data(), buf.size(), slices, {f});
  ASSERT_EQ(mutated.size(), buf.size());
  EXPECT_EQ(mutated[50 + 7], buf[50 + 7] ^ 0x20);
  const auto damaged = faultinject::damaged_slices(buf.data(), buf.size(), slices, {f});
  EXPECT_EQ(damaged, (std::vector<size_t>{2}));

  // Swapping slices 0 and 3 damages both (contents differ).
  faultinject::Fault sw;
  sw.kind = faultinject::FaultKind::swap_slices;
  sw.target = 0;
  sw.other = 3;
  const auto d2 = faultinject::damaged_slices(buf.data(), buf.size(), slices, {sw});
  EXPECT_EQ(d2, (std::vector<size_t>{0, 3}));

  // Truncating 30 bytes cuts slice 3 entirely and slice 2 partially.
  faultinject::Fault tr;
  tr.kind = faultinject::FaultKind::truncate_tail;
  tr.length = 30;
  const auto d3 = faultinject::damaged_slices(buf.data(), buf.size(), slices, {tr});
  EXPECT_EQ(d3, (std::vector<size_t>{2, 3}));
}

// ---- verify_container -------------------------------------------------------

TEST(Recovery, VerifyCleanArchive) {
  const auto blob = make_multichunk_blob(nullptr, true);
  DecodeReport rep;
  ASSERT_EQ(verify_container(blob.data(), blob.size(), &rep), Status::ok);
  EXPECT_TRUE(rep.header_ok);
  EXPECT_EQ(rep.version, ContainerHeader::kVersion);
  EXPECT_EQ(rep.damaged, 0u);
  ASSERT_EQ(rep.chunks.size(), 8u);
  for (const auto& c : rep.chunks) {
    EXPECT_TRUE(c.checksum_present);
    EXPECT_TRUE(c.checksum_ok);
    EXPECT_EQ(c.checksum_stored, c.checksum_computed);
    EXPECT_EQ(c.status, Status::ok);
  }
}

// ---- the acceptance contract: 1 damaged chunk out of 8 ----------------------

TEST(Recovery, OneCorruptChunkOfEightIsIsolated) {
  std::vector<double> field;
  const auto blob = make_multichunk_blob(&field);
  ContainerHeader hdr;
  const auto ranges = chunk_ranges(blob, &hdr);
  ASSERT_EQ(ranges.size(), 8u);

  std::vector<double> clean;
  Dims dims;
  ASSERT_EQ(decompress(blob.data(), blob.size(), clean, dims), Status::ok);

  for (const size_t victim : {size_t(0), size_t(3), size_t(7)}) {
    auto bad = blob;
    bad[ranges[victim].offset + ranges[victim].length / 2] ^= 0x40;

    // verify: exactly the victim flagged.
    DecodeReport vrep;
    ASSERT_EQ(verify_container(bad.data(), bad.size(), &vrep),
              Status::corrupt_chunk);
    EXPECT_EQ(vrep.damaged, 1u);
    EXPECT_EQ(vrep.first_damaged(), victim);
    for (const auto& c : vrep.chunks)
      EXPECT_EQ(c.checksum_ok, c.index != victim);

    // fail_fast (and the plain decompress API): deterministic error naming
    // the victim, no field.
    std::vector<double> out;
    Dims od;
    DecodeReport frep;
    ASSERT_EQ(decompress_tolerant(bad.data(), bad.size(), Recovery::fail_fast,
                                  out, od, &frep),
              Status::corrupt_chunk);
    EXPECT_FALSE(frep.field_valid);
    EXPECT_EQ(frep.first_damaged(), victim);
    ASSERT_EQ(decompress(bad.data(), bad.size(), out, od), Status::corrupt_chunk);

    // zero_fill: usable field, victim zeroed, everything else bit-identical.
    DecodeReport zrep;
    ASSERT_EQ(decompress_tolerant(bad.data(), bad.size(), Recovery::zero_fill,
                                  out, od, &zrep),
              Status::ok);
    EXPECT_TRUE(zrep.field_valid);
    EXPECT_EQ(zrep.damaged, 1u);
    EXPECT_EQ(zrep.recovered, 1u);
    EXPECT_EQ(zrep.chunks[victim].action, ChunkAction::zeroed);
    expect_good_chunks_bit_identical(clean, out, dims, hdr.chunk_dims, {victim});

    // coarse_fill: usable field, victim patched (coarse or DC), rest identical.
    DecodeReport crep;
    ASSERT_EQ(decompress_tolerant(bad.data(), bad.size(), Recovery::coarse_fill,
                                  out, od, &crep),
              Status::ok);
    EXPECT_TRUE(crep.field_valid);
    EXPECT_EQ(crep.damaged, 1u);
    EXPECT_NE(crep.chunks[victim].action, ChunkAction::none);
    expect_good_chunks_bit_identical(clean, out, dims, hdr.chunk_dims, {victim});
  }
}

TEST(Recovery, MultiChunkCorruptionIsolatesEachChunk) {
  std::vector<double> field;
  const auto blob = make_multichunk_blob(&field);
  ContainerHeader hdr;
  const auto ranges = chunk_ranges(blob, &hdr);

  std::vector<double> clean;
  Dims dims;
  ASSERT_EQ(decompress(blob.data(), blob.size(), clean, dims), Status::ok);

  auto bad = blob;
  const std::vector<size_t> victims{1, 4, 6};
  for (const size_t v : victims) bad[ranges[v].offset + 3] ^= 0x04;

  // fail_fast reports the LOWEST index, deterministically, run after run.
  for (int run = 0; run < 4; ++run) {
    std::vector<double> out;
    Dims od;
    DecodeReport rep;
    ASSERT_EQ(decompress_tolerant(bad.data(), bad.size(), Recovery::fail_fast,
                                  out, od, &rep),
              Status::corrupt_chunk);
    EXPECT_EQ(rep.first_damaged(), victims.front());
    EXPECT_EQ(rep.damaged, victims.size());
  }

  std::vector<double> out;
  Dims od;
  DecodeReport rep;
  ASSERT_EQ(decompress_tolerant(bad.data(), bad.size(), Recovery::coarse_fill,
                                out, od, &rep),
            Status::ok);
  EXPECT_EQ(rep.damaged, victims.size());
  expect_good_chunks_bit_identical(clean, out, dims, hdr.chunk_dims, victims);
}

TEST(Recovery, TailTruncationIsRecoverable) {
  const auto blob = make_multichunk_blob();
  ContainerHeader hdr;
  const auto ranges = chunk_ranges(blob, &hdr);

  std::vector<double> clean;
  Dims dims;
  ASSERT_EQ(decompress(blob.data(), blob.size(), clean, dims), Status::ok);

  // Cut into the middle of the last chunk's streams.
  auto cut = blob;
  cut.resize(ranges.back().offset + ranges.back().length / 3);

  std::vector<double> out;
  Dims od;
  DecodeReport rep;
  ASSERT_EQ(decompress_tolerant(cut.data(), cut.size(), Recovery::zero_fill, out,
                                od, &rep),
            Status::ok);
  EXPECT_EQ(rep.damaged, 1u);
  EXPECT_EQ(rep.first_damaged(), ranges.size() - 1);
  expect_good_chunks_bit_identical(clean, out, dims, hdr.chunk_dims,
                                   {ranges.size() - 1});

  // fail_fast refuses, as it always did.
  ASSERT_NE(decompress(cut.data(), cut.size(), out, od), Status::ok);
}

TEST(Recovery, DirectoryDamageIsUnrecoverable) {
  const auto blob = make_multichunk_blob();
  // Flip a byte in the chunk directory (fixed header fields end at 66; the
  // directory follows). The header self-checksum must catch it and every
  // policy must refuse — mis-sliced payloads are worse than no payload.
  auto bad = blob;
  bad[kOuterBytes + 70] ^= 0x01;
  for (const Recovery policy :
       {Recovery::fail_fast, Recovery::zero_fill, Recovery::coarse_fill}) {
    std::vector<double> out;
    Dims od;
    DecodeReport rep;
    EXPECT_EQ(decompress_tolerant(bad.data(), bad.size(), policy, out, od, &rep),
              Status::corrupt_stream);
    EXPECT_FALSE(rep.header_ok);
  }
}

TEST(Recovery, CorruptLosslessBlockIsRecoverable) {
  // With the lossless pass on, chunk damage arrives via a zero-filled
  // lossless block. The fill policies must still isolate it; fail_fast must
  // keep returning corrupt_block exactly as before.
  std::vector<double> field;
  const Dims dims{48, 48, 48};
  field = data::miranda_pressure(dims, 5);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 16);
  cfg.chunk_dims = Dims{24, 24, 24};
  cfg.lossless_block_size = size_t(1) << 12;  // several blocks
  const auto blob = compress(field.data(), dims, cfg);

  std::vector<double> clean;
  Dims od;
  ASSERT_EQ(decompress(blob.data(), blob.size(), clean, od), Status::ok);

  // Flip a byte deep inside the lossless payload (well past the framing).
  auto bad = blob;
  bad[blob.size() / 2] ^= 0x10;
  std::vector<double> out;
  ASSERT_EQ(decompress(bad.data(), bad.size(), out, od), Status::corrupt_block);

  DecodeReport rep;
  const Status s = decompress_tolerant(bad.data(), bad.size(),
                                       Recovery::zero_fill, out, od, &rep);
  if (s == Status::ok) {
    EXPECT_TRUE(rep.field_valid);
    EXPECT_FALSE(rep.lossless_bad_blocks.empty());
    EXPECT_GT(rep.damaged, 0u);
    std::vector<size_t> damaged;
    for (const auto& c : rep.chunks)
      if (c.damaged()) damaged.push_back(c.index);
    expect_good_chunks_bit_identical(clean, out, od, Dims{24, 24, 24}, damaged);
  } else {
    // The flipped byte may land in the lossless directory itself, which is
    // genuinely unrecoverable; a clean refusal is the correct answer then.
    EXPECT_FALSE(rep.field_valid);
  }
}

TEST(Recovery, LowresVerifiesChunkChecksum) {
  const Dims dims{32, 32, 16};
  const auto field = data::miranda_pressure(dims, 9);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 14);
  cfg.lossless_pass = false;  // single chunk, streams at a known offset
  const auto blob = compress(field.data(), dims, cfg);

  std::vector<double> coarse;
  Dims cd;
  ASSERT_EQ(decompress_lowres(blob.data(), blob.size(), 1, coarse, cd), Status::ok);

  const auto ranges = chunk_ranges(blob);
  ASSERT_EQ(ranges.size(), 1u);
  auto bad = blob;
  bad[ranges[0].offset + ranges[0].length / 2] ^= 0x08;
  EXPECT_EQ(decompress_lowres(bad.data(), bad.size(), 1, coarse, cd),
            Status::corrupt_chunk);
}

// ---- out-of-core reader ------------------------------------------------------

TEST(Recovery, OutOfCoreTolerantMatchesInMemory) {
  std::vector<double> field;
  const auto blob = make_multichunk_blob(&field);
  const auto ranges = chunk_ranges(blob);
  auto bad = blob;
  bad[ranges[2].offset + 5] ^= 0x80;

  const std::string dir = ::testing::TempDir();
  const std::string bad_path = dir + "/recovery_bad.sperr";
  const std::string out_path = dir + "/recovery_out.raw";
  {
    std::ofstream f(bad_path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bad.data()), std::streamsize(bad.size()));
    ASSERT_TRUE(f.good());
  }

  // fail_fast (the 3-arg legacy entry point) refuses.
  ASSERT_EQ(outofcore::decompress_file(bad_path, out_path, 8),
            Status::corrupt_chunk);

  // zero_fill writes a full file matching the in-memory tolerant decode.
  DecodeReport rep;
  ASSERT_EQ(outofcore::decompress_file(bad_path, out_path, 8,
                                       Recovery::zero_fill, &rep),
            Status::ok);
  EXPECT_EQ(rep.damaged, 1u);
  EXPECT_EQ(rep.first_damaged(), 2u);

  std::vector<double> mem;
  Dims dims;
  ASSERT_EQ(decompress_tolerant(bad.data(), bad.size(), Recovery::zero_fill, mem,
                                dims, nullptr),
            Status::ok);

  std::ifstream f(out_path, std::ios::binary);
  std::vector<double> disk(dims.total());
  ASSERT_TRUE(f.read(reinterpret_cast<char*>(disk.data()),
                     std::streamsize(disk.size() * 8)));
  for (size_t i = 0; i < mem.size(); ++i)
    ASSERT_EQ(mem[i], disk[i]) << "index " << i;
}

// ---- archive wrappers ---------------------------------------------------------

TEST(Recovery, ArchiveVerifyAndExtractTolerant) {
  std::vector<double> field;
  const auto blob = make_multichunk_blob(&field);
  const auto ranges = chunk_ranges(blob);
  auto bad_container = blob;
  bad_container[ranges[5].offset + 1] ^= 0x02;

  archive::Writer w;
  w.add_container("clean", blob);
  w.add_container("damaged", std::move(bad_container));
  const auto ar = w.finish();
  ASSERT_FALSE(ar.empty());

  archive::Reader r;
  ASSERT_EQ(archive::Reader::open(ar.data(), ar.size(), r), Status::ok);
  EXPECT_EQ(r.verify("clean"), Status::ok);
  DecodeReport rep;
  EXPECT_EQ(r.verify("damaged", &rep), Status::corrupt_chunk);
  EXPECT_EQ(rep.first_damaged(), 5u);

  std::vector<double> out;
  Dims dims;
  EXPECT_EQ(r.extract("damaged", out, dims), Status::corrupt_chunk);
  EXPECT_EQ(r.extract_tolerant("damaged", Recovery::coarse_fill, out, dims, &rep),
            Status::ok);
  EXPECT_EQ(rep.damaged, 1u);
  EXPECT_EQ(r.verify("missing"), Status::invalid_argument);
}

}  // namespace
}  // namespace sperr
