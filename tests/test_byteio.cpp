#include "common/byteio.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sperr {
namespace {

TEST(ByteIo, ScalarRoundTrip) {
  std::vector<uint8_t> buf;
  put_u8(buf, 0xab);
  put_u16(buf, 0x1234);
  put_u32(buf, 0xdeadbeef);
  put_u64(buf, 0x0123456789abcdefULL);
  put_f64(buf, -3.14159265358979);

  ByteReader br(buf.data(), buf.size());
  EXPECT_EQ(br.u8(), 0xab);
  EXPECT_EQ(br.u16(), 0x1234);
  EXPECT_EQ(br.u32(), 0xdeadbeefu);
  EXPECT_EQ(br.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(br.f64(), -3.14159265358979);
  EXPECT_TRUE(br.ok());
  EXPECT_EQ(br.remaining(), 0u);
}

TEST(ByteIo, LittleEndianLayout) {
  std::vector<uint8_t> buf;
  put_u32(buf, 0x04030201);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(ByteIo, OverrunSetsNotOk) {
  std::vector<uint8_t> buf;
  put_u16(buf, 7);
  ByteReader br(buf.data(), buf.size());
  (void)br.u16();
  EXPECT_TRUE(br.ok());
  (void)br.u8();
  EXPECT_FALSE(br.ok());
}

TEST(ByteIo, RawViewAndOverrun) {
  std::vector<uint8_t> buf = {1, 2, 3, 4, 5};
  ByteReader br(buf.data(), buf.size());
  const uint8_t* p = br.raw(3);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p[2], 3);
  EXPECT_EQ(br.raw(3), nullptr);  // only 2 left
  EXPECT_FALSE(br.ok());
}

TEST(ByteIo, SpecialFloatValues) {
  std::vector<uint8_t> buf;
  put_f64(buf, 0.0);
  put_f64(buf, -0.0);
  put_f64(buf, 1e-300);
  put_f64(buf, 1e300);
  ByteReader br(buf.data(), buf.size());
  EXPECT_EQ(br.f64(), 0.0);
  const double neg_zero = br.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_DOUBLE_EQ(br.f64(), 1e-300);
  EXPECT_DOUBLE_EQ(br.f64(), 1e300);
}

}  // namespace
}  // namespace sperr
