#include "baselines/tthreshlike/compressor.h"
#include "baselines/tthreshlike/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace sperr::tthreshlike {
namespace {

// --- Jacobi eigensolver -----------------------------------------------------

TEST(Jacobi, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  std::vector<double> evals;
  Matrix evecs;
  jacobi_eigh(a, evals, evecs);
  EXPECT_NEAR(evals[0], 5.0, 1e-12);
  EXPECT_NEAR(evals[1], 3.0, 1e-12);
  EXPECT_NEAR(evals[2], 1.0, 1e-12);
}

TEST(Jacobi, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  std::vector<double> evals;
  Matrix evecs;
  jacobi_eigh(a, evals, evecs);
  EXPECT_NEAR(evals[0], 3.0, 1e-12);
  EXPECT_NEAR(evals[1], 1.0, 1e-12);
}

TEST(Jacobi, ReconstructsRandomSymmetricMatrix) {
  Rng rng(7);
  const size_t n = 24;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i; j < n; ++j) a(i, j) = a(j, i) = rng.gaussian();

  std::vector<double> evals;
  Matrix v;
  jacobi_eigh(a, evals, v);

  // A == V diag(evals) V^T within tolerance.
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) {
      double sum = 0;
      for (size_t k = 0; k < n; ++k) sum += v(i, k) * evals[k] * v(j, k);
      EXPECT_NEAR(sum, a(i, j), 1e-8);
    }
  // Columns orthonormal.
  for (size_t c1 = 0; c1 < n; ++c1)
    for (size_t c2 = c1; c2 < n; ++c2) {
      double dot = 0;
      for (size_t k = 0; k < n; ++k) dot += v(k, c1) * v(k, c2);
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-9);
    }
}

TEST(Jacobi, EigenvaluesSortedDescending) {
  Rng rng(8);
  const size_t n = 16;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i; j < n; ++j) a(i, j) = a(j, i) = rng.uniform(-1, 1);
  std::vector<double> evals;
  Matrix v;
  jacobi_eigh(a, evals, v);
  for (size_t i = 1; i < n; ++i) EXPECT_GE(evals[i - 1], evals[i]);
}

// --- full compressor ----------------------------------------------------------

TEST(TthreshLike, HitsPsnrTargetOnSmoothField) {
  const Dims dims{48, 48, 48};
  const auto field = data::miranda_pressure(dims);
  const double target = 60.0;
  const auto stream = compress(field.data(), dims, target);
  std::vector<double> out;
  Dims od;
  ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
  EXPECT_EQ(od, dims);
  const auto q = metrics::compare(field.data(), out.data(), field.size());
  // Must land at or above the requested quality (conservative q choice).
  EXPECT_GE(q.psnr, target - 1.0);
}

TEST(TthreshLike, HigherTargetCostsMoreBits) {
  const Dims dims{32, 32, 32};
  const auto field = data::s3d_temperature(dims);
  size_t prev = 0;
  for (double target : {40.0, 60.0, 80.0, 100.0}) {
    const auto stream = compress(field.data(), dims, target);
    EXPECT_GT(stream.size(), prev) << "target " << target;
    prev = stream.size();
  }
}

TEST(TthreshLike, LowRateVisualizationQuality) {
  // TTHRESH's niche: aggressive compression for visualization. At 50 dB the
  // data-dependent basis should need only a few bits per point.
  const Dims dims{64, 64, 64};
  const auto field = data::miranda_density(dims);
  const auto stream = compress(field.data(), dims, 50.0);
  const double bpp = double(stream.size()) * 8 / double(dims.total());
  EXPECT_LT(bpp, 6.0);
  std::vector<double> out;
  Dims od;
  ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
  const auto q = metrics::compare(field.data(), out.data(), field.size());
  EXPECT_GE(q.psnr, 49.0);
}

TEST(TthreshLike, ThinSlabAndSliceSupported) {
  for (Dims dims : {Dims{32, 32, 4}, Dims{48, 32, 1}}) {
    const auto field = data::make_field("nyx_velocity_x", dims, 3);
    const auto stream = compress(field.data(), dims, 60.0);
    std::vector<double> out;
    Dims od;
    ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok)
        << dims.to_string();
    EXPECT_EQ(od, dims);
  }
}

TEST(TthreshLike, GarbageRejected) {
  std::vector<uint8_t> garbage(32, 0x77);
  std::vector<double> out;
  Dims od;
  EXPECT_NE(decompress(garbage.data(), garbage.size(), out, od), Status::ok);
}

}  // namespace
}  // namespace sperr::tthreshlike
