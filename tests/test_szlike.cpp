#include "baselines/szlike/compressor.h"
#include "baselines/szlike/quant_bins.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "data/synthetic.h"

namespace sperr::szlike {
namespace {

double max_abs_err(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

// --- quantization-bin codec ---------------------------------------------

TEST(QuantBins, EmptyRoundTrip) {
  const auto stream = encode_quant_bins({});
  std::vector<int32_t> bins;
  ASSERT_EQ(decode_quant_bins(stream.data(), stream.size(), bins), Status::ok);
  EXPECT_TRUE(bins.empty());
}

TEST(QuantBins, MostlyZeroRoundTrip) {
  Rng rng(1);
  std::vector<int32_t> bins(100000, 0);
  for (auto& b : bins)
    if (rng.below(50) == 0) b = int32_t(rng.below(9)) - 4;
  QuantBinStats stats;
  const auto stream = encode_quant_bins(bins, &stats);
  // Dense zeros must cost well under 1 bit/point after Huffman+lossless.
  EXPECT_LT(double(stream.size()) * 8 / double(bins.size()), 1.0);
  std::vector<int32_t> out;
  ASSERT_EQ(decode_quant_bins(stream.data(), stream.size(), out), Status::ok);
  EXPECT_EQ(out, bins);
}

TEST(QuantBins, EscapesForHugeBins) {
  std::vector<int32_t> bins = {0, 5, kCapacity + 7, -kCapacity - 3, INT32_MAX,
                               INT32_MIN, 0};
  QuantBinStats stats;
  const auto stream = encode_quant_bins(bins, &stats);
  EXPECT_EQ(stats.num_escapes, 4u);
  std::vector<int32_t> out;
  ASSERT_EQ(decode_quant_bins(stream.data(), stream.size(), out), Status::ok);
  EXPECT_EQ(out, bins);
}

TEST(QuantBins, FullRangeRandomRoundTrip) {
  Rng rng(2);
  std::vector<int32_t> bins(20000);
  for (auto& b : bins) b = int32_t(rng.next());
  const auto stream = encode_quant_bins(bins);
  std::vector<int32_t> out;
  ASSERT_EQ(decode_quant_bins(stream.data(), stream.size(), out), Status::ok);
  EXPECT_EQ(out, bins);
}

TEST(QuantBins, WideAlphabetNeedsLongCodes) {
  // Regression for a real bug: > 2^15 distinct symbols cannot form a valid
  // prefix code under a 15-bit length limit; the codec must use the wider
  // limit and still round-trip (this is the tight-tolerance SZ regime).
  std::vector<int32_t> bins;
  for (int32_t v = -20000; v < 20000; ++v) bins.push_back(v);  // 40k distinct
  const auto stream = encode_quant_bins(bins);
  std::vector<int32_t> out;
  ASSERT_EQ(decode_quant_bins(stream.data(), stream.size(), out), Status::ok);
  EXPECT_EQ(out, bins);
}

TEST(QuantBins, SkewedWideAlphabet) {
  // Heavy zero mass plus a wide tail: the exact shape MGARD/SZ produce at
  // moderate tolerances.
  Rng rng(77);
  std::vector<int32_t> bins(60000, 0);
  for (auto& b : bins) {
    const double u = rng.uniform();
    if (u > 0.9) b = int32_t(rng.below(30000)) - 15000;
  }
  const auto stream = encode_quant_bins(bins);
  std::vector<int32_t> out;
  ASSERT_EQ(decode_quant_bins(stream.data(), stream.size(), out), Status::ok);
  EXPECT_EQ(out, bins);
}

TEST(QuantBins, GarbageRejected) {
  std::vector<uint8_t> garbage = {1, 2, 3};
  std::vector<int32_t> bins;
  EXPECT_NE(decode_quant_bins(garbage.data(), garbage.size(), bins), Status::ok);
}

// --- full compressor ------------------------------------------------------

class SzShapes : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(SzShapes, ErrorBoundHolds) {
  const auto [x, y, z] = GetParam();
  const Dims dims{x, y, z};
  const auto field = data::make_field("miranda_density", dims, x + y + z);
  const double eb = 1e-3;
  const auto stream = compress(field.data(), dims, eb);
  std::vector<double> out;
  Dims od;
  ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
  EXPECT_EQ(od, dims);
  EXPECT_LE(max_abs_err(field, out), eb);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SzShapes,
    ::testing::Values(std::make_tuple(64, 64, 64), std::make_tuple(65, 33, 17),
                      std::make_tuple(100, 1, 1), std::make_tuple(48, 48, 1),
                      std::make_tuple(1, 1, 1), std::make_tuple(5, 7, 3)));

TEST(SzLike, BoundHoldsOnWhiteNoise) {
  Rng rng(3);
  const Dims dims{32, 32, 8};
  std::vector<double> field(dims.total());
  for (auto& v : field) v = rng.gaussian() * 100.0;
  const double eb = 0.5;
  SzStats stats;
  const auto stream = compress(field.data(), dims, eb, &stats);
  std::vector<double> out;
  Dims od;
  ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
  EXPECT_LE(max_abs_err(field, out), eb);
}

TEST(SzLike, SmoothFieldCompressesWell) {
  const Dims dims{64, 64, 64};
  const auto field = data::miranda_pressure(dims);
  const double range = 814672.0;  // approx; just for scale
  const auto stream = compress(field.data(), dims, range * 1e-4);
  const double bpp = double(stream.size()) * 8 / double(dims.total());
  EXPECT_LT(bpp, 12.0);  // far below the 64-bit input
  std::vector<double> out;
  Dims od;
  ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
}

TEST(SzLike, TighterBoundCostsMoreBits) {
  const Dims dims{48, 48, 48};
  const auto field = data::s3d_temperature(dims);
  size_t prev = 0;
  for (double eb : {10.0, 1.0, 0.1, 0.01}) {
    const auto stream = compress(field.data(), dims, eb);
    EXPECT_GT(stream.size(), prev);
    prev = stream.size();
    std::vector<double> out;
    Dims od;
    ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
    EXPECT_LE(max_abs_err(field, out), eb);
  }
}

TEST(SzLike, InvalidBoundThrows) {
  std::vector<double> field(8, 1.0);
  EXPECT_THROW((void)compress(field.data(), Dims{8, 1, 1}, 0.0),
               std::invalid_argument);
}

TEST(SzLike, GarbageRejected) {
  std::vector<uint8_t> garbage(64, 0xab);
  std::vector<double> out;
  Dims od;
  EXPECT_NE(decompress(garbage.data(), garbage.size(), out, od), Status::ok);
}

}  // namespace
}  // namespace sperr::szlike
