#include "lossless/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace sperr::lossless {
namespace {

void expect_roundtrip(const std::vector<uint8_t>& input) {
  const auto packed = compress(input);
  std::vector<uint8_t> out;
  ASSERT_EQ(decompress(packed, out), Status::ok);
  EXPECT_EQ(out, input);
}

TEST(Codec, EmptyInput) {
  expect_roundtrip({});
}

TEST(Codec, OneByte) {
  expect_roundtrip({42});
}

TEST(Codec, TextCompresses) {
  std::string text;
  for (int i = 0; i < 200; ++i)
    text += "the quick brown fox jumps over the lazy dog. ";
  const std::vector<uint8_t> input(text.begin(), text.end());
  const auto packed = compress(input);
  EXPECT_LT(packed.size(), input.size() / 4);
  expect_roundtrip(input);
}

TEST(Codec, IncompressibleDataFallsBackToRawWithBoundedOverhead) {
  Rng rng(11);
  std::vector<uint8_t> input(10000);
  for (auto& b : input) b = uint8_t(rng.next());
  const auto packed = compress(input);
  // Blocked framing: 18-byte header + 12 bytes directory + 1 mode byte per
  // block; one block here.
  EXPECT_LE(packed.size(), input.size() + 64);
  expect_roundtrip(input);
}

TEST(Codec, AllZeros) {
  std::vector<uint8_t> input(100000, 0);
  const auto packed = compress(input);
  EXPECT_LT(packed.size(), 600u);
  expect_roundtrip(input);
}

TEST(Codec, StructuredBinaryData) {
  // Mimics a bitplane stream: mostly-zero with bursts.
  Rng rng(12);
  std::vector<uint8_t> input(50000, 0);
  for (size_t i = 0; i < input.size(); ++i)
    if (rng.below(20) == 0) input[i] = uint8_t(rng.below(4));
  expect_roundtrip(input);
}

TEST(Codec, DecompressRejectsGarbage) {
  std::vector<uint8_t> garbage = {9, 9, 9, 9};
  std::vector<uint8_t> out;
  EXPECT_NE(decompress(garbage, out), Status::ok);
}

TEST(Codec, DecompressRejectsTruncatedStream) {
  std::string text = "compressible compressible compressible compressible";
  const std::vector<uint8_t> input(text.begin(), text.end());
  auto packed = compress(input);
  packed.resize(packed.size() / 2);
  std::vector<uint8_t> out;
  EXPECT_NE(decompress(packed, out), Status::ok);
}

TEST(Codec, LargeMixedPayloadRoundTrips) {
  Rng rng(13);
  std::vector<uint8_t> input;
  // Alternate compressible and incompressible sections.
  for (int sec = 0; sec < 20; ++sec) {
    if (sec % 2 == 0) {
      input.insert(input.end(), 5000, uint8_t('A' + sec));
    } else {
      for (int i = 0; i < 5000; ++i) input.push_back(uint8_t(rng.next()));
    }
  }
  expect_roundtrip(input);
}

}  // namespace
}  // namespace sperr::lossless
