#include "wavelet/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "wavelet/cdf97.h"
#include "wavelet/dwt.h"

namespace sperr::wavelet {
namespace {

class KernelRoundTrip : public ::testing::TestWithParam<Kernel> {};

TEST_P(KernelRoundTrip, PerfectReconstructionEveryLengthUpTo48) {
  const Kernel k = GetParam();
  Rng rng(51);
  for (size_t n = 1; n <= 48; ++n) {
    std::vector<double> input(n);
    for (auto& v : input) v = rng.uniform(-10, 10);
    auto work = input;
    std::vector<double> scratch(n);
    line_analysis(k, work.data(), n, scratch.data());
    line_synthesis(k, work.data(), n, scratch.data());
    for (size_t i = 0; i < n; ++i)
      ASSERT_NEAR(work[i], input[i], 1e-10)
          << to_string(k) << " length " << n << " sample " << i;
  }
}

TEST_P(KernelRoundTrip, MultiDimRoundTrip) {
  const Kernel k = GetParam();
  const Dims dims{33, 17, 9};
  Rng rng(52);
  std::vector<double> input(dims.total());
  for (auto& v : input) v = rng.gaussian() * 50;
  auto work = input;
  forward_dwt(work.data(), dims, k);
  inverse_dwt(work.data(), dims, k);
  for (size_t i = 0; i < input.size(); ++i)
    ASSERT_NEAR(work[i], input[i], 1e-8) << to_string(k);
}

TEST_P(KernelRoundTrip, ConstantSignalHasNoDetail) {
  const Kernel k = GetParam();
  std::vector<double> line(64, 2.0), scratch(64);
  line_analysis(k, line.data(), 64, scratch.data());
  for (size_t i = approx_len(64); i < 64; ++i)
    EXPECT_NEAR(line[i], 0.0, 1e-10) << to_string(k);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelRoundTrip,
                         ::testing::Values(Kernel::cdf97, Kernel::cdf53,
                                           Kernel::haar));

TEST(KernelComparison, Cdf97CompactsSmoothSignalsBest) {
  // The §III-A design-choice test in miniature: on a smooth signal, the
  // fraction of energy in the top 10% of coefficients must rank
  // cdf97 >= cdf53 >= haar.
  const size_t n = 512;
  std::vector<double> signal(n);
  for (size_t i = 0; i < n; ++i)
    signal[i] = std::sin(0.05 * double(i)) + 0.3 * std::cos(0.11 * double(i));

  auto top_energy_fraction = [&](Kernel k) {
    auto work = signal;
    std::vector<double> scratch(n);
    // Apply three recursive passes on the approximation.
    size_t len = n;
    for (int level = 0; level < 3; ++level) {
      line_analysis(k, work.data(), len, scratch.data());
      len = approx_len(len);
    }
    std::vector<double> e(n);
    for (size_t i = 0; i < n; ++i) e[i] = work[i] * work[i];
    std::sort(e.begin(), e.end(), std::greater<>());
    const double total = std::accumulate(e.begin(), e.end(), 0.0);
    const double top = std::accumulate(e.begin(), e.begin() + n / 10, 0.0);
    return top / total;
  };

  const double f97 = top_energy_fraction(Kernel::cdf97);
  const double f53 = top_energy_fraction(Kernel::cdf53);
  const double fhaar = top_energy_fraction(Kernel::haar);
  EXPECT_GE(f97 + 1e-6, f53);
  EXPECT_GE(f53 + 1e-6, fhaar);
  EXPECT_GT(f97, 0.95);  // smooth signal: nearly everything in the top 10%
}

TEST(KernelComparison, HaarIsExactlyOrthonormal) {
  Rng rng(53);
  std::vector<double> input(256);
  for (auto& v : input) v = rng.gaussian();
  const double e_in =
      std::inner_product(input.begin(), input.end(), input.begin(), 0.0);
  std::vector<double> scratch(256);
  line_analysis(Kernel::haar, input.data(), 256, scratch.data());
  const double e_out =
      std::inner_product(input.begin(), input.end(), input.begin(), 0.0);
  EXPECT_NEAR(e_out / e_in, 1.0, 1e-12);
}

}  // namespace
}  // namespace sperr::wavelet
