// Differential tests: the flattened production SPECK coder (speck::encode /
// speck::decode) against the recursive reference coder it replaced
// (encode_reference / decode_reference). The contract is total: bit-identical
// streams, equal EncodeStats (bit for bit, including the estimated RMSE
// double), identical exported reconstructions, and identical decodes — over
// randomized shapes including degenerate ones, budgeted and unbudgeted
// modes, and adversarial magnitudes (exact powers of two sit right on the
// strict significance threshold). Plus the embedded-prefix property the
// format guarantees: any prefix decodes to a finite field whose coefficient
// RMSE never increases as the prefix grows.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "speck/common.h"
#include "speck/decoder.h"
#include "speck/encoder.h"
#include "speck/settree.h"

namespace sperr::speck {
namespace {

/// Heavy-tailed coefficients with adversarial values mixed in: exact
/// power-of-two multiples of q (the strict `m > 2^n` boundary), exact
/// threshold magnitudes, negative zeros, and dead-zone values.
std::vector<double> adversarial_coeffs(Dims dims, uint64_t seed, double q) {
  Rng rng(seed);
  std::vector<double> c(dims.total());
  for (auto& v : c) {
    const double u = rng.uniform();
    if (u < 0.08) {
      v = (rng.next() & 1 ? -1.0 : 1.0) * std::ldexp(q, int(rng.below(12)));
    } else if (u < 0.12) {
      v = rng.next() & 1 ? -0.0 : 0.0;
    } else if (u < 0.2) {
      v = rng.uniform(-q, q);  // dead zone
    } else {
      const double scale = u < 0.25 ? 1000.0 : (u < 0.55 ? 10.0 : 0.1);
      v = rng.gaussian() * scale * q;
    }
  }
  return c;
}

void expect_stats_equal(const EncodeStats& a, const EncodeStats& b) {
  EXPECT_EQ(a.payload_bits, b.payload_bits);
  EXPECT_EQ(a.planes_coded, b.planes_coded);
  EXPECT_EQ(a.significant_count, b.significant_count);
  // Bit-for-bit: the fast coder performs the same double arithmetic in the
  // same order.
  EXPECT_EQ(a.estimated_coeff_rmse, b.estimated_coeff_rmse);
}

void expect_decode_stats_equal(const DecodeStats& a, const DecodeStats& b) {
  EXPECT_EQ(a.bits_consumed, b.bits_consumed);
  EXPECT_EQ(a.significant_count, b.significant_count);
  EXPECT_EQ(a.truncated, b.truncated);
}

/// The thread counts every case in the differential wall is held to. 1 is
/// the serial sweep engine; 2/4/8 exercise lane partitioning, including
/// more lanes than this machine has cores (correctness must not depend on
/// real concurrency).
constexpr int kThreadWall[] = {1, 2, 4, 8};

/// Full differential check of one (dims, q, budget, seed) cell, at every
/// thread count in kThreadWall: the encoded stream must be byte-identical
/// to the reference coder's (and so to every other thread count), per-pass
/// bit counts must be thread-invariant, and decodes bit-identical.
void expect_coders_identical(Dims dims, double q, size_t budget, uint64_t seed) {
  SCOPED_TRACE(dims.to_string() + " q=" + std::to_string(q) +
               " budget=" + std::to_string(budget) + " seed=" + std::to_string(seed));
  const auto coeffs = adversarial_coeffs(dims, seed, q);

  EncodeStats ref_stats, fast_stats;
  std::vector<double> ref_recon, fast_recon;
  const auto ref = encode_reference(coeffs.data(), dims, q, budget, &ref_stats, &ref_recon);
  const auto fast = encode(coeffs.data(), dims, q, budget, &fast_stats, &fast_recon);

  ASSERT_EQ(fast, ref) << "stream bytes diverge";
  expect_stats_equal(fast_stats, ref_stats);
  ASSERT_EQ(fast_recon.size(), ref_recon.size());
  for (size_t i = 0; i < ref_recon.size(); ++i)
    ASSERT_EQ(fast_recon[i], ref_recon[i]) << "recon coefficient " << i;

  // Thread-sweep wall: parallel encodes must reproduce the reference stream
  // byte for byte, with identical stats, recon exports, and per-pass bit
  // counts (the wall-clock pass timings are the only fields allowed to
  // differ).
  for (const int t : kThreadWall) {
    SCOPED_TRACE("encode threads=" + std::to_string(t));
    EncodeStats ts;
    std::vector<double> trecon;
    const auto par = encode(coeffs.data(), dims, q, budget, &ts, &trecon, t);
    ASSERT_EQ(par, ref) << "stream bytes diverge from reference";
    expect_stats_equal(ts, ref_stats);
    ASSERT_EQ(ts.passes.size(), fast_stats.passes.size());
    for (size_t i = 0; i < ts.passes.size(); ++i) {
      ASSERT_EQ(ts.passes[i].plane, fast_stats.passes[i].plane);
      ASSERT_EQ(ts.passes[i].sorting_bits, fast_stats.passes[i].sorting_bits);
      ASSERT_EQ(ts.passes[i].refinement_bits,
                fast_stats.passes[i].refinement_bits);
    }
    ASSERT_EQ(trecon, ref_recon);
  }

  // Decode differential: full stream and a mid-stream truncation, each at
  // every thread count.
  const size_t cuts[] = {ref.size(), Header::kBytes + (ref.size() - Header::kBytes) / 2};
  for (const size_t nbytes : cuts) {
    SCOPED_TRACE("decode nbytes=" + std::to_string(nbytes));
    std::vector<double> ref_out(dims.total());
    DecodeStats ref_ds;
    ASSERT_EQ(decode_reference(ref.data(), nbytes, dims, ref_out.data(), &ref_ds),
              Status::ok);
    for (const int t : kThreadWall) {
      SCOPED_TRACE("decode threads=" + std::to_string(t));
      std::vector<double> fast_out(dims.total());
      DecodeStats fast_ds;
      ASSERT_EQ(decode(ref.data(), nbytes, dims, fast_out.data(), &fast_ds, t),
                Status::ok);
      expect_decode_stats_equal(fast_ds, ref_ds);
      for (size_t i = 0; i < ref_out.size(); ++i)
        ASSERT_EQ(fast_out[i], ref_out[i]) << "decoded coefficient " << i;
    }
  }
}

TEST(SpeckFast, DegenerateShapesMatchReference) {
  const Dims shapes[] = {{1, 1, 1}, {2, 1, 1},  {1, 7, 1},   {1, 1, 64},
                         {1, 31, 17}, {5, 1, 9}, {64, 1, 1},  {3, 3, 3},
                         {33, 17, 1}, {16, 16, 16}, {13, 9, 5}, {40, 25, 7}};
  uint64_t seed = 100;
  for (const Dims& d : shapes) {
    expect_coders_identical(d, 0.5, 0, ++seed);
    expect_coders_identical(d, 1.3, 0, ++seed);
  }
}

TEST(SpeckFast, BudgetedModesMatchReference) {
  const Dims shapes[] = {{32, 32, 1}, {16, 16, 8}, {1, 48, 3}, {25, 11, 4}};
  uint64_t seed = 300;
  for (const Dims& d : shapes) {
    const size_t n = d.total();
    // Budgets from starving (a handful of bits) through mid-stream to
    // beyond the unbudgeted stream length.
    for (const size_t budget : {size_t(3), size_t(64), n / 2, 2 * n, 100 * n})
      expect_coders_identical(d, 0.25, budget, ++seed);
  }
}

TEST(SpeckFast, RandomizedShapeSweepMatchesReference) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    // Random ranks and extents, biased toward awkward non-power-of-two
    // shapes and thin slabs.
    const int rank = 1 + int(rng.below(3));
    size_t e[3] = {1, 1, 1};
    for (int a = 0; a < rank; ++a) e[a] = 1 + rng.below(40);
    const Dims dims{e[rng.below(3) % 3], e[(1 + rng.below(3)) % 3], e[2]};
    const double q = std::ldexp(1.0, int(rng.below(6)) - 3) * (1.0 + rng.uniform());
    const size_t budget = (rng.next() & 1) ? 0 : 1 + rng.below(8 * dims.total());
    expect_coders_identical(dims, q, budget, 4000 + uint64_t(trial));
  }
}

TEST(SpeckFast, PureSyntheticSpecialsMatchReference) {
  // All-zero, constant, all-dead-zone, and single-spike fields.
  const Dims dims{24, 24, 6};
  const size_t n = dims.total();
  std::vector<double> field(n, 0.0);
  auto check = [&](const char* what) {
    SCOPED_TRACE(what);
    EncodeStats rs, fs;
    const auto ref = encode_reference(field.data(), dims, 0.5, 0, &rs);
    const auto fast = encode(field.data(), dims, 0.5, 0, &fs);
    ASSERT_EQ(fast, ref);
    expect_stats_equal(fs, rs);
  };
  check("all zero");
  field.assign(n, 0.4);
  check("dead zone constant");
  field.assign(n, 0.0);
  field[dims.index(17, 5, 3)] = -777.25;
  check("single spike");
  field.assign(n, 8.0);  // exactly 2^4 * q: max magnitude on a plane boundary
  check("power-of-two constant");
}

TEST(SpeckFast, PlaneOfMatchesStrictThresholdSemantics) {
  // plane_of(m) must equal the largest n >= 0 with m > 2^n under plain
  // double comparison — the reference coder's significance test.
  auto brute = [](double m) {
    int16_t p = kDeadPlane;
    for (int n = 0; n <= 40; ++n)
      if (m > std::ldexp(1.0, n)) p = int16_t(n);
    return p;
  };
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const double m = std::ldexp(1.0 + rng.uniform(), int(rng.below(38)) - 2);
    ASSERT_EQ(plane_of(m), brute(m)) << "m=" << m;
  }
  for (int k = 0; k <= 38; ++k) {
    const double pow2 = std::ldexp(1.0, k);
    ASSERT_EQ(plane_of(pow2), brute(pow2)) << "2^" << k;           // exact boundary
    ASSERT_EQ(plane_of(std::nextafter(pow2, 2 * pow2)), brute(std::nextafter(pow2, 2 * pow2)));
    ASSERT_EQ(plane_of(std::nextafter(pow2, 0.0)), brute(std::nextafter(pow2, 0.0)));
  }
  EXPECT_EQ(plane_of(0.0), kDeadPlane);
  EXPECT_EQ(plane_of(1.0), kDeadPlane);
  EXPECT_EQ(plane_of(0.999), kDeadPlane);
  EXPECT_EQ(plane_of(std::numeric_limits<double>::infinity()), kMaxPlane);
}

TEST(SpeckFast, EmbeddedPrefixSweepIsFiniteAndMonotone) {
  // The embedded-prefix invariant, swept densely: decoding ANY prefix of a
  // SPECK stream yields a finite field, and the coefficient RMSE is
  // non-increasing as the prefix grows byte by byte.
  const Dims dims{20, 18, 3};
  const auto coeffs = adversarial_coeffs(dims, 77, 0.05);
  const auto stream = encode(coeffs.data(), dims, 0.05);
  ASSERT_GT(stream.size(), Header::kBytes + 8);

  std::vector<double> recon(dims.total());
  double prev_rmse = 1e300;
  // Every byte boundary near the front (where planes are coarse and error
  // moves fastest), then every 5th byte to the end.
  for (size_t nbytes = Header::kBytes; nbytes <= stream.size();
       nbytes += (nbytes < Header::kBytes + 64 ? 1 : 5)) {
    ASSERT_EQ(decode(stream.data(), nbytes, dims, recon.data()), Status::ok);
    double sq = 0.0;
    for (size_t i = 0; i < recon.size(); ++i) {
      ASSERT_TRUE(std::isfinite(recon[i])) << "prefix " << nbytes << " index " << i;
      const double e = coeffs[i] - recon[i];
      sq += e * e;
    }
    const double rmse = std::sqrt(sq / double(recon.size()));
    EXPECT_LE(rmse, prev_rmse * (1.0 + 1e-9)) << "prefix bytes " << nbytes;
    prev_rmse = rmse;
  }
  EXPECT_LT(prev_rmse, 0.05);  // the full stream hits the quantization floor
}

/// Truncate `stream` to exactly `nbits` payload bits: patch the header's
/// nbits field (u64 LE at byte offset 14) and drop the surplus payload
/// bytes. This is the format's own embedded-truncation mechanism.
std::vector<uint8_t> truncate_to_bits(const std::vector<uint8_t>& stream,
                                      uint64_t nbits) {
  std::vector<uint8_t> cut(stream.begin(),
                           stream.begin() + long(Header::kBytes + (nbits + 7) / 8));
  for (int b = 0; b < 8; ++b) cut[14 + size_t(b)] = uint8_t(nbits >> (8 * b));
  return cut;
}

TEST(SpeckFast, PrefixAtPlaneBoundaryEqualsCoarserQualityEncode) {
  // The embedding property, exactly: cutting a stream at the end of plane
  // k's passes is the SAME coder run at quantization step q*2^k. Both the
  // payload bits and the decoded coefficients must match bit for bit —
  // binary scaling shifts every significance test, refinement bit, and
  // reconstruction by exact powers of two.
  const Dims dims{30, 22, 9};
  const double q = 0.04;
  const auto coeffs = adversarial_coeffs(dims, 4242, q);

  EncodeStats stats;
  const auto stream = encode(coeffs.data(), dims, q, 0, &stats);
  ASSERT_GT(stats.passes.size(), 3u);

  std::vector<double> full(dims.total());
  ASSERT_EQ(decode(stream.data(), stream.size(), dims, full.data()), Status::ok);

  double prev_rmse = 1e300;
  // Walk boundaries coarse-to-fine (passes run top plane first), checking
  // the prefix/quality equivalence at each and RMSE monotonicity across
  // them.
  uint64_t prefix_bits = 0;
  for (const auto& pass : stats.passes) {
    prefix_bits += pass.sorting_bits + pass.refinement_bits;
    const int32_t k = pass.plane;
    SCOPED_TRACE("boundary after plane " + std::to_string(k));

    // Re-encode at the coarser step q2 = q * 2^k: payload must equal the
    // prefix exactly, bit count included.
    const double q2 = std::ldexp(q, int(k));
    EncodeStats s2;
    const auto coarse = encode(coeffs.data(), dims, q2, 0, &s2);
    ASSERT_EQ(uint64_t(s2.payload_bits), prefix_bits);
    for (uint64_t bit = 0; bit < prefix_bits; ++bit) {
      const size_t byte = Header::kBytes + size_t(bit / 8);
      const unsigned sh = unsigned(bit % 8);
      ASSERT_EQ((stream[byte] >> sh) & 1, (coarse[byte] >> sh) & 1)
          << "payload bit " << bit;
    }

    // Decode the truncated stream and the coarse stream: identical doubles.
    const auto cut = truncate_to_bits(stream, prefix_bits);
    std::vector<double> cut_out(dims.total()), coarse_out(dims.total());
    ASSERT_EQ(decode(cut.data(), cut.size(), dims, cut_out.data()), Status::ok);
    ASSERT_EQ(decode(coarse.data(), coarse.size(), dims, coarse_out.data()),
              Status::ok);
    for (size_t i = 0; i < cut_out.size(); ++i)
      ASSERT_EQ(cut_out[i], coarse_out[i]) << "coefficient " << i;

    // Quality is monotone across plane boundaries (strictly more planes,
    // never worse RMSE).
    double sq = 0.0;
    for (size_t i = 0; i < cut_out.size(); ++i) {
      const double e = coeffs[i] - cut_out[i];
      sq += e * e;
    }
    const double rmse = std::sqrt(sq / double(dims.total()));
    EXPECT_LE(rmse, prev_rmse * (1.0 + 1e-12));
    prev_rmse = rmse;
  }
  // The last boundary is the whole stream.
  ASSERT_EQ(prefix_bits, uint64_t(stats.payload_bits));
}

TEST(SpeckFast, PerPassBitCountsPartitionThePayload) {
  // EncodeStats::passes is the ground truth the prefix machinery and the
  // bench records rely on: pass bit counts must sum to the payload exactly,
  // planes must descend from n_max, and every count must be reproducible
  // across thread counts (checked per-case in the differential wall; here
  // across a real field too).
  const Dims dims{40, 33, 11};
  const auto coeffs = adversarial_coeffs(dims, 777, 0.1);
  EncodeStats st;
  const auto stream = encode(coeffs.data(), dims, 0.1, 0, &st);
  ASSERT_FALSE(st.passes.size() == 0);
  uint64_t sum = 0;
  int32_t prev_plane = st.passes.front().plane + 1;
  for (const auto& p : st.passes) {
    EXPECT_EQ(p.plane, prev_plane - 1) << "planes must descend consecutively";
    prev_plane = p.plane;
    sum += p.sorting_bits + p.refinement_bits;
  }
  EXPECT_EQ(st.passes.back().plane, 0);
  EXPECT_EQ(sum, uint64_t(st.payload_bits));

  for (const int t : kThreadWall) {
    EncodeStats ts;
    (void)encode(coeffs.data(), dims, 0.1, 0, &ts, nullptr, t);
    ASSERT_EQ(ts.passes.size(), st.passes.size());
    for (size_t i = 0; i < ts.passes.size(); ++i) {
      EXPECT_EQ(ts.passes[i].sorting_bits, st.passes[i].sorting_bits);
      EXPECT_EQ(ts.passes[i].refinement_bits, st.passes[i].refinement_bits);
    }
  }
}

TEST(SpeckFast, SetTreeCoversGridExactly) {
  // Structural invariants of the flattened tree: leaves partition the grid
  // (every linear index exactly once), children are contiguous and ordered,
  // and fill_planes propagates the max upward.
  for (const Dims dims : {Dims{7, 5, 3}, Dims{1, 9, 2}, Dims{16, 16, 1}, Dims{4, 4, 4}}) {
    SCOPED_TRACE(dims.to_string());
    SetTree t;
    t.build(dims);
    std::vector<int> seen(dims.total(), 0);
    size_t leaves = 0;
    for (uint32_t id = 0; id < t.node_count(); ++id) {
      if (!t.is_leaf(id)) {
        ASSERT_GE(t.child_count(id), 2u);
        ASSERT_GT(t.first_child(id), id);  // DFS ids: children after parent
        continue;
      }
      ++leaves;
      ASSERT_LT(t.coeff_index(id), dims.total());
      ++seen[t.coeff_index(id)];
    }
    EXPECT_EQ(leaves, dims.total());
    for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << "index " << i;

    std::vector<int16_t> planes(dims.total());
    for (size_t i = 0; i < planes.size(); ++i) planes[i] = int16_t(i % 7);
    t.fill_planes(planes.data());
    int16_t expect_root = 0;
    for (int16_t p : planes) expect_root = std::max(expect_root, p);
    EXPECT_EQ(t.plane(0), expect_root);
  }
}

}  // namespace
}  // namespace sperr::speck
