#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace sperr::data {
namespace {

TEST(Synthetic, DeterministicAcrossCalls) {
  const Dims dims{16, 16, 16};
  const auto a = miranda_pressure(dims, 42);
  const auto b = miranda_pressure(dims, 42);
  EXPECT_EQ(a, b);
}

TEST(Synthetic, SeedChangesField) {
  const Dims dims{16, 16, 16};
  const auto a = miranda_pressure(dims, 1);
  const auto b = miranda_pressure(dims, 2);
  EXPECT_NE(a, b);
}

TEST(Synthetic, AllFieldsFiniteAndNonConstant) {
  const Dims dims{24, 24, 8};
  for (const auto& name : field_names()) {
    const Dims d = name == "lighthouse" ? Dims{24, 24, 1} : dims;
    const auto f = make_field(name, d);
    ASSERT_EQ(f.size(), d.total()) << name;
    for (double v : f) ASSERT_TRUE(std::isfinite(v)) << name;
    const FieldStats s = compute_stats(f.data(), f.size());
    EXPECT_GT(s.stddev(), 0.0) << name;
  }
}

TEST(Synthetic, UnknownFieldThrows) {
  EXPECT_THROW((void)make_field("no_such_field", Dims{8, 8, 8}),
               std::invalid_argument);
}

TEST(Synthetic, NyxDensityHasHighDynamicRange) {
  // Cosmology densities span orders of magnitude — that is the property the
  // Nyx stand-in must reproduce.
  const auto f = nyx_dark_matter_density(Dims{32, 32, 32});
  const FieldStats s = compute_stats(f.data(), f.size());
  EXPECT_GT(s.max / std::max(s.min, 1e-10), 100.0);
  EXPECT_GT(s.min, 0.0);  // densities are positive
}

TEST(Synthetic, S3dTemperatureHasSharpFronts) {
  // Combustion fields have localized steep gradients: the max |grad| must
  // far exceed the median |grad|.
  const Dims dims{48, 48, 8};
  const auto f = s3d_temperature(dims);
  std::vector<double> grads;
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y)
      for (size_t x = 0; x + 1 < dims.x; ++x)
        grads.push_back(
            std::fabs(f[dims.index(x + 1, y, z)] - f[dims.index(x, y, z)]));
  std::sort(grads.begin(), grads.end());
  const double median = grads[grads.size() / 2];
  const double max = grads.back();
  EXPECT_GT(max, 50.0 * std::max(median, 1e-6));
}

TEST(Synthetic, OrbitalsOscillateFasterWithIndex) {
  // Higher orbital index => faster oscillation => more sign changes.
  const Dims dims{48, 8, 8};
  auto count_sign_changes = [&](const std::vector<double>& f) {
    int changes = 0;
    for (size_t i = 1; i < dims.x; ++i)
      if ((f[i] > 0) != (f[i - 1] > 0)) ++changes;
    return changes;
  };
  const auto lo = qmcpack_orbital(dims, 0);
  const auto hi = qmcpack_orbital(dims, 60);
  // Not strictly monotone per-row, but the trend must be visible.
  EXPECT_GE(count_sign_changes(hi) + 2, count_sign_changes(lo));
}

TEST(Synthetic, FractalNoiseBounded) {
  for (int i = 0; i < 1000; ++i) {
    const double v =
        fractal_noise(i * 0.013, i * 0.007, i * 0.003, 9, 5, 4.0, 0.5);
    EXPECT_LE(std::fabs(v), 1.0001);
  }
}

TEST(Synthetic, LighthouseHasEdgesAndTexture) {
  const Dims dims{96, 96, 1};
  const auto img = lighthouse_2d(dims);
  const FieldStats s = compute_stats(img.data(), img.size());
  EXPECT_GE(s.min, 0.0);
  EXPECT_LE(s.max, 255.0);
  EXPECT_GT(s.range(), 100.0);  // strong contrast (tower vs sky)
}

}  // namespace
}  // namespace sperr::data
