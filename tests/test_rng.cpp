#include "common/rng.h"

#include <gtest/gtest.h>

namespace sperr {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, BelowBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

}  // namespace
}  // namespace sperr
