// Arithmetic entropy path: range coder round trips, static-model
// normalization invariants, cost-model bounds, per-block entropy-tag
// selection through the public codec API, and corruption attribution for
// arithmetic blocks.

#include "lossless/arith.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "lossless/codec.h"

namespace sperr::lossless {
namespace {

// --- coder -------------------------------------------------------------------

TEST(ArithCoder, RoundTripsSymbolStreamUnderSkewedModel) {
  for (const uint64_t seed : {1u, 7u, 1234u}) {
    Rng rng(seed);
    constexpr size_t kAlphabet = 17;
    uint64_t freq[kAlphabet] = {};
    for (size_t s = 0; s < kAlphabet; ++s) freq[s] = 1 + rng.below(1000);
    freq[0] += 50000;  // heavy skew: exercises sub-bit symbols
    uint16_t norm[kAlphabet];
    ASSERT_EQ(arith_normalize(freq, kAlphabet, norm), kAlphabet);
    ArithCumTable table;
    ASSERT_TRUE(table.build(norm, kAlphabet, /*want_slots=*/true));

    std::vector<uint16_t> symbols(20000);
    for (auto& s : symbols) {
      const uint32_t t = rng.below(kArithTotal);
      s = table.slot[t];  // draw from the model itself
    }

    std::vector<uint8_t> bytes;
    ArithEncoder enc(bytes);
    for (const uint16_t s : symbols)
      enc.encode(table.cum[s], table.cum[s + 1], kArithTotalBits);
    enc.finish();

    ArithDecoder dec(bytes.data(), bytes.size());
    for (const uint16_t want : symbols) {
      const uint32_t got = table.slot[dec.decode_target(kArithTotalBits)];
      ASSERT_EQ(got, want);
      dec.consume(table.cum[got], table.cum[got + 1], kArithTotalBits);
    }
    EXPECT_FALSE(dec.overrun());
  }
}

TEST(ArithCoder, RawBitsInterleaveWithModeledSymbols) {
  Rng rng(99);
  constexpr size_t kAlphabet = 4;
  const uint64_t freq[kAlphabet] = {10, 20, 30, 40};
  uint16_t norm[kAlphabet];
  arith_normalize(freq, kAlphabet, norm);
  ArithCumTable table;
  ASSERT_TRUE(table.build(norm, kAlphabet, true));

  std::vector<std::pair<uint16_t, uint32_t>> events;  // (symbol, raw value)
  for (size_t i = 0; i < 5000; ++i)
    events.emplace_back(uint16_t(rng.below(kAlphabet)), uint32_t(rng.below(1u << 13)));

  std::vector<uint8_t> bytes;
  ArithEncoder enc(bytes);
  for (const auto& [sym, raw] : events) {
    enc.encode(table.cum[sym], table.cum[sym + 1], kArithTotalBits);
    enc.encode_raw(raw, 13);
    enc.encode_raw(0, 0);  // zero-width writes must be no-ops
  }
  enc.finish();

  ArithDecoder dec(bytes.data(), bytes.size());
  for (const auto& [sym, raw] : events) {
    const uint32_t got = table.slot[dec.decode_target(kArithTotalBits)];
    ASSERT_EQ(got, sym);
    dec.consume(table.cum[got], table.cum[got + 1], kArithTotalBits);
    ASSERT_EQ(dec.decode_raw(13), raw);
    ASSERT_EQ(dec.decode_raw(0), 0u);
  }
  EXPECT_FALSE(dec.overrun());
}

TEST(ArithCoder, TruncatedStreamLatchesOverrunInsteadOfCrashing) {
  std::vector<uint8_t> bytes;
  ArithEncoder enc(bytes);
  for (int i = 0; i < 1000; ++i) enc.encode_raw(uint32_t(i) & 0xFFF, 12);
  enc.finish();

  // Cut the stream far short: decoding all symbols must terminate and latch.
  ArithDecoder dec(bytes.data(), bytes.size() / 4);
  for (int i = 0; i < 1000; ++i) (void)dec.decode_raw(12);
  EXPECT_TRUE(dec.overrun());
}

// --- static model ------------------------------------------------------------

TEST(ArithModel, NormalizePreservesSupportAndSumsToTotal) {
  Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    constexpr size_t n = 286;
    uint64_t freq[n] = {};
    const size_t present = 1 + rng.below(n);
    for (size_t i = 0; i < present; ++i)
      freq[rng.below(n)] = 1 + rng.below(1u << 20);

    uint16_t norm[n];
    const size_t nonzero = arith_normalize(freq, n, norm);
    uint32_t sum = 0;
    size_t support = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += norm[i];
      support += norm[i] != 0;
      EXPECT_EQ(freq[i] != 0, norm[i] != 0) << "support must be preserved";
    }
    EXPECT_EQ(sum, kArithTotal);
    EXPECT_EQ(support, nonzero);
  }
}

TEST(ArithModel, NormalizeEdgeCases) {
  uint16_t norm[8];
  const uint64_t empty[8] = {};
  EXPECT_EQ(arith_normalize(empty, 8, norm), 0u);
  for (const auto v : norm) EXPECT_EQ(v, 0);

  uint64_t single[8] = {};
  single[3] = 12345;
  EXPECT_EQ(arith_normalize(single, 8, norm), 1u);
  EXPECT_EQ(norm[3], kArithTotal);  // lone symbol owns the whole range
}

TEST(ArithModel, CumTableRejectsInconsistentSlots) {
  uint16_t norm[4] = {1000, 1000, 1000, 1096};
  ArithCumTable table;
  ASSERT_TRUE(table.build(norm, 4, true));
  EXPECT_EQ(table.cum[4], kArithTotal);
  EXPECT_EQ(table.slot.size(), size_t(kArithTotal));

  uint16_t bad[4] = {1000, 1000, 1000, 1095};  // sums to 4095
  EXPECT_FALSE(table.build(bad, 4, true));
  uint16_t over[4] = {4000, 4000, 0, 0};  // overflows mid-way
  EXPECT_FALSE(table.build(over, 4, true));

  const uint16_t unused[4] = {0, 0, 0, 0};  // legal: unused alphabet
  EXPECT_TRUE(table.build(unused, 4, true));
  EXPECT_TRUE(table.slot.empty());
}

TEST(ArithModel, CostModelUpperBoundsActualCodedSize) {
  Rng rng(11);
  constexpr size_t kAlphabet = 64;
  uint64_t freq[kAlphabet] = {};
  std::vector<uint16_t> symbols(30000);
  for (auto& s : symbols) {
    s = uint16_t(rng.below(kAlphabet));
    if (rng.below(3) != 0) s = uint16_t(s % 7);  // skew
    ++freq[s];
  }
  uint16_t norm[kAlphabet];
  arith_normalize(freq, kAlphabet, norm);
  ArithCumTable table;
  ASSERT_TRUE(table.build(norm, kAlphabet, true));

  std::vector<uint8_t> bytes;
  ArithEncoder enc(bytes);
  for (const uint16_t s : symbols)
    enc.encode(table.cum[s], table.cum[s + 1], kArithTotalBits);
  enc.finish();

  const uint64_t estimate = arith_cost_bits(freq, norm, kAlphabet);
  const uint64_t actual_bits = 8 * (bytes.size() - kArithFlushBytes);
  EXPECT_LE(actual_bits, estimate + 8) << "estimate must upper-bound the coder";
  EXPECT_GE(8 * bytes.size(), estimate / 2) << "estimate should not be wildly loose";
}

// --- codec integration -------------------------------------------------------

std::vector<uint8_t> near_uniform_blob(size_t n, uint64_t seed) {
  // iid over 200 of 256 values: almost incompressible, but Huffman's
  // integer-bit rounding leaves ~0.08 bit/byte on the table — exactly the
  // regime the arithmetic path is for.
  Rng rng(seed);
  std::vector<uint8_t> b(n);
  for (auto& v : b) v = uint8_t(rng.below(200));
  return b;
}

TEST(ArithCodec, LargeNearUniformBlocksSelectArithmeticAndRoundTrip) {
  const auto input = near_uniform_blob(size_t(1) << 18, 42);
  const auto packed = compress(input, {size_t(1) << 18, 0});
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  ASSERT_EQ(info.blocks.size(), 1u);
  EXPECT_EQ(info.blocks[0].mode, kEntropyArith);
  EXPECT_LT(packed.size(), input.size());  // it actually pays off

  std::vector<uint8_t> out;
  ASSERT_EQ(decompress(packed, out), Status::ok);
  EXPECT_EQ(out, input);
}

TEST(ArithCodec, DifferentialAgainstReferenceAcrossEntropyRegimes) {
  // One input per entropy regime; every framing must agree byte-for-byte on
  // the decoded output.
  std::vector<std::vector<uint8_t>> inputs;
  inputs.push_back(near_uniform_blob(size_t(1) << 18, 1));  // arithmetic
  {
    std::vector<uint8_t> text;  // Huffman
    while (text.size() < (size_t(1) << 16))
      text.insert(text.end(), {'s', 'p', 'e', 'r', 'r', ' ', 'd', 'a', 't', 'a'});
    inputs.push_back(std::move(text));
  }
  {
    Rng rng(3);  // raw (fully uniform bytes never entropy-code)
    std::vector<uint8_t> noise(size_t(1) << 16);
    for (auto& v : noise) v = uint8_t(rng.next());
    inputs.push_back(std::move(noise));
  }
  inputs.push_back({});                        // empty stream
  inputs.push_back({0x5A});                    // single byte
  inputs.push_back(std::vector<uint8_t>(100, 7));  // single-symbol block

  for (const auto& input : inputs) {
    const auto blocked = compress(input, {size_t(1) << 18, 0});
    const auto reference = encode_reference(input);
    std::vector<uint8_t> from_blocked, from_reference;
    ASSERT_EQ(decompress(blocked, from_blocked), Status::ok);
    ASSERT_EQ(decode_reference(reference.data(), reference.size(), from_reference),
              Status::ok);
    EXPECT_EQ(from_blocked, input);
    EXPECT_EQ(from_reference, input);
  }
}

TEST(ArithCodec, BitFlipsInArithmeticBlockAttributeToThatBlock) {
  // Two arithmetic blocks; flip bits throughout each payload (model header,
  // body, tail) and verify the damage is pinned on the right block.
  const auto input = near_uniform_blob(size_t(1) << 19, 9);
  const auto packed = compress(input, {size_t(1) << 18, 0});
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  ASSERT_EQ(info.blocks.size(), 2u);
  ASSERT_EQ(info.blocks[0].mode, kEntropyArith);
  ASSERT_EQ(info.blocks[1].mode, kEntropyArith);

  for (size_t victim = 0; victim < 2; ++victim) {
    const BlockInfo& bi = info.blocks[victim];
    // Offsets span the model header (0, 100), the coded body (middle), and
    // the body tail — but not the 5-byte coder flush, whose trailing bits
    // can legitimately be decode-irrelevant.
    for (const size_t rel : {size_t(0), size_t(100), size_t(bi.comp_size / 2),
                             size_t(bi.comp_size * 3 / 4)}) {
      auto corrupted = packed;
      corrupted[size_t(bi.offset) + rel] ^= 0x40;
      std::vector<uint8_t> out;
      size_t bad = SIZE_MAX;
      EXPECT_EQ(decompress(corrupted.data(), corrupted.size(), out, &bad),
                Status::corrupt_block);
      EXPECT_EQ(bad, victim);

      std::vector<size_t> bad_blocks;
      EXPECT_EQ(decompress_tolerant(corrupted.data(), corrupted.size(), out, bad_blocks),
                Status::corrupt_block);
      ASSERT_EQ(bad_blocks.size(), 1u);
      EXPECT_EQ(bad_blocks[0], victim);
      // The sibling block must have survived untouched.
      const size_t ok_block = 1 - victim;
      const size_t start = ok_block * (size_t(1) << 18);
      EXPECT_TRUE(std::equal(out.begin() + long(start),
                             out.begin() + long(start + info.blocks[ok_block].raw_size),
                             input.begin() + long(start)));
    }
  }
}

TEST(ArithCodec, FlippedEntropyTagIsDetectedNotMisdecoded) {
  const auto input = near_uniform_blob(size_t(1) << 18, 13);
  auto packed = compress(input, {size_t(1) << 18, 0});
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  ASSERT_EQ(info.blocks[0].mode, kEntropyArith);

  // The tag lives in the top 2 bits of the directory's u32 at offset 18.
  for (const uint8_t flip : {uint8_t(0x40), uint8_t(0x80), uint8_t(0xC0)}) {
    auto corrupted = packed;
    corrupted[18 + 3] ^= flip;
    std::vector<uint8_t> out;
    EXPECT_NE(decompress(corrupted.data(), corrupted.size(), out), Status::ok)
        << "tag flip 0x" << std::hex << int(flip);
  }
}

}  // namespace
}  // namespace sperr::lossless
