#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sperr::metrics {
namespace {

TEST(Quality, IdenticalFieldsHaveZeroError) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  const Quality q = compare(a.data(), a.data(), a.size());
  EXPECT_EQ(q.rmse, 0.0);
  EXPECT_EQ(q.max_pwe, 0.0);
  EXPECT_EQ(q.range, 4.0);
}

TEST(Quality, KnownError) {
  std::vector<double> a = {0, 0, 0, 0};
  std::vector<double> b = {1, -1, 1, -1};
  const Quality q = compare(a.data(), b.data(), a.size());
  EXPECT_DOUBLE_EQ(q.rmse, 1.0);
  EXPECT_DOUBLE_EQ(q.max_pwe, 1.0);
}

TEST(Quality, PsnrUsesRangeAsPeak) {
  std::vector<double> a = {0, 100};
  std::vector<double> b = {1, 100};  // rmse = 1/sqrt(2)
  const Quality q = compare(a.data(), b.data(), a.size());
  const double expected = 20.0 * std::log10(100.0 / (1.0 / std::sqrt(2.0)));
  EXPECT_NEAR(q.psnr, expected, 1e-9);
}

TEST(Quality, FloatOverloadMatchesDouble) {
  Rng rng(1);
  std::vector<double> a(1000), b(1000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform(-1, 1);
    b[i] = a[i] + rng.uniform(-0.01, 0.01);
  }
  std::vector<float> af(a.begin(), a.end()), bf(b.begin(), b.end());
  const Quality qd = compare(a.data(), b.data(), a.size());
  const Quality qf = compare(af.data(), bf.data(), af.size());
  EXPECT_NEAR(qd.rmse, qf.rmse, 1e-6);
}

TEST(AccuracyGain, DefinitionMatchesEquationTwo) {
  // gain = log2(sigma / E) - R  (paper Eq. 2)
  EXPECT_DOUBLE_EQ(accuracy_gain(8.0, 1.0, 2.0), 1.0);   // log2(8) - 2
  EXPECT_DOUBLE_EQ(accuracy_gain(1.0, 0.25, 0.0), 2.0);  // log2(4)
}

TEST(AccuracyGain, RelatesToSnrAsInPaper) {
  // gain ≈ SNR/6.02 - R (paper §V-B).
  const double sigma = 5.0, rmse = 0.01, bpp = 3.0;
  const double gain = accuracy_gain(sigma, rmse, bpp);
  const double snr = snr_db(sigma, rmse);
  EXPECT_NEAR(gain, snr / (20.0 * std::log10(2.0)) - bpp, 1e-9);
}

TEST(AccuracyGain, PerfectReconstructionIsFiniteAndLarge) {
  const double g = accuracy_gain(1.0, 0.0, 4.0);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_GT(g, 10.0);
}

TEST(AccuracyGain, HalvingErrorAtOneExtraBitIsNeutral) {
  // On the 6.02 dB/bit plateau, one more bit halves E: gain is unchanged.
  const double g1 = accuracy_gain(1.0, 0.1, 2.0);
  const double g2 = accuracy_gain(1.0, 0.05, 3.0);
  EXPECT_NEAR(g1, g2, 1e-12);
}

TEST(Ssim, IdenticalImagesScoreOne) {
  Rng rng(4);
  const Dims dims{64, 64, 1};
  std::vector<double> img(dims.total());
  for (auto& v : img) v = rng.uniform(0, 255);
  EXPECT_NEAR(mean_ssim(img.data(), img.data(), dims), 1.0, 1e-12);
}

TEST(Ssim, NoiseReducesScore) {
  Rng rng(5);
  const Dims dims{64, 64, 1};
  std::vector<double> a(dims.total()), b(dims.total());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = 128.0 + 40.0 * std::sin(double(i) * 0.1);
    b[i] = a[i] + rng.gaussian() * 30.0;
  }
  const double s = mean_ssim(a.data(), b.data(), dims);
  EXPECT_LT(s, 0.9);
  EXPECT_GT(s, -1.0);
}

TEST(Ssim, SmallErrorScoresHigherThanLargeError) {
  Rng rng(6);
  const Dims dims{48, 48, 1};
  std::vector<double> a(dims.total()), small(dims.total()), large(dims.total());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = 100.0 * std::cos(double(i % 48) * 0.2);
    small[i] = a[i] + rng.gaussian();
    large[i] = a[i] + rng.gaussian() * 25.0;
  }
  EXPECT_GT(mean_ssim(a.data(), small.data(), dims),
            mean_ssim(a.data(), large.data(), dims));
}

}  // namespace
}  // namespace sperr::metrics
