#include "sperr/chunker.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace sperr {
namespace {

TEST(Chunker, SingleChunkWhenVolumeFits) {
  const auto chunks = make_chunks(Dims{64, 64, 64}, Dims{256, 256, 256});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].dims, (Dims{64, 64, 64}));
  EXPECT_EQ(chunks[0].origin, (Dims{0, 0, 0}));
}

TEST(Chunker, EvenDivision) {
  const auto chunks = make_chunks(Dims{128, 128, 128}, Dims{64, 64, 64});
  EXPECT_EQ(chunks.size(), 8u);
  uint64_t total = 0;
  for (const auto& c : chunks) total += c.dims.total();
  EXPECT_EQ(total, Dims(128, 128, 128).total());
}

TEST(Chunker, NonDivisibleDimsCovered) {
  // The paper requires support for volumes not divisible by the chunk size.
  const Dims vol{100, 70, 35};
  const auto chunks = make_chunks(vol, Dims{32, 32, 32});
  uint64_t total = 0;
  for (const auto& c : chunks) total += c.dims.total();
  EXPECT_EQ(total, vol.total());
  // No chunk may be degenerate-small along a split axis (slivers are folded
  // into their neighbour).
  for (const auto& c : chunks) {
    EXPECT_GE(c.dims.x, 16u);
    EXPECT_GE(c.dims.y, 16u);
  }
}

TEST(Chunker, ChunksAreDisjointAndComplete) {
  const Dims vol{50, 33, 17};
  const auto chunks = make_chunks(vol, Dims{16, 16, 16});
  std::set<size_t> covered;
  for (const auto& c : chunks)
    for (size_t z = 0; z < c.dims.z; ++z)
      for (size_t y = 0; y < c.dims.y; ++y)
        for (size_t x = 0; x < c.dims.x; ++x) {
          const size_t idx =
              vol.index(c.origin.x + x, c.origin.y + y, c.origin.z + z);
          EXPECT_TRUE(covered.insert(idx).second) << "overlap at " << idx;
        }
  EXPECT_EQ(covered.size(), vol.total());
}

TEST(Chunker, GatherScatterRoundTrip) {
  const Dims vol{37, 23, 11};
  std::vector<double> volume(vol.total());
  std::iota(volume.begin(), volume.end(), 0.0);

  const auto chunks = make_chunks(vol, Dims{16, 8, 4});
  std::vector<double> rebuilt(vol.total(), -1.0);
  for (const auto& c : chunks) {
    std::vector<double> buf(c.dims.total());
    gather_chunk(volume.data(), vol, c, buf.data());
    scatter_chunk(buf.data(), c, rebuilt.data(), vol);
  }
  EXPECT_EQ(rebuilt, volume);
}

TEST(Chunker, GatherExtractsCorrectValues) {
  const Dims vol{8, 8, 8};
  std::vector<double> volume(vol.total());
  std::iota(volume.begin(), volume.end(), 0.0);
  const Chunk c{Dims{4, 4, 4}, Dims{4, 4, 4}};
  std::vector<double> buf(c.dims.total());
  gather_chunk(volume.data(), vol, c, buf.data());
  EXPECT_EQ(buf[0], double(vol.index(4, 4, 4)));
  EXPECT_EQ(buf[c.dims.index(3, 3, 3)], double(vol.index(7, 7, 7)));
}

TEST(Chunker, PreferredLargerThanVolumeClamped) {
  const auto chunks = make_chunks(Dims{10, 1, 1}, Dims{1000, 1000, 1000});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].dims, (Dims{10, 1, 1}));
}

}  // namespace
}  // namespace sperr
