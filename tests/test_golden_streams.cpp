// Golden-stream regression tests: committed .sperr fixtures produced by
// sperr::compress at a pinned configuration. A fresh encode of the same
// deterministic synthetic field must reproduce the fixture byte for byte,
// and decoding the fixture must honor the mode's quality contract. Any
// unintentional change to the wavelet transform, SPECK coder, outlier
// coder, lossless back end, or container layout trips these immediately.
//
// Regenerating (after an INTENTIONAL format/coder change):
//   SPERR_GOLDEN_REGEN=1 ./test_golden  # rewrites tests/golden/*.sperr
// then commit the new fixtures together with the change that motivated them.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/byteio.h"
#include "data/synthetic.h"
#include "sperr/header.h"
#include "sperr/sperr.h"

namespace sperr {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(GOLDEN_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("SPERR_GOLDEN_REGEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::vector<uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/// Compress the field, compare byte-for-byte against the committed fixture
/// (or rewrite it under SPERR_GOLDEN_REGEN=1), then decode the FIXTURE bytes
/// and hand the reconstruction back for mode-specific checks.
void check_golden(const std::string& name, const std::vector<double>& field,
                  Dims dims, const Config& cfg, std::vector<double>& recon) {
  const auto fresh = compress(field.data(), dims, cfg);
  const std::string path = golden_path(name);
  if (regen_requested()) write_file(path, fresh);

  const auto golden = read_file(path);
  ASSERT_FALSE(golden.empty()) << path << " missing — run with SPERR_GOLDEN_REGEN=1";
  ASSERT_EQ(fresh.size(), golden.size()) << name << ": stream length changed";
  ASSERT_EQ(fresh, golden) << name << ": stream bytes changed";

  Dims out_dims;
  ASSERT_EQ(decompress(golden.data(), golden.size(), recon, out_dims), Status::ok);
  ASSERT_EQ(out_dims.x, dims.x);
  ASSERT_EQ(out_dims.y, dims.y);
  ASSERT_EQ(out_dims.z, dims.z);
  ASSERT_EQ(recon.size(), dims.total());
  for (size_t i = 0; i < recon.size(); ++i)
    ASSERT_TRUE(std::isfinite(recon[i])) << name << " index " << i;
}

TEST(GoldenStreams, Pwe3dOddDims) {
  const Dims dims{33, 17, 9};  // odd, non-power-of-two extents
  const auto field = data::miranda_pressure(dims, 7);
  Config cfg;
  cfg.mode = Mode::pwe;
  cfg.tolerance = 0.02;
  std::vector<double> recon;
  check_golden("pwe_3d.sperr", field, dims, cfg, recon);
  for (size_t i = 0; i < recon.size(); ++i)
    ASSERT_LE(std::fabs(field[i] - recon[i]), cfg.tolerance) << "index " << i;
}

TEST(GoldenStreams, FixedRate3d) {
  const Dims dims{32, 32, 16};
  const auto field = data::nyx_dark_matter_density(dims, 3);
  Config cfg;
  cfg.mode = Mode::fixed_rate;
  cfg.bpp = 2.0;
  std::vector<double> recon;
  check_golden("rate_3d.sperr", field, dims, cfg, recon);
  // No point-wise bound in this mode; the budget bound is the contract.
  const auto golden = read_file(golden_path("rate_3d.sperr"));
  EXPECT_LT(double(golden.size()) * 8.0 / double(dims.total()), cfg.bpp * 1.25);
}

TEST(GoldenStreams, Pwe2dSlice) {
  const Dims dims{48, 37, 1};  // 2D: quadtree partitioning path
  const auto field = data::lighthouse_2d(dims, 11);
  Config cfg;
  cfg.mode = Mode::pwe;
  cfg.tolerance = 0.005;
  std::vector<double> recon;
  check_golden("pwe_2d.sperr", field, dims, cfg, recon);
  for (size_t i = 0; i < recon.size(); ++i)
    ASSERT_LE(std::fabs(field[i] - recon[i]), cfg.tolerance) << "index " << i;
}

// ---- Legacy container compatibility ---------------------------------------
// The *_v2.sperr fixtures are frozen bytes written before container v3 added
// per-chunk checksums. They are decode-only: archives in the wild must keep
// decoding forever, but nothing re-encodes to the old layout.

void check_legacy_v2(const std::string& name, Dims dims,
                     std::vector<double>& recon) {
  const auto golden = read_file(golden_path(name));
  ASSERT_FALSE(golden.empty()) << name << " missing (frozen fixture, never regenerated)";
  ASSERT_EQ(golden[4], 2u) << name << " is not a v2 container";

  Dims out_dims;
  ASSERT_EQ(decompress(golden.data(), golden.size(), recon, out_dims), Status::ok);
  ASSERT_EQ(out_dims.x, dims.x);
  ASSERT_EQ(out_dims.y, dims.y);
  ASSERT_EQ(out_dims.z, dims.z);
  ASSERT_EQ(recon.size(), dims.total());
}

TEST(GoldenStreams, LegacyV2Pwe3dStillDecodes) {
  const Dims dims{33, 17, 9};
  const auto field = data::miranda_pressure(dims, 7);
  std::vector<double> recon;
  check_legacy_v2("pwe_3d_v2.sperr", dims, recon);
  for (size_t i = 0; i < recon.size(); ++i)
    ASSERT_LE(std::fabs(field[i] - recon[i]), 0.02) << "index " << i;
}

TEST(GoldenStreams, LegacyV2Pwe2dStillDecodes) {
  const Dims dims{48, 37, 1};
  const auto field = data::lighthouse_2d(dims, 11);
  std::vector<double> recon;
  check_legacy_v2("pwe_2d_v2.sperr", dims, recon);
  for (size_t i = 0; i < recon.size(); ++i)
    ASSERT_LE(std::fabs(field[i] - recon[i]), 0.005) << "index " << i;
}

TEST(GoldenStreams, LegacyV2FixedRateStillDecodes) {
  const Dims dims{32, 32, 16};
  const auto field = data::nyx_dark_matter_density(dims, 3);
  std::vector<double> recon;
  check_legacy_v2("rate_3d_v2.sperr", dims, recon);
  for (size_t i = 0; i < recon.size(); ++i)
    ASSERT_TRUE(std::isfinite(recon[i])) << "index " << i;
}

TEST(GoldenStreams, SynthesizedV1StillDecodes) {
  // No v1 fixture was ever committed (v1 predates the golden harness), so
  // build one in-test: encode fresh, then rewrite the container in the v1
  // layout — 16-byte directory entries, no checksums, plain (non-lossless)
  // outer wrapper with version byte 1.
  const Dims dims{30, 22, 5};
  const auto field = data::miranda_pressure(dims, 13);
  Config cfg;
  cfg.mode = Mode::pwe;
  cfg.tolerance = 0.01;
  cfg.lossless_pass = false;
  const auto blob = compress(field.data(), dims, cfg);

  std::vector<uint8_t> inner;
  ContainerHeader hdr;
  size_t payload_pos = 0;
  ASSERT_EQ(open_container(blob.data(), blob.size(), inner, hdr, &payload_pos),
            Status::ok);

  std::vector<uint8_t> v1_inner;
  put_u32(v1_inner, ContainerHeader::kInnerMagic);
  put_u8(v1_inner, uint8_t(hdr.mode));
  put_u8(v1_inner, hdr.precision);
  put_u64(v1_inner, hdr.dims.x);
  put_u64(v1_inner, hdr.dims.y);
  put_u64(v1_inner, hdr.dims.z);
  put_u64(v1_inner, hdr.chunk_dims.x);
  put_u64(v1_inner, hdr.chunk_dims.y);
  put_u64(v1_inner, hdr.chunk_dims.z);
  put_f64(v1_inner, hdr.quality);
  put_u32(v1_inner, uint32_t(hdr.entries.size()));
  for (const ChunkEntry& e : hdr.entries) {
    put_u64(v1_inner, e.speck_len);
    put_u64(v1_inner, e.outlier_len);
  }
  v1_inner.insert(v1_inner.end(), inner.begin() + ptrdiff_t(payload_pos),
                  inner.end());

  std::vector<uint8_t> v1_blob;
  put_u32(v1_blob, ContainerHeader::kOuterMagic);
  put_u8(v1_blob, 1);  // version
  put_u8(v1_blob, 0);  // no lossless pass
  put_u64(v1_blob, v1_inner.size());
  v1_blob.insert(v1_blob.end(), v1_inner.begin(), v1_inner.end());

  std::vector<double> recon;
  Dims out_dims;
  ASSERT_EQ(decompress(v1_blob.data(), v1_blob.size(), recon, out_dims), Status::ok);
  ASSERT_EQ(recon.size(), dims.total());
  for (size_t i = 0; i < recon.size(); ++i)
    ASSERT_LE(std::fabs(field[i] - recon[i]), cfg.tolerance) << "index " << i;
}

}  // namespace
}  // namespace sperr
