#include "sperr/archive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "sperr/sperr.h"

namespace sperr::archive {
namespace {

TEST(Archive, MultiVariableRoundTripWithMixedModes) {
  const Dims dims{32, 32, 16};
  const auto pressure = data::miranda_pressure(dims);
  const auto temp = data::s3d_temperature(dims);
  const auto aerosol = data::nyx_velocity_x(dims);

  Writer w;
  Config pwe;
  pwe.tolerance = tolerance_from_idx(pressure.data(), pressure.size(), 20);
  w.add("pressure", pressure.data(), dims, pwe);

  Config rmse;
  rmse.mode = Mode::target_rmse;
  rmse.rmse = 0.01;
  w.add("temperature", temp.data(), dims, rmse);

  Config rate;
  rate.mode = Mode::fixed_rate;
  rate.bpp = 2.0;
  w.add("aerosol", aerosol.data(), dims, rate);
  EXPECT_EQ(w.count(), 3u);

  const auto blob = w.finish();
  ASSERT_FALSE(blob.empty());

  Reader r;
  ASSERT_EQ(Reader::open(blob.data(), blob.size(), r), Status::ok);
  EXPECT_EQ(r.names(),
            (std::vector<std::string>{"pressure", "temperature", "aerosol"}));

  std::vector<double> out;
  Dims od;
  ASSERT_EQ(r.extract("pressure", out, od), Status::ok);
  EXPECT_EQ(od, dims);
  double max_err = 0;
  for (size_t i = 0; i < out.size(); ++i)
    max_err = std::max(max_err, std::fabs(out[i] - pressure[i]));
  EXPECT_LE(max_err, pwe.tolerance);

  ASSERT_EQ(r.extract("temperature", out, od), Status::ok);
  ASSERT_EQ(r.extract("aerosol", out, od), Status::ok);
  EXPECT_EQ(r.extract("no_such_var", out, od), Status::invalid_argument);
}

TEST(Archive, DuplicateAndEmptyNamesRejected) {
  const Dims dims{8, 8, 8};
  std::vector<double> f(dims.total(), 1.0);
  Config cfg;
  cfg.tolerance = 1e-3;

  Writer dup;
  dup.add("a", f.data(), dims, cfg);
  dup.add("a", f.data(), dims, cfg);
  EXPECT_TRUE(dup.finish().empty());

  Writer unnamed;
  unnamed.add("", f.data(), dims, cfg);
  EXPECT_TRUE(unnamed.finish().empty());
}

TEST(Archive, RebundleExtractedContainer) {
  const Dims dims{16, 16, 8};
  const auto field = data::s3d_ch4(dims);
  Config cfg;
  cfg.tolerance = 1e-4;

  Writer w1;
  w1.add("fuel", field.data(), dims, cfg);
  const auto blob1 = w1.finish();

  Reader r1;
  ASSERT_EQ(Reader::open(blob1.data(), blob1.size(), r1), Status::ok);
  const auto* container = r1.container("fuel");
  ASSERT_NE(container, nullptr);

  Writer w2;
  w2.add_container("fuel_copy", *container);
  const auto blob2 = w2.finish();
  Reader r2;
  ASSERT_EQ(Reader::open(blob2.data(), blob2.size(), r2), Status::ok);
  std::vector<double> out;
  Dims od;
  ASSERT_EQ(r2.extract("fuel_copy", out, od), Status::ok);
  EXPECT_EQ(od, dims);
}

TEST(Archive, EmptyArchiveIsValid) {
  Writer w;
  const auto blob = w.finish();
  ASSERT_FALSE(blob.empty());
  Reader r;
  ASSERT_EQ(Reader::open(blob.data(), blob.size(), r), Status::ok);
  EXPECT_TRUE(r.names().empty());
}

TEST(Archive, GarbageAndTruncationRejected) {
  std::vector<uint8_t> junk = {1, 2, 3, 4, 5};
  Reader r;
  EXPECT_NE(Reader::open(junk.data(), junk.size(), r), Status::ok);

  const Dims dims{8, 8, 8};
  std::vector<double> f(dims.total(), 2.0);
  Config cfg;
  cfg.tolerance = 1e-3;
  Writer w;
  w.add("x", f.data(), dims, cfg);
  auto blob = w.finish();
  for (const size_t keep : {4u, 9u, 12u, 30u}) {
    Reader rr;
    EXPECT_NE(Reader::open(blob.data(), std::min<size_t>(keep, blob.size()), rr),
              Status::ok);
  }
}

}  // namespace
}  // namespace sperr::archive
