#include "data/spectral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <map>

#include "common/rng.h"
#include "common/stats.h"

namespace sperr::data {
namespace {

TEST(Fft, DcSignal) {
  std::vector<std::complex<double>> a(8, {1.0, 0.0});
  fft(a, false);
  EXPECT_NEAR(a[0].real(), 8.0, 1e-12);
  for (size_t i = 1; i < 8; ++i) EXPECT_NEAR(std::abs(a[i]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  const size_t n = 64;
  std::vector<std::complex<double>> a(n);
  for (size_t i = 0; i < n; ++i)
    a[i] = {std::cos(2.0 * M_PI * 5.0 * double(i) / double(n)), 0.0};
  fft(a, false);
  // A real cosine splits between bins +5 and -5 (= n-5).
  EXPECT_NEAR(std::abs(a[5]), double(n) / 2, 1e-9);
  EXPECT_NEAR(std::abs(a[n - 5]), double(n) / 2, 1e-9);
  EXPECT_NEAR(std::abs(a[4]), 0.0, 1e-9);
}

TEST(Fft, RoundTripRandom) {
  Rng rng(71);
  std::vector<std::complex<double>> a(256);
  for (auto& v : a) v = {rng.gaussian(), rng.gaussian()};
  const auto orig = a;
  fft(a, false);
  fft(a, true);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(a[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(72);
  const size_t n = 128;
  std::vector<std::complex<double>> a(n);
  for (auto& v : a) v = {rng.gaussian(), 0.0};
  double time_energy = 0;
  for (const auto& v : a) time_energy += std::norm(v);
  fft(a, false);
  double freq_energy = 0;
  for (const auto& v : a) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / double(n), time_energy, 1e-8 * time_energy);
}

TEST(Fft3, RoundTrip3d) {
  Rng rng(73);
  const Dims dims{16, 8, 4};
  std::vector<std::complex<double>> grid(dims.total());
  for (auto& v : grid) v = {rng.gaussian(), 0.0};
  const auto orig = grid;
  fft3(grid, dims, false);
  fft3(grid, dims, true);
  for (size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(grid[i].real(), orig[i].real(), 1e-10);
}

TEST(Grf, NormalizedAndDeterministic) {
  const Dims dims{48, 48, 16};  // non-power-of-two: exercises the crop
  const auto a = gaussian_random_field(dims, -3.0, 5);
  const auto b = gaussian_random_field(dims, -3.0, 5);
  EXPECT_EQ(a, b);
  const FieldStats fs = compute_stats(a.data(), a.size());
  EXPECT_NEAR(fs.mean, 0.0, 1e-9);
  EXPECT_NEAR(fs.stddev(), 1.0, 1e-9);
}

TEST(Grf, SpectralSlopeIsRespected) {
  // Measure the radially averaged power spectrum of a synthesized field and
  // regress its log-log slope; must recover the requested exponent within
  // the estimation noise of one realization.
  const double target = -11.0 / 3.0;
  const Dims dims{64, 64, 64};
  const auto field = kolmogorov_turbulence(dims, 7);

  std::vector<std::complex<double>> grid(dims.total());
  for (size_t i = 0; i < field.size(); ++i) grid[i] = {field[i], 0.0};
  fft3(grid, dims, false);

  auto freq = [](size_t i, size_t n) {
    return double(i <= n / 2 ? i : n - i) / double(n);
  };
  std::map<int, std::pair<double, int>> bins;  // ring -> (power sum, count)
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y)
      for (size_t x = 0; x < dims.x; ++x) {
        const double k = std::sqrt(std::pow(freq(x, 64), 2) +
                                   std::pow(freq(y, 64), 2) +
                                   std::pow(freq(z, 64), 2));
        const int ring = int(k * 64.0);
        if (ring < 2 || ring > 20) continue;  // inertial range only
        auto& [sum, cnt] = bins[ring];
        sum += std::norm(grid[dims.index(x, y, z)]);
        ++cnt;
      }
  // Least-squares slope of log P vs log k.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (const auto& [ring, pc] : bins) {
    const double lx = std::log(double(ring));
    const double ly = std::log(pc.first / double(pc.second));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  const double slope = (double(n) * sxy - sx * sy) / (double(n) * sxx - sx * sx);
  EXPECT_NEAR(slope, target, 0.5);
}

TEST(Grf, SmootherSpectrumCompressesBetter) {
  // The whole reason to control the spectrum: redder fields must be easier
  // for a wavelet coder. Compare coefficient magnitudes' concentration.
  const Dims dims{32, 32, 32};
  const auto red = gaussian_random_field(dims, -4.0, 9);
  const auto white = gaussian_random_field(dims, 0.0, 9);
  const FieldStats r = compute_stats(red.data(), red.size());
  const FieldStats w = compute_stats(white.data(), white.size());
  // Equal variance by construction...
  EXPECT_NEAR(r.stddev(), w.stddev(), 1e-9);
  // ...but very different roughness: mean |gradient| differs by a lot.
  auto roughness = [&](const std::vector<double>& f) {
    double g = 0;
    for (size_t i = 1; i < f.size(); ++i) g += std::fabs(f[i] - f[i - 1]);
    return g / double(f.size());
  };
  EXPECT_LT(roughness(red), 0.5 * roughness(white));
}

}  // namespace
}  // namespace sperr::data
