// The blocked, line-batched DWT drivers must be bit-identical — not merely
// close — to the per-line reference implementation they replaced: the SPECK
// coder and the PWE guarantee both consume the exact coefficient bits, so
// any rounding difference would silently change every stream the library
// produces.

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "wavelet/dwt.h"

namespace sperr::wavelet {
namespace {

std::vector<double> random_field(Dims dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> f(dims.total());
  for (auto& v : f) v = rng.uniform(-100.0, 100.0);
  return f;
}

bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

class BlockedEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(BlockedEquivalence, ForwardAndInverseBitIdenticalAllKernels) {
  const auto [x, y, z] = GetParam();
  const Dims dims{x, y, z};
  const auto orig = random_field(dims, 29 + x + 1000 * y + 1000000 * z);

  for (const Kernel k : {Kernel::cdf97, Kernel::cdf53, Kernel::haar}) {
    auto blocked = orig;
    auto reference = orig;
    forward_dwt(blocked.data(), dims, k);
    forward_dwt_reference(reference.data(), dims, k);
    EXPECT_TRUE(bit_equal(blocked, reference))
        << "forward, dims " << dims.to_string() << ", kernel " << to_string(k);

    inverse_dwt(blocked.data(), dims, k);
    inverse_dwt_reference(reference.data(), dims, k);
    EXPECT_TRUE(bit_equal(blocked, reference))
        << "inverse, dims " << dims.to_string() << ", kernel " << to_string(k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedEquivalence,
    ::testing::Values(
        std::make_tuple(64, 64, 64),   // cube, multiple of the batch width
        std::make_tuple(33, 57, 9),    // odd extents everywhere
        std::make_tuple(100, 1, 1),    // 1-D non-power-of-two
        std::make_tuple(31, 17, 129),  // non-power-of-two 3-D
        std::make_tuple(8, 8, 64),     // x extent below the batch width
        std::make_tuple(64, 64, 1),    // 2-D plane
        std::make_tuple(1, 128, 1),    // degenerate y-line
        std::make_tuple(130, 66, 34),  // just past batch multiples
        std::make_tuple(5, 5, 5)));    // below transform threshold: no-op

TEST(BlockedPartialInverse, KeepZeroMatchesReferenceFullInverse) {
  const Dims dims{64, 48, 32};
  auto full = random_field(dims, 4242);
  forward_dwt(full.data(), dims);

  auto blocked = full;
  inverse_dwt_partial(blocked.data(), dims, 0);
  auto reference = full;
  inverse_dwt_reference(reference.data(), dims);
  EXPECT_TRUE(bit_equal(blocked, reference));
}

TEST(BlockedPartialInverse, KeepMaxIsIdentity) {
  const Dims dims{48, 40, 24};
  auto full = random_field(dims, 77);
  forward_dwt(full.data(), dims);

  auto kept = full;
  inverse_dwt_partial(kept.data(), dims, plan_levels(dims).max());
  EXPECT_TRUE(bit_equal(kept, full));
}

TEST(BlockedDwtArena, SteadyStateTransformsAllocateNothing) {
  const Dims dims{48, 40, 24};
  Arena arena;
  auto f = random_field(dims, 11);

  // Warm up twice so the arena has coalesced into its final single block.
  for (int i = 0; i < 2; ++i) {
    forward_dwt(f.data(), dims, Kernel::cdf97, &arena);
    inverse_dwt(f.data(), dims, Kernel::cdf97, &arena);
    arena.reset();
  }
  const size_t allocs_after_warmup = arena.system_alloc_count();

  for (int i = 0; i < 3; ++i) {
    forward_dwt(f.data(), dims, Kernel::cdf97, &arena);
    inverse_dwt(f.data(), dims, Kernel::cdf97, &arena);
    arena.reset();
  }
  EXPECT_EQ(arena.system_alloc_count(), allocs_after_warmup)
      << "steady-state transforms must not touch the heap";
}

TEST(BlockedDwtArena, CallerAllocationsSurviveNestedTransform) {
  // The pipeline allocates its coefficient buffer from the same arena it
  // hands to forward_dwt; the transform's internal Scope must rewind its
  // tiles without disturbing that earlier allocation.
  const Dims dims{33, 30, 17};
  Arena arena;
  const auto orig = random_field(dims, 5);

  double* buf = arena.alloc<double>(dims.total());
  std::memcpy(buf, orig.data(), dims.total() * sizeof(double));
  const size_t used_before = arena.used();

  forward_dwt(buf, dims, Kernel::cdf97, &arena);
  EXPECT_EQ(arena.used(), used_before) << "transform scratch leaked";

  auto reference = orig;
  forward_dwt_reference(reference.data(), dims);
  EXPECT_EQ(std::memcmp(buf, reference.data(), dims.total() * sizeof(double)), 0);
}

}  // namespace
}  // namespace sperr::wavelet
