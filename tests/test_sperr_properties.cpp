// Property-based tests: the PWE guarantee and the rate/quality monotonicity
// must hold over randomized fields, shapes, and tolerances — not just on the
// handful of cases the unit tests pin down.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "data/synthetic.h"
#include "sperr/pipeline.h"
#include "sperr/sperr.h"

namespace sperr {
namespace {

double max_abs_err(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

/// Random field with mixed smooth + rough content — adversarial for a
/// wavelet coder (rough parts spawn many outliers).
std::vector<double> mixed_field(Dims dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> f(dims.total());
  const double sx = 1.0 / double(dims.x);
  const double sy = 1.0 / double(dims.y);
  const double sz = 1.0 / double(dims.z);
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y)
      for (size_t x = 0; x < dims.x; ++x) {
        const double smooth =
            data::fractal_noise(double(x) * sx, double(y) * sy, double(z) * sz,
                                seed, 4, 3.0, 0.5);
        const double rough = rng.uniform() < 0.02 ? rng.gaussian() * 5.0 : 0.0;
        f[dims.index(x, y, z)] = 10.0 * smooth + rough;
      }
  return f;
}

class PweProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (shape, idx)

TEST_P(PweProperty, GuaranteeHoldsForRandomFieldAndTolerance) {
  const auto [shape_id, idx] = GetParam();
  static const Dims shapes[] = {{40, 40, 40}, {63, 31, 15}, {128, 16, 4},
                                {17, 17, 17}, {256, 24, 1}};
  const Dims dims = shapes[shape_id];
  const auto field = mixed_field(dims, uint64_t(shape_id) * 100 + uint64_t(idx));

  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), idx);
  cfg.chunk_dims = Dims{32, 32, 32};
  const auto blob = compress(field.data(), dims, cfg);

  std::vector<double> recon;
  Dims od;
  ASSERT_EQ(decompress(blob.data(), blob.size(), recon, od), Status::ok);
  EXPECT_LE(max_abs_err(field, recon), cfg.tolerance)
      << "shape " << dims.to_string() << " idx " << idx;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PweProperty,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(5, 10, 20, 30)));

TEST(PweProperty, TighterToleranceNeverIncreasesError) {
  const Dims dims{48, 48, 16};
  const auto field = mixed_field(dims, 31337);
  double prev_err = 1e300;
  double prev_size = 0;
  for (int idx : {5, 10, 15, 20, 25}) {
    Config cfg;
    cfg.tolerance = tolerance_from_idx(field.data(), field.size(), idx);
    Stats stats;
    const auto blob = compress(field.data(), dims, cfg, &stats);
    std::vector<double> recon;
    Dims od;
    ASSERT_EQ(decompress(blob.data(), blob.size(), recon, od), Status::ok);
    const double err = max_abs_err(field, recon);
    EXPECT_LE(err, cfg.tolerance);
    EXPECT_LE(err, prev_err * (1 + 1e-9));
    EXPECT_GT(double(stats.compressed_bytes), prev_size);  // tighter costs more
    prev_err = err;
    prev_size = double(stats.compressed_bytes);
  }
}

TEST(PweProperty, QOverTSweepKeepsGuarantee) {
  // The coefficient/outlier balance q/t (paper §IV-D) is a performance
  // knob, never a correctness knob.
  const Dims dims{32, 32, 32};
  const auto field = mixed_field(dims, 555);
  const double t = tolerance_from_idx(field.data(), field.size(), 12);
  for (double q_over_t : {1.0, 1.2, 1.5, 2.0, 3.0}) {
    Config cfg;
    cfg.tolerance = t;
    cfg.q_over_t = q_over_t;
    const auto blob = compress(field.data(), dims, cfg);
    std::vector<double> recon;
    Dims od;
    ASSERT_EQ(decompress(blob.data(), blob.size(), recon, od), Status::ok);
    EXPECT_LE(max_abs_err(field, recon), t) << "q/t = " << q_over_t;
  }
}

TEST(PweProperty, ConstantFieldCompressesToAlmostNothing) {
  const Dims dims{64, 64, 64};
  std::vector<double> field(dims.total(), 42.0);
  Config cfg;
  cfg.tolerance = 1e-9;
  Stats stats;
  const auto blob = compress(field.data(), dims, cfg, &stats);
  EXPECT_LT(blob.size(), 2048u);
  std::vector<double> recon;
  Dims od;
  ASSERT_EQ(decompress(blob.data(), blob.size(), recon, od), Status::ok);
  EXPECT_LE(max_abs_err(field, recon), cfg.tolerance);
}

TEST(PweProperty, WorstCaseWhiteNoiseStillBounded) {
  // Pure white noise defeats the transform entirely: nearly everything
  // becomes an outlier or a coded coefficient — the guarantee must survive.
  const Dims dims{24, 24, 24};
  Rng rng(606);
  std::vector<double> field(dims.total());
  for (auto& v : field) v = rng.gaussian();
  Config cfg;
  cfg.tolerance = 0.01;
  const auto blob = compress(field.data(), dims, cfg);
  std::vector<double> recon;
  Dims od;
  ASSERT_EQ(decompress(blob.data(), blob.size(), recon, od), Status::ok);
  EXPECT_LE(max_abs_err(field, recon), cfg.tolerance);
}

TEST(PipelineProperty, OutlierCountDropsAsQShrinks) {
  // Paper Fig. 2: smaller q => better SPECK quality => fewer outliers.
  const Dims dims{48, 48, 8};
  const auto field = mixed_field(dims, 12);
  const double t = 0.05;
  size_t prev_outliers = SIZE_MAX;
  for (double q_over_t : {3.0, 2.0, 1.5, 1.0}) {
    const auto cs = pipeline::encode_pwe(field.data(), dims, t, q_over_t);
    EXPECT_LE(cs.num_outliers, prev_outliers) << "q/t = " << q_over_t;
    prev_outliers = cs.num_outliers;
  }
}

TEST(PipelineProperty, StageTimingsArePopulated) {
  const Dims dims{32, 32, 32};
  const auto field = mixed_field(dims, 77);
  const auto cs = pipeline::encode_pwe(field.data(), dims, 0.01, 1.5);
  EXPECT_GT(cs.timing.transform_s, 0.0);
  EXPECT_GT(cs.timing.speck_s, 0.0);
  EXPECT_GT(cs.timing.locate_s, 0.0);
  EXPECT_GE(cs.timing.outlier_s, 0.0);
  EXPECT_GT(cs.timing.total(), 0.0);
}

TEST(PipelineProperty, SpeckStatsThreadThroughChunkStreamAndStats) {
  const Dims dims{40, 40, 20};
  const auto field = mixed_field(dims, 31);
  const auto cs = pipeline::encode_pwe(field.data(), dims, 0.01, 1.5);
  EXPECT_GT(cs.speck_stats.payload_bits, 0u);
  EXPECT_GT(cs.speck_stats.planes_coded, 0u);
  EXPECT_GT(cs.speck_stats.significant_count, 0u);
  EXPECT_GT(cs.speck_stats.estimated_coeff_rmse, 0.0);
  // payload_bits is the stream minus the fixed header, rounded to bytes.
  EXPECT_EQ(cs.speck.size(),
            speck::Header::kBytes + (cs.speck_stats.payload_bits + 7) / 8);

  // The chunked compressor aggregates the same counters across chunks.
  Config cfg;
  cfg.tolerance = 0.01;
  cfg.chunk_dims = {20, 20, 20};  // divides 40x40x20 into exactly 4 chunks
  Stats stats;
  compress(field.data(), dims, cfg, &stats);
  EXPECT_EQ(stats.num_chunks, 4u);
  EXPECT_GT(stats.speck_payload_bits, 0u);
  EXPECT_GE(stats.speck_planes_coded, stats.num_chunks);  // >= 1 plane per chunk
  EXPECT_GT(stats.speck_significant, 0u);
  // Per-chunk streams round payload bits up to bytes, so the byte total is
  // bracketed by the aggregated bit count.
  EXPECT_GE(stats.speck_bytes,
            stats.num_chunks * speck::Header::kBytes + stats.speck_payload_bits / 8);
  EXPECT_LE(stats.speck_bytes, stats.num_chunks * (speck::Header::kBytes + 1) +
                                   stats.speck_payload_bits / 8);
}

}  // namespace
}  // namespace sperr
