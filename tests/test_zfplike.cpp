#include "baselines/zfplike/block_codec.h"
#include "baselines/zfplike/compressor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "data/synthetic.h"

namespace sperr::zfplike {
namespace {

double max_abs_err(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

// --- block codec -----------------------------------------------------------

void expect_block_roundtrip(const double* block, int dims, double tol) {
  BlockParams params;
  params.dims = dims;
  int e;
  (void)std::frexp(tol, &e);
  params.minexp = e;

  BitWriter bw;
  encode_block(bw, block, params);
  const auto bytes = bw.bytes();
  BitReader br(bytes.data(), bytes.size(), bw.bit_count());
  double out[64];
  decode_block(br, out, params);
  for (int i = 0; i < block_points(dims); ++i)
    EXPECT_LE(std::fabs(block[i] - out[i]), tol) << "value " << i;
}

TEST(ZfpBlock, ZeroBlockIsOneBit) {
  double block[64] = {};
  BlockParams params;
  params.dims = 3;
  BitWriter bw;
  encode_block(bw, block, params);
  EXPECT_EQ(bw.bit_count(), 1u);
  BitReader br(bw.bytes().data(), bw.bytes().size(), 1);
  double out[64];
  decode_block(br, out, params);
  for (double v : out) EXPECT_EQ(v, 0.0);
}

TEST(ZfpBlock, ConstantBlockWithinTolerance) {
  double block[64];
  std::fill(block, block + 64, 3.14159);
  expect_block_roundtrip(block, 3, 1e-9);
}

TEST(ZfpBlock, RandomBlocksAllDims) {
  Rng rng(5);
  for (int d : {1, 2, 3}) {
    for (int trial = 0; trial < 50; ++trial) {
      double block[64];
      const double scale = std::pow(10.0, double(trial % 9) - 4.0);
      for (int i = 0; i < block_points(d); ++i)
        block[i] = rng.gaussian() * scale;
      expect_block_roundtrip(block, d, scale * 1e-6);
    }
  }
}

TEST(ZfpBlock, MixedMagnitudeBlock) {
  // Block-floating-point stress: one huge value forces a large emax; small
  // values must still come back within tolerance.
  double block[64] = {};
  block[0] = 1e6;
  block[13] = 1e-3;
  block[63] = -42.0;
  expect_block_roundtrip(block, 3, 1e-4);
}

TEST(ZfpBlock, BudgetTruncationDegradesGracefully) {
  Rng rng(6);
  double block[64];
  for (auto& v : block) v = rng.gaussian();
  double prev_err = 1e300;
  for (size_t budget : {64u, 256u, 1024u, 4096u}) {
    BlockParams params;
    params.dims = 3;
    params.maxbits = budget;
    BitWriter bw;
    encode_block(bw, block, params);
    EXPECT_LE(bw.bit_count(), budget);
    BitReader br(bw.bytes().data(), bw.bytes().size(), bw.bit_count());
    double out[64];
    decode_block(br, out, params);
    double err = 0;
    for (int i = 0; i < 64; ++i) err = std::max(err, std::fabs(block[i] - out[i]));
    EXPECT_LE(err, prev_err + 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-9);  // 4096 bits = 64 bits/value: near-lossless
}

// --- volume compressor -------------------------------------------------------

class ZfpShapes : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(ZfpShapes, AccuracyModeBoundHolds) {
  const auto [x, y, z] = GetParam();
  const Dims dims{x, y, z};
  const auto field = data::make_field("miranda_viscosity", dims, x * 3 + y);
  const double tol = 1e-6;
  const auto stream = compress_accuracy(field.data(), dims, tol);
  std::vector<double> out;
  Dims od;
  ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
  EXPECT_EQ(od, dims);
  EXPECT_LE(max_abs_err(field, out), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZfpShapes,
    ::testing::Values(std::make_tuple(32, 32, 32), std::make_tuple(33, 18, 7),
                      std::make_tuple(64, 48, 1), std::make_tuple(129, 1, 1),
                      std::make_tuple(4, 4, 4), std::make_tuple(3, 3, 3)));

TEST(ZfpLike, FixedRateHitsTheRate) {
  const Dims dims{64, 64, 64};
  const auto field = data::nyx_velocity_x(dims);
  for (double bpp : {1.0, 4.0, 8.0}) {
    const auto stream = compress_rate(field.data(), dims, bpp);
    const double achieved = double(stream.size()) * 8 / double(dims.total());
    EXPECT_NEAR(achieved, bpp, bpp * 0.05 + 0.2) << "bpp " << bpp;
    std::vector<double> out;
    Dims od;
    ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
  }
}

TEST(ZfpLike, FixedRateErrorDropsWithRate) {
  const Dims dims{48, 48, 48};
  const auto field = data::miranda_density(dims);
  double prev = 1e300;
  for (double bpp : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto stream = compress_rate(field.data(), dims, bpp);
    std::vector<double> out;
    Dims od;
    ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
    const double err = max_abs_err(field, out);
    EXPECT_LT(err, prev) << "bpp " << bpp;
    prev = err;
  }
}

TEST(ZfpLike, VizQualityToleranceCompressesWell) {
  const Dims dims{64, 64, 64};
  const auto field = data::miranda_pressure(dims);
  // ~1e-2 of range: visualization-grade quality. Accuracy mode is
  // conservative (guard bitplanes), so the rate sits well above the
  // information-theoretic floor but far below the 64-bit input.
  const auto stream = compress_accuracy(field.data(), dims, 8000.0);
  EXPECT_LT(double(stream.size()) * 8 / double(dims.total()), 10.0);
}

TEST(ZfpLike, GarbageRejected) {
  std::vector<uint8_t> garbage(64, 0x11);
  std::vector<double> out;
  Dims od;
  EXPECT_NE(decompress(garbage.data(), garbage.size(), out, od), Status::ok);
}

}  // namespace
}  // namespace sperr::zfplike
