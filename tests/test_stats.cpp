#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sperr {
namespace {

TEST(FieldStats, Empty) {
  FieldStats s;
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.range(), 0.0);
}

TEST(FieldStats, SingleValue) {
  FieldStats s;
  s.add(5.0);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(FieldStats, KnownMoments) {
  FieldStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.range(), 7.0);
}

TEST(FieldStats, WelfordMatchesNaiveOnRandomData) {
  Rng rng(99);
  std::vector<double> v(5000);
  for (auto& x : v) x = rng.uniform(-100.0, 100.0);

  const FieldStats s = compute_stats(v.data(), v.size());
  double mean = 0;
  for (double x : v) mean += x;
  mean /= double(v.size());
  double var = 0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= double(v.size());

  EXPECT_NEAR(s.mean, mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(FieldStats, StableUnderLargeOffset) {
  // A naive sum-of-squares implementation loses all precision here.
  FieldStats s;
  const double offset = 1e12;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace sperr
