#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "data/synthetic.h"
#include "sperr/sperr.h"

namespace sperr {
namespace {

double rmse_of(const std::vector<double>& a, const std::vector<double>& b) {
  double sq = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double e = a[i] - b[i];
    sq += e * e;
  }
  return std::sqrt(sq / double(a.size()));
}

std::vector<uint8_t> fixed_rate_blob(const std::vector<double>& field, Dims dims,
                                     double bpp, Dims chunk = {256, 256, 256}) {
  Config cfg;
  cfg.mode = Mode::fixed_rate;
  cfg.bpp = bpp;
  cfg.chunk_dims = chunk;
  return compress(field.data(), dims, cfg);
}

TEST(Truncate, LowerRateDecodesWithHigherError) {
  const Dims dims{64, 64, 32};
  const auto field = data::miranda_pressure(dims);
  const auto full = fixed_rate_blob(field, dims, 8.0);

  double prev_rmse = 0.0;
  for (const double bpp : {8.0, 4.0, 2.0, 1.0, 0.5}) {
    std::vector<uint8_t> cut;
    ASSERT_EQ(truncate_fixed_rate(full.data(), full.size(), bpp, cut), Status::ok);
    EXPECT_LE(double(cut.size()) * 8 / double(dims.total()), bpp * 1.1 + 0.5);
    std::vector<double> recon;
    Dims od;
    ASSERT_EQ(decompress(cut.data(), cut.size(), recon, od), Status::ok);
    EXPECT_EQ(od, dims);
    const double rmse = rmse_of(field, recon);
    EXPECT_GE(rmse, prev_rmse * 0.999) << "bpp " << bpp;
    prev_rmse = rmse;
  }
}

TEST(Truncate, MatchesDirectEncodingAtTheSameRate) {
  // The embedded property in action: truncating an 8-bpp archive to 2 bpp
  // must land on (essentially) the same reconstruction as compressing at
  // 2 bpp directly.
  const Dims dims{48, 48, 48};
  const auto field = data::nyx_velocity_x(dims);
  const auto full = fixed_rate_blob(field, dims, 8.0);
  std::vector<uint8_t> cut;
  ASSERT_EQ(truncate_fixed_rate(full.data(), full.size(), 2.0, cut), Status::ok);

  const auto direct = fixed_rate_blob(field, dims, 2.0);
  std::vector<double> recon_cut, recon_direct;
  Dims od;
  ASSERT_EQ(decompress(cut.data(), cut.size(), recon_cut, od), Status::ok);
  ASSERT_EQ(decompress(direct.data(), direct.size(), recon_direct, od), Status::ok);
  const double r1 = rmse_of(field, recon_cut);
  const double r2 = rmse_of(field, recon_direct);
  EXPECT_NEAR(r1, r2, 0.05 * std::max(r1, r2) + 1e-12);
}

TEST(Truncate, MultiChunkContainersSupported) {
  const Dims dims{64, 64, 64};
  const auto field = data::miranda_density(dims);
  const auto full = fixed_rate_blob(field, dims, 6.0, Dims{32, 32, 32});
  std::vector<uint8_t> cut;
  ASSERT_EQ(truncate_fixed_rate(full.data(), full.size(), 1.5, cut), Status::ok);
  std::vector<double> recon;
  Dims od;
  ASSERT_EQ(decompress(cut.data(), cut.size(), recon, od), Status::ok);
  EXPECT_EQ(od, dims);
  EXPECT_LT(cut.size(), full.size() / 3);
}

TEST(Truncate, RateAboveStoredIsNoOpSizewise) {
  const Dims dims{32, 32, 32};
  const auto field = data::s3d_ch4(dims);
  const auto full = fixed_rate_blob(field, dims, 2.0);
  std::vector<uint8_t> cut;
  ASSERT_EQ(truncate_fixed_rate(full.data(), full.size(), 100.0, cut), Status::ok);
  std::vector<double> a, b;
  Dims od;
  ASSERT_EQ(decompress(cut.data(), cut.size(), a, od), Status::ok);
  ASSERT_EQ(decompress(full.data(), full.size(), b, od), Status::ok);
  EXPECT_EQ(a, b);
}

TEST(Truncate, PweContainersRejected) {
  const Dims dims{32, 32, 32};
  const auto field = data::s3d_temperature(dims);
  Config cfg;
  cfg.tolerance = 1.0;
  const auto blob = compress(field.data(), dims, cfg);
  std::vector<uint8_t> cut;
  EXPECT_EQ(truncate_fixed_rate(blob.data(), blob.size(), 1.0, cut),
            Status::invalid_argument);
}

TEST(Truncate, GarbageRejected) {
  std::vector<uint8_t> junk(64, 0x42);
  std::vector<uint8_t> cut;
  EXPECT_NE(truncate_fixed_rate(junk.data(), junk.size(), 1.0, cut), Status::ok);
}

TEST(EstimatedRmse, TracksActualReconstructionError) {
  // §III-A's premise: coefficient-domain L2 error ~ reconstruction L2
  // error. The encoder's estimate must land within a small factor of truth.
  const Dims dims{48, 48, 24};
  const auto field = data::miranda_viscosity(dims);
  for (const int idx : {10, 20, 30}) {
    Config cfg;
    cfg.mode = Mode::target_rmse;
    const FieldStats fs = compute_stats(field.data(), field.size());
    cfg.rmse = fs.stddev() * std::pow(10.0, -idx / 10.0);
    const auto blob = compress(field.data(), dims, cfg);
    std::vector<double> recon;
    Dims od;
    ASSERT_EQ(decompress(blob.data(), blob.size(), recon, od), Status::ok);
    const double actual = rmse_of(field, recon);
    // The target is an upper bound; actual must be within [target/8, target].
    EXPECT_LE(actual, cfg.rmse);
    EXPECT_GE(actual, cfg.rmse / 8.0);
  }
}

}  // namespace
}  // namespace sperr
