// Adversarial-input robustness: every public decoder must survive random
// truncation and random byte corruption of valid streams — returning an
// error status or a sane (full-size, finite) reconstruction, never crashing
// or over-reading. These are deterministic mini-fuzzers (seeded), so
// failures reproduce.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/mgardlike/compressor.h"
#include "baselines/szlike/compressor.h"
#include "baselines/tthreshlike/compressor.h"
#include "baselines/zfplike/compressor.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "lossless/codec.h"
#include "outlier/coder.h"
#include "speck/common.h"
#include "speck/decoder.h"
#include "speck/encoder.h"
#include "sperr/header.h"
#include "sperr/sperr.h"
#include "wavelet/dwt.h"

namespace sperr {
namespace {

std::vector<uint8_t> make_blob() {
  const Dims dims{24, 24, 12};
  const auto field = data::miranda_density(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 15);
  return compress(field.data(), dims, cfg);
}

template <class DecodeFn>
void fuzz_decoder(const std::vector<uint8_t>& valid, uint64_t seed, DecodeFn&& fn) {
  Rng rng(seed);
  // Truncations at every scale.
  for (int i = 0; i < 60; ++i) {
    auto cut = valid;
    cut.resize(rng.below(valid.size()));
    fn(cut);
  }
  // Single- and multi-byte corruptions.
  for (int i = 0; i < 120; ++i) {
    auto bad = valid;
    const int flips = 1 + int(rng.below(8));
    for (int f = 0; f < flips; ++f)
      bad[rng.below(bad.size())] ^= uint8_t(1 + rng.below(255));
    fn(bad);
  }
  // Pure garbage.
  for (int i = 0; i < 40; ++i) {
    std::vector<uint8_t> junk(rng.below(4096));
    for (auto& b : junk) b = uint8_t(rng.next());
    fn(junk);
  }
}

void expect_sane_field(Status s, const std::vector<double>& out, Dims dims) {
  if (s != Status::ok) return;  // rejecting is always fine
  ASSERT_EQ(out.size(), dims.total());
  // Entropy-coded payloads carry no checksummed content; a flipped payload
  // bit may decode to *different* values, but never to NaN/Inf and never to
  // a wrongly-sized field.
  for (double v : out) ASSERT_TRUE(std::isfinite(v));
}

TEST(Robustness, SperrDecompressorSurvivesFuzz) {
  const auto blob = make_blob();
  fuzz_decoder(blob, 1001, [](const std::vector<uint8_t>& bytes) {
    std::vector<double> out;
    Dims dims;
    const Status s = decompress(bytes.data(), bytes.size(), out, dims);
    expect_sane_field(s, out, dims);
  });
}

TEST(Robustness, SperrLowresSurvivesFuzz) {
  const auto blob = make_blob();
  fuzz_decoder(blob, 1002, [](const std::vector<uint8_t>& bytes) {
    std::vector<double> out;
    Dims cd;
    const Status s = decompress_lowres(bytes.data(), bytes.size(), 1, out, cd);
    expect_sane_field(s, out, cd);
  });
}

TEST(Robustness, LosslessCodecSurvivesFuzz) {
  std::vector<uint8_t> payload(20000);
  Rng rng(7);
  for (size_t i = 0; i < payload.size(); ++i)
    payload[i] = uint8_t(i % 251) ^ uint8_t(rng.below(4));
  const auto packed = lossless::compress(payload);
  fuzz_decoder(packed, 1003, [](const std::vector<uint8_t>& bytes) {
    std::vector<uint8_t> out;
    (void)lossless::decompress(bytes.data(), bytes.size(), out);
  });
}

TEST(Robustness, BlockedLosslessSurvivesFuzz) {
  // Same fuzz aimed at the block-parallel framing: a multi-block stream with
  // a mix of LZ and raw blocks, small blocks so the directory is a real
  // attack surface.
  std::vector<uint8_t> payload(6 * 4096 + 321);
  Rng rng(9);
  for (size_t i = 0; i < payload.size(); ++i)
    payload[i] = i % 3 ? uint8_t(i % 251) : uint8_t(rng.next());
  const auto packed = lossless::compress(payload, {4096, 0});
  fuzz_decoder(packed, 1011, [](const std::vector<uint8_t>& bytes) {
    std::vector<uint8_t> out;
    size_t bad = 0;
    (void)lossless::decompress(bytes.data(), bytes.size(), out, &bad);
  });
}

TEST(Robustness, FlippedLosslessPayloadBitIsBlockIndexed) {
  // The tentpole's corruption contract, end to end: one flipped bit inside a
  // lossless block payload of a real SPERR archive must surface as
  // Status::corrupt_block naming that block — not a crash, not silent
  // garbage, not a vague error.
  const auto blob = make_blob();
  ASSERT_GT(blob.size(), 14u);
  ASSERT_EQ(blob[5], 1u) << "archive should carry a lossless payload";

  constexpr size_t kOuterBytes = 14;  // magic + version + flag + length
  lossless::StreamInfo info;
  ASSERT_EQ(lossless::inspect(blob.data() + kOuterBytes, blob.size() - kOuterBytes,
                              info),
            Status::ok);
  ASSERT_TRUE(info.blocked);
  ASSERT_FALSE(info.blocks.empty());

  Rng rng(1012);
  for (int i = 0; i < 40; ++i) {
    const size_t victim = rng.below(info.blocks.size());
    const auto& bi = info.blocks[victim];
    auto bad = blob;
    const size_t byte =
        kOuterBytes + size_t(bi.offset) + rng.below(size_t(bi.comp_size));
    bad[byte] ^= uint8_t(1u << rng.below(8));

    std::vector<uint8_t> inner;
    size_t bad_block = SIZE_MAX;
    ASSERT_EQ(unwrap_container(bad.data(), bad.size(), inner, &bad_block),
              Status::corrupt_block);
    ASSERT_EQ(bad_block, victim);

    // And through the public API: a clean error, never a silent field.
    std::vector<double> out;
    Dims od;
    ASSERT_EQ(decompress(bad.data(), bad.size(), out, od), Status::corrupt_block);
  }
}

TEST(Robustness, OutlierDecoderSurvivesFuzz) {
  std::vector<outlier::Outlier> outliers;
  Rng rng(8);
  for (int i = 0; i < 500; ++i)
    outliers.push_back({rng.below(100000), rng.uniform(1.1, 50.0)});
  // Deduplicate positions.
  std::sort(outliers.begin(), outliers.end(),
            [](const auto& a, const auto& b) { return a.pos < b.pos; });
  outliers.erase(std::unique(outliers.begin(), outliers.end(),
                             [](const auto& a, const auto& b) {
                               return a.pos == b.pos;
                             }),
                 outliers.end());
  const auto stream = outlier::encode(outliers, 100000, 1.0);
  fuzz_decoder(stream, 1004, [](const std::vector<uint8_t>& bytes) {
    std::vector<outlier::Outlier> out;
    (void)outlier::decode(bytes.data(), bytes.size(), 100000, out);
    for (const auto& o : out) ASSERT_LT(o.pos, 100000u);
  });
}

TEST(Robustness, SpeckPayloadBitFlipsSurviveBothDecoders) {
  // Corruption aimed squarely at the SPECK payload (bytes past the fixed
  // header): a flipped significance/sign/refinement bit desynchronizes the
  // set traversal, which must still terminate with a full-size finite field
  // — in the flattened decoder AND the reference decoder, which share the
  // stream format.
  const Dims dims{21, 18, 10};
  auto coeffs = data::miranda_density(dims);
  wavelet::forward_dwt(coeffs.data(), dims);
  double max_mag = 0.0;
  for (const double c : coeffs) max_mag = std::max(max_mag, std::fabs(c));
  const auto stream = speck::encode(coeffs.data(), dims, std::ldexp(max_mag, -14));
  ASSERT_GT(stream.size(), speck::Header::kBytes + 16);

  Rng rng(1009);
  auto decode_both = [&](const std::vector<uint8_t>& bytes) {
    std::vector<double> fast_out(dims.total()), ref_out(dims.total());
    const Status sf =
        speck::decode(bytes.data(), bytes.size(), dims, fast_out.data());
    const Status sr =
        speck::decode_reference(bytes.data(), bytes.size(), dims, ref_out.data());
    // The two decoders implement one format: same accept/reject verdict,
    // same reconstruction, corrupt or not.
    ASSERT_EQ(sf, sr);
    expect_sane_field(sf, fast_out, dims);
    if (sf == Status::ok)
      for (size_t i = 0; i < fast_out.size(); ++i)
        ASSERT_EQ(fast_out[i], ref_out[i]) << "decoder divergence at " << i;
  };

  const size_t payload_begin = speck::Header::kBytes;
  for (int i = 0; i < 150; ++i) {
    auto bad = stream;
    const int flips = 1 + int(rng.below(6));
    for (int f = 0; f < flips; ++f) {
      const size_t byte = payload_begin + rng.below(bad.size() - payload_begin);
      bad[byte] ^= uint8_t(1u << rng.below(8));  // single bit, inside payload
    }
    decode_both(bad);
  }
  // Payload truncation at bit granularity via the header's nbits field is
  // already covered by prefix tests; here cut at byte granularity too.
  for (int i = 0; i < 60; ++i) {
    auto cut = stream;
    cut.resize(payload_begin + rng.below(cut.size() - payload_begin));
    decode_both(cut);
  }
}

TEST(Robustness, ContainerPayloadBitFlipsSurviveFuzz) {
  // Same idea one level up: flip bits strictly after the container header of
  // an unpacked (lossless_pass=false) archive, so corruption lands in chunk
  // payloads rather than the framing. The decompressor must keep returning
  // full-size finite fields or a clean error.
  const Dims dims{24, 24, 12};
  const auto field = data::miranda_density(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 15);
  cfg.lossless_pass = false;
  const auto blob = compress(field.data(), dims, cfg);

  // Skip the container magic/header region conservatively (first 64 bytes).
  const size_t payload_begin = std::min<size_t>(64, blob.size() / 2);
  Rng rng(1010);
  for (int i = 0; i < 120; ++i) {
    auto bad = blob;
    const int flips = 1 + int(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const size_t byte = payload_begin + rng.below(bad.size() - payload_begin);
      bad[byte] ^= uint8_t(1u << rng.below(8));
    }
    std::vector<double> out;
    Dims od;
    const Status s = decompress(bad.data(), bad.size(), out, od);
    expect_sane_field(s, out, od);
  }
}

TEST(Robustness, BaselineDecodersSurviveFuzz) {
  const Dims dims{20, 20, 10};
  const auto field = data::s3d_ch4(dims);

  fuzz_decoder(szlike::compress(field.data(), dims, 1e-4), 1005,
               [](const std::vector<uint8_t>& bytes) {
                 std::vector<double> out;
                 Dims od;
                 (void)szlike::decompress(bytes.data(), bytes.size(), out, od);
               });
  fuzz_decoder(zfplike::compress_accuracy(field.data(), dims, 1e-4), 1006,
               [](const std::vector<uint8_t>& bytes) {
                 std::vector<double> out;
                 Dims od;
                 (void)zfplike::decompress(bytes.data(), bytes.size(), out, od);
               });
  fuzz_decoder(mgardlike::compress(field.data(), dims, 1e-4), 1007,
               [](const std::vector<uint8_t>& bytes) {
                 std::vector<double> out;
                 Dims od;
                 (void)mgardlike::decompress(bytes.data(), bytes.size(), out, od);
               });
  fuzz_decoder(tthreshlike::compress(field.data(), dims, 60.0), 1008,
               [](const std::vector<uint8_t>& bytes) {
                 std::vector<double> out;
                 Dims od;
                 (void)tthreshlike::decompress(bytes.data(), bytes.size(), out, od);
               });
}

}  // namespace
}  // namespace sperr
