// Adversarial-input robustness: every public decoder must survive random
// truncation and random byte corruption of valid streams — returning an
// error status or a sane (full-size, finite) reconstruction, never crashing
// or over-reading. These are deterministic mini-fuzzers (seeded), so
// failures reproduce.

#include <gtest/gtest.h>

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <string>

#include "baselines/mgardlike/compressor.h"
#include "baselines/szlike/compressor.h"
#include "baselines/tthreshlike/compressor.h"
#include "baselines/zfplike/compressor.h"
#include "common/byteio.h"
#include "common/resource.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/server.h"
#include "lossless/codec.h"
#include "outlier/coder.h"
#include "speck/common.h"
#include "speck/decoder.h"
#include "speck/encoder.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/outofcore.h"
#include "sperr/sperr.h"
#include "wavelet/dwt.h"

namespace sperr {
namespace {

std::vector<uint8_t> make_blob() {
  const Dims dims{24, 24, 12};
  const auto field = data::miranda_density(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 15);
  return compress(field.data(), dims, cfg);
}

template <class DecodeFn>
void fuzz_decoder(const std::vector<uint8_t>& valid, uint64_t seed, DecodeFn&& fn) {
  Rng rng(seed);
  // Truncations at every scale.
  for (int i = 0; i < 60; ++i) {
    auto cut = valid;
    cut.resize(rng.below(valid.size()));
    fn(cut);
  }
  // Single- and multi-byte corruptions.
  for (int i = 0; i < 120; ++i) {
    auto bad = valid;
    const int flips = 1 + int(rng.below(8));
    for (int f = 0; f < flips; ++f)
      bad[rng.below(bad.size())] ^= uint8_t(1 + rng.below(255));
    fn(bad);
  }
  // Pure garbage.
  for (int i = 0; i < 40; ++i) {
    std::vector<uint8_t> junk(rng.below(4096));
    for (auto& b : junk) b = uint8_t(rng.next());
    fn(junk);
  }
}

void expect_sane_field(Status s, const std::vector<double>& out, Dims dims) {
  if (s != Status::ok) return;  // rejecting is always fine
  ASSERT_EQ(out.size(), dims.total());
  // Entropy-coded payloads carry no checksummed content; a flipped payload
  // bit may decode to *different* values, but never to NaN/Inf and never to
  // a wrongly-sized field.
  for (double v : out) ASSERT_TRUE(std::isfinite(v));
}

TEST(Robustness, SperrDecompressorSurvivesFuzz) {
  const auto blob = make_blob();
  fuzz_decoder(blob, 1001, [](const std::vector<uint8_t>& bytes) {
    std::vector<double> out;
    Dims dims;
    const Status s = decompress(bytes.data(), bytes.size(), out, dims);
    expect_sane_field(s, out, dims);
  });
}

TEST(Robustness, SperrLowresSurvivesFuzz) {
  const auto blob = make_blob();
  fuzz_decoder(blob, 1002, [](const std::vector<uint8_t>& bytes) {
    std::vector<double> out;
    Dims cd;
    const Status s = decompress_lowres(bytes.data(), bytes.size(), 1, out, cd);
    expect_sane_field(s, out, cd);
  });
}

TEST(Robustness, SperrTolerantDecoderSurvivesFuzz) {
  // The recovery path takes the same adversarial inputs as the strict one,
  // with a stronger postcondition: whenever it says ok, the field is usable
  // (full-size and finite) no matter what the fill policy had to patch.
  const auto blob = make_blob();
  uint64_t seed = 1013;
  for (const Recovery policy : {Recovery::zero_fill, Recovery::coarse_fill}) {
    fuzz_decoder(blob, seed++, [policy](const std::vector<uint8_t>& bytes) {
      std::vector<double> out;
      Dims dims;
      DecodeReport rep;
      const Status s =
          decompress_tolerant(bytes.data(), bytes.size(), policy, out, dims, &rep);
      expect_sane_field(s, out, dims);
      if (s == Status::ok) {
        ASSERT_TRUE(rep.field_valid);
      }
    });
  }
}

TEST(Robustness, VerifyContainerSurvivesFuzz) {
  const auto blob = make_blob();
  fuzz_decoder(blob, 1015, [](const std::vector<uint8_t>& bytes) {
    DecodeReport rep;
    (void)verify_container(bytes.data(), bytes.size(), &rep);
    // An audit never fabricates more damage than chunks it saw.
    ASSERT_LE(rep.damaged, rep.chunks.size());
  });
}

TEST(Robustness, OutOfCoreReaderSurvivesFuzz) {
  // The file-based reader shares the tolerant core but adds its own I/O
  // paths; run a reduced-iteration fuzz through a scratch file.
  const auto blob = make_blob();
  const std::string dir = ::testing::TempDir();
  const std::string in_path = dir + "/ooc_fuzz.sperr";
  const std::string out_path = dir + "/ooc_fuzz.raw";
  auto run = [&](const std::vector<uint8_t>& bytes) {
    {
      std::ofstream f(in_path, std::ios::binary);
      f.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
    }
    (void)outofcore::decompress_file(in_path, out_path, 8);
    DecodeReport rep;
    (void)outofcore::decompress_file(in_path, out_path, 8, Recovery::zero_fill,
                                     &rep);
  };
  Rng rng(1014);
  for (int i = 0; i < 25; ++i) {
    auto cut = blob;
    cut.resize(rng.below(blob.size()));
    run(cut);
  }
  for (int i = 0; i < 50; ++i) {
    auto bad = blob;
    const int flips = 1 + int(rng.below(8));
    for (int f = 0; f < flips; ++f)
      bad[rng.below(bad.size())] ^= uint8_t(1 + rng.below(255));
    run(bad);
  }
}

TEST(Robustness, MultiChunkCorruptionLeavesOthersBitIdentical) {
  // Randomized version of the acceptance contract: flip bits in a random
  // subset of chunks of an 8-chunk archive; the remaining chunks must come
  // back byte-for-byte equal to a clean decode under both fill policies.
  const Dims dims{48, 48, 48};
  const auto field = data::miranda_pressure(dims, 5);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 15);
  cfg.chunk_dims = Dims{24, 24, 24};
  cfg.lossless_pass = false;
  const auto blob = compress(field.data(), dims, cfg);

  std::vector<uint8_t> inner;
  ContainerHeader hdr;
  size_t payload_pos = 0;
  ASSERT_EQ(open_container(blob.data(), blob.size(), inner, hdr, &payload_pos),
            Status::ok);
  constexpr size_t kOuterBytes = 14;
  std::vector<std::pair<size_t, size_t>> ranges;  // offset, length in blob
  size_t pos = kOuterBytes + payload_pos;
  for (const ChunkEntry& e : hdr.entries) {
    ranges.emplace_back(pos, size_t(e.total_len()));
    pos += size_t(e.total_len());
  }

  std::vector<double> clean;
  Dims od;
  ASSERT_EQ(decompress(blob.data(), blob.size(), clean, od), Status::ok);
  const auto chunks = make_chunks(hdr.dims, hdr.chunk_dims);

  Rng rng(1016);
  for (int round = 0; round < 12; ++round) {
    auto bad = blob;
    std::vector<bool> hit(ranges.size(), false);
    const size_t nvictims = 1 + rng.below(3);
    for (size_t v = 0; v < nvictims; ++v) {
      const size_t victim = rng.below(ranges.size());
      hit[victim] = true;
      bad[ranges[victim].first + rng.below(ranges[victim].second)] ^=
          uint8_t(1u << rng.below(8));
    }
    for (const Recovery policy : {Recovery::zero_fill, Recovery::coarse_fill}) {
      std::vector<double> out;
      DecodeReport rep;
      ASSERT_EQ(decompress_tolerant(bad.data(), bad.size(), policy, out, od, &rep),
                Status::ok);
      for (size_t i = 0; i < chunks.size(); ++i) {
        if (hit[i]) continue;  // this chunk was (maybe) damaged
        ASSERT_EQ(rep.chunks[i].status, Status::ok) << "chunk " << i;
        const Chunk& c = chunks[i];
        for (size_t z = 0; z < c.dims.z; ++z)
          for (size_t y = 0; y < c.dims.y; ++y)
            for (size_t x = 0; x < c.dims.x; ++x) {
              const size_t vi = hdr.dims.index(c.origin.x + x, c.origin.y + y,
                                               c.origin.z + z);
              ASSERT_EQ(clean[vi], out[vi]) << "chunk " << i;
            }
      }
    }
  }
}

/// Hand-build a v2 archive (16-byte directory entries, no checksums — so
/// crafted lengths reach the slicer unchallenged) with the given directory
/// and `payload_bytes` bytes of chunk payload.
std::vector<uint8_t> craft_v2_container(Dims dims, Dims cdims,
                                        const std::vector<ChunkEntry>& entries,
                                        size_t payload_bytes) {
  std::vector<uint8_t> inner;
  put_u32(inner, ContainerHeader::kInnerMagic);
  put_u8(inner, uint8_t(Mode::pwe));
  put_u8(inner, 8);
  put_u64(inner, dims.x);
  put_u64(inner, dims.y);
  put_u64(inner, dims.z);
  put_u64(inner, cdims.x);
  put_u64(inner, cdims.y);
  put_u64(inner, cdims.z);
  put_f64(inner, 1e-3);
  put_u32(inner, uint32_t(entries.size()));
  for (const ChunkEntry& e : entries) {
    put_u64(inner, e.speck_len);
    put_u64(inner, e.outlier_len);
  }
  inner.insert(inner.end(), payload_bytes, uint8_t(0xab));

  std::vector<uint8_t> blob;
  put_u32(blob, ContainerHeader::kOuterMagic);
  put_u8(blob, 2);  // container v2
  put_u8(blob, 0);  // no lossless pass
  put_u64(blob, inner.size());
  blob.insert(blob.end(), inner.begin(), inner.end());
  return blob;
}

TEST(Robustness, WrappingDirectoryLengthsAreRejected) {
  // A directory entry whose u64 speck_len + outlier_len wraps to a tiny
  // value must read as damage (truncation) — never as an "intact" chunk
  // whose huge advertised lengths then size the decode reads.
  const Dims dims{8, 8, 8};
  const auto blob = craft_v2_container(dims, dims, {ChunkEntry(UINT64_MAX, 2)}, 1);

  std::vector<double> out;
  Dims od;
  EXPECT_EQ(decompress(blob.data(), blob.size(), out, od),
            Status::truncated_stream);

  // decompress_lowres takes a separate bounds-check path: the old additive
  // form `payload_pos + speck_len > inner.size()` wrapped and passed here.
  std::vector<double> low;
  Dims cd;
  EXPECT_EQ(decompress_lowres(blob.data(), blob.size(), 1, low, cd),
            Status::truncated_stream);

  for (const Recovery policy : {Recovery::zero_fill, Recovery::coarse_fill}) {
    DecodeReport rep;
    const Status s =
        decompress_tolerant(blob.data(), blob.size(), policy, out, od, &rep);
    expect_sane_field(s, out, od);
    ASSERT_EQ(rep.chunks.size(), 1u);
    EXPECT_TRUE(rep.chunks[0].damaged());
  }
}

TEST(Robustness, OverrunningChunkDoesNotAliasLaterChunks) {
  // Chunk 0 advertises (wrapping) huge extents, chunk 1 a small one. The
  // slicer must saturate at end-of-payload — both chunks report truncation
  // at honest offsets — instead of wrapping `pos` and handing chunk 1 a
  // slice aliased onto earlier payload bytes.
  const Dims dims{16, 8, 8};
  const Dims cdims{8, 8, 8};
  const auto blob = craft_v2_container(
      dims, cdims, {ChunkEntry(UINT64_MAX, 2), ChunkEntry(4, 0)}, 8);

  std::vector<double> out;
  Dims od;
  DecodeReport rep;
  const Status s = decompress_tolerant(blob.data(), blob.size(),
                                       Recovery::zero_fill, out, od, &rep);
  expect_sane_field(s, out, od);
  ASSERT_EQ(rep.chunks.size(), 2u);
  EXPECT_TRUE(rep.chunks[0].damaged());
  // Chunk 1 must report truncation at the stream tail — chunk 0's garbage
  // extent consumed the payload — not a decode verdict on an aliased slice.
  EXPECT_EQ(rep.chunks[1].status, Status::truncated_stream);
  EXPECT_GE(rep.chunks[1].offset, rep.chunks[0].offset);
  for (const ChunkReport& c : rep.chunks) EXPECT_LE(c.offset, blob.size());
}

TEST(Robustness, LosslessCodecSurvivesFuzz) {
  std::vector<uint8_t> payload(20000);
  Rng rng(7);
  for (size_t i = 0; i < payload.size(); ++i)
    payload[i] = uint8_t(i % 251) ^ uint8_t(rng.below(4));
  const auto packed = lossless::compress(payload);
  fuzz_decoder(packed, 1003, [](const std::vector<uint8_t>& bytes) {
    std::vector<uint8_t> out;
    (void)lossless::decompress(bytes.data(), bytes.size(), out);
  });
}

TEST(Robustness, BlockedLosslessSurvivesFuzz) {
  // Same fuzz aimed at the block-parallel framing: a multi-block stream with
  // a mix of LZ and raw blocks, small blocks so the directory is a real
  // attack surface.
  std::vector<uint8_t> payload(6 * 4096 + 321);
  Rng rng(9);
  for (size_t i = 0; i < payload.size(); ++i)
    payload[i] = i % 3 ? uint8_t(i % 251) : uint8_t(rng.next());
  const auto packed = lossless::compress(payload, {4096, 0});
  fuzz_decoder(packed, 1011, [](const std::vector<uint8_t>& bytes) {
    std::vector<uint8_t> out;
    size_t bad = 0;
    (void)lossless::decompress(bytes.data(), bytes.size(), out, &bad);
  });
}

TEST(Robustness, FlippedLosslessPayloadBitIsBlockIndexed) {
  // The tentpole's corruption contract, end to end: one flipped bit inside a
  // lossless block payload of a real SPERR archive must surface as
  // Status::corrupt_block naming that block — not a crash, not silent
  // garbage, not a vague error.
  const auto blob = make_blob();
  ASSERT_GT(blob.size(), 14u);
  ASSERT_EQ(blob[5], 1u) << "archive should carry a lossless payload";

  constexpr size_t kOuterBytes = 14;  // magic + version + flag + length
  lossless::StreamInfo info;
  ASSERT_EQ(lossless::inspect(blob.data() + kOuterBytes, blob.size() - kOuterBytes,
                              info),
            Status::ok);
  ASSERT_TRUE(info.blocked);
  ASSERT_FALSE(info.blocks.empty());

  Rng rng(1012);
  for (int i = 0; i < 40; ++i) {
    const size_t victim = rng.below(info.blocks.size());
    const auto& bi = info.blocks[victim];
    auto bad = blob;
    const size_t byte =
        kOuterBytes + size_t(bi.offset) + rng.below(size_t(bi.comp_size));
    bad[byte] ^= uint8_t(1u << rng.below(8));

    std::vector<uint8_t> inner;
    size_t bad_block = SIZE_MAX;
    ASSERT_EQ(unwrap_container(bad.data(), bad.size(), inner, &bad_block),
              Status::corrupt_block);
    ASSERT_EQ(bad_block, victim);

    // And through the public API: a clean error, never a silent field.
    std::vector<double> out;
    Dims od;
    ASSERT_EQ(decompress(bad.data(), bad.size(), out, od), Status::corrupt_block);
  }
}

TEST(Robustness, OutlierDecoderSurvivesFuzz) {
  std::vector<outlier::Outlier> outliers;
  Rng rng(8);
  for (int i = 0; i < 500; ++i)
    outliers.push_back({rng.below(100000), rng.uniform(1.1, 50.0)});
  // Deduplicate positions.
  std::sort(outliers.begin(), outliers.end(),
            [](const auto& a, const auto& b) { return a.pos < b.pos; });
  outliers.erase(std::unique(outliers.begin(), outliers.end(),
                             [](const auto& a, const auto& b) {
                               return a.pos == b.pos;
                             }),
                 outliers.end());
  const auto stream = outlier::encode(outliers, 100000, 1.0);
  fuzz_decoder(stream, 1004, [](const std::vector<uint8_t>& bytes) {
    std::vector<outlier::Outlier> out;
    (void)outlier::decode(bytes.data(), bytes.size(), 100000, out);
    for (const auto& o : out) ASSERT_LT(o.pos, 100000u);
  });
}

TEST(Robustness, SpeckPayloadBitFlipsSurviveBothDecoders) {
  // Corruption aimed squarely at the SPECK payload (bytes past the fixed
  // header): a flipped significance/sign/refinement bit desynchronizes the
  // set traversal, which must still terminate with a full-size finite field
  // — in the flattened decoder AND the reference decoder, which share the
  // stream format.
  const Dims dims{21, 18, 10};
  auto coeffs = data::miranda_density(dims);
  wavelet::forward_dwt(coeffs.data(), dims);
  double max_mag = 0.0;
  for (const double c : coeffs) max_mag = std::max(max_mag, std::fabs(c));
  const auto stream = speck::encode(coeffs.data(), dims, std::ldexp(max_mag, -14));
  ASSERT_GT(stream.size(), speck::Header::kBytes + 16);

  Rng rng(1009);
  auto decode_both = [&](const std::vector<uint8_t>& bytes) {
    std::vector<double> fast_out(dims.total()), ref_out(dims.total());
    const Status sf =
        speck::decode(bytes.data(), bytes.size(), dims, fast_out.data());
    const Status sr =
        speck::decode_reference(bytes.data(), bytes.size(), dims, ref_out.data());
    // The two decoders implement one format: same accept/reject verdict,
    // same reconstruction, corrupt or not.
    ASSERT_EQ(sf, sr);
    expect_sane_field(sf, fast_out, dims);
    if (sf == Status::ok) {
      for (size_t i = 0; i < fast_out.size(); ++i)
        ASSERT_EQ(fast_out[i], ref_out[i]) << "decoder divergence at " << i;
    }
  };

  const size_t payload_begin = speck::Header::kBytes;
  for (int i = 0; i < 150; ++i) {
    auto bad = stream;
    const int flips = 1 + int(rng.below(6));
    for (int f = 0; f < flips; ++f) {
      const size_t byte = payload_begin + rng.below(bad.size() - payload_begin);
      bad[byte] ^= uint8_t(1u << rng.below(8));  // single bit, inside payload
    }
    decode_both(bad);
  }
  // Payload truncation at bit granularity via the header's nbits field is
  // already covered by prefix tests; here cut at byte granularity too.
  for (int i = 0; i < 60; ++i) {
    auto cut = stream;
    cut.resize(payload_begin + rng.below(cut.size() - payload_begin));
    decode_both(cut);
  }
}

TEST(Robustness, SpeckSortingWordBitFlipsSurviveThreadSweep) {
  // The sweep engine consumes sorting-pass bits through 64-wide packed
  // significance words; flips landing inside those words are the corruption
  // most likely to desynchronize the batched kernels differently at
  // different lane counts. Aim every flip at a sorting-pass bit span
  // (located from EncodeStats::passes — each plane's payload is its sorting
  // bits followed by its refinement bits) and hold the decoder to the full
  // thread wall: at 1/2/4/8 intra-chunk threads AND in the reference
  // decoder, verdicts and reconstructions must stay identical.
  const Dims dims{26, 19, 14};
  auto coeffs = data::miranda_density(dims);
  wavelet::forward_dwt(coeffs.data(), dims);
  double max_mag = 0.0;
  for (const double c : coeffs) max_mag = std::max(max_mag, std::fabs(c));
  speck::EncodeStats stats;
  const auto stream =
      speck::encode(coeffs.data(), dims, std::ldexp(max_mag, -12), 0, &stats);
  ASSERT_FALSE(stats.passes.empty());

  std::vector<std::pair<uint64_t, uint64_t>> sort_spans;
  uint64_t cursor = 0;
  for (const auto& pass : stats.passes) {
    if (pass.sorting_bits > 0)
      sort_spans.push_back({cursor, cursor + pass.sorting_bits});
    cursor += pass.sorting_bits + pass.refinement_bits;
  }
  ASSERT_FALSE(sort_spans.empty());

  const int threads[] = {1, 2, 4, 8};
  auto decode_wall = [&](const std::vector<uint8_t>& bytes) {
    std::vector<double> ref_out(dims.total());
    const Status sr =
        speck::decode_reference(bytes.data(), bytes.size(), dims, ref_out.data());
    expect_sane_field(sr, ref_out, dims);
    for (const int t : threads) {
      std::vector<double> out(dims.total());
      const Status st =
          speck::decode(bytes.data(), bytes.size(), dims, out.data(), nullptr, t);
      ASSERT_EQ(st, sr) << "verdict diverges at threads=" << t;
      if (st == Status::ok) {
        for (size_t i = 0; i < out.size(); ++i)
          ASSERT_EQ(out[i], ref_out[i])
              << "threads=" << t << " coefficient " << i;
      }
    }
  };

  Rng rng(1011);
  for (int i = 0; i < 120; ++i) {
    auto bad = stream;
    const int flips = 1 + int(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const auto& span = sort_spans[rng.below(sort_spans.size())];
      const uint64_t bit = span.first + rng.below(span.second - span.first);
      bad[speck::Header::kBytes + size_t(bit / 8)] ^= uint8_t(1u << (bit % 8));
    }
    decode_wall(bad);
  }
}

TEST(Robustness, TolerantDecodeSurvivesSpeckSweepCorruption) {
  // The same corruption one level up: a chunked archive whose SPECK chunk
  // payloads are damaged. The strict decoder may cleanly reject (per-chunk
  // checksums catch the flip); the tolerant decoder with a fill policy must
  // always come back with a usable full-size finite field, and must agree
  // with the strict decoder whenever the strict decoder accepts.
  const Dims dims{24, 24, 12};
  const auto field = data::miranda_density(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 14);
  cfg.lossless_pass = false;
  const auto blob = compress(field.data(), dims, cfg);

  const size_t payload_begin = std::min<size_t>(64, blob.size() / 2);
  Rng rng(1012);
  for (int i = 0; i < 80; ++i) {
    auto bad = blob;
    const int flips = 1 + int(rng.below(5));
    for (int f = 0; f < flips; ++f) {
      const size_t byte = payload_begin + rng.below(bad.size() - payload_begin);
      bad[byte] ^= uint8_t(1u << rng.below(8));
    }
    std::vector<double> strict_out;
    Dims sd;
    const Status ss = decompress(bad.data(), bad.size(), strict_out, sd);
    expect_sane_field(ss, strict_out, sd);

    std::vector<double> tol_out;
    Dims td;
    const Status st =
        decompress_tolerant(bad.data(), bad.size(), Recovery::coarse_fill, tol_out, td);
    expect_sane_field(st, tol_out, td);
    if (ss == Status::ok) {
      ASSERT_EQ(st, Status::ok) << "tolerant rejects a stream strict accepts";
      ASSERT_EQ(tol_out.size(), strict_out.size());
      for (size_t k = 0; k < tol_out.size(); ++k)
        ASSERT_EQ(tol_out[k], strict_out[k]) << "coefficient " << k;
    }
  }
}

TEST(Robustness, ContainerPayloadBitFlipsSurviveFuzz) {
  // Same idea one level up: flip bits strictly after the container header of
  // an unpacked (lossless_pass=false) archive, so corruption lands in chunk
  // payloads rather than the framing. The decompressor must keep returning
  // full-size finite fields or a clean error.
  const Dims dims{24, 24, 12};
  const auto field = data::miranda_density(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 15);
  cfg.lossless_pass = false;
  const auto blob = compress(field.data(), dims, cfg);

  // Skip the container magic/header region conservatively (first 64 bytes).
  const size_t payload_begin = std::min<size_t>(64, blob.size() / 2);
  Rng rng(1010);
  for (int i = 0; i < 120; ++i) {
    auto bad = blob;
    const int flips = 1 + int(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const size_t byte = payload_begin + rng.below(bad.size() - payload_begin);
      bad[byte] ^= uint8_t(1u << rng.below(8));
    }
    std::vector<double> out;
    Dims od;
    const Status s = decompress(bad.data(), bad.size(), out, od);
    expect_sane_field(s, out, od);
  }
}

TEST(Robustness, BaselineDecodersSurviveFuzz) {
  const Dims dims{20, 20, 10};
  const auto field = data::s3d_ch4(dims);

  fuzz_decoder(szlike::compress(field.data(), dims, 1e-4), 1005,
               [](const std::vector<uint8_t>& bytes) {
                 std::vector<double> out;
                 Dims od;
                 (void)szlike::decompress(bytes.data(), bytes.size(), out, od);
               });
  fuzz_decoder(zfplike::compress_accuracy(field.data(), dims, 1e-4), 1006,
               [](const std::vector<uint8_t>& bytes) {
                 std::vector<double> out;
                 Dims od;
                 (void)zfplike::decompress(bytes.data(), bytes.size(), out, od);
               });
  fuzz_decoder(mgardlike::compress(field.data(), dims, 1e-4), 1007,
               [](const std::vector<uint8_t>& bytes) {
                 std::vector<double> out;
                 Dims od;
                 (void)mgardlike::decompress(bytes.data(), bytes.size(), out, od);
               });
  fuzz_decoder(tthreshlike::compress(field.data(), dims, 60.0), 1008,
               [](const std::vector<uint8_t>& bytes) {
                 std::vector<double> out;
                 Dims od;
                 (void)tthreshlike::decompress(bytes.data(), bytes.size(), out, od);
               });
}

// ---------------------------------------------------------------------------
// Decompression-bomb defense (common/resource.h). A bomb is a tiny,
// well-formed stream whose *header* declares enormous decoded output; the
// contract is that every decode entry point answers Status::resource_exhausted
// from the header alone — quickly, and without sizing a single allocation
// from the hostile declaration.

/// Hand-crafted v2 container: outer wrapper + inner header + one zero-length
/// chunk entry. The declared dims / chunk grid are the payload-free bomb.
std::vector<uint8_t> bomb_container(Dims dims, Dims chunk_dims) {
  std::vector<uint8_t> inner;
  put_u32(inner, 0x43525053);  // 'SPRC'
  put_u8(inner, 0);            // mode = pwe
  put_u8(inner, 8);            // precision = f64
  put_u64(inner, dims.x);
  put_u64(inner, dims.y);
  put_u64(inner, dims.z);
  put_u64(inner, chunk_dims.x);
  put_u64(inner, chunk_dims.y);
  put_u64(inner, chunk_dims.z);
  put_f64(inner, 1e-6);  // quality
  put_u32(inner, 1);     // nchunks
  put_u64(inner, 0);     // entry 0: speck_len
  put_u64(inner, 0);     // entry 0: outlier_len

  std::vector<uint8_t> out;
  put_u32(out, 0x5a525053);  // 'SPRZ'
  put_u8(out, 2);            // v2: no header checksum to forge
  put_u8(out, 0);            // lossless pass: off
  put_u64(out, inner.size());
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

/// Reference lossless framing declaring `raw_size` decoded bytes out of a
/// 25-byte stream.
std::vector<uint8_t> bomb_reference_stream(uint64_t raw_size) {
  std::vector<uint8_t> s;
  put_u8(s, 1);  // kModeLz
  put_u64(s, raw_size);
  for (int i = 0; i < 16; ++i) put_u8(s, 0xa5);
  return s;
}

/// Run `fn` and require it to answer resource_exhausted within `budget_ms`
/// of wall clock — a bomb rejection must cost header-parse time, not
/// allocation or decode time.
template <class Fn>
void expect_fast_rejection(const char* what, Fn&& fn, int64_t budget_ms = 250) {
  const auto t0 = std::chrono::steady_clock::now();
  const Status s = fn();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_EQ(s, Status::resource_exhausted) << what;
  EXPECT_LT(ms, budget_ms) << what << " took " << ms << " ms to reject";
}

[[nodiscard]] long peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

TEST(ResourceLimits, MemoryBudgetGrantsAtomicallyAndReleases) {
  MemoryBudget pool(1000);
  EXPECT_TRUE(pool.try_reserve(600));
  EXPECT_EQ(pool.used(), 600u);
  EXPECT_FALSE(pool.try_reserve(401));  // over by one: no partial debit
  EXPECT_EQ(pool.used(), 600u);
  EXPECT_TRUE(pool.try_reserve(400));
  EXPECT_EQ(pool.available(), 0u);
  pool.release(1000);
  EXPECT_EQ(pool.used(), 0u);

  // Reservation RAII: the grant dies with the object.
  {
    Reservation r;
    EXPECT_TRUE(r.acquire(&pool, 999));
    EXPECT_EQ(pool.used(), 999u);
    Reservation moved = std::move(r);
    EXPECT_EQ(pool.used(), 999u);  // move transfers, never double-releases
  }
  EXPECT_EQ(pool.used(), 0u);

  // Null budget: always granted, nothing tracked.
  Reservation r;
  EXPECT_TRUE(r.acquire(nullptr, UINT64_MAX));
}

TEST(ResourceLimits, ExpansionCheckSurvivesOverflowingDeclarations) {
  const ResourceLimits& rl = ResourceLimits::defaults();
  // A 25-byte stream declaring UINT64_MAX raw must not overflow the check.
  EXPECT_FALSE(rl.admits_expansion(25, UINT64_MAX));
  EXPECT_FALSE(rl.admits_expansion(0, uint64_t(2) << 20));
  // The 1 MiB floor: tiny legitimate streams are never pinched.
  EXPECT_TRUE(rl.admits_expansion(1, uint64_t(1) << 20));
  // The encoder's own per-block bound (4096x) passes exactly.
  EXPECT_TRUE(rl.admits_expansion(1 << 10, uint64_t(4096) << 10));
}

TEST(Robustness, BombHugeDimsRejectedFastByEveryDecoder) {
  // 96 bytes declaring 2^21 x 2^21 x 1 doubles = 32 TiB of output.
  const auto bomb =
      bomb_container({size_t(1) << 21, size_t(1) << 21, 1}, {256, 256, 256});
  ASSERT_LE(bomb.size(), size_t(1024));
  const long rss_before = peak_rss_kb();

  expect_fast_rejection("decompress<double>", [&] {
    std::vector<double> out;
    Dims od;
    return decompress(bomb.data(), bomb.size(), out, od);
  });
  expect_fast_rejection("decompress<float>", [&] {
    std::vector<float> out;
    Dims od;
    return decompress(bomb.data(), bomb.size(), out, od);
  });
  expect_fast_rejection("decompress_tolerant", [&] {
    std::vector<double> out;
    Dims od;
    return decompress_tolerant(bomb.data(), bomb.size(), Recovery::zero_fill,
                               out, od);
  });
  expect_fast_rejection("verify_container", [&] {
    return verify_container(bomb.data(), bomb.size());
  });
  expect_fast_rejection("decompress_lowres", [&] {
    std::vector<double> out;
    Dims od;
    return decompress_lowres(bomb.data(), bomb.size(), 1, out, od);
  });

  // None of the rejections may have touched the declared 32 TiB: peak RSS
  // must not have grown by more than scratch noise.
  EXPECT_LT(peak_rss_kb() - rss_before, 64 * 1024)
      << "bomb rejection grew peak RSS";
}

TEST(Robustness, BombChunkGridExplosionRejected) {
  // Plausible output size, but 2^32 one-voxel chunks: enumerating the grid
  // (32 bytes of directory bookkeeping per chunk) is itself the bomb.
  const auto bomb =
      bomb_container({size_t(1) << 20, size_t(1) << 12, 1}, {1, 1, 1});
  expect_fast_rejection("chunk-grid bomb", [&] {
    std::vector<double> out;
    Dims od;
    return decompress(bomb.data(), bomb.size(), out, od);
  });
  expect_fast_rejection("chunk-grid bomb (verify)", [&] {
    return verify_container(bomb.data(), bomb.size());
  });
}

TEST(Robustness, BombLosslessRawSizeRejected) {
  // The reference framing's declared raw size is gated against the
  // expansion cap immediately: 25 bytes cannot legitimately decode to 2 TiB.
  const auto stream = bomb_reference_stream(uint64_t(1) << 41);
  expect_fast_rejection("lossless reference bomb", [&] {
    std::vector<uint8_t> out;
    return lossless::decompress(stream, out);
  });

  // The same stream smuggled in as a container's lossless payload.
  std::vector<uint8_t> container;
  put_u32(container, 0x5a525053);  // 'SPRZ'
  put_u8(container, 3);
  put_u8(container, 1);  // lossless pass: on
  put_u64(container, stream.size());
  container.insert(container.end(), stream.begin(), stream.end());
  expect_fast_rejection("container-wrapped lossless bomb", [&] {
    std::vector<double> out;
    Dims od;
    return decompress(container.data(), container.size(), out, od);
  });
}

TEST(Robustness, BombTightLimitsRejectLegitimateOversize) {
  // The per-call ceilings work on honest streams too: a valid container
  // whose decoded field exceeds a caller's ResourceLimits is refused
  // before decode, not after.
  const auto blob = make_blob();  // 24*24*12 doubles = 54 KiB decoded
  ResourceLimits tight;
  tight.max_output_bytes = 16 << 10;
  tight.max_working_bytes = 16 << 10;
  std::vector<double> out;
  Dims od;
  EXPECT_EQ(decompress(blob.data(), blob.size(), out, od, &tight),
            Status::resource_exhausted);
  // Under the defaults the same bytes decode fine.
  EXPECT_EQ(decompress(blob.data(), blob.size(), out, od), Status::ok);
}

TEST(Robustness, BombServerAnswersResourceExhaustedOnWire) {
  using namespace server;
  ServerConfig sc;
  sc.workers = 1;
  sc.queue_capacity = 4;
  Server srv(sc);
  ASSERT_EQ(srv.start(), Status::ok);
  const int fd = connect_loopback(srv.port());
  ASSERT_GE(fd, 0);

  const auto bomb =
      bomb_container({size_t(1) << 21, size_t(1) << 21, 1}, {256, 256, 256});
  FrameHeader h;
  std::vector<uint8_t> reply;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(roundtrip(fd, Opcode::decompress, 1,
                        build_decompress_body(0, 8, bomb.data(), bomb.size()),
                        h, reply));
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_EQ(h.code, uint8_t(WireStatus::resource_exhausted));
  EXPECT_TRUE(reply.empty());
  EXPECT_LT(ms, 250) << "wire bomb rejection took " << ms << " ms";

  // A bomb is an answered request, not a dropped connection: the same
  // socket keeps working, and STATS accounts the rejection.
  ASSERT_TRUE(roundtrip(fd, Opcode::verify, 2, bomb, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::resource_exhausted));
  ASSERT_TRUE(roundtrip(fd, Opcode::stats, 3, {}, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
  StatsSnapshot snap;
  ASSERT_TRUE(StatsSnapshot::parse(reply.data(), reply.size(), snap));
  EXPECT_EQ(snap.resource_exhausted, 2u);
  EXPECT_EQ(snap.errors, 2u);
  ::close(fd);
}

TEST(Robustness, BombServerMemoryBudgetBoundsHonestRequests) {
  using namespace server;
  const auto blob = make_blob();  // decodes to 54 KiB

  // A per-request output ceiling below the honest decode size: status 8.
  ServerConfig sc;
  sc.workers = 1;
  sc.queue_capacity = 4;
  sc.max_output_bytes = 16 << 10;
  Server srv(sc);
  ASSERT_EQ(srv.start(), Status::ok);
  const int fd = connect_loopback(srv.port());
  ASSERT_GE(fd, 0);
  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(roundtrip(fd, Opcode::decompress, 1,
                        build_decompress_body(0, 8, blob.data(), blob.size()),
                        h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::resource_exhausted));
  ::close(fd);

  // A generous ceiling admits the same request.
  ServerConfig ok_cfg;
  ok_cfg.workers = 1;
  ok_cfg.queue_capacity = 4;
  ok_cfg.max_output_bytes = 1 << 20;
  ok_cfg.max_memory_bytes = 4 << 20;
  Server ok_srv(ok_cfg);
  ASSERT_EQ(ok_srv.start(), Status::ok);
  const int fd2 = connect_loopback(ok_srv.port());
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(roundtrip(fd2, Opcode::decompress, 1,
                        build_decompress_body(0, 8, blob.data(), blob.size()),
                        h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
  // Reply = 24-byte dims prefix + the decoded f64 field.
  EXPECT_EQ(reply.size(), 24 + size_t(24) * 24 * 12 * 8);
  ::close(fd2);
}

}  // namespace
}  // namespace sperr
