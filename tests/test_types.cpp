#include "common/types.h"

#include <gtest/gtest.h>

namespace sperr {
namespace {

TEST(Dims, TotalAndRank) {
  EXPECT_EQ(Dims(10).total(), 10u);
  EXPECT_EQ(Dims(10).rank(), 1);
  EXPECT_EQ(Dims(4, 5).total(), 20u);
  EXPECT_EQ(Dims(4, 5).rank(), 2);
  EXPECT_EQ(Dims(2, 3, 4).total(), 24u);
  EXPECT_EQ(Dims(2, 3, 4).rank(), 3);
  EXPECT_EQ(Dims(1, 1, 7).rank(), 1);  // rank counts non-degenerate axes
  EXPECT_EQ(Dims(1).rank(), 0);
}

TEST(Dims, IndexIsXFastest) {
  const Dims d{4, 3, 2};
  EXPECT_EQ(d.index(0, 0, 0), 0u);
  EXPECT_EQ(d.index(1, 0, 0), 1u);
  EXPECT_EQ(d.index(0, 1, 0), 4u);
  EXPECT_EQ(d.index(0, 0, 1), 12u);
  EXPECT_EQ(d.index(3, 2, 1), 23u);
}

TEST(Dims, IndexIsBijectiveOverTheGrid) {
  const Dims d{5, 7, 3};
  std::vector<bool> seen(d.total(), false);
  for (size_t z = 0; z < d.z; ++z)
    for (size_t y = 0; y < d.y; ++y)
      for (size_t x = 0; x < d.x; ++x) {
        const size_t i = d.index(x, y, z);
        ASSERT_LT(i, d.total());
        ASSERT_FALSE(seen[i]);
        seen[i] = true;
      }
}

TEST(PlausibleDims, AcceptsRealVolumesRejectsGarbage) {
  EXPECT_TRUE(plausible_dims(Dims{1, 1, 1}));
  EXPECT_TRUE(plausible_dims(Dims{3072, 3072, 3072}));  // the paper's Miranda
  EXPECT_FALSE(plausible_dims(Dims{0, 4, 4}));
  EXPECT_FALSE(plausible_dims(Dims{kMaxAxisExtent + 1, 1, 1}));
  // Each axis legal but the product overflows the element cap.
  EXPECT_FALSE(plausible_dims(Dims{kMaxAxisExtent, kMaxAxisExtent, kMaxAxisExtent}));
}

TEST(Status, ToStringCoversAllValues) {
  EXPECT_STREQ(to_string(Status::ok), "ok");
  EXPECT_STREQ(to_string(Status::truncated_stream), "truncated_stream");
  EXPECT_STREQ(to_string(Status::corrupt_stream), "corrupt_stream");
  EXPECT_STREQ(to_string(Status::invalid_argument), "invalid_argument");
}

}  // namespace
}  // namespace sperr
