#include "outlier/coder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "common/rng.h"

namespace sperr::outlier {
namespace {

std::vector<Outlier> random_outliers(uint64_t array_len, size_t count, double t,
                                     uint64_t seed, double max_factor = 100.0) {
  Rng rng(seed);
  std::map<uint64_t, double> unique;
  while (unique.size() < count) {
    const uint64_t pos = rng.below(array_len);
    // |corr| strictly greater than t (they would not be outliers otherwise).
    const double mag = t * (1.0 + rng.uniform() * max_factor);
    unique[pos] = rng.uniform() < 0.5 ? -mag : mag;
  }
  std::vector<Outlier> out;
  out.reserve(count);
  for (const auto& [pos, corr] : unique) out.push_back({pos, corr});
  return out;
}

void expect_bounded_roundtrip(const std::vector<Outlier>& outliers,
                              uint64_t array_len, double t) {
  const auto stream = encode(outliers, array_len, t);
  std::vector<Outlier> decoded;
  ASSERT_EQ(decode(stream.data(), stream.size(), array_len, decoded), Status::ok);
  ASSERT_EQ(decoded.size(), outliers.size());

  auto sorted = outliers;
  std::sort(sorted.begin(), sorted.end(),
            [](const Outlier& a, const Outlier& b) { return a.pos < b.pos; });
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(decoded[i].pos, sorted[i].pos) << "outlier " << i;
    // The central guarantee (paper §IV-B): |corr_decoded - corr| <= t/2.
    EXPECT_LE(std::fabs(decoded[i].corr - sorted[i].corr), t / 2 + 1e-12)
        << "outlier " << i << " corr " << sorted[i].corr << " decoded "
        << decoded[i].corr;
    EXPECT_EQ(std::signbit(decoded[i].corr), std::signbit(sorted[i].corr));
  }
}

TEST(OutlierCoder, NoOutliersEmptyStream) {
  const auto stream = encode({}, 1000, 0.5);
  std::vector<Outlier> decoded = {{1, 2.0}};  // must be cleared
  ASSERT_EQ(decode(stream.data(), stream.size(), 1000, decoded), Status::ok);
  EXPECT_TRUE(decoded.empty());
}

TEST(OutlierCoder, SingleOutlier) {
  expect_bounded_roundtrip({{123, 7.7}}, 1000, 1.0);
}

TEST(OutlierCoder, OutlierAtArrayEnds) {
  expect_bounded_roundtrip({{0, -3.0}, {999, 3.0}}, 1000, 1.0);
}

TEST(OutlierCoder, ArrayLengthOne) {
  expect_bounded_roundtrip({{0, 42.0}}, 1, 1.0);
}

TEST(OutlierCoder, AdjacentOutliers) {
  expect_bounded_roundtrip({{500, 2.5}, {501, -2.5}, {502, 9.0}}, 1000, 1.0);
}

TEST(OutlierCoder, AllPositionsAreOutliers) {
  std::vector<Outlier> outliers;
  Rng rng(4);
  for (uint64_t i = 0; i < 64; ++i)
    outliers.push_back({i, (rng.uniform() < 0.5 ? -1.0 : 1.0) * (1.5 + rng.uniform())});
  expect_bounded_roundtrip(outliers, 64, 1.0);
}

class OutlierSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t, double>> {};

TEST_P(OutlierSweep, BoundedRoundTrip) {
  const auto [len, count, t] = GetParam();
  expect_bounded_roundtrip(random_outliers(len, count, t, len + count), len, t);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, OutlierSweep,
    ::testing::Values(std::make_tuple(uint64_t(100), size_t(5), 1.0),
                      std::make_tuple(uint64_t(1000), size_t(100), 0.5),
                      std::make_tuple(uint64_t(65536), size_t(1000), 1e-3),
                      std::make_tuple(uint64_t(1 << 20), size_t(5000), 1e-6),
                      std::make_tuple(uint64_t(999983), size_t(777), 2.5),  // prime length
                      std::make_tuple(uint64_t(4096), size_t(4096 / 2), 1e-2)));

TEST(OutlierCoder, TinyTolerancesStayBounded) {
  const double t = 3.64e-11;  // the paper's Fig. 2 setting
  expect_bounded_roundtrip(random_outliers(1 << 16, 500, t, 99), 1 << 16, t);
}

TEST(OutlierCoder, HugeCorrectionMagnitudeRange) {
  // Corrections spanning many bitplanes (10^6 x the tolerance).
  expect_bounded_roundtrip(random_outliers(10000, 100, 1e-3, 5, 1e6), 10000, 1e-3);
}

TEST(OutlierCoder, CostPerOutlierIsModest) {
  // The paper reports ~6-16 bits per outlier (Fig. 4). Verify our coder is
  // in that ballpark for a typical density (~1% outliers).
  const uint64_t len = 1 << 18;
  const auto outliers = random_outliers(len, len / 100, 1.0, 77, 3.0);
  EncodeStats stats;
  (void)encode(outliers, len, 1.0, &stats);
  const double bits_per_outlier =
      double(stats.payload_bits) / double(stats.num_outliers);
  EXPECT_GT(bits_per_outlier, 3.0);
  EXPECT_LT(bits_per_outlier, 24.0);
}

TEST(OutlierCoder, HugeSparseArrayStaysCheap) {
  // A few outliers in a (virtually) enormous array: the range-splitting
  // depth is log2(N) ~ 40, but cost must stay tens of bits per outlier, and
  // encoding must complete instantly (sets with no outliers are never
  // subdivided).
  const uint64_t len = uint64_t(1) << 40;
  std::vector<Outlier> outliers = {
      {0, 5.0}, {len / 3, -2.0}, {len - 1, 9.9}};
  EncodeStats stats;
  const auto stream = encode(outliers, len, 1.0, &stats);
  // ~log2(N)=40 split bits per outlier plus sibling re-tests per plane —
  // still a few hundred bits per outlier, not millions of set tests.
  EXPECT_LT(stats.payload_bits, 2000u);
  std::vector<Outlier> decoded;
  ASSERT_EQ(decode(stream.data(), stream.size(), len, decoded), Status::ok);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].pos, 0u);
  EXPECT_EQ(decoded[1].pos, len / 3);
  EXPECT_EQ(decoded[2].pos, len - 1);
}

TEST(OutlierCoder, CorrectionsJustAboveToleranceBoundary) {
  // |corr| barely above t: the coder must still classify them significant
  // at the final threshold and bound them by t/2.
  const double t = 0.125;
  std::vector<Outlier> outliers;
  for (uint64_t i = 0; i < 32; ++i)
    outliers.push_back({i * 31, (i % 2 ? 1.0 : -1.0) * t * (1.0 + 1e-12 + 1e-3 * double(i))});
  expect_bounded_roundtrip(outliers, 1024, t);
}

TEST(OutlierCoder, StreamIsSelfContained) {
  const auto outliers = random_outliers(5000, 50, 0.25, 8);
  const auto stream = encode(outliers, 5000, 0.25);
  // Decoding requires only the stream and the array length.
  std::vector<Outlier> decoded;
  ASSERT_EQ(decode(stream.data(), stream.size(), 5000, decoded), Status::ok);
  EXPECT_EQ(decoded.size(), outliers.size());
}

TEST(OutlierCoder, GarbageRejected) {
  std::vector<uint8_t> garbage = {0, 1, 2, 3};
  std::vector<Outlier> decoded;
  EXPECT_NE(decode(garbage.data(), garbage.size(), 100, decoded), Status::ok);
}

}  // namespace
}  // namespace sperr::outlier
