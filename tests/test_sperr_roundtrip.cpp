#include "sperr/sperr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stats.h"
#include "data/synthetic.h"

namespace sperr {
namespace {

double max_abs_err(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

TEST(SperrRoundTrip, PweGuaranteeOnSmoothField) {
  const Dims dims{48, 48, 48};
  const auto field = data::miranda_pressure(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 10);

  Stats stats;
  const auto blob = compress(field.data(), dims, cfg, &stats);
  EXPECT_GT(stats.compressed_bytes, 0u);
  EXPECT_LT(stats.compressed_bytes, field.size() * sizeof(double));

  std::vector<double> recon;
  Dims out_dims;
  ASSERT_EQ(decompress(blob.data(), blob.size(), recon, out_dims), Status::ok);
  EXPECT_EQ(out_dims, dims);
  ASSERT_EQ(recon.size(), field.size());
  EXPECT_LE(max_abs_err(field, recon), cfg.tolerance);
}

TEST(SperrRoundTrip, PweGuaranteeWithChunking) {
  // Volume not divisible by the chunk size: exercises remainder chunks.
  const Dims dims{70, 50, 30};
  const auto field = data::s3d_temperature(dims);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 15);
  cfg.chunk_dims = Dims{32, 32, 32};

  Stats stats;
  const auto blob = compress(field.data(), dims, cfg, &stats);
  EXPECT_GT(stats.num_chunks, 1u);

  std::vector<double> recon;
  Dims out_dims;
  ASSERT_EQ(decompress(blob.data(), blob.size(), recon, out_dims), Status::ok);
  EXPECT_LE(max_abs_err(field, recon), cfg.tolerance);
}

TEST(SperrRoundTrip, TwoDimensionalSlice) {
  const Dims dims{128, 96, 1};
  const auto field = data::lighthouse_2d(dims);
  Config cfg;
  cfg.tolerance = 0.5;  // half a grey level

  const auto blob = compress(field.data(), dims, cfg);
  std::vector<double> recon;
  Dims out_dims;
  ASSERT_EQ(decompress(blob.data(), blob.size(), recon, out_dims), Status::ok);
  EXPECT_EQ(out_dims, dims);
  EXPECT_LE(max_abs_err(field, recon), cfg.tolerance);
}

TEST(SperrRoundTrip, OneDimensionalSignal) {
  const Dims dims{4096, 1, 1};
  Rng rng(3);
  std::vector<double> field(dims.total());
  double v = 0;
  for (auto& f : field) {
    v += rng.gaussian() * 0.1;  // random walk: smooth-ish
    f = v;
  }
  Config cfg;
  cfg.tolerance = 1e-3;
  const auto blob = compress(field.data(), dims, cfg);
  std::vector<double> recon;
  Dims out_dims;
  ASSERT_EQ(decompress(blob.data(), blob.size(), recon, out_dims), Status::ok);
  EXPECT_LE(max_abs_err(field, recon), cfg.tolerance);
}

TEST(SperrRoundTrip, FloatInputRoundTrips) {
  const Dims dims{32, 32, 32};
  const auto field64 = data::nyx_dark_matter_density(dims);
  std::vector<float> field32(field64.begin(), field64.end());

  Config cfg;
  cfg.tolerance = tolerance_from_idx(field32.data(), field32.size(), 10);
  const auto blob = compress(field32.data(), dims, cfg);

  std::vector<float> recon;
  Dims out_dims;
  ASSERT_EQ(decompress(blob.data(), blob.size(), recon, out_dims), Status::ok);
  ASSERT_EQ(recon.size(), field32.size());
  double max_err = 0;
  for (size_t i = 0; i < recon.size(); ++i)
    max_err = std::max(max_err, std::fabs(double(field32[i]) - double(recon[i])));
  // Float conversion may add up to 1 ulp on top of the guarantee.
  EXPECT_LE(max_err, cfg.tolerance * (1.0 + 1e-5));
}

TEST(SperrRoundTrip, FixedRateModeHonoursBudget) {
  const Dims dims{64, 64, 64};
  const auto field = data::miranda_density(dims);
  Config cfg;
  cfg.mode = Mode::fixed_rate;
  cfg.bpp = 2.0;

  Stats stats;
  const auto blob = compress(field.data(), dims, cfg, &stats);
  // Final size must be near (at or under) the requested rate; the lossless
  // pass and headers add slack in both directions.
  EXPECT_LE(stats.bpp, cfg.bpp * 1.05 + 0.1);

  std::vector<double> recon;
  Dims out_dims;
  ASSERT_EQ(decompress(blob.data(), blob.size(), recon, out_dims), Status::ok);
  // No error guarantee, but reconstruction must be sane.
  const auto q = [&] {
    double sq = 0;
    for (size_t i = 0; i < field.size(); ++i) {
      const double e = field[i] - recon[i];
      sq += e * e;
    }
    return std::sqrt(sq / double(field.size()));
  }();
  FieldStats fs = compute_stats(field.data(), field.size());
  EXPECT_LT(q, fs.stddev());  // better than predicting the mean
}

TEST(SperrRoundTrip, FixedRateErrorDecreasesWithRate) {
  const Dims dims{48, 48, 48};
  const auto field = data::miranda_viscosity(dims);
  double prev_rmse = 1e300;
  for (double bpp : {0.5, 1.0, 2.0, 4.0}) {
    Config cfg;
    cfg.mode = Mode::fixed_rate;
    cfg.bpp = bpp;
    const auto blob = compress(field.data(), dims, cfg);
    std::vector<double> recon;
    Dims od;
    ASSERT_EQ(decompress(blob.data(), blob.size(), recon, od), Status::ok);
    double sq = 0;
    for (size_t i = 0; i < field.size(); ++i) {
      const double e = field[i] - recon[i];
      sq += e * e;
    }
    const double rmse = std::sqrt(sq / double(field.size()));
    EXPECT_LT(rmse, prev_rmse) << "bpp " << bpp;
    prev_rmse = rmse;
  }
}

TEST(SperrRoundTrip, LosslessPassTogglePreservesResults) {
  const Dims dims{32, 32, 8};
  const auto field = data::s3d_ch4(dims);
  for (bool lossless : {false, true}) {
    Config cfg;
    cfg.tolerance = 1e-4;
    cfg.lossless_pass = lossless;
    const auto blob = compress(field.data(), dims, cfg);
    std::vector<double> recon;
    Dims od;
    ASSERT_EQ(decompress(blob.data(), blob.size(), recon, od), Status::ok);
    EXPECT_LE(max_abs_err(field, recon), cfg.tolerance);
  }
}

TEST(SperrRoundTrip, InvalidConfigThrows) {
  const Dims dims{8, 8, 8};
  std::vector<double> field(dims.total(), 1.0);
  Config bad;
  bad.tolerance = 0.0;
  EXPECT_THROW((void)compress(field.data(), dims, bad), std::invalid_argument);
  Config bad_rate;
  bad_rate.mode = Mode::fixed_rate;
  bad_rate.bpp = -1.0;
  EXPECT_THROW((void)compress(field.data(), dims, bad_rate), std::invalid_argument);
}

TEST(SperrRoundTrip, NonFiniteInputRejected) {
  const Dims dims{8, 8, 8};
  Config cfg;
  cfg.tolerance = 1e-3;
  std::vector<double> with_nan(dims.total(), 1.0);
  with_nan[100] = std::nan("");
  EXPECT_THROW((void)compress(with_nan.data(), dims, cfg), std::invalid_argument);
  std::vector<double> with_inf(dims.total(), 1.0);
  with_inf[7] = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)compress(with_inf.data(), dims, cfg), std::invalid_argument);
}

TEST(SperrRoundTrip, CorruptStreamRejected) {
  std::vector<uint8_t> garbage(100, 0x5a);
  std::vector<double> out;
  Dims dims;
  EXPECT_NE(decompress(garbage.data(), garbage.size(), out, dims), Status::ok);
}

TEST(SperrRoundTrip, TamperedPayloadDetectedOrBounded) {
  const Dims dims{32, 32, 1};
  const auto field = data::lighthouse_2d(dims);
  Config cfg;
  cfg.tolerance = 0.5;
  cfg.lossless_pass = false;  // tamper with the raw coder payload
  auto blob = compress(field.data(), dims, cfg);
  blob[blob.size() / 2] ^= 0xff;
  std::vector<double> recon;
  Dims od;
  // A flipped payload byte may still "decode" (entropy-coded bits have no
  // checksum) but must never crash and must return a full-size field.
  const Status s = decompress(blob.data(), blob.size(), recon, od);
  if (s == Status::ok) {
    EXPECT_EQ(recon.size(), field.size());
  }
}

TEST(Tolerance, TableOneTranslation) {
  std::vector<double> field = {0.0, 1024.0};  // range 1024
  EXPECT_DOUBLE_EQ(tolerance_from_idx(field.data(), field.size(), 10), 1.0);
  EXPECT_DOUBLE_EQ(tolerance_from_idx(field.data(), field.size(), 20),
                   1024.0 / (1024.0 * 1024.0));
}

}  // namespace
}  // namespace sperr
