// Invariants of the per-thread scratch arena the chunked hot paths rely on:
// alignment of every pointer, non-moving growth, Scope rewind semantics, and
// the coalescing reset() that makes steady-state chunk loops allocation-free.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/arena.h"

namespace sperr {
namespace {

bool aligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % Arena::kAlignment == 0;
}

TEST(Arena, EveryPointerIsCacheLineAligned) {
  Arena a;
  // Deliberately odd sizes so round-up is exercised, plus a zero-byte ask.
  for (const size_t bytes : {1ul, 3ul, 63ul, 64ul, 65ul, 1000ul, 0ul}) {
    void* p = a.allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned(p)) << "allocate(" << bytes << ")";
  }
  EXPECT_TRUE(aligned(a.alloc<double>(17)));
  EXPECT_TRUE(aligned(a.alloc<uint8_t>(1)));
}

TEST(Arena, GrowthDoesNotMoveLiveAllocations) {
  Arena a;
  double* first = a.alloc<double>(100);
  for (size_t i = 0; i < 100; ++i) first[i] = double(i) * 0.5;

  // Force several growth blocks while `first` is live.
  for (int i = 0; i < 8; ++i) a.alloc<double>(1 << 16);

  for (size_t i = 0; i < 100; ++i)
    ASSERT_EQ(first[i], double(i) * 0.5) << "growth moved or clobbered data";
}

TEST(Arena, ScopeRewindsNestedAllocationsOnly) {
  Arena a;
  double* outer = a.alloc<double>(8);
  outer[0] = 42.0;
  const size_t used_outer = a.used();

  {
    Arena::Scope s(a);
    double* inner = a.alloc<double>(1 << 15);  // forces growth mid-scope
    inner[0] = 1.0;
    EXPECT_GT(a.used(), used_outer);
  }
  EXPECT_EQ(a.used(), used_outer);
  EXPECT_EQ(outer[0], 42.0);

  // Space released by the scope is reusable without new system allocations.
  const size_t allocs = a.system_alloc_count();
  a.alloc<double>(1 << 15);
  EXPECT_EQ(a.system_alloc_count(), allocs);
}

TEST(Arena, ResetCoalescesBlocksAndRetainsCapacity) {
  Arena a;
  // Provoke multiple blocks.
  a.alloc<double>(1 << 13);
  a.alloc<double>(1 << 14);
  a.alloc<double>(1 << 15);
  a.alloc<double>(1 << 16);
  const size_t cap = a.capacity();
  ASSERT_GT(cap, 0u);

  a.reset();
  EXPECT_EQ(a.used(), 0u);
  EXPECT_GE(a.capacity(), cap) << "reset must not shrink capacity";

  // A second reset on the now-single block must not re-allocate.
  const size_t allocs = a.system_alloc_count();
  a.reset();
  EXPECT_EQ(a.system_alloc_count(), allocs);
}

TEST(Arena, SteadyStateWorkloadIsAllocationFree) {
  // Model a chunk loop: same allocation pattern every iteration, reset in
  // between. After one warm-up + reset (which coalesces), the system
  // allocation count must freeze.
  Arena a;
  auto iteration = [&a] {
    a.alloc<double>(4096);
    {
      Arena::Scope s(a);
      a.alloc<double>(32 * 256);
      a.alloc<double>(32 * 256);
    }
    a.alloc<uint8_t>(513);
    a.reset();
  };

  iteration();  // warm-up: grows and coalesces
  iteration();  // single-block steady state reached
  const size_t allocs = a.system_alloc_count();
  for (int i = 0; i < 16; ++i) iteration();
  EXPECT_EQ(a.system_alloc_count(), allocs);
}

TEST(Arena, PreSizedConstructorAvoidsGrowth) {
  Arena a(1 << 20);
  const size_t allocs = a.system_alloc_count();
  EXPECT_EQ(allocs, 1u);
  a.alloc<double>((1 << 20) / sizeof(double));
  EXPECT_EQ(a.system_alloc_count(), allocs);
}

TEST(Arena, TlsArenaIsPerThreadAndPersistent) {
  Arena& first = tls_arena();
  Arena& second = tls_arena();
  EXPECT_EQ(&first, &second);
}

}  // namespace
}  // namespace sperr
