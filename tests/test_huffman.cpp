#include "lossless/huffman.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace sperr::lossless {
namespace {

// Kraft inequality must hold for any generated code.
double kraft_sum(const std::vector<uint8_t>& lengths) {
  double k = 0;
  for (auto l : lengths)
    if (l) k += std::ldexp(1.0, -int(l));
  return k;
}

TEST(HuffmanLengths, EmptyFrequencies) {
  EXPECT_TRUE(huffman_code_lengths({}).empty());
  const auto lengths = huffman_code_lengths({0, 0, 0});
  EXPECT_EQ(lengths, (std::vector<uint8_t>{0, 0, 0}));
}

TEST(HuffmanLengths, SingleSymbolGetsOneBit) {
  const auto lengths = huffman_code_lengths({0, 42, 0});
  EXPECT_EQ(lengths, (std::vector<uint8_t>{0, 1, 0}));
}

TEST(HuffmanLengths, TwoEqualSymbols) {
  const auto lengths = huffman_code_lengths({5, 5});
  EXPECT_EQ(lengths, (std::vector<uint8_t>{1, 1}));
}

TEST(HuffmanLengths, SkewedDistributionIsShorterForFrequent) {
  const auto lengths = huffman_code_lengths({1000, 10, 10, 1});
  EXPECT_LT(lengths[0], lengths[3]);
  EXPECT_LE(kraft_sum(lengths), 1.0 + 1e-12);
}

TEST(HuffmanLengths, LengthLimitEnforcedOnFibonacciWeights) {
  // Fibonacci-like frequencies force maximal tree depth without a limit.
  std::vector<uint64_t> freq;
  uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freq.push_back(a);
    const uint64_t c = a + b;
    a = b;
    b = c;
  }
  const auto lengths = huffman_code_lengths(freq);
  for (auto l : lengths) EXPECT_LE(l, kMaxCodeLen);
  EXPECT_LE(kraft_sum(lengths), 1.0 + 1e-12);
}

TEST(HuffmanCanonical, CodesAreCanonicalAndPrefixFree) {
  const auto lengths = huffman_code_lengths({40, 30, 20, 10, 5, 1});
  const auto codes = canonical_codes(lengths);
  // Within the same length, codes increase with symbol index; across
  // lengths, shorter codes are numerically smaller prefixes.
  for (size_t i = 0; i < lengths.size(); ++i)
    for (size_t j = i + 1; j < lengths.size(); ++j) {
      if (!lengths[i] || !lengths[j]) continue;
      // No code may be a prefix of another.
      const unsigned li = lengths[i], lj = lengths[j];
      const unsigned shared = std::min(li, lj);
      EXPECT_NE(codes[i] >> (li - shared), codes[j] >> (lj - shared))
          << "symbols " << i << " and " << j;
    }
}

TEST(HuffmanRoundTrip, UniformAlphabet) {
  const size_t n = 300;
  std::vector<uint64_t> freq(n, 1);
  const auto lengths = huffman_code_lengths(freq);
  const HuffmanEncoder enc(lengths);
  const HuffmanDecoder dec(lengths);
  ASSERT_TRUE(dec.valid());

  BitWriter bw;
  for (uint32_t s = 0; s < n; ++s) enc.encode(bw, s);
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  for (uint32_t s = 0; s < n; ++s) EXPECT_EQ(dec.decode(br), int32_t(s));
}

TEST(HuffmanRoundTrip, RandomSkewedStream) {
  Rng rng(31);
  const size_t alphabet = 600;
  std::vector<uint64_t> freq(alphabet, 0);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    // Zipf-ish skew.
    const auto s = uint32_t(rng.below(alphabet) * rng.below(alphabet) / alphabet);
    symbols.push_back(s);
    ++freq[s];
  }
  const auto lengths = huffman_code_lengths(freq);
  const HuffmanEncoder enc(lengths);
  const HuffmanDecoder dec(lengths);
  ASSERT_TRUE(dec.valid());

  BitWriter bw;
  for (auto s : symbols) enc.encode(bw, s);
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  for (auto s : symbols) ASSERT_EQ(dec.decode(br), int32_t(s));
}

TEST(HuffmanRoundTrip, CompressionBeatsFixedWidthOnSkewedData) {
  std::vector<uint64_t> freq = {10000, 100, 50, 10, 5, 1, 1, 1};
  const auto lengths = huffman_code_lengths(freq);
  const HuffmanEncoder enc(lengths);
  uint64_t total_bits = 0, count = 0;
  for (size_t s = 0; s < freq.size(); ++s) {
    total_bits += freq[s] * enc.length_of(uint32_t(s));
    count += freq[s];
  }
  EXPECT_LT(double(total_bits) / double(count), 3.0);  // << log2(8) = 3
}

TEST(HuffmanDecoder, ExhaustedStreamReturnsError) {
  const auto lengths = huffman_code_lengths({1, 1, 1, 1});
  const HuffmanDecoder dec(lengths);
  BitReader br(nullptr, 0);
  EXPECT_EQ(dec.decode(br), -1);
}

TEST(HuffmanDecoder, SingleSymbolCode) {
  const auto lengths = huffman_code_lengths({0, 7, 0});
  const HuffmanEncoder enc(lengths);
  const HuffmanDecoder dec(lengths);
  ASSERT_TRUE(dec.valid());
  BitWriter bw;
  enc.encode(bw, 1);
  enc.encode(bw, 1);
  const auto bytes = bw.take();
  BitReader br(bytes.data(), bytes.size());
  EXPECT_EQ(dec.decode(br), 1);
  EXPECT_EQ(dec.decode(br), 1);
}

}  // namespace
}  // namespace sperr::lossless
