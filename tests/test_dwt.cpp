#include "wavelet/dwt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "wavelet/cdf97.h"

namespace sperr::wavelet {
namespace {

std::vector<double> random_field(Dims dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> f(dims.total());
  for (auto& v : f) v = rng.uniform(-100.0, 100.0);
  return f;
}

void expect_roundtrip(Dims dims, uint64_t seed, double tol = 1e-7) {
  const auto orig = random_field(dims, seed);
  auto work = orig;
  forward_dwt(work.data(), dims);
  inverse_dwt(work.data(), dims);
  double max_err = 0;
  for (size_t i = 0; i < orig.size(); ++i)
    max_err = std::max(max_err, std::fabs(work[i] - orig[i]));
  EXPECT_LT(max_err, tol) << "dims " << dims.to_string();
}

class DwtRoundTrip : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(DwtRoundTrip, PerfectReconstruction) {
  const auto [x, y, z] = GetParam();
  expect_roundtrip(Dims{x, y, z}, 17 + x + 1000 * y + 1000000 * z);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DwtRoundTrip,
    ::testing::Values(
        std::make_tuple(64, 1, 1),      // 1-D
        std::make_tuple(100, 1, 1),     // 1-D non-power-of-two
        std::make_tuple(32, 32, 1),     // 2-D square
        std::make_tuple(33, 57, 1),     // 2-D odd extents
        std::make_tuple(16, 16, 16),    // 3-D cube
        std::make_tuple(31, 17, 9),     // 3-D awkward
        std::make_tuple(64, 64, 8),     // thin slab
        std::make_tuple(8, 8, 64),      // tall column
        std::make_tuple(5, 5, 5),       // below transform threshold: no-op
        std::make_tuple(1, 64, 1),      // degenerate y-line
        std::make_tuple(128, 3, 3)));   // mixed: only x transforms

TEST(Dwt, LowpassBoxSequenceMatchesLevelPlan) {
  const Dims dims{64, 32, 8};
  const auto plan = plan_levels(dims);
  EXPECT_EQ(plan.lx, 4u);
  EXPECT_EQ(plan.ly, 3u);
  EXPECT_EQ(plan.lz, 1u);
  const auto boxes = lowpass_boxes(dims);
  ASSERT_EQ(boxes.size(), 4u);
  EXPECT_EQ(boxes[0], (Dims{64, 32, 8}));
  EXPECT_EQ(boxes[1], (Dims{32, 16, 4}));  // z exhausted after level 0
  EXPECT_EQ(boxes[2], (Dims{16, 8, 4}));
  EXPECT_EQ(boxes[3], (Dims{8, 4, 4}));
}

TEST(Dwt, ConstantVolumeConcentratesInLowpassCorner) {
  const Dims dims{32, 32, 32};
  std::vector<double> f(dims.total(), 2.0);
  forward_dwt(f.data(), dims);
  // All detail coefficients ~ 0; the approximation corner carries scaled
  // copies of the constant.
  const auto boxes = lowpass_boxes(dims);
  Dims corner = boxes.back();
  corner.x = approx_len(corner.x);
  corner.y = approx_len(corner.y);
  corner.z = approx_len(corner.z);
  double detail_energy = 0, approx_energy = 0;
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y)
      for (size_t x = 0; x < dims.x; ++x) {
        const double v = f[dims.index(x, y, z)];
        if (x < corner.x && y < corner.y && z < corner.z)
          approx_energy += v * v;
        else
          detail_energy += v * v;
      }
  EXPECT_GT(approx_energy, 1.0);
  EXPECT_NEAR(detail_energy, 0.0, 1e-15);
}

TEST(Dwt, SmoothFieldCompactsInformation) {
  // Information compaction (paper §II): for a smooth field, a small
  // fraction of coefficients must hold nearly all the energy.
  const Dims dims{64, 64, 1};
  std::vector<double> f(dims.total());
  for (size_t y = 0; y < dims.y; ++y)
    for (size_t x = 0; x < dims.x; ++x)
      f[dims.index(x, y, 0)] =
          std::sin(0.1 * double(x)) * std::cos(0.13 * double(y));
  const double total_energy = [&] {
    double e = 0;
    for (double v : f) e += v * v;
    return e;
  }();

  forward_dwt(f.data(), dims);
  std::vector<double> mags;
  mags.reserve(f.size());
  for (double v : f) mags.push_back(v * v);
  std::sort(mags.begin(), mags.end(), std::greater<>());
  double top_energy = 0;
  const size_t top = mags.size() / 20;  // top 5%
  for (size_t i = 0; i < top; ++i) top_energy += mags[i];
  EXPECT_GT(top_energy / total_energy, 0.95);
}

TEST(Dwt, EnergyApproximatelyPreserved3d) {
  const Dims dims{32, 32, 32};
  auto f = random_field(dims, 77);
  double e_in = 0;
  for (double v : f) e_in += v * v;
  forward_dwt(f.data(), dims);
  double e_out = 0;
  for (double v : f) e_out += v * v;
  EXPECT_NEAR(e_out / e_in, 1.0, 0.15);
}

}  // namespace
}  // namespace sperr::wavelet
