#include "speck/decoder.h"
#include "speck/encoder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "speck/common.h"

namespace sperr::speck {
namespace {

std::vector<double> random_coeffs(Dims dims, uint64_t seed, double scale = 100.0) {
  Rng rng(seed);
  std::vector<double> c(dims.total());
  for (auto& v : c) {
    // Heavy-tailed like real wavelet coefficients: mostly small, few large.
    const double u = rng.uniform();
    v = rng.gaussian() * scale * (u < 0.05 ? 10.0 : (u < 0.3 ? 1.0 : 0.01));
  }
  return c;
}

void expect_quantized_roundtrip(Dims dims, double q, uint64_t seed) {
  const auto coeffs = random_coeffs(dims, seed);
  const auto stream = encode(coeffs.data(), dims, q);
  std::vector<double> recon(dims.total());
  ASSERT_EQ(decode(stream.data(), stream.size(), dims, recon.data()), Status::ok);
  for (size_t i = 0; i < coeffs.size(); ++i) {
    if (std::fabs(coeffs[i]) <= q) {
      // Dead zone reconstructs to zero with error at most q.
      EXPECT_EQ(recon[i], 0.0) << "dead-zone coefficient " << i;
      EXPECT_LE(std::fabs(coeffs[i] - recon[i]), q);
    } else {
      // Mid-riser quantization: error at most q/2 (plus fp slack).
      EXPECT_LE(std::fabs(coeffs[i] - recon[i]), q / 2 + 1e-12 * std::fabs(coeffs[i]))
          << "coefficient " << i;
      // Sign must be preserved.
      EXPECT_EQ(std::signbit(coeffs[i]), std::signbit(recon[i]));
    }
  }
}

class SpeckShapes : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(SpeckShapes, FullPrecisionRoundTripWithinQuantError) {
  const auto [x, y, z] = GetParam();
  expect_quantized_roundtrip(Dims{x, y, z}, 0.5, 1 + x + 31 * y + 97 * z);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpeckShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 1, 1),
                      std::make_tuple(64, 1, 1), std::make_tuple(16, 16, 1),
                      std::make_tuple(33, 17, 1), std::make_tuple(8, 8, 8),
                      std::make_tuple(16, 16, 16), std::make_tuple(13, 9, 5),
                      std::make_tuple(32, 8, 2)));

class SpeckSteps : public ::testing::TestWithParam<double> {};

TEST_P(SpeckSteps, ArbitraryQuantizationStepsHonoured) {
  // The paper relaxes q from powers of two to arbitrary reals (§III-C).
  expect_quantized_roundtrip(Dims{16, 16, 4}, GetParam(), 99);
}

INSTANTIATE_TEST_SUITE_P(Steps, SpeckSteps,
                         ::testing::Values(0.001, 0.037, 0.5, 1.0, 1.3, 2.0,
                                           3.14159, 10.0, 127.3));

TEST(Speck, AllZeroInputProducesTinyStream) {
  const Dims dims{32, 32, 32};
  std::vector<double> zeros(dims.total(), 0.0);
  const auto stream = encode(zeros.data(), dims, 0.1);
  EXPECT_LE(stream.size(), Header::kBytes + 2);
  std::vector<double> recon(dims.total(), 1.0);
  ASSERT_EQ(decode(stream.data(), stream.size(), dims, recon.data()), Status::ok);
  for (double v : recon) EXPECT_EQ(v, 0.0);
}

TEST(Speck, DeadZoneOnlyInputProducesEmptyPayload) {
  const Dims dims{16, 16, 1};
  std::vector<double> small(dims.total(), 0.4);  // |c| <= q
  const auto stream = encode(small.data(), dims, 0.5);
  EXPECT_LE(stream.size(), Header::kBytes + 2);
}

TEST(Speck, SingleLargeCoefficientLocatedExactly) {
  const Dims dims{32, 32, 1};
  std::vector<double> c(dims.total(), 0.0);
  c[dims.index(17, 23, 0)] = -321.5;
  const auto stream = encode(c.data(), dims, 0.25);
  std::vector<double> recon(dims.total());
  ASSERT_EQ(decode(stream.data(), stream.size(), dims, recon.data()), Status::ok);
  for (size_t i = 0; i < c.size(); ++i) {
    if (i == dims.index(17, 23, 0)) {
      EXPECT_NEAR(recon[i], -321.5, 0.125);
    } else {
      EXPECT_EQ(recon[i], 0.0);
    }
  }
}

TEST(Speck, EmbeddedPrefixesDecodeWithMonotoneError) {
  // Any prefix of the stream must decode, with error non-increasing as the
  // prefix grows (the embedded property, paper §VII).
  const Dims dims{32, 32, 1};
  const auto coeffs = random_coeffs(dims, 7);
  const auto stream = encode(coeffs.data(), dims, 0.01);

  double prev_rmse = 1e300;
  for (double frac : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const size_t nbytes =
        Header::kBytes + size_t(double(stream.size() - Header::kBytes) * frac);
    std::vector<double> recon(dims.total());
    ASSERT_EQ(decode(stream.data(), nbytes, dims, recon.data()), Status::ok);
    double sq = 0;
    for (size_t i = 0; i < coeffs.size(); ++i) {
      const double e = coeffs[i] - recon[i];
      sq += e * e;
    }
    const double rmse = std::sqrt(sq / double(coeffs.size()));
    EXPECT_LE(rmse, prev_rmse * 1.0001) << "prefix fraction " << frac;
    prev_rmse = rmse;
  }
}

TEST(Speck, BudgetedEncodeStopsAtBudget) {
  const Dims dims{64, 64, 1};
  const auto coeffs = random_coeffs(dims, 8);
  const size_t budget_bits = 4096;
  EncodeStats stats;
  const auto stream = encode(coeffs.data(), dims, 0.001, budget_bits, &stats);
  EXPECT_LE(stats.payload_bits, budget_bits + 1);
  EXPECT_LE(stream.size(), Header::kBytes + budget_bits / 8 + 2);
  std::vector<double> recon(dims.total());
  EXPECT_EQ(decode(stream.data(), stream.size(), dims, recon.data()), Status::ok);
}

TEST(Speck, BudgetedStreamMatchesUnbudgetedPrefix) {
  // Size-bounded coding must be a literal truncation of the full stream:
  // the embedded property guarantees the first `budget` bits coincide.
  const Dims dims{32, 32, 2};
  const auto coeffs = random_coeffs(dims, 9);
  const auto full = encode(coeffs.data(), dims, 0.01);
  const size_t budget_bits = 2000;
  const auto cut = encode(coeffs.data(), dims, 0.01, budget_bits);
  ASSERT_LE(cut.size(), full.size());
  // Compare payload bytes (headers differ in their recorded bit counts).
  for (size_t i = Header::kBytes; i + 1 < cut.size(); ++i)
    ASSERT_EQ(cut[i], full[i]) << "payload byte " << i;
}

TEST(Speck, MoreBitsMeansFewerOutliersAgainstOriginal) {
  // Rate-distortion sanity: halving q (more planes) reduces max error.
  const Dims dims{32, 32, 1};
  const auto coeffs = random_coeffs(dims, 10);
  double prev_max = 1e300;
  for (double q : {4.0, 2.0, 1.0, 0.5, 0.25}) {
    const auto stream = encode(coeffs.data(), dims, q);
    std::vector<double> recon(dims.total());
    ASSERT_EQ(decode(stream.data(), stream.size(), dims, recon.data()), Status::ok);
    double max_err = 0;
    for (size_t i = 0; i < coeffs.size(); ++i)
      max_err = std::max(max_err, std::fabs(coeffs[i] - recon[i]));
    EXPECT_LE(max_err, prev_max + 1e-12);
    EXPECT_LE(max_err, q);
    prev_max = max_err;
  }
}

TEST(Speck, CorruptHeaderRejected) {
  std::vector<uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> recon(8);
  EXPECT_EQ(decode(garbage.data(), garbage.size(), Dims{8, 1, 1}, recon.data()),
            Status::corrupt_stream);
}

TEST(Speck, EncoderReconMatchesDecoderExactly) {
  // The encoder's exported reconstruction must be bit-identical to what a
  // decoder of the full stream produces — SPERR's outlier location relies
  // on this to skip re-decoding its own stream.
  const Dims dims{24, 24, 24};
  const auto coeffs = random_coeffs(dims, 123);
  std::vector<double> enc_recon;
  const auto stream = encode(coeffs.data(), dims, 0.05, 0, nullptr, &enc_recon);
  std::vector<double> dec_recon(dims.total());
  ASSERT_EQ(decode(stream.data(), stream.size(), dims, dec_recon.data()),
            Status::ok);
  ASSERT_EQ(enc_recon.size(), dec_recon.size());
  for (size_t i = 0; i < enc_recon.size(); ++i)
    ASSERT_EQ(enc_recon[i], dec_recon[i]) << "coefficient " << i;
}

TEST(SpeckBox, SplitCoversParentExactly) {
  Box parent;
  parent.x = 3;
  parent.y = 5;
  parent.z = 0;
  parent.nx = 7;
  parent.ny = 4;
  parent.nz = 1;
  Box children[8];
  const int n = split_box(parent, children);
  EXPECT_EQ(n, 4);  // x and y split, z degenerate
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) total += children[i].count();
  EXPECT_EQ(total, parent.count());
  // First child carries the ceil-half along each split axis.
  EXPECT_EQ(children[0].nx, 4u);
  EXPECT_EQ(children[0].ny, 2u);
}

}  // namespace
}  // namespace sperr::speck
