#include "speck/raw_bitplane.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "speck/encoder.h"

namespace sperr::speck {
namespace {

TEST(RawBitplane, SameQuantizationContractAsSpeck) {
  Rng rng(61);
  const Dims dims{16, 16, 4};
  std::vector<double> coeffs(dims.total());
  for (auto& v : coeffs) v = rng.gaussian() * 10.0;
  const double q = 0.25;

  const auto stream = raw_bitplane_encode(coeffs.data(), dims, q);
  std::vector<double> recon(dims.total());
  ASSERT_EQ(raw_bitplane_decode(stream.data(), stream.size(), dims, recon.data()),
            Status::ok);
  for (size_t i = 0; i < coeffs.size(); ++i) {
    if (std::fabs(coeffs[i]) <= q) {
      EXPECT_EQ(recon[i], 0.0);
    } else {
      EXPECT_LE(std::fabs(coeffs[i] - recon[i]), q / 2 + 1e-12);
      EXPECT_EQ(std::signbit(coeffs[i]), std::signbit(recon[i]));
    }
  }
}

TEST(RawBitplane, AllZeroInput) {
  const Dims dims{8, 8, 8};
  std::vector<double> zeros(dims.total(), 0.0);
  const auto stream = raw_bitplane_encode(zeros.data(), dims, 1.0);
  std::vector<double> recon(dims.total(), 7.0);
  ASSERT_EQ(raw_bitplane_decode(stream.data(), stream.size(), dims, recon.data()),
            Status::ok);
  for (double v : recon) EXPECT_EQ(v, 0.0);
}

TEST(RawBitplane, SpeckBeatsItOnSparseCoefficients) {
  // The whole point of set partitioning: on sparse data (a few significant
  // coefficients in a sea of zeros) SPECK's stream must be much smaller.
  Rng rng(62);
  const Dims dims{32, 32, 32};
  std::vector<double> coeffs(dims.total(), 0.0);
  for (int i = 0; i < 200; ++i)
    coeffs[rng.below(coeffs.size())] = rng.gaussian() * 100.0;

  const auto speck_stream = encode(coeffs.data(), dims, 0.5);
  const auto dense_stream = raw_bitplane_encode(coeffs.data(), dims, 0.5);
  EXPECT_LT(speck_stream.size() * 5, dense_stream.size());
}

TEST(RawBitplane, GarbageRejected) {
  std::vector<uint8_t> garbage = {1, 2, 3};
  std::vector<double> recon(8);
  EXPECT_NE(raw_bitplane_decode(garbage.data(), garbage.size(), Dims{8, 1, 1},
                                recon.data()),
            Status::ok);
}

}  // namespace
}  // namespace sperr::speck
