#include "baselines/mgardlike/compressor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "data/synthetic.h"

namespace sperr::mgardlike {
namespace {

double max_abs_err(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

class MgardShapes
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(MgardShapes, RoundTripsAndStaysNearTolerance) {
  const auto [x, y, z] = GetParam();
  const Dims dims{x, y, z};
  const auto field = data::make_field("miranda_density", dims, x + 7 * y);
  const double tol = 1e-3;
  const auto stream = compress(field.data(), dims, tol);
  std::vector<double> out;
  Dims od;
  ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
  EXPECT_EQ(od, dims);
  // Like the real MGARD, the bound is not hard (errors propagate through
  // interpolation levels); it must stay within a small multiple on smooth
  // data — the paper reports outright violations only at tight tolerances.
  EXPECT_LE(max_abs_err(field, out), 3.0 * tol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MgardShapes,
    ::testing::Values(std::make_tuple(64, 64, 64), std::make_tuple(65, 33, 17),
                      std::make_tuple(100, 1, 1), std::make_tuple(48, 48, 1),
                      std::make_tuple(1, 1, 1)));

TEST(MgardLike, TighterToleranceCostsMoreBits) {
  const Dims dims{48, 48, 48};
  const auto field = data::s3d_ch4(dims);
  size_t prev = 0;
  for (double tol : {1e-2, 1e-3, 1e-4, 1e-5}) {
    const auto stream = compress(field.data(), dims, tol);
    EXPECT_GT(stream.size(), prev) << "tol " << tol;
    prev = stream.size();
  }
}

TEST(MgardLike, SmoothFieldCompressesWell) {
  const Dims dims{64, 64, 64};
  const auto field = data::miranda_pressure(dims);
  const auto stream = compress(field.data(), dims, 800.0);  // ~1e-3 of range
  EXPECT_LT(double(stream.size()) * 8 / double(dims.total()), 8.0);
}

TEST(MgardLike, TypicalErrorWellUnderTolerance) {
  // The conservative per-level budget makes typical errors much smaller
  // than the tolerance (which is why MGARD-style schemes spend more bits
  // than SPERR at the same bound — paper Fig. 9).
  const Dims dims{48, 48, 16};
  const auto field = data::miranda_viscosity(dims);
  const double tol = 1e-5;
  const auto stream = compress(field.data(), dims, tol);
  std::vector<double> out;
  Dims od;
  ASSERT_EQ(decompress(stream.data(), stream.size(), out, od), Status::ok);
  double sq = 0;
  for (size_t i = 0; i < field.size(); ++i) {
    const double e = field[i] - out[i];
    sq += e * e;
  }
  EXPECT_LT(std::sqrt(sq / double(field.size())), tol / 3.0);
}

TEST(MgardLike, InvalidToleranceThrows) {
  std::vector<double> field(8, 1.0);
  EXPECT_THROW((void)compress(field.data(), Dims{8, 1, 1}, -1.0),
               std::invalid_argument);
}

TEST(MgardLike, GarbageRejected) {
  std::vector<uint8_t> garbage(64, 0x3c);
  std::vector<double> out;
  Dims od;
  EXPECT_NE(decompress(garbage.data(), garbage.size(), out, od), Status::ok);
}

}  // namespace
}  // namespace sperr::mgardlike
