// Block-parallel lossless codec: differential equivalence against the
// reference single-block codec, block framing/independence contracts, and
// per-block corruption reporting.

#include "lossless/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "common/checksum.h"
#include "common/rng.h"

namespace sperr::lossless {
namespace {

constexpr size_t kSmallBlock = size_t(1) << 12;  // codec minimum, forces many blocks

std::vector<uint8_t> compressible_blob(size_t n, uint32_t seed) {
  // Repetitive text with a sprinkle of noise: compresses well but not
  // degenerately, so multi-block streams stay in kModeLz.
  Rng rng(seed);
  std::string text;
  while (text.size() < n) {
    text += "the quick brown fox jumps over the lazy dog. ";
    if (rng.below(4) == 0) text += char('a' + rng.below(26));
  }
  text.resize(n);
  return {text.begin(), text.end()};
}

std::vector<uint8_t> random_blob(size_t n, uint32_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> b(n);
  for (auto& v : b) v = uint8_t(rng.next());
  return b;
}

// --- differential: blocked and reference codecs are equivalence oracles ----

TEST(CodecBlocked, DifferentialAgainstReferenceCodec) {
  const std::vector<std::vector<uint8_t>> inputs = {
      {},
      {42},
      compressible_blob(100, 1),
      compressible_blob(3 * kSmallBlock + 17, 2),
      random_blob(2 * kSmallBlock + 5, 3),
  };
  for (const auto& input : inputs) {
    const auto blocked = compress(input, {kSmallBlock, 0});
    const auto reference = encode_reference(input);
    std::vector<uint8_t> from_blocked, from_reference;
    ASSERT_EQ(decompress(blocked, from_blocked), Status::ok);
    ASSERT_EQ(decode_reference(reference.data(), reference.size(), from_reference),
              Status::ok);
    EXPECT_EQ(from_blocked, input);
    EXPECT_EQ(from_reference, input);
    EXPECT_EQ(from_blocked, from_reference);
  }
}

TEST(CodecBlocked, DecompressDispatchesOnReferenceFraming) {
  const auto input = compressible_blob(5000, 4);
  const auto reference = encode_reference(input);
  std::vector<uint8_t> out;
  ASSERT_EQ(decompress(reference, out), Status::ok);  // auto-detects old framing
  EXPECT_EQ(out, input);
}

// --- framing -----------------------------------------------------------------

TEST(CodecBlocked, EmptyInputIsHeaderOnlyStream) {
  const auto packed = compress(std::vector<uint8_t>{});
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  EXPECT_TRUE(info.blocked);
  EXPECT_EQ(info.raw_size, 0u);
  EXPECT_TRUE(info.blocks.empty());
  std::vector<uint8_t> out{1, 2, 3};
  ASSERT_EQ(decompress(packed, out), Status::ok);
  EXPECT_TRUE(out.empty());
}

TEST(CodecBlocked, InputSmallerThanOneBlockIsSingleBlock) {
  const auto input = compressible_blob(100, 5);
  const auto packed = compress(input);  // default 1 MiB blocks
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  ASSERT_EQ(info.blocks.size(), 1u);
  EXPECT_EQ(info.blocks[0].raw_size, input.size());
  EXPECT_EQ(info.blocks[0].checksum, xxhash64(input.data(), input.size()));
}

TEST(CodecBlocked, DirectoryCoversEveryBlockWithChecksums) {
  const size_t n = 3 * kSmallBlock + 123;
  const auto input = compressible_blob(n, 6);
  const auto packed = compress(input, {kSmallBlock, 0});
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  EXPECT_EQ(info.block_size, kSmallBlock);
  EXPECT_TRUE(info.tagged);  // format 3: entropy tag lives in the directory
  ASSERT_EQ(info.blocks.size(), 4u);
  uint64_t raw_total = 0;
  for (size_t b = 0; b < info.blocks.size(); ++b) {
    const BlockInfo& bi = info.blocks[b];
    raw_total += bi.raw_size;
    EXPECT_EQ(bi.checksum,
              xxhash64(input.data() + b * kSmallBlock, size_t(bi.raw_size)));
    // The tag round-trips through the packed directory word at 18 + 12*b.
    const size_t entry = 18 + 12 * b;
    const uint32_t word = uint32_t(packed[entry]) | (uint32_t(packed[entry + 1]) << 8) |
                          (uint32_t(packed[entry + 2]) << 16) |
                          (uint32_t(packed[entry + 3]) << 24);
    EXPECT_EQ(bi.mode, uint8_t(word >> 30));
    EXPECT_EQ(bi.comp_size, word & ((uint32_t(1) << 30) - 1));
  }
  EXPECT_EQ(raw_total, input.size());
}

TEST(CodecBlocked, IncompressibleBlocksStoreRawPerBlock) {
  // Random halves force raw storage; a compressible half gets entropy
  // coding — the selection is per block, not per stream.
  auto input = random_blob(2 * kSmallBlock, 7);
  const auto tail = compressible_blob(kSmallBlock, 8);
  input.insert(input.end(), tail.begin(), tail.end());
  const auto packed = compress(input, {kSmallBlock, 0});
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  ASSERT_EQ(info.blocks.size(), 3u);
  EXPECT_EQ(info.blocks[0].mode, kEntropyRaw);
  EXPECT_EQ(info.blocks[1].mode, kEntropyRaw);
  EXPECT_NE(info.blocks[2].mode, kEntropyRaw);  // Huffman or arithmetic
  // A raw block costs exactly its size: format 3 has no per-payload byte.
  EXPECT_EQ(info.blocks[0].comp_size, kSmallBlock);
  std::vector<uint8_t> out;
  ASSERT_EQ(decompress(packed, out), Status::ok);
  EXPECT_EQ(out, input);
}

TEST(CodecBlocked, MatchesNeverSpanBlockBoundaries) {
  // Highly repetitive data maximizes the temptation to match across the
  // boundary. If blocks are truly independent, block b of an N-block stream
  // is byte-identical to block 0 of compressing that slice alone.
  std::vector<uint8_t> input;
  for (size_t i = 0; i < 2 * kSmallBlock; ++i) input.push_back(uint8_t(i % 251));
  const auto packed = compress(input, {kSmallBlock, 0});
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  ASSERT_EQ(info.blocks.size(), 2u);

  const std::vector<uint8_t> second_half(input.begin() + long(kSmallBlock), input.end());
  const auto alone = compress(second_half, {kSmallBlock, 0});
  StreamInfo alone_info;
  ASSERT_EQ(inspect(alone.data(), alone.size(), alone_info), Status::ok);
  ASSERT_EQ(alone_info.blocks.size(), 1u);

  const BlockInfo& in_stream = info.blocks[1];
  const BlockInfo& standalone = alone_info.blocks[0];
  ASSERT_EQ(in_stream.comp_size, standalone.comp_size);
  EXPECT_TRUE(std::equal(packed.begin() + long(in_stream.offset),
                         packed.begin() + long(in_stream.offset) + in_stream.comp_size,
                         alone.begin() + long(standalone.offset)));
}

// --- corruption reporting ----------------------------------------------------

TEST(CodecBlocked, FlippedPayloadBitReportsTheCorruptBlock) {
  const auto input = compressible_blob(4 * kSmallBlock, 9);
  auto packed = compress(input, {kSmallBlock, 0});
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  ASSERT_EQ(info.blocks.size(), 4u);

  for (size_t victim = 0; victim < 4; ++victim) {
    auto corrupted = packed;
    // Flip one bit in the middle of the victim block's payload.
    const size_t at = size_t(info.blocks[victim].offset) +
                      info.blocks[victim].comp_size / 2;
    corrupted[at] ^= 0x10;
    std::vector<uint8_t> out;
    size_t bad = SIZE_MAX;
    EXPECT_EQ(decompress(corrupted.data(), corrupted.size(), out, &bad),
              Status::corrupt_block);
    EXPECT_EQ(bad, victim);
  }
}

TEST(CodecBlocked, FlippedDirectoryChecksumReportsTheBlock) {
  const auto input = compressible_blob(2 * kSmallBlock, 10);
  auto packed = compress(input, {kSmallBlock, 0});
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  // Directory entry b sits at 18 + 12*b: comp_size(u32) then checksum(u64).
  packed[18 + 12 * 1 + 4] ^= 0xff;  // second block's checksum
  std::vector<uint8_t> out;
  size_t bad = SIZE_MAX;
  EXPECT_EQ(decompress(packed.data(), packed.size(), out, &bad),
            Status::corrupt_block);
  EXPECT_EQ(bad, 1u);
}

TEST(CodecBlocked, TruncationIsAFramingErrorNotACrash) {
  const auto input = compressible_blob(3 * kSmallBlock, 11);
  auto packed = compress(input, {kSmallBlock, 0});
  for (const size_t keep : {size_t(0), size_t(1), size_t(10), size_t(17),
                            size_t(30), packed.size() / 2, packed.size() - 1}) {
    std::vector<uint8_t> cut(packed.begin(), packed.begin() + long(keep));
    std::vector<uint8_t> out;
    EXPECT_NE(decompress(cut.data(), cut.size(), out), Status::ok);
  }
}

TEST(CodecBlocked, BlockSizeIsClampedToTheSupportedRange) {
  const auto input = compressible_blob(10000, 12);
  const auto packed = compress(input, {1, 0});  // absurdly small, clamped to 4 KiB
  StreamInfo info;
  ASSERT_EQ(inspect(packed.data(), packed.size(), info), Status::ok);
  EXPECT_EQ(info.block_size, size_t(1) << 12);
  std::vector<uint8_t> out;
  ASSERT_EQ(decompress(packed, out), Status::ok);
  EXPECT_EQ(out, input);
}

TEST(CodecBlocked, ExplicitThreadCountsAgreeByteForByte) {
  const auto input = compressible_blob(5 * kSmallBlock + 7, 13);
  const auto serial = compress(input, {kSmallBlock, 1});
  const auto parallel = compress(input, {kSmallBlock, 8});
  EXPECT_EQ(serial, parallel);
  std::vector<uint8_t> out;
  ASSERT_EQ(decompress(parallel.data(), parallel.size(), out, nullptr, 8), Status::ok);
  EXPECT_EQ(out, input);
}

}  // namespace
}  // namespace sperr::lossless
