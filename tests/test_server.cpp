// sperr_serve server + wire protocol tests (src/server/, docs/PROTOCOL.md).
//
// Covers the contracts the docs promise: replies byte-identical to direct
// library calls, deterministic STATS counter semantics, bounded-queue BUSY
// backpressure, malformed-frame handling (error status, never a crash or a
// hang), and a conformance replay of the worked example in docs/PROTOCOL.md
// — the doc's hexdump bytes are sent verbatim and the replies compared
// byte-for-byte (with `??` wildcards for timing fields).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/byteio.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/server.h"
#include "sperr/sperr.h"

namespace {

using namespace sperr::server;
using sperr::Dims;

/// RAII client connection to a test server.
struct Client {
  int fd = -1;
  explicit Client(uint16_t port) : fd(connect_loopback(port)) {}
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
};

/// A small deterministic workload shared by the tests.
struct Workload {
  Dims dims{32, 32, 32};
  sperr::Config cfg;
  std::vector<double> field;
  std::vector<uint8_t> container;
  std::vector<double> decoded;

  Workload() {
    field = sperr::data::miranda_pressure(dims);
    cfg.tolerance = sperr::tolerance_from_idx(field.data(), field.size(), 20);
    cfg.chunk_dims = Dims{16, 16, 16};  // 8 chunks
    container = sperr::compress(field.data(), dims, cfg);
    Dims od;
    EXPECT_EQ(sperr::decompress(container.data(), container.size(), decoded, od),
              sperr::Status::ok);
  }
};

const Workload& workload() {
  static const Workload w;
  return w;
}

Server make_server(int workers = 2, size_t queue = 8) {
  ServerConfig sc;
  sc.workers = workers;
  sc.queue_capacity = queue;
  return Server(sc);
}

TEST(Server, CompressMatchesDirectCall) {
  const Workload& w = workload();
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);

  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(roundtrip(c.fd, Opcode::compress, 7,
                        build_compress_body(w.cfg, w.dims, w.field.data()), h,
                        reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
  EXPECT_EQ(h.request_id, 7u);
  // The wire is a transport, not a transformation: same Config, same bytes.
  EXPECT_EQ(reply, w.container);
}

TEST(Server, CompressWithSelfVerifyFlag) {
  const Workload& w = workload();
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);

  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(roundtrip(
      c.fd, Opcode::compress, 8,
      build_compress_body(w.cfg, w.dims, w.field.data(), kCompressFlagVerify), h,
      reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
  EXPECT_EQ(reply, w.container);  // the verify flag must not change the output
}

TEST(Server, DecompressMatchesDirectCall) {
  const Workload& w = workload();
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);

  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(roundtrip(
      c.fd, Opcode::decompress, 9,
      build_decompress_body(0, 8, w.container.data(), w.container.size()), h,
      reply));
  ASSERT_EQ(h.code, uint8_t(WireStatus::ok));
  ASSERT_EQ(reply.size(), 24 + w.decoded.size() * 8);
  sperr::ByteReader br(reply.data(), reply.size());
  EXPECT_EQ(br.u64(), w.dims.x);
  EXPECT_EQ(br.u64(), w.dims.y);
  EXPECT_EQ(br.u64(), w.dims.z);
  EXPECT_EQ(std::memcmp(reply.data() + 24, w.decoded.data(), w.decoded.size() * 8),
            0);

  // f32 output: same field, 4-byte samples.
  ASSERT_TRUE(roundtrip(
      c.fd, Opcode::decompress, 10,
      build_decompress_body(0, 4, w.container.data(), w.container.size()), h,
      reply));
  ASSERT_EQ(h.code, uint8_t(WireStatus::ok));
  ASSERT_EQ(reply.size(), 24 + w.decoded.size() * 4);
  const auto* f32 = reinterpret_cast<const float*>(reply.data() + 24);
  EXPECT_EQ(f32[0], float(w.decoded[0]));
}

TEST(Server, VerifyCleanAndDamagedContainers) {
  const Workload& w = workload();
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);

  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(roundtrip(c.fd, Opcode::verify, 1, w.container, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
  ASSERT_EQ(reply.size(), kVerifyReplyHeaderBytes + 8 * kVerifyChunkRecordBytes);
  EXPECT_EQ(reply[1], 1);  // intact

  // Flip a byte mid-container: VERIFY must localize, not crash.
  auto damaged = w.container;
  damaged[damaged.size() / 2] ^= 0x40;
  ASSERT_TRUE(roundtrip(c.fd, Opcode::verify, 2, damaged, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::corrupt));
  if (reply.size() >= kVerifyReplyHeaderBytes) {
    sperr::ByteReader br(reply.data(), reply.size());
    br.u8();  // version
    EXPECT_EQ(br.u8(), 0);  // not intact
    br.u16();
    EXPECT_GE(br.u32(), 1u);  // damaged count
  }

  // Garbage is corrupt with an empty body (no parsable directory).
  const std::vector<uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(roundtrip(c.fd, Opcode::verify, 3, junk, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::corrupt));
  EXPECT_TRUE(reply.empty());
}

TEST(Server, ExtractChunkMatchesFullDecode) {
  const Workload& w = workload();
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);

  FrameHeader h;
  std::vector<uint8_t> reply;
  for (uint32_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(roundtrip(c.fd, Opcode::extract_chunk, k,
                          build_extract_body(k, w.container.data(),
                                             w.container.size()),
                          h, reply));
    ASSERT_EQ(h.code, uint8_t(WireStatus::ok)) << "chunk " << k;
    ASSERT_GE(reply.size(), 48u);
    sperr::ByteReader br(reply.data(), reply.size());
    const Dims origin{size_t(br.u64()), size_t(br.u64()), size_t(br.u64())};
    const Dims cd{size_t(br.u64()), size_t(br.u64()), size_t(br.u64())};
    ASSERT_EQ(reply.size(), 48 + cd.total() * 8);
    const auto* got = reinterpret_cast<const double*>(reply.data() + 48);
    for (size_t z = 0; z < cd.z; ++z)
      for (size_t y = 0; y < cd.y; ++y) {
        const size_t src = (origin.z + z) * w.dims.y * w.dims.x +
                           (origin.y + y) * w.dims.x + origin.x;
        ASSERT_EQ(std::memcmp(got + (z * cd.y + y) * cd.x, w.decoded.data() + src,
                              cd.x * 8),
                  0)
            << "chunk " << k << " row z=" << z << " y=" << y;
      }
  }

  // Out-of-range index: a usable container but no such chunk.
  ASSERT_TRUE(roundtrip(c.fd, Opcode::extract_chunk, 99,
                        build_extract_body(8, w.container.data(),
                                           w.container.size()),
                        h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::bad_request));
}

TEST(Server, StatsCountersAreDeterministic) {
  const Workload& w = workload();
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);

  FrameHeader h;
  std::vector<uint8_t> reply;
  // Two VERIFYs (one clean, one garbage) then STATS: the snapshot counts
  // the STATS request itself (docs/PROTOCOL.md contract).
  ASSERT_TRUE(roundtrip(c.fd, Opcode::verify, 1, w.container, h, reply));
  const std::vector<uint8_t> junk = {1, 2, 3};
  ASSERT_TRUE(roundtrip(c.fd, Opcode::verify, 2, junk, h, reply));
  ASSERT_TRUE(roundtrip(c.fd, Opcode::stats, 3, {}, h, reply));
  ASSERT_EQ(h.code, uint8_t(WireStatus::ok));

  StatsSnapshot s;
  ASSERT_TRUE(StatsSnapshot::parse(reply.data(), reply.size(), s));
  EXPECT_EQ(s.requests_total, 3u);
  EXPECT_EQ(s.verify_count, 2u);
  EXPECT_EQ(s.stats_count, 1u);
  EXPECT_EQ(s.errors, 1u);  // the garbage VERIFY
  EXPECT_EQ(s.bytes_in, w.container.size() + junk.size());
  EXPECT_EQ(s.queue_capacity, 8u);
  EXPECT_EQ(s.workers, 2u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_GE(s.uptime_seconds, 0.0);
  // No COMPRESS ran: stage seconds are exactly zero.
  EXPECT_EQ(s.transform_seconds, 0.0);
  EXPECT_EQ(s.lossless_seconds, 0.0);

  // The library-side snapshot agrees with the wire (STATS replies are
  // never part of bytes_out, so the two snapshots match exactly).
  const StatsSnapshot direct = srv.stats();
  EXPECT_EQ(direct.requests_total, 3u);
  EXPECT_EQ(direct.bytes_out, s.bytes_out);
}

TEST(Server, BusyBackpressureIsBoundedAndRecovers) {
  // One worker held on a latch + a one-slot queue: the third request must
  // be rejected with BUSY, and both admitted requests must still be
  // answered after release — reject-new, never deadlock.
  ServerConfig sc;
  sc.workers = 1;
  sc.queue_capacity = 1;
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> held{0};
  sc.process_hook = [&](uint8_t) {
    if (held.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return release; });
    }
  };
  Server srv(sc);
  ASSERT_EQ(srv.start(), sperr::Status::ok);

  const std::vector<uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
  auto ask = [&](uint64_t id, uint8_t& status) {
    Client c(srv.port());
    FrameHeader h;
    std::vector<uint8_t> reply;
    if (c.fd < 0 || !roundtrip(c.fd, Opcode::verify, id, junk, h, reply))
      return false;
    status = h.code;
    return true;
  };

  uint8_t st_a = 0xff, st_b = 0xff, st_c = 0xff;
  bool ok_a = false, ok_b = false;
  std::thread ta([&] { ok_a = ask(1, st_a); });
  while (held.load() == 0) std::this_thread::yield();
  std::thread tb([&] { ok_b = ask(2, st_b); });
  while (srv.stats().queue_depth < 1) std::this_thread::yield();
  const bool ok_c = ask(3, st_c);
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  ta.join();
  tb.join();

  ASSERT_TRUE(ok_a && ok_b && ok_c);
  EXPECT_EQ(st_c, uint8_t(WireStatus::busy));
  EXPECT_EQ(st_a, uint8_t(WireStatus::corrupt));
  EXPECT_EQ(st_b, uint8_t(WireStatus::corrupt));
  const StatsSnapshot s = srv.stats();
  EXPECT_EQ(s.rejected_busy, 1u);
  EXPECT_EQ(s.requests_total, 2u);  // BUSY rejections are not completed requests
  srv.stop();
}

// --- malformed frames: error status or close, never a crash or a hang ------

TEST(ServerMalformed, TruncatedHeaderThenServerStillServes) {
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  {
    Client c(srv.port());
    ASSERT_GE(c.fd, 0);
    const uint8_t partial[10] = {0x53, 0x50, 0x52, 0x51, 1, 3, 0, 0, 1, 0};
    ASSERT_TRUE(write_all(c.fd, partial, sizeof partial));
  }  // close mid-header
  // The server must shrug the dead connection off and keep serving.
  Client c2(srv.port());
  ASSERT_GE(c2.fd, 0);
  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(roundtrip(c2.fd, Opcode::stats, 1, {}, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
}

TEST(ServerMalformed, TruncatedBodyThenServerStillServes) {
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  {
    Client c(srv.port());
    ASSERT_GE(c.fd, 0);
    std::vector<uint8_t> frame;
    put_frame_header(frame, kRequestMagic, uint8_t(Opcode::verify), 1,
                     /*body_len=*/100);
    frame.push_back(0xaa);  // 1 of the promised 100 bytes
    ASSERT_TRUE(write_all(c.fd, frame.data(), frame.size()));
  }
  Client c2(srv.port());
  ASSERT_GE(c2.fd, 0);
  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(roundtrip(c2.fd, Opcode::stats, 1, {}, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
}

TEST(ServerMalformed, BadMagicClosesConnection) {
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);
  ASSERT_TRUE(send_frame(c.fd, 0x4b4e554a /* "JUNK" */, uint8_t(Opcode::stats), 5,
                         nullptr, 0));
  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(recv_frame(c.fd, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::bad_request));
  // Framing is in doubt: the server closes after replying.
  uint8_t byte;
  EXPECT_FALSE(read_exact(c.fd, &byte, 1));
}

TEST(ServerMalformed, VersionSkewIsRejected) {
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);
  std::vector<uint8_t> frame;
  put_frame_header(frame, kRequestMagic, uint8_t(Opcode::stats), 6, 0);
  frame[4] = 99;  // future protocol version
  ASSERT_TRUE(write_all(c.fd, frame.data(), frame.size()));
  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(recv_frame(c.fd, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::unsupported_version));
  EXPECT_EQ(h.request_id, 6u);
  uint8_t byte;
  EXPECT_FALSE(read_exact(c.fd, &byte, 1));  // connection closed
}

TEST(ServerMalformed, OversizedBodyLengthIsRejectedUnread) {
  ServerConfig sc;
  sc.workers = 1;
  sc.queue_capacity = 4;
  sc.max_body_bytes = 1 << 16;
  Server srv(sc);
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);
  // Advertise a body far past the cap, send none of it: the reply must
  // come back immediately (the server must not try to read 1 GiB first).
  std::vector<uint8_t> frame;
  put_frame_header(frame, kRequestMagic, uint8_t(Opcode::verify), 7,
                   size_t(1) << 30);
  ASSERT_TRUE(write_all(c.fd, frame.data(), frame.size()));
  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(recv_frame(c.fd, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::bad_request));
  uint8_t byte;
  EXPECT_FALSE(read_exact(c.fd, &byte, 1));  // connection closed
}

TEST(ServerMalformed, UnknownOpcodeKeepsConnection) {
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);
  ASSERT_TRUE(send_frame(c.fd, kRequestMagic, 9, 11, nullptr, 0));
  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(recv_frame(c.fd, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::bad_request));
  EXPECT_EQ(h.request_id, 11u);
  // Framing stayed intact, so the connection survives.
  ASSERT_TRUE(roundtrip(c.fd, Opcode::stats, 12, {}, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
}

TEST(ServerMalformed, GarbageBodiesGetErrorReplies) {
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);
  FrameHeader h;
  std::vector<uint8_t> reply;

  // COMPRESS with a body shorter than its fixed header.
  ASSERT_TRUE(roundtrip(c.fd, Opcode::compress, 1, {1, 2, 3}, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::bad_request));

  // COMPRESS advertising dims that disagree with the sample bytes.
  sperr::Config cfg;
  cfg.tolerance = 1.0;
  const std::vector<double> two(2, 0.5);
  auto body = build_compress_body(cfg, Dims{2, 1, 1}, two.data());
  body.pop_back();  // now one byte short of dims.total() * 8
  ASSERT_TRUE(roundtrip(c.fd, Opcode::compress, 2, body, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::bad_request));

  // DECOMPRESS with an unknown recovery policy.
  ASSERT_TRUE(roundtrip(c.fd, Opcode::decompress, 3,
                        build_decompress_body(7, 8, body.data(), 4), h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::bad_request));

  // STATS with a non-empty body (the spec requires empty).
  ASSERT_TRUE(roundtrip(c.fd, Opcode::stats, 4, {0}, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::bad_request));

  // EXTRACT_CHUNK on garbage container bytes.
  ASSERT_TRUE(roundtrip(c.fd, Opcode::extract_chunk, 5,
                        build_extract_body(0, body.data(), 16), h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::corrupt));

  // The connection survived all five.
  ASSERT_TRUE(roundtrip(c.fd, Opcode::stats, 6, {}, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
}

TEST(Server, GracefulStopAnswersAdmittedRequests) {
  const Workload& w = workload();
  auto srv = make_server(/*workers=*/1, /*queue=*/8);
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  // Several in-flight requests from parallel connections, then stop():
  // every admitted request must still be answered.
  std::vector<std::thread> threads;
  std::atomic<int> answered{0};
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&, i] {
      Client c(srv.port());
      FrameHeader h;
      std::vector<uint8_t> reply;
      if (c.fd >= 0 &&
          roundtrip(c.fd, Opcode::verify, uint64_t(i), w.container, h, reply) &&
          h.code == uint8_t(WireStatus::ok))
        answered.fetch_add(1);
    });
  for (auto& t : threads) t.join();
  srv.stop();
  srv.stop();  // idempotent
  EXPECT_EQ(answered.load(), 4);
}

// --- degraded conditions: deadlines, caps, and hostile disconnects ----------

/// STATS over a raw connection, parsed into a snapshot.
bool fetch_stats(int fd, uint64_t id, StatsSnapshot& snap) {
  FrameHeader h;
  std::vector<uint8_t> reply;
  return roundtrip(fd, Opcode::stats, id, {}, h, reply) &&
         h.code == uint8_t(WireStatus::ok) &&
         StatsSnapshot::parse(reply.data(), reply.size(), snap);
}

TEST(ServerHardened, IdleConnectionIsReaped) {
  // The acceptance scenario: a connection that sends 23 of the 24 header
  // bytes and stalls must be reaped within the I/O deadline — while other
  // clients keep getting answers the whole time.
  ServerConfig sc;
  sc.workers = 1;
  sc.io_timeout_ms = 200;
  sc.idle_timeout_ms = 2000;
  Server srv(sc);
  ASSERT_EQ(srv.start(), sperr::Status::ok);

  Client stall(srv.port());
  ASSERT_GE(stall.fd, 0);
  std::vector<uint8_t> header;
  put_frame_header(header, kRequestMagic, uint8_t(Opcode::stats), 7, 0);
  ASSERT_TRUE(write_all(stall.fd, header.data(), 23));  // one byte short

  Client good(srv.port());
  ASSERT_GE(good.fd, 0);
  StatsSnapshot snap;
  ASSERT_TRUE(fetch_stats(good.fd, 1, snap));
  EXPECT_EQ(snap.active_connections, 2u);

  // The stalled connection is charged a read timeout and dropped; the
  // well-behaved connection keeps answering throughout.
  sperr::Timer guard;
  while (snap.timeouts_read < 1 && guard.seconds() < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(fetch_stats(good.fd, 2, snap));
  }
  EXPECT_GE(snap.timeouts_read, 1u);
  ASSERT_TRUE(fetch_stats(good.fd, 3, snap));
  EXPECT_EQ(snap.active_connections, 1u);
  // The server closed the stalled socket: the next read sees EOF.
  char byte;
  EXPECT_EQ(::recv(stall.fd, &byte, 1, 0), 0);
  srv.stop();
}

TEST(ServerHardened, RequestDeadlineAnswersDeadlineExceeded) {
  ServerConfig sc;
  sc.workers = 1;
  sc.request_deadline_ms = 100;
  sc.process_hook = [](uint8_t opcode) {
    if (Opcode(opcode) == Opcode::verify)
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
  };
  Server srv(sc);
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);
  const std::vector<uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
  FrameHeader h;
  std::vector<uint8_t> reply;
  sperr::Timer t;
  ASSERT_TRUE(roundtrip(c.fd, Opcode::verify, 9, junk, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::deadline_exceeded));
  EXPECT_EQ(h.request_id, 9u);
  EXPECT_LT(t.seconds(), 0.35);  // answered at the deadline, not after the work
  // Let the lone worker drain the abandoned job before probing STATS.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  StatsSnapshot snap;
  ASSERT_TRUE(fetch_stats(c.fd, 10, snap));
  EXPECT_GE(snap.timeouts_request, 1u);
  srv.stop();
}

TEST(ServerHardened, ConnectionCapRepliesBusyAndCloses) {
  ServerConfig sc;
  sc.workers = 1;
  sc.max_connections = 1;
  Server srv(sc);
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client a(srv.port());
  ASSERT_GE(a.fd, 0);
  StatsSnapshot snap;
  ASSERT_TRUE(fetch_stats(a.fd, 1, snap));  // a is registered by now

  // Past the cap: exactly one unsolicited BUSY frame (request id 0, empty
  // body), then EOF.
  Client b(srv.port());
  ASSERT_GE(b.fd, 0);
  uint8_t raw[kFrameHeaderBytes];
  ASSERT_TRUE(read_exact(b.fd, raw, sizeof raw));
  const FrameHeader h = parse_frame_header(raw);
  EXPECT_EQ(h.magic, kReplyMagic);
  EXPECT_EQ(h.code, uint8_t(WireStatus::busy));
  EXPECT_EQ(h.request_id, 0u);
  EXPECT_EQ(h.body_len, 0u);
  char extra;
  EXPECT_EQ(::recv(b.fd, &extra, 1, 0), 0);

  ASSERT_TRUE(fetch_stats(a.fd, 2, snap));
  EXPECT_GE(snap.conns_rejected, 1u);
  EXPECT_EQ(snap.active_connections, 1u);
  srv.stop();
}

TEST(ServerHardened, RstMidBodyDoesNotCrash) {
  // An abrupt RST halfway through a request body must not crash the server
  // or corrupt its counters; other connections keep working.
  const Workload& w = workload();
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  for (int round = 0; round < 4; ++round) {
    Client c(srv.port());
    ASSERT_GE(c.fd, 0);
    std::vector<uint8_t> frame;
    put_frame_header(frame, kRequestMagic, uint8_t(Opcode::verify), 1,
                     w.container.size());
    ASSERT_TRUE(write_all(c.fd, frame.data(), frame.size()));
    ASSERT_TRUE(write_all(c.fd, w.container.data(), w.container.size() / 2));
    struct linger lg = {1, 0};  // RST on close
    ASSERT_EQ(::setsockopt(c.fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg), 0);
    ::close(c.fd);
    c.fd = -1;
  }
  Client good(srv.port());
  ASSERT_GE(good.fd, 0);
  StatsSnapshot snap;
  ASSERT_TRUE(fetch_stats(good.fd, 5, snap));
  EXPECT_EQ(snap.requests_total, 1u);  // only the STATS; torn requests never ran
  EXPECT_EQ(snap.stats_count, 1u);
  srv.stop();
}

TEST(ServerHardened, HalfCloseAfterRequestStillGetsReply) {
  // shutdown(SHUT_WR) after a complete request: the server must still
  // process it and deliver the reply before seeing the FIN-induced EOF.
  const Workload& w = workload();
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  Client c(srv.port());
  ASSERT_GE(c.fd, 0);
  std::vector<uint8_t> frame;
  put_frame_header(frame, kRequestMagic, uint8_t(Opcode::verify), 21,
                   w.container.size());
  frame.insert(frame.end(), w.container.begin(), w.container.end());
  ASSERT_TRUE(write_all(c.fd, frame.data(), frame.size()));
  ASSERT_EQ(::shutdown(c.fd, SHUT_WR), 0);
  uint8_t raw[kFrameHeaderBytes];
  ASSERT_TRUE(read_exact(c.fd, raw, sizeof raw));
  const FrameHeader h = parse_frame_header(raw);
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
  EXPECT_EQ(h.request_id, 21u);
  std::vector<uint8_t> body(size_t(h.body_len));
  if (!body.empty()) {
    ASSERT_TRUE(read_exact(c.fd, body.data(), body.size()));
  }
  char extra;
  EXPECT_EQ(::recv(c.fd, &extra, 1, 0), 0);  // then EOF
  srv.stop();
}

TEST(ServerHardened, DisconnectWhileReplyInFlightDoesNotCrash) {
  // Clients that vanish while the worker is computing their reply: the
  // write fails, the reader unwinds, the server survives and its STATS
  // stay coherent.
  const Workload& w = workload();
  auto srv = make_server();
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  const std::vector<uint8_t> body =
      build_decompress_body(0, 8, w.container.data(), w.container.size());
  std::vector<uint8_t> frame;
  put_frame_header(frame, kRequestMagic, uint8_t(Opcode::decompress), 31,
                   body.size());
  frame.insert(frame.end(), body.begin(), body.end());
  for (int round = 0; round < 4; ++round) {
    Client c(srv.port());
    ASSERT_GE(c.fd, 0);
    ASSERT_TRUE(write_all(c.fd, frame.data(), frame.size()));
    struct linger lg = {1, 0};
    ASSERT_EQ(::setsockopt(c.fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg), 0);
    ::close(c.fd);  // RST races the in-flight reply
    c.fd = -1;
  }
  Client good(srv.port());
  ASSERT_GE(good.fd, 0);
  FrameHeader h;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(roundtrip(good.fd, Opcode::verify, 40, w.container, h, reply));
  EXPECT_EQ(h.code, uint8_t(WireStatus::ok));
  StatsSnapshot snap;
  ASSERT_TRUE(fetch_stats(good.fd, 41, snap));
  EXPECT_EQ(snap.active_connections, 1u);
  srv.stop();
}

// --- docs/PROTOCOL.md conformance replay ------------------------------------

/// One request/reply exchange parsed from the doc's conformance block.
struct Exchange {
  std::vector<uint8_t> request;
  std::vector<uint8_t> reply;      // expected bytes; paired with `wild`
  std::vector<bool> wild;          // true = byte is `??` (not compared)
};

std::vector<Exchange> parse_conformance_block(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::vector<Exchange> exchanges;
  std::string line;
  bool inside = false;
  bool last_was_reply = true;  // a `>>` after a `<<` starts a new exchange
  while (std::getline(in, line)) {
    if (line.find("conformance:begin") != std::string::npos) {
      inside = true;
      continue;
    }
    if (line.find("conformance:end") != std::string::npos) break;
    if (!inside) continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    const bool is_req = tok == ">>";
    if (!is_req && tok != "<<") continue;
    if (is_req && last_was_reply) exchanges.emplace_back();
    last_was_reply = !is_req;
    EXPECT_FALSE(exchanges.empty()) << "conformance block starts with <<";
    Exchange& ex = exchanges.back();
    while (ls >> tok) {
      if (tok == "??") {
        EXPECT_FALSE(is_req) << "wildcards are reply-only";
        ex.reply.push_back(0);
        ex.wild.push_back(true);
      } else {
        const uint8_t b = uint8_t(std::stoul(tok, nullptr, 16));
        if (is_req) {
          ex.request.push_back(b);
        } else {
          ex.reply.push_back(b);
          ex.wild.push_back(false);
        }
      }
    }
  }
  return exchanges;
}

TEST(ProtocolConformance, WorkedExampleReplaysVerbatim) {
  // The doc documents this exact configuration next to the hexdump.
  auto srv = make_server(/*workers=*/2, /*queue=*/8);
  ASSERT_EQ(srv.start(), sperr::Status::ok);
  const auto exchanges = parse_conformance_block(SPERR_PROTOCOL_MD);
  ASSERT_EQ(exchanges.size(), 3u) << "expected 3 worked exchanges in the doc";

  Client c(srv.port());
  ASSERT_GE(c.fd, 0);
  for (size_t i = 0; i < exchanges.size(); ++i) {
    const Exchange& ex = exchanges[i];
    ASSERT_GE(ex.request.size(), kFrameHeaderBytes) << "exchange " << i;
    ASSERT_GE(ex.reply.size(), kFrameHeaderBytes) << "exchange " << i;
    ASSERT_TRUE(write_all(c.fd, ex.request.data(), ex.request.size()));
    std::vector<uint8_t> got(ex.reply.size());
    ASSERT_TRUE(read_exact(c.fd, got.data(), got.size())) << "exchange " << i;
    for (size_t b = 0; b < got.size(); ++b) {
      if (ex.wild[b]) continue;
      ASSERT_EQ(got[b], ex.reply[b])
          << "exchange " << i << " reply byte " << b << " differs from the doc";
    }
  }
}

}  // namespace
