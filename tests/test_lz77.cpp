#include "lossless/lz77.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/rng.h"

namespace sperr::lossless {
namespace {

std::vector<uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

void expect_roundtrip(const std::vector<uint8_t>& input) {
  const auto tokens = lz77_tokenize(input.data(), input.size());
  std::vector<uint8_t> out;
  ASSERT_TRUE(lz77_reconstruct(tokens, out));
  ASSERT_EQ(out.size(), input.size());
  EXPECT_EQ(out, input);
}

TEST(Lz77, EmptyInput) {
  EXPECT_TRUE(lz77_tokenize(nullptr, 0).empty());
}

TEST(Lz77, ShortInputsAreLiterals) {
  const auto input = bytes_of("abc");
  const auto tokens = lz77_tokenize(input.data(), input.size());
  EXPECT_EQ(tokens.size(), 3u);
  for (const auto& t : tokens) EXPECT_EQ(t.length, 0u);
  expect_roundtrip(input);
}

TEST(Lz77, RepetitionProducesMatches) {
  const auto input = bytes_of("abcdabcdabcdabcdabcdabcd");
  const auto tokens = lz77_tokenize(input.data(), input.size());
  EXPECT_LT(tokens.size(), input.size() / 2);
  expect_roundtrip(input);
}

TEST(Lz77, OverlappingMatchRunLengthEncoding) {
  // 1000 identical bytes: the classic overlapping match (distance 1).
  std::vector<uint8_t> input(1000, 'x');
  const auto tokens = lz77_tokenize(input.data(), input.size());
  EXPECT_LT(tokens.size(), 10u);
  expect_roundtrip(input);
}

TEST(Lz77, RandomDataRoundTrips) {
  Rng rng(5);
  std::vector<uint8_t> input(50000);
  for (auto& b : input) b = uint8_t(rng.next());
  expect_roundtrip(input);
}

TEST(Lz77, CompressibleRandomDataRoundTrips) {
  Rng rng(6);
  // Random data over a tiny alphabet with long repeats.
  std::vector<uint8_t> input;
  while (input.size() < 100000) {
    const size_t run = 1 + rng.below(50);
    const uint8_t v = uint8_t(rng.below(4));
    input.insert(input.end(), run, v);
  }
  const auto tokens = lz77_tokenize(input.data(), input.size());
  EXPECT_LT(tokens.size(), input.size() / 4);
  expect_roundtrip(input);
}

TEST(Lz77, MatchAcrossExactWindowBoundary) {
  // A repeat separated by just under the window size must be found; one
  // separated by more must not reference out-of-window data.
  std::vector<uint8_t> input = bytes_of("HEADER_PATTERN_12345");
  input.resize(kWindowSize - 8, '.');
  const auto tail = bytes_of("HEADER_PATTERN_12345");
  input.insert(input.end(), tail.begin(), tail.end());
  expect_roundtrip(input);
}

TEST(Lz77, ReconstructRejectsCorruptDistance) {
  std::vector<Token> tokens;
  Token bad;
  bad.length = 10;
  bad.distance = 5;  // references data before the start
  tokens.push_back(bad);
  std::vector<uint8_t> out;
  EXPECT_FALSE(lz77_reconstruct(tokens, out));
}

TEST(Lz77, MaxMatchLengthRespected) {
  std::vector<uint8_t> input(10000, 'a');
  const auto tokens = lz77_tokenize(input.data(), input.size());
  for (const auto& t : tokens) {
    if (t.length) {
      EXPECT_LE(t.length, kMaxMatch);
    }
  }
  expect_roundtrip(input);
}

}  // namespace
}  // namespace sperr::lossless
