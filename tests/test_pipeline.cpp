// Direct tests of the four-stage pipeline (sperr/pipeline.h) — the layer the
// figure benches instrument — independent of the container format.

#include "sperr/pipeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "speck/decoder.h"
#include "speck/encoder.h"
#include "sperr/sperr.h"
#include "wavelet/dwt.h"

namespace sperr::pipeline {
namespace {

TEST(Pipeline, PweEncodeDecodeBoundsEveryPoint) {
  const Dims dims{40, 40, 20};
  const auto field = data::miranda_pressure(dims);
  const double t = tolerance_from_idx(field.data(), field.size(), 18);
  const auto cs = encode_pwe(field.data(), dims, t, 1.5);
  std::vector<double> recon(dims.total());
  ASSERT_EQ(decode(cs.speck, cs.outlier, dims, recon.data()), Status::ok);
  for (size_t i = 0; i < field.size(); ++i)
    ASSERT_LE(std::fabs(field[i] - recon[i]), t) << "point " << i;
}

TEST(Pipeline, CapturedOutliersAreExactlyTheViolators) {
  const Dims dims{32, 32, 16};
  const auto field = data::nyx_dark_matter_density(dims);
  const double t = tolerance_from_idx(field.data(), field.size(), 12);

  std::vector<outlier::Outlier> outliers;
  const auto cs = encode_pwe(field.data(), dims, t, 2.5, &outliers);
  EXPECT_EQ(outliers.size(), cs.num_outliers);

  // Reproduce the wavelet-only reconstruction and check the captured list
  // is exactly the set of points violating t.
  std::vector<double> coeffs = field;
  wavelet::forward_dwt(coeffs.data(), dims);
  std::vector<double> recon;
  (void)speck::encode(coeffs.data(), dims, 2.5 * t, 0, nullptr, &recon);
  wavelet::inverse_dwt(recon.data(), dims);

  size_t violators = 0;
  size_t oi = 0;
  for (size_t i = 0; i < field.size(); ++i) {
    const double err = field[i] - recon[i];
    if (std::fabs(err) > t) {
      ++violators;
      ASSERT_LT(oi, outliers.size());
      EXPECT_EQ(outliers[oi].pos, i);
      EXPECT_DOUBLE_EQ(outliers[oi].corr, err);
      ++oi;
    }
  }
  EXPECT_EQ(violators, outliers.size());
}

TEST(Pipeline, FixedRateRespectsBudget) {
  const Dims dims{32, 32, 32};
  const auto field = data::s3d_velocity_x(dims);
  for (const size_t budget : {1000u, 10000u, 100000u}) {
    const auto cs = encode_fixed_rate(field.data(), dims, budget);
    EXPECT_TRUE(cs.outlier.empty());
    EXPECT_LE(cs.speck.size(), budget / 8 + 64);
    std::vector<double> recon(dims.total());
    EXPECT_EQ(decode(cs.speck, cs.outlier, dims, recon.data()), Status::ok);
  }
}

TEST(Pipeline, TargetRmseNoOutlierStream) {
  const Dims dims{32, 32, 8};
  const auto field = data::miranda_viscosity(dims);
  const auto cs = encode_target_rmse(field.data(), dims, 1e-5);
  EXPECT_TRUE(cs.outlier.empty());
  EXPECT_EQ(cs.num_outliers, 0u);
  std::vector<double> recon(dims.total());
  ASSERT_EQ(decode(cs.speck, cs.outlier, dims, recon.data()), Status::ok);
  double sq = 0;
  for (size_t i = 0; i < field.size(); ++i) {
    const double e = field[i] - recon[i];
    sq += e * e;
  }
  EXPECT_LE(std::sqrt(sq / double(field.size())), 1e-5);
}

TEST(Pipeline, LowresDropZeroIsFullInverse) {
  const Dims dims{32, 32, 32};
  const auto field = data::s3d_temperature(dims);
  const auto cs = encode_pwe(field.data(), dims, 0.5, 1.5);
  std::vector<double> full(dims.total());
  ASSERT_EQ(decode(cs.speck, {}, dims, full.data()), Status::ok);

  std::vector<double> lowres;
  Dims cd;
  ASSERT_EQ(decode_lowres(cs.speck, dims, 0, lowres, cd), Status::ok);
  EXPECT_EQ(cd, dims);
  for (size_t i = 0; i < full.size(); ++i) ASSERT_DOUBLE_EQ(lowres[i], full[i]);
}

TEST(Pipeline, SpeckEstimatedRmseTracksReality) {
  // The encoder's coefficient-domain estimate (paper §III-A / §VII) vs the
  // measured reconstruction RMSE, across three quantization scales.
  const Dims dims{40, 40, 24};
  const auto field = data::miranda_density(dims);
  std::vector<double> coeffs = field;
  wavelet::forward_dwt(coeffs.data(), dims);

  for (const double q : {1e-2, 1e-4, 1e-6}) {
    speck::EncodeStats stats;
    const auto stream = speck::encode(coeffs.data(), dims, q, 0, &stats);
    std::vector<double> recon(dims.total());
    ASSERT_EQ(speck::decode(stream.data(), stream.size(), dims, recon.data()),
              Status::ok);
    wavelet::inverse_dwt(recon.data(), dims);
    double sq = 0;
    for (size_t i = 0; i < field.size(); ++i) {
      const double e = field[i] - recon[i];
      sq += e * e;
    }
    const double actual = std::sqrt(sq / double(field.size()));
    ASSERT_GT(actual, 0.0);
    const double ratio = stats.estimated_coeff_rmse / actual;
    EXPECT_GT(ratio, 0.5) << "q " << q;
    EXPECT_LT(ratio, 2.0) << "q " << q;
  }
}

}  // namespace
}  // namespace sperr::pipeline
