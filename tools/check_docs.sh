#!/usr/bin/env bash
# Documentation consistency checks, run by CI's docs job and the docs_check
# ctest:
#   1. every relative markdown link in README.md and docs/*.md resolves to a
#      file or directory that exists;
#   2. every `src/...` (also docs/, tools/, bench/, tests/, scripts/) path
#      README.md or docs/*.md names in backticks exists on disk, so the
#      architecture table cannot drift from the tree;
#   3. docs/PROTOCOL.md carries exactly one machine-readable conformance
#      block (the hexdump tests/test_server.cpp replays verbatim).
# External (http/https/mailto) links are not fetched: CI must not depend on
# network reachability.

set -u
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

check_exists() {
  # $1 = path relative to $2; succeeds for files, dirs, and glob patterns
  # that match at least one entry.
  local target="$1" base="$2"
  case "$target" in
    *'*'*)
      compgen -G "$base/$target" > /dev/null
      return
      ;;
  esac
  [ -e "$base/$target" ]
}

# --- 1. relative markdown links ---------------------------------------------
for f in "$ROOT"/README.md "$ROOT"/docs/*.md; do
  dir="$(dirname "$f")"
  while IFS= read -r link; do
    case "$link" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    target="${link%%#*}"   # drop in-page anchors
    [ -z "$target" ] && continue
    if ! check_exists "$target" "$dir"; then
      echo "BROKEN LINK: ${f#"$ROOT"/} -> $link"
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/^\[[^]]*\](\(.*\))$/\1/')
done

# --- 2. backticked repo paths -----------------------------------------------
for f in "$ROOT"/README.md "$ROOT"/docs/*.md; do
  while IFS= read -r path; do
    path="${path%\`}"
    path="${path#\`}"
    # Tolerate `path:line` references and trailing slashes.
    path="$(printf '%s' "$path" | sed 's/:[0-9]*$//; s:/$::')"
    if ! check_exists "$path" "$ROOT"; then
      echo "MISSING PATH: ${f#"$ROOT"/} names \`$path\`"
      fail=1
    fi
  done < <(grep -o '`\(src\|docs\|tools\|bench\|tests\|scripts\)/[^` ]*`' "$f")
done

# --- 3. PROTOCOL.md conformance block ----------------------------------------
proto="$ROOT/docs/PROTOCOL.md"
if [ ! -f "$proto" ]; then
  echo "MISSING: docs/PROTOCOL.md"
  fail=1
else
  begins=$(grep -c 'conformance:begin' "$proto")
  ends=$(grep -c 'conformance:end' "$proto")
  if [ "$begins" -ne 1 ] || [ "$ends" -ne 1 ]; then
    echo "CONFORMANCE BLOCK: expected exactly one begin/end marker pair" \
         "in docs/PROTOCOL.md (got $begins begin, $ends end)"
    fail=1
  elif ! sed -n '/conformance:begin/,/conformance:end/p' "$proto" \
      | grep -q '^>> ' \
      || ! sed -n '/conformance:begin/,/conformance:end/p' "$proto" \
      | grep -q '^<< '; then
    echo "CONFORMANCE BLOCK: docs/PROTOCOL.md block has no >>/<< hexdump lines"
    fail=1
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK"
