// sperr_serve — long-lived TCP compression server over the SPERR library.
//
//   sperr_serve [--port P] [--workers N] [--queue-depth Q]
//               [--request-threads N] [--intra-threads N]
//               [--max-body-mb M] [--max-conns N]
//               [--max-output-mb M] [--max-memory-mb M]
//               [--io-timeout-ms T] [--idle-timeout-ms T]
//               [--request-deadline-ms T] [--drain-deadline-ms T] [--quiet]
//
// Binds 127.0.0.1:P (P = 0 picks an ephemeral port) and speaks the
// length-prefixed binary protocol specified in docs/PROTOCOL.md (COMPRESS /
// DECOMPRESS / VERIFY / EXTRACT_CHUNK / STATS). Prints one "listening on"
// line to stdout once ready — scripts and the CI smoke job parse the port
// from it — then serves until SIGINT/SIGTERM, drains every admitted
// request, prints a final metrics summary, and exits 0.
//
// Tuning guidance lives in docs/OPERATIONS.md. Exit codes follow the
// sperr_cc contract: 0 clean shutdown, 1 I/O (bind) failure, 2 usage error.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/threadpool.h"
#include "server/server.h"

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  sperr_serve [--port P] [--workers N] [--queue-depth Q]\n"
               "              [--request-threads N] [--intra-threads N]\n"
               "              [--max-body-mb M] [--max-conns N]\n"
               "              [--max-output-mb M] [--max-memory-mb M]\n"
               "              [--io-timeout-ms T] [--idle-timeout-ms T]\n"
               "              [--request-deadline-ms T] [--drain-deadline-ms T]\n"
               "              [--quiet]\n"
               "\n"
               "  --port P             TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
               "  --workers N          request-processing lanes (default 0 = one per core)\n"
               "  --queue-depth Q      bounded-queue high-water mark (default 64)\n"
               "  --request-threads N  OpenMP chunk threads inside one request (default 1)\n"
               "  --intra-threads N    deterministic SPECK lanes per chunk (default 1)\n"
               "  --max-body-mb M      reject frames with bodies over M MiB (default 1024)\n"
               "  --max-conns N        concurrent connection cap; past it new\n"
               "                       connections get one BUSY and are closed\n"
               "                       (default 256, 0 = unlimited)\n"
               "  --max-output-mb M    answer RESOURCE_EXHAUSTED when one request's\n"
               "                       header declares more than M MiB of decoded\n"
               "                       output (default 0 = library default, 64 GiB)\n"
               "  --max-memory-mb M    global decode memory pool shared by all lanes;\n"
               "                       requests reserve their declared working set\n"
               "                       from it or get RESOURCE_EXHAUSTED\n"
               "                       (default 0 = no shared pool)\n"
               "  --io-timeout-ms T    budget to finish one started read/write\n"
               "                       (default 30000, -1 = none)\n"
               "  --idle-timeout-ms T  reap connections idle between requests for T\n"
               "                       (default 60000, -1 = none)\n"
               "  --request-deadline-ms T  answer DEADLINE_EXCEEDED when a request\n"
               "                       is not done T ms after admission (default 0 = off)\n"
               "  --drain-deadline-ms T  bound on the shutdown drain; leftover jobs\n"
               "                       answer DEADLINE_EXCEEDED (default 30000, -1 = full drain)\n"
               "  --quiet              only the listening line and fatal errors\n");
  std::exit(2);
}

long parse_long(const char* v, const char* what) {
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') usage(what);
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  sperr::server::ServerConfig cfg;
  cfg.workers = 0;  // resolved below: one lane per core
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (++i >= argc) usage(what);
      return argv[i];
    };
    if (a == "--port") {
      const long p = parse_long(next("--port needs a number"), "--port needs a number");
      if (p < 0 || p > 65535) usage("--port must be in [0, 65535]");
      cfg.port = uint16_t(p);
    } else if (a == "--workers") {
      cfg.workers = int(parse_long(next("--workers needs a count"), "--workers needs a count"));
    } else if (a == "--queue-depth") {
      const long q = parse_long(next("--queue-depth needs a count"), "--queue-depth needs a count");
      if (q < 1) usage("--queue-depth must be >= 1");
      cfg.queue_capacity = size_t(q);
    } else if (a == "--request-threads") {
      cfg.threads_per_request =
          int(parse_long(next("--request-threads needs a count"), "--request-threads needs a count"));
    } else if (a == "--intra-threads") {
      cfg.intra_chunk_threads =
          int(parse_long(next("--intra-threads needs a count"), "--intra-threads needs a count"));
    } else if (a == "--max-body-mb") {
      const long m = parse_long(next("--max-body-mb needs a size"), "--max-body-mb needs a size");
      if (m < 1) usage("--max-body-mb must be >= 1");
      cfg.max_body_bytes = size_t(m) << 20;
    } else if (a == "--max-conns") {
      const long n = parse_long(next("--max-conns needs a count"), "--max-conns needs a count");
      if (n < 0) usage("--max-conns must be >= 0");
      cfg.max_connections = size_t(n);
    } else if (a == "--max-output-mb") {
      const long m = parse_long(next("--max-output-mb needs a size"), "--max-output-mb needs a size");
      if (m < 0) usage("--max-output-mb must be >= 0");
      cfg.max_output_bytes = uint64_t(m) << 20;
    } else if (a == "--max-memory-mb") {
      const long m = parse_long(next("--max-memory-mb needs a size"), "--max-memory-mb needs a size");
      if (m < 0) usage("--max-memory-mb must be >= 0");
      cfg.max_memory_bytes = uint64_t(m) << 20;
    } else if (a == "--io-timeout-ms") {
      cfg.io_timeout_ms =
          int(parse_long(next("--io-timeout-ms needs a time"), "--io-timeout-ms needs a time"));
    } else if (a == "--idle-timeout-ms") {
      cfg.idle_timeout_ms =
          int(parse_long(next("--idle-timeout-ms needs a time"), "--idle-timeout-ms needs a time"));
    } else if (a == "--request-deadline-ms") {
      cfg.request_deadline_ms = int(parse_long(next("--request-deadline-ms needs a time"),
                                               "--request-deadline-ms needs a time"));
    } else if (a == "--drain-deadline-ms") {
      cfg.drain_deadline_ms = int(parse_long(next("--drain-deadline-ms needs a time"),
                                             "--drain-deadline-ms needs a time"));
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  cfg.workers = sperr::resolve_thread_count(cfg.workers);

  // Block the shutdown signals before any thread exists so every server
  // thread inherits the mask and only main's sigwait consumes them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  sperr::server::Server server(cfg);
  if (server.start() != sperr::Status::ok) {
    std::fprintf(stderr, "error: cannot bind 127.0.0.1:%u\n", unsigned(cfg.port));
    return 1;
  }
  std::printf("sperr_serve: listening on 127.0.0.1:%u (workers %d, queue %zu)\n",
              unsigned(server.port()), cfg.workers, cfg.queue_capacity);
  std::fflush(stdout);  // scripts parse the port from this line

  int sig = 0;
  sigwait(&sigs, &sig);
  if (!quiet)
    std::printf("sperr_serve: %s, draining and shutting down\n",
                sig == SIGINT ? "SIGINT" : "SIGTERM");
  server.stop();

  if (!quiet) {
    const auto s = server.stats();
    std::printf(
        "sperr_serve: served %llu request(s) in %.1fs "
        "(%llu compress, %llu decompress, %llu verify, %llu extract, %llu stats)\n"
        "sperr_serve: %llu busy rejection(s), %llu error repl(y/ies), "
        "%.1f MB in, %.1f MB out, mean queue wait %.2f ms\n",
        static_cast<unsigned long long>(s.requests_total), s.uptime_seconds,
        static_cast<unsigned long long>(s.compress_count),
        static_cast<unsigned long long>(s.decompress_count),
        static_cast<unsigned long long>(s.verify_count),
        static_cast<unsigned long long>(s.extract_count),
        static_cast<unsigned long long>(s.stats_count),
        static_cast<unsigned long long>(s.rejected_busy),
        static_cast<unsigned long long>(s.errors), double(s.bytes_in) / 1e6,
        double(s.bytes_out) / 1e6,
        s.requests_total ? s.queue_wait_seconds / double(s.requests_total) * 1e3
                         : 0.0);
    std::printf(
        "sperr_serve: %llu connection(s) (%llu rejected at cap), "
        "%llu read timeout(s), %llu write timeout(s), %llu request deadline(s)\n",
        static_cast<unsigned long long>(s.conns_total),
        static_cast<unsigned long long>(s.conns_rejected),
        static_cast<unsigned long long>(s.timeouts_read),
        static_cast<unsigned long long>(s.timeouts_write),
        static_cast<unsigned long long>(s.timeouts_request));
    if (s.resource_exhausted)
      std::printf("sperr_serve: %llu resource-exhausted rejection(s)\n",
                  static_cast<unsigned long long>(s.resource_exhausted));
  }
  return 0;
}
