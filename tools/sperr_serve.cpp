// sperr_serve — long-lived TCP compression server over the SPERR library.
//
//   sperr_serve [--port P] [--workers N] [--queue-depth Q]
//               [--request-threads N] [--intra-threads N]
//               [--max-body-mb M] [--quiet]
//
// Binds 127.0.0.1:P (P = 0 picks an ephemeral port) and speaks the
// length-prefixed binary protocol specified in docs/PROTOCOL.md (COMPRESS /
// DECOMPRESS / VERIFY / EXTRACT_CHUNK / STATS). Prints one "listening on"
// line to stdout once ready — scripts and the CI smoke job parse the port
// from it — then serves until SIGINT/SIGTERM, drains every admitted
// request, prints a final metrics summary, and exits 0.
//
// Tuning guidance lives in docs/OPERATIONS.md. Exit codes follow the
// sperr_cc contract: 0 clean shutdown, 1 I/O (bind) failure, 2 usage error.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/threadpool.h"
#include "server/server.h"

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  sperr_serve [--port P] [--workers N] [--queue-depth Q]\n"
               "              [--request-threads N] [--intra-threads N]\n"
               "              [--max-body-mb M] [--quiet]\n"
               "\n"
               "  --port P             TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
               "  --workers N          request-processing lanes (default 0 = one per core)\n"
               "  --queue-depth Q      bounded-queue high-water mark (default 64)\n"
               "  --request-threads N  OpenMP chunk threads inside one request (default 1)\n"
               "  --intra-threads N    deterministic SPECK lanes per chunk (default 1)\n"
               "  --max-body-mb M      reject frames with bodies over M MiB (default 1024)\n"
               "  --quiet              only the listening line and fatal errors\n");
  std::exit(2);
}

long parse_long(const char* v, const char* what) {
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') usage(what);
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  sperr::server::ServerConfig cfg;
  cfg.workers = 0;  // resolved below: one lane per core
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (++i >= argc) usage(what);
      return argv[i];
    };
    if (a == "--port") {
      const long p = parse_long(next("--port needs a number"), "--port needs a number");
      if (p < 0 || p > 65535) usage("--port must be in [0, 65535]");
      cfg.port = uint16_t(p);
    } else if (a == "--workers") {
      cfg.workers = int(parse_long(next("--workers needs a count"), "--workers needs a count"));
    } else if (a == "--queue-depth") {
      const long q = parse_long(next("--queue-depth needs a count"), "--queue-depth needs a count");
      if (q < 1) usage("--queue-depth must be >= 1");
      cfg.queue_capacity = size_t(q);
    } else if (a == "--request-threads") {
      cfg.threads_per_request =
          int(parse_long(next("--request-threads needs a count"), "--request-threads needs a count"));
    } else if (a == "--intra-threads") {
      cfg.intra_chunk_threads =
          int(parse_long(next("--intra-threads needs a count"), "--intra-threads needs a count"));
    } else if (a == "--max-body-mb") {
      const long m = parse_long(next("--max-body-mb needs a size"), "--max-body-mb needs a size");
      if (m < 1) usage("--max-body-mb must be >= 1");
      cfg.max_body_bytes = size_t(m) << 20;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  cfg.workers = sperr::resolve_thread_count(cfg.workers);

  // Block the shutdown signals before any thread exists so every server
  // thread inherits the mask and only main's sigwait consumes them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  sperr::server::Server server(cfg);
  if (server.start() != sperr::Status::ok) {
    std::fprintf(stderr, "error: cannot bind 127.0.0.1:%u\n", unsigned(cfg.port));
    return 1;
  }
  std::printf("sperr_serve: listening on 127.0.0.1:%u (workers %d, queue %zu)\n",
              unsigned(server.port()), cfg.workers, cfg.queue_capacity);
  std::fflush(stdout);  // scripts parse the port from this line

  int sig = 0;
  sigwait(&sigs, &sig);
  if (!quiet)
    std::printf("sperr_serve: %s, draining and shutting down\n",
                sig == SIGINT ? "SIGINT" : "SIGTERM");
  server.stop();

  if (!quiet) {
    const auto s = server.stats();
    std::printf(
        "sperr_serve: served %llu request(s) in %.1fs "
        "(%llu compress, %llu decompress, %llu verify, %llu extract, %llu stats)\n"
        "sperr_serve: %llu busy rejection(s), %llu error repl(y/ies), "
        "%.1f MB in, %.1f MB out, mean queue wait %.2f ms\n",
        static_cast<unsigned long long>(s.requests_total), s.uptime_seconds,
        static_cast<unsigned long long>(s.compress_count),
        static_cast<unsigned long long>(s.decompress_count),
        static_cast<unsigned long long>(s.verify_count),
        static_cast<unsigned long long>(s.extract_count),
        static_cast<unsigned long long>(s.stats_count),
        static_cast<unsigned long long>(s.rejected_busy),
        static_cast<unsigned long long>(s.errors), double(s.bytes_in) / 1e6,
        double(s.bytes_out) / 1e6,
        s.requests_total ? s.queue_wait_seconds / double(s.requests_total) * 1e3
                         : 0.0);
  }
  return 0;
}
