#!/usr/bin/env bash
# Asserts the sperr_cc exit-code contract (documented at the top of
# tools/sperr_cc.cpp): 0 success, 1 I/O error, 2 usage error, 3 corrupt
# input, 5 resource limit exceeded (decompression bomb or --max-output-mb).
# Also checks that `info --verify` prints one verdict line per chunk
# and that `--recover` survives a damaged archive. Run as a ctest:
#
#   check_cli_codes.sh SPERR_CC MAKE_FIELD WORKDIR
set -u

SPERR_CC=${1:?path to sperr_cc}
MAKE_FIELD=${2:?path to make_field}
WORK=${3:?scratch directory}
mkdir -p "$WORK"

fails=0
expect() { # expect CODE DESC -- cmd...
  local want=$1 desc=$2; shift 3
  "$@" >"$WORK/out.txt" 2>"$WORK/err.txt"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc — expected exit $want, got $got" >&2
    sed 's/^/  stderr: /' "$WORK/err.txt" >&2
    fails=$((fails + 1))
  fi
}

"$MAKE_FIELD" miranda_pressure 48 48 24 "$WORK/field.raw" --type f64 >/dev/null \
  || { echo "FAIL: make_field" >&2; exit 1; }

# --- exit 0: the happy paths -------------------------------------------------
expect 0 "clean compress" -- "$SPERR_CC" c "$WORK/field.raw" "$WORK/a.sperr" \
  --dims 48 48 24 --type f64 --idx 18 --chunk 32 32 32 --no-lossless
expect 0 "clean decompress" -- "$SPERR_CC" d "$WORK/a.sperr" "$WORK/a.raw"
expect 0 "clean info" -- "$SPERR_CC" info "$WORK/a.sperr"
expect 0 "clean info --verify" -- "$SPERR_CC" info "$WORK/a.sperr" --verify
nchunks=$(grep -c '^chunk ' "$WORK/out.txt")
if [ "$nchunks" -lt 4 ]; then
  echo "FAIL: info --verify printed $nchunks chunk lines, want one per chunk (>=4)" >&2
  fails=$((fails + 1))
fi
grep -q 'verify: all .* intact' "$WORK/out.txt" || {
  echo "FAIL: info --verify did not print the all-intact summary" >&2
  fails=$((fails + 1))
}

# --- exit 2: usage errors ----------------------------------------------------
expect 2 "no arguments" -- "$SPERR_CC"
expect 2 "unknown command" -- "$SPERR_CC" frobnicate
expect 2 "unknown option" -- "$SPERR_CC" d "$WORK/a.sperr" "$WORK/a.raw" --bogus
expect 2 "missing quality mode" -- "$SPERR_CC" c "$WORK/field.raw" "$WORK/b.sperr" \
  --dims 48 48 24 --type f64
expect 2 "--drop with --recover" -- "$SPERR_CC" d "$WORK/a.sperr" "$WORK/a.raw" \
  --drop 1 --recover zero
expect 2 "bad --recover value" -- "$SPERR_CC" d "$WORK/a.sperr" "$WORK/a.raw" \
  --recover sideways

# --- exit 1: I/O errors ------------------------------------------------------
expect 1 "missing input file" -- "$SPERR_CC" d "$WORK/nonexistent.sperr" "$WORK/x.raw"
expect 1 "missing info target" -- "$SPERR_CC" info "$WORK/nonexistent.sperr"

# --- exit 3: corrupt input ---------------------------------------------------
# Overwrite a burst in the middle of the archive: with --no-lossless the chunk
# streams sit verbatim there, so this damages exactly one chunk's bytes.
cp "$WORK/a.sperr" "$WORK/bad.sperr"
size=$(wc -c < "$WORK/a.sperr")
head -c 16 /dev/zero | tr '\0' '\377' \
  | dd of="$WORK/bad.sperr" bs=1 seek=$((size / 2)) conv=notrunc 2>/dev/null

expect 3 "decompress corrupt archive" -- "$SPERR_CC" d "$WORK/bad.sperr" "$WORK/bad.raw"
expect 3 "info --verify corrupt archive" -- "$SPERR_CC" info "$WORK/bad.sperr" --verify
grep -q 'checksum BAD' "$WORK/out.txt" || {
  echo "FAIL: info --verify did not flag the damaged chunk's checksum" >&2
  fails=$((fails + 1))
}
expect 3 "garbage input" -- "$SPERR_CC" d "$WORK/field.raw" "$WORK/x.raw"

# --- exit 5: resource limits -------------------------------------------------
# The committed bomb corpus: 96 bytes declaring a 32 TiB decode. Both the
# decoder and the header-only info path must refuse it with exit 5 — and
# fast (an exit-5 that took a minute would mean something was allocated).
BOMB="$(dirname "$0")/fuzz/corpus/container/bomb_dims.sperr"
if [ ! -f "$BOMB" ]; then
  echo "FAIL: bomb corpus file missing: $BOMB" >&2
  fails=$((fails + 1))
else
  expect 5 "decompress bomb container" -- "$SPERR_CC" d "$BOMB" "$WORK/bomb.raw"
  expect 5 "info bomb container" -- "$SPERR_CC" info "$BOMB"
fi

# --max-output-mb binds on honest archives too: a 64^3 f64 field decodes to
# 2 MiB, so a 1 MiB ceiling refuses it and a 16 MiB ceiling admits it.
"$MAKE_FIELD" miranda_pressure 64 64 64 "$WORK/big.raw" --type f64 >/dev/null \
  || { echo "FAIL: make_field (64^3)" >&2; exit 1; }
expect 0 "compress 64^3" -- "$SPERR_CC" c "$WORK/big.raw" "$WORK/big.sperr" \
  --dims 64 64 64 --type f64 --idx 18
expect 5 "decompress past --max-output-mb" -- "$SPERR_CC" d "$WORK/big.sperr" \
  "$WORK/big_out.raw" --max-output-mb 1
expect 0 "decompress within --max-output-mb" -- "$SPERR_CC" d "$WORK/big.sperr" \
  "$WORK/big_out.raw" --max-output-mb 16

# --- recovery: damaged archive, zero-fill still succeeds ---------------------
expect 0 "decompress --recover zero" -- "$SPERR_CC" d "$WORK/bad.sperr" \
  "$WORK/recovered.raw" --recover zero
grep -q 'chunk(s) damaged' "$WORK/out.txt" || {
  echo "FAIL: --recover zero did not report the damaged chunk" >&2
  fails=$((fails + 1))
}
want=$((48 * 48 * 24 * 8))
got=$(wc -c < "$WORK/recovered.raw")
if [ "$got" -ne "$want" ]; then
  echo "FAIL: recovered output is $got bytes, want $want" >&2
  fails=$((fails + 1))
fi

if [ "$fails" -ne 0 ]; then
  echo "check_cli_codes: $fails assertion(s) failed" >&2
  exit 1
fi
echo "check_cli_codes: all exit-code assertions held"
