// sperr_chaos — deterministic socket-fault campaign against sperr_serve.
//
//   sperr_chaos [--port P] [--seed S] [--events N] [--duration-s T] [--quiet]
//
// Places a seeded ChaosProxy (src/server/chaosproxy.h) in front of a
// server and drives request traffic through it with the retrying Client
// until at least N fault events (split writes, mid-body stalls, RSTs,
// half-closes, truncating closes) have actually fired. Every idempotent
// operation (DECOMPRESS / VERIFY / EXTRACT_CHUNK / STATS) must come back
// with status ok despite the faults — one that exhausts its retries fails
// the campaign. COMPRESS traffic rides along (with the client's explicit
// retry_non_idempotent opt-in; the server is stateless) to exercise the
// request-direction fault path with large bodies, but only idempotent
// recovery is asserted.
//
// With --port the campaign targets a live server (the CI chaos-smoke job
// runs this against a sanitized sperr_serve and then asserts the server
// still exits 0). Without it, an in-process server is started — that mode
// is the chaos_selftest ctest. The same --seed replays the same campaign.
//
// Exit codes: 0 campaign complete and all idempotent ops recovered,
// 1 unrecovered operation or the duration cap expired short of the event
// target, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "server/chaosproxy.h"
#include "server/client.h"
#include "server/server.h"
#include "sperr/sperr.h"

namespace {

using namespace sperr;
using namespace sperr::server;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  sperr_chaos [--port P] [--seed S] [--events N] [--duration-s T] [--quiet]\n"
               "\n"
               "  --port P       target a live sperr_serve on 127.0.0.1:P\n"
               "                 (default: start an in-process server = selftest)\n"
               "  --seed S       fault-plan seed (default 42); same seed, same campaign\n"
               "  --events N     stop once N fault events have fired (default 200)\n"
               "  --duration-s T give up (exit 1) after T seconds (default 120)\n"
               "  --quiet        summary line only\n");
  std::exit(2);
}

long parse_long(const char* v, const char* what) {
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') usage(what);
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t target_port = 0;
  bool external = false;
  uint64_t seed = 42;
  uint64_t target_events = 200;
  double duration_s = 120.0;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (++i >= argc) usage(what);
      return argv[i];
    };
    if (a == "--port") {
      const long p = parse_long(next("--port needs a number"), "--port needs a number");
      if (p < 1 || p > 65535) usage("--port must be in [1, 65535]");
      target_port = uint16_t(p);
      external = true;
    } else if (a == "--seed") {
      seed = uint64_t(parse_long(next("--seed needs a number"), "--seed needs a number"));
    } else if (a == "--events") {
      const long n = parse_long(next("--events needs a count"), "--events needs a count");
      if (n < 1) usage("--events must be >= 1");
      target_events = uint64_t(n);
    } else if (a == "--duration-s") {
      duration_s = double(parse_long(next("--duration-s needs seconds"), "--duration-s needs seconds"));
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      usage(("unknown option " + a).c_str());
    }
  }

  // In-process server for the selftest mode. Timeouts are tuned so a
  // planned stall (<= 120 ms) never trips them — the campaign measures
  // recovery from faults, not the server's (separately tested) reaping.
  std::unique_ptr<Server> local;
  if (!external) {
    ServerConfig scfg;
    scfg.workers = 2;
    scfg.queue_capacity = 32;
    scfg.io_timeout_ms = 3000;
    scfg.idle_timeout_ms = 10'000;
    if (local = std::make_unique<Server>(scfg); local->start() != Status::ok) {
      std::fprintf(stderr, "sperr_chaos: cannot start in-process server\n");
      return 1;
    }
    target_port = local->port();
  }

  ChaosConfig ccfg;
  ccfg.upstream_port = target_port;
  ccfg.seed = seed;
  ChaosProxy proxy(ccfg);
  if (!proxy.start()) {
    std::fprintf(stderr, "sperr_chaos: cannot start proxy\n");
    return 1;
  }

  // Deterministic traffic: one small field, compressed locally once; the
  // campaign replays DECOMPRESS / VERIFY / EXTRACT_CHUNK / STATS (asserted)
  // plus COMPRESS (ride-along) against the container.
  const Dims dims{16, 16, 16};
  std::vector<double> field(dims.total());
  Rng rng(seed);
  for (double& v : field) v = rng.gaussian();
  Config ccfg2;
  ccfg2.mode = Mode::pwe;
  ccfg2.tolerance = 1e-3;
  const std::vector<uint8_t> container = compress(field.data(), dims, ccfg2);
  if (container.empty()) {
    std::fprintf(stderr, "sperr_chaos: local compress failed\n");
    return 1;
  }
  const auto decompress_body = build_decompress_body(0, 8, container.data(), container.size());
  const auto extract_body = build_extract_body(0, container.data(), container.size());
  const auto compress_body = build_compress_body(ccfg2, dims, field.data());

  ClientConfig kcfg;
  kcfg.port = proxy.port();
  kcfg.op_timeout_ms = 5000;
  kcfg.connect_budget_ms = 10'000;
  // DECOMPRESS replies span the whole fault-offset window, so a single
  // attempt dies with probability well over one half; a generous attempt
  // bound keeps the campaign's "every idempotent op recovers" assertion
  // meaningful rather than luck-dependent.
  kcfg.max_attempts = 25;
  kcfg.retry_budget = uint64_t(1) << 20;
  kcfg.backoff_base_ms = 2;
  kcfg.backoff_cap_ms = 50;
  kcfg.retry_non_idempotent = true;  // stateless server; exercises c2s faults
  kcfg.seed = seed ^ 0xc11e47ULL;
  Client client(kcfg);

  Timer clock;
  uint64_t unrecovered = 0;
  uint64_t batches = 0;
  const struct {
    Opcode op;
    const std::vector<uint8_t>* body;
    bool asserted;
  } mix[] = {
      {Opcode::stats, nullptr, true},
      {Opcode::verify, &container, true},
      {Opcode::decompress, &decompress_body, true},
      {Opcode::extract_chunk, &extract_body, true},
      {Opcode::compress, &compress_body, false},
  };
  const std::vector<uint8_t> empty;
  while (proxy.counters().events() < target_events) {
    if (clock.seconds() > duration_s) break;
    for (const auto& m : mix) {
      const CallResult res = client.call(m.op, m.body ? *m.body : empty);
      if (m.asserted && !(res.ok && res.status == WireStatus::ok)) {
        ++unrecovered;
        if (!quiet)
          std::fprintf(stderr,
                       "sperr_chaos: opcode %u unrecovered after %d attempt(s) "
                       "(ok=%d status=%s)\n",
                       unsigned(m.op), res.attempts, int(res.ok),
                       to_string(res.status));
      }
    }
    ++batches;
    // Force a fresh proxy connection (and with it a fresh fault plan) so
    // campaigns make progress even through fault-free control connections.
    client.disconnect();
  }

  const ChaosCounters c = proxy.counters();
  const ClientStats& ks = client.stats();
  const bool reached = c.events() >= target_events;
  std::printf(
      "sperr_chaos: seed %llu: %llu event(s) over %llu connection(s) in %llu "
      "batch(es) [%llu split, %llu stall, %llu rst, %llu half_close, %llu "
      "truncate]\n"
      "sperr_chaos: client: %llu call(s), %llu retrie(s), %llu reconnect(s), "
      "%llu transport error(s), %llu giveup(s); %llu unrecovered idempotent "
      "op(s)%s\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(c.events()),
      static_cast<unsigned long long>(c.connections),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(c.splits),
      static_cast<unsigned long long>(c.stalls),
      static_cast<unsigned long long>(c.rsts),
      static_cast<unsigned long long>(c.half_closes),
      static_cast<unsigned long long>(c.truncates),
      static_cast<unsigned long long>(ks.calls),
      static_cast<unsigned long long>(ks.retries),
      static_cast<unsigned long long>(ks.reconnects),
      static_cast<unsigned long long>(ks.transport_errors),
      static_cast<unsigned long long>(ks.giveups),
      static_cast<unsigned long long>(unrecovered),
      reached ? "" : " [DURATION CAP HIT SHORT OF TARGET]");
  proxy.stop();
  if (local) local->stop();
  return (unrecovered == 0 && reached) ? 0 : 1;
}
