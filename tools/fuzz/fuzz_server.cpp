// Fuzz target: end-to-end bytes -> server handler. A real in-process Server
// (one worker lane, tight memory budget) is started once; every fuzz input
// becomes one correctly framed request — first byte selects the opcode,
// the rest is the body verbatim — so the fuzzer explores the handlers'
// body parsers and the decode stack behind them, not the framing rejects.
// The server must answer every input with *some* status and stay alive;
// a crashed worker or a wedged connection is the bug being hunted.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "server/protocol.h"
#include "server/server.h"

namespace {

sperr::server::Server* start_server() {
  sperr::server::ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.max_body_bytes = size_t(1) << 20;      // fuzz inputs are small
  cfg.max_output_bytes = uint64_t(1) << 22;  // 4 MiB per request
  cfg.max_memory_bytes = uint64_t(1) << 23;  // 8 MiB shared pool
  cfg.io_timeout_ms = 5'000;
  cfg.idle_timeout_ms = -1;  // the harness connection legitimately idles
  auto* server = new sperr::server::Server(cfg);
  if (server->start() != sperr::Status::ok) std::abort();
  return server;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace sperr::server;
  static Server* server = start_server();
  static int fd = connect_loopback(server->port());
  if (size == 0) return 0;

  // Opcodes 1..4 (compress / decompress / verify / extract_chunk); STATS
  // requires an empty body and is covered by the roundtrip below anyway
  // when size == 1 maps to a zero-length body.
  const auto op = Opcode(1 + data[0] % 4);
  const std::vector<uint8_t> body(data + 1, data + size);

  FrameHeader reply_hdr;
  std::vector<uint8_t> reply_body;
  if (fd < 0 ||
      !roundtrip(fd, op, /*request_id=*/1, body, reply_hdr, reply_body)) {
    // Transport failure: the server closes connections on framing doubt,
    // never on a well-framed hostile body — reconnect and keep fuzzing
    // (a server that died entirely will fail the reconnect and every
    // subsequent input, which libFuzzer surfaces as a hang/timeout).
    if (fd >= 0) ::close(fd);
    fd = connect_loopback(server->port());
  }
  return 0;
}
