// Fuzz target: wire-frame and STATS-body parsing — the pure byte-level
// parsers a hostile client controls before any request reaches a worker.
// parse_frame_header consumes exactly kFrameHeaderBytes; StatsSnapshot::
// parse must reject every length except the documented growth points
// (168 / 216 / >= 224) without reading out of bounds.

#include <cstddef>
#include <cstdint>

#include "server/metrics.h"
#include "server/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace sperr::server;
  if (size >= kFrameHeaderBytes) {
    const FrameHeader h = parse_frame_header(data);
    // Exercise the classifier helpers on whatever the bytes decoded to.
    (void)to_string(WireStatus(h.code));
    (void)is_retryable(WireStatus(h.code));
  }
  StatsSnapshot snap;
  (void)StatsSnapshot::parse(data, size, snap);
  return 0;
}
