#!/usr/bin/env bash
# Replay the committed fuzz corpus through every standalone harness binary.
# Ctest entry point (fuzz_regression): exits non-zero when any harness
# crashes, reports a sanitizer error, or a corpus directory is missing —
# an empty corpus would silently test nothing.
#
#   usage: run_regression.sh BIN_DIR CORPUS_DIR
set -euo pipefail

bin_dir=$1
corpus_dir=$2

for t in container lossless wire server; do
    dir="$corpus_dir/$t"
    if ! compgen -G "$dir/*" > /dev/null; then
        echo "fuzz_regression: no corpus files under $dir" >&2
        exit 1
    fi
    "$bin_dir/fuzz_${t}_replay" "$dir"/*
done

echo "fuzz_regression: all corpora replayed clean"
