// Regenerates the committed fuzz seed corpus (tools/fuzz/corpus/). Seeds are
// small, deterministic, and split per target:
//
//   container/  valid containers (lossless / not), a truncation, and the
//               bomb corpus: tiny headers declaring terabytes of output,
//               a chunk-grid explosion, and a max-expansion lossless
//               payload — each must be answered resource_exhausted, never
//               allocated.
//   lossless/   valid blocked + reference streams, a truncation, and a
//               reference header declaring a 2 TiB raw size.
//   wire/       frame headers (valid / wrong magic) and STATS bodies at
//               every documented growth point (168 / 216 / 224 bytes).
//   server/     end-to-end request seeds for fuzz_server: selector byte +
//               request body (valid decompress, bomb decompress, verify,
//               extract, small compress).
//
//   usage: make_fuzz_corpus CORPUS_DIR
//
// Run from the repo root after a format change, then commit the output:
//   build/tools/fuzz/make_fuzz_corpus tools/fuzz/corpus

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/byteio.h"
#include "lossless/codec.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "sperr/sperr.h"

namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("  %s (%zu bytes)\n", path.c_str(), bytes.size());
}

/// A small smooth field the encoder compresses well (16^3 doubles).
std::vector<double> smooth_field(sperr::Dims d) {
  std::vector<double> f(d.total());
  for (size_t z = 0; z < d.z; ++z)
    for (size_t y = 0; y < d.y; ++y)
      for (size_t x = 0; x < d.x; ++x)
        f[d.index(x, y, z)] =
            std::sin(0.4 * double(x)) + std::cos(0.3 * double(y + z));
  return f;
}

std::vector<uint8_t> valid_container(bool lossless) {
  const sperr::Dims dims{16, 16, 16};
  const auto field = smooth_field(dims);
  sperr::Config cfg;
  cfg.mode = sperr::Mode::pwe;
  cfg.tolerance = 1e-3;
  cfg.lossless_pass = lossless;
  return sperr::compress(field.data(), dims, cfg);
}

/// Hand-crafted v2 container (16-byte directory entries, no checksums):
/// outer wrapper + inner header + one empty chunk entry. The header is what
/// matters — the declared dims/chunk grid are the bomb.
std::vector<uint8_t> bomb_container(sperr::Dims dims, sperr::Dims chunk_dims) {
  std::vector<uint8_t> inner;
  sperr::put_u32(inner, 0x43525053);  // 'SPRC'
  sperr::put_u8(inner, 0);            // mode = pwe
  sperr::put_u8(inner, 8);            // precision = f64
  sperr::put_u64(inner, dims.x);
  sperr::put_u64(inner, dims.y);
  sperr::put_u64(inner, dims.z);
  sperr::put_u64(inner, chunk_dims.x);
  sperr::put_u64(inner, chunk_dims.y);
  sperr::put_u64(inner, chunk_dims.z);
  sperr::put_f64(inner, 1e-6);        // quality
  sperr::put_u32(inner, 1);           // nchunks
  sperr::put_u64(inner, 0);           // entry 0: speck_len
  sperr::put_u64(inner, 0);           // entry 0: outlier_len

  std::vector<uint8_t> out;
  sperr::put_u32(out, 0x5a525053);  // 'SPRZ'
  sperr::put_u8(out, 2);            // container version 2 (no header checksum)
  sperr::put_u8(out, 0);            // lossless pass: off
  sperr::put_u64(out, inner.size());
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

/// Reference lossless framing declaring `raw_size` decoded bytes out of a
/// few payload bytes: mode byte + u64 raw size (+ filler).
std::vector<uint8_t> bomb_reference_stream(uint64_t raw_size) {
  std::vector<uint8_t> s;
  sperr::put_u8(s, 1);  // kModeLz
  sperr::put_u64(s, raw_size);
  for (int i = 0; i < 16; ++i) sperr::put_u8(s, 0xa5);
  return s;
}

/// A container whose *lossless payload* is the bomb: the outer wrapper says
/// "lossless-coded inner container", the payload declares 2 TiB raw.
std::vector<uint8_t> bomb_lossless_container() {
  const auto payload = bomb_reference_stream(uint64_t(1) << 41);
  std::vector<uint8_t> out;
  sperr::put_u32(out, 0x5a525053);  // 'SPRZ'
  sperr::put_u8(out, 3);
  sperr::put_u8(out, 1);  // lossless pass: on
  sperr::put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> truncate(std::vector<uint8_t> v, double keep) {
  v.resize(size_t(double(v.size()) * keep));
  return v;
}

/// fuzz_server input: selector byte (opcode = 1 + sel % 4) + body bytes.
std::vector<uint8_t> server_input(uint8_t selector,
                                  const std::vector<uint8_t>& body) {
  std::vector<uint8_t> out;
  out.push_back(selector);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s CORPUS_DIR\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  for (const char* sub : {"container", "lossless", "wire", "server"})
    fs::create_directories(root / sub);

  // --- container ------------------------------------------------------------
  const auto valid = valid_container(/*lossless=*/true);
  const auto valid_raw = valid_container(/*lossless=*/false);
  // 32 TiB of declared output from < 1 KiB of header.
  const auto bomb_dims = bomb_container({size_t(1) << 21, size_t(1) << 21, 1},
                                        {256, 256, 256});
  // Plausible output size, but a chunk grid whose enumeration alone would
  // allocate gigabytes (2^32 one-voxel chunks).
  const auto bomb_chunks =
      bomb_container({size_t(1) << 20, size_t(1) << 12, 1}, {1, 1, 1});
  const auto bomb_lossless = bomb_lossless_container();
  write_file(root / "container" / "seed_valid.sperr", valid);
  write_file(root / "container" / "seed_nolossless.sperr", valid_raw);
  write_file(root / "container" / "seed_truncated.sperr", truncate(valid, 0.6));
  write_file(root / "container" / "bomb_dims.sperr", bomb_dims);
  write_file(root / "container" / "bomb_chunks.sperr", bomb_chunks);
  write_file(root / "container" / "bomb_lossless.sperr", bomb_lossless);

  // --- lossless -------------------------------------------------------------
  std::vector<uint8_t> bytes(64 * 1024);
  for (size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = uint8_t((i * 31) ^ (i >> 7));
  const auto blocked = sperr::lossless::compress(bytes);
  const auto reference = sperr::lossless::encode_reference(bytes);
  write_file(root / "lossless" / "seed_blocked.lz", blocked);
  write_file(root / "lossless" / "seed_reference.lz", reference);
  write_file(root / "lossless" / "seed_truncated.lz", truncate(blocked, 0.5));
  write_file(root / "lossless" / "bomb_rawsize.lz",
             bomb_reference_stream(uint64_t(1) << 41));

  // --- wire -----------------------------------------------------------------
  using namespace sperr::server;
  {
    std::vector<uint8_t> frame;
    put_frame_header(frame, kRequestMagic, uint8_t(Opcode::stats),
                     /*request_id=*/7, /*body_len=*/0);
    write_file(root / "wire" / "frame_stats.bin", frame);
    frame.clear();
    put_frame_header(frame, 0xdeadbeef, 0xff, ~uint64_t(0), ~uint64_t(0));
    write_file(root / "wire" / "frame_hostile.bin", frame);
  }
  {
    StatsSnapshot s;
    s.requests_total = 3;
    s.resource_exhausted = 1;
    const auto body = s.serialize();
    write_file(root / "wire" / "stats_224.bin", body);
    std::vector<uint8_t> v1(body.begin(), body.begin() + kStatsReplyBytesV1);
    write_file(root / "wire" / "stats_216.bin", v1);
    std::vector<uint8_t> v0(body.begin(), body.begin() + kStatsReplyBytesV0);
    write_file(root / "wire" / "stats_168.bin", v0);
    write_file(root / "wire" / "stats_short.bin",
               std::vector<uint8_t>(body.begin(), body.begin() + 9));
  }

  // --- server (selector byte + request body) --------------------------------
  write_file(root / "server" / "decompress_valid.bin",
             server_input(1, build_decompress_body(0, 8, valid.data(),
                                                   valid.size())));
  write_file(root / "server" / "decompress_bomb.bin",
             server_input(1, build_decompress_body(0, 8, bomb_dims.data(),
                                                   bomb_dims.size())));
  write_file(root / "server" / "verify_valid.bin", server_input(2, valid));
  write_file(root / "server" / "extract_chunk0.bin",
             server_input(3, build_extract_body(0, valid.data(), valid.size())));
  {
    const sperr::Dims dims{8, 8, 8};
    const auto field = smooth_field(dims);
    sperr::Config cfg;
    cfg.mode = sperr::Mode::pwe;
    cfg.tolerance = 1e-3;
    write_file(root / "server" / "compress_small.bin",
               server_input(0, build_compress_body(cfg, dims, field.data())));
  }
  std::printf("corpus regenerated under %s\n", root.c_str());
  return 0;
}
