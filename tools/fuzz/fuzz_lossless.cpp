// Fuzz target: the blocked lossless codec's three decode paths — strict,
// tolerant (zero-fill salvage), and the legacy reference framing — plus the
// directory-only inspect() used by `sperr_cc info`. All three entropy tags
// (raw / Huffman / arithmetic) are reachable: the per-block tag byte comes
// straight from the fuzzed directory. Tight ResourceLimits keep a declared
// multi-gigabyte raw size an O(1) rejection.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/resource.h"
#include "lossless/codec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  sperr::ResourceLimits rl = sperr::ResourceLimits::defaults();
  rl.max_output_bytes = uint64_t(1) << 24;  // 16 MiB
  rl.max_working_bytes = uint64_t(1) << 24;
  rl.max_chunks = uint64_t(1) << 12;        // also bounds lossless block count

  {
    std::vector<uint8_t> out;
    size_t corrupt_block = 0;
    (void)sperr::lossless::decompress(data, size, out, &corrupt_block,
                                      /*num_threads=*/1, &rl);
  }
  {
    std::vector<uint8_t> out;
    std::vector<size_t> bad_blocks;
    (void)sperr::lossless::decompress_tolerant(data, size, out, bad_blocks,
                                               /*num_threads=*/1, &rl);
  }
  {
    std::vector<uint8_t> out;
    (void)sperr::lossless::decode_reference(data, size, out, &rl);
  }
  {
    sperr::lossless::StreamInfo info;
    (void)sperr::lossless::inspect(data, size, info);
  }
  return 0;
}
