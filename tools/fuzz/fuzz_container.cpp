// Fuzz target: container + directory parsing and every decode entry point
// that consumes a whole container (tolerant decode, verify, low-res). The
// ResourceLimits are deliberately tight so a fuzzer-invented bomb header is
// answered resource_exhausted instead of sizing a giant allocation — the
// harness asserts nothing beyond "no crash, no sanitizer report": every
// outcome (ok, corrupt, truncated, resource_exhausted) is a valid answer
// for arbitrary bytes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/resource.h"
#include "sperr/header.h"
#include "sperr/sperr.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  sperr::ResourceLimits rl = sperr::ResourceLimits::defaults();
  rl.max_output_bytes = uint64_t(1) << 24;   // 16 MiB: ample for fuzz inputs
  rl.max_working_bytes = uint64_t(1) << 24;
  rl.max_chunks = uint64_t(1) << 12;

  // Header + directory parse alone (the sperr_cc info path).
  {
    std::vector<uint8_t> inner;
    sperr::ContainerHeader hdr;
    size_t payload_pos = 0, bad_block = 0;
    (void)sperr::open_container(data, size, inner, hdr, &payload_pos, &bad_block,
                                &rl);
  }
  // Full tolerant decode under each recovery policy (fail_fast is a strict
  // subset of the zero_fill control flow; coarse_fill exercises the SPECK
  // prefix decoder on damaged chunks).
  for (const auto policy :
       {sperr::Recovery::zero_fill, sperr::Recovery::coarse_fill}) {
    std::vector<double> field;
    sperr::Dims dims;
    sperr::DecodeReport rep;
    (void)sperr::decompress_tolerant(data, size, policy, field, dims, &rep, &rl);
  }
  // Integrity audit (no payload decode) and the multi-resolution path.
  {
    sperr::DecodeReport rep;
    (void)sperr::verify_container(data, size, &rep, &rl);
  }
  {
    std::vector<double> coarse;
    sperr::Dims cdims;
    (void)sperr::decompress_lowres(data, size, 1, coarse, cdims, &rl);
  }
  return 0;
}
