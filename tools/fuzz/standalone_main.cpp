// File-replay driver for the fuzz harnesses on toolchains without libFuzzer
// (the gcc CI builds): each argv names a file whose bytes are fed through
// LLVMFuzzerTestOneInput exactly once. The fuzz_regression ctest runs the
// committed corpus through these binaries — its contract is simply "every
// input processes without crashing" (sanitizers, when enabled at configure
// time, turn memory errors into crashes).
//
// The libFuzzer builds (-DSPERR_BUILD_FUZZERS=ON, clang) link the same
// harness translation units against -fsanitize=fuzzer instead of this main.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s CORPUS_FILE...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[i]);
      return 1;
    }
    std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++replayed;
  }
  std::printf("%s: replayed %d input(s) clean\n", argv[0], replayed);
  return 0;
}
