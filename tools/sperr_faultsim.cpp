// sperr_faultsim — deterministic fault-injection campaigns against the
// fault-isolation layer. Builds a known-good multi-chunk archive, derives a
// reproducible fault plan per seed (bit flips, byte bursts, zeroed ranges,
// tail truncation, slice duplication/reordering), applies it, and checks the
// recovery invariants the format promises:
//
//   I1  no crash, and any ok decode yields a full-size, finite field;
//   I2  report honesty: a chunk whose report says ok is bit-identical to the
//       clean decode (fill policies);
//   I3  detection: every chunk whose stored bytes the plan actually changed
//       (exact ground truth from faultinject::damaged_slices) is flagged;
//   I4  fail_fast coherence: ok iff nothing was damaged, and then the output
//       equals the clean decode everywhere;
//   I5  the out-of-core reader produces the same bytes as the in-memory
//       tolerant decoder under zero_fill.
//
//   sperr_faultsim [--seeds N] [--seed-start S] [--faults K]
//                  [--save-failing DIR] [--selftest]
//
// Exit 0 when every seed holds every invariant, 1 otherwise (failing seeds
// are listed; --save-failing writes each failing mutant + its plan).
//
// CI runs this under ASan/UBSan over a seed matrix (fuzz-smoke job).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/faultinject.h"
#include "data/synthetic.h"
#include "lossless/codec.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/outofcore.h"
#include "sperr/sperr.h"

namespace {

using namespace sperr;

constexpr size_t kOuterBytes = 14;  // magic + version + lossless flag + length

struct Baseline {
  std::vector<uint8_t> blob;
  std::vector<double> clean;  ///< clean decode of `blob`
  Dims dims;
  Dims chunk_dims;
  std::vector<Chunk> chunks;
  std::vector<faultinject::ByteRange> slices;  ///< fault targets within blob
  bool slices_are_chunks = false;  ///< slice i == chunk i's streams
};

/// Eight-chunk archive with the chunk streams as the slice table (lossless
/// pass off, so chunk bytes sit verbatim in the blob).
Baseline make_chunk_baseline() {
  Baseline b;
  b.dims = Dims{48, 48, 48};
  b.chunk_dims = Dims{24, 24, 24};
  const auto field = data::miranda_pressure(b.dims, 5);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 16);
  cfg.chunk_dims = b.chunk_dims;
  cfg.lossless_pass = false;
  b.blob = compress(field.data(), b.dims, cfg);

  std::vector<uint8_t> inner;
  ContainerHeader hdr;
  size_t payload_pos = 0;
  if (open_container(b.blob.data(), b.blob.size(), inner, hdr, &payload_pos) !=
      Status::ok) {
    std::fprintf(stderr, "faultsim: cannot parse own baseline\n");
    std::exit(1);
  }
  size_t pos = kOuterBytes + payload_pos;
  for (const ChunkEntry& e : hdr.entries) {
    b.slices.push_back({pos, size_t(e.total_len())});
    pos += size_t(e.total_len());
  }
  b.slices_are_chunks = true;
  b.chunks = make_chunks(b.dims, b.chunk_dims);

  Dims od;
  if (decompress(b.blob.data(), b.blob.size(), b.clean, od) != Status::ok) {
    std::fprintf(stderr, "faultsim: baseline decode failed\n");
    std::exit(1);
  }
  return b;
}

/// Same archive with the lossless pass on; slices are the lossless blocks.
Baseline make_lossless_baseline() {
  Baseline b;
  b.dims = Dims{48, 48, 48};
  b.chunk_dims = Dims{24, 24, 24};
  const auto field = data::miranda_pressure(b.dims, 5);
  Config cfg;
  cfg.tolerance = tolerance_from_idx(field.data(), field.size(), 16);
  cfg.chunk_dims = b.chunk_dims;
  cfg.lossless_block_size = size_t(1) << 12;  // several blocks
  b.blob = compress(field.data(), b.dims, cfg);

  lossless::StreamInfo info;
  if (lossless::inspect(b.blob.data() + kOuterBytes, b.blob.size() - kOuterBytes,
                        info) != Status::ok ||
      !info.blocked) {
    std::fprintf(stderr, "faultsim: lossless baseline not blocked\n");
    std::exit(1);
  }
  for (const auto& bi : info.blocks)
    b.slices.push_back({kOuterBytes + size_t(bi.offset), size_t(bi.comp_size)});
  b.chunks = make_chunks(b.dims, b.chunk_dims);

  Dims od;
  if (decompress(b.blob.data(), b.blob.size(), b.clean, od) != Status::ok) {
    std::fprintf(stderr, "faultsim: baseline decode failed\n");
    std::exit(1);
  }
  return b;
}

bool chunk_matches_clean(const Baseline& b, const std::vector<double>& out,
                         size_t ci) {
  const Chunk& c = b.chunks[ci];
  for (size_t z = 0; z < c.dims.z; ++z)
    for (size_t y = 0; y < c.dims.y; ++y)
      for (size_t x = 0; x < c.dims.x; ++x) {
        const size_t vi =
            b.dims.index(c.origin.x + x, c.origin.y + y, c.origin.z + z);
        if (!(out[vi] == b.clean[vi])) return false;
      }
  return true;
}

bool chunk_is_finite(const Baseline& b, const std::vector<double>& out, size_t ci) {
  const Chunk& c = b.chunks[ci];
  for (size_t z = 0; z < c.dims.z; ++z)
    for (size_t y = 0; y < c.dims.y; ++y)
      for (size_t x = 0; x < c.dims.x; ++x) {
        const size_t vi =
            b.dims.index(c.origin.x + x, c.origin.y + y, c.origin.z + z);
        if (!std::isfinite(out[vi])) return false;
      }
  return true;
}

struct Options {
  uint64_t seed_start = 1;
  size_t seeds = 100;
  size_t faults = 3;
  std::string save_dir;
  bool ooc = true;  ///< also run the out-of-core equivalence check (I5)
};

std::string g_failure;  // first invariant violated for the current seed

bool fail(const std::string& what) {
  if (g_failure.empty()) g_failure = what;
  return false;
}

/// Run one seed against one baseline; returns false on invariant violation.
bool run_seed(const Baseline& b, uint64_t seed, const Options& opt,
              const std::vector<faultinject::Fault>& faults,
              const std::vector<uint8_t>& mutated) {
  const auto damaged = faultinject::damaged_slices(
      b.blob.data(), b.blob.size(), b.slices, faults);

  // fail_fast (I1, I4).
  {
    std::vector<double> out;
    Dims od;
    DecodeReport rep;
    const Status s = decompress_tolerant(mutated.data(), mutated.size(),
                                         Recovery::fail_fast, out, od, &rep);
    if (s == Status::ok) {
      if (rep.damaged != 0) return fail("fail_fast ok with damage reported");
      if (out.size() != b.dims.total()) return fail("fail_fast ok, wrong size");
      for (size_t i = 0; i < out.size(); ++i)
        if (!(out[i] == b.clean[i])) return fail("fail_fast ok, field differs");
    } else if (rep.header_ok && rep.damaged == 0 &&
               rep.lossless_bad_blocks.empty()) {
      return fail("fail_fast error without naming any damage");
    }
  }

  // Fill policies (I1, I2, I3).
  for (const Recovery policy : {Recovery::zero_fill, Recovery::coarse_fill}) {
    std::vector<double> out;
    Dims od;
    DecodeReport rep;
    const Status s =
        decompress_tolerant(mutated.data(), mutated.size(), policy, out, od, &rep);
    if (s != Status::ok) continue;  // wrapper/header/directory destroyed: fine
    if (out.size() != b.dims.total()) return fail("fill policy ok, wrong size");
    if (rep.chunks.size() != b.chunks.size())
      return fail("fill policy ok, wrong chunk count");
    for (size_t i = 0; i < rep.chunks.size(); ++i) {
      if (rep.chunks[i].status == Status::ok) {
        if (!chunk_matches_clean(b, out, i))
          return fail("chunk reported ok but differs from clean decode (I2)");
      } else if (!chunk_is_finite(b, out, i)) {
        return fail("patched chunk contains non-finite values (I1)");
      }
    }
    if (b.slices_are_chunks) {
      for (const size_t ci : damaged)
        if (rep.chunks[ci].status == Status::ok)
          return fail("damaged chunk " + std::to_string(ci) +
                      " not flagged (I3)");
    }
  }

  // Out-of-core equivalence (I5).
  if (opt.ooc) {
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string dir = tmpdir && *tmpdir ? tmpdir : "/tmp";
    const std::string in_path =
        dir + "/faultsim_" + std::to_string(seed) + ".sperr";
    const std::string out_path =
        dir + "/faultsim_" + std::to_string(seed) + ".raw";
    {
      std::ofstream f(in_path, std::ios::binary);
      f.write(reinterpret_cast<const char*>(mutated.data()),
              std::streamsize(mutated.size()));
      if (!f.good()) return fail("cannot write scratch file");
    }
    std::vector<double> mem;
    Dims od;
    const Status ms = decompress_tolerant(mutated.data(), mutated.size(),
                                          Recovery::zero_fill, mem, od, nullptr);
    DecodeReport frep;
    const Status fs = outofcore::decompress_file(in_path, out_path, 8,
                                                 Recovery::zero_fill, &frep);
    std::remove(in_path.c_str());
    if ((ms == Status::ok) != (fs == Status::ok)) {
      std::remove(out_path.c_str());
      return fail("out-of-core verdict differs from in-memory (I5)");
    }
    if (fs == Status::ok) {
      std::ifstream f(out_path, std::ios::binary);
      std::vector<double> disk(mem.size());
      if (!f.read(reinterpret_cast<char*>(disk.data()),
                  std::streamsize(disk.size() * 8))) {
        std::remove(out_path.c_str());
        return fail("out-of-core output file short (I5)");
      }
      if (std::memcmp(disk.data(), mem.data(), mem.size() * 8) != 0) {
        std::remove(out_path.c_str());
        return fail("out-of-core bytes differ from in-memory (I5)");
      }
    }
    std::remove(out_path.c_str());
  }
  return true;
}

void save_failing(const Options& opt, const char* variant, uint64_t seed,
                  const std::vector<faultinject::Fault>& faults,
                  const std::vector<uint8_t>& mutated) {
  if (opt.save_dir.empty()) return;
  const std::string stem =
      opt.save_dir + "/" + variant + "_seed" + std::to_string(seed);
  std::ofstream blob(stem + ".sperr", std::ios::binary);
  blob.write(reinterpret_cast<const char*>(mutated.data()),
             std::streamsize(mutated.size()));
  std::ofstream plan(stem + ".txt");
  plan << "variant " << variant << " seed " << seed << "\n";
  plan << "violated: " << g_failure << "\n";
  for (const auto& f : faults) plan << faultinject::to_string(f) << "\n";
}

int run_campaign(const Options& opt) {
  const Baseline chunk_base = make_chunk_baseline();
  const Baseline lossless_base = make_lossless_baseline();
  const std::pair<const char*, const Baseline*> variants[] = {
      {"chunks", &chunk_base}, {"lossless", &lossless_base}};

  size_t failures = 0, with_damage = 0;
  for (uint64_t seed = opt.seed_start; seed < opt.seed_start + opt.seeds; ++seed) {
    for (const auto& [name, base] : variants) {
      const auto faults =
          faultinject::plan(seed, opt.faults, base->slices, base->blob.size());
      const auto mutated = faultinject::apply(base->blob.data(), base->blob.size(),
                                              base->slices, faults);
      with_damage += !faultinject::damaged_slices(base->blob.data(),
                                                  base->blob.size(), base->slices,
                                                  faults)
                          .empty();
      g_failure.clear();
      if (!run_seed(*base, seed, opt, faults, mutated)) {
        ++failures;
        std::fprintf(stderr, "FAIL %s seed %llu: %s\n", name,
                     static_cast<unsigned long long>(seed), g_failure.c_str());
        for (const auto& f : faults)
          std::fprintf(stderr, "  %s\n", faultinject::to_string(f).c_str());
        save_failing(opt, name, seed, faults, mutated);
      }
    }
  }

  std::printf("faultsim: %zu seeds x 2 variants, %zu plans caused damage, "
              "%zu invariant violations\n",
              opt.seeds, with_damage, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (++i >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[i];
    };
    if (a == "--seeds")
      opt.seeds = size_t(std::atoll(next()));
    else if (a == "--seed-start")
      opt.seed_start = uint64_t(std::atoll(next()));
    else if (a == "--faults")
      opt.faults = size_t(std::atoll(next()));
    else if (a == "--save-failing")
      opt.save_dir = next();
    else if (a == "--no-ooc")
      opt.ooc = false;
    else if (a == "--selftest")
      selftest = true;
    else {
      std::fprintf(stderr,
                   "usage: sperr_faultsim [--seeds N] [--seed-start S] "
                   "[--faults K] [--save-failing DIR] [--no-ooc] [--selftest]\n");
      return 2;
    }
  }
  if (selftest) {
    opt.seeds = 25;
    opt.seed_start = 1;
    opt.faults = 3;
  }
  return run_campaign(opt);
}
