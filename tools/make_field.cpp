// make_field — write one of the synthetic benchmark fields to a raw binary
// file (x-fastest, little endian), so sperr_cc and external tools have
// realistic data to chew on without any external data sets.
//
//   make_field FIELD NX NY NZ OUT.raw [--type f32|f64] [--seed N]
//
// FIELD is any name from sperr::data::field_names().

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: make_field FIELD NX NY NZ OUT.raw [--type f32|f64] "
                 "[--seed N]\nfields:");
    for (const auto& n : sperr::data::field_names())
      std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::string name = argv[1];
  const sperr::Dims dims{size_t(std::atoll(argv[2])), size_t(std::atoll(argv[3])),
                         size_t(std::atoll(argv[4]))};
  const std::string out_path = argv[5];
  std::string type = "f64";
  uint64_t seed = 0;
  for (int i = 6; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--type") == 0) type = argv[i + 1];
    if (std::strcmp(argv[i], "--seed") == 0) seed = uint64_t(std::atoll(argv[i + 1]));
  }

  std::vector<double> field;
  try {
    field = sperr::data::make_field(name, dims, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (type == "f32") {
    std::vector<float> f32(field.begin(), field.end());
    out.write(reinterpret_cast<const char*>(f32.data()),
              std::streamsize(f32.size() * 4));
  } else {
    out.write(reinterpret_cast<const char*>(field.data()),
              std::streamsize(field.size() * 8));
  }

  const auto stats = sperr::compute_stats(field.data(), field.size());
  std::printf("%s %s %s: range [%.6g, %.6g], sigma %.6g -> %s\n", name.c_str(),
              dims.to_string().c_str(), type.c_str(), stats.min, stats.max,
              stats.stddev(), out_path.c_str());
  return 0;
}
