#!/usr/bin/env python3
"""Perf-regression gate over bench_micro JSON records.

Usage:
    check_bench.py BASELINE.json CURRENT.json [BASELINE2 CURRENT2 ...]
    check_bench.py --fail-pct 15 --warn-pct 5 base.json cur.json

Compares each CURRENT record (a fresh bench_micro run) against its committed
BASELINE and exits non-zero on a regression beyond --fail-pct (default 15%);
regressions beyond --warn-pct (default 5%) are reported but do not fail the
gate. CI runners are noisy and run smaller problem sizes than the committed
baselines, so metrics are gated by class:

  * Correctness booleans (round_trip_ok, bit_identical, recovery_ok, ...)
    must be true in CURRENT. Always checked; a false is always a failure.
  * Scale-free metrics are compared whenever both records carry them:
    speedups (higher is better) and derived compression ratios
    (compressed_bytes / input_bytes, lower is better). These measure the
    code against itself on the same machine and size, so they transfer
    across machines and problem sizes.
  * Absolute rates (*_mbps, *_mvox_s; higher is better) are gated only
    when the two records have identical dims — a 96-cube CI run against a
    256-cube committed baseline says nothing about throughput — AND
    --gate-rates is passed: rates are machine-dependent, so they only mean
    something when the baseline was recorded on the same hardware (local
    development); CI omits the flag and gets them as info lines.
  * Absolute *_seconds are never gated (machine-dependent even at equal
    dims); they ride along in the records for human inspection.

Speedups shrink with the problem size (a 96-cube run amortizes less setup
than a 256-cube one), so CI gates its small runs against committed
same-size baselines (BENCH_ci96_*.json), not against the 256-cube records
that document the headline numbers.

Small lower-is-better ratios (e.g. tolerant_overhead ~ 0.02) get an absolute
slack of 0.02 on top of the percentage so that jitter in a near-zero
denominator cannot fail the gate.

Exit codes: 0 = ok (possibly with warnings), 1 = regression or correctness
failure, 2 = usage / unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys

# Metric classification. Key order in REPORT lines follows the record.
BOOL_KEYS = ("round_trip_ok", "bit_identical", "parallel_bit_identical",
             "recovery_ok", "responses_identical", "backpressure_ok",
             "timeouts_read_ok", "timeouts_request_ok", "conns_rejected_ok",
             "bomb_rejected_ok", "budget_enforced_ok", "traffic_ok")
RATE_SUFFIXES = ("_mbps", "_mvox_s", "_per_s")  # higher better, dims-gated
SMALL_RATIO_KEYS = ("tolerant_overhead", "verify_vs_decode")  # lower better
SMALL_RATIO_SLACK = 0.02
# (compressed, divisor) pairs that define derived compression ratios.
RATIO_PAIRS = (
    ("blocked_bytes", "input_bytes"),
    ("reference_bytes", "input_bytes"),
    ("payload_bits", None),  # no stable divisor in-record: not gated
)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def pct_drop(base, cur):
    """Percent regression for a higher-is-better metric."""
    if base <= 0:
        return 0.0
    return 100.0 * (base - cur) / base


def pct_rise(base, cur):
    """Percent regression for a lower-is-better metric."""
    if base <= 0:
        return 0.0
    return 100.0 * (cur - base) / base


class Gate:
    def __init__(self, fail_pct, warn_pct, gate_rates=False):
        self.fail_pct = fail_pct
        self.warn_pct = warn_pct
        self.gate_rates = gate_rates
        self.failures = 0
        self.warnings = 0

    def check(self, name, key, reg_pct, base, cur, better):
        arrow = f"{base:g} -> {cur:g} ({better} is better)"
        if reg_pct > self.fail_pct:
            self.failures += 1
            print(f"FAIL  {name}:{key}  {reg_pct:+.1f}%  {arrow}")
        elif reg_pct > self.warn_pct:
            self.warnings += 1
            print(f"WARN  {name}:{key}  {reg_pct:+.1f}%  {arrow}")
        else:
            print(f"ok    {name}:{key}  {reg_pct:+.1f}%  {arrow}")

    def compare(self, name, base, cur):
        # 1. Correctness booleans: must hold in the fresh run.
        for key in BOOL_KEYS:
            if key in cur:
                if cur[key] is True:
                    print(f"ok    {name}:{key}  true")
                else:
                    self.failures += 1
                    print(f"FAIL  {name}:{key}  expected true, got {cur[key]!r}")

        # 2. Speedups: scale-free, higher is better, always compared. Guard
        #    on numeric values: records also carry arrays (e.g. per_pass
        #    timing breakdowns) that are documentation, not gated metrics.
        for key in sorted(set(base) & set(cur)):
            if "speedup" not in key:
                continue
            if not all(isinstance(r[key], (int, float)) for r in (base, cur)):
                continue
            self.check(name, key, pct_drop(base[key], cur[key]), base[key],
                       cur[key], "higher")

        # 3. Derived compression ratios: lower is better, always compared.
        for num, den in RATIO_PAIRS:
            if den is None:
                continue
            if all(k in r and r.get(den, 0) > 0 for r in (base, cur) for k in (num, den)):
                b = base[num] / base[den]
                c = cur[num] / cur[den]
                self.check(name, f"{num}/{den}", pct_rise(b, c), round(b, 5),
                           round(c, 5), "lower")

        # 4. Small lower-is-better ratios: percentage + absolute slack.
        for key in SMALL_RATIO_KEYS:
            if key in base and key in cur:
                reg = pct_rise(base[key], cur[key])
                if cur[key] <= base[key] + SMALL_RATIO_SLACK:
                    reg = 0.0  # inside the absolute noise floor
                self.check(name, key, reg, base[key], cur[key], "lower")

        # 5. Absolute rates: only meaningful at identical problem sizes on
        #    the same hardware, so gating them is opt-in.
        rate_keys = sorted(k for k in set(base) & set(cur)
                           if k.endswith(RATE_SUFFIXES)
                           and isinstance(base[k], (int, float))
                           and isinstance(cur[k], (int, float)))
        dims_match = (base.get("dims") == cur.get("dims")
                      and base.get("dims") is not None)
        if rate_keys and dims_match and self.gate_rates:
            for key in rate_keys:
                self.check(name, key, pct_drop(base[key], cur[key]),
                           base[key], cur[key], "higher")
        elif rate_keys:
            why = (f"dims {base.get('dims')} != {cur.get('dims')}"
                   if not dims_match else "--gate-rates not set")
            for key in rate_keys:
                print(f"info  {name}:{key}  {base[key]:g} -> {cur[key]:g} "
                      f"(not gated: {why})")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("records", nargs="+",
                    help="alternating BASELINE CURRENT json paths")
    ap.add_argument("--fail-pct", type=float, default=15.0,
                    help="regression %% that fails the gate (default 15)")
    ap.add_argument("--warn-pct", type=float, default=5.0,
                    help="regression %% that warns (default 5)")
    ap.add_argument("--gate-rates", action="store_true",
                    help="also gate absolute *_mbps / *_mvox_s rates "
                         "(same-machine baselines only)")
    args = ap.parse_args(argv)
    if len(args.records) % 2 != 0:
        ap.error("records must come in BASELINE CURRENT pairs")
    if args.warn_pct > args.fail_pct:
        ap.error("--warn-pct must not exceed --fail-pct")

    gate = Gate(args.fail_pct, args.warn_pct, args.gate_rates)
    for i in range(0, len(args.records), 2):
        base_path, cur_path = args.records[i], args.records[i + 1]
        base, cur = load(base_path), load(cur_path)
        name = cur.get("benchmark") or base.get("benchmark") or base_path
        if base.get("benchmark") != cur.get("benchmark"):
            print(f"check_bench: {base_path} and {cur_path} record different "
                  f"benchmarks ({base.get('benchmark')!r} vs "
                  f"{cur.get('benchmark')!r})", file=sys.stderr)
            return 2
        gate.compare(name, base, cur)

    print(f"check_bench: {gate.failures} failure(s), {gate.warnings} warning(s) "
          f"(fail >{args.fail_pct:g}%, warn >{args.warn_pct:g}%)")
    return 1 if gate.failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
