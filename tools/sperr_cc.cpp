// sperr_cc — command-line compressor/decompressor for raw binary fields,
// mirroring the utilities the reference SPERR distribution ships.
//
//   compress:    sperr_cc c  IN.raw OUT.sperr --dims NX [NY [NZ]] --type f32|f64
//                          ( --pwe T | --idx K | --bpp R | --rmse E )
//                          [ --q-over-t Q ] [ --chunk CX CY CZ ]
//                          [ --threads N ] [ --intra-threads N ]
//                          [ --no-lossless ] [ --verify ]
//   decompress:  sperr_cc d  IN.sperr OUT.raw [--type f32|f64] [--drop L]
//                          [ --recover fail-fast|zero|coarse ]
//                          [ --max-output-mb M ]
//   inspect:     sperr_cc info IN.sperr [--verify] [--max-output-mb M]
//
// Raw files are x-fastest little-endian arrays, the layout SDRBench uses.
//
// Exit codes: 0 success, 1 I/O error, 2 usage error, 3 corrupt input,
// 4 verification/quality failure, 5 resource limit exceeded (the container
// header declares more decoded output than the decoder's ResourceLimits
// admit — the default 64 GiB ceiling, or --max-output-mb). Scripts can tell
// "the file is damaged" (3) apart from "I was called wrong" (2), "the disk
// failed" (1), and "this is a decompression bomb" (5).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/timer.h"
#include "metrics/metrics.h"
#include "sperr/header.h"
#include "sperr/sperr.h"

namespace {

// Exit codes (documented in the header comment and asserted by
// tools/check_cli_codes.sh).
constexpr int kExitOk = 0;
constexpr int kExitIo = 1;
constexpr int kExitUsage = 2;
constexpr int kExitCorrupt = 3;
constexpr int kExitVerify = 4;
constexpr int kExitResource = 5;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  sperr_cc c IN.raw OUT.sperr --dims NX [NY [NZ]] --type f32|f64\n"
               "           (--pwe T | --idx K | --bpp R | --rmse E)\n"
               "           [--q-over-t Q] [--chunk CX CY CZ] [--threads N]\n"
               "           [--intra-threads N] [--no-lossless] [--verify]\n"
               "  sperr_cc d IN.sperr OUT.raw [--type f32|f64] [--drop L]\n"
               "           [--recover fail-fast|zero|coarse] [--max-output-mb M]\n"
               "  sperr_cc info IN.sperr [--verify] [--max-output-mb M]\n");
  std::exit(kExitUsage);
}

std::vector<uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(kExitIo);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const void* data, size_t size) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !out.write(static_cast<const char*>(data), std::streamsize(size))) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(kExitIo);
  }
}

struct Args {
  std::vector<std::string> positional;
  sperr::Dims dims{0, 1, 1};
  bool have_dims = false;
  std::string type = "f64";
  double pwe = 0, bpp = 0, rmse = 0, q_over_t = 1.5;
  int idx = -1;
  sperr::Dims chunk{256, 256, 256};
  int threads = 0;
  int intra_threads = 1;  ///< SPECK lanes per chunk (byte-identical output)
  bool lossless = true;
  bool verify = false;
  size_t drop = 0;
  bool have_recover = false;
  sperr::Recovery recover = sperr::Recovery::fail_fast;
  uint64_t max_output_mb = 0;  ///< 0 = the library's default ResourceLimits

  /// Decode ceilings for the d / info commands: the library defaults,
  /// tightened by --max-output-mb when given.
  [[nodiscard]] sperr::ResourceLimits limits() const {
    sperr::ResourceLimits rl = sperr::ResourceLimits::defaults();
    if (max_output_mb > 0) {
      rl.max_output_bytes = max_output_mb << 20;
      if (rl.max_working_bytes > rl.max_output_bytes)
        rl.max_working_bytes = rl.max_output_bytes;
    }
    return rl;
  }

  void set_recover(const std::string& v) {
    have_recover = true;
    if (v == "fail-fast" || v == "fail_fast")
      recover = sperr::Recovery::fail_fast;
    else if (v == "zero" || v == "zero-fill" || v == "zero_fill")
      recover = sperr::Recovery::zero_fill;
    else if (v == "coarse" || v == "coarse-fill" || v == "coarse_fill")
      recover = sperr::Recovery::coarse_fill;
    else
      usage("--recover takes fail-fast, zero or coarse");
  }

  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&](const char* what) -> const char* {
        if (++i >= argc) usage(what);
        return argv[i];
      };
      if (a == "--dims") {
        dims.x = size_t(std::atoll(next("--dims needs values")));
        have_dims = true;
        if (i + 1 < argc && argv[i + 1][0] != '-') dims.y = size_t(std::atoll(argv[++i]));
        if (i + 1 < argc && argv[i + 1][0] != '-') dims.z = size_t(std::atoll(argv[++i]));
      } else if (a == "--type") {
        type = next("--type needs f32|f64");
      } else if (a == "--pwe") {
        pwe = std::atof(next("--pwe needs a tolerance"));
      } else if (a == "--idx") {
        idx = std::atoi(next("--idx needs an integer"));
      } else if (a == "--bpp") {
        bpp = std::atof(next("--bpp needs a rate"));
      } else if (a == "--rmse") {
        rmse = std::atof(next("--rmse needs a target"));
      } else if (a == "--q-over-t") {
        q_over_t = std::atof(next("--q-over-t needs a value"));
      } else if (a == "--chunk") {
        chunk.x = size_t(std::atoll(next("--chunk needs values")));
        if (i + 1 < argc && argv[i + 1][0] != '-') chunk.y = size_t(std::atoll(argv[++i]));
        if (i + 1 < argc && argv[i + 1][0] != '-') chunk.z = size_t(std::atoll(argv[++i]));
      } else if (a == "--threads") {
        threads = std::atoi(next("--threads needs a count"));
      } else if (a == "--intra-threads") {
        intra_threads = std::atoi(next("--intra-threads needs a count"));
      } else if (a == "--no-lossless") {
        lossless = false;
      } else if (a == "--verify") {
        verify = true;
      } else if (a == "--drop") {
        drop = size_t(std::atoll(next("--drop needs a level count")));
      } else if (a == "--max-output-mb") {
        const long long m = std::atoll(next("--max-output-mb needs a size"));
        if (m < 0) usage("--max-output-mb must be >= 0");
        max_output_mb = uint64_t(m);
      } else if (a == "--recover") {
        set_recover(next("--recover needs a policy"));
      } else if (a.rfind("--recover=", 0) == 0) {
        set_recover(a.substr(10));
      } else if (!a.empty() && a[0] == '-') {
        usage(("unknown option " + a).c_str());
      } else {
        positional.push_back(a);
      }
    }
  }
};

std::vector<double> load_field(const std::string& path, const Args& args) {
  const auto bytes = read_file(path);
  const size_t n = args.dims.total();
  std::vector<double> field(n);
  if (args.type == "f32") {
    if (bytes.size() != n * 4) usage("file size does not match --dims for f32");
    const float* p = reinterpret_cast<const float*>(bytes.data());
    for (size_t i = 0; i < n; ++i) field[i] = double(p[i]);
  } else if (args.type == "f64") {
    if (bytes.size() != n * 8) usage("file size does not match --dims for f64");
    std::memcpy(field.data(), bytes.data(), bytes.size());
  } else {
    usage("--type must be f32 or f64");
  }
  return field;
}

const char* action_name(sperr::ChunkAction a) {
  switch (a) {
    case sperr::ChunkAction::zeroed: return "zero-filled";
    case sperr::ChunkAction::coarse: return "coarse SPECK-prefix decode";
    case sperr::ChunkAction::dc_fill: return "filled with stored chunk mean";
    default: return "none";
  }
}

/// One line per chunk: verdict, checksum comparison, extent, recovery action.
void print_chunk_reports(const sperr::DecodeReport& rep) {
  for (const auto& c : rep.chunks) {
    std::printf("chunk %4zu: %-15s", c.index, to_string(c.status));
    if (c.checksum_present)
      std::printf(" checksum %s (stored %016llx, computed %016llx)",
                  c.checksum_ok ? "ok " : "BAD",
                  static_cast<unsigned long long>(c.checksum_stored),
                  static_cast<unsigned long long>(c.checksum_computed));
    else
      std::printf(" checksum absent (v%u container)", rep.version);
    std::printf("  offset %llu, %llu+%llu bytes",
                static_cast<unsigned long long>(c.offset),
                static_cast<unsigned long long>(c.speck_len),
                static_cast<unsigned long long>(c.outlier_len));
    if (c.action != sperr::ChunkAction::none)
      std::printf("  -> %s", action_name(c.action));
    std::printf("\n");
  }
  for (const size_t b : rep.lossless_bad_blocks)
    std::printf("lossless block %zu: checksum BAD (payload zero-filled)\n", b);
}

int cmd_compress(const Args& args) {
  if (args.positional.size() != 3 || !args.have_dims) usage("compress needs IN OUT --dims");
  const auto field = load_field(args.positional[1], args);

  sperr::Config cfg;
  cfg.q_over_t = args.q_over_t;
  cfg.chunk_dims = args.chunk;
  cfg.num_threads = args.threads;
  cfg.intra_chunk_threads = args.intra_threads;
  cfg.lossless_pass = args.lossless;
  if (args.pwe > 0) {
    cfg.mode = sperr::Mode::pwe;
    cfg.tolerance = args.pwe;
  } else if (args.idx >= 0) {
    cfg.mode = sperr::Mode::pwe;
    cfg.tolerance = sperr::tolerance_from_idx(field.data(), field.size(), args.idx);
  } else if (args.bpp > 0) {
    cfg.mode = sperr::Mode::fixed_rate;
    cfg.bpp = args.bpp;
  } else if (args.rmse > 0) {
    cfg.mode = sperr::Mode::target_rmse;
    cfg.rmse = args.rmse;
  } else {
    usage("pick a quality mode: --pwe, --idx, --bpp or --rmse");
  }

  sperr::Timer timer;
  sperr::Stats stats;
  const auto blob = sperr::compress(field.data(), args.dims, cfg, &stats);
  const double secs = timer.seconds();
  write_file(args.positional[2], blob.data(), blob.size());

  const size_t raw = field.size() * (args.type == "f32" ? 4 : 8);
  std::printf("%s: %zu -> %zu bytes (%.2fx, %.3f bits/pt) in %.2fs, %zu chunks, %zu outliers\n",
              args.positional[1].c_str(), raw, blob.size(),
              double(raw) / double(blob.size()),
              double(blob.size()) * 8 / double(field.size()), secs,
              stats.num_chunks, stats.num_outliers);

  if (args.verify) {
    std::vector<double> recon;
    sperr::Dims od;
    if (sperr::decompress(blob.data(), blob.size(), recon, od) != sperr::Status::ok) {
      std::fprintf(stderr, "verify: decompression FAILED\n");
      return kExitVerify;
    }
    const auto q = sperr::metrics::compare(field.data(), recon.data(), field.size());
    std::printf("verify: max err %.4g, RMSE %.4g, PSNR %.2f dB", q.max_pwe,
                q.rmse, q.psnr);
    if (cfg.mode == sperr::Mode::pwe) {
      const bool ok = q.max_pwe <= cfg.tolerance;
      std::printf(" — PWE bound %s", ok ? "HELD" : "VIOLATED");
      if (!ok) {
        std::printf("\n");
        return kExitVerify;
      }
    }
    std::printf("\n");
  }
  return kExitOk;
}

int cmd_decompress(const Args& args) {
  if (args.positional.size() != 3) usage("decompress needs IN OUT");
  if (args.drop && args.have_recover)
    usage("--drop and --recover cannot be combined");
  const auto blob = read_file(args.positional[1]);

  const sperr::ResourceLimits rl = args.limits();
  std::vector<double> field;
  sperr::Dims dims;
  sperr::DecodeReport rep;
  sperr::Status s;
  if (args.drop) {
    s = sperr::decompress_lowres(blob.data(), blob.size(), args.drop, field, dims,
                                 &rl);
  } else {
    s = sperr::decompress_tolerant(blob.data(), blob.size(), args.recover, field,
                                   dims, &rep, &rl);
    if (args.have_recover) {
      print_chunk_reports(rep);
      if (rep.damaged > 0)
        std::printf("%zu of %zu chunk(s) damaged, %zu recovered (policy %s)\n",
                    rep.damaged, rep.chunks.size(), rep.recovered,
                    args.recover == sperr::Recovery::zero_fill   ? "zero"
                    : args.recover == sperr::Recovery::coarse_fill ? "coarse"
                                                                   : "fail-fast");
    }
  }
  if (s == sperr::Status::resource_exhausted) {
    std::fprintf(stderr,
                 "error: container declares more output than the resource "
                 "limits admit (%s); raise --max-output-mb only for trusted "
                 "inputs\n",
                 to_string(s));
    return kExitResource;
  }
  if (s != sperr::Status::ok) {
    std::fprintf(stderr, "error: decompression failed (%s)\n", to_string(s));
    return kExitCorrupt;
  }

  if (args.type == "f32") {
    std::vector<float> out(field.begin(), field.end());
    write_file(args.positional[2], out.data(), out.size() * 4);
  } else {
    write_file(args.positional[2], field.data(), field.size() * 8);
  }
  std::printf("%s: %s doubles -> %s\n", args.positional[1].c_str(),
              dims.to_string().c_str(), args.positional[2].c_str());
  return kExitOk;
}

int cmd_info(const Args& args) {
  if (args.positional.size() != 2) usage("info needs IN");
  const auto blob = read_file(args.positional[1]);

  const sperr::ResourceLimits rl = args.limits();
  std::vector<uint8_t> inner;
  size_t bad_block = 0;
  const sperr::Status us = sperr::unwrap_container(blob.data(), blob.size(), inner,
                                                   &bad_block, nullptr, &rl);
  if (us == sperr::Status::resource_exhausted) {
    std::fprintf(stderr,
                 "error: container declares more data than the resource limits "
                 "admit (decompression bomb?)\n");
    return kExitResource;
  }
  if (us == sperr::Status::corrupt_block) {
    std::fprintf(stderr, "error: lossless block %zu failed its checksum\n", bad_block);
    return kExitCorrupt;
  }
  if (us != sperr::Status::ok) {
    std::fprintf(stderr, "error: not a SPERR container (%s)\n", to_string(us));
    return kExitCorrupt;
  }
  sperr::ContainerHeader hdr;
  size_t payload_pos = 0;
  const sperr::Status os = sperr::open_container(blob.data(), blob.size(), inner,
                                                 hdr, &payload_pos, nullptr, &rl);
  if (os == sperr::Status::resource_exhausted) {
    std::fprintf(stderr,
                 "error: container directory exceeds the resource limits "
                 "(decompression bomb?)\n");
    return kExitResource;
  }
  if (os != sperr::Status::ok) {
    std::fprintf(stderr, "error: corrupt container header\n");
    return kExitCorrupt;
  }
  const char* mode = hdr.mode == sperr::Mode::pwe ? "pwe"
                     : hdr.mode == sperr::Mode::fixed_rate ? "fixed-rate"
                                                           : "target-rmse";
  std::printf("version:     %u (%s)\n", hdr.version,
              hdr.has_integrity() ? "per-chunk checksums"
                                  : "legacy, lengths only");
  std::printf("dims:        %s (%s input)\n", hdr.dims.to_string().c_str(),
              hdr.precision == 4 ? "f32" : "f64");
  std::printf("mode:        %s (quality parameter %.6g)\n", mode, hdr.quality);
  std::printf("chunks:      %zu (preferred %s)\n", hdr.entries.size(),
              hdr.chunk_dims.to_string().c_str());
  size_t speck = 0, outl = 0;
  for (const auto& e : hdr.entries) {
    speck += size_t(e.speck_len);
    outl += size_t(e.outlier_len);
  }
  std::printf("streams:     %zu bytes SPECK, %zu bytes outlier corrections\n",
              speck, outl);
  std::printf("container:   %zu bytes (%.3f bits/pt)\n", blob.size(),
              double(blob.size()) * 8 / double(hdr.dims.total()));

  // The outer wrapper is magic(4) + version(1) + lossless(1) + len(8); the
  // lossless payload (when present) starts right after it.
  constexpr size_t kOuterBytes = 14;
  if (blob.size() > kOuterBytes && blob[4 + 1] == 1) {
    sperr::lossless::StreamInfo li;
    if (sperr::lossless::inspect(blob.data() + kOuterBytes, blob.size() - kOuterBytes,
                                 li) == sperr::Status::ok &&
        li.blocked) {
      size_t by_tag[3] = {};
      for (const auto& b : li.blocks)
        ++by_tag[b.mode < 3 ? b.mode : sperr::lossless::kEntropyRaw];
      std::printf(
          "lossless:    %zu block(s) of %zu KiB (%zu raw / %zu huffman / %zu arith), "
          "checksummed\n",
          li.blocks.size(), li.block_size >> 10, by_tag[sperr::lossless::kEntropyRaw],
          by_tag[sperr::lossless::kEntropyHuffman], by_tag[sperr::lossless::kEntropyArith]);
    } else {
      std::printf("lossless:    single-block reference framing (no checksums)\n");
    }
  }

  if (args.verify) {
    sperr::DecodeReport rep;
    const sperr::Status vs =
        sperr::verify_container(blob.data(), blob.size(), &rep, &rl);
    if (vs == sperr::Status::resource_exhausted) {
      std::fprintf(stderr, "verify: refused, resource limits exceeded\n");
      return kExitResource;
    }
    print_chunk_reports(rep);
    if (vs != sperr::Status::ok) {
      std::fprintf(stderr, "verify: archive is damaged (%s)\n", to_string(vs));
      return kExitCorrupt;
    }
    std::printf("verify: all %zu chunk(s) intact\n", rep.chunks.size());
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.positional.empty()) usage();
  const std::string& cmd = args.positional[0];
  if (cmd == "c") return cmd_compress(args);
  if (cmd == "d") return cmd_decompress(args);
  if (cmd == "info") return cmd_info(args);
  usage(("unknown command " + cmd).c_str());
}
