// Compressor shoot-out on your own workload: runs all five compressors of
// the paper's evaluation on one field at one tolerance and prints a summary
// you can use to pick a tool — the miniature version of Figs. 8-10.
//
// Usage: compressor_shootout [field] [idx]
//   field: one of the synthetic generators (default miranda_density)
//   idx:   tolerance label, t = Range / 2^idx (default 20)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/mgardlike/compressor.h"
#include "baselines/szlike/compressor.h"
#include "baselines/tthreshlike/compressor.h"
#include "baselines/zfplike/compressor.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "sperr/sperr.h"

namespace {

struct Row {
  std::string name;
  double bpp = 0, psnr = 0, max_err = 0, seconds = 0;
  bool bounded = false;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string field_name = argc > 1 ? argv[1] : "miranda_density";
  const int idx = argc > 2 ? std::atoi(argv[2]) : 20;

  const sperr::Dims dims{96, 96, 96};
  std::vector<double> field;
  try {
    field = sperr::data::make_field(field_name, dims);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\nvalid fields:", e.what());
    for (const auto& n : sperr::data::field_names()) std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  const double t = sperr::tolerance_from_idx(field.data(), field.size(), idx);
  std::printf("field %s (%s), idx=%d => PWE tolerance t=%.4g\n\n",
              field_name.c_str(), dims.to_string().c_str(), idx, t);

  std::vector<Row> rows;
  auto run = [&](const std::string& name, auto&& compress_fn, auto&& decompress_fn) {
    Row r;
    r.name = name;
    sperr::Timer timer;
    const std::vector<uint8_t> blob = compress_fn();
    r.seconds = timer.seconds();
    std::vector<double> recon;
    sperr::Dims od;
    if (decompress_fn(blob, recon, od) != sperr::Status::ok) {
      std::fprintf(stderr, "%s: decompression failed\n", name.c_str());
      return;
    }
    const auto q = sperr::metrics::compare(field.data(), recon.data(), field.size());
    r.bpp = double(blob.size()) * 8 / double(field.size());
    r.psnr = q.psnr;
    r.max_err = q.max_pwe;
    r.bounded = q.max_pwe <= t;
    rows.push_back(r);
  };

  run("SPERR",
      [&] {
        sperr::Config cfg;
        cfg.tolerance = t;
        return sperr::compress(field.data(), dims, cfg);
      },
      [&](const std::vector<uint8_t>& b, std::vector<double>& o, sperr::Dims& d) {
        return sperr::decompress(b.data(), b.size(), o, d);
      });
  run("SZ-like",
      [&] { return sperr::szlike::compress(field.data(), dims, t); },
      [&](const std::vector<uint8_t>& b, std::vector<double>& o, sperr::Dims& d) {
        return sperr::szlike::decompress(b.data(), b.size(), o, d);
      });
  run("ZFP-like",
      [&] { return sperr::zfplike::compress_accuracy(field.data(), dims, t); },
      [&](const std::vector<uint8_t>& b, std::vector<double>& o, sperr::Dims& d) {
        return sperr::zfplike::decompress(b.data(), b.size(), o, d);
      });
  run("MGARD-like",
      [&] { return sperr::mgardlike::compress(field.data(), dims, t); },
      [&](const std::vector<uint8_t>& b, std::vector<double>& o, sperr::Dims& d) {
        return sperr::mgardlike::decompress(b.data(), b.size(), o, d);
      });
  run("TTHRESH-like (PSNR target)",
      [&] {
        return sperr::tthreshlike::compress(field.data(), dims, 6.02059991 * idx);
      },
      [&](const std::vector<uint8_t>& b, std::vector<double>& o, sperr::Dims& d) {
        return sperr::tthreshlike::decompress(b.data(), b.size(), o, d);
      });

  std::printf("%-28s %10s %10s %12s %10s %8s\n", "compressor", "bits/pt",
              "PSNR dB", "max err/t", "time (s)", "bounded");
  for (const auto& r : rows)
    std::printf("%-28s %10.3f %10.1f %12.3f %10.2f %8s\n", r.name.c_str(), r.bpp,
                r.psnr, r.max_err / t, r.seconds, r.bounded ? "yes" : "NO");
  return 0;
}
