// Climate-archive scenario (paper §I): a large community data set is written
// once and read by thousands of researchers for years — so rate matters more
// than speed, and a point-wise error guarantee is the natural contract with
// downstream scientists.
//
// This example archives several variables of a (synthetic) climate-like
// state at per-variable tolerances, using chunked parallel compression, and
// prints an archive manifest: per-variable tolerance, achieved bits/point,
// reduction factor, and verified max error.

#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "sperr/archive.h"
#include "sperr/sperr.h"

namespace {

struct Variable {
  std::string name;
  std::string generator;
  int idx;  // Table I tolerance label: t = Range / 2^idx
};

}  // namespace

int main() {
  // A small multi-variable "model state". Tolerances differ per variable:
  // prognostic variables that feed restarts get tight bounds, diagnostic
  // ones for visualization get loose bounds.
  const sperr::Dims dims{192, 96, 32};  // lon x lat x level
  const std::vector<Variable> variables = {
      {"pressure", "miranda_pressure", 24},     // restart-grade
      {"temperature", "s3d_temperature", 24},   // restart-grade
      {"u_wind", "miranda_velocity_x", 16},     // analysis-grade
      {"humidity_proxy", "s3d_ch4", 16},        // analysis-grade
      {"aerosol_density", "nyx_velocity_x", 10},  // viz-grade
  };

  sperr::Config cfg;
  cfg.chunk_dims = sperr::Dims{64, 64, 32};  // 64^3-ish chunks, paper §V-B
  std::printf("archiving %zu variables at %s, chunk %s\n\n", variables.size(),
              dims.to_string().c_str(), cfg.chunk_dims.to_string().c_str());
  std::printf("%-16s %6s %12s %10s %12s %14s %8s\n", "variable", "idx",
              "tolerance", "bits/pt", "reduction", "max err / t", "time");

  sperr::archive::Writer archive;
  size_t raw_total = 0;
  for (const auto& var : variables) {
    const auto field = sperr::data::make_field(var.generator, dims);
    cfg.tolerance = sperr::tolerance_from_idx(field.data(), field.size(), var.idx);

    sperr::Timer timer;
    sperr::Stats stats;
    archive.add(var.name, field.data(), dims, cfg, &stats);
    const double secs = timer.seconds();

    const size_t raw = field.size() * sizeof(double);
    raw_total += raw;
    std::printf("%-16s %6d %12.4g %10.2f %11.1fx %14s %7.2fs\n",
                var.name.c_str(), var.idx, cfg.tolerance, stats.bpp,
                double(raw) / double(stats.compressed_bytes), "-", secs);
  }

  const auto blob = archive.finish();
  std::printf("\narchive total: %.1f MB -> %.1f MB (%.1fx), %zu variables in "
              "one bundle\n",
              double(raw_total) / 1048576.0, double(blob.size()) / 1048576.0,
              double(raw_total) / double(blob.size()), archive.count());

  // Trust but verify: reopen the bundle and check every guarantee before
  // the originals would be discarded.
  sperr::archive::Reader reader;
  if (sperr::archive::Reader::open(blob.data(), blob.size(), reader) !=
      sperr::Status::ok) {
    std::fprintf(stderr, "archive reopen FAILED\n");
    return 1;
  }
  for (const auto& var : variables) {
    const auto field = sperr::data::make_field(var.generator, dims);
    const double t = sperr::tolerance_from_idx(field.data(), field.size(), var.idx);
    std::vector<double> recon;
    sperr::Dims od;
    if (reader.extract(var.name, recon, od) != sperr::Status::ok ||
        od != dims) {
      std::fprintf(stderr, "  %s: extraction FAILED\n", var.name.c_str());
      return 1;
    }
    const auto q = sperr::metrics::compare(field.data(), recon.data(), field.size());
    std::printf("verified %-16s max err / t = %.3f (%s)\n", var.name.c_str(),
                q.max_pwe / t, q.max_pwe <= t ? "ok" : "VIOLATED");
    if (q.max_pwe > t) return 1;
  }
  std::printf("every variable verified within its tolerance.\n");
  return 0;
}
