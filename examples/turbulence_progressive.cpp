// Turbulence-database scenario (paper §I, §VII): a public database serves
// hundreds of terabytes to remote users. Two capabilities matter:
//
//  1. size-bounded compression — the archive can promise "at most N bits per
//     point" regardless of content (classic SPECK / ZFP-style), and
//  2. the *embedded* property — any prefix of a SPECK stream is decodable,
//     so a user on a slow link can render a coarse preview from the first
//     few percent of the stream and refine as more bytes arrive.
//
// This example compresses a turbulence-like field at a fixed rate, then
// simulates a progressive download by decoding successively longer prefixes
// of the same stream and reporting the quality at each stage.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "speck/decoder.h"
#include "speck/encoder.h"
#include "sperr/sperr.h"
#include "wavelet/dwt.h"

int main() {
  const sperr::Dims dims{128, 128, 64};
  const auto field = sperr::data::miranda_velocity_x(dims);

  // --- 1. fixed-rate archive --------------------------------------------
  sperr::Config cfg;
  cfg.mode = sperr::Mode::fixed_rate;
  cfg.bpp = 4.0;
  sperr::Stats stats;
  const auto blob = sperr::compress(field.data(), dims, cfg, &stats);
  std::printf("fixed-rate archive: requested %.1f bits/pt, achieved %.2f\n\n",
              cfg.bpp, stats.bpp);

  // --- 2. progressive access to one SPECK stream --------------------------
  // Work at the coder level so we can truncate the embedded stream directly.
  std::vector<double> coeffs = field;
  sperr::wavelet::forward_dwt(coeffs.data(), dims);
  double max_mag = 0;
  for (double c : coeffs) max_mag = std::max(max_mag, std::fabs(c));
  const auto stream = sperr::speck::encode(coeffs.data(), dims, max_mag * 1e-12);

  std::printf("progressive download of one embedded stream (%zu KB total):\n",
              stream.size() / 1024);
  std::printf("%-12s %12s %12s %12s\n", "received", "bits/pt", "PSNR (dB)",
              "use case");
  const struct {
    double frac;
    const char* use;
  } stages[] = {{0.01, "thumbnail"},
                {0.05, "preview render"},
                {0.25, "interactive viz"},
                {1.00, "full quality"}};
  for (const auto& s : stages) {
    const size_t nbytes = std::max<size_t>(size_t(double(stream.size()) * s.frac),
                                           sperr::speck::Header::kBytes + 1);
    std::vector<double> recon(dims.total());
    if (sperr::speck::decode(stream.data(), nbytes, dims, recon.data()) !=
        sperr::Status::ok) {
      std::fprintf(stderr, "prefix decode failed at %.0f%%\n", s.frac * 100);
      return 1;
    }
    sperr::wavelet::inverse_dwt(recon.data(), dims);
    const auto q = sperr::metrics::compare(field.data(), recon.data(), field.size());
    std::printf("%10.0f%% %12.3f %12.1f %12s\n", s.frac * 100,
                double(nbytes) * 8 / double(dims.total()), q.psnr, s.use);
  }
  std::printf(
      "\nEvery row decoded the SAME stream — only the prefix length differs\n"
      "(the embedded property, paper §VII).\n");
  return 0;
}
