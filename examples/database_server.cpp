// Public-database scenario (paper §I + §VII): one archived copy of a field
// serves many consumers — full-precision users, interactive visualization,
// and bandwidth-limited remote clients — without ever recompressing.
//
// Three server-side operations on the SAME stored container(s):
//   1. full decompression (the archival contract),
//   2. rate transcoding: truncate_fixed_rate cuts a fixed-rate archive to a
//      lower bitrate byte-for-byte (the SPECK stream is embedded),
//   3. resolution reduction: decompress_lowres reconstructs a coarse grid
//      straight from the wavelet hierarchy of a PWE archive.

#include <cstdio>
#include <vector>

#include "data/spectral.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "sperr/sperr.h"

int main() {
  const sperr::Dims dims{128, 128, 128};
  const auto field = sperr::data::kolmogorov_turbulence(dims);
  const double mb = 1.0 / 1048576.0;
  std::printf("archived field: %s Kolmogorov turbulence (%.1f MB raw)\n\n",
              dims.to_string().c_str(), double(field.size() * 8) * mb);

  // --- the two archives the server keeps -----------------------------------
  sperr::Config rate_cfg;
  rate_cfg.mode = sperr::Mode::fixed_rate;
  rate_cfg.bpp = 8.0;
  const auto rate_archive = sperr::compress(field.data(), dims, rate_cfg);

  sperr::Config pwe_cfg;
  pwe_cfg.tolerance = sperr::tolerance_from_idx(field.data(), field.size(), 20);
  const auto pwe_archive = sperr::compress(field.data(), dims, pwe_cfg);
  std::printf("stored: fixed-rate archive %.2f MB (8 bpp), PWE archive %.2f MB"
              " (t = range/2^20)\n\n",
              double(rate_archive.size()) * mb, double(pwe_archive.size()) * mb);

  // --- request 1: full-precision client -------------------------------------
  std::vector<double> recon;
  sperr::Dims od;
  if (sperr::decompress(pwe_archive.data(), pwe_archive.size(), recon, od) !=
      sperr::Status::ok)
    return 1;
  auto q = sperr::metrics::compare(field.data(), recon.data(), field.size());
  std::printf("[full]     PWE archive: max err/t = %.3f, PSNR %.1f dB\n",
              q.max_pwe / pwe_cfg.tolerance, q.psnr);

  // --- request 2: low-bandwidth clients get transcoded rates -----------------
  for (const double bpp : {4.0, 1.0, 0.25}) {
    std::vector<uint8_t> cut;
    if (sperr::truncate_fixed_rate(rate_archive.data(), rate_archive.size(), bpp,
                                   cut) != sperr::Status::ok)
      return 1;
    if (sperr::decompress(cut.data(), cut.size(), recon, od) != sperr::Status::ok)
      return 1;
    q = sperr::metrics::compare(field.data(), recon.data(), field.size());
    std::printf("[transcode] %.2f bpp (%.2f MB sent): PSNR %5.1f dB"
                " — no recompression, pure truncation\n",
                double(cut.size()) * 8 / double(field.size()),
                double(cut.size()) * mb, q.psnr);
  }

  // --- request 3: preview clients get coarse grids ---------------------------
  for (const size_t drop : {1u, 2u, 3u}) {
    std::vector<double> coarse;
    sperr::Dims cd;
    if (sperr::decompress_lowres(pwe_archive.data(), pwe_archive.size(), drop,
                                 coarse, cd) != sperr::Status::ok)
      return 1;
    std::printf("[lowres]   drop %zu level(s): %s grid (%.0fx fewer samples)\n",
                drop, cd.to_string().c_str(),
                double(dims.total()) / double(cd.total()));
  }

  std::printf("\nOne archive, many products — the embedded stream and the\n"
              "wavelet hierarchy do the work (paper §VII).\n");
  return 0;
}
