// Quickstart: compress a 3-D field with a point-wise error guarantee,
// decompress it, and verify the guarantee held.
//
//   $ ./quickstart
//
// demonstrates the three calls that make up the core API:
//   sperr::tolerance_from_idx, sperr::compress, sperr::decompress.

#include <cmath>
#include <cstdio>

#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "sperr/sperr.h"

int main() {
  // 1. Get some data: a turbulence-like synthetic field. Replace this with
  //    your own contiguous array (x fastest, then y, then z).
  const sperr::Dims dims{128, 128, 64};
  const std::vector<double> field = sperr::data::miranda_pressure(dims);
  std::printf("input : %s doubles (%.1f MB)\n", dims.to_string().c_str(),
              double(field.size() * sizeof(double)) / 1048576.0);

  // 2. Pick a tolerance: one millionth of the data range (Table I, idx=20).
  sperr::Config cfg;
  cfg.mode = sperr::Mode::pwe;
  cfg.tolerance = sperr::tolerance_from_idx(field.data(), field.size(), 20);
  std::printf("bound : every value within t = %.3g of the original\n", cfg.tolerance);

  // 3. Compress.
  sperr::Stats stats;
  const std::vector<uint8_t> blob = sperr::compress(field.data(), dims, cfg, &stats);
  std::printf("output: %.2f MB  (%.2f bits/point, %.1fx reduction, %zu outliers corrected)\n",
              double(blob.size()) / 1048576.0, stats.bpp,
              double(field.size() * sizeof(double)) / double(blob.size()),
              stats.num_outliers);

  // 4. Decompress and verify.
  std::vector<double> recon;
  sperr::Dims out_dims;
  if (sperr::decompress(blob.data(), blob.size(), recon, out_dims) !=
      sperr::Status::ok) {
    std::fprintf(stderr, "decompression failed\n");
    return 1;
  }
  const auto q = sperr::metrics::compare(field.data(), recon.data(), field.size());
  std::printf("check : max point-wise error %.3g (<= t? %s), PSNR %.1f dB\n",
              q.max_pwe, q.max_pwe <= cfg.tolerance ? "yes" : "NO — BUG",
              q.psnr);
  return q.max_pwe <= cfg.tolerance ? 0 : 1;
}
