#pragma once

// Per-request server metrics, exposed through the STATS opcode.
//
// Counters are updated under one mutex when a request completes (queue wait,
// processing time, bytes, per-opcode counts, pipeline stage timings from the
// compressor's sperr::Stats) plus at admission time for BUSY rejections and
// consumed request bytes. A STATS request snapshots the counters *after*
// counting itself, so the very first STATS on a fresh server already reports
// requests_total >= 1 — this makes the docs/PROTOCOL.md worked example
// deterministic and the conformance ctest byte-checkable.

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/byteio.h"
#include "sperr/config.h"

namespace sperr::server {

/// One coherent copy of every counter; the wire layout of the STATS reply
/// body (224 bytes, docs/PROTOCOL.md) serializes exactly these fields.
struct StatsSnapshot {
  double uptime_seconds = 0.0;  ///< since Server::start()
  uint64_t requests_total = 0;  ///< completed requests (all opcodes, incl. error replies)
  uint64_t compress_count = 0;
  uint64_t decompress_count = 0;
  uint64_t verify_count = 0;
  uint64_t extract_count = 0;
  uint64_t stats_count = 0;
  uint64_t rejected_busy = 0;  ///< requests refused at the queue high-water mark
  uint64_t errors = 0;         ///< replies with status != ok, excluding BUSY
  uint64_t bytes_in = 0;       ///< request body bytes consumed (incl. rejected)
  uint64_t bytes_out = 0;      ///< reply body bytes produced by completed requests
  uint64_t queue_depth = 0;    ///< jobs waiting at snapshot time
  uint64_t queue_capacity = 0; ///< the configured high-water mark
  uint64_t workers = 0;        ///< worker-pool lane count
  double queue_wait_seconds = 0.0;  ///< summed admission -> dequeue wait
  double busy_seconds = 0.0;        ///< summed worker processing time
  /// Pipeline stage seconds summed over COMPRESS requests (sperr::StageTiming).
  double transform_seconds = 0.0;
  double speck_seconds = 0.0;
  double locate_seconds = 0.0;
  double outlier_seconds = 0.0;
  double lossless_seconds = 0.0;
  // Hardening counters (appended fields; the layout above never reorders).
  uint64_t conns_total = 0;         ///< connections accepted since start
  uint64_t active_connections = 0;  ///< live connections at snapshot time
  uint64_t conns_rejected = 0;      ///< closed at the --max-conns cap (unsolicited BUSY)
  uint64_t timeouts_read = 0;       ///< connections reaped by the idle/read deadline
  uint64_t timeouts_write = 0;      ///< connections reaped by the write deadline
  uint64_t timeouts_request = 0;    ///< requests answered deadline_exceeded
  // Resource-limits counter (appended after the hardening block).
  uint64_t resource_exhausted = 0;  ///< requests answered resource_exhausted

  /// Serialize as the STATS reply body (docs/PROTOCOL.md layout, 224 bytes).
  [[nodiscard]] std::vector<uint8_t> serialize() const {
    std::vector<uint8_t> out;
    out.reserve(224);
    put_f64(out, uptime_seconds);
    put_u64(out, requests_total);
    put_u64(out, compress_count);
    put_u64(out, decompress_count);
    put_u64(out, verify_count);
    put_u64(out, extract_count);
    put_u64(out, stats_count);
    put_u64(out, rejected_busy);
    put_u64(out, errors);
    put_u64(out, bytes_in);
    put_u64(out, bytes_out);
    put_u64(out, queue_depth);
    put_u64(out, queue_capacity);
    put_u64(out, workers);
    put_f64(out, queue_wait_seconds);
    put_f64(out, busy_seconds);
    put_f64(out, transform_seconds);
    put_f64(out, speck_seconds);
    put_f64(out, locate_seconds);
    put_f64(out, outlier_seconds);
    put_f64(out, lossless_seconds);
    put_u64(out, conns_total);
    put_u64(out, active_connections);
    put_u64(out, conns_rejected);
    put_u64(out, timeouts_read);
    put_u64(out, timeouts_write);
    put_u64(out, timeouts_request);
    put_u64(out, resource_exhausted);
    return out;
  }

  /// Parse a STATS reply body (client side). Accepts the 168-byte
  /// pre-hardening prefix and the 216-byte pre-resource-limits prefix
  /// (missing extension counters read as zero) and any body that at least
  /// covers the current 224-byte layout — the growth rule in
  /// docs/PROTOCOL.md appends, never reorders. Returns false otherwise.
  static bool parse(const uint8_t* body, size_t size, StatsSnapshot& out) {
    if (size != 168 && size != 216 && size < 224) return false;
    ByteReader br(body, size);
    out.uptime_seconds = br.f64();
    out.requests_total = br.u64();
    out.compress_count = br.u64();
    out.decompress_count = br.u64();
    out.verify_count = br.u64();
    out.extract_count = br.u64();
    out.stats_count = br.u64();
    out.rejected_busy = br.u64();
    out.errors = br.u64();
    out.bytes_in = br.u64();
    out.bytes_out = br.u64();
    out.queue_depth = br.u64();
    out.queue_capacity = br.u64();
    out.workers = br.u64();
    out.queue_wait_seconds = br.f64();
    out.busy_seconds = br.f64();
    out.transform_seconds = br.f64();
    out.speck_seconds = br.f64();
    out.locate_seconds = br.f64();
    out.outlier_seconds = br.f64();
    out.lossless_seconds = br.f64();
    if (size >= 216) {
      out.conns_total = br.u64();
      out.active_connections = br.u64();
      out.conns_rejected = br.u64();
      out.timeouts_read = br.u64();
      out.timeouts_write = br.u64();
      out.timeouts_request = br.u64();
    }
    if (size >= 224) out.resource_exhausted = br.u64();
    return br.ok();
  }
};

/// Thread-safe accumulator behind StatsSnapshot.
class Metrics {
 public:
  void count_bytes_in(uint64_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    s_.bytes_in += n;
  }

  void count_busy() {
    std::lock_guard<std::mutex> lk(mu_);
    ++s_.rejected_busy;
  }

  void count_conn_open() {
    std::lock_guard<std::mutex> lk(mu_);
    ++s_.conns_total;
  }

  void count_conn_rejected() {
    std::lock_guard<std::mutex> lk(mu_);
    ++s_.conns_rejected;
  }

  void count_timeout_read() {
    std::lock_guard<std::mutex> lk(mu_);
    ++s_.timeouts_read;
  }

  void count_timeout_write() {
    std::lock_guard<std::mutex> lk(mu_);
    ++s_.timeouts_write;
  }

  void count_timeout_request() {
    std::lock_guard<std::mutex> lk(mu_);
    ++s_.timeouts_request;
  }

  void count_resource_exhausted() {
    std::lock_guard<std::mutex> lk(mu_);
    ++s_.resource_exhausted;
  }

  /// Record one completed request: its opcode slot, reply verdict, reply
  /// body size, and timings. `stage`, when non-null, adds a COMPRESS
  /// request's pipeline stage seconds.
  void count_request(uint8_t opcode, bool error, uint64_t bytes_out,
                     double queue_wait_s, double busy_s,
                     const StageTiming* stage = nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    ++s_.requests_total;
    switch (opcode) {
      case 1: ++s_.compress_count; break;
      case 2: ++s_.decompress_count; break;
      case 3: ++s_.verify_count; break;
      case 4: ++s_.extract_count; break;
      case 5: ++s_.stats_count; break;
      default: break;  // malformed frames count in requests_total + errors only
    }
    if (error) ++s_.errors;
    s_.bytes_out += bytes_out;
    s_.queue_wait_seconds += queue_wait_s;
    s_.busy_seconds += busy_s;
    if (stage) {
      s_.transform_seconds += stage->transform_s;
      s_.speck_seconds += stage->speck_s;
      s_.locate_seconds += stage->locate_s;
      s_.outlier_seconds += stage->outlier_s;
      s_.lossless_seconds += stage->lossless_s;
    }
  }

  /// Coherent copy; the caller fills the non-counter fields (uptime, queue
  /// depth/capacity, workers).
  [[nodiscard]] StatsSnapshot snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return s_;
  }

 private:
  mutable std::mutex mu_;
  StatsSnapshot s_;
};

}  // namespace sperr::server
