#include "server/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/timer.h"

namespace sperr::server {

int backoff_next_ms(int prev_ms, int base_ms, int cap_ms, Rng& rng) {
  if (base_ms < 1) base_ms = 1;
  if (cap_ms < base_ms) cap_ms = base_ms;
  const double hi = std::max(double(base_ms) + 1.0, 3.0 * double(prev_ms));
  const int next = int(rng.uniform(double(base_ms), hi));
  return std::min(cap_ms, std::max(base_ms, next));
}

Client::Client(ClientConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::ensure_connected(int budget_ms) {
  if (fd_ >= 0) return true;
  Timer spent;
  int backoff = cfg_.backoff_base_ms;
  for (;;) {
    const int remain = budget_ms - int(spent.milliseconds());
    if (remain <= 0) break;
    // Each attempt's own timeout never exceeds what is left of the budget.
    fd_ = connect_loopback_deadline(cfg_.port, std::min(remain, 1000));
    if (fd_ >= 0) {
      if (connected_once_) ++stats_.reconnects;
      connected_once_ = true;
      return true;
    }
    ++stats_.transport_errors;
    backoff = backoff_next_ms(backoff, cfg_.backoff_base_ms,
                              cfg_.backoff_cap_ms, rng_);
    const int nap = std::min(backoff, budget_ms - int(spent.milliseconds()));
    if (nap <= 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(nap));
  }
  return false;
}

bool Client::connect() { return ensure_connected(cfg_.connect_budget_ms); }

bool Client::exchange(Opcode op, uint64_t request_id,
                      const std::vector<uint8_t>& body, FrameHeader& reply_hdr,
                      std::vector<uint8_t>& reply_body) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  put_frame_header(frame, kRequestMagic, uint8_t(op), request_id, body.size());
  frame.insert(frame.end(), body.begin(), body.end());
  Timer op_clock;
  if (write_all_deadline(fd_, frame.data(), frame.size(), cfg_.op_timeout_ms) !=
      IoOutcome::ok)
    return false;
  // The whole exchange shares one op budget: whatever the send consumed is
  // no longer available to the reply wait.
  auto remain = [&] {
    if (cfg_.op_timeout_ms < 0) return -1;
    const int r = cfg_.op_timeout_ms - int(op_clock.milliseconds());
    return r > 0 ? r : 0;
  };
  uint8_t raw[kFrameHeaderBytes];
  if (read_exact_deadline(fd_, raw, sizeof raw, remain()) != IoOutcome::ok)
    return false;
  reply_hdr = parse_frame_header(raw);
  if (reply_hdr.magic != kReplyMagic || reply_hdr.body_len > cfg_.max_reply_body)
    return false;
  reply_body.resize(size_t(reply_hdr.body_len));
  if (reply_hdr.body_len > 0 &&
      read_exact_deadline(fd_, reply_body.data(), reply_body.size(),
                          remain()) != IoOutcome::ok)
    return false;
  return reply_hdr.request_id == request_id;
}

CallResult Client::call(Opcode op, const std::vector<uint8_t>& body) {
  ++stats_.calls;
  CallResult res;
  const bool may_retry = is_idempotent(op) || cfg_.retry_non_idempotent;
  int backoff = cfg_.backoff_base_ms;
  const int max_attempts = std::max(1, cfg_.max_attempts);
  for (int attempt = 1;; ++attempt) {
    res.attempts = attempt;
    res.ok = false;
    if (ensure_connected(cfg_.connect_budget_ms)) {
      const uint64_t rid = next_request_id_++;
      FrameHeader hdr;
      std::vector<uint8_t> reply;
      if (exchange(op, rid, body, hdr, reply)) {
        res.ok = true;
        res.status = WireStatus(hdr.code);
        res.body = std::move(reply);
        if (!is_retryable(res.status)) return res;
        // BUSY / DEADLINE_EXCEEDED: the server refused or abandoned the
        // work; fall through to the retry decision. If we cannot retry,
        // the caller still sees ok=true with the retryable status.
      } else {
        // Transport failure mid-exchange: the stream can no longer be
        // framed, so the connection is dropped and (if permitted) the
        // call retried on a fresh one.
        ++stats_.transport_errors;
        disconnect();
      }
    }
    if (attempt >= max_attempts || !may_retry ||
        stats_.retries >= cfg_.retry_budget) {
      if (!res.ok) ++stats_.giveups;
      return res;
    }
    ++stats_.retries;
    backoff = backoff_next_ms(backoff, cfg_.backoff_base_ms,
                              cfg_.backoff_cap_ms, rng_);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
}

}  // namespace sperr::server
