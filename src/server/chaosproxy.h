#pragma once

// Deterministic socket-level fault injection for sperr_serve — the
// network-layer sibling of common/faultinject.h (PR 4's storage-fault
// planner). A ChaosProxy listens on its own loopback port and forwards
// byte streams to an upstream server, but each accepted connection gets a
// fault plan derived purely from (seed, connection index): at planned
// byte offsets, in a planned direction, the proxy injects
//
//   split_write     — forwards a run of bytes one at a time with short
//                     sleeps (exercises short-read/short-write handling)
//   stall           — stops forwarding mid-stream for a planned interval
//                     (exercises idle/IO deadlines; a long enough stall
//                     *is* a slow-loris)
//   rst             — aborts the connection with SO_LINGER{1,0} + close,
//                     so both endpoints see ECONNRESET, not FIN
//   half_close      — shuts down one direction only (FIN) while the other
//                     keeps flowing
//   truncate_close  — discards the rest of the in-flight bytes and closes
//                     cleanly: the peer sees a well-formed FIN mid-message
//
// The same seed replays the same campaign byte-for-byte, which is what
// lets CI assert "the server survives plan #42" rather than "the server
// survived whatever happened today".
//
// Each connection is served by ONE thread that polls both sockets —
// full-duplex forwarding without a second pump thread, so fault actions
// that close or reconfigure descriptors never race a sibling.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace sperr::server {

enum class FaultKind : uint8_t {
  split_write = 0,
  stall = 1,
  rst = 2,
  half_close = 3,
  truncate_close = 4,
};

[[nodiscard]] constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::split_write: return "split_write";
    case FaultKind::stall: return "stall";
    case FaultKind::rst: return "rst";
    case FaultKind::half_close: return "half_close";
    case FaultKind::truncate_close: return "truncate_close";
  }
  return "unknown";
}

/// One planned fault on one connection.
struct FaultEvent {
  bool upstream = true;   ///< true: client->server bytes; false: replies
  uint64_t at_byte = 0;   ///< fires when this many bytes have been forwarded
  FaultKind kind = FaultKind::split_write;
  int param = 0;          ///< split: run length; stall: milliseconds
};

struct ChaosConfig {
  uint16_t upstream_port = 0;  ///< the real server
  uint16_t listen_port = 0;    ///< 0 = ephemeral; read back with port()
  uint64_t seed = 1;

  /// Per-connection fault count is drawn in [0, max_events_per_conn] for
  /// each direction. Connections with zero faults are the control group.
  int max_events_per_conn = 2;
  int split_run_max = 32;     ///< split_write run length bound (bytes)
  int stall_ms_min = 20;
  int stall_ms_max = 120;
  uint64_t offset_window = 4096;  ///< fault offsets are drawn in [0, window)
};

/// Counters of faults actually applied (a planned fault at byte 10'000 on
/// a connection that only moved 200 bytes never fires).
struct ChaosCounters {
  uint64_t connections = 0;
  uint64_t splits = 0;
  uint64_t stalls = 0;
  uint64_t rsts = 0;
  uint64_t half_closes = 0;
  uint64_t truncates = 0;
  [[nodiscard]] uint64_t events() const {
    return splits + stalls + rsts + half_closes + truncates;
  }
};

/// The deterministic per-connection plan (exposed for tests: the same
/// (seed, index) must always yield the same plan).
std::vector<FaultEvent> make_fault_plan(const ChaosConfig& cfg,
                                        uint64_t conn_index);

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosConfig cfg);
  ~ChaosProxy();  // stop()s if still running

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Bind, listen, and start proxying. False when the port cannot bind.
  bool start();

  /// The proxy's own listening port (valid after start()).
  [[nodiscard]] uint16_t port() const;

  /// Stop accepting, abort live connections, join every thread.
  void stop();

  [[nodiscard]] ChaosCounters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sperr::server
