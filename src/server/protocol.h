#pragma once

// Wire protocol of `sperr_serve` (docs/PROTOCOL.md is the normative spec;
// this header and the protocol-conformance ctest enforce it).
//
// Every message — request or reply — is one length-prefixed frame:
//
//   u32 magic ('SPRQ' requests, 'SPRA' replies) | u8 protocol version |
//   u8 opcode (requests) / status (replies) | u16 reserved (0) |
//   u64 request id (echoed verbatim in the reply) | u64 body length | body
//
// All integers little endian, matching the container format. The 24-byte
// header is fixed so a reader can always frame the stream; bodies are
// opcode-specific (see the Body layout constants below and PROTOCOL.md for
// the byte-by-byte tables).
//
// Reply status codes mirror the sperr_cc exit-code contract (0 ok, 1 I/O,
// 2 usage/bad request, 3 corrupt input, 4 verification failure) so scripts
// and clients share one vocabulary across the CLI and the wire; 5 (busy)
// and 6 (unsupported protocol version) are server-only extensions — a CLI
// process is never "busy", a socket peer can be. 8 (resource exhausted)
// mirrors sperr_cc exit code 5: the request was well-formed but decoding
// it would exceed the server's configured memory budget.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sperr/config.h"

namespace sperr::server {

// --- framing ----------------------------------------------------------------

inline constexpr uint32_t kRequestMagic = 0x51525053;  // "SPRQ"
inline constexpr uint32_t kReplyMagic = 0x41525053;    // "SPRA"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;

/// Default cap on a single frame's body. Larger frames are rejected with
/// `bad_request` and the connection is closed (the stream cannot be
/// re-framed without consuming the advertised bytes).
inline constexpr size_t kDefaultMaxBodyBytes = size_t(1) << 30;

enum class Opcode : uint8_t {
  compress = 1,       ///< raw field in, SPERR container out
  decompress = 2,     ///< container in, dims + raw field out
  verify = 3,         ///< container in, per-chunk integrity verdicts out
  extract_chunk = 4,  ///< container + chunk index in, one decoded chunk out
  stats = 5,          ///< empty body in, server metrics snapshot out
};

/// Reply status. Values 0-4 carry exactly the meaning of the matching
/// sperr_cc exit code (tools/check_cli_codes.sh asserts that contract).
enum class WireStatus : uint8_t {
  ok = 0,
  io_error = 1,             ///< server-side I/O or internal failure
  bad_request = 2,          ///< malformed frame or unusable parameters ("usage")
  corrupt = 3,              ///< payload failed parsing / checksum verification
  verify_failed = 4,        ///< self-verification (PWE bound / round trip) failed
  busy = 5,                 ///< bounded request queue past its high-water mark
  unsupported_version = 6,  ///< frame's protocol version is not spoken here
  deadline_exceeded = 7,    ///< request missed its compute deadline; work abandoned
  resource_exhausted = 8,   ///< header-declared output/working set exceeds the
                            ///< server's ResourceLimits / memory budget
};

[[nodiscard]] constexpr const char* to_string(WireStatus s) {
  switch (s) {
    case WireStatus::ok: return "ok";
    case WireStatus::io_error: return "io_error";
    case WireStatus::bad_request: return "bad_request";
    case WireStatus::corrupt: return "corrupt";
    case WireStatus::verify_failed: return "verify_failed";
    case WireStatus::busy: return "busy";
    case WireStatus::unsupported_version: return "unsupported_version";
    case WireStatus::deadline_exceeded: return "deadline_exceeded";
    case WireStatus::resource_exhausted: return "resource_exhausted";
  }
  return "unknown";
}

/// Statuses a client may retry automatically (after backoff): the server
/// refused or abandoned the work without side effects visible on the wire.
/// Everything else is deterministic — retrying bad_request or corrupt just
/// repeats the answer. resource_exhausted is deliberately NOT retryable:
/// the rejection is computed from the request's own header against the
/// server's configured ceilings, so the same bytes get the same answer.
[[nodiscard]] constexpr bool is_retryable(WireStatus s) {
  return s == WireStatus::busy || s == WireStatus::deadline_exceeded;
}

/// A decoded frame header (request or reply; `code` is the opcode or the
/// status byte depending on direction).
struct FrameHeader {
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t code = 0;
  uint16_t reserved = 0;
  uint64_t request_id = 0;
  uint64_t body_len = 0;
};

/// Serialize a frame header into 24 bytes appended to `out`.
void put_frame_header(std::vector<uint8_t>& out, uint32_t magic, uint8_t code,
                      uint64_t request_id, uint64_t body_len);

/// Parse 24 header bytes (no validation beyond the fixed size).
FrameHeader parse_frame_header(const uint8_t* bytes);

// --- body layouts (offsets within the body; see docs/PROTOCOL.md) -----------

/// COMPRESS request body header, followed by dims.total() * precision bytes
/// of little-endian samples (x fastest):
///   u8 mode | u8 precision (4|8) | u8 flags | u8 reserved |
///   f64 quality | f64 q_over_t (<= 0 -> default 1.5) |
///   3 x u64 dims | 3 x u64 chunk dims (all zero -> default 256^3)
inline constexpr size_t kCompressBodyHeaderBytes = 68;
inline constexpr uint8_t kCompressFlagVerify = 0x01;      ///< self-verify after encoding
inline constexpr uint8_t kCompressFlagNoLossless = 0x02;  ///< skip the final lossless pass
/// Unknown flag bits are rejected with bad_request (see the compatibility
/// policy in docs/PROTOCOL.md): a client asking for behaviour this server
/// does not implement must hear "no", not get silently different output.
inline constexpr uint8_t kCompressFlagsKnown =
    kCompressFlagVerify | kCompressFlagNoLossless;

/// DECOMPRESS request body header, followed by the container bytes:
///   u8 recovery policy (0 fail_fast / 1 zero_fill / 2 coarse_fill) |
///   u8 output precision (4|8) | u16 reserved
inline constexpr size_t kDecompressBodyHeaderBytes = 4;

/// EXTRACT_CHUNK request body header, followed by the container bytes:
///   u32 chunk index
inline constexpr size_t kExtractBodyHeaderBytes = 4;

/// VERIFY reply body: u8 container version | u8 intact | u16 reserved |
/// u32 damaged count | u32 chunk count | chunk records. Each record:
/// u32 index | u8 status (sperr::Status) | u8 checksum_present |
/// u8 checksum_ok | u8 reserved.
inline constexpr size_t kVerifyReplyHeaderBytes = 12;
inline constexpr size_t kVerifyChunkRecordBytes = 8;

/// STATS reply body (fixed size, all fields listed in docs/PROTOCOL.md).
/// Grew from 168 bytes by appending the connection/timeout counters, then
/// to 224 by appending the resource_exhausted counter; the layout never
/// reorders, so clients parse the prefix they know.
inline constexpr size_t kStatsReplyBytes = 224;
inline constexpr size_t kStatsReplyBytesV0 = 168;  ///< pre-hardening prefix
inline constexpr size_t kStatsReplyBytesV1 = 216;  ///< pre-resource-limits prefix

// --- blocking socket I/O helpers (shared by server, bench, tests) -----------

/// Read exactly `n` bytes; false on EOF/error (partial reads discarded).
bool read_exact(int fd, void* buf, size_t n);

/// Write all `n` bytes; false on error.
bool write_all(int fd, const void* buf, size_t n);

// --- deadline-guarded socket I/O (server + retrying client) -----------------
//
// All deadline helpers require an O_NONBLOCK descriptor and poll() before
// every recv/send, retrying EINTR with the remaining budget recomputed. The
// deadline is an *overall* budget for the whole operation, not a
// per-progress idle check — a slow-loris peer dripping one byte per poll
// interval still gets reaped when the total budget runs out.

enum class IoOutcome : uint8_t {
  ok = 0,
  timed_out = 1,  ///< the deadline expired before the operation finished
  closed = 2,     ///< orderly EOF from the peer mid-operation
  failed = 3,     ///< socket error (ECONNRESET, EPIPE, ...)
};

/// Put `fd` into non-blocking mode. Returns false on fcntl failure.
bool set_nonblocking(int fd);

/// Read exactly `n` bytes within `timeout_ms` (< 0 = no deadline). When
/// `first_byte_timeout_ms` >= 0 the wait for the *first* byte uses that
/// budget instead (idle timeout); once a byte arrives the remaining bytes
/// must complete within a fresh `timeout_ms`.
IoOutcome read_exact_deadline(int fd, void* buf, size_t n, int timeout_ms,
                              int first_byte_timeout_ms = -1);

/// Write all `n` bytes within `timeout_ms` (< 0 = no deadline).
IoOutcome write_all_deadline(int fd, const void* buf, size_t n, int timeout_ms);

/// Connect to 127.0.0.1:port within `timeout_ms`. The returned descriptor
/// is non-blocking (use the deadline helpers on it); -1 on failure/timeout.
int connect_loopback_deadline(uint16_t port, int timeout_ms);

/// Write one frame (header + body) in a single buffer.
bool send_frame(int fd, uint32_t magic, uint8_t code, uint64_t request_id,
                const uint8_t* body, size_t body_len);

/// Read one frame. Returns false on EOF/error or when the advertised body
/// exceeds `max_body`. No semantic validation: callers check magic/version.
bool recv_frame(int fd, FrameHeader& hdr, std::vector<uint8_t>& body,
                size_t max_body = kDefaultMaxBodyBytes);

/// Client-side convenience: connect to 127.0.0.1:port. Returns -1 on error.
int connect_loopback(uint16_t port);

// --- client-side body builders (shared by bench_server and the tests) -------

/// Build a COMPRESS request body around f64 samples (precision 8). The
/// quality field is taken from the Config slot matching cfg.mode
/// (tolerance / bpp / rmse).
std::vector<uint8_t> build_compress_body(const sperr::Config& cfg, Dims dims,
                                         const double* samples, uint8_t flags = 0);

/// Build a DECOMPRESS request body around a container.
std::vector<uint8_t> build_decompress_body(uint8_t policy, uint8_t precision,
                                           const uint8_t* container, size_t size);

/// Build an EXTRACT_CHUNK request body around a container.
std::vector<uint8_t> build_extract_body(uint32_t chunk_index,
                                        const uint8_t* container, size_t size);

/// Client-side convenience: send a request and block for its reply.
/// Returns false on transport failure; protocol-level errors arrive as the
/// reply's status byte in `reply_hdr.code`.
bool roundtrip(int fd, Opcode op, uint64_t request_id,
               const std::vector<uint8_t>& body, FrameHeader& reply_hdr,
               std::vector<uint8_t>& reply_body,
               size_t max_body = kDefaultMaxBodyBytes);

}  // namespace sperr::server
