#pragma once

// Bounded MPMC request queue with reject-on-full backpressure.
//
// The server's admission contract (docs/PROTOCOL.md "Backpressure"): a
// request that arrives while `capacity` jobs are already waiting is rejected
// immediately with a BUSY reply instead of being buffered — the client
// learns the server is saturated after one round trip, and server memory
// stays bounded no matter how hard the load generator pushes. try_push never
// blocks; pop blocks until an item arrives or the queue is stopped *and*
// drained (a stopping server finishes every admitted job, so no accepted
// request is ever silently dropped).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace sperr::server {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admit one item; false when at the high-water mark or stopped (the
  /// caller replies BUSY). Never blocks.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Wait for the next item. Returns false only when the queue was stopped
  /// and every admitted item has been handed out.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return stopped_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Refuse new items and wake all waiters; admitted items remain poppable.
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  /// Drain every remaining item through `fn` (bounded-shutdown path: the
  /// server answers each leftover job DEADLINE_EXCEEDED instead of
  /// processing it). Returns the number of items expired. Call after
  /// stop(); racing pops simply see an empty queue.
  template <class Fn>
  size_t expire_all(Fn&& fn) {
    std::deque<T> leftovers;
    {
      std::lock_guard<std::mutex> lk(mu_);
      leftovers.swap(items_);
    }
    cv_.notify_all();
    for (T& item : leftovers) fn(item);
    return leftovers.size();
  }

  [[nodiscard]] size_t depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  [[nodiscard]] size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool stopped_ = false;
};

}  // namespace sperr::server
