#include "server/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/byteio.h"

namespace sperr::server {

void put_frame_header(std::vector<uint8_t>& out, uint32_t magic, uint8_t code,
                      uint64_t request_id, uint64_t body_len) {
  put_u32(out, magic);
  put_u8(out, kProtocolVersion);
  put_u8(out, code);
  put_u16(out, 0);  // reserved
  put_u64(out, request_id);
  put_u64(out, body_len);
}

FrameHeader parse_frame_header(const uint8_t* bytes) {
  ByteReader br(bytes, kFrameHeaderBytes);
  FrameHeader h;
  h.magic = br.u32();
  h.version = br.u8();
  h.code = br.u8();
  h.reserved = br.u16();
  h.request_id = br.u64();
  h.body_len = br.u64();
  return h;
}

bool read_exact(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= size_t(got);
    } else if (got == 0) {
      return false;  // orderly EOF mid-message
    } else if (errno != EINTR) {
      return false;
    }
  }
  return true;
}

bool write_all(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that closed early must surface as EPIPE, not
    // terminate the server process with SIGPIPE.
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= size_t(put);
    } else if (put < 0 && errno != EINTR) {
      return false;
    }
  }
  return true;
}

bool send_frame(int fd, uint32_t magic, uint8_t code, uint64_t request_id,
                const uint8_t* body, size_t body_len) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + body_len);
  put_frame_header(frame, magic, code, request_id, body_len);
  if (body_len > 0) frame.insert(frame.end(), body, body + body_len);
  return write_all(fd, frame.data(), frame.size());
}

bool recv_frame(int fd, FrameHeader& hdr, std::vector<uint8_t>& body,
                size_t max_body) {
  uint8_t raw[kFrameHeaderBytes];
  if (!read_exact(fd, raw, sizeof raw)) return false;
  hdr = parse_frame_header(raw);
  if (hdr.body_len > max_body) return false;
  body.resize(size_t(hdr.body_len));
  if (hdr.body_len > 0 && !read_exact(fd, body.data(), body.size())) return false;
  return true;
}

int connect_loopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  // Request/reply traffic: small frames benefit from immediate sends.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

std::vector<uint8_t> build_compress_body(const sperr::Config& cfg, Dims dims,
                                         const double* samples, uint8_t flags) {
  double quality = cfg.tolerance;
  if (cfg.mode == Mode::fixed_rate) quality = cfg.bpp;
  if (cfg.mode == Mode::target_rmse) quality = cfg.rmse;
  if (!cfg.lossless_pass) flags |= kCompressFlagNoLossless;
  std::vector<uint8_t> body;
  body.reserve(kCompressBodyHeaderBytes + dims.total() * sizeof(double));
  put_u8(body, uint8_t(cfg.mode));
  put_u8(body, 8);  // f64 samples
  put_u8(body, flags);
  put_u8(body, 0);  // reserved
  put_f64(body, quality);
  put_f64(body, cfg.q_over_t);
  put_u64(body, dims.x);
  put_u64(body, dims.y);
  put_u64(body, dims.z);
  put_u64(body, cfg.chunk_dims.x);
  put_u64(body, cfg.chunk_dims.y);
  put_u64(body, cfg.chunk_dims.z);
  const auto* raw = reinterpret_cast<const uint8_t*>(samples);
  body.insert(body.end(), raw, raw + dims.total() * sizeof(double));
  return body;
}

std::vector<uint8_t> build_decompress_body(uint8_t policy, uint8_t precision,
                                           const uint8_t* container, size_t size) {
  std::vector<uint8_t> body;
  body.reserve(kDecompressBodyHeaderBytes + size);
  put_u8(body, policy);
  put_u8(body, precision);
  put_u16(body, 0);  // reserved
  body.insert(body.end(), container, container + size);
  return body;
}

std::vector<uint8_t> build_extract_body(uint32_t chunk_index,
                                        const uint8_t* container, size_t size) {
  std::vector<uint8_t> body;
  body.reserve(kExtractBodyHeaderBytes + size);
  put_u32(body, chunk_index);
  body.insert(body.end(), container, container + size);
  return body;
}

bool roundtrip(int fd, Opcode op, uint64_t request_id,
               const std::vector<uint8_t>& body, FrameHeader& reply_hdr,
               std::vector<uint8_t>& reply_body, size_t max_body) {
  if (!send_frame(fd, kRequestMagic, uint8_t(op), request_id, body.data(),
                  body.size()))
    return false;
  if (!recv_frame(fd, reply_hdr, reply_body, max_body)) return false;
  return reply_hdr.magic == kReplyMagic && reply_hdr.request_id == request_id;
}

}  // namespace sperr::server
