#include "server/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fcntl.h>
#include <poll.h>

#include <cerrno>
#include <cstring>

#include "common/byteio.h"
#include "common/timer.h"

namespace sperr::server {

void put_frame_header(std::vector<uint8_t>& out, uint32_t magic, uint8_t code,
                      uint64_t request_id, uint64_t body_len) {
  put_u32(out, magic);
  put_u8(out, kProtocolVersion);
  put_u8(out, code);
  put_u16(out, 0);  // reserved
  put_u64(out, request_id);
  put_u64(out, body_len);
}

FrameHeader parse_frame_header(const uint8_t* bytes) {
  ByteReader br(bytes, kFrameHeaderBytes);
  FrameHeader h;
  h.magic = br.u32();
  h.version = br.u8();
  h.code = br.u8();
  h.reserved = br.u16();
  h.request_id = br.u64();
  h.body_len = br.u64();
  return h;
}

bool read_exact(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= size_t(got);
    } else if (got == 0) {
      return false;  // orderly EOF mid-message
    } else if (errno != EINTR) {
      return false;
    }
  }
  return true;
}

bool write_all(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that closed early must surface as EPIPE, not
    // terminate the server process with SIGPIPE.
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= size_t(put);
    } else if (put < 0 && errno != EINTR) {
      return false;
    }
  }
  return true;
}

bool send_frame(int fd, uint32_t magic, uint8_t code, uint64_t request_id,
                const uint8_t* body, size_t body_len) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + body_len);
  put_frame_header(frame, magic, code, request_id, body_len);
  if (body_len > 0) frame.insert(frame.end(), body, body + body_len);
  return write_all(fd, frame.data(), frame.size());
}

bool recv_frame(int fd, FrameHeader& hdr, std::vector<uint8_t>& body,
                size_t max_body) {
  uint8_t raw[kFrameHeaderBytes];
  if (!read_exact(fd, raw, sizeof raw)) return false;
  hdr = parse_frame_header(raw);
  if (hdr.body_len > max_body) return false;
  body.resize(size_t(hdr.body_len));
  if (hdr.body_len > 0 && !read_exact(fd, body.data(), body.size())) return false;
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

namespace {

/// Wait for `events` on `fd` with at most `remain_ms` (< 0 = forever),
/// EINTR-safe. Returns > 0 when ready, 0 on poll timeout, < 0 on error.
int poll_wait(int fd, short events, int remain_ms) {
  sperr::Timer waited;
  for (;;) {
    int budget = remain_ms;
    if (remain_ms >= 0) {
      budget = remain_ms - int(waited.milliseconds());
      if (budget < 0) budget = 0;
    }
    pollfd pf{fd, events, 0};
    const int r = ::poll(&pf, 1, budget);
    if (r >= 0) return r;
    if (errno != EINTR) return -1;
    // EINTR: loop with the remaining budget.
  }
}

}  // namespace

IoOutcome read_exact_deadline(int fd, void* buf, size_t n, int timeout_ms,
                              int first_byte_timeout_ms) {
  char* p = static_cast<char*>(buf);
  bool first = true;
  sperr::Timer budget;  // reset when the first byte arrives
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      if (first) {
        first = false;
        budget.reset();  // idle wait over: the rest gets a fresh I/O budget
      }
      p += got;
      n -= size_t(got);
      continue;
    }
    if (got == 0) return IoOutcome::closed;
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return IoOutcome::failed;
    const int limit =
        (first && first_byte_timeout_ms >= 0) ? first_byte_timeout_ms : timeout_ms;
    int remain = -1;
    if (limit >= 0) {
      remain = limit - int(budget.milliseconds());
      if (remain <= 0) return IoOutcome::timed_out;
    }
    const int pr = poll_wait(fd, POLLIN, remain);
    if (pr < 0) return IoOutcome::failed;
    if (pr == 0 && limit >= 0 && budget.milliseconds() >= double(limit))
      return IoOutcome::timed_out;
    // Ready (or spurious wakeup): recv again; it reports EOF/errors itself.
  }
  return IoOutcome::ok;
}

IoOutcome write_all_deadline(int fd, const void* buf, size_t n, int timeout_ms) {
  const char* p = static_cast<const char*>(buf);
  sperr::Timer budget;
  while (n > 0) {
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= size_t(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    if (put < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
      return IoOutcome::failed;
    int remain = -1;
    if (timeout_ms >= 0) {
      remain = timeout_ms - int(budget.milliseconds());
      if (remain <= 0) return IoOutcome::timed_out;
    }
    const int pr = poll_wait(fd, POLLOUT, remain);
    if (pr < 0) return IoOutcome::failed;
    if (pr == 0 && timeout_ms >= 0 && budget.milliseconds() >= double(timeout_ms))
      return IoOutcome::timed_out;
  }
  return IoOutcome::ok;
}

int connect_loopback_deadline(uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    if (poll_wait(fd, POLLOUT, timeout_ms) <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

int connect_loopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  // Request/reply traffic: small frames benefit from immediate sends.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

std::vector<uint8_t> build_compress_body(const sperr::Config& cfg, Dims dims,
                                         const double* samples, uint8_t flags) {
  double quality = cfg.tolerance;
  if (cfg.mode == Mode::fixed_rate) quality = cfg.bpp;
  if (cfg.mode == Mode::target_rmse) quality = cfg.rmse;
  if (!cfg.lossless_pass) flags |= kCompressFlagNoLossless;
  std::vector<uint8_t> body;
  body.reserve(kCompressBodyHeaderBytes + dims.total() * sizeof(double));
  put_u8(body, uint8_t(cfg.mode));
  put_u8(body, 8);  // f64 samples
  put_u8(body, flags);
  put_u8(body, 0);  // reserved
  put_f64(body, quality);
  put_f64(body, cfg.q_over_t);
  put_u64(body, dims.x);
  put_u64(body, dims.y);
  put_u64(body, dims.z);
  put_u64(body, cfg.chunk_dims.x);
  put_u64(body, cfg.chunk_dims.y);
  put_u64(body, cfg.chunk_dims.z);
  const auto* raw = reinterpret_cast<const uint8_t*>(samples);
  body.insert(body.end(), raw, raw + dims.total() * sizeof(double));
  return body;
}

std::vector<uint8_t> build_decompress_body(uint8_t policy, uint8_t precision,
                                           const uint8_t* container, size_t size) {
  std::vector<uint8_t> body;
  body.reserve(kDecompressBodyHeaderBytes + size);
  put_u8(body, policy);
  put_u8(body, precision);
  put_u16(body, 0);  // reserved
  body.insert(body.end(), container, container + size);
  return body;
}

std::vector<uint8_t> build_extract_body(uint32_t chunk_index,
                                        const uint8_t* container, size_t size) {
  std::vector<uint8_t> body;
  body.reserve(kExtractBodyHeaderBytes + size);
  put_u32(body, chunk_index);
  body.insert(body.end(), container, container + size);
  return body;
}

bool roundtrip(int fd, Opcode op, uint64_t request_id,
               const std::vector<uint8_t>& body, FrameHeader& reply_hdr,
               std::vector<uint8_t>& reply_body, size_t max_body) {
  if (!send_frame(fd, kRequestMagic, uint8_t(op), request_id, body.data(),
                  body.size()))
    return false;
  if (!recv_frame(fd, reply_hdr, reply_body, max_body)) return false;
  return reply_hdr.magic == kReplyMagic && reply_hdr.request_id == request_id;
}

}  // namespace sperr::server
