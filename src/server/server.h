#pragma once

// `sperr_serve` core: a long-lived TCP compression server over the SPERR
// library (ROADMAP item 3; docs/PROTOCOL.md specifies the wire contract,
// docs/OPERATIONS.md how to run and tune it).
//
// Threading model:
//
//   acceptor thread ── accept() ──> one reader thread per connection
//        │                              │  frames requests, validates headers
//        │                              ▼
//        │                    BoundedQueue<Job> (reject-with-BUSY when full)
//        │                              │
//        ▼                              ▼
//   worker pool: a TaskPool (common/threadpool.h) whose lanes loop over the
//   queue. Each lane is a long-lived thread, so its tls_arena() (the
//   per-thread scratch Arena the chunked codec paths allocate from) stays
//   warm across requests — steady-state request processing performs no
//   system allocations inside the pipeline. Chunk-granular work inside one
//   request runs on the library's chunk loop (ServerConfig::
//   threads_per_request OpenMP threads) and the SPECK coders' deterministic
//   intra-chunk lanes (ServerConfig::intra_chunk_threads, also TaskPool-
//   backed), so a single large request can still use the whole machine.
//
// Connections are handled strictly request-reply: the reader dispatches one
// frame, blocks for the worker's reply, writes it, then reads the next
// frame. Replies on one connection therefore always arrive in request
// order; concurrency comes from multiple connections.
//
// Degraded-conditions behaviour (docs/OPERATIONS.md "Timeouts, overload,
// and retries"): every socket is non-blocking and poll()-guarded, so a
// peer that stalls mid-frame is reaped when the read/write deadline
// expires and an idle connection is reaped after `idle_timeout_ms`.
// Connections past `max_connections` receive one unsolicited BUSY reply
// (request id 0) and are closed without a reader thread. A request that
// outlives `request_deadline_ms` is answered DEADLINE_EXCEEDED and its
// eventual worker result discarded, so a pathological input cannot pin a
// connection forever. stop() bounds its drain by `drain_deadline_ms`;
// jobs still queued at that point are answered DEADLINE_EXCEEDED too.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "server/metrics.h"
#include "server/protocol.h"

namespace sperr::server {

struct ServerConfig {
  /// TCP port to bind on 127.0.0.1 (0 = pick an ephemeral port; read it
  /// back with Server::port()).
  uint16_t port = 0;

  /// Worker-pool lanes processing requests concurrently (>= 1).
  int workers = 2;

  /// Bounded request queue high-water mark: requests arriving when this
  /// many jobs are already waiting are rejected with BUSY.
  size_t queue_capacity = 64;

  /// OpenMP threads for the chunk loop inside one request (0 = runtime
  /// default). Keep at 1 when `workers` already covers the cores:
  /// cross-request parallelism beats intra-request parallelism under load.
  int threads_per_request = 1;

  /// Deterministic SPECK lanes per chunk (sperr::Config::intra_chunk_threads;
  /// streams are byte-identical at every setting).
  int intra_chunk_threads = 1;

  /// Frames advertising a larger body are rejected (bad_request) and the
  /// connection closed.
  size_t max_body_bytes = kDefaultMaxBodyBytes;

  /// Overall budget for finishing one socket read or write once it has
  /// started (a frame header after its first byte, a body, a reply). A
  /// peer that cannot move its bytes within this budget — including a
  /// slow-loris dripping one byte per poll — is disconnected and counted
  /// in timeouts_read / timeouts_write. < 0 disables the deadline.
  int io_timeout_ms = 30'000;

  /// How long a connection may sit idle between requests (waiting for the
  /// first byte of the next frame header) before it is reaped and counted
  /// in timeouts_read. < 0 disables the idle timeout.
  int idle_timeout_ms = 60'000;

  /// Compute deadline per request, measured from admission to the queue.
  /// A request that has not produced its reply in time is answered
  /// DEADLINE_EXCEEDED (counted in timeouts_request) and its worker
  /// result, if any, discarded. <= 0 disables the deadline.
  int request_deadline_ms = 0;

  /// Accept cap on concurrently served connections. A connection past the
  /// cap gets one unsolicited BUSY reply (request id 0) and is closed
  /// immediately (counted in conns_rejected). 0 means unlimited.
  size_t max_connections = 256;

  /// Bound on stop()'s drain phase: jobs still queued after this budget
  /// are answered DEADLINE_EXCEEDED instead of processed, so shutdown
  /// completes in bounded time even with a full queue of slow requests.
  /// < 0 waits for a full drain.
  int drain_deadline_ms = 30'000;

  /// Per-request cap on the decoded output a DECOMPRESS / EXTRACT_CHUNK /
  /// VERIFY may declare (tightens ResourceLimits::max_output_bytes and
  /// max_working_bytes). A request whose header declares more is answered
  /// RESOURCE_EXHAUSTED before any allocation. 0 = the library default
  /// (ResourceLimits::defaults(), 64 GiB — still finite; there is no way
  /// to run the server unbounded). `sperr_serve --max-output-mb`.
  uint64_t max_output_bytes = 0;

  /// Global decode memory pool shared by every worker lane. Each request
  /// reserves its header-declared working set from this pool for the
  /// duration of its decode; when concurrent requests would overdraw it,
  /// the latecomer is answered RESOURCE_EXHAUSTED instead of sinking the
  /// process. 0 = no shared pool (per-request ceilings still apply).
  /// `sperr_serve --max-memory-mb`.
  uint64_t max_memory_bytes = 0;

  /// Test hook, called by a worker at the start of processing each job with
  /// the job's opcode. Lets tests hold a worker on a latch to make queue
  /// overflow deterministic. Not used in production.
  std::function<void(uint8_t)> process_hook;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();  // stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the acceptor + worker pool. Returns
  /// invalid_argument when the port cannot be bound.
  Status start();

  /// The bound port (valid after start(); resolves port 0 requests).
  [[nodiscard]] uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, drain every admitted job, answer
  /// it, then close all connections and join every thread. Idempotent.
  void stop();

  /// Counter snapshot with the live fields (uptime, queue depth, workers)
  /// filled in — the same data a STATS request returns.
  [[nodiscard]] StatsSnapshot stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
};

}  // namespace sperr::server
