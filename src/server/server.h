#pragma once

// `sperr_serve` core: a long-lived TCP compression server over the SPERR
// library (ROADMAP item 3; docs/PROTOCOL.md specifies the wire contract,
// docs/OPERATIONS.md how to run and tune it).
//
// Threading model:
//
//   acceptor thread ── accept() ──> one reader thread per connection
//        │                              │  frames requests, validates headers
//        │                              ▼
//        │                    BoundedQueue<Job> (reject-with-BUSY when full)
//        │                              │
//        ▼                              ▼
//   worker pool: a TaskPool (common/threadpool.h) whose lanes loop over the
//   queue. Each lane is a long-lived thread, so its tls_arena() (the
//   per-thread scratch Arena the chunked codec paths allocate from) stays
//   warm across requests — steady-state request processing performs no
//   system allocations inside the pipeline. Chunk-granular work inside one
//   request runs on the library's chunk loop (ServerConfig::
//   threads_per_request OpenMP threads) and the SPECK coders' deterministic
//   intra-chunk lanes (ServerConfig::intra_chunk_threads, also TaskPool-
//   backed), so a single large request can still use the whole machine.
//
// Connections are handled strictly request-reply: the reader dispatches one
// frame, blocks for the worker's reply, writes it, then reads the next
// frame. Replies on one connection therefore always arrive in request
// order; concurrency comes from multiple connections.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "server/metrics.h"
#include "server/protocol.h"

namespace sperr::server {

struct ServerConfig {
  /// TCP port to bind on 127.0.0.1 (0 = pick an ephemeral port; read it
  /// back with Server::port()).
  uint16_t port = 0;

  /// Worker-pool lanes processing requests concurrently (>= 1).
  int workers = 2;

  /// Bounded request queue high-water mark: requests arriving when this
  /// many jobs are already waiting are rejected with BUSY.
  size_t queue_capacity = 64;

  /// OpenMP threads for the chunk loop inside one request (0 = runtime
  /// default). Keep at 1 when `workers` already covers the cores:
  /// cross-request parallelism beats intra-request parallelism under load.
  int threads_per_request = 1;

  /// Deterministic SPECK lanes per chunk (sperr::Config::intra_chunk_threads;
  /// streams are byte-identical at every setting).
  int intra_chunk_threads = 1;

  /// Frames advertising a larger body are rejected (bad_request) and the
  /// connection closed.
  size_t max_body_bytes = kDefaultMaxBodyBytes;

  /// Test hook, called by a worker at the start of processing each job with
  /// the job's opcode. Lets tests hold a worker on a latch to make queue
  /// overflow deterministic. Not used in production.
  std::function<void(uint8_t)> process_hook;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();  // stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the acceptor + worker pool. Returns
  /// invalid_argument when the port cannot be bound.
  Status start();

  /// The bound port (valid after start(); resolves port 0 requests).
  [[nodiscard]] uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, drain every admitted job, answer
  /// it, then close all connections and join every thread. Idempotent.
  void stop();

  /// Counter snapshot with the live fields (uptime, queue depth, workers)
  /// filled in — the same data a STATS request returns.
  [[nodiscard]] StatsSnapshot stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
};

}  // namespace sperr::server
