#include "server/chaosproxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "server/protocol.h"

namespace sperr::server {

std::vector<FaultEvent> make_fault_plan(const ChaosConfig& cfg,
                                        uint64_t conn_index) {
  // Mix the connection index into the seed with a splitmix-style constant
  // so consecutive connections get decorrelated plans while (seed, index)
  // stays perfectly reproducible.
  Rng rng(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (conn_index + 1)));
  std::vector<FaultEvent> plan;
  for (const bool upstream : {true, false}) {
    const uint64_t n = rng.below(uint64_t(std::max(0, cfg.max_events_per_conn)) + 1);
    for (uint64_t i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.upstream = upstream;
      ev.at_byte = rng.below(cfg.offset_window ? cfg.offset_window : 1);
      ev.kind = FaultKind(rng.below(5));
      if (ev.kind == FaultKind::split_write)
        ev.param = 1 + int(rng.below(uint64_t(std::max(1, cfg.split_run_max))));
      else if (ev.kind == FaultKind::stall)
        ev.param = cfg.stall_ms_min +
                   int(rng.below(uint64_t(std::max(
                       1, cfg.stall_ms_max - cfg.stall_ms_min + 1))));
      plan.push_back(ev);
    }
  }
  // Stable order within each direction: the pump consumes events in
  // forwarded-byte order.
  std::stable_sort(plan.begin(), plan.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.upstream != b.upstream) return a.upstream;
                     return a.at_byte < b.at_byte;
                   });
  return plan;
}

struct ChaosProxy::Impl {
  explicit Impl(ChaosConfig c) : cfg(c) {}

  ChaosConfig cfg;
  uint16_t port = 0;
  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};
  std::thread acceptor;
  std::atomic<bool> stopping{false};
  bool started = false;
  bool stopped = false;

  std::mutex mu;
  std::unordered_map<uint64_t, std::pair<int, int>> live;  // id -> (cfd, ufd)
  std::vector<std::thread> conn_threads;

  std::atomic<uint64_t> connections{0};
  std::atomic<uint64_t> splits{0};
  std::atomic<uint64_t> stalls{0};
  std::atomic<uint64_t> rsts{0};
  std::atomic<uint64_t> half_closes{0};
  std::atomic<uint64_t> truncates{0};

  /// Deregister the connection, then close both sockets — optionally with
  /// SO_LINGER{1,0} so the close emits RST instead of FIN. Deregistering
  /// first means stop() can never shutdown() a recycled descriptor.
  void close_pair(uint64_t id, int cfd, int ufd, bool rst) {
    {
      std::lock_guard<std::mutex> lk(mu);
      live.erase(id);
    }
    if (rst) {
      linger lg{1, 0};
      ::setsockopt(cfd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
      ::setsockopt(ufd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    }
    ::close(cfd);
    ::close(ufd);
  }

  void sleep_interruptible(int ms) {
    while (ms > 0 && !stopping.load()) {
      const int slice = std::min(ms, 20);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      ms -= slice;
    }
  }

  /// One direction of a connection's pump state.
  struct Dir {
    int src = -1;
    int dst = -1;
    uint64_t forwarded = 0;
    std::vector<FaultEvent> events;  // this direction only, offset-sorted
    size_t next = 0;
    bool open = true;
  };

  enum class PumpVerdict { ok, closed_clean, closed_rst };

  /// Forward `n` bytes through `d`, firing any planned faults whose
  /// offsets this run crosses. closed_* verdicts mean the connection is
  /// gone (sockets still open; the caller closes them).
  PumpVerdict forward(Dir& d, const uint8_t* buf, size_t n) {
    size_t off = 0;
    while (off < n) {
      size_t run = n - off;
      const FaultEvent* ev = nullptr;
      if (d.next < d.events.size()) {
        const FaultEvent& e = d.events[d.next];
        if (e.at_byte <= d.forwarded) {
          ev = &e;
          run = 0;  // fire before forwarding anything further
        } else if (e.at_byte - d.forwarded < run) {
          run = size_t(e.at_byte - d.forwarded);  // forward up to the trigger
        }
      }
      if (run > 0) {
        if (!write_all(d.dst, buf + off, run)) return PumpVerdict::closed_clean;
        off += run;
        d.forwarded += run;
        continue;
      }
      ++d.next;
      switch (ev->kind) {
        case FaultKind::split_write: {
          size_t split = std::min(size_t(std::max(1, ev->param)), n - off);
          ++splits;
          while (split > 0) {
            if (!write_all(d.dst, buf + off, 1)) return PumpVerdict::closed_clean;
            ++off;
            ++d.forwarded;
            --split;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            if (stopping.load()) return PumpVerdict::closed_clean;
          }
          break;
        }
        case FaultKind::stall:
          ++stalls;
          sleep_interruptible(ev->param);
          break;
        case FaultKind::rst:
          ++rsts;
          return PumpVerdict::closed_rst;
        case FaultKind::half_close:
          // FIN one direction; the peer sees a clean EOF mid-stream while
          // the opposite direction keeps flowing. Remaining source bytes
          // are discarded (nowhere to put them).
          ++half_closes;
          ::shutdown(d.dst, SHUT_WR);
          ::shutdown(d.src, SHUT_RD);
          d.open = false;
          return PumpVerdict::ok;
        case FaultKind::truncate_close:
          // Drop the rest of the in-flight bytes and FIN both sides: the
          // peer must treat a well-formed close mid-message as an error,
          // not hang waiting for the advertised remainder.
          ++truncates;
          return PumpVerdict::closed_clean;
      }
    }
    return PumpVerdict::ok;
  }

  void serve(uint64_t id, int cfd, int ufd, std::vector<FaultEvent> plan) {
    Dir c2s, s2c;
    c2s.src = cfd;
    c2s.dst = ufd;
    s2c.src = ufd;
    s2c.dst = cfd;
    for (const FaultEvent& e : plan)
      (e.upstream ? c2s : s2c).events.push_back(e);
    std::vector<uint8_t> buf(16 * 1024);
    bool rst = false;
    while ((c2s.open || s2c.open) && !stopping.load()) {
      pollfd pf[2] = {{c2s.open ? c2s.src : -1, POLLIN, 0},
                      {s2c.open ? s2c.src : -1, POLLIN, 0}};
      // Finite poll so stop() is honored even on an idle connection.
      const int pr = ::poll(pf, 2, 200);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (pr == 0) continue;
      bool done = false;
      for (Dir* d : {&c2s, &s2c}) {
        const pollfd& p = (d == &c2s) ? pf[0] : pf[1];
        if (!d->open || !(p.revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const ssize_t got = ::recv(d->src, buf.data(), buf.size(), 0);
        if (got < 0) {
          if (errno == EINTR) continue;
          done = true;  // reset from either endpoint: tear it all down
          break;
        }
        if (got == 0) {
          d->open = false;
          ::shutdown(d->dst, SHUT_WR);  // propagate the FIN
          continue;
        }
        const PumpVerdict v = forward(*d, buf.data(), size_t(got));
        if (v != PumpVerdict::ok) {
          rst = (v == PumpVerdict::closed_rst);
          done = true;
          break;
        }
      }
      if (done) break;
    }
    close_pair(id, cfd, ufd, rst);
  }

  void accept_loop() {
    uint64_t next_id = 0;
    for (;;) {
      pollfd pfds[2] = {{listen_fd, POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
      const int pr = ::poll(pfds, 2, -1);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (stopping.load() || (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)))
        break;
      if (!(pfds[0].revents & POLLIN)) continue;
      const int cfd = ::accept(listen_fd, nullptr, nullptr);
      if (cfd < 0) {
        if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK)
          continue;
        break;
      }
      const int ufd = connect_loopback(cfg.upstream_port);
      if (ufd < 0) {
        ::close(cfd);
        continue;  // upstream down: refuse this one, keep listening
      }
      int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const uint64_t id = next_id++;
      ++connections;
      auto plan = make_fault_plan(cfg, id);
      std::lock_guard<std::mutex> lk(mu);
      live.emplace(id, std::make_pair(cfd, ufd));
      conn_threads.emplace_back([this, id, cfd, ufd, plan = std::move(plan)] {
        serve(id, cfd, ufd, std::move(plan));
      });
    }
  }
};

ChaosProxy::ChaosProxy(ChaosConfig cfg) : impl_(std::make_unique<Impl>(cfg)) {}

ChaosProxy::~ChaosProxy() { stop(); }

uint16_t ChaosProxy::port() const { return impl_->port; }

bool ChaosProxy::start() {
  Impl& im = *impl_;
  im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (im.listen_fd < 0) return false;
  int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.cfg.listen_port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(im.listen_fd, 64) != 0 || !set_nonblocking(im.listen_fd) ||
      ::pipe(im.wake_pipe) != 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
    return false;
  }
  socklen_t alen = sizeof addr;
  if (::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), &alen) != 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
    return false;
  }
  im.port = ntohs(addr.sin_port);
  im.started = true;
  im.acceptor = std::thread([this] { impl_->accept_loop(); });
  return true;
}

void ChaosProxy::stop() {
  Impl& im = *impl_;
  if (!im.started || im.stopped) return;
  im.stopped = true;
  im.stopping.store(true);
  {
    const uint8_t b = 1;
    ssize_t rc;
    do {
      rc = ::write(im.wake_pipe[1], &b, 1);
    } while (rc < 0 && errno == EINTR);
  }
  im.acceptor.join();
  ::close(im.listen_fd);
  ::close(im.wake_pipe[0]);
  ::close(im.wake_pipe[1]);
  {
    // Unblock any pump sleeping in poll(); threads also observe stopping
    // within one 200 ms poll slice.
    std::lock_guard<std::mutex> lk(im.mu);
    for (const auto& [id, fds] : im.live) {
      ::shutdown(fds.first, SHUT_RDWR);
      ::shutdown(fds.second, SHUT_RDWR);
    }
  }
  // conn_threads only grows from the (already joined) acceptor.
  for (std::thread& t : im.conn_threads) t.join();
  im.conn_threads.clear();
}

ChaosCounters ChaosProxy::counters() const {
  const Impl& im = *impl_;
  ChaosCounters c;
  c.connections = im.connections.load();
  c.splits = im.splits.load();
  c.stalls = im.stalls.load();
  c.rsts = im.rsts.load();
  c.half_closes = im.half_closes.load();
  c.truncates = im.truncates.load();
  return c;
}

}  // namespace sperr::server
