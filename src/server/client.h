#pragma once

// Retrying client for the sperr_serve wire protocol (docs/OPERATIONS.md
// "Timeouts, overload, and retries" documents the recommended settings).
//
// The client owns one connection and layers three things the raw
// protocol.h helpers do not: (1) connect-with-retry under a total budget,
// so racing a just-started server on an ephemeral port converges instead
// of failing on the first SYN; (2) per-operation transport deadlines on
// every send/recv, so a dead or wedged server surfaces as a failed call
// rather than a hang; (3) automatic retry with bounded decorrelated-jitter
// backoff — but only where a retry is safe:
//
//   - transport failures and the retryable reply statuses (BUSY,
//     DEADLINE_EXCEEDED; see is_retryable in protocol.h) retry only for
//     idempotent opcodes (everything but COMPRESS — re-running a
//     DECOMPRESS/VERIFY/EXTRACT_CHUNK/STATS cannot change server state or
//     give a different answer, while a duplicated COMPRESS doubles work
//     and, for future stateful deployments, effects);
//   - deterministic rejections (bad_request, corrupt, verify_failed,
//     unsupported_version) never retry — the answer would not change;
//   - a lifetime retry budget caps the total retries one Client will ever
//     issue, so a down server costs O(budget) attempts, not unbounded.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "server/protocol.h"

namespace sperr::server {

/// Is `op` safe to retry automatically after a transport failure or a
/// retryable rejection? Everything but COMPRESS: read-only operations give
/// the same answer every time, while a COMPRESS that may have been
/// processed must be re-issued by the caller who can reason about it.
[[nodiscard]] constexpr bool is_idempotent(Opcode op) {
  return op != Opcode::compress;
}

/// One decorrelated-jitter backoff step (the AWS "decorrelated jitter"
/// scheme): next = min(cap, uniform(base, prev * 3)). Exposed as a free
/// function so tests can pin its bounds and determinism.
[[nodiscard]] int backoff_next_ms(int prev_ms, int base_ms, int cap_ms,
                                  Rng& rng);

struct ClientConfig {
  uint16_t port = 0;

  /// Total budget for establishing a connection, across however many
  /// attempts fit (each attempt's own timeout is bounded by the remaining
  /// budget). Covers the bench's ephemeral-port race: the listening line
  /// is printed before accept() runs, so early SYNs can lose.
  int connect_budget_ms = 10'000;

  /// Transport deadline for one send-request/receive-reply exchange.
  int op_timeout_ms = 30'000;

  /// Decorrelated-jitter backoff parameters (milliseconds).
  int backoff_base_ms = 5;
  int backoff_cap_ms = 500;

  /// Attempts per call() (1 = no retry).
  int max_attempts = 4;

  /// Lifetime retry cap across all calls on this Client instance.
  uint64_t retry_budget = 256;

  /// Opt-in: also auto-retry COMPRESS. Safe against today's stateless
  /// server; off by default per the idempotency gating contract.
  bool retry_non_idempotent = false;

  /// Seed for the jitter PRNG (deterministic backoff sequences in tests).
  uint64_t seed = 0x5eed5c1ee47ULL;

  size_t max_reply_body = kDefaultMaxBodyBytes;
};

/// Client-side counters (the `retries` metric of the hardening layer lives
/// here — the server cannot know whether two arrivals were one logical
/// call).
struct ClientStats {
  uint64_t calls = 0;        ///< call() invocations
  uint64_t retries = 0;      ///< extra attempts beyond each call's first
  uint64_t reconnects = 0;   ///< successful connects after the first
  uint64_t transport_errors = 0;  ///< send/recv/connect failures observed
  uint64_t giveups = 0;      ///< calls that exhausted attempts or budget
};

/// Outcome of one call(). `ok` is transport-level success (a reply frame
/// was received and matched the request id); the application verdict is
/// `status`.
struct CallResult {
  bool ok = false;
  WireStatus status = WireStatus::io_error;
  std::vector<uint8_t> body;
  int attempts = 0;  ///< attempts consumed (>= 1 once anything was tried)
};

class Client {
 public:
  explicit Client(ClientConfig cfg);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Establish the connection now (retrying under connect_budget_ms).
  /// call() connects lazily, so this is optional — it exists so callers
  /// can fail fast at startup. Returns false when the budget ran out.
  bool connect();

  /// Send one request and wait for its reply, retrying per the policy
  /// above. The request id is chosen by the client (monotonic) and echoed
  /// back in the reply; mismatched ids are a transport failure.
  CallResult call(Opcode op, const std::vector<uint8_t>& body);

  /// Drop the connection (next call() reconnects).
  void disconnect();

  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

 private:
  bool ensure_connected(int budget_ms);
  bool exchange(Opcode op, uint64_t request_id,
                const std::vector<uint8_t>& body, FrameHeader& reply_hdr,
                std::vector<uint8_t>& reply_body);

  ClientConfig cfg_;
  Rng rng_;
  ClientStats stats_;
  int fd_ = -1;
  bool connected_once_ = false;
  uint64_t next_request_id_ = 1;
};

}  // namespace sperr::server
