#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <future>
#include <new>
#include <unordered_map>
#include <unordered_set>

#include "common/arena.h"
#include "common/byteio.h"
#include "common/resource.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "metrics/metrics.h"
#include "server/queue.h"
#include "sperr/recovery.h"
#include "sperr/sperr.h"

namespace sperr::server {
namespace {

/// What a worker hands back to the connection reader.
struct Reply {
  WireStatus status = WireStatus::io_error;
  std::vector<uint8_t> body;
  StageTiming stage;       ///< compress-only pipeline stage seconds
  bool has_stage = false;
};

struct Job {
  uint8_t opcode = 0;
  uint64_t request_id = 0;
  std::vector<uint8_t> body;
  std::shared_ptr<std::promise<Reply>> promise;
  /// Set by the reader when the request deadline expired before a worker
  /// answered: the reader has already replied DEADLINE_EXCEEDED, so a
  /// worker that dequeues this job skips the (now pointless) work.
  std::shared_ptr<std::atomic<bool>> abandoned;
  Timer waited;  ///< started at admission; read at dequeue = queue wait
};

void append_dims(std::vector<uint8_t>& out, const Dims& d) {
  put_u64(out, d.x);
  put_u64(out, d.y);
  put_u64(out, d.z);
}

Dims read_dims(ByteReader& br) {
  Dims d;
  d.x = size_t(br.u64());
  d.y = size_t(br.u64());
  d.z = size_t(br.u64());
  return d;
}

/// Map a library decode status onto the wire: resource rejections keep
/// their identity (clients must not treat a bomb as mere corruption — the
/// bytes may be pristine), everything else non-ok is corrupt.
WireStatus decode_wire_status(Status s) {
  return s == Status::resource_exhausted ? WireStatus::resource_exhausted
                                         : WireStatus::corrupt;
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerConfig c)
      : cfg(std::move(c)),
        workers(std::max(1, cfg.workers)),
        queue(cfg.queue_capacity),
        budget(cfg.max_memory_bytes) {}

  ServerConfig cfg;
  const int workers;
  BoundedQueue<Job> queue;
  /// Global decode pool (see ServerConfig::max_memory_bytes). Only wired
  /// into request limits when the cap is non-zero.
  MemoryBudget budget;
  Metrics metrics;
  Timer started;

  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};  // self-pipe: portable accept-loop wakeup
  std::thread acceptor;
  std::thread pool_driver;
  std::unique_ptr<TaskPool> pool;

  // Reader-thread bookkeeping. Readers run detached from the acceptor's
  // point of view but stay joinable: a reader exiting moves its own
  // std::thread handle from conn_threads into zombie_threads (under
  // conn_mu, so there is no window where the handle is unowned), and the
  // acceptor/stop() join the parked handles. conn_cv fires whenever
  // conn_threads shrinks, which is what stop() waits on.
  mutable std::mutex conn_mu;
  std::unordered_set<int> conn_fds;               // live connection sockets
  std::unordered_map<int, std::thread> conn_threads;  // fd -> its reader
  std::vector<std::thread> zombie_threads;        // exited readers, unjoined
  std::condition_variable conn_cv;
  std::atomic<bool> stopping{false};
  bool stopped = false;  // stop() ran to completion (guarded by stop_mu)
  std::mutex stop_mu;

  /// Per-request decode ceilings: the library defaults tightened by the
  /// server's configured caps, plus the shared pool when one is set. Built
  /// fresh per request (cheap: a struct copy) so handlers never share
  /// mutable limit state.
  [[nodiscard]] ResourceLimits request_limits() {
    ResourceLimits rl = ResourceLimits::defaults();
    if (cfg.max_output_bytes > 0) {
      rl.max_output_bytes = std::min(rl.max_output_bytes, cfg.max_output_bytes);
      rl.max_working_bytes = std::min(rl.max_working_bytes, cfg.max_output_bytes);
    }
    if (cfg.max_memory_bytes > 0) {
      rl.max_output_bytes = std::min(rl.max_output_bytes, cfg.max_memory_bytes);
      rl.max_working_bytes = std::min(rl.max_working_bytes, cfg.max_memory_bytes);
      rl.budget = &budget;
    }
    return rl;
  }

  // --- request dispatch (worker side) --------------------------------------

  Reply do_compress(const std::vector<uint8_t>& body) {
    Reply r;
    r.status = WireStatus::bad_request;
    if (body.size() < kCompressBodyHeaderBytes) return r;
    ByteReader br(body.data(), body.size());
    const uint8_t mode = br.u8();
    const uint8_t precision = br.u8();
    const uint8_t flags = br.u8();
    const uint8_t reserved = br.u8();
    const double quality = br.f64();
    const double q_over_t = br.f64();
    const Dims dims = read_dims(br);
    const Dims chunk_dims = read_dims(br);
    if (mode > 2 || (precision != 4 && precision != 8) || reserved != 0 ||
        (flags & ~kCompressFlagsKnown) != 0)
      return r;
    if (!plausible_dims(dims)) return r;
    if (!(quality > 0.0) || !std::isfinite(quality)) return r;
    const size_t expect = dims.total() * precision;
    if (body.size() - kCompressBodyHeaderBytes != expect) return r;

    Config cfg2;
    cfg2.mode = Mode(mode);
    if (cfg2.mode == Mode::pwe)
      cfg2.tolerance = quality;
    else if (cfg2.mode == Mode::fixed_rate)
      cfg2.bpp = quality;
    else
      cfg2.rmse = quality;
    if (q_over_t > 0.0) cfg2.q_over_t = q_over_t;
    if (chunk_dims.x || chunk_dims.y || chunk_dims.z) {
      if (chunk_dims.x == 0 || chunk_dims.y == 0 || chunk_dims.z == 0) return r;
      cfg2.chunk_dims = chunk_dims;
    }
    cfg2.num_threads = cfg.threads_per_request;
    cfg2.intra_chunk_threads = cfg.intra_chunk_threads;
    cfg2.lossless_pass = (flags & kCompressFlagNoLossless) == 0;

    const uint8_t* samples = body.data() + kCompressBodyHeaderBytes;
    Stats stats;
    std::vector<uint8_t> blob;
    // The body offset is not 8-aligned, so samples are copied out rather
    // than reinterpreted in place.
    std::vector<double> field64;
    if (precision == 8) {
      field64.resize(dims.total());
      std::memcpy(field64.data(), samples, expect);
      blob = sperr::compress(field64.data(), dims, cfg2, &stats);
    } else {
      std::vector<float> field32(dims.total());
      std::memcpy(field32.data(), samples, expect);
      blob = sperr::compress(field32.data(), dims, cfg2, &stats);
      if (flags & kCompressFlagVerify) {
        field64.assign(field32.begin(), field32.end());
      }
    }
    if (blob.empty()) {
      r.status = WireStatus::io_error;
      return r;
    }
    if (flags & kCompressFlagVerify) {
      std::vector<double> recon;
      Dims od;
      if (sperr::decompress(blob.data(), blob.size(), recon, od) != Status::ok ||
          od != dims) {
        r.status = WireStatus::verify_failed;
        return r;
      }
      if (cfg2.mode == Mode::pwe) {
        // f32 inputs round-trip through the container's f32 precision, so
        // the bound is checked against the f32 field the encoder saw.
        const auto q =
            sperr::metrics::compare(field64.data(), recon.data(), recon.size());
        if (!(q.max_pwe <= cfg2.tolerance)) {
          r.status = WireStatus::verify_failed;
          return r;
        }
      }
    }
    r.status = WireStatus::ok;
    r.body = std::move(blob);
    r.stage = stats.timing;
    r.has_stage = true;
    return r;
  }

  Reply do_decompress(const std::vector<uint8_t>& body) {
    Reply r;
    r.status = WireStatus::bad_request;
    if (body.size() < kDecompressBodyHeaderBytes) return r;
    ByteReader br(body.data(), body.size());
    const uint8_t policy = br.u8();
    const uint8_t precision = br.u8();
    const uint16_t reserved = br.u16();
    if (policy > 2 || (precision != 4 && precision != 8) || reserved != 0) return r;

    const uint8_t* blob = body.data() + kDecompressBodyHeaderBytes;
    const size_t blob_len = body.size() - kDecompressBodyHeaderBytes;
    const ResourceLimits rl = request_limits();
    std::vector<double> field;
    Dims dims;
    const Status s = sperr::decompress_tolerant(blob, blob_len, Recovery(policy),
                                                field, dims, nullptr, &rl);
    if (s != Status::ok) {
      r.status = decode_wire_status(s);
      return r;
    }
    // The reply body (dims + samples at the requested precision) is bounded
    // by the field the limits just admitted, so no separate gate is needed.
    r.status = WireStatus::ok;
    r.body.reserve(24 + field.size() * precision);
    append_dims(r.body, dims);
    if (precision == 8) {
      const auto* p = reinterpret_cast<const uint8_t*>(field.data());
      r.body.insert(r.body.end(), p, p + field.size() * 8);
    } else {
      std::vector<float> out32(field.begin(), field.end());
      const auto* p = reinterpret_cast<const uint8_t*>(out32.data());
      r.body.insert(r.body.end(), p, p + out32.size() * 4);
    }
    return r;
  }

  Reply do_verify(const std::vector<uint8_t>& body) {
    Reply r;
    const ResourceLimits rl = request_limits();
    DecodeReport rep;
    const Status s = sperr::verify_container(body.data(), body.size(), &rep, &rl);
    if (s == Status::resource_exhausted) {
      r.status = WireStatus::resource_exhausted;
      return r;
    }
    if (!rep.header_ok) {
      r.status = WireStatus::corrupt;
      return r;
    }
    r.status = s == Status::ok ? WireStatus::ok : WireStatus::corrupt;
    r.body.reserve(kVerifyReplyHeaderBytes +
                   rep.chunks.size() * kVerifyChunkRecordBytes);
    put_u8(r.body, rep.version);
    put_u8(r.body, s == Status::ok ? 1 : 0);
    put_u16(r.body, 0);
    put_u32(r.body, uint32_t(rep.damaged));
    put_u32(r.body, uint32_t(rep.chunks.size()));
    for (const ChunkReport& c : rep.chunks) {
      put_u32(r.body, uint32_t(c.index));
      put_u8(r.body, uint8_t(c.status));
      put_u8(r.body, c.checksum_present ? 1 : 0);
      put_u8(r.body, c.checksum_ok ? 1 : 0);
      put_u8(r.body, 0);
    }
    return r;
  }

  Reply do_extract_chunk(const std::vector<uint8_t>& body) {
    Reply r;
    r.status = WireStatus::bad_request;
    if (body.size() < kExtractBodyHeaderBytes) return r;
    ByteReader br(body.data(), body.size());
    const uint32_t index = br.u32();
    const uint8_t* blob = body.data() + kExtractBodyHeaderBytes;
    const size_t blob_len = body.size() - kExtractBodyHeaderBytes;

    const ResourceLimits rl = request_limits();
    detail::OpenedContainer oc;
    const Status os =
        detail::open_tolerant(blob, blob_len, Recovery::fail_fast, oc, nullptr, &rl);
    if (os != Status::ok) {
      r.status = decode_wire_status(os);
      return r;
    }
    if (index >= oc.chunks.size()) return r;  // bad_request: no such chunk
    const Chunk& chunk = oc.chunks[index];
    // One decoded chunk plus its reply copy is the working set here; gate it
    // (and reserve it from the shared pool) before sizing the buffer.
    const uint64_t chunk_bytes = uint64_t(chunk.dims.total()) * sizeof(double);
    Reservation budget_hold;
    if (!rl.admits_output(chunk_bytes) || !rl.admits_working(chunk_bytes) ||
        !budget_hold.acquire(rl.budget, chunk_bytes)) {
      r.status = WireStatus::resource_exhausted;
      return r;
    }
    std::vector<double> buf(chunk.dims.total(), 0.0);
    const ChunkReport crep = detail::decode_chunk(oc, index, Recovery::fail_fast,
                                                  buf.data(), &tls_arena(),
                                                  cfg.intra_chunk_threads);
    if (crep.damaged()) {
      r.status = WireStatus::corrupt;
      return r;
    }
    r.status = WireStatus::ok;
    r.body.reserve(48 + buf.size() * 8);
    append_dims(r.body, chunk.origin);
    append_dims(r.body, chunk.dims);
    const auto* p = reinterpret_cast<const uint8_t*>(buf.data());
    r.body.insert(r.body.end(), p, p + buf.size() * 8);
    return r;
  }

  Reply dispatch(const Job& job) {
    switch (Opcode(job.opcode)) {
      case Opcode::compress: return do_compress(job.body);
      case Opcode::decompress: return do_decompress(job.body);
      case Opcode::verify: return do_verify(job.body);
      case Opcode::extract_chunk: return do_extract_chunk(job.body);
      default: break;  // stats is handled in worker_loop, unknown at the reader
    }
    Reply r;
    r.status = WireStatus::bad_request;
    return r;
  }

  [[nodiscard]] StatsSnapshot snapshot() const {
    StatsSnapshot s = metrics.snapshot();
    s.uptime_seconds = started.seconds();
    s.queue_depth = queue.depth();
    s.queue_capacity = queue.capacity();
    s.workers = uint64_t(workers);
    {
      std::lock_guard<std::mutex> lk(conn_mu);
      s.active_connections = conn_fds.size();
    }
    return s;
  }

  // --- worker pool ----------------------------------------------------------

  void worker_loop() {
    Job job;
    while (queue.pop(job)) {
      const double wait_s = job.waited.seconds();
      if (cfg.process_hook) cfg.process_hook(job.opcode);
      Reply reply;
      if (job.abandoned && job.abandoned->load()) {
        // The reader already answered DEADLINE_EXCEEDED; skip the work.
        // The lane counts the request (as an error, in its opcode slot) —
        // the reader only counted timeouts_request, so nothing is counted
        // twice.
        metrics.count_request(job.opcode, /*error=*/true, /*bytes_out=*/0,
                              wait_s, /*busy_s=*/0.0);
        reply.status = WireStatus::deadline_exceeded;
      } else if (Opcode(job.opcode) == Opcode::stats) {
        // Count this request *before* snapshotting so the reply includes
        // itself (the deterministic contract docs/PROTOCOL.md documents:
        // requests_total/stats_count include the request being answered;
        // bytes_out and busy_seconds exclude its in-flight reply).
        metrics.count_request(job.opcode, /*error=*/false, /*bytes_out=*/0,
                              wait_s, /*busy_s=*/0.0);
        reply.status = WireStatus::ok;
        reply.body = snapshot().serialize();
      } else {
        Timer busy;
        // A worker must outlive any single bad request: library contract
        // violations surface as io_error replies, never as a dead server.
        // An allocation failure that slipped past the up-front limits is
        // still a resource answer, not an internal error.
        try {
          reply = dispatch(job);
        } catch (const std::bad_alloc&) {
          reply = Reply{};
          reply.status = WireStatus::resource_exhausted;
        } catch (...) {
          reply = Reply{};
          reply.status = WireStatus::io_error;
        }
        if (reply.status == WireStatus::resource_exhausted)
          metrics.count_resource_exhausted();
        metrics.count_request(job.opcode, reply.status != WireStatus::ok,
                              reply.body.size(), wait_s, busy.seconds(),
                              reply.has_stage ? &reply.stage : nullptr);
      }
      job.promise->set_value(std::move(reply));
      job = Job{};  // release the body before blocking on the next pop
    }
  }

  // --- connection handling (reader side) ------------------------------------

  /// Write one reply frame under the connection's I/O deadline. A write
  /// timeout is counted and, like any other write failure, closes the
  /// connection (returns false).
  bool send_reply(int fd, WireStatus status, uint64_t request_id,
                  const uint8_t* body, size_t body_len) {
    std::vector<uint8_t> frame;
    frame.reserve(kFrameHeaderBytes + body_len);
    put_frame_header(frame, kReplyMagic, uint8_t(status), request_id, body_len);
    if (body_len > 0) frame.insert(frame.end(), body, body + body_len);
    const IoOutcome w =
        write_all_deadline(fd, frame.data(), frame.size(), cfg.io_timeout_ms);
    if (w == IoOutcome::timed_out) metrics.count_timeout_write();
    return w == IoOutcome::ok;
  }

  /// Counted protocol-level rejection: reply `status` and record the frame
  /// as answered-with-error (no per-opcode slot: it never reached a worker).
  bool reject(int fd, uint64_t request_id, WireStatus status) {
    metrics.count_request(/*opcode=*/0, /*error=*/true, 0, 0.0, 0.0);
    return send_reply(fd, status, request_id, nullptr, 0);
  }

  void serve_connection(int fd) {
    std::vector<uint8_t> body;
    for (;;) {
      uint8_t raw[kFrameHeaderBytes];
      // Waiting for the *first* header byte is the between-requests idle
      // state and gets the (longer) idle budget; once a byte arrives the
      // rest of the header must land within the I/O budget — a peer
      // dripping 23 bytes and stalling is reaped, not parked forever.
      const IoOutcome hr = read_exact_deadline(fd, raw, sizeof raw,
                                               cfg.io_timeout_ms,
                                               cfg.idle_timeout_ms);
      if (hr == IoOutcome::timed_out) {
        metrics.count_timeout_read();
        break;
      }
      if (hr != IoOutcome::ok) break;  // EOF / reset / truncated header
      const FrameHeader h = parse_frame_header(raw);
      // Header-level violations close the connection: once framing is in
      // doubt (wrong magic, an unreadably large body) the byte stream
      // cannot be safely re-synchronized.
      if (h.magic != kRequestMagic || h.reserved != 0) {
        reject(fd, h.request_id, WireStatus::bad_request);
        break;
      }
      if (h.version != kProtocolVersion) {
        reject(fd, h.request_id, WireStatus::unsupported_version);
        break;
      }
      if (h.body_len > cfg.max_body_bytes) {
        reject(fd, h.request_id, WireStatus::bad_request);
        break;
      }
      body.resize(size_t(h.body_len));
      if (h.body_len > 0) {
        const IoOutcome br2 =
            read_exact_deadline(fd, body.data(), body.size(), cfg.io_timeout_ms);
        if (br2 == IoOutcome::timed_out) {
          metrics.count_timeout_read();
          break;
        }
        if (br2 != IoOutcome::ok) break;
      }
      metrics.count_bytes_in(h.body_len);
      // Frame-level violations with intact framing keep the connection.
      if (h.code < uint8_t(Opcode::compress) || h.code > uint8_t(Opcode::stats) ||
          (Opcode(h.code) == Opcode::stats && h.body_len != 0)) {
        if (!reject(fd, h.request_id, WireStatus::bad_request)) break;
        continue;
      }
      Job job;
      job.opcode = h.code;
      job.request_id = h.request_id;
      job.body = std::move(body);
      job.promise = std::make_shared<std::promise<Reply>>();
      job.abandoned = std::make_shared<std::atomic<bool>>(false);
      auto future = job.promise->get_future();
      auto abandoned = job.abandoned;
      if (!queue.try_push(std::move(job))) {
        metrics.count_busy();
        if (!send_reply(fd, WireStatus::busy, h.request_id, nullptr, 0)) break;
        body.clear();
        continue;
      }
      Reply reply;
      if (cfg.request_deadline_ms > 0 &&
          future.wait_for(std::chrono::milliseconds(cfg.request_deadline_ms)) ==
              std::future_status::timeout) {
        // Abandon the job: if a worker has not dequeued it yet it will be
        // skipped; if one is mid-compute the result is discarded. Either
        // way this connection answers now instead of pinning the lane's
        // reply slot.
        abandoned->store(true);
        metrics.count_timeout_request();
        reply.status = WireStatus::deadline_exceeded;
      } else {
        reply = future.get();
      }
      if (!send_reply(fd, reply.status, h.request_id, reply.body.data(),
                      reply.body.size()))
        break;
      body.clear();
    }
    {
      // Deregister before closing so stop() can never shutdown() a
      // recycled descriptor, and park this thread's own handle for the
      // acceptor (or stop()) to join. conn_cv is notified under the lock:
      // once stop() observes conn_threads empty, every exiting reader has
      // already released conn_mu.
      std::lock_guard<std::mutex> lk(conn_mu);
      conn_fds.erase(fd);
      auto it = conn_threads.find(fd);
      if (it != conn_threads.end()) {
        zombie_threads.push_back(std::move(it->second));
        conn_threads.erase(it);
      }
      conn_cv.notify_all();
    }
    ::close(fd);
  }

  /// Join reader handles parked by exited connections (never blocks long:
  /// a parked handle's thread is past its serve loop).
  void reap_zombies() {
    std::vector<std::thread> done;
    {
      std::lock_guard<std::mutex> lk(conn_mu);
      done.swap(zombie_threads);
    }
    for (std::thread& t : done) t.join();
  }

  void accept_loop() {
    for (;;) {
      reap_zombies();
      pollfd pfds[2] = {{listen_fd, POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
      const int pr = ::poll(pfds, 2, -1);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (stopping.load() || (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)))
        break;  // stop() wrote to the self-pipe
      if (!(pfds[0].revents & POLLIN)) continue;
      const int cfd = ::accept(listen_fd, nullptr, nullptr);
      if (cfd < 0) {
        // Transient conditions (a peer that reset before we accepted, a
        // signal, another thread winning the race on a non-blocking
        // listener) must not kill the acceptor.
        if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK)
          continue;
        break;  // fatal (EMFILE storms also land here; the poll retries)
      }
      if (stopping.load()) {
        ::close(cfd);
        break;
      }
      set_nonblocking(cfd);
      int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      std::unique_lock<std::mutex> lk(conn_mu);
      if (cfg.max_connections > 0 && conn_fds.size() >= cfg.max_connections) {
        lk.unlock();
        metrics.count_conn_rejected();
        // One best-effort unsolicited BUSY (request id 0). The 24-byte
        // frame virtually always fits the empty send buffer; if the peer
        // has somehow wedged the socket already, we drop the courtesy
        // rather than stall the acceptor.
        std::vector<uint8_t> frame;
        put_frame_header(frame, kReplyMagic, uint8_t(WireStatus::busy), 0, 0);
        (void)::send(cfd, frame.data(), frame.size(), MSG_NOSIGNAL);
        ::close(cfd);
        continue;
      }
      metrics.count_conn_open();
      conn_fds.insert(cfd);
      // Insert the handle under conn_mu *while the thread may already be
      // running*: its exit path needs this same lock to park the handle,
      // so it cannot miss it.
      conn_threads.emplace(cfd,
                           std::thread([this, cfd] { serve_connection(cfd); }));
    }
  }
};

Server::Server(ServerConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {}

Server::~Server() { stop(); }

Status Server::start() {
  Impl& im = *impl_;
  im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (im.listen_fd < 0) return Status::invalid_argument;
  int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.cfg.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(im.listen_fd, 128) != 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
    return Status::invalid_argument;
  }
  socklen_t alen = sizeof addr;
  if (::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), &alen) != 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
    return Status::invalid_argument;
  }
  port_ = ntohs(addr.sin_port);
  // Non-blocking listener + self-pipe: the acceptor polls both, so stop()
  // wakes it portably (no reliance on shutdown()-interrupts-accept
  // semantics) and a spurious poll readiness cannot block in accept().
  if (!set_nonblocking(im.listen_fd) || ::pipe(im.wake_pipe) != 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
    return Status::invalid_argument;
  }
  im.started.reset();
  im.pool = std::make_unique<TaskPool>(im.workers);
  im.pool_driver = std::thread(
      [this] { impl_->pool->run([this](int) { impl_->worker_loop(); }); });
  im.acceptor = std::thread([this] { impl_->accept_loop(); });
  return Status::ok;
}

void Server::stop() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> stop_lk(im.stop_mu);
  if (im.stopped || im.listen_fd < 0) return;
  im.stopped = true;
  im.stopping.store(true);
  // 1. Stop accepting: one byte down the self-pipe wakes the acceptor's
  //    poll() on every POSIX platform.
  {
    const uint8_t b = 1;
    ssize_t rc;
    do {
      rc = ::write(im.wake_pipe[1], &b, 1);
    } while (rc < 0 && errno == EINTR);
  }
  im.acceptor.join();
  ::close(im.listen_fd);
  ::close(im.wake_pipe[0]);
  ::close(im.wake_pipe[1]);
  // 2. Drain, bounded: no new admissions (late arrivals get BUSY); workers
  //    keep finishing admitted jobs — readers still hold open sockets, so
  //    those replies are delivered — but once the drain deadline passes,
  //    jobs still queued are answered DEADLINE_EXCEEDED instead of
  //    processed. In-flight jobs always run to completion (a compute
  //    thread cannot be killed safely), so shutdown time is bounded by
  //    the deadline plus one request.
  im.queue.stop();
  if (im.cfg.drain_deadline_ms >= 0) {
    Timer drained;
    while (im.queue.depth() > 0 &&
           drained.milliseconds() < double(im.cfg.drain_deadline_ms))
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    im.queue.expire_all([&im](Job& job) {
      im.metrics.count_timeout_request();
      im.metrics.count_request(job.opcode, /*error=*/true, 0,
                               job.waited.seconds(), 0.0);
      Reply r;
      r.status = WireStatus::deadline_exceeded;
      job.promise->set_value(std::move(r));
    });
  }
  im.pool_driver.join();
  im.pool.reset();
  // 3. Unblock readers waiting for the next request frame, then wait for
  //    every reader to park its handle and join the parked handles. The
  //    wait is bounded: reads return immediately after shutdown() and
  //    reply writes are under the write deadline.
  {
    std::unique_lock<std::mutex> lk(im.conn_mu);
    for (const int fd : im.conn_fds) ::shutdown(fd, SHUT_RDWR);
    im.conn_cv.wait(lk, [&im] { return im.conn_threads.empty(); });
  }
  im.reap_zombies();
}

StatsSnapshot Server::stats() const { return impl_->snapshot(); }

}  // namespace sperr::server
