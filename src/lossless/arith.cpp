#include "lossless/arith.h"

#include <algorithm>
#include <bit>

namespace sperr::lossless {

size_t arith_normalize(const uint64_t* freq, size_t n, uint16_t* norm) {
  uint64_t total = 0;
  size_t nonzero = 0;
  for (size_t i = 0; i < n; ++i) {
    total += freq[i];
    nonzero += freq[i] != 0;
  }
  std::fill(norm, norm + n, uint16_t(0));
  if (nonzero == 0) return 0;

  // First pass: floor-scale with a minimum of 1 per present symbol, then
  // repair the (small, <= n) drift against the exact power-of-two total by
  // walking the heaviest symbols — deterministic order, integers only.
  int64_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    if (freq[i] == 0) continue;
    const uint64_t scaled = freq[i] * kArithTotal / total;  // freq < 2^52
    norm[i] = uint16_t(std::max<uint64_t>(1, std::min<uint64_t>(scaled, kArithTotal)));
    assigned += norm[i];
  }
  while (assigned > int64_t(kArithTotal)) {
    // Shrink the largest slot that can afford it (ties: lowest symbol).
    size_t best = n;
    for (size_t i = 0; i < n; ++i)
      if (norm[i] > 1 && (best == n || norm[i] > norm[best])) best = i;
    const uint16_t take = uint16_t(std::min<int64_t>(assigned - int64_t(kArithTotal),
                                                     norm[best] - 1));
    norm[best] = uint16_t(norm[best] - take);
    assigned -= take;
  }
  while (assigned < int64_t(kArithTotal)) {
    // Grow the slot for the heaviest actual frequency (ties: lowest symbol)
    // — the cheapest place to park surplus probability mass.
    size_t best = n;
    for (size_t i = 0; i < n; ++i)
      if (norm[i] != 0 && (best == n || freq[i] > freq[best])) best = i;
    const uint16_t give = uint16_t(std::min<int64_t>(int64_t(kArithTotal) - assigned,
                                                     kArithTotal - norm[best]));
    norm[best] = uint16_t(norm[best] + give);
    assigned += give;
  }
  return nonzero;
}

namespace {

/// floor(log2(v) * 256) for v >= 1, by 8 rounds of Q32 squaring. Integer
/// only, so every platform prices blocks identically.
uint32_t log2_q8(uint32_t v) {
  const unsigned k = unsigned(std::bit_width(v)) - 1;
  uint64_t x = (uint64_t(v) << 32) >> k;  // Q32 mantissa in [1, 2)
  uint32_t r = k << 8;
  for (int i = 7; i >= 0; --i) {
    x = uint64_t((unsigned __int128)(x)*x >> 32);  // square: Q32 in [1, 4)
    if (x >= (uint64_t(2) << 32)) {
      x >>= 1;
      r |= 1u << i;
    }
  }
  return r;
}

}  // namespace

uint64_t arith_cost_bits(const uint64_t* freq, const uint16_t* norm, size_t n) {
  // Per-symbol cost of s is exactly kArithTotalBits - log2(norm[s]) bits
  // (power-of-two totals make the range split lossless up to renorm
  // truncation, which a +1 Q8 round-up per symbol class dominates).
  uint64_t q8_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (freq[i] == 0) continue;
    const uint32_t cost_q8 = (kArithTotalBits << 8) - log2_q8(norm[i]) + 1;
    q8_bits += freq[i] * cost_q8;
  }
  return (q8_bits + 255) >> 8;
}

bool ArithCumTable::build(const uint16_t* norm, size_t n, bool want_slots) {
  cum.assign(n + 1, 0);
  uint32_t running = 0;
  for (size_t i = 0; i < n; ++i) {
    cum[i] = running;
    running += norm[i];
    if (running > kArithTotal) return false;
  }
  cum[n] = running;
  if (running == 0) {
    slot.clear();  // unused alphabet (e.g. distances in a match-free block)
    return true;
  }
  if (running != kArithTotal) return false;
  if (!want_slots) return true;
  slot.assign(kArithTotal, 0);
  for (size_t i = 0; i < n; ++i)
    for (uint32_t t = cum[i]; t < cum[i] + norm[i]; ++t) slot[t] = uint16_t(i);
  return true;
}

}  // namespace sperr::lossless
