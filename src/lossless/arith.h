#pragma once

// Byte-renormalizing arithmetic (range) coder plus the static frequency
// model shared by the lossless codec's per-block arithmetic entropy path.
//
// The coder is the classic LZMA-style range coder (a descendant of the
// Witten–Neal–Cleary formulation; cf. the harry arith coder referenced in
// SNIPPETS.md for the bitwise variant): a 32-bit `range` narrows
// proportionally to each symbol's cumulative frequency span over a 33-bit
// `low`, and whenever range drops below 2^24 one whole output byte is
// shifted out — renormalization costs one branch per output *byte*, not per
// bit, which is what lets the arithmetic path keep up with the Huffman path
// on near-random data. Carries propagate through a cache byte plus a
// run-length of pending 0xFF bytes, exactly as in LZMA's rc_shift_low.
// Model totals are restricted to powers of two so the range split needs a
// shift, never a division, on the encode side; the decoder pays one 32-bit
// division per symbol.
//
// The model is semi-static: per block, symbol frequencies are normalized to
// sum to exactly 2^kArithTotalBits (every present symbol keeps a nonzero
// slot), transmitted verbatim, and used unchanged for the whole block —
// which makes the coded size priceable up front from the frequencies alone
// (see arith_cost_bits), the property the per-block Huffman/arith/raw
// selection relies on.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sperr::lossless {

/// log2 of every model total: cumulative frequencies live in [0, 4096].
inline constexpr unsigned kArithTotalBits = 12;
inline constexpr uint32_t kArithTotal = 1u << kArithTotalBits;

/// Bytes appended by ArithEncoder::finish() — the flushed coder state.
inline constexpr size_t kArithFlushBytes = 5;

/// Range encoder appending bytes to a caller-owned vector.
class ArithEncoder {
 public:
  explicit ArithEncoder(std::vector<uint8_t>& out) : out_(out) {}

  /// Encode a symbol occupying cumulative span [lo, hi) of a model whose
  /// total is 2^total_bits. Requires lo < hi <= 2^total_bits, total_bits <=
  /// 16.
  void encode(uint32_t lo, uint32_t hi, unsigned total_bits) {
    const uint32_t r = range_ >> total_bits;
    low_ += uint64_t(r) * lo;
    // The top span absorbs the shift truncation so the code space stays
    // gap-free (matches the decoder's target arithmetic exactly).
    range_ = hi == (uint32_t(1) << total_bits) ? range_ - r * lo : r * (hi - lo);
    while (range_ < kTopValue) {
      range_ <<= 8;
      shift_low();
    }
  }

  /// Encode `count` (<= 16) raw bits of `value` at uniform probability —
  /// the carrier for deflate-style length/distance extra bits.
  void encode_raw(uint32_t value, unsigned count) {
    if (count != 0) encode(value, value + 1, count);
  }

  /// Flush the coder state (kArithFlushBytes bytes); the stream then
  /// decodes unambiguously. Must be called exactly once.
  void finish() {
    for (size_t i = 0; i < kArithFlushBytes; ++i) shift_low();
  }

 private:
  static constexpr uint32_t kTopValue = 1u << 24;

  void shift_low() {
    // Emit the cache byte (plus any pending 0xFF run) once the carry is
    // settled: either low's byte 32..25 cannot be bumped any more
    // (low < 0xFF000000) or a carry into bit 32 already happened.
    if (low_ < 0xFF000000ull || (low_ >> 32) != 0) {
      const uint8_t carry = uint8_t(low_ >> 32);
      do {
        out_.push_back(uint8_t(cache_ + carry));
        cache_ = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = uint8_t(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ << 8) & 0xFFFFFFFFull;
  }

  std::vector<uint8_t>& out_;
  uint64_t low_ = 0;              ///< bit 32 is the pending carry
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;             ///< first emitted byte is always this 0
  uint64_t cache_size_ = 1;
};

/// Matching decoder over an externally owned byte range. Reads past the end
/// return zero bytes while overrun() latches, mirroring BitReader's
/// contract, so a truncated stream decodes garbage that downstream
/// size/checksum checks reject instead of crashing.
class ArithDecoder {
 public:
  ArithDecoder(const uint8_t* data, size_t nbytes) : p_(data), n_(nbytes) {
    ++used_;  // the encoder's first byte is the initial zero cache
    for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | read_byte();
  }

  /// Cumulative-frequency target of the next symbol under a model with
  /// total 2^total_bits; pass the result to a cum-table lookup, then call
  /// consume() with the chosen symbol's span.
  uint32_t decode_target(unsigned total_bits) {
    r_ = range_ >> total_bits;
    const uint32_t t = code_ / r_;
    const uint32_t cap = (uint32_t(1) << total_bits) - 1;
    return t < cap ? t : cap;
  }

  /// Narrow the state by the decoded symbol's span [lo, hi); must follow a
  /// decode_target() with the same total_bits.
  void consume(uint32_t lo, uint32_t hi, unsigned total_bits) {
    code_ -= r_ * lo;
    range_ = hi == (uint32_t(1) << total_bits) ? range_ - r_ * lo : r_ * (hi - lo);
    while (range_ < kTopValue) {
      code_ = (code_ << 8) | read_byte();
      range_ <<= 8;
    }
  }

  /// Decode `count` (<= 16) bits written by encode_raw().
  uint32_t decode_raw(unsigned count) {
    if (count == 0) return 0;
    const uint32_t v = decode_target(count);
    consume(v, v + 1, count);
    return v;
  }

  /// True once more bytes were consumed than the stream holds — the decode
  /// ran off the wire. A complete stream consumes exactly its byte count
  /// (the decoder's renormalizations mirror the encoder's shift-out
  /// sequence one for one).
  [[nodiscard]] bool overrun() const { return used_ > n_; }

 private:
  static constexpr uint32_t kTopValue = 1u << 24;

  uint32_t read_byte() {
    const uint32_t b = used_ < n_ ? p_[used_] : 0u;
    ++used_;
    return b;
  }

  const uint8_t* p_;
  size_t n_;
  size_t used_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint32_t code_ = 0;
  uint32_t r_ = 0;
};

// ---------------------------------------------------------------------------
// Static frequency model.
// ---------------------------------------------------------------------------

/// Normalize `freq` into `norm` so that every nonzero frequency maps to a
/// nonzero slot and the slots sum to exactly 2^kArithTotalBits.
/// Deterministic (no floating point). Requires the number of nonzero
/// frequencies to be <= 2^kArithTotalBits and each freq < 2^52. Returns the
/// number of nonzero slots.
size_t arith_normalize(const uint64_t* freq, size_t n, uint16_t* norm);

/// Exact-enough cost model: upper-bound estimate, in bits, of coding the
/// symbol stream summarized by `freq` with the normalized model `norm`
/// (cross-entropy in Q8 fixed point via an integer log2, rounded up per
/// symbol class), excluding headers and the finish() flush. Integer-only, so
/// the encoder's Huffman/arith/raw selection is identical on every
/// platform. Symbols with freq > 0 must have norm > 0.
uint64_t arith_cost_bits(const uint64_t* freq, const uint16_t* norm, size_t n);

/// Cumulative table + reverse lookup for decode: cum[s] .. cum[s+1] is
/// symbol s's span; slot[t] is the symbol whose span contains target t.
struct ArithCumTable {
  std::vector<uint32_t> cum;   ///< n + 1 entries, cum[n] == kArithTotal (or 0)
  std::vector<uint16_t> slot;  ///< kArithTotal entries (empty if all-zero)

  /// Build from normalized slots. Returns false if the slots are
  /// inconsistent (sum != 2^kArithTotalBits and != 0) — corrupt header.
  bool build(const uint16_t* norm, size_t n, bool want_slots);
};

}  // namespace sperr::lossless
