#include "lossless/codec.h"

#include <algorithm>
#include <cstring>

#include "common/bitstream.h"
#include "common/byteio.h"
#include "lossless/huffman.h"
#include "lossless/lz77.h"

namespace sperr::lossless {

namespace {

constexpr uint8_t kModeRaw = 0;
constexpr uint8_t kModeLz = 1;

// Deflate-style length/distance code tables (RFC 1951 §3.2.5).
constexpr int kNumLenCodes = 29;
constexpr uint16_t kLenBase[kNumLenCodes] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr uint8_t kLenExtra[kNumLenCodes] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                             1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                             4, 4, 4, 4, 5, 5, 5, 5, 0};

constexpr int kNumDistCodes = 30;
constexpr uint32_t kDistBase[kNumDistCodes] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr uint8_t kDistExtra[kNumDistCodes] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                               4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                               9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

constexpr uint32_t kEob = 256;           // end-of-block symbol
constexpr size_t kLitAlphabet = 286;     // 0..255 literals, 256 EOB, 257..285 lengths

int length_code(uint32_t len) {
  for (int i = kNumLenCodes - 1; i >= 0; --i)
    if (len >= kLenBase[i]) return i;
  return 0;
}

int distance_code(uint32_t dist) {
  for (int i = kNumDistCodes - 1; i >= 0; --i)
    if (dist >= kDistBase[i]) return i;
  return 0;
}

// Code lengths are 0..15 so two fit per byte.
void pack_lengths(std::vector<uint8_t>& out, const std::vector<uint8_t>& lengths) {
  for (size_t i = 0; i < lengths.size(); i += 2) {
    const uint8_t lo = lengths[i];
    const uint8_t hi = i + 1 < lengths.size() ? lengths[i + 1] : 0;
    out.push_back(uint8_t(lo | (hi << 4)));
  }
}

std::vector<uint8_t> unpack_lengths(ByteReader& br, size_t count) {
  std::vector<uint8_t> lengths(count, 0);
  for (size_t i = 0; i < count; i += 2) {
    const uint8_t b = br.u8();
    lengths[i] = b & 0x0f;
    if (i + 1 < count) lengths[i + 1] = b >> 4;
  }
  return lengths;
}

}  // namespace

std::vector<uint8_t> compress(const uint8_t* data, size_t size) {
  const std::vector<Token> tokens = lz77_tokenize(data, size);

  // Token symbol frequencies for both Huffman tables.
  std::vector<uint64_t> lit_freq(kLitAlphabet, 0);
  std::vector<uint64_t> dist_freq(kNumDistCodes, 0);
  for (const Token& t : tokens) {
    if (t.length == 0) {
      ++lit_freq[t.literal];
    } else {
      ++lit_freq[257 + size_t(length_code(t.length))];
      ++dist_freq[size_t(distance_code(t.distance))];
    }
  }
  ++lit_freq[kEob];

  // 15-bit limit: the header packs code lengths into 4 bits each.
  const auto lit_lengths = huffman_code_lengths(lit_freq, 15);
  const auto dist_lengths = huffman_code_lengths(dist_freq, 15);
  const HuffmanEncoder lit_enc(lit_lengths);
  const HuffmanEncoder dist_enc(dist_lengths);

  std::vector<uint8_t> out;
  out.push_back(kModeLz);
  put_u64(out, size);
  pack_lengths(out, lit_lengths);
  pack_lengths(out, dist_lengths);

  BitWriter bw;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      lit_enc.encode(bw, t.literal);
      continue;
    }
    const int lc = length_code(t.length);
    lit_enc.encode(bw, uint32_t(257 + lc));
    bw.put_bits(t.length - kLenBase[lc], kLenExtra[lc]);
    const int dc = distance_code(t.distance);
    dist_enc.encode(bw, uint32_t(dc));
    bw.put_bits(t.distance - kDistBase[dc], kDistExtra[dc]);
  }
  lit_enc.encode(bw, kEob);

  const auto& payload = bw.bytes();
  if (out.size() + payload.size() >= size + 9) {
    // Entropy coding did not pay off; store raw.
    std::vector<uint8_t> raw;
    raw.reserve(size + 9);
    raw.push_back(kModeRaw);
    put_u64(raw, size);
    raw.insert(raw.end(), data, data + size);
    return raw;
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status decompress(const uint8_t* data, size_t size, std::vector<uint8_t>& out) {
  ByteReader hdr(data, size);
  const uint8_t mode = hdr.u8();
  const uint64_t raw_size = hdr.u64();
  if (!hdr.ok()) return Status::corrupt_stream;

  if (mode == kModeRaw) {
    const uint8_t* p = hdr.raw(raw_size);
    if (!p) return Status::truncated_stream;
    out.assign(p, p + raw_size);
    return Status::ok;
  }
  if (mode != kModeLz) return Status::corrupt_stream;

  const auto lit_lengths = unpack_lengths(hdr, kLitAlphabet);
  const auto dist_lengths = unpack_lengths(hdr, kNumDistCodes);
  if (!hdr.ok()) return Status::truncated_stream;

  const HuffmanDecoder lit_dec(lit_lengths);
  const HuffmanDecoder dist_dec(dist_lengths);
  if (!lit_dec.valid()) return Status::corrupt_stream;

  BitReader br(data + hdr.pos(), size - hdr.pos());
  out.clear();
  // raw_size is untrusted: cap the speculative reserve, and bail out if the
  // token stream tries to grow past the promised size (corrupt stream).
  out.reserve(size_t(std::min<uint64_t>(raw_size, uint64_t(1) << 24)));
  while (true) {
    if (out.size() > raw_size) return Status::corrupt_stream;
    const int32_t sym = lit_dec.decode(br);
    if (sym < 0) return Status::truncated_stream;
    if (sym == int32_t(kEob)) break;
    if (sym < 256) {
      out.push_back(uint8_t(sym));
      continue;
    }
    const int lc = sym - 257;
    if (lc >= kNumLenCodes) return Status::corrupt_stream;
    const uint32_t len = kLenBase[lc] + uint32_t(br.get_bits(kLenExtra[lc]));
    const int32_t dc = dist_dec.decode(br);
    if (dc < 0 || dc >= kNumDistCodes) return Status::corrupt_stream;
    const uint32_t dist = kDistBase[dc] + uint32_t(br.get_bits(kDistExtra[dc]));
    if (br.exhausted()) return Status::truncated_stream;
    if (dist == 0 || dist > out.size()) return Status::corrupt_stream;
    if (out.size() + len > raw_size) return Status::corrupt_stream;
    const size_t start = out.size() - dist;
    for (uint32_t i = 0; i < len; ++i) out.push_back(out[start + i]);
  }
  if (out.size() != raw_size) return Status::corrupt_stream;
  return Status::ok;
}

}  // namespace sperr::lossless
