#include "lossless/codec.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/bitstream.h"
#include "common/byteio.h"
#include "common/checksum.h"
#include "lossless/arith.h"
#include "lossless/huffman.h"
#include "lossless/lz77.h"

#ifdef SPERR_HAVE_OPENMP
#include <omp.h>
#endif

namespace sperr::lossless {

namespace {

// Per-block payload modes of the format-2 framing (also the leading byte of
// reference streams).
constexpr uint8_t kModeRaw = 0;
constexpr uint8_t kModeLz = 1;
// Stream format bytes of the blocked framings. Reference streams start with
// kModeRaw/kModeLz, so 2/3 unambiguously select a blocked container:
// format 2 prefixes every block payload with a mode byte, format 3 moves
// that information into a 2-bit entropy tag in the directory (and adds the
// arithmetic entropy path).
constexpr uint8_t kFmtBlocked = 2;
constexpr uint8_t kFmtBlockedTagged = 3;

constexpr size_t kMinBlockSize = size_t(1) << 12;
// Format 3 packs the entropy tag into the top 2 bits of the directory's
// compressed-size field, so compressed sizes (<= block size) must fit in 30
// bits; 256 MiB blocks keep a safe margin. Format-2 streams written before
// this limit (up to 1 GiB) still decode.
constexpr size_t kMaxBlockSize = size_t(1) << 28;
constexpr size_t kMaxBlockSizeLegacy = size_t(1) << 30;

// fmt + reserved + block_size(u32) + raw_size(u64) + nblocks(u32).
constexpr size_t kBlockedHeaderBytes = 18;
// Per block: tag+comp_size(u32) + checksum(u64).
constexpr size_t kDirEntryBytes = 12;
constexpr unsigned kTagShift = 30;
constexpr uint32_t kCompSizeMask = (uint32_t(1) << kTagShift) - 1;

// A Huffman-coded match codes at best ~2 bits for 258 bytes, i.e. a hair
// over 1000x expansion. Any raw/Huffman directory entry claiming more than
// this is corrupt, and rejecting it bounds the output allocation an
// adversarial header can demand. Arithmetic blocks can legitimately exceed
// it (a match can cost well under a bit), so they are bounded differently:
// the model header makes every arithmetic payload at least kMinArithBytes,
// and a block's raw size never exceeds the stream's block size.
constexpr uint64_t kMaxExpansion = 4096;

// Deflate-style length/distance code tables (RFC 1951 §3.2.5).
constexpr int kNumLenCodes = 29;
constexpr uint16_t kLenBase[kNumLenCodes] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr uint8_t kLenExtra[kNumLenCodes] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                             1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                             4, 4, 4, 4, 5, 5, 5, 5, 0};

constexpr int kNumDistCodes = 30;
constexpr uint32_t kDistBase[kNumDistCodes] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr uint8_t kDistExtra[kNumDistCodes] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                               4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                               9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

constexpr uint32_t kEob = 256;           // end-of-block symbol
constexpr size_t kLitAlphabet = 286;     // 0..255 literals, 256 EOB, 257..285 lengths

constexpr size_t kLitLenBytes = (kLitAlphabet + 1) / 2;    // packed 4 bits each
constexpr size_t kDistLenBytes = (kNumDistCodes + 1) / 2;  // 143 + 15 = 158

// Arithmetic model header: normalized frequencies, u16 little-endian per
// symbol, literal/length alphabet then distance alphabet. 632 bytes — the
// price an arithmetic block must beat Huffman by before it is selected.
constexpr size_t kArithModelBytes = 2 * (kLitAlphabet + kNumDistCodes);
// No valid arithmetic block payload is smaller than its model header,
// which bounds adversarial expansion claims.
constexpr size_t kMinArithBytes = kArithModelBytes;

int length_code(uint32_t len) {
  for (int i = kNumLenCodes - 1; i >= 0; --i)
    if (len >= kLenBase[i]) return i;
  return 0;
}

int distance_code(uint32_t dist) {
  for (int i = kNumDistCodes - 1; i >= 0; --i)
    if (dist >= kDistBase[i]) return i;
  return 0;
}

// O(1) symbol lookup replacing the linear searches above on the hot paths.
// Distances above 256 bucket by (d - 1) >> 7: every distance base past 256 is
// 1 + a multiple of 128, so each bucket maps to exactly one code (zlib's trick).
struct CodeLut {
  uint8_t len_code[kMaxMatch + 1] = {};
  uint8_t dist_small[257] = {};
  uint8_t dist_large[256] = {};
};

const CodeLut& code_lut() {
  static const CodeLut lut = [] {
    CodeLut t{};
    for (uint32_t l = 3; l <= kMaxMatch; ++l) t.len_code[l] = uint8_t(length_code(l));
    for (uint32_t d = 1; d <= 256; ++d) t.dist_small[d] = uint8_t(distance_code(d));
    for (uint32_t d = 257; d <= kWindowSize; ++d)
      t.dist_large[(d - 1) >> 7] = uint8_t(distance_code(d));
    return t;
  }();
  return lut;
}

inline uint32_t fast_distance_code(const CodeLut& lut, uint32_t dist) {
  return dist <= 256 ? lut.dist_small[dist] : lut.dist_large[(dist - 1) >> 7];
}

// Code lengths are 0..15 so two fit per byte.
void pack_lengths(std::vector<uint8_t>& out, const std::vector<uint8_t>& lengths) {
  for (size_t i = 0; i < lengths.size(); i += 2) {
    const uint8_t lo = lengths[i];
    const uint8_t hi = i + 1 < lengths.size() ? lengths[i + 1] : 0;
    out.push_back(uint8_t(lo | (hi << 4)));
  }
}

std::vector<uint8_t> unpack_lengths(ByteReader& br, size_t count) {
  std::vector<uint8_t> lengths(count, 0);
  for (size_t i = 0; i < count; i += 2) {
    const uint8_t b = br.u8();
    lengths[i] = b & 0x0f;
    if (i + 1 < count) lengths[i + 1] = b >> 4;
  }
  return lengths;
}

void unpack_lengths_raw(const uint8_t* p, uint8_t* lengths, size_t count) {
  for (size_t i = 0; i < count; i += 2) {
    const uint8_t b = p[i / 2];
    lengths[i] = b & 0x0f;
    if (i + 1 < count) lengths[i + 1] = b >> 4;
  }
}

inline uint32_t bit_reverse(uint32_t v, unsigned n) {
  uint32_t r = 0;
  for (unsigned i = 0; i < n; ++i) {
    r = (r << 1) | (v & 1u);
    v >>= 1;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Streaming encode: two lz77_scan passes per block (count, then emit) with no
// materialized token array.
// ---------------------------------------------------------------------------

/// Pass 1: symbol frequencies plus the exact number of extra (non-entropy)
/// bits the token stream will need — enough to price the block under every
/// entropy coder without emitting a single bit.
struct FreqSink final : TokenSink {
  const CodeLut& lut;
  uint64_t lit[kLitAlphabet] = {};
  uint64_t dist[kNumDistCodes] = {};
  uint64_t extra_bits = 0;

  explicit FreqSink(const CodeLut& l) : lut(l) {}

  void on_literal(uint8_t byte) override { ++lit[byte]; }
  void on_literals(const uint8_t* bytes, size_t count) override {
    for (size_t i = 0; i < count; ++i) ++lit[bytes[i]];
  }
  void on_match(uint32_t length, uint32_t distance) override {
    const uint32_t lc = lut.len_code[length];
    const uint32_t dc = fast_distance_code(lut, distance);
    ++lit[257 + lc];
    ++dist[dc];
    extra_bits += kLenExtra[lc] + kDistExtra[dc];
  }
};

/// Pass 2a (Huffman): feed tokens straight into the bit writer. Codes are
/// stored bit-reversed so one put_bits() call (LSB-first) lands on the wire
/// exactly as the reference encoder's MSB-first per-bit loop does; a match's
/// length code, length extra, distance code and distance extra are packed
/// into two put_bits() calls (<= 20 and <= 28 bits).
struct EmitSink final : TokenSink {
  const CodeLut& lut;
  WordBitWriter& bw;
  uint32_t lit_code[kLitAlphabet] = {};
  uint8_t lit_len[kLitAlphabet] = {};
  uint32_t dist_code[kNumDistCodes] = {};
  uint8_t dist_len[kNumDistCodes] = {};

  EmitSink(const CodeLut& l, WordBitWriter& w, const std::vector<uint8_t>& lit_lengths,
           const std::vector<uint8_t>& dist_lengths)
      : lut(l), bw(w) {
    const auto lc = canonical_codes(lit_lengths);
    for (size_t s = 0; s < kLitAlphabet; ++s) {
      lit_len[s] = lit_lengths[s];
      lit_code[s] = bit_reverse(lc[s], lit_lengths[s]);
    }
    const auto dc = canonical_codes(dist_lengths);
    for (size_t s = 0; s < size_t(kNumDistCodes); ++s) {
      dist_len[s] = dist_lengths[s];
      dist_code[s] = bit_reverse(dc[s], dist_lengths[s]);
    }
  }

  void on_literal(uint8_t byte) override { bw.put_bits(lit_code[byte], lit_len[byte]); }
  void on_literals(const uint8_t* bytes, size_t count) override {
    for (size_t i = 0; i < count; ++i)
      bw.put_bits(lit_code[bytes[i]], lit_len[bytes[i]]);
  }
  void on_match(uint32_t length, uint32_t distance) override {
    const uint32_t lc = lut.len_code[length];
    bw.put_bits(lit_code[257 + lc] | (uint64_t(length - kLenBase[lc]) << lit_len[257 + lc]),
                lit_len[257 + lc] + kLenExtra[lc]);
    const uint32_t dc = fast_distance_code(lut, distance);
    bw.put_bits(dist_code[dc] | (uint64_t(distance - kDistBase[dc]) << dist_len[dc]),
                dist_len[dc] + kDistExtra[dc]);
  }
};

/// Pass 2b (arithmetic): same token stream through the range coder under the
/// block's normalized static model; extra bits ride along at uniform
/// probability via encode_raw().
struct ArithSink final : TokenSink {
  const CodeLut& lut;
  ArithEncoder& enc;
  const uint32_t* lit_cum;
  const uint32_t* dist_cum;

  ArithSink(const CodeLut& l, ArithEncoder& e, const uint32_t* lc, const uint32_t* dc)
      : lut(l), enc(e), lit_cum(lc), dist_cum(dc) {}

  void on_literal(uint8_t byte) override {
    enc.encode(lit_cum[byte], lit_cum[byte + 1], kArithTotalBits);
  }
  void on_literals(const uint8_t* bytes, size_t count) override {
    for (size_t i = 0; i < count; ++i)
      enc.encode(lit_cum[bytes[i]], lit_cum[bytes[i] + 1], kArithTotalBits);
  }
  void on_match(uint32_t length, uint32_t distance) override {
    const uint32_t lc = lut.len_code[length];
    enc.encode(lit_cum[257 + lc], lit_cum[257 + lc + 1], kArithTotalBits);
    enc.encode_raw(length - kLenBase[lc], kLenExtra[lc]);
    const uint32_t dc = fast_distance_code(lut, distance);
    enc.encode(dist_cum[dc], dist_cum[dc + 1], kArithTotalBits);
    enc.encode_raw(distance - kDistBase[dc], kDistExtra[dc]);
  }
};

/// Per-worker reusable state: hash chains for the matcher, bytes for the
/// bit writer, cumulative tables for the arithmetic model. Keeps the
/// parallel loop allocation-free in steady state.
struct EncScratch {
  MatchScratch match;
  WordBitWriter bw;
  ArithCumTable lit_cum;
  ArithCumTable dist_cum;
};

struct BlockOut {
  uint8_t tag = kEntropyRaw;
  std::vector<uint8_t> payload;
};

/// Encode one block's payload and pick its entropy tag. The frequency pass
/// prices the block exactly under Huffman and to within a rounding bit
/// under the arithmetic model, so the cheapest of raw / Huffman /
/// arithmetic is chosen before a single payload bit is emitted. Blocks
/// where entropy coding loses — SPECK's near-random bitplanes — skip the
/// emit scan entirely and are stored raw at zero overhead.
BlockOut encode_block(const uint8_t* data, size_t n, EncScratch& es) {
  const CodeLut& lut = code_lut();
  FreqSink freq(lut);
  lz77_scan(data, n, freq, &es.match);
  ++freq.lit[kEob];

  const std::vector<uint64_t> lit_freq(freq.lit, freq.lit + kLitAlphabet);
  const std::vector<uint64_t> dist_freq(freq.dist, freq.dist + kNumDistCodes);
  // 15-bit limit: the header packs code lengths into 4 bits each.
  const auto lit_lengths = huffman_code_lengths(lit_freq, 15);
  const auto dist_lengths = huffman_code_lengths(dist_freq, 15);

  uint64_t huff_bits = freq.extra_bits;
  for (size_t s = 0; s < kLitAlphabet; ++s) huff_bits += lit_freq[s] * lit_lengths[s];
  for (size_t s = 0; s < size_t(kNumDistCodes); ++s)
    huff_bits += dist_freq[s] * dist_lengths[s];
  const size_t huff_size = kLitLenBytes + kDistLenBytes + size_t((huff_bits + 7) / 8);

  uint16_t lit_norm[kLitAlphabet];
  uint16_t dist_norm[kNumDistCodes];
  arith_normalize(freq.lit, kLitAlphabet, lit_norm);
  arith_normalize(freq.dist, kNumDistCodes, dist_norm);
  const uint64_t arith_bits = arith_cost_bits(freq.lit, lit_norm, kLitAlphabet) +
                              arith_cost_bits(freq.dist, dist_norm, kNumDistCodes) +
                              freq.extra_bits;
  const size_t arith_size =
      kArithModelBytes + kArithFlushBytes + size_t((arith_bits + 7) / 8);

  BlockOut out;
  // Ties resolve raw > Huffman > arithmetic: raw and Huffman decode faster.
  if (n <= huff_size && n <= arith_size) {
    out.tag = kEntropyRaw;
    out.payload.assign(data, data + n);
    return out;
  }

  if (huff_size <= arith_size) {
    out.tag = kEntropyHuffman;
    out.payload.reserve(huff_size);
    pack_lengths(out.payload, lit_lengths);
    pack_lengths(out.payload, dist_lengths);
    es.bw.clear();
    EmitSink emit(lut, es.bw, lit_lengths, dist_lengths);
    lz77_scan(data, n, emit, &es.match);
    es.bw.put_bits(emit.lit_code[kEob], emit.lit_len[kEob]);
    const auto& payload = es.bw.finish();
    out.payload.insert(out.payload.end(), payload.begin(), payload.end());
  } else {
    out.tag = kEntropyArith;
    out.payload.reserve(arith_size);
    for (size_t s = 0; s < kLitAlphabet; ++s) put_u16(out.payload, lit_norm[s]);
    for (size_t s = 0; s < size_t(kNumDistCodes); ++s) put_u16(out.payload, dist_norm[s]);
    es.lit_cum.build(lit_norm, kLitAlphabet, /*want_slots=*/false);
    es.dist_cum.build(dist_norm, kNumDistCodes, /*want_slots=*/false);
    ArithEncoder enc(out.payload);  // range-coded body straight after the model
    ArithSink emit(lut, enc, es.lit_cum.cum.data(), es.dist_cum.cum.data());
    lz77_scan(data, n, emit, &es.match);
    enc.encode(es.lit_cum.cum[kEob], es.lit_cum.cum[kEob + 1], kArithTotalBits);
    enc.finish();
  }
  // The price model is exact for Huffman and an upper bound for arithmetic,
  // but guard the invariant a directory consumer relies on regardless: a
  // block payload never exceeds its raw size.
  if (out.payload.size() > n) {
    out.tag = kEntropyRaw;
    out.payload.assign(data, data + n);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Table-driven decode: one flat lookup per symbol instead of the reference
// decoder's bit-at-a-time canonical walk.
// ---------------------------------------------------------------------------

constexpr unsigned kMaxTableBits = 15;  // == the 15-bit code length limit

/// Build a flat decode table: entry = (symbol << 4) | code_len, 0 = invalid.
/// The table is sized 2^L where L is the longest code actually present in
/// this block's header (not the worst-case 15), which shrinks both the
/// fill cost and the cache footprint for typical 9–12 bit codes. Indexing
/// is by the next L bits of the stream (LSB-first), so each code fills
/// every slot whose low bits equal its reversed code. Rejects
/// over-subscribed length sets; an all-zero set yields an empty
/// (never-matching) table, which is valid for an unused distance alphabet.
/// Returns L (0 for the empty table), or -1 for an invalid length set.
int build_flat_table(const uint8_t* lengths, size_t count, std::vector<uint16_t>& table) {
  uint32_t counts[16] = {};
  unsigned max_len = 0;
  for (size_t i = 0; i < count; ++i) {
    ++counts[lengths[i]];
    max_len = std::max(max_len, unsigned(lengths[i]));
  }
  if (max_len == 0) {
    table.clear();
    return 0;
  }

  uint64_t kraft = 0;
  for (unsigned l = 1; l <= kMaxTableBits; ++l)
    kraft += uint64_t(counts[l]) << (kMaxTableBits - l);
  if (kraft > (uint64_t(1) << kMaxTableBits)) return -1;

  table.assign(size_t(1) << max_len, 0);
  uint32_t next_code[16] = {};
  uint32_t code = 0;
  for (unsigned l = 1; l <= max_len; ++l) {
    code = (code + counts[l - 1]) << 1;
    next_code[l] = code;
  }
  for (size_t sym = 0; sym < count; ++sym) {
    const unsigned len = lengths[sym];
    if (len == 0) continue;
    const uint32_t rev = bit_reverse(next_code[len]++, len);
    const uint16_t entry = uint16_t((sym << 4) | len);
    const uint32_t step = 1u << len;
    for (uint32_t idx = rev; idx < (1u << max_len); idx += step) table[idx] = entry;
  }
  return int(max_len);
}

/// LSB-first bit reader with a 64-bit accumulator. Reads past the end return
/// zero bits while `overrun()` latches — mirroring BitReader's contract but
/// amortizing to one branch + shift per symbol.
class BitsIn {
 public:
  BitsIn(const uint8_t* p, size_t n) : p_(p), n_(n) {}

  inline uint32_t peek(unsigned k) {  // k <= 15
    refill();
    return uint32_t(buf_) & ((1u << k) - 1u);
  }
  inline void consume(unsigned k) {
    buf_ >>= k;
    cnt_ -= k;
    used_ += k;
  }
  inline uint32_t get(unsigned k) {  // k <= 13 (extra bits)
    refill();
    const uint32_t v = uint32_t(buf_) & ((1u << k) - 1u);
    consume(k);
    return v;
  }
  [[nodiscard]] bool overrun() const { return used_ > 8 * n_; }

 private:
  inline void refill() {
    while (cnt_ <= 56) {
      buf_ |= uint64_t(pos_ < n_ ? p_[pos_] : 0) << cnt_;
      ++pos_;
      cnt_ += 8;
    }
  }

  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
  uint64_t buf_ = 0;
  unsigned cnt_ = 0;
  size_t used_ = 0;
};

struct DecScratch {
  std::vector<uint16_t> lit_table;
  std::vector<uint16_t> dist_table;
  ArithCumTable lit_cum;
  ArithCumTable dist_cum;
};

/// Copy a decoded match into the output, replicating overlap. Overlapping
/// matches (dist < len) seed one period, then double the copied region —
/// every memcpy has disjoint, exactly sized operands, so nothing is written
/// past dst + len (a parallel decode never touches a neighbouring block).
inline void copy_match(uint8_t* dst, uint32_t dist, uint32_t len) {
  const uint8_t* src = dst - dist;
  if (dist >= len) {
    std::memcpy(dst, src, len);
    return;
  }
  size_t copied = dist;
  std::memcpy(dst, src, dist);
  while (copied < len) {
    const size_t chunk = std::min(copied, size_t(len) - copied);
    std::memcpy(dst + copied, dst, chunk);
    copied += chunk;
  }
}

/// Decode the Huffman (kEntropyHuffman) body of one block into exactly
/// `raw` bytes at `dst`.
Status decode_huffman_body(const uint8_t* p, size_t comp, uint8_t* dst, size_t raw,
                           DecScratch& ds) {
  if (comp < kLitLenBytes + kDistLenBytes) return Status::truncated_stream;
  uint8_t lit_lengths[kLitAlphabet];
  uint8_t dist_lengths[kNumDistCodes];
  unpack_lengths_raw(p, lit_lengths, kLitAlphabet);
  unpack_lengths_raw(p + kLitLenBytes, dist_lengths, kNumDistCodes);
  const int lit_bits = build_flat_table(lit_lengths, kLitAlphabet, ds.lit_table);
  if (lit_bits <= 0) return Status::corrupt_stream;  // an empty lit table cannot code EOB
  const int dist_bits = build_flat_table(dist_lengths, kNumDistCodes, ds.dist_table);
  if (dist_bits < 0) return Status::corrupt_stream;

  BitsIn in(p + kLitLenBytes + kDistLenBytes, comp - kLitLenBytes - kDistLenBytes);
  size_t produced = 0;
  while (true) {
    const uint16_t e = ds.lit_table[in.peek(unsigned(lit_bits))];
    if (e == 0) return Status::corrupt_stream;
    in.consume(e & 0xfu);
    const uint32_t sym = e >> 4;
    if (sym < 256) {
      if (produced == raw) return Status::corrupt_stream;
      dst[produced++] = uint8_t(sym);
      continue;
    }
    if (sym == kEob) break;
    const uint32_t lc = sym - 257;
    if (lc >= uint32_t(kNumLenCodes)) return Status::corrupt_stream;
    const uint32_t len = kLenBase[lc] + in.get(kLenExtra[lc]);
    if (dist_bits == 0) return Status::corrupt_stream;  // match with no dist alphabet
    const uint16_t ed = ds.dist_table[in.peek(unsigned(dist_bits))];
    if (ed == 0) return Status::corrupt_stream;
    in.consume(ed & 0xfu);
    const uint32_t dc = ed >> 4;
    const uint32_t dist = kDistBase[dc] + in.get(kDistExtra[dc]);
    if (in.overrun()) return Status::truncated_stream;
    if (dist > produced) return Status::corrupt_stream;
    if (len > raw - produced) return Status::corrupt_stream;
    copy_match(dst + produced, dist, len);
    produced += len;
  }
  if (in.overrun()) return Status::truncated_stream;
  if (produced != raw) return Status::corrupt_stream;
  return Status::ok;
}

/// Decode the arithmetic (kEntropyArith) body of one block into exactly
/// `raw` bytes at `dst`: model header, then range-coded token stream.
Status decode_arith_body(const uint8_t* p, size_t comp, uint8_t* dst, size_t raw,
                         DecScratch& ds) {
  if (comp < kMinArithBytes) return Status::truncated_stream;
  uint16_t lit_norm[kLitAlphabet];
  uint16_t dist_norm[kNumDistCodes];
  for (size_t s = 0; s < kLitAlphabet; ++s)
    lit_norm[s] = uint16_t(p[2 * s] | (p[2 * s + 1] << 8));
  const uint8_t* dp = p + 2 * kLitAlphabet;
  for (size_t s = 0; s < size_t(kNumDistCodes); ++s)
    dist_norm[s] = uint16_t(dp[2 * s] | (dp[2 * s + 1] << 8));
  if (!ds.lit_cum.build(lit_norm, kLitAlphabet, /*want_slots=*/true))
    return Status::corrupt_stream;
  if (ds.lit_cum.slot.empty()) return Status::corrupt_stream;  // no EOB possible
  if (!ds.dist_cum.build(dist_norm, kNumDistCodes, /*want_slots=*/true))
    return Status::corrupt_stream;

  const uint32_t* lit_cum = ds.lit_cum.cum.data();
  const uint32_t* dist_cum = ds.dist_cum.cum.data();
  ArithDecoder in(p + kArithModelBytes, comp - kArithModelBytes);
  size_t produced = 0;
  while (true) {
    const uint32_t sym = ds.lit_cum.slot[in.decode_target(kArithTotalBits)];
    in.consume(lit_cum[sym], lit_cum[sym + 1], kArithTotalBits);
    if (sym < 256) {
      if (produced == raw) return Status::corrupt_stream;
      dst[produced++] = uint8_t(sym);
      continue;
    }
    if (sym == kEob) break;
    const uint32_t lc = sym - 257;
    if (lc >= uint32_t(kNumLenCodes)) return Status::corrupt_stream;
    const uint32_t len = kLenBase[lc] + in.decode_raw(kLenExtra[lc]);
    if (ds.dist_cum.slot.empty()) return Status::corrupt_stream;
    const uint32_t dc = ds.dist_cum.slot[in.decode_target(kArithTotalBits)];
    in.consume(dist_cum[dc], dist_cum[dc + 1], kArithTotalBits);
    const uint32_t dist = kDistBase[dc] + in.decode_raw(kDistExtra[dc]);
    if (in.overrun()) return Status::truncated_stream;
    if (dist > produced) return Status::corrupt_stream;
    if (len > raw - produced) return Status::corrupt_stream;
    copy_match(dst + produced, dist, len);
    produced += len;
  }
  if (in.overrun()) return Status::truncated_stream;
  if (produced != raw) return Status::corrupt_stream;
  return Status::ok;
}

/// Decode one block payload (entropy `tag`, body at `p`) into exactly `raw`
/// bytes at `dst`. Any inconsistency — bad tag, invalid code tables,
/// out-of-range match, wrong decoded size — fails the block without
/// touching its neighbours.
Status decode_block(uint8_t tag, const uint8_t* p, size_t comp, uint8_t* dst,
                    size_t raw, DecScratch& ds) {
  switch (tag) {
    case kEntropyRaw:
      if (comp != raw) return Status::corrupt_stream;
      std::memcpy(dst, p, raw);
      return Status::ok;
    case kEntropyHuffman:
      return decode_huffman_body(p, comp, dst, raw, ds);
    case kEntropyArith:
      return decode_arith_body(p, comp, dst, raw, ds);
    default:
      return Status::corrupt_stream;
  }
}

/// Parse + validate the blocked framing and directory (formats 2 and 3).
/// Fills `info` (offsets, per-block raw sizes, entropy tags) without
/// decoding any payload. `tolerant` relaxes the payload-extent checks
/// (truncated or shifted payloads parse; per-block bounds are enforced at
/// decode time instead) — the header and directory must still be fully
/// present and plausible either way.
Status parse_blocked(const uint8_t* data, size_t size, StreamInfo& info,
                     bool tolerant = false) {
  ByteReader hdr(data, size);
  const uint8_t fmt = hdr.u8();
  const bool tagged = fmt == kFmtBlockedTagged;
  const uint8_t reserved = hdr.u8();
  const uint32_t bs32 = hdr.u32();
  const uint64_t raw_size = hdr.u64();
  const uint32_t nb = hdr.u32();
  if (!hdr.ok()) return Status::truncated_stream;
  if (reserved != 0) return Status::corrupt_stream;

  const size_t bs = bs32;
  if (bs < kMinBlockSize || bs > (tagged ? kMaxBlockSize : kMaxBlockSizeLegacy))
    return Status::corrupt_stream;
  const uint64_t want_nb = raw_size == 0 ? 0 : (raw_size - 1) / bs + 1;
  if (nb != want_nb) return Status::corrupt_stream;
  if (uint64_t(nb) * kDirEntryBytes > hdr.remaining()) return Status::truncated_stream;

  info.blocked = true;
  info.tagged = tagged;
  info.raw_size = raw_size;
  info.block_size = bs;
  info.blocks.resize(nb);
  uint64_t payload_total = 0;
  for (uint32_t b = 0; b < nb; ++b) {
    const uint32_t word = hdr.u32();
    if (tagged) {
      info.blocks[b].comp_size = word & kCompSizeMask;
      info.blocks[b].mode = uint8_t(word >> kTagShift);
    } else {
      info.blocks[b].comp_size = word;
    }
    info.blocks[b].checksum = hdr.u64();
    payload_total += info.blocks[b].comp_size;
  }
  if (payload_total > hdr.remaining() && !tolerant) return Status::truncated_stream;
  if (payload_total < hdr.remaining() && !tolerant) return Status::corrupt_stream;
  // Tolerant parsing skips the per-block expansion checks below, so bound
  // the total allocation against the bytes actually present instead:
  // nothing can legitimately expand by more than kMaxExpansion, except that
  // arithmetic blocks (credited per directory entry, scaled to the block
  // size) can reach block_size from kMinArithBytes of payload.
  const uint64_t entry_credit = std::max<uint64_t>(64, bs / kMaxExpansion);
  if (tolerant &&
      raw_size > (uint64_t(hdr.remaining()) + entry_credit * uint64_t(nb) + 64) *
                     kMaxExpansion)
    return Status::corrupt_stream;

  uint64_t off = hdr.pos();
  for (uint32_t b = 0; b < nb; ++b) {
    BlockInfo& bi = info.blocks[b];
    bi.offset = off;
    off += bi.comp_size;
    bi.raw_size = b + 1 < nb ? bs : raw_size - uint64_t(bs) * (nb - 1);
    if (!tagged)
      bi.mode = bi.comp_size > 0 && bi.offset < size ? data[bi.offset] : 0;
    if (tolerant) continue;
    // Directory entries promising implausible expansion are rejected before
    // any allocation is sized from them (tolerant decoding instead marks the
    // block bad when its payload turns out undecodable). Arithmetic blocks
    // instead carry a hard payload floor: the 632-byte model header.
    if (tagged && bi.mode == kEntropyArith) {
      if (bi.comp_size < kMinArithBytes) return Status::corrupt_stream;
    } else if (bi.raw_size > uint64_t(bi.comp_size) * kMaxExpansion + 64) {
      return Status::corrupt_stream;
    }
  }
  return Status::ok;
}

/// Decode one parsed block into `dst`; shared by strict and tolerant paths.
Status decode_parsed_block(const uint8_t* data, const StreamInfo& info,
                           const BlockInfo& bi, uint8_t* dst, DecScratch& ds) {
  const size_t raw = size_t(bi.raw_size);
  if (info.tagged)
    return decode_block(bi.mode, data + bi.offset, bi.comp_size, dst, raw, ds);
  // Format 2: the mode byte leads the payload and only raw/Huffman exist.
  if (bi.comp_size < 1) return Status::truncated_stream;
  const uint8_t mode = data[bi.offset];
  if (mode != kModeRaw && mode != kModeLz) return Status::corrupt_stream;
  return decode_block(mode == kModeRaw ? kEntropyRaw : kEntropyHuffman,
                      data + bi.offset + 1, bi.comp_size - 1, dst, raw, ds);
}

}  // namespace

// ---------------------------------------------------------------------------
// Block-parallel public entry points.
// ---------------------------------------------------------------------------

std::vector<uint8_t> compress(const uint8_t* data, size_t size, const EncodeOptions& opts) {
  const size_t bs = std::clamp(opts.block_size, kMinBlockSize, kMaxBlockSize);
  const size_t nblocks = size == 0 ? 0 : (size - 1) / bs + 1;
  std::vector<BlockOut> blocks(nblocks);
  std::vector<uint64_t> checksums(nblocks, 0);

#ifdef SPERR_HAVE_OPENMP
  const int nt = opts.num_threads > 0 ? opts.num_threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic) num_threads(nt)
#endif
  for (int64_t b = 0; b < int64_t(nblocks); ++b) {
    const size_t off = size_t(b) * bs;
    const size_t n = std::min(bs, size - off);
    checksums[size_t(b)] = xxhash64(data + off, n);
    thread_local EncScratch scratch;
    blocks[size_t(b)] = encode_block(data + off, n, scratch);
  }

  size_t total = kBlockedHeaderBytes + nblocks * kDirEntryBytes;
  for (const auto& p : blocks) total += p.payload.size();
  std::vector<uint8_t> out;
  out.reserve(total);
  out.push_back(kFmtBlockedTagged);
  out.push_back(0);  // reserved
  put_u32(out, uint32_t(bs));
  put_u64(out, size);
  put_u32(out, uint32_t(nblocks));
  for (size_t b = 0; b < nblocks; ++b) {
    put_u32(out, uint32_t(blocks[b].payload.size()) |
                     (uint32_t(blocks[b].tag) << kTagShift));
    put_u64(out, checksums[b]);
  }
  for (const auto& p : blocks) out.insert(out.end(), p.payload.begin(), p.payload.end());
  return out;
}

Status decompress(const uint8_t* data, size_t size, std::vector<uint8_t>& out,
                  size_t* corrupt_block, int num_threads,
                  const ResourceLimits* limits) {
  (void)num_threads;
  if (size == 0) return Status::truncated_stream;
  const uint8_t fmt = data[0];
  if (fmt == kModeRaw || fmt == kModeLz)
    return decode_reference(data, size, out, limits);
  if (fmt != kFmtBlocked && fmt != kFmtBlockedTagged) return Status::corrupt_stream;

  StreamInfo info;
  const Status parsed = parse_blocked(data, size, info);
  if (parsed != Status::ok) return parsed;

  // The header's raw size is the only thing allocation is based on, and it
  // is attacker-controlled: admit it against the limits before sizing out.
  const ResourceLimits& rl = effective_limits(limits);
  if (!rl.admits_output(info.raw_size) || !rl.admits_expansion(size, info.raw_size))
    return Status::resource_exhausted;

  out.clear();
  try {
    out.resize(size_t(info.raw_size));
  } catch (const std::bad_alloc&) {
    return Status::resource_exhausted;
  }
  const size_t nb = info.blocks.size();
  std::vector<Status> block_status(nb, Status::ok);

#ifdef SPERR_HAVE_OPENMP
  const int nt = num_threads > 0 ? num_threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic) num_threads(nt)
#endif
  for (int64_t b = 0; b < int64_t(nb); ++b) {
    const BlockInfo& bi = info.blocks[size_t(b)];
    const size_t start = size_t(b) * info.block_size;
    thread_local DecScratch scratch;
    Status st = decode_parsed_block(data, info, bi, out.data() + start, scratch);
    if (st == Status::ok &&
        xxhash64(out.data() + start, size_t(bi.raw_size)) != bi.checksum)
      st = Status::corrupt_block;
    block_status[size_t(b)] = st;
  }

  for (size_t b = 0; b < nb; ++b) {
    if (block_status[b] != Status::ok) {
      if (corrupt_block) *corrupt_block = b;
      return Status::corrupt_block;
    }
  }
  return Status::ok;
}

Status decompress_tolerant(const uint8_t* data, size_t size, std::vector<uint8_t>& out,
                           std::vector<size_t>& bad_blocks, int num_threads,
                           const ResourceLimits* limits) {
  (void)num_threads;
  bad_blocks.clear();
  out.clear();
  if (size == 0) return Status::truncated_stream;
  const uint8_t fmt = data[0];
  // Reference framing carries no block structure: all-or-nothing.
  if (fmt == kModeRaw || fmt == kModeLz) {
    const Status s = decode_reference(data, size, out, limits);
    if (s != Status::ok) out.clear();
    return s;
  }
  if (fmt != kFmtBlocked && fmt != kFmtBlockedTagged) return Status::corrupt_stream;

  StreamInfo info;
  const Status parsed = parse_blocked(data, size, info, /*tolerant=*/true);
  if (parsed != Status::ok) return parsed;

  const ResourceLimits& rl = effective_limits(limits);
  if (!rl.admits_output(info.raw_size) || !rl.admits_expansion(size, info.raw_size))
    return Status::resource_exhausted;

  try {
    out.resize(size_t(info.raw_size));
  } catch (const std::bad_alloc&) {
    out.clear();
    return Status::resource_exhausted;
  }
  const size_t nb = info.blocks.size();
  std::vector<Status> block_status(nb, Status::ok);

#ifdef SPERR_HAVE_OPENMP
  const int nt = num_threads > 0 ? num_threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic) num_threads(nt)
#endif
  for (int64_t b = 0; b < int64_t(nb); ++b) {
    const BlockInfo& bi = info.blocks[size_t(b)];
    const size_t start = size_t(b) * info.block_size;
    uint8_t* dst = out.data() + start;
    Status st = Status::ok;
    if (bi.offset + bi.comp_size > size) {
      st = Status::truncated_stream;  // payload cut off under this block
    } else {
      thread_local DecScratch scratch;
      st = decode_parsed_block(data, info, bi, dst, scratch);
    }
    if (st != Status::ok) std::fill(dst, dst + size_t(bi.raw_size), uint8_t(0));
    if (st == Status::ok && xxhash64(dst, size_t(bi.raw_size)) != bi.checksum)
      st = Status::corrupt_block;
    block_status[size_t(b)] = st;
  }

  for (size_t b = 0; b < nb; ++b)
    if (block_status[b] != Status::ok) bad_blocks.push_back(b);
  return bad_blocks.empty() ? Status::ok : Status::corrupt_block;
}

Status inspect(const uint8_t* data, size_t size, StreamInfo& info) {
  info = StreamInfo{};
  if (size == 0) return Status::truncated_stream;
  const uint8_t fmt = data[0];
  if (fmt == kModeRaw || fmt == kModeLz) {
    ByteReader hdr(data, size);
    (void)hdr.u8();
    info.raw_size = hdr.u64();
    if (!hdr.ok()) return Status::truncated_stream;
    return Status::ok;
  }
  if (fmt != kFmtBlocked && fmt != kFmtBlockedTagged) return Status::corrupt_stream;
  return parse_blocked(data, size, info);
}

// ---------------------------------------------------------------------------
// Reference single-block codec (the pre-block-rewrite format, kept verbatim
// as the differential-test oracle and serial benchmark baseline).
// ---------------------------------------------------------------------------

std::vector<uint8_t> encode_reference(const uint8_t* data, size_t size) {
  const std::vector<Token> tokens = lz77_tokenize(data, size);

  // Token symbol frequencies for both Huffman tables.
  std::vector<uint64_t> lit_freq(kLitAlphabet, 0);
  std::vector<uint64_t> dist_freq(kNumDistCodes, 0);
  for (const Token& t : tokens) {
    if (t.length == 0) {
      ++lit_freq[t.literal];
    } else {
      ++lit_freq[257 + size_t(length_code(t.length))];
      ++dist_freq[size_t(distance_code(t.distance))];
    }
  }
  ++lit_freq[kEob];

  // 15-bit limit: the header packs code lengths into 4 bits each.
  const auto lit_lengths = huffman_code_lengths(lit_freq, 15);
  const auto dist_lengths = huffman_code_lengths(dist_freq, 15);
  const HuffmanEncoder lit_enc(lit_lengths);
  const HuffmanEncoder dist_enc(dist_lengths);

  std::vector<uint8_t> out;
  out.push_back(kModeLz);
  put_u64(out, size);
  pack_lengths(out, lit_lengths);
  pack_lengths(out, dist_lengths);

  BitWriter bw;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      lit_enc.encode(bw, t.literal);
      continue;
    }
    const int lc = length_code(t.length);
    lit_enc.encode(bw, uint32_t(257 + lc));
    bw.put_bits(t.length - kLenBase[lc], kLenExtra[lc]);
    const int dc = distance_code(t.distance);
    dist_enc.encode(bw, uint32_t(dc));
    bw.put_bits(t.distance - kDistBase[dc], kDistExtra[dc]);
  }
  lit_enc.encode(bw, kEob);

  const auto& payload = bw.bytes();
  if (out.size() + payload.size() >= size + 9) {
    // Entropy coding did not pay off; store raw.
    std::vector<uint8_t> raw;
    raw.reserve(size + 9);
    raw.push_back(kModeRaw);
    put_u64(raw, size);
    raw.insert(raw.end(), data, data + size);
    return raw;
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status decode_reference(const uint8_t* data, size_t size, std::vector<uint8_t>& out,
                        const ResourceLimits* limits) {
  ByteReader hdr(data, size);
  const uint8_t mode = hdr.u8();
  const uint64_t raw_size = hdr.u64();
  if (!hdr.ok()) return Status::corrupt_stream;

  const ResourceLimits& rl = effective_limits(limits);
  if (!rl.admits_output(raw_size) || !rl.admits_expansion(size, raw_size))
    return Status::resource_exhausted;

  if (mode == kModeRaw) {
    const uint8_t* p = hdr.raw(raw_size);
    if (!p) return Status::truncated_stream;
    out.assign(p, p + raw_size);
    return Status::ok;
  }
  if (mode != kModeLz) return Status::corrupt_stream;

  const auto lit_lengths = unpack_lengths(hdr, kLitAlphabet);
  const auto dist_lengths = unpack_lengths(hdr, kNumDistCodes);
  if (!hdr.ok()) return Status::truncated_stream;

  const HuffmanDecoder lit_dec(lit_lengths);
  const HuffmanDecoder dist_dec(dist_lengths);
  if (!lit_dec.valid()) return Status::corrupt_stream;

  BitReader br(data + hdr.pos(), size - hdr.pos());
  out.clear();
  // raw_size is untrusted: cap the speculative reserve, and bail out if the
  // token stream tries to grow past the promised size (corrupt stream).
  out.reserve(size_t(std::min<uint64_t>(raw_size, uint64_t(1) << 24)));
  while (true) {
    if (out.size() > raw_size) return Status::corrupt_stream;
    const int32_t sym = lit_dec.decode(br);
    if (sym < 0) return Status::truncated_stream;
    if (sym == int32_t(kEob)) break;
    if (sym < 256) {
      out.push_back(uint8_t(sym));
      continue;
    }
    const int lc = sym - 257;
    if (lc >= kNumLenCodes) return Status::corrupt_stream;
    const uint32_t len = kLenBase[lc] + uint32_t(br.get_bits(kLenExtra[lc]));
    const int32_t dc = dist_dec.decode(br);
    if (dc < 0 || dc >= kNumDistCodes) return Status::corrupt_stream;
    const uint32_t dist = kDistBase[dc] + uint32_t(br.get_bits(kDistExtra[dc]));
    if (br.exhausted()) return Status::truncated_stream;
    if (dist == 0 || dist > out.size()) return Status::corrupt_stream;
    if (out.size() + len > raw_size) return Status::corrupt_stream;
    const size_t start = out.size() - dist;
    for (uint32_t i = 0; i < len; ++i) out.push_back(out[start + i]);
  }
  if (out.size() != raw_size) return Status::corrupt_stream;
  return Status::ok;
}

}  // namespace sperr::lossless
