#include "lossless/huffman.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace sperr::lossless {

namespace {

struct Node {
  uint64_t weight;
  int32_t symbol;  // >= 0 for leaves, -1 for internal
  int32_t left = -1;
  int32_t right = -1;
};

// Depth-first walk assigning depths to leaves.
void assign_depths(const std::vector<Node>& nodes, int32_t idx, unsigned depth,
                   std::vector<uint8_t>& lengths) {
  const Node& n = nodes[size_t(idx)];
  if (n.symbol >= 0) {
    lengths[size_t(n.symbol)] = uint8_t(depth == 0 ? 1 : depth);
    return;
  }
  assign_depths(nodes, n.left, depth + 1, lengths);
  assign_depths(nodes, n.right, depth + 1, lengths);
}

// Enforce the length limit: clamp over-long codes, then restore the Kraft
// equality by deepening the shallowest candidates (zlib-style fixup).
void limit_lengths(std::vector<uint8_t>& lengths, unsigned max_len) {
  bool over = false;
  for (auto l : lengths)
    if (l > max_len) { over = true; break; }
  if (!over) return;

  for (auto& l : lengths)
    if (l > max_len) l = uint8_t(max_len);

  // Kraft sum in units of 2^-max_len.
  const uint64_t one = uint64_t(1) << max_len;
  auto kraft = [&] {
    uint64_t k = 0;
    for (auto l : lengths)
      if (l) k += uint64_t(1) << (max_len - l);
    return k;
  };

  uint64_t k = kraft();
  while (k > one) {
    // Deepen the longest code shorter than max_len; removes 2^-(l) - 2^-(l+1)
    // from the sum each step, guaranteed to terminate.
    unsigned best = 0;
    size_t best_i = SIZE_MAX;
    for (size_t i = 0; i < lengths.size(); ++i)
      if (lengths[i] && lengths[i] < max_len && lengths[i] > best) {
        best = lengths[i];
        best_i = i;
      }
    if (best_i == SIZE_MAX) break;  // cannot happen for a consistent tree
    k -= uint64_t(1) << (max_len - lengths[best_i] - 1);
    ++lengths[best_i];
  }
}

}  // namespace

std::vector<uint8_t> huffman_code_lengths(const std::vector<uint64_t>& freq,
                                          unsigned max_len) {
  const size_t n = freq.size();
  std::vector<uint8_t> lengths(n, 0);

  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  using HeapItem = std::pair<uint64_t, int32_t>;  // (weight, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (size_t i = 0; i < n; ++i) {
    if (freq[i] == 0) continue;
    nodes.push_back({freq[i], int32_t(i)});
    heap.emplace(freq[i], int32_t(nodes.size() - 1));
  }
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[size_t(nodes[0].symbol)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    auto [wa, a] = heap.top();
    heap.pop();
    auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, -1, a, b});
    heap.emplace(wa + wb, int32_t(nodes.size() - 1));
  }
  assign_depths(nodes, heap.top().second, 0, lengths);
  limit_lengths(lengths, max_len);
  return lengths;
}

std::vector<uint32_t> canonical_codes(const std::vector<uint8_t>& lengths) {
  const size_t n = lengths.size();
  std::vector<uint32_t> codes(n, 0);

  uint32_t count[kMaxCodeLen + 2] = {};
  for (auto l : lengths) ++count[l];
  count[0] = 0;

  uint32_t next[kMaxCodeLen + 2] = {};
  uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (size_t i = 0; i < n; ++i)
    if (lengths[i]) codes[i] = next[lengths[i]]++;
  return codes;
}

HuffmanEncoder::HuffmanEncoder(std::vector<uint8_t> lengths)
    : lengths_(std::move(lengths)), codes_(canonical_codes(lengths_)) {}

HuffmanDecoder::HuffmanDecoder(std::vector<uint8_t> lengths) {
  for (auto l : lengths) {
    if (l > kMaxCodeLen) return;  // malformed
    ++count_[l];
  }
  count_[0] = 0;

  // Sort symbols canonically: primary key length, secondary key symbol value.
  sorted_symbols_.reserve(lengths.size());
  for (unsigned l = 1; l <= kMaxCodeLen; ++l)
    for (uint32_t s = 0; s < lengths.size(); ++s)
      if (lengths[s] == l) sorted_symbols_.push_back(s);

  uint32_t code = 0;
  uint32_t index = 0;
  uint64_t kraft = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + count_[l - 1]) << 1;
    first_code_[l] = code;
    first_index_[l] = index;
    index += count_[l];
    kraft += uint64_t(count_[l]) << (kMaxCodeLen - l);
  }
  // Accept complete codes and the degenerate single-symbol code (kraft = half).
  valid_ = !sorted_symbols_.empty() && kraft <= (uint64_t(1) << kMaxCodeLen);
}

int32_t HuffmanDecoder::decode(BitReader& br) const {
  if (!valid_) return -1;
  uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
    code = (code << 1) | uint32_t(br.get());
    if (br.exhausted()) return -1;
    if (count_[l] && code >= first_code_[l] && code - first_code_[l] < count_[l])
      return int32_t(sorted_symbols_[first_index_[l] + (code - first_code_[l])]);
  }
  return -1;
}

}  // namespace sperr::lossless
