#include "lossless/huffman.h"

#include <algorithm>

namespace sperr::lossless {

namespace {

// Enforce the length limit: clamp over-long codes, then restore the Kraft
// equality by deepening the shallowest candidates (zlib-style fixup).
void limit_lengths(std::vector<uint8_t>& lengths, unsigned max_len) {
  bool over = false;
  for (auto l : lengths)
    if (l > max_len) { over = true; break; }
  if (!over) return;

  for (auto& l : lengths)
    if (l > max_len) l = uint8_t(max_len);

  // Kraft sum in units of 2^-max_len.
  const uint64_t one = uint64_t(1) << max_len;
  auto kraft = [&] {
    uint64_t k = 0;
    for (auto l : lengths)
      if (l) k += uint64_t(1) << (max_len - l);
    return k;
  };

  uint64_t k = kraft();
  while (k > one) {
    // Deepen the longest code shorter than max_len; removes 2^-(l) - 2^-(l+1)
    // from the sum each step, guaranteed to terminate.
    unsigned best = 0;
    size_t best_i = SIZE_MAX;
    for (size_t i = 0; i < lengths.size(); ++i)
      if (lengths[i] && lengths[i] < max_len && lengths[i] > best) {
        best = lengths[i];
        best_i = i;
      }
    if (best_i == SIZE_MAX) break;  // cannot happen for a consistent tree
    k -= uint64_t(1) << (max_len - lengths[best_i] - 1);
    ++lengths[best_i];
  }
}

}  // namespace

std::vector<uint8_t> huffman_code_lengths(const std::vector<uint64_t>& freq,
                                          unsigned max_len) {
  const size_t n = freq.size();
  std::vector<uint8_t> lengths(n, 0);

  // Sort the present symbols once by (weight, symbol); the classic two-queue
  // merge then builds the tree in O(n) — both queues stay non-decreasing, so
  // the two lightest roots are always at one of the two fronts. No heap, no
  // per-merge sifting.
  struct Leaf {
    uint64_t weight;
    uint32_t symbol;
  };
  std::vector<Leaf> leaves;
  leaves.reserve(n);
  for (size_t i = 0; i < n; ++i)
    if (freq[i] != 0) leaves.push_back({freq[i], uint32_t(i)});
  if (leaves.empty()) return lengths;
  if (leaves.size() == 1) {
    lengths[leaves[0].symbol] = 1;
    return lengths;
  }
  std::sort(leaves.begin(), leaves.end(), [](const Leaf& a, const Leaf& b) {
    return a.weight != b.weight ? a.weight < b.weight : a.symbol < b.symbol;
  });

  // Node array: [0, nl) = sorted leaves, [nl, nl + nl - 1) = internal nodes
  // in creation (non-decreasing weight) order. parent[] links children up.
  const size_t nl = leaves.size();
  const size_t total = 2 * nl - 1;
  std::vector<uint64_t> weight(total);
  std::vector<uint32_t> parent(total, 0);
  for (size_t i = 0; i < nl; ++i) weight[i] = leaves[i].weight;

  size_t leaf_at = 0;      // next unmerged leaf
  size_t internal_at = nl; // next unmerged internal node
  for (size_t next = nl; next < total; ++next) {
    uint64_t w = 0;
    for (int pick = 0; pick < 2; ++pick) {
      // Prefer the leaf on ties: merging older (leaf) nodes first keeps the
      // tree shallow and the choice deterministic.
      const bool take_leaf =
          leaf_at < nl &&
          (internal_at >= next || weight[leaf_at] <= weight[internal_at]);
      const size_t idx = take_leaf ? leaf_at++ : internal_at++;
      parent[idx] = uint32_t(next);
      w += weight[idx];
    }
    weight[next] = w;
  }

  // Every node's parent has a higher index, so one reverse sweep resolves
  // all depths without recursion.
  std::vector<uint8_t> depth(total, 0);
  for (size_t i = total - 1; i-- > 0;)
    depth[i] = uint8_t(depth[parent[i]] + 1);
  for (size_t i = 0; i < nl; ++i) lengths[leaves[i].symbol] = depth[i];

  limit_lengths(lengths, max_len);
  return lengths;
}

std::vector<uint32_t> canonical_codes(const std::vector<uint8_t>& lengths) {
  const size_t n = lengths.size();
  std::vector<uint32_t> codes(n, 0);

  uint32_t count[kMaxCodeLen + 2] = {};
  for (auto l : lengths) ++count[l];
  count[0] = 0;

  uint32_t next[kMaxCodeLen + 2] = {};
  uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (size_t i = 0; i < n; ++i)
    if (lengths[i]) codes[i] = next[lengths[i]]++;
  return codes;
}

HuffmanEncoder::HuffmanEncoder(std::vector<uint8_t> lengths)
    : lengths_(std::move(lengths)), codes_(canonical_codes(lengths_)) {}

HuffmanDecoder::HuffmanDecoder(std::vector<uint8_t> lengths) {
  for (auto l : lengths) {
    if (l > kMaxCodeLen) return;  // malformed
    ++count_[l];
  }
  count_[0] = 0;

  // Sort symbols canonically: primary key length, secondary key symbol value.
  sorted_symbols_.reserve(lengths.size());
  for (unsigned l = 1; l <= kMaxCodeLen; ++l)
    for (uint32_t s = 0; s < lengths.size(); ++s)
      if (lengths[s] == l) sorted_symbols_.push_back(s);

  uint32_t code = 0;
  uint32_t index = 0;
  uint64_t kraft = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + count_[l - 1]) << 1;
    first_code_[l] = code;
    first_index_[l] = index;
    index += count_[l];
    kraft += uint64_t(count_[l]) << (kMaxCodeLen - l);
  }
  // Accept complete codes and the degenerate single-symbol code (kraft = half).
  valid_ = !sorted_symbols_.empty() && kraft <= (uint64_t(1) << kMaxCodeLen);
}

int32_t HuffmanDecoder::decode(BitReader& br) const {
  if (!valid_) return -1;
  uint32_t code = 0;
  for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
    code = (code << 1) | uint32_t(br.get());
    if (br.exhausted()) return -1;
    if (count_[l] && code >= first_code_[l] && code - first_code_[l] < count_[l])
      return int32_t(sorted_symbols_[first_index_[l] + (code - first_code_[l])]);
  }
  return -1;
}

}  // namespace sperr::lossless
