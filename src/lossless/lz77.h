#pragma once

// LZ77 match finder with ring-buffer hash chains (zlib/zstd-style, 32 KiB
// window): lazy one-step evaluation, a nice-length cutoff that stops chain
// walks early, and an adaptive skip heuristic that accelerates through
// incompressible stretches (the longer the current literal run, the larger
// the stride between match searches — SPECK's near-random bitplanes scan at
// close to memcpy speed instead of paying a full chain walk per byte).
//
// The core entry point is lz77_scan(): a streaming pass that announces each
// literal/match decision to a TokenSink the moment it is made, so callers
// (the block codec) can count symbol frequencies or feed an entropy coder
// directly without ever materializing a token array. Literal runs are
// delivered batched (one on_literals() call per run) to keep virtual
// dispatch off the per-byte path. The vector-returning lz77_tokenize()
// wrapper survives for unit tests and the reference (single-block) codec.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sperr::lossless {

// 32 KiB matches the reach of the deflate-style distance code table the
// codec entropy-codes matches with (24577 + 2^13 - 1 = 32768).
inline constexpr size_t kWindowSize = 1u << 15;
inline constexpr size_t kMinMatch = 4;
inline constexpr size_t kMaxMatch = 258;

struct Token {
  // literal when length == 0 (value in `literal`), match otherwise.
  uint32_t length = 0;    ///< kMinMatch..kMaxMatch for matches, 0 for literal
  uint32_t distance = 0;  ///< 1..kWindowSize for matches
  uint8_t literal = 0;
};

/// Receives the parse of lz77_scan() one decision at a time, in input order.
/// Literal runs arrive through on_literals(); the default implementation
/// forwards to on_literal() per byte, so sinks that care about throughput
/// override the batch hook and sinks that don't stay one-method simple.
class TokenSink {
 public:
  virtual ~TokenSink() = default;
  virtual void on_literal(uint8_t byte) = 0;
  virtual void on_match(uint32_t length, uint32_t distance) = 0;
  virtual void on_literals(const uint8_t* bytes, size_t count) {
    for (size_t i = 0; i < count; ++i) on_literal(bytes[i]);
  }
};

/// Reusable hash-chain storage so per-block scans do not reallocate. `head`
/// maps a 4-byte hash to the most recent inserted position; `prev` is a
/// window-sized ring (prev[p & (kWindowSize-1)] holds the chain link written
/// when position p was inserted), so its footprint is fixed at 128 KiB no
/// matter how large the scanned block is.
struct MatchScratch {
  std::vector<int32_t> head;
  std::vector<int32_t> prev;
};

/// Parse `data` with greedy matching plus one-step-lazy evaluation, calling
/// `sink` for every literal run / match in order. Matches never reference
/// bytes before `data` — a scan over a block is self-contained by
/// construction. `data` may be up to 2^31 - 2^16 bytes (block sizes are
/// far below that).
void lz77_scan(const uint8_t* data, size_t size, TokenSink& sink,
               MatchScratch* scratch = nullptr);

/// Tokenize `data` into a materialized token vector (lz77_scan + push_back).
std::vector<Token> lz77_tokenize(const uint8_t* data, size_t size);

/// Reconstruct the original bytes from a token stream, appending to `out`.
/// `expected_size`, when nonzero, is the decoded size promised by the
/// framing header and is reserved up front. Overlapping matches (distance <
/// length) replicate their pattern with a doubling widened copy rather than
/// a byte-at-a-time loop. Returns false if a token references data before
/// the start of the output (corrupt stream).
bool lz77_reconstruct(const std::vector<Token>& tokens, std::vector<uint8_t>& out,
                      size_t expected_size = 0);

}  // namespace sperr::lossless
