#pragma once

// Greedy LZ77 match finder with hash chains (zlib-style, 64 KiB window).
// Produces a token stream (literals + length/distance matches) that the codec
// entropy-codes with Huffman tables. Separated from the codec so the matcher
// can be unit-tested on its own.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sperr::lossless {

// 32 KiB matches the reach of the deflate-style distance code table the
// codec entropy-codes matches with (24577 + 2^13 - 1 = 32768).
inline constexpr size_t kWindowSize = 1u << 15;
inline constexpr size_t kMinMatch = 4;
inline constexpr size_t kMaxMatch = 258;

struct Token {
  // literal when length == 0 (value in `literal`), match otherwise.
  uint32_t length = 0;    ///< kMinMatch..kMaxMatch for matches, 0 for literal
  uint32_t distance = 0;  ///< 1..kWindowSize for matches
  uint8_t literal = 0;
};

/// Tokenize `data` with greedy parsing plus one-step-lazy evaluation.
std::vector<Token> lz77_tokenize(const uint8_t* data, size_t size);

/// Reconstruct the original bytes from a token stream. Returns false if a
/// token references data before the start of the output (corrupt stream).
bool lz77_reconstruct(const std::vector<Token>& tokens, std::vector<uint8_t>& out);

}  // namespace sperr::lossless
