#pragma once

// Greedy LZ77 match finder with hash chains (zlib-style, 32 KiB window).
// The core entry point is lz77_scan(): a streaming pass that announces each
// literal/match decision to a TokenSink the moment it is made, so callers
// (the block codec) can count symbol frequencies or feed a Huffman bit
// writer directly without ever materializing a token array. The vector-
// returning lz77_tokenize() wrapper survives for unit tests and the
// reference (single-block) codec path.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sperr::lossless {

// 32 KiB matches the reach of the deflate-style distance code table the
// codec entropy-codes matches with (24577 + 2^13 - 1 = 32768).
inline constexpr size_t kWindowSize = 1u << 15;
inline constexpr size_t kMinMatch = 4;
inline constexpr size_t kMaxMatch = 258;

struct Token {
  // literal when length == 0 (value in `literal`), match otherwise.
  uint32_t length = 0;    ///< kMinMatch..kMaxMatch for matches, 0 for literal
  uint32_t distance = 0;  ///< 1..kWindowSize for matches
  uint8_t literal = 0;
};

/// Receives the parse of lz77_scan() one decision at a time, in input order.
class TokenSink {
 public:
  virtual ~TokenSink() = default;
  virtual void on_literal(uint8_t byte) = 0;
  virtual void on_match(uint32_t length, uint32_t distance) = 0;
};

/// Reusable hash-chain storage so per-block scans do not reallocate. `prev`
/// is resized without clearing (every slot is written before it is read);
/// `head` is re-cleared per scan.
struct MatchScratch {
  std::vector<int64_t> head;
  std::vector<int64_t> prev;
};

/// Parse `data` with greedy matching plus one-step-lazy evaluation, calling
/// `sink` for every literal/match in order. Matches never reference bytes
/// before `data` — a scan over a block is self-contained by construction.
void lz77_scan(const uint8_t* data, size_t size, TokenSink& sink,
               MatchScratch* scratch = nullptr);

/// Tokenize `data` into a materialized token vector (lz77_scan + push_back).
std::vector<Token> lz77_tokenize(const uint8_t* data, size_t size);

/// Reconstruct the original bytes from a token stream, appending to `out`.
/// `expected_size`, when nonzero, is the decoded size promised by the
/// framing header and is reserved up front (the reconstruction loop grows
/// `out` a byte at a time, so reserving avoids repeated reallocation).
/// Returns false if a token references data before the start of the output
/// (corrupt stream).
bool lz77_reconstruct(const std::vector<Token>& tokens, std::vector<uint8_t>& out,
                      size_t expected_size = 0);

}  // namespace sperr::lossless
