#include "lossless/lz77.h"

#include <algorithm>
#include <cstring>

namespace sperr::lossless {

namespace {

constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = size_t(1) << kHashBits;
constexpr int kMaxChainLen = 64;

inline uint32_t hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline size_t match_length(const uint8_t* a, const uint8_t* b, size_t max_len) {
  size_t n = 0;
  while (n < max_len && a[n] == b[n]) ++n;
  return n;
}

struct Matcher {
  std::vector<int64_t>& head;
  std::vector<int64_t>& prev;
  const uint8_t* data;
  size_t size;
  size_t inserted = 0;  ///< all positions < inserted are in the hash chains

  Matcher(const uint8_t* d, size_t s, MatchScratch& scratch)
      : head(scratch.head), prev(scratch.prev), data(d), size(s) {
    head.assign(kHashSize, -1);
    // prev needs no clearing: prev[i] is written when position i is inserted,
    // and chains only ever reach inserted positions.
    if (prev.size() < s) prev.resize(s);
  }

  /// Register every position in [inserted, target) in the hash chains.
  void insert_upto(size_t target) {
    target = std::min(target, size);
    for (; inserted < target; ++inserted) {
      if (inserted + 4 > size) continue;
      const uint32_t h = hash4(data + inserted);
      prev[inserted] = head[h];
      head[h] = int64_t(inserted);
    }
  }

  /// Best match at `pos` against strictly earlier positions; length 0 if no
  /// match of at least kMinMatch exists.
  Token best_match(size_t pos) const {
    Token best{};
    if (pos + kMinMatch > size) return best;
    const size_t max_len = std::min(kMaxMatch, size - pos);
    int64_t cand = head[hash4(data + pos)];
    int chain = kMaxChainLen;
    while (cand >= 0 && chain-- > 0) {
      const size_t cpos = size_t(cand);
      if (cpos >= pos) {  // pos itself may already be inserted; skip it
        cand = prev[cpos];
        ++chain;
        continue;
      }
      if (pos - cpos > kWindowSize) break;
      const size_t len = match_length(data + cpos, data + pos, max_len);
      if (len >= kMinMatch && len > best.length) {
        best.length = uint32_t(len);
        best.distance = uint32_t(pos - cpos);
        if (len == max_len) break;
      }
      cand = prev[cpos];
    }
    return best;
  }
};

}  // namespace

void lz77_scan(const uint8_t* data, size_t size, TokenSink& sink,
               MatchScratch* scratch) {
  if (size == 0) return;
  MatchScratch local;
  Matcher m(data, size, scratch ? *scratch : local);

  size_t pos = 0;
  while (pos < size) {
    Token match = m.best_match(pos);
    if (match.length >= kMinMatch && pos + 1 < size) {
      // One-step lazy evaluation: emit a literal instead if the match at
      // pos + 1 is strictly better (zlib's heuristic, improves dense data).
      m.insert_upto(pos + 1);
      const Token next = m.best_match(pos + 1);
      if (next.length > match.length + 1) {
        sink.on_literal(data[pos]);
        ++pos;
        match = next;
      }
    }
    if (match.length >= kMinMatch) {
      sink.on_match(match.length, match.distance);
      m.insert_upto(pos + match.length);
      pos += match.length;
    } else {
      sink.on_literal(data[pos]);
      m.insert_upto(pos + 1);
      ++pos;
    }
  }
}

namespace {

struct VectorSink final : TokenSink {
  std::vector<Token>& tokens;
  explicit VectorSink(std::vector<Token>& t) : tokens(t) {}
  void on_literal(uint8_t byte) override {
    Token lit{};
    lit.literal = byte;
    tokens.push_back(lit);
  }
  void on_match(uint32_t length, uint32_t distance) override {
    Token m{};
    m.length = length;
    m.distance = distance;
    tokens.push_back(m);
  }
};

}  // namespace

std::vector<Token> lz77_tokenize(const uint8_t* data, size_t size) {
  std::vector<Token> tokens;
  if (size == 0) return tokens;
  tokens.reserve(size / 4);
  VectorSink sink(tokens);
  lz77_scan(data, size, sink);
  return tokens;
}

bool lz77_reconstruct(const std::vector<Token>& tokens, std::vector<uint8_t>& out,
                      size_t expected_size) {
  if (expected_size) out.reserve(out.size() + expected_size);
  for (const Token& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
      continue;
    }
    if (t.distance == 0 || t.distance > out.size()) return false;
    const size_t start = out.size() - t.distance;
    // Byte-by-byte copy: overlapping matches (distance < length) replicate.
    for (size_t i = 0; i < t.length; ++i) out.push_back(out[start + i]);
  }
  return true;
}

}  // namespace sperr::lossless
