#include "lossless/lz77.h"

#include <algorithm>
#include <cstring>

namespace sperr::lossless {

namespace {

constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = size_t(1) << kHashBits;
constexpr int kMaxChainLen = 64;

inline uint32_t hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline size_t match_length(const uint8_t* a, const uint8_t* b, size_t max_len) {
  size_t n = 0;
  while (n < max_len && a[n] == b[n]) ++n;
  return n;
}

struct Matcher {
  std::vector<int64_t> head = std::vector<int64_t>(kHashSize, -1);
  std::vector<int64_t> prev;
  const uint8_t* data;
  size_t size;
  size_t inserted = 0;  ///< all positions < inserted are in the hash chains

  Matcher(const uint8_t* d, size_t s) : prev(s, -1), data(d), size(s) {}

  /// Register every position in [inserted, target) in the hash chains.
  void insert_upto(size_t target) {
    target = std::min(target, size);
    for (; inserted < target; ++inserted) {
      if (inserted + 4 > size) continue;
      const uint32_t h = hash4(data + inserted);
      prev[inserted] = head[h];
      head[h] = int64_t(inserted);
    }
  }

  /// Best match at `pos` against strictly earlier positions; length 0 if no
  /// match of at least kMinMatch exists.
  Token best_match(size_t pos) const {
    Token best{};
    if (pos + kMinMatch > size) return best;
    const size_t max_len = std::min(kMaxMatch, size - pos);
    int64_t cand = head[hash4(data + pos)];
    int chain = kMaxChainLen;
    while (cand >= 0 && chain-- > 0) {
      const size_t cpos = size_t(cand);
      if (cpos >= pos) {  // pos itself may already be inserted; skip it
        cand = prev[cpos];
        ++chain;
        continue;
      }
      if (pos - cpos > kWindowSize) break;
      const size_t len = match_length(data + cpos, data + pos, max_len);
      if (len >= kMinMatch && len > best.length) {
        best.length = uint32_t(len);
        best.distance = uint32_t(pos - cpos);
        if (len == max_len) break;
      }
      cand = prev[cpos];
    }
    return best;
  }
};

}  // namespace

std::vector<Token> lz77_tokenize(const uint8_t* data, size_t size) {
  std::vector<Token> tokens;
  if (size == 0) return tokens;
  tokens.reserve(size / 4);

  Matcher m(data, size);
  size_t pos = 0;
  while (pos < size) {
    Token match = m.best_match(pos);
    if (match.length >= kMinMatch && pos + 1 < size) {
      // One-step lazy evaluation: emit a literal instead if the match at
      // pos + 1 is strictly better (zlib's heuristic, improves dense data).
      m.insert_upto(pos + 1);
      const Token next = m.best_match(pos + 1);
      if (next.length > match.length + 1) {
        Token lit{};
        lit.literal = data[pos];
        tokens.push_back(lit);
        ++pos;
        match = next;
      }
    }
    if (match.length >= kMinMatch) {
      tokens.push_back(match);
      m.insert_upto(pos + match.length);
      pos += match.length;
    } else {
      Token lit{};
      lit.literal = data[pos];
      tokens.push_back(lit);
      m.insert_upto(pos + 1);
      ++pos;
    }
  }
  return tokens;
}

bool lz77_reconstruct(const std::vector<Token>& tokens, std::vector<uint8_t>& out) {
  for (const Token& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
      continue;
    }
    if (t.distance == 0 || t.distance > out.size()) return false;
    const size_t start = out.size() - t.distance;
    // Byte-by-byte copy: overlapping matches (distance < length) replicate.
    for (size_t i = 0; i < t.length; ++i) out.push_back(out[start + i]);
  }
  return true;
}

}  // namespace sperr::lossless
