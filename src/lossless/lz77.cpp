#include "lossless/lz77.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace sperr::lossless {

namespace {

constexpr size_t kHashBits = 16;
constexpr size_t kHashSize = size_t(1) << kHashBits;
constexpr size_t kWindowMask = kWindowSize - 1;
constexpr int kMaxChainLen = 48;
// A match this long is "good enough": stop walking the chain and skip the
// lazy re-search (zlib's nice_match). Must stay < kMaxMatch so the
// quick-reject probe below never reads past the match limit.
constexpr uint32_t kNiceLength = 130;
// Once the current best reaches this, walk only a quarter of the remaining
// chain (zlib's good_match); further gains are marginal.
constexpr uint32_t kGoodLength = 32;
// Literal-run skip acceleration: after `miss` consecutive un-matched
// positions the search stride is 1 + (miss >> kSkipShift), capped. On random
// data this makes search cost sublinear while a transition back to
// compressible bytes is found within one (bounded) stride.
constexpr size_t kSkipShift = 5;
constexpr size_t kMaxSkip = 128;

inline uint32_t hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Matching prefix length of a and b, 8 bytes per step.
inline size_t match_length(const uint8_t* a, const uint8_t* b, size_t max_len) {
  size_t n = 0;
  while (n + 8 <= max_len) {
    uint64_t x, y;
    std::memcpy(&x, a + n, 8);
    std::memcpy(&y, b + n, 8);
    const uint64_t diff = x ^ y;
    if (diff != 0) {
      if constexpr (std::endian::native == std::endian::little)
        return n + (size_t(std::countr_zero(diff)) >> 3);
      else
        return n + (size_t(std::countl_zero(diff)) >> 3);
    }
    n += 8;
  }
  while (n < max_len && a[n] == b[n]) ++n;
  return n;
}

struct Matcher {
  int32_t* head;
  int32_t* prev;
  const uint8_t* data;
  size_t size;
  size_t next_insert = 0;  ///< insertions are strictly increasing positions

  Matcher(const uint8_t* d, size_t s, MatchScratch& scratch) : data(d), size(s) {
    scratch.head.assign(kHashSize, -1);
    // The ring needs no clearing: slot p & kWindowMask is written when
    // position p is inserted, and chains only ever follow written slots.
    if (scratch.prev.size() < kWindowSize) scratch.prev.resize(kWindowSize);
    head = scratch.head.data();
    prev = scratch.prev.data();
  }

  /// Register position `p` in the hash chains (no-op if already inserted or
  /// too close to the end to hash). Calls must use non-decreasing `p`.
  inline void insert(size_t p) {
    if (p < next_insert || p + 4 > size) return;
    const uint32_t h = hash4(data + p);
    prev[p & kWindowMask] = head[h];
    head[h] = int32_t(p);
    next_insert = p + 1;
  }

  /// Register every not-yet-inserted position in [from, to).
  inline void insert_range(size_t from, size_t to) {
    size_t p = std::max(from, next_insert);
    const size_t stop = std::min(to, size >= 4 ? size - 3 : size_t(0));
    for (; p < stop; ++p) {
      const uint32_t h = hash4(data + p);
      prev[p & kWindowMask] = head[h];
      head[h] = int32_t(p);
    }
    if (to > next_insert) next_insert = to;
  }

  /// Best match at `pos` of length >= min_len against strictly earlier
  /// inserted positions; length 0 if none. `max_chain` caps the walk.
  Token best_match(size_t pos, uint32_t min_len, int max_chain) const {
    Token best{};
    const size_t max_len = std::min(kMaxMatch, size - pos);
    if (max_len < kMinMatch) return best;
    uint32_t best_len = min_len - 1;
    if (best_len >= max_len) return best;

    int32_t cand = head[hash4(data + pos)];
    if (cand >= 0 && size_t(cand) == pos) cand = prev[pos & kWindowMask];
    const uint8_t* cur = data + pos;
    int chain = max_chain;
    while (cand >= 0 && pos - size_t(cand) <= kWindowSize && chain-- > 0) {
      const uint8_t* cp = data + size_t(cand);
      // Quick reject: a longer match must agree at the current best length.
      if (cp[best_len] == cur[best_len]) {
        const size_t len = match_length(cp, cur, max_len);
        if (len > best_len) {
          best_len = uint32_t(len);
          best.length = uint32_t(len);
          best.distance = uint32_t(pos - size_t(cand));
          if (len >= kNiceLength || len == max_len) break;
        }
      }
      const int32_t next = prev[size_t(cand) & kWindowMask];
      if (next >= cand) break;  // stale ring slot: chains strictly decrease
      cand = next;
    }
    return best;
  }
};

}  // namespace

void lz77_scan(const uint8_t* data, size_t size, TokenSink& sink,
               MatchScratch* scratch) {
  if (size == 0) return;
  MatchScratch local;
  Matcher m(data, size, scratch ? *scratch : local);

  size_t pos = 0;
  size_t lit_start = 0;  // pending literal run is [lit_start, pos)
  size_t miss = 0;       // consecutive searched positions without a match
  const size_t search_end = size >= kMinMatch ? size - kMinMatch + 1 : 0;

  while (pos < search_end) {
    Token match = m.best_match(pos, kMinMatch, kMaxChainLen);
    if (match.length == 0) {
      // No match: stride forward, accelerating through incompressible runs.
      // Skipped positions are left out of the dictionary on purpose — data
      // that produces no matches is not worth indexing densely.
      m.insert(pos);
      const size_t step = std::min(kMaxSkip, 1 + (miss >> kSkipShift));
      miss += step;
      pos += step;
      continue;
    }
    miss = 0;
    if (match.length < kNiceLength && pos + 1 < search_end) {
      // One-step lazy evaluation: emit a literal instead if the match at
      // pos + 1 is strictly better (zlib's heuristic, improves dense data).
      m.insert(pos);
      const int chain = match.length >= kGoodLength ? kMaxChainLen / 4 : kMaxChainLen;
      const Token next = m.best_match(pos + 1, match.length + 2, chain);
      if (next.length != 0) {
        ++pos;  // data[pos - 1] joins the pending literal run
        match = next;
      }
    }
    if (pos > lit_start) sink.on_literals(data + lit_start, pos - lit_start);
    sink.on_match(match.length, match.distance);
    m.insert_range(pos, pos + match.length);
    pos += match.length;
    lit_start = pos;
  }
  if (size > lit_start) sink.on_literals(data + lit_start, size - lit_start);
}

namespace {

struct VectorSink final : TokenSink {
  std::vector<Token>& tokens;
  explicit VectorSink(std::vector<Token>& t) : tokens(t) {}
  void on_literal(uint8_t byte) override {
    Token lit{};
    lit.literal = byte;
    tokens.push_back(lit);
  }
  void on_match(uint32_t length, uint32_t distance) override {
    Token m{};
    m.length = length;
    m.distance = distance;
    tokens.push_back(m);
  }
};

}  // namespace

std::vector<Token> lz77_tokenize(const uint8_t* data, size_t size) {
  std::vector<Token> tokens;
  if (size == 0) return tokens;
  tokens.reserve(size / 4);
  VectorSink sink(tokens);
  lz77_scan(data, size, sink);
  return tokens;
}

bool lz77_reconstruct(const std::vector<Token>& tokens, std::vector<uint8_t>& out,
                      size_t expected_size) {
  if (expected_size) out.reserve(out.size() + expected_size);
  for (const Token& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
      continue;
    }
    if (t.distance == 0 || t.distance > out.size()) return false;
    const size_t len = t.length;
    const size_t start = out.size() - t.distance;
    out.resize(out.size() + len);
    uint8_t* dst = out.data() + out.size() - len;
    const uint8_t* src = out.data() + start;
    if (t.distance >= len) {
      std::memcpy(dst, src, len);
    } else {
      // Overlapping match: seed one period, then double the copied region
      // until `len` is covered. Each memcpy's source and destination are
      // disjoint, so this widens to bulk copies while preserving the
      // byte-serial replication semantics.
      size_t copied = std::min<size_t>(t.distance, len);
      std::memcpy(dst, src, copied);
      while (copied < len) {
        const size_t chunk = std::min(copied, len - copied);
        std::memcpy(dst + copied, dst, chunk);
        copied += chunk;
      }
    }
  }
  return true;
}

}  // namespace sperr::lossless
