#pragma once

// Canonical Huffman coding over an arbitrary finite alphabet. This is the
// entropy-coding workhorse shared by the lossless back end (literals, match
// lengths, distances), the SZ-like baseline (quantization bins), and the
// Fig. 11 reproduction of SZ's outlier-coding scheme.
//
// Codes are length-limited (default 15 bits) so decode tables stay small, and
// canonical (assigned in (length, symbol) order) so only the length of each
// symbol's code needs to be transmitted.

#include <cstdint>
#include <vector>

#include "common/bitstream.h"

namespace sperr::lossless {

/// Hard upper bound on code length supported by the decoder tables. Callers
/// pass their own limit to huffman_code_lengths: the byte-oriented codec
/// uses 15 (its header packs lengths in 4 bits), the quantization-bin codec
/// uses the full 27 (alphabets up to 2^16 symbols need > 15-bit codes).
inline constexpr unsigned kMaxCodeLen = 27;

/// Compute length-limited canonical Huffman code lengths from symbol
/// frequencies. Symbols with zero frequency get length 0 (no code). If only
/// one symbol has nonzero frequency it is assigned a 1-bit code.
std::vector<uint8_t> huffman_code_lengths(const std::vector<uint64_t>& freq,
                                          unsigned max_len = kMaxCodeLen);

/// Canonical code values for the given lengths: codes[i] holds the code for
/// symbol i, to be emitted MSB-first with lengths[i] bits.
std::vector<uint32_t> canonical_codes(const std::vector<uint8_t>& lengths);

/// Encoder: holds the (lengths, codes) pair and writes symbols to a stream.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(std::vector<uint8_t> lengths);

  void encode(BitWriter& bw, uint32_t symbol) const {
    const unsigned len = lengths_[symbol];
    const uint32_t code = codes_[symbol];
    for (unsigned i = len; i-- > 0;) bw.put((code >> i) & 1u);
  }

  [[nodiscard]] const std::vector<uint8_t>& lengths() const { return lengths_; }
  [[nodiscard]] unsigned length_of(uint32_t symbol) const { return lengths_[symbol]; }

 private:
  std::vector<uint8_t> lengths_;
  std::vector<uint32_t> codes_;
};

/// Decoder: canonical bit-serial decode (one bit at a time, MSB-first).
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::vector<uint8_t> lengths);

  /// Decode one symbol; returns -1 on malformed input or exhausted stream.
  [[nodiscard]] int32_t decode(BitReader& br) const;

  [[nodiscard]] bool valid() const { return valid_; }

 private:
  // first_code_[l] / first_index_[l]: canonical decode tables per length.
  uint32_t first_code_[kMaxCodeLen + 2] = {};
  uint32_t first_index_[kMaxCodeLen + 2] = {};
  uint32_t count_[kMaxCodeLen + 2] = {};
  std::vector<uint32_t> sorted_symbols_;
  bool valid_ = false;
};

}  // namespace sperr::lossless
