#pragma once

// Self-contained lossless byte codec (LZ77 + canonical Huffman, deflate-like
// token alphabet). This plays the role ZSTD plays in the paper: a final
// lossless pass over the concatenated SPECK + outlier bitstreams (paper §V)
// and over the SZ-like baseline's Huffman output (paper §VI-E).
//
// The container always decodes to exactly the original bytes; when entropy
// coding would expand the payload (typical for SPECK's near-random bitplanes)
// the input is stored raw with one byte of overhead.

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr::lossless {

/// Compress `data`; the result always round-trips through decompress().
std::vector<uint8_t> compress(const uint8_t* data, size_t size);

inline std::vector<uint8_t> compress(const std::vector<uint8_t>& data) {
  return compress(data.data(), data.size());
}

/// Decompress a buffer produced by compress().
Status decompress(const uint8_t* data, size_t size, std::vector<uint8_t>& out);

inline Status decompress(const std::vector<uint8_t>& data, std::vector<uint8_t>& out) {
  return decompress(data.data(), data.size(), out);
}

}  // namespace sperr::lossless
