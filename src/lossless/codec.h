#pragma once

// Self-contained lossless byte codec (LZ77 + canonical Huffman, deflate-like
// token alphabet). This plays the role ZSTD plays in the paper: a final
// lossless pass over the concatenated SPECK + outlier bitstreams (paper §V)
// and over the SZ-like baseline's Huffman output (paper §VI-E).
//
// The production path is block-based and parallel: the input is split into
// fixed-size blocks (default 1 MiB, recorded in the stream header), each
// block is tokenized and entropy-coded independently with its own code
// tables, and blocks are (de)coded concurrently under OpenMP. A per-block
// directory carries each block's compressed size, a 2-bit entropy tag
// (raw / Huffman / arithmetic — whichever the exact-cost pricing says is
// smallest for that block), and an XXH64 checksum of its original bytes, so
// a flipped bit is reported as "block b is corrupt" instead of silently
// poisoning the archive. Block encoding is streaming: the matcher announces
// tokens to a sink that feeds the entropy coder's bit writer directly — no
// materialized token array, bounded memory per worker.
//
// The pre-existing single-shot whole-input codec survives as
// encode_reference / decode_reference: it is the equivalence oracle for the
// differential tests and the serial baseline in bench_micro
// --lossless_json. decompress() accepts both framings (it dispatches on the
// leading format byte).
//
// Either path always decodes to exactly the original bytes; when entropy
// coding would expand a block (typical for SPECK's near-random bitplanes)
// that block is stored raw with one byte of overhead.

#include <cstdint>
#include <vector>

#include "common/resource.h"
#include "common/types.h"

namespace sperr::lossless {

/// Per-block entropy tags of the format-3 directory (BlockInfo::mode for
/// tagged streams). Format-2 streams reuse the same numbering via their
/// payload mode byte (raw = 0, Huffman = 1); arithmetic exists only in
/// format 3.
inline constexpr uint8_t kEntropyRaw = 0;
inline constexpr uint8_t kEntropyHuffman = 1;
inline constexpr uint8_t kEntropyArith = 2;

/// Knobs for the block-parallel encoder.
struct EncodeOptions {
  /// Block granularity in bytes; clamped to [4 KiB, 256 MiB]. Smaller blocks
  /// parallelize and localize corruption better, larger blocks give the
  /// matcher more context (the window is 32 KiB, so gains flatten quickly).
  size_t block_size = size_t(1) << 20;
  /// OpenMP threads for block-parallel coding; 0 = runtime default.
  int num_threads = 0;
};

/// Compress `data` with the block-parallel codec; the result always
/// round-trips through decompress().
std::vector<uint8_t> compress(const uint8_t* data, size_t size,
                              const EncodeOptions& opts = {});

inline std::vector<uint8_t> compress(const std::vector<uint8_t>& data,
                                     const EncodeOptions& opts = {}) {
  return compress(data.data(), data.size(), opts);
}

/// Decompress a buffer produced by compress() or encode_reference().
/// Every block's checksum is verified; on a per-block failure the return is
/// Status::corrupt_block and `*corrupt_block` (when non-null) receives the
/// zero-based index of the first bad block. Framing-level failures return
/// corrupt_stream/truncated_stream and leave `*corrupt_block` untouched.
/// The advertised raw size is gated against `limits` (nullptr = the finite
/// ResourceLimits::defaults()) *before* the output is sized: a tiny stream
/// declaring an implausible raw size is answered resource_exhausted, not a
/// multi-gigabyte allocation.
Status decompress(const uint8_t* data, size_t size, std::vector<uint8_t>& out,
                  size_t* corrupt_block = nullptr, int num_threads = 0,
                  const ResourceLimits* limits = nullptr);

inline Status decompress(const std::vector<uint8_t>& data, std::vector<uint8_t>& out,
                         size_t* corrupt_block = nullptr, int num_threads = 0,
                         const ResourceLimits* limits = nullptr) {
  return decompress(data.data(), data.size(), out, corrupt_block, num_threads, limits);
}

/// Like decompress(), but keep going past damaged blocks: every block is
/// decoded best-effort, the raw-byte range of any block that fails
/// structural decoding is zero-filled, `bad_blocks` receives the sorted
/// indices of all blocks that failed (structurally or by checksum), and
/// `out` always has the full advertised raw size — so upper layers with
/// their own integrity data can salvage whatever the bad blocks did not
/// cover. A truncated stream with an intact directory marks the missing
/// tail blocks bad instead of rejecting the whole stream. Returns ok when
/// `bad_blocks` is empty, corrupt_block otherwise; damage to the header or
/// directory itself is unrecoverable (corrupt_stream/truncated_stream, with
/// `out` cleared). Reference-framing streams carry no blocks: they decode
/// all-or-nothing exactly as in decompress().
Status decompress_tolerant(const uint8_t* data, size_t size, std::vector<uint8_t>& out,
                           std::vector<size_t>& bad_blocks, int num_threads = 0,
                           const ResourceLimits* limits = nullptr);

/// Reference single-block codec: one serial LZ77+Huffman pass over the whole
/// input, no directory, no checksums (the pre-block-rewrite format).
std::vector<uint8_t> encode_reference(const uint8_t* data, size_t size);

inline std::vector<uint8_t> encode_reference(const std::vector<uint8_t>& data) {
  return encode_reference(data.data(), data.size());
}

Status decode_reference(const uint8_t* data, size_t size, std::vector<uint8_t>& out,
                        const ResourceLimits* limits = nullptr);

/// Parsed view of a compressed stream's framing (no payload decoding).
struct BlockInfo {
  uint64_t offset = 0;     ///< payload offset from the start of the stream
  uint32_t comp_size = 0;  ///< compressed payload bytes (format 2: incl. the
                           ///< mode byte; format 3: the body alone)
  uint64_t raw_size = 0;   ///< decoded bytes this block covers
  uint64_t checksum = 0;   ///< XXH64 of the raw block bytes
  uint8_t mode = 0;        ///< entropy coding: kEntropyRaw / kEntropyHuffman
                           ///< / kEntropyArith (the latter format 3 only)
};

struct StreamInfo {
  bool blocked = false;  ///< true for the block-parallel framings
  bool tagged = false;   ///< true for format 3 (entropy tag in the directory)
  uint64_t raw_size = 0;
  size_t block_size = 0;              ///< 0 for reference streams
  std::vector<BlockInfo> blocks;      ///< empty for reference streams
};

/// Parse framing + block directory without decoding payloads. Used by the
/// block-independence tests and `sperr_cc info`.
Status inspect(const uint8_t* data, size_t size, StreamInfo& info);

}  // namespace sperr::lossless
