#pragma once

// SZ's quantization-bin codec (paper §VI-E): a dense array of signed integer
// quantization codes — zero for predictable/inlier points, small non-zero
// integers elsewhere — is Huffman-coded and then passed through the lossless
// back end (SZ uses ZSTD; we use the built-in codec). This is the exact
// scheme the paper benchmarks SPERR's outlier coder against in Fig. 11
// (SZ's `compressQuantBins` tool from the QCAT package).
//
// Codes outside ±(kCapacity-1) are escaped and stored verbatim.

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr::szlike {

inline constexpr int32_t kCapacity = 32768;  ///< SZ's default bin capacity

struct QuantBinStats {
  size_t huffman_bits = 0;   ///< entropy-coded payload size
  size_t total_bytes = 0;    ///< final size after the lossless pass
  size_t num_escapes = 0;
};

/// Encode a dense array of signed quantization codes.
std::vector<uint8_t> encode_quant_bins(const std::vector<int32_t>& bins,
                                       QuantBinStats* stats = nullptr);

/// Decode a stream produced by encode_quant_bins.
Status decode_quant_bins(const uint8_t* data, size_t size,
                         std::vector<int32_t>& bins);

}  // namespace sperr::szlike
