#include "baselines/szlike/compressor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/byteio.h"
#include "baselines/szlike/quant_bins.h"

namespace sperr::szlike {

namespace {

constexpr uint32_t kMagic = 0x334b5a53;  // "SZK3"
constexpr int32_t kRawSentinel = INT32_MIN;  ///< bin value marking a raw-stored point

size_t anchor_stride(Dims dims) {
  const size_t max_dim = std::max({dims.x, dims.y, dims.z});
  size_t s = 1;
  while (s * 2 <= max_dim && s < 64) s *= 2;
  return s;
}

/// Cubic (4-point) interpolation of the midpoint between l1 and r1.
inline double cubic(double l2, double l1, double r1, double r2) {
  return (-l2 + 9.0 * l1 + 9.0 * r1 - r2) / 16.0;
}

/// Predict the value at offset `p` along one axis of length `n`, where grid
/// values at multiples of h (below p) and at p+h, p+3h (if present) are
/// already reconstructed. `at(i)` reads the reconstructed value at offset i.
template <class At>
double predict_axis(At&& at, size_t p, size_t h, size_t n) {
  const double l1 = at(p - h);
  if (p + h >= n) {
    // Right edge: fall back to the nearest known value.
    return l1;
  }
  const double r1 = at(p + h);
  if (p >= 3 * h && p + 3 * h < n) return cubic(at(p - 3 * h), l1, r1, at(p + 3 * h));
  return 0.5 * (l1 + r1);
}

/// Walk every predicted point in the exact order both encoder and decoder
/// must follow, invoking cb(linear_index, predicted_value). `recon` is read
/// for neighbours, so cb must store the reconstructed value back into it
/// before the traversal continues.
template <class Cb>
void traverse(const Dims& dims, size_t S, const double* recon, Cb&& cb) {
  for (size_t s = S; s >= 2; s /= 2) {
    const size_t h = s / 2;
    // Pass 1: interpolate along x on the coarse (y, z) grid.
    for (size_t z = 0; z < dims.z; z += s)
      for (size_t y = 0; y < dims.y; y += s)
        for (size_t x = h; x < dims.x; x += s) {
          const size_t row = dims.index(0, y, z);
          const double pred = predict_axis(
              [&](size_t i) { return recon[row + i]; }, x, h, dims.x);
          cb(row + x, pred);
        }
    // Pass 2: along y, x already refined to the h grid.
    for (size_t z = 0; z < dims.z; z += s)
      for (size_t y = h; y < dims.y; y += s)
        for (size_t x = 0; x < dims.x; x += h) {
          const double pred = predict_axis(
              [&](size_t i) { return recon[dims.index(x, i, z)]; }, y, h, dims.y);
          cb(dims.index(x, y, z), pred);
        }
    // Pass 3: along z, x and y refined to the h grid.
    for (size_t z = h; z < dims.z; z += s)
      for (size_t y = 0; y < dims.y; y += h)
        for (size_t x = 0; x < dims.x; x += h) {
          const double pred = predict_axis(
              [&](size_t i) { return recon[dims.index(x, y, i)]; }, z, h, dims.z);
          cb(dims.index(x, y, z), pred);
        }
    if (s == 2) break;  // s /= 2 on size_t 2 -> 1 would loop forever at 1
  }
}

template <class Cb>
void for_each_anchor(const Dims& dims, size_t S, Cb&& cb) {
  for (size_t z = 0; z < dims.z; z += S)
    for (size_t y = 0; y < dims.y; y += S)
      for (size_t x = 0; x < dims.x; x += S) cb(dims.index(x, y, z));
}

}  // namespace

std::vector<uint8_t> compress(const double* data, Dims dims, double eb,
                              SzStats* stats) {
  if (!(eb > 0.0)) throw std::invalid_argument("szlike: error bound must be > 0");
  const size_t n = dims.total();
  const size_t S = anchor_stride(dims);
  // Slightly under 2*eb so reconstruction rounding at machine-precision
  // tolerances cannot nudge the error past the bound.
  const double bin_width = 2.0 * eb * (1.0 - 1e-6);

  std::vector<double> recon(n, 0.0);
  std::vector<double> anchors;
  for_each_anchor(dims, S, [&](size_t idx) {
    anchors.push_back(data[idx]);
    recon[idx] = data[idx];  // anchors are exact
  });

  std::vector<int32_t> bins;
  bins.reserve(n - anchors.size());
  std::vector<double> raw_values;
  traverse(dims, S, recon.data(), [&](size_t idx, double pred) {
    const double err = data[idx] - pred;
    const double scaled = err / bin_width;
    // Verify the achieved error with margin for decoder-side rounding; a
    // point that cannot be safely quantized (overflow, or a tolerance so
    // tight that fp rounding eats the slack) is stored raw.
    if (std::fabs(scaled) <= double(1 << 30)) {
      const auto bin = int32_t(std::llround(scaled));
      const double r = pred + double(bin) * bin_width;
      if (std::fabs(data[idx] - r) <= 0.999 * eb) {
        bins.push_back(bin);
        recon[idx] = r;
        return;
      }
    }
    bins.push_back(kRawSentinel);
    raw_values.push_back(data[idx]);
    recon[idx] = data[idx];
  });

  std::vector<uint8_t> out;
  put_u32(out, kMagic);
  put_u64(out, dims.x);
  put_u64(out, dims.y);
  put_u64(out, dims.z);
  put_f64(out, eb);
  put_u64(out, anchors.size());
  for (double a : anchors) put_f64(out, a);
  put_u64(out, raw_values.size());
  for (double v : raw_values) put_f64(out, v);

  const auto bin_stream = encode_quant_bins(bins);
  put_u64(out, bin_stream.size());
  out.insert(out.end(), bin_stream.begin(), bin_stream.end());

  if (stats) {
    stats->num_points = n;
    stats->num_anchors = anchors.size();
    stats->num_unpredictable = raw_values.size();
  }
  return out;
}

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims) try {
  ByteReader br(stream, nbytes);
  if (br.u32() != kMagic) return Status::corrupt_stream;
  dims.x = br.u64();
  dims.y = br.u64();
  dims.z = br.u64();
  const double eb = br.f64();
  if (!br.ok() || !plausible_dims(dims) || !(eb > 0.0))
    return Status::corrupt_stream;

  const size_t n = dims.total();
  const size_t S = anchor_stride(dims);
  const double bin_width = 2.0 * eb * (1.0 - 1e-6);  // must match the encoder

  const uint64_t num_anchors = br.u64();
  if (num_anchors > br.remaining() / 8) return Status::truncated_stream;
  std::vector<double> anchors(num_anchors);
  for (auto& a : anchors) a = br.f64();
  const uint64_t num_raw = br.u64();
  if (num_raw > br.remaining() / 8) return Status::truncated_stream;
  std::vector<double> raw_values(num_raw);
  for (auto& v : raw_values) v = br.f64();
  const uint64_t bin_len = br.u64();
  if (!br.ok()) return Status::truncated_stream;
  const uint8_t* bin_data = br.raw(bin_len);
  if (!bin_data) return Status::truncated_stream;

  std::vector<int32_t> bins;
  if (const Status s = decode_quant_bins(bin_data, bin_len, bins); s != Status::ok)
    return s;

  out.assign(n, 0.0);
  size_t anchor_pos = 0;
  for_each_anchor(dims, S, [&](size_t idx) {
    if (anchor_pos < anchors.size()) out[idx] = anchors[anchor_pos++];
  });
  if (anchor_pos != anchors.size()) return Status::corrupt_stream;

  size_t bin_pos = 0, raw_pos = 0;
  bool ok = true;
  traverse(dims, S, out.data(), [&](size_t idx, double pred) {
    if (bin_pos >= bins.size()) {
      ok = false;
      return;
    }
    const int32_t bin = bins[bin_pos++];
    if (bin == kRawSentinel) {
      if (raw_pos >= raw_values.size()) {
        ok = false;
        return;
      }
      out[idx] = raw_values[raw_pos++];
    } else {
      out[idx] = pred + double(bin) * bin_width;
    }
  });
  return ok ? Status::ok : Status::corrupt_stream;
} catch (const std::bad_alloc&) {
  return Status::resource_exhausted;
}

}  // namespace sperr::szlike
