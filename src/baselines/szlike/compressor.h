#pragma once

// SZ3-style error-bounded lossy compressor (clean-room reproduction of the
// algorithmic core of Liang et al., "SZ3: a modular framework...", and Zhao
// et al., "Optimizing error-bounded lossy compression ... by dynamic spline
// interpolation"). Serves as the prediction-based baseline in the paper's
// comparison (Figs. 8-10).
//
// Pipeline: a coarse anchor grid is stored verbatim; every other point is
// predicted by multilevel cubic interpolation from already-reconstructed
// neighbours, level by level (stride 2^L -> 2). Prediction errors are
// quantized to integer multiples of 2*eb (guaranteeing |err| <= eb) and
// Huffman-coded with SZ's quantization-bin scheme, then passed through the
// lossless back end.

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr::szlike {

struct SzStats {
  size_t num_points = 0;
  size_t num_anchors = 0;
  size_t num_unpredictable = 0;  ///< stored raw (bin overflow)
};

/// Compress with absolute error bound eb (> 0): every reconstructed value is
/// within eb of the original.
std::vector<uint8_t> compress(const double* data, Dims dims, double eb,
                              SzStats* stats = nullptr);

/// Decompress a stream produced by compress().
Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims);

}  // namespace sperr::szlike
