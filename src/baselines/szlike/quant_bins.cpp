#include "baselines/szlike/quant_bins.h"

#include <algorithm>

#include "common/bitstream.h"
#include "common/byteio.h"
#include "lossless/codec.h"
#include "lossless/huffman.h"

namespace sperr::szlike {

namespace {

constexpr uint32_t kMagic = 0x51424e53;  // "SNBQ"
constexpr uint32_t kEscapeSymbol = 0;    // symbol 0 escapes out-of-range bins

// Map signed bin -> Huffman symbol (1..2*kCapacity-1); 0 is the escape.
inline uint32_t symbol_of(int32_t bin) { return uint32_t(bin + kCapacity); }
inline int32_t bin_of(uint32_t symbol) { return int32_t(symbol) - kCapacity; }

}  // namespace

std::vector<uint8_t> encode_quant_bins(const std::vector<int32_t>& bins,
                                       QuantBinStats* stats) {
  const size_t alphabet = 2 * size_t(kCapacity);
  std::vector<uint64_t> freq(alphabet, 0);
  size_t escapes = 0;
  for (const int32_t b : bins) {
    if (b > -kCapacity && b < kCapacity) {
      ++freq[symbol_of(b)];
    } else {
      ++freq[kEscapeSymbol];
      ++escapes;
    }
  }
  if (escapes == 0) freq[kEscapeSymbol] = 0;

  const auto lengths = lossless::huffman_code_lengths(freq);
  const lossless::HuffmanEncoder enc(lengths);

  std::vector<uint8_t> raw;
  put_u32(raw, kMagic);
  put_u64(raw, bins.size());
  // Sparse code-length table: (symbol, length) pairs for nonzero lengths.
  uint32_t nonzero = 0;
  for (auto l : lengths) nonzero += l != 0;
  put_u32(raw, nonzero);
  for (uint32_t s = 0; s < alphabet; ++s)
    if (lengths[s]) {
      put_u32(raw, s);
      put_u8(raw, lengths[s]);
    }

  BitWriter bw;
  for (const int32_t b : bins) {
    if (b > -kCapacity && b < kCapacity) {
      enc.encode(bw, symbol_of(b));
    } else {
      enc.encode(bw, kEscapeSymbol);
      bw.put_bits(uint32_t(b), 32);
    }
  }
  put_u64(raw, bw.bit_count());
  const auto payload = bw.take();
  raw.insert(raw.end(), payload.begin(), payload.end());

  auto out = lossless::compress(raw);
  if (stats) {
    stats->huffman_bits = 0;
    for (const int32_t b : bins)
      stats->huffman_bits +=
          (b > -kCapacity && b < kCapacity)
              ? enc.length_of(symbol_of(b))
              : enc.length_of(kEscapeSymbol) + 32;
    stats->total_bytes = out.size();
    stats->num_escapes = escapes;
  }
  return out;
}

Status decode_quant_bins(const uint8_t* data, size_t size,
                         std::vector<int32_t>& bins) {
  std::vector<uint8_t> raw;
  if (const Status s = lossless::decompress(data, size, raw); s != Status::ok)
    return s;

  ByteReader br(raw.data(), raw.size());
  if (br.u32() != kMagic) return Status::corrupt_stream;
  const uint64_t count = br.u64();
  const uint32_t nonzero = br.u32();
  if (!br.ok()) return Status::truncated_stream;

  const size_t alphabet = 2 * size_t(kCapacity);
  std::vector<uint8_t> lengths(alphabet, 0);
  for (uint32_t i = 0; i < nonzero; ++i) {
    const uint32_t s = br.u32();
    const uint8_t l = br.u8();
    if (!br.ok() || s >= alphabet) return Status::corrupt_stream;
    lengths[s] = l;
  }
  const uint64_t nbits = br.u64();
  if (!br.ok()) return Status::truncated_stream;

  bins.clear();
  if (count == 0) return Status::ok;

  const lossless::HuffmanDecoder dec(lengths);
  if (!dec.valid()) return Status::corrupt_stream;

  // Both counts are untrusted: clamp the bit budget to the bytes actually
  // present and cap the speculative reserve.
  const size_t avail_bits = (raw.size() - br.pos()) * 8;
  if (nbits > avail_bits) return Status::truncated_stream;
  if (count > nbits + 1) return Status::corrupt_stream;  // >= 1 bit per symbol
  BitReader bits(raw.data() + br.pos(), raw.size() - br.pos(), nbits);
  bins.reserve(size_t(count));
  for (uint64_t i = 0; i < count; ++i) {
    const int32_t sym = dec.decode(bits);
    if (sym < 0) return Status::truncated_stream;
    if (uint32_t(sym) == kEscapeSymbol) {
      bins.push_back(int32_t(bits.get_bits(32)));
      if (bits.exhausted()) return Status::truncated_stream;
    } else {
      bins.push_back(bin_of(uint32_t(sym)));
    }
  }
  return Status::ok;
}

}  // namespace sperr::szlike
