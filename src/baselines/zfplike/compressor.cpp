#include "baselines/zfplike/compressor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/byteio.h"
#include "baselines/zfplike/block_codec.h"

namespace sperr::zfplike {

namespace {

constexpr uint32_t kMagic = 0x4b50465a;  // "ZFPK"
constexpr uint8_t kModeAccuracy = 0;
constexpr uint8_t kModeRate = 1;

int field_dims(Dims d) {
  return d.z > 1 ? 3 : d.y > 1 ? 2 : 1;
}

/// Gather a 4^d block at origin (bx, by, bz), replicating edge samples for
/// partial blocks.
void gather(const double* data, Dims dims, size_t bx, size_t by, size_t bz,
            int d, double* block) {
  const int ny = d >= 2 ? kBlockSide : 1;
  const int nz = d >= 3 ? kBlockSide : 1;
  int out = 0;
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < kBlockSide; ++x) {
        const size_t sx = std::min(bx + size_t(x), dims.x - 1);
        const size_t sy = std::min(by + size_t(y), dims.y - 1);
        const size_t sz = std::min(bz + size_t(z), dims.z - 1);
        block[out++] = data[dims.index(sx, sy, sz)];
      }
}

void scatter(const double* block, Dims dims, size_t bx, size_t by, size_t bz,
             int d, double* data) {
  const int ny = d >= 2 ? kBlockSide : 1;
  const int nz = d >= 3 ? kBlockSide : 1;
  int in = 0;
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < kBlockSide; ++x, ++in) {
        const size_t sx = bx + size_t(x), sy = by + size_t(y), sz = bz + size_t(z);
        if (sx < dims.x && sy < dims.y && sz < dims.z)
          data[dims.index(sx, sy, sz)] = block[in];
      }
}

template <class PerBlock>
void for_each_block(Dims dims, int d, PerBlock&& fn) {
  const size_t stepy = d >= 2 ? kBlockSide : 1;
  const size_t stepz = d >= 3 ? kBlockSide : 1;
  for (size_t z = 0; z < dims.z; z += stepz)
    for (size_t y = 0; y < dims.y; y += stepy)
      for (size_t x = 0; x < dims.x; x += kBlockSide) fn(x, y, z);
}

std::vector<uint8_t> compress_impl(const double* data, Dims dims, uint8_t mode,
                                   double quality) {
  const int d = field_dims(dims);
  BlockParams params;
  params.dims = d;
  size_t rate_bits = 0;
  if (mode == kModeAccuracy) {
    // minexp: exponent of the last bitplane to code. frexp-style convention
    // matches the block codec's emax.
    int e;
    (void)std::frexp(quality, &e);
    params.minexp = e;
  } else {
    rate_bits = size_t(std::llround(quality * block_points(d)));
    rate_bits = std::max<size_t>(rate_bits, 16);
    params.maxbits = rate_bits;
  }

  BitWriter bw;
  double block[64];
  for_each_block(dims, d, [&](size_t x, size_t y, size_t z) {
    gather(data, dims, x, y, z, d, block);
    const size_t before = bw.bit_count();
    encode_block(bw, block, params);
    if (mode == kModeRate) pad_block(bw, bw.bit_count() - before, rate_bits);
  });

  std::vector<uint8_t> out;
  put_u32(out, kMagic);
  put_u8(out, mode);
  put_u64(out, dims.x);
  put_u64(out, dims.y);
  put_u64(out, dims.z);
  put_f64(out, quality);
  put_u64(out, bw.bit_count());
  const auto payload = bw.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

std::vector<uint8_t> compress_accuracy(const double* data, Dims dims,
                                       double tolerance) {
  if (!(tolerance > 0.0))
    throw std::invalid_argument("zfplike: tolerance must be > 0");
  return compress_impl(data, dims, kModeAccuracy, tolerance);
}

std::vector<uint8_t> compress_rate(const double* data, Dims dims, double bpp) {
  if (!(bpp > 0.0)) throw std::invalid_argument("zfplike: bpp must be > 0");
  return compress_impl(data, dims, kModeRate, bpp);
}

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims) try {
  ByteReader hr(stream, nbytes);
  if (hr.u32() != kMagic) return Status::corrupt_stream;
  const uint8_t mode = hr.u8();
  if (mode > kModeRate) return Status::corrupt_stream;
  dims.x = hr.u64();
  dims.y = hr.u64();
  dims.z = hr.u64();
  const double quality = hr.f64();
  const uint64_t nbits = hr.u64();
  if (!hr.ok() || !plausible_dims(dims)) return Status::corrupt_stream;
  if ((nbytes - hr.pos()) * 8 < nbits) return Status::truncated_stream;

  const int d = field_dims(dims);
  BlockParams params;
  params.dims = d;
  size_t rate_bits = 0;
  if (mode == kModeAccuracy) {
    int e;
    (void)std::frexp(quality, &e);
    params.minexp = e;
  } else {
    rate_bits = std::max<size_t>(size_t(std::llround(quality * block_points(d))), 16);
    params.maxbits = rate_bits;
  }

  BitReader br(stream + hr.pos(), nbytes - hr.pos(), nbits);
  out.assign(dims.total(), 0.0);
  double block[64];
  bool ok = true;
  for_each_block(dims, d, [&](size_t x, size_t y, size_t z) {
    if (!ok) return;
    const size_t before = br.bits_read();
    decode_block(br, block, params);
    if (mode == kModeRate) {
      // Skip the block's padding to stay aligned.
      while (br.bits_read() - before < rate_bits && !br.exhausted()) (void)br.get();
    }
    scatter(block, dims, x, y, z, d, out.data());
  });
  return ok ? Status::ok : Status::corrupt_stream;
} catch (const std::bad_alloc&) {
  return Status::resource_exhausted;
}

}  // namespace sperr::zfplike
