#include "baselines/zfplike/block_codec.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

namespace sperr::zfplike {

namespace {

// Fixed-point scale: values are aligned to the block's common exponent and
// scaled to ~2^58, leaving 5 headroom bits for the transform's internal
// additions (the lifting steps each halve after adding).
constexpr int kFracBits = 58;
constexpr int kIntPrec = 62;  ///< coded bitplanes per value

// Negabinary mask: converts two's complement to negabinary so that small
// magnitudes have leading zero bits regardless of sign.
constexpr uint64_t kNbMask = 0xaaaaaaaaaaaaaaaaULL;

inline uint64_t int2nb(int64_t x) {
  return (uint64_t(x) + kNbMask) ^ kNbMask;
}

inline int64_t nb2int(uint64_t x) {
  return int64_t((x ^ kNbMask) - kNbMask);
}

// zfp's forward decorrelating lifting transform on one 4-vector.
inline void fwd_lift(int64_t& x, int64_t& y, int64_t& z, int64_t& w) {
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
}

inline void inv_lift(int64_t& x, int64_t& y, int64_t& z, int64_t& w) {
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
}

template <class Lift>
void transform(int64_t* v, int dims, Lift&& lift) {
  const int nx = kBlockSide;
  if (dims == 1) {
    lift(v[0], v[1], v[2], v[3]);
    return;
  }
  const int ny = kBlockSide;
  const int nz = dims == 3 ? kBlockSide : 1;
  for (int z = 0; z < nz; ++z)  // along x
    for (int y = 0; y < ny; ++y) {
      int64_t* p = v + nx * (y + ny * z);
      lift(p[0], p[1], p[2], p[3]);
    }
  for (int z = 0; z < nz; ++z)  // along y
    for (int x = 0; x < nx; ++x) {
      int64_t* p = v + x + nx * ny * z;
      lift(p[0 * nx], p[1 * nx], p[2 * nx], p[3 * nx]);
    }
  if (dims == 3)
    for (int y = 0; y < ny; ++y)  // along z
      for (int x = 0; x < nx; ++x) {
        int64_t* p = v + x + nx * y;
        const int s = nx * ny;
        lift(p[0 * s], p[1 * s], p[2 * s], p[3 * s]);
      }
}

/// Sequency-order permutation: coefficients sorted by total frequency
/// (i + j + k), ties broken by linear index — low-frequency (large) first.
const std::array<int, 64>& permutation(int dims) {
  static const auto make = [](int d) {
    std::array<int, 64> perm{};
    const int n = block_points(d);
    std::array<int, 64> idx{};
    std::iota(idx.begin(), idx.begin() + n, 0);
    std::stable_sort(idx.begin(), idx.begin() + n, [d](int a, int b) {
      auto key = [d](int i) {
        const int x = i % 4, y = (i / 4) % 4, z = d == 3 ? i / 16 : 0;
        return x + y + z;
      };
      return key(a) < key(b);
    });
    for (int i = 0; i < n; ++i) perm[size_t(i)] = idx[size_t(i)];
    return perm;
  };
  static const std::array<int, 64> p1 = make(1);
  static const std::array<int, 64> p2 = make(2);
  static const std::array<int, 64> p3 = make(3);
  return dims == 1 ? p1 : dims == 2 ? p2 : p3;
}

/// A bit budget wrapper so fixed-rate blocks never exceed maxbits.
struct BudgetWriter {
  BitWriter& bw;
  size_t left;

  bool put(bool bit) {
    if (left == 0) return false;
    --left;
    bw.put(bit);
    return true;
  }
};

struct BudgetReader {
  BitReader& br;
  size_t left;

  bool get(bool& bit) {
    if (left == 0) return false;
    --left;
    bit = br.get();
    return true;
  }
};

// Planes to code for a block with common exponent emax under fixed-accuracy
// coding: everything at or above the tolerance's exponent, plus guard bits
// covering the transform's worst-case error amplification (zfp's 2 per
// dimension, plus 2 more for this codec's coarser fixed-point scaling).
int max_precision(int emax, int minexp, int dims) {
  return std::clamp(emax - minexp + 2 * (dims + 1) + 2, 0, kIntPrec);
}

}  // namespace

void encode_block(BitWriter& bw, const double* block, const BlockParams& params) {
  const int n = block_points(params.dims);
  BudgetWriter out{bw, params.maxbits};

  // Block-floating-point alignment: common exponent of the largest value.
  double max_abs = 0.0;
  for (int i = 0; i < n; ++i) max_abs = std::max(max_abs, std::fabs(block[i]));
  if (max_abs == 0.0) {
    out.put(false);  // empty block
    return;
  }
  int emax;
  (void)std::frexp(max_abs, &emax);  // 2^(emax-1) <= max_abs < 2^emax
  if (!out.put(true)) return;
  // Biased 12-bit exponent (doubles span ~[-1074, 1024]).
  const uint32_t biased = uint32_t(emax + 2048);
  for (int b = 0; b < 12; ++b)
    if (!out.put((biased >> b) & 1u)) return;

  // Fixed-point conversion and decorrelation.
  int64_t iv[64];
  const double scale = std::ldexp(1.0, kFracBits - emax);
  for (int i = 0; i < n; ++i) iv[i] = int64_t(std::llround(block[i] * scale));
  transform(iv, params.dims, fwd_lift);

  // Reorder to sequency order and map to negabinary.
  const auto& perm = permutation(params.dims);
  uint64_t u[64];
  for (int i = 0; i < n; ++i) u[i] = int2nb(iv[perm[size_t(i)]]);

  // Embedded group-tested bitplane coding (zfp's encode_ints loop).
  const int maxprec = max_precision(emax, params.minexp, params.dims);
  const int kmin = kIntPrec - maxprec;
  int g = 0;  // group boundary: leading coefficients coded verbatim
  for (int k = kIntPrec - 1; k >= kmin; --k) {
    uint64_t x = 0;
    for (int i = 0; i < n; ++i) x |= ((u[i] >> k) & 1u) << i;
    // Verbatim bits for coefficients already inside the group boundary.
    for (int i = 0; i < g; ++i, x >>= 1)
      if (!out.put(x & 1u)) return;
    // Unary run-length growth of the group boundary. For the final
    // coefficient the group-test bit doubles as the data bit (zfp's layout),
    // so no verbatim bit follows it.
    while (g < n) {
      if (!out.put(x != 0)) return;
      if (x == 0) break;
      while (g < n - 1) {
        if (x & 1u) {
          if (!out.put(true)) return;
          break;
        }
        if (!out.put(false)) return;
        x >>= 1;
        ++g;
      }
      x >>= 1;
      ++g;
    }
  }
}

void pad_block(BitWriter& bw, size_t written, size_t target) {
  for (size_t i = written; i < target; ++i) bw.put(false);
}

void decode_block(BitReader& br, double* block, const BlockParams& params) {
  const int n = block_points(params.dims);
  std::fill(block, block + n, 0.0);
  BudgetReader in{br, params.maxbits};

  bool nonzero;
  if (!in.get(nonzero) || !nonzero) return;
  uint32_t biased = 0;
  for (int b = 0; b < 12; ++b) {
    bool bit;
    if (!in.get(bit)) return;
    biased |= uint32_t(bit) << b;
  }
  const int emax = int(biased) - 2048;

  uint64_t u[64] = {};
  const int maxprec = max_precision(emax, params.minexp, params.dims);
  const int kmin = kIntPrec - maxprec;
  int g = 0;
  for (int k = kIntPrec - 1; k >= kmin; --k) {
    bool bit;
    for (int i = 0; i < g; ++i) {
      if (!in.get(bit)) goto done;
      if (bit) u[i] |= uint64_t(1) << k;
    }
    while (g < n) {
      if (!in.get(bit)) goto done;
      if (!bit) break;  // group test: no more ones in this plane
      while (g < n - 1) {
        if (!in.get(bit)) goto done;
        if (bit) break;
        ++g;
      }
      u[g] |= uint64_t(1) << k;
      ++g;
    }
  }
done:
  // Undo negabinary + reorder + transform + scaling.
  const auto& perm = permutation(params.dims);
  int64_t iv[64] = {};
  for (int i = 0; i < n; ++i) iv[perm[size_t(i)]] = nb2int(u[i]);
  transform(iv, params.dims, inv_lift);
  const double scale = std::ldexp(1.0, emax - kFracBits);
  for (int i = 0; i < n; ++i) block[i] = double(iv[i]) * scale;
}

}  // namespace sperr::zfplike
