#pragma once

// ZFP-style block codec (clean-room reproduction of Lindstrom,
// "Fixed-Rate Compressed Floating-Point Arrays", TVCG 2014, and the zfp 1.0
// stream layout ideas): 4^d blocks, block-floating-point alignment to a
// common exponent, a reversible integer decorrelating lifting transform,
// negabinary mapping, and embedded group-tested bitplane coding.
//
// One block = 4 (1-D), 16 (2-D) or 64 (3-D) values. Both fixed-accuracy
// (plane cutoff from a tolerance) and fixed-rate (hard bit budget per block)
// termination are supported — the same two modes the real ZFP offers.

#include <cstdint>

#include "common/bitstream.h"

namespace sperr::zfplike {

inline constexpr int kBlockSide = 4;

/// Per-block coding parameters.
struct BlockParams {
  int dims = 3;          ///< 1, 2 or 3
  int minexp = -1074;    ///< smallest coded bitplane exponent (fixed-accuracy)
  size_t maxbits = SIZE_MAX;  ///< hard per-block bit budget (fixed-rate)
};

/// Encode one block of 4^dims doubles (x fastest). Writes at most
/// params.maxbits bits; in fixed-rate use the caller pads to exactly maxbits
/// via pad_block().
void encode_block(BitWriter& bw, const double* block, const BlockParams& params);

/// Pad the stream with zero bits so the block occupies exactly `target`
/// bits; `written` is the bit count the block actually used.
void pad_block(BitWriter& bw, size_t written, size_t target);

/// Decode one block (4^dims doubles) encoded by encode_block. Reads at most
/// params.maxbits bits; fixed-rate callers must advance the reader to the
/// block boundary themselves (see bits consumed via reader state).
void decode_block(BitReader& br, double* block, const BlockParams& params);

/// Number of values in a block of the given dimensionality.
constexpr int block_points(int dims) {
  return dims == 1 ? 4 : dims == 2 ? 16 : 64;
}

}  // namespace sperr::zfplike
