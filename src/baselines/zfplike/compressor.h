#pragma once

// Volume-level driver for the ZFP-style block codec: cuts a field into 4^d
// blocks (partial blocks padded by edge replication), streams them through
// the block codec, and exposes the two classic ZFP termination modes:
// fixed-accuracy (absolute error tolerance) and fixed-rate (bits per value).

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr::zfplike {

/// Fixed-accuracy compression: reconstruction error bounded by ~tolerance.
std::vector<uint8_t> compress_accuracy(const double* data, Dims dims,
                                       double tolerance);

/// Fixed-rate compression: every block gets exactly round(bpp * 4^d) bits.
std::vector<uint8_t> compress_rate(const double* data, Dims dims, double bpp);

/// Decompress either mode.
Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims);

}  // namespace sperr::zfplike
