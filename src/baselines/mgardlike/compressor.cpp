#include "baselines/mgardlike/compressor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/byteio.h"
#include "baselines/szlike/quant_bins.h"

namespace sperr::mgardlike {

namespace {

constexpr uint32_t kMagic = 0x4b44474d;  // "MGDK"
constexpr int32_t kRawSentinel = INT32_MIN;

size_t anchor_stride(Dims dims, size_t* levels_out) {
  const size_t max_dim = std::max({dims.x, dims.y, dims.z});
  size_t s = 1, levels = 0;
  while (s * 2 <= max_dim && s < 64) {
    s *= 2;
    ++levels;
  }
  if (levels_out) *levels_out = levels;
  return s;
}

/// Piecewise-linear prediction of the midpoint along one axis; falls back to
/// copying the left neighbour at the right edge.
template <class At>
double predict_axis(At&& at, size_t p, size_t h, size_t n) {
  const double l1 = at(p - h);
  if (p + h >= n) return l1;
  return 0.5 * (l1 + at(p + h));
}

/// Same traversal shape as the SZ-like interpolation levels: per stride
/// level, refine along x, then y, then z. `src` supplies the values
/// predictions are computed from (originals during decomposition,
/// reconstructions during decode).
template <class Cb>
void traverse(const Dims& dims, size_t S, const double* src, Cb&& cb) {
  for (size_t s = S; s >= 2; s /= 2) {
    const size_t h = s / 2;
    for (size_t z = 0; z < dims.z; z += s)
      for (size_t y = 0; y < dims.y; y += s)
        for (size_t x = h; x < dims.x; x += s) {
          const size_t row = dims.index(0, y, z);
          cb(row + x,
             predict_axis([&](size_t i) { return src[row + i]; }, x, h, dims.x));
        }
    for (size_t z = 0; z < dims.z; z += s)
      for (size_t y = h; y < dims.y; y += s)
        for (size_t x = 0; x < dims.x; x += h)
          cb(dims.index(x, y, z),
             predict_axis([&](size_t i) { return src[dims.index(x, i, z)]; }, y,
                          h, dims.y));
    for (size_t z = h; z < dims.z; z += s)
      for (size_t y = 0; y < dims.y; y += h)
        for (size_t x = 0; x < dims.x; x += h)
          cb(dims.index(x, y, z),
             predict_axis([&](size_t i) { return src[dims.index(x, y, i)]; }, z,
                          h, dims.z));
    if (s == 2) break;
  }
}

template <class Cb>
void for_each_anchor(const Dims& dims, size_t S, Cb&& cb) {
  for (size_t z = 0; z < dims.z; z += S)
    for (size_t y = 0; y < dims.y; y += S)
      for (size_t x = 0; x < dims.x; x += S) cb(dims.index(x, y, z));
}

}  // namespace

std::vector<uint8_t> compress(const double* data, Dims dims, double tol) {
  if (!(tol > 0.0)) throw std::invalid_argument("mgardlike: tolerance must be > 0");
  size_t levels = 0;
  const size_t S = anchor_stride(dims, &levels);
  // Split the tolerance across the hierarchy: interpolation propagates each
  // level's quantization error to every finer level. (Propagation chains can
  // be longer than levels+1 in the worst case — see the header note.)
  const double bin_width = 2.0 * tol / double(levels + 2);

  std::vector<double> anchors;
  for_each_anchor(dims, S, [&](size_t idx) { anchors.push_back(data[idx]); });

  // True multilevel decomposition: details are residuals against linear
  // interpolation of the *original* coarser values.
  std::vector<int32_t> bins;
  std::vector<double> raw_values;
  traverse(dims, S, data, [&](size_t idx, double pred) {
    const double scaled = (data[idx] - pred) / bin_width;
    if (std::fabs(scaled) > double(1 << 30)) {
      bins.push_back(kRawSentinel);
      raw_values.push_back(data[idx]);
    } else {
      bins.push_back(int32_t(std::llround(scaled)));
    }
  });

  std::vector<uint8_t> out;
  put_u32(out, kMagic);
  put_u64(out, dims.x);
  put_u64(out, dims.y);
  put_u64(out, dims.z);
  put_f64(out, tol);
  put_u64(out, anchors.size());
  for (double a : anchors) put_f64(out, a);
  put_u64(out, raw_values.size());
  for (double v : raw_values) put_f64(out, v);
  const auto bin_stream = szlike::encode_quant_bins(bins);
  put_u64(out, bin_stream.size());
  out.insert(out.end(), bin_stream.begin(), bin_stream.end());
  return out;
}

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims) try {
  ByteReader br(stream, nbytes);
  if (br.u32() != kMagic) return Status::corrupt_stream;
  dims.x = br.u64();
  dims.y = br.u64();
  dims.z = br.u64();
  const double tol = br.f64();
  if (!br.ok() || !plausible_dims(dims) || !(tol > 0.0))
    return Status::corrupt_stream;

  size_t levels = 0;
  const size_t S = anchor_stride(dims, &levels);
  const double bin_width = 2.0 * tol / double(levels + 2);

  const uint64_t num_anchors = br.u64();
  if (num_anchors > br.remaining() / 8) return Status::truncated_stream;
  std::vector<double> anchors(num_anchors);
  for (auto& a : anchors) a = br.f64();
  const uint64_t num_raw = br.u64();
  if (num_raw > br.remaining() / 8) return Status::truncated_stream;
  std::vector<double> raw_values(num_raw);
  for (auto& v : raw_values) v = br.f64();
  const uint64_t bin_len = br.u64();
  if (!br.ok()) return Status::truncated_stream;
  const uint8_t* bin_data = br.raw(bin_len);
  if (!bin_data) return Status::truncated_stream;

  std::vector<int32_t> bins;
  if (const Status s = szlike::decode_quant_bins(bin_data, bin_len, bins);
      s != Status::ok)
    return s;

  out.assign(dims.total(), 0.0);
  size_t apos = 0;
  for_each_anchor(dims, S, [&](size_t idx) {
    if (apos < anchors.size()) out[idx] = anchors[apos++];
  });
  if (apos != anchors.size()) return Status::corrupt_stream;

  // Reconstruction interpolates from *reconstructed* coarser values — this
  // is where the per-level error budget gets consumed.
  size_t bpos = 0, rpos = 0;
  bool ok = true;
  traverse(dims, S, out.data(), [&](size_t idx, double pred) {
    if (bpos >= bins.size()) {
      ok = false;
      return;
    }
    const int32_t bin = bins[bpos++];
    if (bin == kRawSentinel) {
      if (rpos >= raw_values.size()) {
        ok = false;
        return;
      }
      out[idx] = raw_values[rpos++];
    } else {
      out[idx] = pred + double(bin) * bin_width;
    }
  });
  return ok ? Status::ok : Status::corrupt_stream;
} catch (const std::bad_alloc&) {
  return Status::resource_exhausted;
}

}  // namespace sperr::mgardlike
