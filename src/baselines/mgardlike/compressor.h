#pragma once

// MGARD-style compressor (clean-room reproduction of the multilevel idea in
// Ainsworth et al., "Multilevel techniques for compression and reduction of
// scientific data"): the field is decomposed over a hierarchy of nested
// grids; each level's detail coefficients are the residuals against
// piecewise-linear interpolation from the next-coarser level. Coefficients
// are quantized with a per-level budget that splits the user tolerance
// across the hierarchy (quantization errors propagate coarse-to-fine through
// the interpolation, so each of the L+1 levels receives tol/(L+1)), then
// entropy-coded with the shared quantization-bin codec.
//
// Note: like the real MGARD (paper footnote 1, §VI-C, which reports bound
// violations at tight tolerances), this scheme has no hard point-wise
// guarantee: quantization errors from coarse levels propagate through the
// interpolation chains (up to three axis passes per level), so worst-case
// error can exceed the tolerance even though typical error stays below it.
// The Fig. 9 harness measures and reports the achieved max error, exactly as
// the paper does before excluding MGARD's violating runs.

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr::mgardlike {

/// Compress with absolute error tolerance tol (> 0).
std::vector<uint8_t> compress(const double* data, Dims dims, double tol);

/// Decompress a stream produced by compress().
Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims);

}  // namespace sperr::mgardlike
