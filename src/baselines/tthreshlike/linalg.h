#pragma once

// Dense symmetric eigensolver (cyclic Jacobi) used by the TTHRESH-like
// baseline to compute HOSVD factor matrices from Gram matrices of tensor
// unfoldings. Self-contained — no BLAS/LAPACK dependency.

#include <cstddef>
#include <vector>

namespace sperr::tthreshlike {

/// Row-major dense matrix, just enough for the Tucker machinery.
struct Matrix {
  size_t rows = 0, cols = 0;
  std::vector<double> a;

  Matrix() = default;
  Matrix(size_t r, size_t c) : rows(r), cols(c), a(r * c, 0.0) {}

  double& operator()(size_t i, size_t j) { return a[i * cols + j]; }
  double operator()(size_t i, size_t j) const { return a[i * cols + j]; }
};

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
/// On return `evals` holds eigenvalues in descending order and the columns
/// of `evecs` the matching orthonormal eigenvectors.
void jacobi_eigh(const Matrix& sym, std::vector<double>& evals, Matrix& evecs,
                 int max_sweeps = 30, double tol = 1e-12);

}  // namespace sperr::tthreshlike
