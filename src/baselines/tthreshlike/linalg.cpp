#include "baselines/tthreshlike/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sperr::tthreshlike {

void jacobi_eigh(const Matrix& sym, std::vector<double>& evals, Matrix& evecs,
                 int max_sweeps, double tol) {
  const size_t n = sym.rows;
  Matrix a = sym;
  evecs = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) evecs(i, i) = 1.0;

  // Scale-aware convergence threshold.
  double frob = 0.0;
  for (double v : a.a) frob += v * v;
  const double stop = tol * std::sqrt(frob) / double(n ? n : 1);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p + 1 < n; ++p)
      for (size_t q = p + 1; q < n; ++q) off = std::max(off, std::fabs(a(p, q)));
    if (off <= stop) break;

    for (size_t p = 0; p + 1 < n; ++p)
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= stop * 1e-3) continue;
        const double app = a(p, p), aqq = a(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation to A (both sides) and accumulate into evecs.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = evecs(k, p), vkq = evecs(k, q);
          evecs(k, p) = c * vkp - s * vkq;
          evecs(k, q) = s * vkp + c * vkq;
        }
      }
  }

  // Sort by descending eigenvalue, permuting eigenvector columns to match.
  evals.resize(n);
  for (size_t i = 0; i < n; ++i) evals[i] = a(i, i);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t(0));
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return evals[x] > evals[y]; });

  std::vector<double> sorted_vals(n);
  Matrix sorted_vecs(n, n);
  for (size_t j = 0; j < n; ++j) {
    sorted_vals[j] = evals[order[j]];
    for (size_t i = 0; i < n; ++i) sorted_vecs(i, j) = evecs(i, order[j]);
  }
  evals = std::move(sorted_vals);
  evecs = std::move(sorted_vecs);
}

}  // namespace sperr::tthreshlike
