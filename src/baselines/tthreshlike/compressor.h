#pragma once

// TTHRESH-style compressor (clean-room reproduction of the algorithmic core
// of Ballester-Ripoll, Lindstrom & Pajarola, "TTHRESH: Tensor compression
// for multidimensional visual data", TVCG 2019): a Tucker/HOSVD
// decomposition produces *data-dependent* orthonormal bases per mode; the
// resulting core tensor concentrates energy far more aggressively than any
// fixed transform, and is then coded bitplane-wise (here with the project's
// SPECK coder — an embedded coder playing the role of TTHRESH's own
// bitplane/RLE scheme). Factor matrices travel quantized to 16 bits.
//
// Like the real TTHRESH, this baseline targets an *average* error (a PSNR
// target), not a point-wise bound (paper §VI-C/D handles it accordingly).

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr::tthreshlike {

/// Compress a 3-D field targeting the given PSNR (dB, peak = data range).
std::vector<uint8_t> compress(const double* data, Dims dims, double target_psnr);

/// Decompress a stream produced by compress().
Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims);

}  // namespace sperr::tthreshlike
