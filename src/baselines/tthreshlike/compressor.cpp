#include "baselines/tthreshlike/compressor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/byteio.h"
#include "common/stats.h"
#include "baselines/tthreshlike/linalg.h"
#include "speck/decoder.h"
#include "speck/encoder.h"

namespace sperr::tthreshlike {

namespace {

constexpr uint32_t kMagic = 0x4b485454;  // "TTHK"
constexpr double kFactorScale = 32767.0;

size_t mode_size(Dims d, int mode) {
  return mode == 0 ? d.x : mode == 1 ? d.y : d.z;
}

/// Gram matrix of the mode-m unfolding: G = X_(m) * X_(m)^T, an n_m x n_m
/// symmetric matrix whose eigenvectors are the HOSVD factor of that mode.
Matrix gram(const std::vector<double>& x, Dims d, int mode) {
  const size_t n = mode_size(d, mode);
  Matrix g(n, n);
  // Accumulate outer products fiber by fiber.
  std::vector<double> fiber(n);
  const size_t n_fibers = d.total() / n;
  for (size_t f = 0; f < n_fibers; ++f) {
    // Decompose the fiber id into the two non-mode coordinates.
    size_t c1, c2;
    if (mode == 0) {
      c1 = f % d.y;
      c2 = f / d.y;
      for (size_t i = 0; i < n; ++i) fiber[i] = x[d.index(i, c1, c2)];
    } else if (mode == 1) {
      c1 = f % d.x;
      c2 = f / d.x;
      for (size_t i = 0; i < n; ++i) fiber[i] = x[d.index(c1, i, c2)];
    } else {
      c1 = f % d.x;
      c2 = f / d.x;
      for (size_t i = 0; i < n; ++i) fiber[i] = x[d.index(c1, c2, i)];
    }
    for (size_t i = 0; i < n; ++i) {
      const double fi = fiber[i];
      if (fi == 0.0) continue;
      for (size_t j = i; j < n; ++j) g(i, j) += fi * fiber[j];
    }
  }
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

/// Mode-m product: Y = X x_m U^T when transpose, else X x_m U.
/// U is n x n (square factors: full HOSVD, truncation happens in coding).
std::vector<double> mode_product(const std::vector<double>& x, Dims d, int mode,
                                 const Matrix& u, bool transpose) {
  const size_t n = mode_size(d, mode);
  std::vector<double> y(d.total(), 0.0);
  std::vector<double> in(n), out(n);
  const size_t n_fibers = d.total() / n;
  for (size_t f = 0; f < n_fibers; ++f) {
    size_t c1, c2;
    auto fiber_index = [&](size_t i) {
      return mode == 0 ? d.index(i, c1, c2)
             : mode == 1 ? d.index(c1, i, c2)
                         : d.index(c1, c2, i);
    };
    if (mode == 0) {
      c1 = f % d.y;
      c2 = f / d.y;
    } else {
      c1 = f % d.x;
      c2 = f / d.x;
    }
    for (size_t i = 0; i < n; ++i) in[i] = x[fiber_index(i)];
    for (size_t r = 0; r < n; ++r) {
      double acc = 0.0;
      if (transpose) {
        for (size_t i = 0; i < n; ++i) acc += u(i, r) * in[i];  // U^T row r
      } else {
        for (size_t i = 0; i < n; ++i) acc += u(r, i) * in[i];
      }
      out[r] = acc;
    }
    for (size_t i = 0; i < n; ++i) y[fiber_index(i)] = out[i];
  }
  return y;
}

void put_factor(std::vector<uint8_t>& out, const Matrix& u) {
  put_u32(out, uint32_t(u.rows));
  for (double v : u.a) {
    const double clamped = std::clamp(v, -1.0, 1.0);
    put_u16(out, uint16_t(int16_t(std::lround(clamped * kFactorScale))));
  }
}

Matrix get_factor(ByteReader& br) {
  const uint32_t n = br.u32();
  if (uint64_t(n) * n * 2 > br.remaining()) return {};  // leaves br !ok on next read
  Matrix u(n, n);
  for (auto& v : u.a) v = double(int16_t(br.u16())) / kFactorScale;
  return u;
}

}  // namespace

std::vector<uint8_t> compress(const double* data, Dims dims, double target_psnr) {
  if (!(target_psnr > 0.0))
    throw std::invalid_argument("tthreshlike: target PSNR must be > 0");
  const size_t n = dims.total();
  std::vector<double> x(data, data + n);

  // HOSVD: one factor per mode (degenerate modes get the 1x1 identity).
  Matrix factors[3];
  std::vector<double> evals;
  for (int m = 0; m < 3; ++m) {
    const Matrix g = gram(x, dims, m);
    jacobi_eigh(g, evals, factors[m]);
  }

  // Core = X x1 U1^T x2 U2^T x3 U3^T — orthogonal, so the core's L2 error
  // maps 1:1 onto the reconstruction's L2 error.
  std::vector<double> core = x;
  for (int m = 0; m < 3; ++m)
    if (mode_size(dims, m) > 1) core = mode_product(core, dims, m, factors[m], true);

  // Translate the PSNR target (peak = range) into a SPECK quantization step:
  // rmse_target = range / 10^(psnr/20); uniform mid-riser quantization has
  // rmse ~ q / sqrt(12); halve for factor-quantization headroom.
  const FieldStats fs = compute_stats(data, n);
  const double range = fs.range() > 0 ? fs.range() : 1.0;
  const double rmse_target = range / std::pow(10.0, target_psnr / 20.0);
  const double q = std::max(rmse_target * std::sqrt(12.0) * 0.5, range * 1e-16);

  const auto core_stream = speck::encode(core.data(), dims, q);

  std::vector<uint8_t> out;
  put_u32(out, kMagic);
  put_u64(out, dims.x);
  put_u64(out, dims.y);
  put_u64(out, dims.z);
  put_f64(out, target_psnr);
  for (int m = 0; m < 3; ++m) put_factor(out, factors[m]);
  put_u64(out, core_stream.size());
  out.insert(out.end(), core_stream.begin(), core_stream.end());
  return out;
}

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims) try {
  ByteReader br(stream, nbytes);
  if (br.u32() != kMagic) return Status::corrupt_stream;
  dims.x = br.u64();
  dims.y = br.u64();
  dims.z = br.u64();
  (void)br.f64();  // target PSNR: informational
  if (!br.ok() || !plausible_dims(dims)) return Status::corrupt_stream;

  Matrix factors[3];
  for (auto& f : factors) f = get_factor(br);
  if (!br.ok()) return Status::truncated_stream;
  // Factors must match the declared extents (prevents mismatched products).
  if (factors[0].rows != dims.x || factors[1].rows != dims.y ||
      factors[2].rows != dims.z)
    return Status::corrupt_stream;
  const uint64_t core_len = br.u64();
  if (!br.ok()) return Status::truncated_stream;
  const uint8_t* core_data = br.raw(core_len);
  if (!core_data) return Status::truncated_stream;

  std::vector<double> core(dims.total());
  if (const Status s = speck::decode(core_data, core_len, dims, core.data());
      s != Status::ok)
    return s;

  // Reconstruct: X = C x1 U1 x2 U2 x3 U3.
  out = std::move(core);
  for (int m = 2; m >= 0; --m)
    if (mode_size(dims, m) > 1) out = mode_product(out, dims, m, factors[m], false);
  return Status::ok;
} catch (const std::bad_alloc&) {
  return Status::resource_exhausted;
}

}  // namespace sperr::tthreshlike
