#pragma once

// Multi-variable archive: several named fields (each its own SPERR container,
// possibly with different modes/tolerances) bundled into one blob/file — the
// shape of the paper's motivating use cases (§I: a CESM-LENS-style community
// archive stores dozens of variables per snapshot, each with its own quality
// contract).
//
// Layout (little endian):
//   u32 magic 'SPAR' | u32 count |
//   per variable { u16 name_len | name bytes | u64 blob_len | blob }
// Each blob is a standard SPERR container (see docs/FORMAT.md), so single
// variables can be extracted and decompressed without touching the rest.

#include <cstdint>
#include <string>
#include <vector>

#include "common/resource.h"
#include "common/types.h"
#include "sperr/config.h"

namespace sperr::archive {

struct Entry {
  std::string name;
  std::vector<uint8_t> container;  ///< a sperr::compress() result
};

class Writer {
 public:
  /// Compress and append a variable. Names must be unique and non-empty
  /// (enforced at finish()). Throws what sperr::compress throws.
  void add(const std::string& name, const double* data, Dims dims,
           const Config& cfg, Stats* stats = nullptr);

  /// Append an existing container under a name (e.g. re-bundling).
  void add_container(const std::string& name, std::vector<uint8_t> container);

  /// Serialize the archive. Returns an empty vector (and leaves the writer
  /// intact) if validation fails — duplicate or empty names.
  [[nodiscard]] std::vector<uint8_t> finish() const;

  [[nodiscard]] size_t count() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
};

class Reader {
 public:
  /// Parse an archive produced by Writer::finish. Entries reference the
  /// caller's buffer — it must outlive the Reader.
  static Status open(const uint8_t* data, size_t size, Reader& out);

  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }

  /// Decompress one variable by name; not_found -> invalid_argument.
  /// All three accessors forward `limits` (nullptr = the finite
  /// ResourceLimits::defaults()) to the underlying decoder, so a hostile
  /// blob inside an otherwise well-formed archive is answered
  /// resource_exhausted instead of sizing an allocation from its header.
  Status extract(const std::string& name, std::vector<double>& out, Dims& dims,
                 const ResourceLimits* limits = nullptr) const;

  /// Fault-isolated extract: sperr::decompress_tolerant semantics on one
  /// variable (damage in other variables' containers does not matter here —
  /// each blob is independent by construction).
  Status extract_tolerant(const std::string& name, Recovery policy,
                          std::vector<double>& out, Dims& dims,
                          DecodeReport* report = nullptr,
                          const ResourceLimits* limits = nullptr) const;

  /// Integrity audit of one variable's container (sperr::verify_container).
  Status verify(const std::string& name, DecodeReport* report = nullptr,
                const ResourceLimits* limits = nullptr) const;

  /// Raw container bytes for one variable (for re-bundling / inspection).
  [[nodiscard]] const std::vector<uint8_t>* container(const std::string& name) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<uint8_t>> blobs_;
};

}  // namespace sperr::archive
