#include "sperr/archive.h"

#include <algorithm>

#include "common/byteio.h"
#include "sperr/sperr.h"

namespace sperr::archive {

namespace {

constexpr uint32_t kMagic = 0x52415053;  // "SPAR"

}  // namespace

void Writer::add(const std::string& name, const double* data, Dims dims,
                 const Config& cfg, Stats* stats) {
  entries_.push_back({name, compress(data, dims, cfg, stats)});
}

void Writer::add_container(const std::string& name, std::vector<uint8_t> container) {
  entries_.push_back({name, std::move(container)});
}

std::vector<uint8_t> Writer::finish() const {
  // Validate names: unique, non-empty, and short enough for the u16 field.
  for (size_t i = 0; i < entries_.size(); ++i) {
    const auto& n = entries_[i].name;
    if (n.empty() || n.size() > 0xffff) return {};
    for (size_t j = i + 1; j < entries_.size(); ++j)
      if (entries_[j].name == n) return {};
  }

  std::vector<uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, uint32_t(entries_.size()));
  for (const auto& e : entries_) {
    put_u16(out, uint16_t(e.name.size()));
    out.insert(out.end(), e.name.begin(), e.name.end());
    put_u64(out, e.container.size());
    out.insert(out.end(), e.container.begin(), e.container.end());
  }
  return out;
}

Status Reader::open(const uint8_t* data, size_t size, Reader& out) {
  out.names_.clear();
  out.blobs_.clear();

  ByteReader br(data, size);
  if (br.u32() != kMagic) return Status::corrupt_stream;
  const uint32_t count = br.u32();
  if (!br.ok()) return Status::truncated_stream;
  // Each entry needs at least 2 + 1 + 8 bytes of framing.
  if (count > br.remaining() / 11) return Status::truncated_stream;

  for (uint32_t i = 0; i < count; ++i) {
    const uint16_t name_len = br.u16();
    const uint8_t* name = br.raw(name_len);
    const uint64_t blob_len = br.u64();
    if (!br.ok() || !name || name_len == 0) return Status::truncated_stream;
    const uint8_t* blob = br.raw(blob_len);
    if (!blob) return Status::truncated_stream;
    out.names_.emplace_back(reinterpret_cast<const char*>(name), name_len);
    out.blobs_.emplace_back(blob, blob + blob_len);
  }
  return Status::ok;
}

Status Reader::extract(const std::string& name, std::vector<double>& out,
                       Dims& dims, const ResourceLimits* limits) const {
  const auto* blob = container(name);
  if (!blob) return Status::invalid_argument;
  return decompress(blob->data(), blob->size(), out, dims, limits);
}

Status Reader::extract_tolerant(const std::string& name, Recovery policy,
                                std::vector<double>& out, Dims& dims,
                                DecodeReport* report,
                                const ResourceLimits* limits) const {
  const auto* blob = container(name);
  if (!blob) return Status::invalid_argument;
  return decompress_tolerant(blob->data(), blob->size(), policy, out, dims, report,
                             limits);
}

Status Reader::verify(const std::string& name, DecodeReport* report,
                      const ResourceLimits* limits) const {
  const auto* blob = container(name);
  if (!blob) return Status::invalid_argument;
  return verify_container(blob->data(), blob->size(), report, limits);
}

const std::vector<uint8_t>* Reader::container(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) return nullptr;
  return &blobs_[size_t(it - names_.begin())];
}

}  // namespace sperr::archive
