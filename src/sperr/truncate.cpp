#include <algorithm>
#include <cmath>

#include "common/byteio.h"
#include "common/checksum.h"
#include "speck/common.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/sperr.h"

namespace sperr {

// Container-level truncation (paper §VII, the embedded property): any prefix
// of a SPECK stream is a valid, coarser encoding, so a fixed-rate container
// can be cut down to a lower rate byte-for-byte — no recompression, no
// access to the original data. Streaming servers use this to serve one
// archive at many rates.
Status truncate_fixed_rate(const uint8_t* stream, size_t nbytes, double new_bpp,
                           std::vector<uint8_t>& out) try {
  if (!(new_bpp > 0.0)) return Status::invalid_argument;

  std::vector<uint8_t> inner;
  ContainerHeader hdr;
  size_t payload_pos = 0;
  if (const Status s = open_container(stream, nbytes, inner, hdr, &payload_pos);
      s != Status::ok)
    return s;
  // Only the fixed-rate mode is safely truncatable: a PWE container's
  // outlier corrections are not embedded, so cutting it would silently void
  // the error guarantee.
  if (hdr.mode != Mode::fixed_rate) return Status::invalid_argument;

  const auto chunks = make_chunks(hdr.dims, hdr.chunk_dims);
  if (chunks.size() != hdr.entries.size()) return Status::corrupt_stream;

  ContainerHeader new_hdr = hdr;
  new_hdr.version = ContainerHeader::kVersion;  // v1/v2 input re-wraps as v3
  new_hdr.quality = std::min(new_bpp, hdr.quality);
  new_hdr.entries.clear();

  ByteReader br(inner.data(), inner.size());
  (void)br.raw(payload_pos);  // skip the header; streams follow
  std::vector<std::vector<uint8_t>> new_streams;
  new_streams.reserve(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    const ChunkEntry& e = hdr.entries[i];
    const uint8_t* sp = br.raw(e.speck_len);
    (void)br.raw(e.outlier_len);  // fixed-rate chunks have none; skip anyway
    if (e.speck_len && !sp) return Status::truncated_stream;

    // Re-head the SPECK stream with the clipped bit count.
    ByteReader shr(sp, size_t(e.speck_len));
    speck::Header shdr;
    if (const Status s = shdr.deserialize(shr); s != Status::ok) return s;
    const auto budget =
        uint64_t(std::llround(new_bpp * double(chunks[i].dims.total())));
    shdr.nbits = std::min<uint64_t>(shdr.nbits, std::max<uint64_t>(budget, 8));
    const size_t payload_bytes =
        std::min<size_t>((shdr.nbits + 7) / 8, size_t(e.speck_len) - shr.pos());

    std::vector<uint8_t> cut;
    shdr.serialize(cut);
    cut.insert(cut.end(), sp + shr.pos(), sp + shr.pos() + payload_bytes);
    // The cut stream is new bytes — recompute its checksum; the chunk mean
    // carries over (truncation does not change what the data was).
    ChunkEntry ne(cut.size(), 0);
    ne.checksum = xxhash64(cut.data(), cut.size());
    ne.mean = e.mean;
    new_hdr.entries.push_back(ne);
    new_streams.push_back(std::move(cut));
  }

  std::vector<uint8_t> new_inner;
  new_hdr.serialize(new_inner);
  for (const auto& s : new_streams)
    new_inner.insert(new_inner.end(), s.begin(), s.end());
  out = wrap_container(std::move(new_inner), true);
  return Status::ok;
} catch (const std::bad_alloc&) {
  return Status::resource_exhausted;
}

}  // namespace sperr
