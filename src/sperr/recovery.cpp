// Fault-isolated chunk decoding (the recovery layer behind
// sperr::decompress_tolerant and sperr::verify_container). The paper's
// chunked design makes each 256^3 chunk an independent stream; container v3
// adds a per-chunk XXH64 and a header self-checksum, so this layer can (1)
// attribute damage to exact chunk indices, (2) decode every intact chunk
// bit-identically to a clean decode, and (3) patch damaged chunks per the
// caller's Recovery policy instead of discarding the whole archive.

#include <algorithm>
#include <cmath>

#include "common/arena.h"
#include "common/byteio.h"
#include "common/checksum.h"
#include "common/timer.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/pipeline.h"
#include "sperr/recovery.h"
#include "sperr/sperr.h"

#ifdef SPERR_HAVE_OPENMP
#include <omp.h>
#endif

namespace sperr {

namespace detail {

namespace {

/// Tolerant counterpart of unwrap_container: recover as many inner bytes as
/// possible. Corrupt lossless blocks are zero-filled (recorded in
/// `bad_blocks`); a payload shorter than advertised yields its prefix.
Status unwrap_tolerant(const uint8_t* data, size_t size, std::vector<uint8_t>& inner,
                       std::vector<size_t>& bad_blocks, uint8_t* version,
                       const ResourceLimits* limits) {
  ByteReader br(data, size);
  if (br.u32() != ContainerHeader::kOuterMagic) return Status::corrupt_stream;
  const uint8_t ver = br.u8();
  if (ver < ContainerHeader::kMinVersion || ver > ContainerHeader::kVersion)
    return Status::corrupt_stream;
  if (version) *version = ver;
  const uint8_t lossless_flag = br.u8();
  const uint64_t len = br.u64();
  if (!br.ok()) return Status::truncated_stream;
  const size_t avail = std::min<uint64_t>(len, br.remaining());
  const uint8_t* payload = br.base() + br.pos();

  if (lossless_flag) {
    const Status s = lossless::decompress_tolerant(payload, avail, inner, bad_blocks,
                                                   /*num_threads=*/0, limits);
    // corrupt_block means the framing held and the good blocks decoded —
    // recoverable. Anything else destroyed the lossless framing itself.
    return s == Status::corrupt_block ? Status::ok : s;
  }
  inner.assign(payload, payload + avail);
  return Status::ok;
}

}  // namespace

Status open_tolerant(const uint8_t* stream, size_t nbytes, Recovery policy,
                     OpenedContainer& oc, DecodeReport* report,
                     const ResourceLimits* limits) {
  uint8_t version = ContainerHeader::kVersion;
  Status s;
  if (policy == Recovery::fail_fast) {
    size_t bad_block = 0;
    s = unwrap_container(stream, nbytes, oc.inner, &bad_block, &version, limits);
    if (s == Status::corrupt_block && report)
      report->lossless_bad_blocks.push_back(bad_block);
  } else {
    std::vector<size_t> bad_blocks;
    s = unwrap_tolerant(stream, nbytes, oc.inner, bad_blocks, &version, limits);
    if (report) report->lossless_bad_blocks = std::move(bad_blocks);
  }
  if (report) report->version = version;
  if (s != Status::ok) return s;

  ByteReader br(oc.inner.data(), oc.inner.size());
  if (const Status hs = oc.hdr.deserialize(br, version); hs != Status::ok) return hs;

  // Both chunk counts are header-declared: the directory's entry count and
  // the grid the extents imply. Admit both before sizing anything from them
  // (enumerating the grid of a huge-dims/tiny-chunks header is itself a
  // multi-gigabyte allocation).
  const ResourceLimits& rl = effective_limits(limits);
  if (!rl.admits_chunks(oc.hdr.entries.size()) ||
      !rl.admits_chunks(chunk_count_bound(oc.hdr.dims, oc.hdr.chunk_dims)))
    return Status::resource_exhausted;

  oc.chunks = make_chunks(oc.hdr.dims, oc.hdr.chunk_dims);
  if (oc.chunks.size() != oc.hdr.entries.size()) return Status::corrupt_stream;
  if (report) report->header_ok = true;

  // Slice the payload: each chunk's streams start where the previous ones
  // ended, clamped to the bytes actually recovered. The directory lengths are
  // untrusted u64s (v1/v2 carry no header checksum, and a v3 checksum is
  // attacker-computable), so never form `speck_len + outlier_len` or
  // `pos + total` where the sum can wrap: a wrapped total could masquerade as
  // a small intact extent while the advertised lengths stay huge.
  oc.slices.resize(oc.chunks.size());
  size_t pos = br.pos();  // deserialize() read from inner, so pos <= inner.size()
  for (size_t i = 0; i < oc.chunks.size(); ++i) {
    const ChunkEntry& e = oc.hdr.entries[i];
    ChunkSlice& sl = oc.slices[i];
    sl.offset = pos;
    const bool lens_ok = e.speck_len <= UINT64_MAX - e.outlier_len;
    const uint64_t want = lens_ok ? e.total_len() : UINT64_MAX;
    const size_t have = std::min<uint64_t>(want, oc.inner.size() - pos);
    sl.speck_avail = std::min<uint64_t>(e.speck_len, have);
    sl.outlier_avail = have - sl.speck_avail;
    sl.intact = lens_ok && have == want;
    // Saturate at end-of-payload once a chunk overruns it: later chunks then
    // report truncation at the stream tail instead of aliasing earlier
    // payload bytes, and `pos <= inner.size()` holds on every iteration.
    pos = sl.intact ? pos + size_t(want) : oc.inner.size();
  }
  return Status::ok;
}

ChunkReport audit_chunk(const OpenedContainer& oc, size_t i) {
  ChunkReport r;
  const ChunkEntry& e = oc.hdr.entries[i];
  const ChunkSlice& sl = oc.slices[i];
  r.index = i;
  r.offset = sl.offset;
  r.speck_len = e.speck_len;
  r.outlier_len = e.outlier_len;
  if (!sl.intact) {
    r.status = Status::truncated_stream;
    return r;
  }
  if (oc.hdr.has_integrity()) {
    r.checksum_present = true;
    r.checksum_stored = e.checksum;
    r.checksum_computed =
        xxhash64(oc.inner.data() + sl.offset, sl.speck_avail + sl.outlier_avail);
    r.checksum_ok = r.checksum_computed == r.checksum_stored;
    if (!r.checksum_ok) r.status = Status::corrupt_chunk;
  }
  return r;
}

ChunkReport decode_chunk(const OpenedContainer& oc, size_t i, Recovery policy,
                         double* buf, Arena* arena, int intra_threads) {
  Timer timer;
  ChunkReport r = audit_chunk(oc, i);
  const ChunkEntry& e = oc.hdr.entries[i];
  const ChunkSlice& sl = oc.slices[i];
  const Dims cdims = oc.chunks[i].dims;
  const size_t n = cdims.total();
  const uint8_t* sp = oc.inner.data() + sl.offset;
  const uint8_t* op = sp + sl.speck_avail;

  if (!r.damaged()) {
    // An intact slice has avail == advertised; decode from the clamped avail
    // extents regardless so no directory value can size a read.
    const Status cs = pipeline::decode(sp, sl.speck_avail, op, sl.outlier_avail,
                                       cdims, buf, arena, intra_threads);
    if (cs != Status::ok) r.status = cs;  // possible on v1/v2 (no checksums)
  }

  if (r.damaged()) {
    switch (policy) {
      case Recovery::fail_fast:
        std::fill(buf, buf + n, 0.0);  // leave nothing half-decoded behind
        break;
      case Recovery::zero_fill:
        std::fill(buf, buf + n, 0.0);
        r.action = ChunkAction::zeroed;
        break;
      case Recovery::coarse_fill: {
        // Best-effort: decode whatever SPECK prefix survives (the stream is
        // embedded, so any prefix is a coarser encoding). Outlier
        // corrections are skipped — they are not trustworthy here and their
        // energy is within the tolerance anyway. If even the SPECK header is
        // gone, fall back to the directory's chunk-mean DC value.
        std::fill(buf, buf + n, 0.0);
        bool coarse_ok = false;
        if (sl.speck_avail > 0 &&
            pipeline::decode(sp, sl.speck_avail, nullptr, 0, cdims, buf, arena,
                             intra_threads) == Status::ok) {
          coarse_ok = true;
          for (size_t k = 0; k < n; ++k)
            if (!std::isfinite(buf[k])) {
              coarse_ok = false;
              break;
            }
        }
        if (coarse_ok) {
          r.action = ChunkAction::coarse;
        } else {
          const double dc =
              oc.hdr.has_integrity() && std::isfinite(e.mean) ? e.mean : 0.0;
          std::fill(buf, buf + n, dc);
          r.action = ChunkAction::dc_fill;
        }
        break;
      }
    }
  }
  r.seconds = timer.seconds();
  return r;
}

}  // namespace detail

Status decompress_tolerant(const uint8_t* stream, size_t nbytes, Recovery policy,
                           std::vector<double>& out, Dims& dims,
                           DecodeReport* report, const ResourceLimits* limits) try {
  DecodeReport local;
  DecodeReport& rep = report ? *report : local;
  rep = DecodeReport{};
  rep.policy = policy;
  Timer timer;

  detail::OpenedContainer oc;
  if (const Status s =
          detail::open_tolerant(stream, nbytes, policy, oc, &rep, limits);
      s != Status::ok) {
    rep.status = s;
    rep.seconds = timer.seconds();
    return s;
  }

  // The header parsed, but its extents size the output field — admit them
  // (and carve them from the shared budget, when one is attached) before
  // the assign below commits the allocation. The per-chunk scratch buffers
  // are bounded by the largest chunk, itself bounded by the field.
  const ResourceLimits& rl = effective_limits(limits);
  const uint64_t field_bytes = uint64_t(oc.hdr.dims.total()) * sizeof(double);
  Reservation budget_hold;
  if (!rl.admits_output(field_bytes) || !rl.admits_working(field_bytes) ||
      !budget_hold.acquire(rl.budget, field_bytes)) {
    rep.status = Status::resource_exhausted;
    rep.seconds = timer.seconds();
    return rep.status;
  }

  dims = oc.hdr.dims;
  out.assign(dims.total(), 0.0);
  rep.chunks.resize(oc.chunks.size());

  // Single-chunk containers cannot use the chunk-parallel loop below, so
  // let the SPECK decoder's intra-chunk lanes (0 = auto) use the machine
  // instead. The decode is identical at every lane count, so this is a
  // pure wall-clock decision.
  const int intra_threads = oc.chunks.size() == 1 ? 0 : 1;

#ifdef SPERR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (size_t i = 0; i < oc.chunks.size(); ++i) {
    Arena& arena = tls_arena();
    arena.reset();
    double* buf = arena.alloc<double>(oc.chunks[i].dims.total());
    std::fill(buf, buf + oc.chunks[i].dims.total(), 0.0);
    rep.chunks[i] = detail::decode_chunk(oc, i, policy, buf, &arena, intra_threads);
    scatter_chunk(buf, oc.chunks[i], out.data(), dims);
  }

  for (const ChunkReport& c : rep.chunks) {
    if (!c.damaged()) continue;
    ++rep.damaged;
    if (c.action != ChunkAction::none) ++rep.recovered;
  }
  if (policy == Recovery::fail_fast && rep.damaged > 0) {
    // Deterministic attribution: the lowest damaged chunk index wins, no
    // matter which OpenMP worker saw its failure first.
    rep.status = rep.chunks[rep.first_damaged()].status;
    rep.field_valid = false;
  } else {
    rep.status = Status::ok;
    rep.field_valid = true;
  }
  rep.seconds = timer.seconds();
  return rep.status;
} catch (const std::bad_alloc&) {
  // Belt and braces: the limits above should have rejected anything this
  // large, but a genuinely out-of-memory machine still gets an answer.
  if (report) report->status = Status::resource_exhausted;
  return Status::resource_exhausted;
}

Status verify_container(const uint8_t* stream, size_t nbytes,
                        DecodeReport* report, const ResourceLimits* limits) try {
  DecodeReport local;
  DecodeReport& rep = report ? *report : local;
  rep = DecodeReport{};
  rep.policy = Recovery::zero_fill;  // audit everything; never stop early
  Timer timer;

  detail::OpenedContainer oc;
  if (const Status s = detail::open_tolerant(stream, nbytes, Recovery::zero_fill,
                                             oc, &rep, limits);
      s != Status::ok) {
    rep.status = s;
    rep.seconds = timer.seconds();
    return s;
  }

  rep.chunks.resize(oc.chunks.size());
  for (size_t i = 0; i < oc.chunks.size(); ++i) {
    rep.chunks[i] = detail::audit_chunk(oc, i);
    if (rep.chunks[i].damaged()) ++rep.damaged;
  }
  rep.field_valid = false;  // nothing was reconstructed
  rep.status = rep.damaged > 0 ? Status::corrupt_chunk
               : rep.lossless_bad_blocks.empty() ? Status::ok
                                                 : Status::corrupt_block;
  rep.seconds = timer.seconds();
  return rep.status;
} catch (const std::bad_alloc&) {
  if (report) report->status = Status::resource_exhausted;
  return Status::resource_exhausted;
}

}  // namespace sperr
