#include <algorithm>

#include "common/arena.h"
#include "common/byteio.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/pipeline.h"
#include "sperr/sperr.h"

#ifdef SPERR_HAVE_OPENMP
#include <omp.h>
#endif

namespace sperr {

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims) try {
  std::vector<uint8_t> inner;
  if (const Status s = unwrap_container(stream, nbytes, inner); s != Status::ok)
    return s;

  ByteReader br(inner.data(), inner.size());
  ContainerHeader hdr;
  if (const Status s = hdr.deserialize(br); s != Status::ok) return s;

  const auto chunks = make_chunks(hdr.dims, hdr.chunk_dims);
  if (chunks.size() != hdr.chunk_lens.size()) return Status::corrupt_stream;

  // Slice the payload into per-chunk streams up front so chunks can decode
  // in parallel.
  struct Slice {
    const uint8_t* speck;
    size_t speck_len;
    const uint8_t* outlier;
    size_t outlier_len;
  };
  std::vector<Slice> slices(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    const auto [sl, ol] = hdr.chunk_lens[i];
    const uint8_t* sp = br.raw(sl);
    const uint8_t* op = br.raw(ol);
    if ((sl && !sp) || (ol && !op)) return Status::truncated_stream;
    slices[i] = {sp, sl, op, ol};
  }

  dims = hdr.dims;
  out.assign(dims.total(), 0.0);
  Status status = Status::ok;

#ifdef SPERR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (size_t i = 0; i < chunks.size(); ++i) {
    const Chunk& c = chunks[i];
    // Decode straight from the container slices (no per-chunk stream
    // copies); the chunk buffer and wavelet tiles live in this worker's
    // reused arena.
    Arena& arena = tls_arena();
    arena.reset();
    double* buf = arena.alloc<double>(c.dims.total());
    std::fill(buf, buf + c.dims.total(), 0.0);
    const Slice& s = slices[i];
    const Status cs = pipeline::decode(s.speck, s.speck_len, s.outlier,
                                       s.outlier_len, c.dims, buf, &arena);
    if (cs != Status::ok) {
#ifdef SPERR_HAVE_OPENMP
#pragma omp critical
#endif
      status = cs;
      continue;
    }
    scatter_chunk(buf, c, out.data(), dims);
  }
  return status;
} catch (const std::bad_alloc&) {
  // Untrusted headers can request absurd extents; treat OOM as corruption.
  return Status::corrupt_stream;
}

Status decompress_lowres(const uint8_t* stream, size_t nbytes, size_t drop_levels,
                         std::vector<double>& out, Dims& coarse_dims) try {
  std::vector<uint8_t> inner;
  if (const Status s = unwrap_container(stream, nbytes, inner); s != Status::ok)
    return s;

  ByteReader br(inner.data(), inner.size());
  ContainerHeader hdr;
  if (const Status s = hdr.deserialize(br); s != Status::ok) return s;
  if (hdr.chunk_lens.size() != 1) return Status::invalid_argument;

  const auto [speck_len, outlier_len] = hdr.chunk_lens[0];
  const uint8_t* sp = br.raw(speck_len);
  if (speck_len && !sp) return Status::truncated_stream;
  const std::vector<uint8_t> speck(sp, sp + speck_len);
  // Outlier corrections live on the full-resolution grid; they do not apply
  // to a coarse reconstruction (their energy is within the tolerance anyway).
  return pipeline::decode_lowres(speck, hdr.dims, drop_levels, out, coarse_dims);
} catch (const std::bad_alloc&) {
  return Status::corrupt_stream;
}

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<float>& out,
                  Dims& dims) {
  std::vector<double> wide;
  const Status s = decompress(stream, nbytes, wide, dims);
  if (s != Status::ok) return s;
  out.resize(wide.size());
  std::transform(wide.begin(), wide.end(), out.begin(),
                 [](double v) { return float(v); });
  return s;
}

}  // namespace sperr
