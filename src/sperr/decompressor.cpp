#include <algorithm>

#include "common/byteio.h"
#include "common/checksum.h"
#include "sperr/header.h"
#include "sperr/pipeline.h"
#include "sperr/sperr.h"

namespace sperr {

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims) {
  // The strict decoder is the tolerant one pinned to fail_fast: every chunk
  // is still verified and decoded, but any damage fails the whole call with
  // the lowest damaged chunk index reported deterministically.
  return decompress_tolerant(stream, nbytes, Recovery::fail_fast, out, dims);
}

Status decompress_lowres(const uint8_t* stream, size_t nbytes, size_t drop_levels,
                         std::vector<double>& out, Dims& coarse_dims) try {
  std::vector<uint8_t> inner;
  ContainerHeader hdr;
  size_t payload_pos = 0;
  if (const Status s = open_container(stream, nbytes, inner, hdr, &payload_pos);
      s != Status::ok)
    return s;
  if (hdr.entries.size() != 1) return Status::invalid_argument;

  const ChunkEntry& e = hdr.entries[0];
  // Subtraction-form bounds checks: the directory lengths are untrusted u64s,
  // so sums like `payload_pos + e.speck_len` can wrap past inner.size().
  // open_container guarantees payload_pos <= inner.size().
  const size_t avail = inner.size() - payload_pos;
  if (e.speck_len > avail) return Status::truncated_stream;
  const uint8_t* sp = inner.data() + payload_pos;
  if (hdr.has_integrity()) {
    // Checksum covers speck‖outlier; verify it before trusting the stream.
    if (e.outlier_len > avail - size_t(e.speck_len)) return Status::truncated_stream;
    if (xxhash64(sp, size_t(e.total_len())) != e.checksum)
      return Status::corrupt_chunk;
  }
  // Outlier corrections live on the full-resolution grid; they do not apply
  // to a coarse reconstruction (their energy is within the tolerance anyway).
  // Decode straight from the container slice — no heap copy of the stream.
  return pipeline::decode_lowres(sp, size_t(e.speck_len), hdr.dims, drop_levels,
                                 out, coarse_dims);
} catch (const std::bad_alloc&) {
  return Status::corrupt_stream;
}

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<float>& out,
                  Dims& dims) {
  std::vector<double> wide;
  const Status s = decompress(stream, nbytes, wide, dims);
  if (s != Status::ok) return s;
  out.resize(wide.size());
  std::transform(wide.begin(), wide.end(), out.begin(),
                 [](double v) { return float(v); });
  return s;
}

}  // namespace sperr
