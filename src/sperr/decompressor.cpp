#include <algorithm>

#include "common/arena.h"
#include "common/byteio.h"
#include "common/checksum.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/pipeline.h"
#include "sperr/recovery.h"
#include "sperr/sperr.h"

#ifdef SPERR_HAVE_OPENMP
#include <omp.h>
#endif

namespace sperr {

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims, const ResourceLimits* limits) {
  // The strict decoder is the tolerant one pinned to fail_fast: every chunk
  // is still verified and decoded, but any damage fails the whole call with
  // the lowest damaged chunk index reported deterministically.
  return decompress_tolerant(stream, nbytes, Recovery::fail_fast, out, dims,
                             nullptr, limits);
}

Status decompress_lowres(const uint8_t* stream, size_t nbytes, size_t drop_levels,
                         std::vector<double>& out, Dims& coarse_dims,
                         const ResourceLimits* limits) try {
  std::vector<uint8_t> inner;
  ContainerHeader hdr;
  size_t payload_pos = 0;
  if (const Status s =
          open_container(stream, nbytes, inner, hdr, &payload_pos, nullptr, limits);
      s != Status::ok)
    return s;
  if (hdr.entries.size() != 1) return Status::invalid_argument;

  // The inverse transform works on the full-resolution coefficient grid
  // before coarsening, so the header extents size the working set here even
  // though the returned field is smaller. Admit them first.
  const ResourceLimits& rl = effective_limits(limits);
  const uint64_t grid_bytes = uint64_t(hdr.dims.total()) * sizeof(double);
  Reservation budget_hold;
  if (!rl.admits_output(grid_bytes) || !rl.admits_working(grid_bytes) ||
      !budget_hold.acquire(rl.budget, grid_bytes))
    return Status::resource_exhausted;

  const ChunkEntry& e = hdr.entries[0];
  // Subtraction-form bounds checks: the directory lengths are untrusted u64s,
  // so sums like `payload_pos + e.speck_len` can wrap past inner.size().
  // open_container guarantees payload_pos <= inner.size().
  const size_t avail = inner.size() - payload_pos;
  if (e.speck_len > avail) return Status::truncated_stream;
  const uint8_t* sp = inner.data() + payload_pos;
  if (hdr.has_integrity()) {
    // Checksum covers speck‖outlier; verify it before trusting the stream.
    if (e.outlier_len > avail - size_t(e.speck_len)) return Status::truncated_stream;
    if (xxhash64(sp, size_t(e.total_len())) != e.checksum)
      return Status::corrupt_chunk;
  }
  // Outlier corrections live on the full-resolution grid; they do not apply
  // to a coarse reconstruction (their energy is within the tolerance anyway).
  // Decode straight from the container slice — no heap copy of the stream.
  return pipeline::decode_lowres(sp, size_t(e.speck_len), hdr.dims, drop_levels,
                                 out, coarse_dims);
} catch (const std::bad_alloc&) {
  return Status::resource_exhausted;
}

Status decompress(const uint8_t* stream, size_t nbytes, std::vector<float>& out,
                  Dims& dims, const ResourceLimits* limits) try {
  // Chunk-at-a-time narrowing: each chunk decodes into per-thread arena
  // scratch and is narrowed straight into the float field, so peak memory is
  // the float output plus one chunk of doubles per worker — not a full
  // double field alongside the float copy.
  DecodeReport rep;
  detail::OpenedContainer oc;
  if (const Status s = detail::open_tolerant(stream, nbytes, Recovery::fail_fast,
                                             oc, &rep, limits);
      s != Status::ok)
    return s;

  const ResourceLimits& rl = effective_limits(limits);
  const uint64_t field_bytes = uint64_t(oc.hdr.dims.total()) * sizeof(float);
  uint64_t chunk_bytes = 0;
  for (const Chunk& c : oc.chunks)
    chunk_bytes =
        std::max<uint64_t>(chunk_bytes, uint64_t(c.dims.total()) * sizeof(double));
  Reservation budget_hold;
  if (!rl.admits_output(field_bytes) || !rl.admits_working(chunk_bytes) ||
      !budget_hold.acquire(rl.budget, field_bytes + chunk_bytes))
    return Status::resource_exhausted;

  dims = oc.hdr.dims;
  out.assign(dims.total(), 0.0f);
  rep.chunks.resize(oc.chunks.size());

  const int intra_threads = oc.chunks.size() == 1 ? 0 : 1;

#ifdef SPERR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (size_t i = 0; i < oc.chunks.size(); ++i) {
    Arena& arena = tls_arena();
    arena.reset();
    const size_t n = oc.chunks[i].dims.total();
    double* buf = arena.alloc<double>(n);
    std::fill(buf, buf + n, 0.0);
    rep.chunks[i] = detail::decode_chunk(oc, i, Recovery::fail_fast, buf, &arena,
                                         intra_threads);
    scatter_chunk_narrow(buf, oc.chunks[i], out.data(), dims);
  }

  for (const ChunkReport& c : rep.chunks)
    if (c.damaged()) return rep.chunks[rep.first_damaged()].status;
  return Status::ok;
} catch (const std::bad_alloc&) {
  return Status::resource_exhausted;
}

}  // namespace sperr
