#pragma once

// Internal fault-isolated decode core shared by the in-memory tolerant
// decoder (sperr::decompress_tolerant, sperr::decompress), the out-of-core
// reader (sperr::outofcore::decompress_file), and the integrity audit
// (sperr::verify_container). Not part of the public API — include
// sperr/sperr.h instead.

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/resource.h"
#include "common/types.h"
#include "sperr/chunker.h"
#include "sperr/header.h"

namespace sperr::detail {

/// Where one chunk's streams live within the recovered inner container.
/// `avail` counts the bytes actually present — less than the directory's
/// advertised extent when the payload was truncated.
struct ChunkSlice {
  size_t offset = 0;
  size_t speck_avail = 0;
  size_t outlier_avail = 0;
  bool intact = false;  ///< full advertised extent present
};

/// A container unwrapped and sliced for per-chunk decoding.
struct OpenedContainer {
  std::vector<uint8_t> inner;
  ContainerHeader hdr;
  std::vector<Chunk> chunks;
  std::vector<ChunkSlice> slices;
};

/// Unwrap the outer wrapper + lossless layer and parse the header and chunk
/// directory. With a fill policy the unwrap is tolerant: corrupt lossless
/// blocks are zero-filled and recorded, and a truncated payload yields its
/// available prefix. Fills the container-level fields of `report` (header_ok,
/// version, lossless_bad_blocks) when non-null. Returns != ok only when
/// nothing is salvageable (wrapper, header, or directory destroyed — or, in
/// fail_fast mode, any lossless-block corruption). `limits` (nullptr =
/// ResourceLimits::defaults()) gates the lossless raw size and the declared
/// chunk count before either sizes an allocation (resource_exhausted).
Status open_tolerant(const uint8_t* stream, size_t nbytes, Recovery policy,
                     OpenedContainer& oc, DecodeReport* report,
                     const ResourceLimits* limits = nullptr);

/// Verify + decode chunk `i` of `oc` into `buf` (chunks[i].dims.total()
/// doubles, caller-zeroed), honoring `policy` for damaged chunks. Pure
/// function of the container bytes — safe to call concurrently for distinct
/// chunks. Returns the chunk's report entry. `intra_threads` feeds the
/// SPECK decoder's lane-parallel mode (output identical at every setting;
/// 1 = serial, 0 = auto) — raise it only when chunks are not already
/// decoding concurrently.
ChunkReport decode_chunk(const OpenedContainer& oc, size_t i, Recovery policy,
                         double* buf, Arena* arena, int intra_threads = 1);

/// Checksum/extent audit of chunk `i` without decoding (verify_container).
ChunkReport audit_chunk(const OpenedContainer& oc, size_t i);

}  // namespace sperr::detail
