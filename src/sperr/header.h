#pragma once

// SPERR container format.
//
// Outer wrapper (never entropy-coded, so the decoder can bootstrap):
//   u32 magic 'SPRZ' | u8 version | u8 lossless? | u64 inner_len | inner...
// where `inner` is the container below, optionally passed through the
// built-in lossless codec (the paper's final ZSTD pass, §V).
//
// Inner container:
//   u32 magic 'SPRC' | u8 mode | u8 precision(4|8) | dims 3xu64 |
//   chunk dims 3xu64 | f64 quality (tolerance or bpp) | u32 nchunks |
//   per chunk { u64 speck_len, u64 outlier_len } | concatenated streams.

#include <cstdint>
#include <vector>

#include "common/byteio.h"
#include "common/types.h"
#include "lossless/codec.h"
#include "sperr/config.h"

namespace sperr {

struct ContainerHeader {
  static constexpr uint32_t kOuterMagic = 0x5a525053;  // "SPRZ"
  static constexpr uint32_t kInnerMagic = 0x43525053;  // "SPRC"
  // Version history: 1 = single-block lossless pass; 2 = block-parallel
  // lossless framing with per-block checksums (docs/FORMAT.md). The decoder
  // accepts both: the lossless codec dispatches on its own format byte.
  static constexpr uint8_t kVersion = 2;
  static constexpr uint8_t kMinVersion = 1;

  Mode mode = Mode::pwe;
  uint8_t precision = 8;  ///< bytes per sample of the original input (4 or 8)
  Dims dims;
  Dims chunk_dims;
  double quality = 0.0;  ///< tolerance (pwe) or target bpp (fixed_rate)
  std::vector<std::pair<uint64_t, uint64_t>> chunk_lens;  ///< (speck, outlier)

  void serialize(std::vector<uint8_t>& out) const;
  [[nodiscard]] Status deserialize(ByteReader& br);
};

/// Wrap the inner container: apply the lossless pass (if enabled) and
/// prepend the outer header. `opts` controls the lossless codec's block size
/// and thread count (ignored when `lossless` is false).
std::vector<uint8_t> wrap_container(std::vector<uint8_t> inner, bool lossless,
                                    const lossless::EncodeOptions& opts = {});

/// Undo wrap_container; `inner` receives the decoded container bytes. When
/// the lossless payload fails a per-block checksum the return is
/// Status::corrupt_block and `*corrupt_block` (if non-null) names the block.
Status unwrap_container(const uint8_t* data, size_t size, std::vector<uint8_t>& inner,
                        size_t* corrupt_block = nullptr);

}  // namespace sperr
