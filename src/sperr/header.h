#pragma once

// SPERR container format.
//
// Outer wrapper (never entropy-coded, so the decoder can bootstrap):
//   u32 magic 'SPRZ' | u8 version | u8 lossless? | u64 inner_len | inner...
// where `inner` is the container below, optionally passed through the
// built-in lossless codec (the paper's final ZSTD pass, §V).
//
// Inner container (version 3):
//   u32 magic 'SPRC' | u8 mode | u8 precision(4|8) | dims 3xu64 |
//   chunk dims 3xu64 | f64 quality (tolerance or bpp) | u32 nchunks |
//   per chunk { u64 speck_len, u64 outlier_len, u64 xxh64, f64 mean } |
//   u64 header_xxh64 | concatenated streams.
// The per-chunk XXH64 covers the chunk's speck‖outlier payload bytes; the
// trailing header checksum covers every header byte before it (magic through
// directory), so damage to the directory itself is detected rather than
// silently mis-slicing the payload. Versions 1–2 used 16-byte directory
// entries (lengths only, no checksums) and remain decodable; the outer
// version byte selects the layout.

#include <cstdint>
#include <vector>

#include "common/byteio.h"
#include "common/types.h"
#include "lossless/codec.h"
#include "sperr/config.h"

namespace sperr {

/// One chunk's directory entry. `checksum` and `mean` exist from container
/// version 3 on (zero for streams read from v1/v2 containers).
struct ChunkEntry {
  uint64_t speck_len = 0;
  uint64_t outlier_len = 0;
  uint64_t checksum = 0;  ///< XXH64 over the chunk's speck‖outlier bytes, seed 0
  double mean = 0.0;      ///< chunk mean of the original input: the DC recovery fallback

  ChunkEntry() = default;
  ChunkEntry(uint64_t sl, uint64_t ol) : speck_len(sl), outlier_len(ol) {}
  bool operator==(const ChunkEntry&) const = default;

  [[nodiscard]] uint64_t total_len() const { return speck_len + outlier_len; }
};

struct ContainerHeader {
  static constexpr uint32_t kOuterMagic = 0x5a525053;  // "SPRZ"
  static constexpr uint32_t kInnerMagic = 0x43525053;  // "SPRC"
  // Version history: 1 = single-block lossless pass; 2 = block-parallel
  // lossless framing with per-block checksums; 3 = per-chunk XXH64 + chunk
  // means in the directory plus a header self-checksum (docs/FORMAT.md).
  // Decoders accept all three; serialization always writes the current one.
  static constexpr uint8_t kVersion = 3;
  static constexpr uint8_t kMinVersion = 1;

  Mode mode = Mode::pwe;
  uint8_t precision = 8;  ///< bytes per sample of the original input (4 or 8)
  uint8_t version = kVersion;  ///< container version this header was read from
  Dims dims;
  Dims chunk_dims;
  double quality = 0.0;  ///< tolerance (pwe) or target bpp (fixed_rate)
  std::vector<ChunkEntry> entries;  ///< per-chunk directory

  /// True when the directory carries per-chunk checksums and means.
  [[nodiscard]] bool has_integrity() const { return version >= 3; }

  void serialize(std::vector<uint8_t>& out) const;

  /// Parse a header laid out as container version `version` (pass the outer
  /// wrapper's version byte; the default reads the current layout).
  [[nodiscard]] Status deserialize(ByteReader& br, uint8_t version = kVersion);
};

/// Wrap the inner container: apply the lossless pass (if enabled) and
/// prepend the outer header. `opts` controls the lossless codec's block size
/// and thread count (ignored when `lossless` is false).
std::vector<uint8_t> wrap_container(std::vector<uint8_t> inner, bool lossless,
                                    const lossless::EncodeOptions& opts = {});

/// Undo wrap_container; `inner` receives the decoded container bytes. When
/// the lossless payload fails a per-block checksum the return is
/// Status::corrupt_block and `*corrupt_block` (if non-null) names the block.
/// `*version` (if non-null) receives the outer wrapper's version byte.
/// The lossless payload's declared raw size is admitted against `limits`
/// (nullptr = ResourceLimits::defaults()) before the inner buffer is sized;
/// a violation returns Status::resource_exhausted.
Status unwrap_container(const uint8_t* data, size_t size, std::vector<uint8_t>& inner,
                        size_t* corrupt_block = nullptr, uint8_t* version = nullptr,
                        const ResourceLimits* limits = nullptr);

/// unwrap_container + ContainerHeader::deserialize in one step (the common
/// prologue of every decoder). On success `inner` holds the container bytes,
/// `hdr` the parsed header (hdr.version set from the wrapper), and
/// `*payload_pos` (if non-null) the offset of the first chunk stream within
/// `inner`. Consults `limits` before any header-sized allocation: the
/// lossless raw size and the declared chunk count are both admitted first.
Status open_container(const uint8_t* data, size_t size, std::vector<uint8_t>& inner,
                      ContainerHeader& hdr, size_t* payload_pos = nullptr,
                      size_t* corrupt_block = nullptr,
                      const ResourceLimits* limits = nullptr);

}  // namespace sperr
