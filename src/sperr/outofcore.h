#pragma once

// Out-of-core compression of raw binary fields: the paper's motivating
// workloads (500 TB climate archives, multi-TB turbulence snapshots) do not
// fit in memory, but SPERR's chunked design means compression only ever
// needs one chunk resident at a time. These routines stream chunks straight
// from / to disk; peak memory is O(chunk + compressed output) for
// compression and O(chunk + compressed input) for decompression, never
// O(volume).
//
// Raw files are x-fastest arrays of f32 or f64 (the SDRBench layout).
//
// Output files are written crash-consistently: bytes go to `<path>.tmp`,
// the file is fsync()ed, rename()d over the destination, and the parent
// directory fsync()ed. A crash at ANY point leaves the destination either
// absent, its previous content, or the complete new content — never a
// torn container (the torn-write crash-point test in test_outofcore.cpp
// kills the writer at every stage boundary and asserts exactly that).

#include <string>

#include "common/resource.h"
#include "common/types.h"
#include "sperr/config.h"

namespace sperr::outofcore {

namespace detail {

/// Test-only crash-point hook for the atomic write path. When set, the
/// writer calls it at each stage boundary, in order:
///   "tmp_open"    temp file created, nothing written yet
///   "tmp_partial" some but not all payload bytes written
///   "tmp_written" all payload bytes written, not yet fsync()ed
///   "tmp_synced"  temp file durable, rename() not yet issued
///   "renamed"     destination renamed into place, directory not yet synced
///   "dir_synced"  everything durable
/// The torn-write test forks, _exit()s inside the hook at one stage, and
/// asserts the destination is absent or fully valid. Not thread-safe by
/// design (set before spawning writers); never set in production.
using CrashHook = void (*)(const char* stage);
void set_crash_hook(CrashHook hook);

}  // namespace detail

/// Compress the raw field stored at `in_path` (extents `dims`, `precision`
/// bytes per sample: 4 or 8) into a SPERR container at `out_path`.
/// Returns invalid_argument when the file size does not match dims.
Status compress_file(const std::string& in_path, Dims dims, int precision,
                     const Config& cfg, const std::string& out_path,
                     Stats* stats = nullptr);

/// Decompress a SPERR container file back to a raw field file, chunk by
/// chunk. `precision` selects the output sample width (4 or 8).
Status decompress_file(const std::string& in_path, const std::string& out_path,
                       int precision);

/// Fault-isolated variant: same per-chunk verification and recovery
/// semantics as sperr::decompress_tolerant, streaming one decoded chunk to
/// disk at a time. With fail_fast the file is abandoned at the first
/// damaged chunk (lowest index — the loop is serial and in order); with the
/// fill policies every chunk is written, damaged ones patched per `policy`,
/// and the good chunks are bit-identical to a clean decode. `report`, when
/// non-null, receives the same per-chunk verdicts as the in-memory API.
/// `limits` (nullptr = ResourceLimits::defaults()) gates the header-declared
/// output size — here that is *disk* the pre-sized temp file would claim —
/// and every in-memory allocation, exactly as the in-memory decoders do.
Status decompress_file(const std::string& in_path, const std::string& out_path,
                       int precision, Recovery policy,
                       DecodeReport* report = nullptr,
                       const ResourceLimits* limits = nullptr);

}  // namespace sperr::outofcore
