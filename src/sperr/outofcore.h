#pragma once

// Out-of-core compression of raw binary fields: the paper's motivating
// workloads (500 TB climate archives, multi-TB turbulence snapshots) do not
// fit in memory, but SPERR's chunked design means compression only ever
// needs one chunk resident at a time. These routines stream chunks straight
// from / to disk; peak memory is O(chunk + compressed output) for
// compression and O(chunk + compressed input) for decompression, never
// O(volume).
//
// Raw files are x-fastest arrays of f32 or f64 (the SDRBench layout).

#include <string>

#include "common/types.h"
#include "sperr/config.h"

namespace sperr::outofcore {

/// Compress the raw field stored at `in_path` (extents `dims`, `precision`
/// bytes per sample: 4 or 8) into a SPERR container at `out_path`.
/// Returns invalid_argument when the file size does not match dims.
Status compress_file(const std::string& in_path, Dims dims, int precision,
                     const Config& cfg, const std::string& out_path,
                     Stats* stats = nullptr);

/// Decompress a SPERR container file back to a raw field file, chunk by
/// chunk. `precision` selects the output sample width (4 or 8).
Status decompress_file(const std::string& in_path, const std::string& out_path,
                       int precision);

/// Fault-isolated variant: same per-chunk verification and recovery
/// semantics as sperr::decompress_tolerant, streaming one decoded chunk to
/// disk at a time. With fail_fast the file is abandoned at the first
/// damaged chunk (lowest index — the loop is serial and in order); with the
/// fill policies every chunk is written, damaged ones patched per `policy`,
/// and the good chunks are bit-identical to a clean decode. `report`, when
/// non-null, receives the same per-chunk verdicts as the in-memory API.
Status decompress_file(const std::string& in_path, const std::string& out_path,
                       int precision, Recovery policy,
                       DecodeReport* report = nullptr);

}  // namespace sperr::outofcore
