#include "sperr/outofcore.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/arena.h"
#include "common/byteio.h"
#include "common/checksum.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/pipeline.h"
#include "sperr/recovery.h"
#include "sperr/sperr.h"

namespace sperr::outofcore {

namespace detail {
namespace {
CrashHook g_crash_hook = nullptr;
}
void set_crash_hook(CrashHook hook) { g_crash_hook = hook; }
}  // namespace detail

namespace {

void crash_point(const char* stage) {
  if (detail::g_crash_hook) detail::g_crash_hook(stage);
}

/// EINTR-safe full write to a descriptor.
bool write_fd(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t put = ::write(fd, data, n);
    if (put > 0) {
      data += put;
      n -= size_t(put);
    } else if (put < 0 && errno != EINTR) {
      return false;
    }
  }
  return true;
}

/// fsync the directory containing `path` so the rename itself is durable
/// (a crashed kernel may otherwise forget the directory entry while
/// keeping the inode). Best effort on filesystems without dirsync.
void fsync_parent_dir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

/// Publish `blob` at `out_path` atomically: <out_path>.tmp + fsync +
/// rename + directory fsync. A crash anywhere leaves the destination
/// absent, its old content, or the full new content — never a torn file.
Status atomic_write_file(const std::string& out_path,
                         const uint8_t* data, size_t size) {
  const std::string tmp = out_path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::invalid_argument;
  crash_point("tmp_open");
  const size_t half = size / 2;
  bool ok = write_fd(fd, data, half);
  if (ok) crash_point("tmp_partial");
  ok = ok && write_fd(fd, data + half, size - half);
  if (ok) crash_point("tmp_written");
  ok = ok && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return Status::invalid_argument;
  }
  crash_point("tmp_synced");
  if (::rename(tmp.c_str(), out_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::invalid_argument;
  }
  crash_point("renamed");
  fsync_parent_dir(out_path);
  crash_point("dir_synced");
  return Status::ok;
}

/// Read one chunk from a raw field file into `out` (doubles), row by row.
bool read_chunk(std::ifstream& in, Dims vol, int precision, const Chunk& c,
                std::vector<double>& out) {
  out.resize(c.dims.total());
  const size_t row_elems = c.dims.x;
  std::vector<char> row(row_elems * size_t(precision));
  for (size_t z = 0; z < c.dims.z; ++z)
    for (size_t y = 0; y < c.dims.y; ++y) {
      const uint64_t offset =
          vol.index(c.origin.x, c.origin.y + y, c.origin.z + z) *
          uint64_t(precision);
      in.seekg(std::streamoff(offset));
      if (!in.read(row.data(), std::streamsize(row.size()))) return false;
      double* dst = out.data() + c.dims.index(0, y, z);
      if (precision == 4) {
        const float* p = reinterpret_cast<const float*>(row.data());
        for (size_t x = 0; x < row_elems; ++x) dst[x] = double(p[x]);
      } else {
        const double* p = reinterpret_cast<const double*>(row.data());
        for (size_t x = 0; x < row_elems; ++x) dst[x] = p[x];
      }
    }
  return true;
}

/// Write one decoded chunk into a raw field file, row by row.
bool write_chunk(std::fstream& out, Dims vol, int precision, const Chunk& c,
                 const std::vector<double>& data) {
  const size_t row_elems = c.dims.x;
  std::vector<char> row(row_elems * size_t(precision));
  for (size_t z = 0; z < c.dims.z; ++z)
    for (size_t y = 0; y < c.dims.y; ++y) {
      const double* src = data.data() + c.dims.index(0, y, z);
      if (precision == 4) {
        float* p = reinterpret_cast<float*>(row.data());
        for (size_t x = 0; x < row_elems; ++x) p[x] = float(src[x]);
      } else {
        double* p = reinterpret_cast<double*>(row.data());
        for (size_t x = 0; x < row_elems; ++x) p[x] = src[x];
      }
      const uint64_t offset =
          vol.index(c.origin.x, c.origin.y + y, c.origin.z + z) *
          uint64_t(precision);
      out.seekp(std::streamoff(offset));
      if (!out.write(row.data(), std::streamsize(row.size()))) return false;
    }
  return true;
}

}  // namespace

Status compress_file(const std::string& in_path, Dims dims, int precision,
                     const Config& cfg, const std::string& out_path,
                     Stats* stats) {
  if ((precision != 4 && precision != 8) || dims.total() == 0)
    return Status::invalid_argument;

  std::ifstream in(in_path, std::ios::binary | std::ios::ate);
  if (!in) return Status::invalid_argument;
  const uint64_t file_size = uint64_t(in.tellg());
  if (file_size != dims.total() * uint64_t(precision))
    return Status::invalid_argument;

  const auto chunks = make_chunks(dims, cfg.chunk_dims);
  std::vector<pipeline::ChunkStream> streams(chunks.size());

  // One chunk resident at a time: this loop is deliberately serial over
  // chunks (the input file is the bottleneck); in-memory compression keeps
  // the chunk-parallel OpenMP path.
  std::vector<double> buf;
  std::vector<double> means(chunks.size(), 0.0);
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (!read_chunk(in, dims, precision, chunks[i], buf))
      return Status::truncated_stream;
    double sum = 0.0;
    for (const double v : buf) sum += v;
    means[i] = sum / double(buf.size());
    if (cfg.mode == Mode::pwe) {
      streams[i] =
          pipeline::encode_pwe(buf.data(), chunks[i].dims, cfg.tolerance, cfg.q_over_t);
    } else if (cfg.mode == Mode::target_rmse) {
      streams[i] = pipeline::encode_target_rmse(buf.data(), chunks[i].dims, cfg.rmse);
    } else {
      const auto budget = size_t(cfg.bpp * double(chunks[i].dims.total()));
      streams[i] = pipeline::encode_fixed_rate(buf.data(), chunks[i].dims,
                                               std::max<size_t>(budget, 8));
    }
  }

  ContainerHeader hdr;
  hdr.mode = cfg.mode;
  hdr.precision = uint8_t(precision);
  hdr.dims = dims;
  hdr.chunk_dims = cfg.chunk_dims;
  hdr.quality = cfg.mode == Mode::pwe ? cfg.tolerance
                : cfg.mode == Mode::target_rmse ? cfg.rmse
                                                : cfg.bpp;
  std::vector<uint8_t> cat;  // scratch to hash speck‖outlier contiguously
  for (size_t i = 0; i < streams.size(); ++i) {
    const auto& s = streams[i];
    ChunkEntry e(s.speck.size(), s.outlier.size());
    if (s.outlier.empty()) {
      e.checksum = xxhash64(s.speck.data(), s.speck.size());
    } else {
      cat.assign(s.speck.begin(), s.speck.end());
      cat.insert(cat.end(), s.outlier.begin(), s.outlier.end());
      e.checksum = xxhash64(cat.data(), cat.size());
    }
    e.mean = means[i];
    hdr.entries.push_back(e);
  }

  std::vector<uint8_t> inner;
  hdr.serialize(inner);
  for (auto& s : streams) {
    inner.insert(inner.end(), s.speck.begin(), s.speck.end());
    inner.insert(inner.end(), s.outlier.begin(), s.outlier.end());
  }
  const auto blob = wrap_container(std::move(inner), cfg.lossless_pass,
                                   {cfg.lossless_block_size, cfg.num_threads});

  if (const Status ws = atomic_write_file(out_path, blob.data(), blob.size());
      ws != Status::ok)
    return ws;

  if (stats) {
    *stats = Stats{};
    stats->compressed_bytes = blob.size();
    stats->num_chunks = chunks.size();
    for (const auto& s : streams) {
      stats->speck_bytes += s.speck.size();
      stats->outlier_bytes += s.outlier.size();
      stats->num_outliers += s.num_outliers;
      stats->timing += s.timing;
    }
    stats->bpp = double(blob.size()) * 8.0 / double(dims.total());
  }
  return Status::ok;
}

Status decompress_file(const std::string& in_path, const std::string& out_path,
                       int precision) {
  return decompress_file(in_path, out_path, precision, Recovery::fail_fast);
}

Status decompress_file(const std::string& in_path, const std::string& out_path,
                       int precision, Recovery policy, DecodeReport* report,
                       const ResourceLimits* limits) try {
  DecodeReport local;
  DecodeReport& rep = report ? *report : local;
  rep = DecodeReport{};
  rep.policy = policy;
  if (precision != 4 && precision != 8) return Status::invalid_argument;

  std::ifstream in(in_path, std::ios::binary);
  if (!in) return Status::invalid_argument;
  const std::vector<uint8_t> blob{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};

  // Same fault-isolated core as the in-memory decoder; only the chunk loop
  // differs (serial, one decoded chunk resident, streamed to disk).
  sperr::detail::OpenedContainer oc;
  if (const Status s = sperr::detail::open_tolerant(blob.data(), blob.size(),
                                                    policy, oc, &rep, limits);
      s != Status::ok) {
    rep.status = s;
    return s;
  }

  // The header extents size the pre-allocated temp file below (a disk
  // bomb) and the per-chunk decode buffer (a memory bomb): admit both
  // before touching either. One chunk of doubles is the working set.
  const ResourceLimits& rl = effective_limits(limits);
  const uint64_t out_bytes = uint64_t(oc.hdr.dims.total()) * uint64_t(precision);
  uint64_t chunk_bytes = 0;
  for (const Chunk& c : oc.chunks)
    chunk_bytes =
        std::max<uint64_t>(chunk_bytes, uint64_t(c.dims.total()) * sizeof(double));
  Reservation budget_hold;
  if (!rl.admits_output(out_bytes) || !rl.admits_working(chunk_bytes) ||
      !budget_hold.acquire(rl.budget, chunk_bytes)) {
    rep.status = Status::resource_exhausted;
    return rep.status;
  }

  // Pre-size a temp file, fill it chunk by chunk, and only rename it over
  // the destination once every chunk landed — a crash mid-decode (or a
  // fail_fast abort) never leaves a torn raw field at out_path.
  const std::string tmp_path = out_path + ".tmp";
  {
    std::ofstream create(tmp_path, std::ios::binary);
    if (!create) return Status::invalid_argument;
    create.seekp(
        std::streamoff(oc.hdr.dims.total() * uint64_t(precision) - 1));
    create.put('\0');
    if (!create) return Status::invalid_argument;
  }
  crash_point("tmp_open");
  {
    std::fstream out(tmp_path,
                     std::ios::binary | std::ios::in | std::ios::out);
    if (!out) {
      ::unlink(tmp_path.c_str());
      return Status::invalid_argument;
    }

    rep.chunks.resize(oc.chunks.size());
    std::vector<double> buf;
    Arena& arena = tls_arena();
    for (size_t i = 0; i < oc.chunks.size(); ++i) {
      buf.assign(oc.chunks[i].dims.total(), 0.0);
      arena.reset();
      rep.chunks[i] = sperr::detail::decode_chunk(oc, i, policy, buf.data(), &arena);
      if (rep.chunks[i].damaged()) {
        ++rep.damaged;
        if (rep.chunks[i].action != ChunkAction::none) ++rep.recovered;
        if (policy == Recovery::fail_fast) {
          // Serial and in order, so this is the lowest damaged index.
          rep.chunks.resize(i + 1);
          rep.status = rep.chunks[i].status;
          out.close();
          ::unlink(tmp_path.c_str());
          return rep.status;
        }
      }
      if (!write_chunk(out, oc.hdr.dims, precision, oc.chunks[i], buf)) {
        out.close();
        ::unlink(tmp_path.c_str());
        return Status::invalid_argument;
      }
      if (i == 0) crash_point("tmp_partial");
    }
    out.flush();
    if (!out) {
      out.close();
      ::unlink(tmp_path.c_str());
      return Status::invalid_argument;
    }
  }
  crash_point("tmp_written");
  {
    const int fd = ::open(tmp_path.c_str(), O_WRONLY);
    const bool synced = fd >= 0 && ::fsync(fd) == 0;
    if (fd >= 0) ::close(fd);
    if (!synced) {
      ::unlink(tmp_path.c_str());
      return Status::invalid_argument;
    }
  }
  crash_point("tmp_synced");
  if (::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::invalid_argument;
  }
  crash_point("renamed");
  fsync_parent_dir(out_path);
  crash_point("dir_synced");
  rep.status = Status::ok;
  rep.field_valid = true;
  return Status::ok;
} catch (const std::bad_alloc&) {
  if (report) report->status = Status::resource_exhausted;
  return Status::resource_exhausted;
}

}  // namespace sperr::outofcore
