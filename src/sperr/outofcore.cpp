#include "sperr/outofcore.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "common/byteio.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/pipeline.h"
#include "sperr/sperr.h"

namespace sperr::outofcore {

namespace {

/// Read one chunk from a raw field file into `out` (doubles), row by row.
bool read_chunk(std::ifstream& in, Dims vol, int precision, const Chunk& c,
                std::vector<double>& out) {
  out.resize(c.dims.total());
  const size_t row_elems = c.dims.x;
  std::vector<char> row(row_elems * size_t(precision));
  for (size_t z = 0; z < c.dims.z; ++z)
    for (size_t y = 0; y < c.dims.y; ++y) {
      const uint64_t offset =
          vol.index(c.origin.x, c.origin.y + y, c.origin.z + z) *
          uint64_t(precision);
      in.seekg(std::streamoff(offset));
      if (!in.read(row.data(), std::streamsize(row.size()))) return false;
      double* dst = out.data() + c.dims.index(0, y, z);
      if (precision == 4) {
        const float* p = reinterpret_cast<const float*>(row.data());
        for (size_t x = 0; x < row_elems; ++x) dst[x] = double(p[x]);
      } else {
        const double* p = reinterpret_cast<const double*>(row.data());
        for (size_t x = 0; x < row_elems; ++x) dst[x] = p[x];
      }
    }
  return true;
}

/// Write one decoded chunk into a raw field file, row by row.
bool write_chunk(std::fstream& out, Dims vol, int precision, const Chunk& c,
                 const std::vector<double>& data) {
  const size_t row_elems = c.dims.x;
  std::vector<char> row(row_elems * size_t(precision));
  for (size_t z = 0; z < c.dims.z; ++z)
    for (size_t y = 0; y < c.dims.y; ++y) {
      const double* src = data.data() + c.dims.index(0, y, z);
      if (precision == 4) {
        float* p = reinterpret_cast<float*>(row.data());
        for (size_t x = 0; x < row_elems; ++x) p[x] = float(src[x]);
      } else {
        double* p = reinterpret_cast<double*>(row.data());
        for (size_t x = 0; x < row_elems; ++x) p[x] = src[x];
      }
      const uint64_t offset =
          vol.index(c.origin.x, c.origin.y + y, c.origin.z + z) *
          uint64_t(precision);
      out.seekp(std::streamoff(offset));
      if (!out.write(row.data(), std::streamsize(row.size()))) return false;
    }
  return true;
}

}  // namespace

Status compress_file(const std::string& in_path, Dims dims, int precision,
                     const Config& cfg, const std::string& out_path,
                     Stats* stats) {
  if ((precision != 4 && precision != 8) || dims.total() == 0)
    return Status::invalid_argument;

  std::ifstream in(in_path, std::ios::binary | std::ios::ate);
  if (!in) return Status::invalid_argument;
  const uint64_t file_size = uint64_t(in.tellg());
  if (file_size != dims.total() * uint64_t(precision))
    return Status::invalid_argument;

  const auto chunks = make_chunks(dims, cfg.chunk_dims);
  std::vector<pipeline::ChunkStream> streams(chunks.size());

  // One chunk resident at a time: this loop is deliberately serial over
  // chunks (the input file is the bottleneck); in-memory compression keeps
  // the chunk-parallel OpenMP path.
  std::vector<double> buf;
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (!read_chunk(in, dims, precision, chunks[i], buf))
      return Status::truncated_stream;
    if (cfg.mode == Mode::pwe) {
      streams[i] =
          pipeline::encode_pwe(buf.data(), chunks[i].dims, cfg.tolerance, cfg.q_over_t);
    } else if (cfg.mode == Mode::target_rmse) {
      streams[i] = pipeline::encode_target_rmse(buf.data(), chunks[i].dims, cfg.rmse);
    } else {
      const auto budget = size_t(cfg.bpp * double(chunks[i].dims.total()));
      streams[i] = pipeline::encode_fixed_rate(buf.data(), chunks[i].dims,
                                               std::max<size_t>(budget, 8));
    }
  }

  ContainerHeader hdr;
  hdr.mode = cfg.mode;
  hdr.precision = uint8_t(precision);
  hdr.dims = dims;
  hdr.chunk_dims = cfg.chunk_dims;
  hdr.quality = cfg.mode == Mode::pwe ? cfg.tolerance
                : cfg.mode == Mode::target_rmse ? cfg.rmse
                                                : cfg.bpp;
  for (const auto& s : streams)
    hdr.chunk_lens.emplace_back(s.speck.size(), s.outlier.size());

  std::vector<uint8_t> inner;
  hdr.serialize(inner);
  for (auto& s : streams) {
    inner.insert(inner.end(), s.speck.begin(), s.speck.end());
    inner.insert(inner.end(), s.outlier.begin(), s.outlier.end());
  }
  const auto blob = wrap_container(std::move(inner), cfg.lossless_pass,
                                   {cfg.lossless_block_size, cfg.num_threads});

  std::ofstream out(out_path, std::ios::binary);
  if (!out ||
      !out.write(reinterpret_cast<const char*>(blob.data()),
                 std::streamsize(blob.size())))
    return Status::invalid_argument;

  if (stats) {
    *stats = Stats{};
    stats->compressed_bytes = blob.size();
    stats->num_chunks = chunks.size();
    for (const auto& s : streams) {
      stats->speck_bytes += s.speck.size();
      stats->outlier_bytes += s.outlier.size();
      stats->num_outliers += s.num_outliers;
      stats->timing += s.timing;
    }
    stats->bpp = double(blob.size()) * 8.0 / double(dims.total());
  }
  return Status::ok;
}

Status decompress_file(const std::string& in_path, const std::string& out_path,
                       int precision) {
  if (precision != 4 && precision != 8) return Status::invalid_argument;

  std::ifstream in(in_path, std::ios::binary);
  if (!in) return Status::invalid_argument;
  const std::vector<uint8_t> blob{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};

  std::vector<uint8_t> inner;
  if (const Status s = unwrap_container(blob.data(), blob.size(), inner);
      s != Status::ok)
    return s;
  ByteReader br(inner.data(), inner.size());
  ContainerHeader hdr;
  if (const Status s = hdr.deserialize(br); s != Status::ok) return s;

  const auto chunks = make_chunks(hdr.dims, hdr.chunk_dims);
  if (chunks.size() != hdr.chunk_lens.size()) return Status::corrupt_stream;

  // Pre-size the output file, then fill it chunk by chunk.
  {
    std::ofstream create(out_path, std::ios::binary);
    if (!create) return Status::invalid_argument;
    create.seekp(
        std::streamoff(hdr.dims.total() * uint64_t(precision) - 1));
    create.put('\0');
    if (!create) return Status::invalid_argument;
  }
  std::fstream out(out_path,
                   std::ios::binary | std::ios::in | std::ios::out);
  if (!out) return Status::invalid_argument;

  std::vector<double> buf;
  for (size_t i = 0; i < chunks.size(); ++i) {
    const auto [speck_len, outlier_len] = hdr.chunk_lens[i];
    const uint8_t* sp = br.raw(speck_len);
    const uint8_t* op = br.raw(outlier_len);
    if ((speck_len && !sp) || (outlier_len && !op)) return Status::truncated_stream;

    buf.assign(chunks[i].dims.total(), 0.0);
    if (const Status s = pipeline::decode(sp, speck_len, op, outlier_len,
                                          chunks[i].dims, buf.data());
        s != Status::ok)
      return s;
    if (!write_chunk(out, hdr.dims, precision, chunks[i], buf))
      return Status::invalid_argument;
  }
  return Status::ok;
}

}  // namespace sperr::outofcore
