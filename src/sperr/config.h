#pragma once

// User-facing compression configuration and statistics for SPERR.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr {

/// Termination criterion (paper §I): a compressor can bound size or error,
/// not both at once. target_rmse is the paper's §VII extension: the
/// near-orthogonal unit-norm wavelet makes the coefficient-domain L2 error
/// track the reconstruction L2 error, so an average-error target can be
/// met by choosing the quantization step — no outlier pass needed.
enum class Mode : uint8_t {
  pwe = 0,          ///< bound the maximum point-wise error (SPERR's headline mode)
  fixed_rate = 1,   ///< bound the output size (classic SPECK / ZFP-style)
  target_rmse = 2,  ///< aim for an average (root-mean-square) error
};

struct Config {
  Mode mode = Mode::pwe;

  /// PWE tolerance t > 0 (mode == pwe). Every reconstructed value is within
  /// t of the original.
  double tolerance = 0.0;

  /// Target bitrate in bits per point (mode == fixed_rate). The stream is
  /// truncated at this budget; no error guarantee.
  double bpp = 0.0;

  /// Target average error (mode == target_rmse). Achieved RMSE lands at or
  /// below this (typically within ~2x); no point-wise guarantee.
  double rmse = 0.0;

  /// Quantization step for coefficient coding, in units of the tolerance
  /// (q = q_over_t * t). The paper's sweep (§IV-D, Fig. 3) finds the sweet
  /// spot in [1.4, 1.8] and ships 1.5.
  double q_over_t = 1.5;

  /// Chunk extents for parallel execution (paper §III-D; default 256^3).
  /// Chunks need not divide the volume evenly nor be powers of two.
  Dims chunk_dims{256, 256, 256};

  /// OpenMP threads for chunk-parallel execution; 0 = runtime default.
  int num_threads = 0;

  /// Threads used *inside* each chunk's SPECK coder (deterministic lane
  /// parallelism: the stream is byte-identical at every setting). 1 =
  /// serial (default — chunk-level parallelism already saturates machines
  /// on multi-chunk inputs), 0 = one lane per hardware thread. Raise it for
  /// single-chunk (or few-chunk) requests, which otherwise leave cores
  /// idle.
  int intra_chunk_threads = 1;

  /// Apply the final lossless pass (paper §V uses ZSTD; we use the built-in
  /// LZ77+Huffman codec). Disable to inspect raw coder output.
  bool lossless_pass = true;

  /// Block granularity of the lossless pass in bytes (clamped to
  /// [4 KiB, 1 GiB] by the codec). Blocks are coded independently and in
  /// parallel, each carrying its own checksum; smaller blocks localize
  /// corruption and parallelize better, larger ones compress slightly
  /// tighter. The value is recorded in the stream, so any setting decodes
  /// everywhere.
  size_t lossless_block_size = size_t(1) << 20;
};

/// Wall-clock seconds per pipeline stage (paper Fig. 6), summed over chunks
/// (i.e. total work, not elapsed time, when running multi-threaded), plus
/// the uncompressed payload bytes those stages processed so per-stage
/// throughput is trackable PR-over-PR (bench_micro's BENCH_wavelet.json).
struct StageTiming {
  double transform_s = 0.0;  ///< forward wavelet transform
  double speck_s = 0.0;      ///< SPECK coefficient coding
  double locate_s = 0.0;     ///< inverse transform + comparison to find outliers
  double outlier_s = 0.0;    ///< outlier coding
  double lossless_s = 0.0;   ///< final lossless pass over the container
  uint64_t bytes = 0;        ///< uncompressed input bytes covered by the times

  [[nodiscard]] double total() const {
    return transform_s + speck_s + locate_s + outlier_s + lossless_s;
  }

  /// Forward-transform stage throughput in MB/s (0 when unmeasured).
  [[nodiscard]] double transform_mbps() const {
    return transform_s > 0.0 ? double(bytes) / transform_s / 1e6 : 0.0;
  }

  /// Whole-pipeline throughput in MB/s (0 when unmeasured).
  [[nodiscard]] double total_mbps() const {
    return total() > 0.0 ? double(bytes) / total() / 1e6 : 0.0;
  }

  StageTiming& operator+=(const StageTiming& o) {
    transform_s += o.transform_s;
    speck_s += o.speck_s;
    locate_s += o.locate_s;
    outlier_s += o.outlier_s;
    lossless_s += o.lossless_s;
    bytes += o.bytes;
    return *this;
  }
};

/// What decompress_tolerant does with a chunk that fails verification or
/// decoding (v3 containers checksum every chunk, so damage is attributed to
/// exact chunk indices; see docs/FORMAT.md "Recovery semantics").
enum class Recovery : uint8_t {
  fail_fast = 0,    ///< report the first damaged chunk and give up (classic behavior)
  zero_fill = 1,    ///< damaged chunks come back as zeros; good chunks are untouched
  coarse_fill = 2,  ///< reconstruct damaged chunks from whatever SPECK prefix still
                    ///< decodes, falling back to the stored chunk-mean DC value
};

/// What recovery actually did to a damaged chunk.
enum class ChunkAction : uint8_t {
  none = 0,    ///< chunk decoded clean (or fail_fast left it as-is)
  zeroed = 1,  ///< region filled with zeros
  coarse = 2,  ///< best-effort SPECK decode (outlier corrections skipped)
  dc_fill = 3, ///< region filled with the directory's chunk mean
};

/// Per-chunk verdict from a tolerant decode or a verify pass.
struct ChunkReport {
  size_t index = 0;
  Status status = Status::ok;     ///< this chunk's decode/verification verdict
  bool checksum_present = false;  ///< v3 containers carry per-chunk checksums
  bool checksum_ok = false;       ///< stored == computed (false when absent)
  uint64_t checksum_stored = 0;
  uint64_t checksum_computed = 0;
  uint64_t offset = 0;       ///< byte offset of the chunk's streams in the inner container
  uint64_t speck_len = 0;    ///< advertised SPECK stream length
  uint64_t outlier_len = 0;  ///< advertised outlier stream length
  ChunkAction action = ChunkAction::none;
  double seconds = 0.0;  ///< wall-clock time spent verifying + decoding this chunk

  [[nodiscard]] bool damaged() const { return status != Status::ok; }
};

/// Full result of decompress_tolerant / verify_container: overall verdict
/// plus one ChunkReport per chunk, in chunk order.
struct DecodeReport {
  Status status = Status::ok;  ///< ok only when every chunk verified and decoded clean
  bool field_valid = false;    ///< the output field is usable (possibly recovered)
  bool header_ok = false;      ///< wrapper + container header + directory parsed
  uint8_t version = 0;         ///< container version (3 = per-chunk integrity)
  Recovery policy = Recovery::fail_fast;
  size_t damaged = 0;    ///< chunks that failed verification or decoding
  size_t recovered = 0;  ///< damaged chunks patched by the recovery policy
  std::vector<size_t> lossless_bad_blocks;  ///< corrupt blocks in the lossless payload
  std::vector<ChunkReport> chunks;
  double seconds = 0.0;

  /// Lowest damaged chunk index (SIZE_MAX when none) — deterministic even
  /// when chunks decode in parallel.
  [[nodiscard]] size_t first_damaged() const {
    for (const ChunkReport& c : chunks)
      if (c.damaged()) return c.index;
    return size_t(-1);
  }
};

struct Stats {
  size_t compressed_bytes = 0;  ///< final container size
  size_t speck_bytes = 0;       ///< coefficient-coding bytes before the lossless pass
  size_t outlier_bytes = 0;     ///< outlier-coding bytes before the lossless pass
  size_t num_outliers = 0;
  size_t num_chunks = 0;
  size_t lossless_blocks = 0;  ///< blocks in the final lossless pass (0 if disabled)
  double bpp = 0.0;  ///< achieved bits per point (final container)

  /// SPECK coder internals, summed over chunks (from speck::EncodeStats):
  /// payload bits actually emitted, bitplanes walked, and coefficients that
  /// left the dead zone. Ties the container size back to coder behaviour
  /// (e.g. Fig. 2's coefficient/outlier storage split).
  size_t speck_payload_bits = 0;
  size_t speck_planes_coded = 0;  ///< sum over chunks; divide by num_chunks for the mean
  size_t speck_significant = 0;

  /// SPECK per-pass wall-clock totals, summed over chunks and bitplanes
  /// (from speck::PassTiming). The reduction runs in chunk-index order in a
  /// serial post-loop — never inside the OpenMP chunk loop — so the sums
  /// are reproducible run-to-run for a fixed set of per-chunk timings
  /// (floating-point addition is not associative; a worker-completion-order
  /// sum would differ between runs even on identical inputs).
  double speck_sorting_s = 0.0;
  double speck_significance_s = 0.0;
  double speck_refinement_s = 0.0;
  StageTiming timing;
};

}  // namespace sperr
