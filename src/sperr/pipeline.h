#pragma once

// The four-stage SPERR pipeline on one contiguous chunk (paper §V-C):
//   1. forward wavelet transform,
//   2. SPECK coding of the coefficients,
//   3. outlier location (inverse transform + comparison with the input),
//   4. outlier coding.
// Exposed separately from the chunked driver so benchmarks can instrument
// the stage costs and the coefficient/outlier storage balance (Figs. 2-4, 6).

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "outlier/coder.h"
#include "speck/encoder.h"
#include "sperr/config.h"

namespace sperr::pipeline {

struct ChunkStream {
  std::vector<uint8_t> speck;    ///< SPECK stream (header + payload)
  std::vector<uint8_t> outlier;  ///< outlier stream (empty in fixed-rate mode)
  size_t num_outliers = 0;
  size_t outlier_payload_bits = 0;  ///< bits in the outlier payload (excl. header)
  speck::EncodeStats speck_stats;  ///< coder-internal counters for this chunk
  StageTiming timing;
};

/// PWE-bounded encode of one chunk: guarantees every reconstructed value is
/// within `tolerance` of the input. `q = q_over_t * tolerance` sets the
/// coefficient/outlier balance. `capture_outliers`, when non-null, receives
/// the located outlier list (positions in linearized order) — used by the
/// Fig. 1 / Fig. 11 analyses.
///
/// All encode/decode entry points take an optional scratch `arena` for
/// their large transient buffers (coefficient copy, wavelet tiles). The
/// chunked drivers pass each OpenMP worker's tls_arena() so steady-state
/// chunk iterations allocate nothing; standalone callers may pass nullptr
/// (the calling thread's arena is used). The arena is rewound, not reset:
/// allocations the caller made before the call survive.
///
/// `intra_chunk_threads` is forwarded to the SPECK coder's deterministic
/// lane-parallel mode (Config::intra_chunk_threads): the emitted streams
/// are byte-identical at every setting, so it is purely a wall-clock knob
/// for single-chunk (or few-chunk) requests. 1 = serial, 0 = auto.
ChunkStream encode_pwe(const double* data, Dims dims, double tolerance,
                       double q_over_t,
                       std::vector<outlier::Outlier>* capture_outliers = nullptr,
                       Arena* arena = nullptr, int intra_chunk_threads = 1);

/// Size-bounded encode: the SPECK stream is truncated at `budget_bits`.
/// No outlier correction (no error bound), matching classic SPECK / the
/// paper's fixed-size mode. (The budgeted coder must stop on the exact
/// budget bit and is inherently serial, so it takes no thread knob.)
ChunkStream encode_fixed_rate(const double* data, Dims dims, size_t budget_bits,
                              Arena* arena = nullptr);

/// Average-error-targeted encode (paper §VII): pick the quantization step
/// from the RMSE target via the unit-norm wavelet's error equivalence; all
/// bitplanes down to that step are coded, no outlier pass.
ChunkStream encode_target_rmse(const double* data, Dims dims, double rmse_target,
                               Arena* arena = nullptr, int intra_chunk_threads = 1);

/// Multi-level decode (paper §VII): reconstruct the chunk at a coarsened
/// resolution by stopping the inverse wavelet recursion `drop_levels` early
/// and extracting the low-pass box. drop_levels == 0 is full resolution.
/// `coarse_dims` receives the extents of the returned field. The coarse
/// field approximates a box-filtered downsampling of the data (low-pass
/// scaling is divided out).
Status decode_lowres(const uint8_t* speck_stream, size_t speck_len, Dims dims,
                     size_t drop_levels, std::vector<double>& out,
                     Dims& coarse_dims);
Status decode_lowres(const std::vector<uint8_t>& speck_stream, Dims dims,
                     size_t drop_levels, std::vector<double>& out,
                     Dims& coarse_dims);

/// Decode one chunk (either mode) into `out` (dims.total() doubles). The
/// stream views are borrowed, not copied — they only need to stay alive for
/// the duration of the call.
Status decode(const uint8_t* speck_stream, size_t speck_len,
              const uint8_t* outlier_stream, size_t outlier_len, Dims dims,
              double* out, Arena* arena = nullptr, int intra_chunk_threads = 1);

/// Convenience overload over owned streams.
Status decode(const std::vector<uint8_t>& speck_stream,
              const std::vector<uint8_t>& outlier_stream, Dims dims, double* out);

}  // namespace sperr::pipeline
