#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/arena.h"
#include "common/checksum.h"
#include "common/stats.h"
#include "sperr/chunker.h"
#include "sperr/header.h"
#include "sperr/pipeline.h"
#include "sperr/sperr.h"

#ifdef SPERR_HAVE_OPENMP
#include <omp.h>
#endif

namespace sperr {

namespace {

std::vector<uint8_t> compress_impl(const double* data, Dims dims, const Config& cfg,
                                   uint8_t precision, Stats* stats) {
  if (dims.total() == 0) throw std::invalid_argument("sperr: empty input");
  if (cfg.mode == Mode::pwe && !(cfg.tolerance > 0.0))
    throw std::invalid_argument("sperr: PWE mode requires tolerance > 0");
  if (cfg.mode == Mode::fixed_rate && !(cfg.bpp > 0.0))
    throw std::invalid_argument("sperr: fixed-rate mode requires bpp > 0");
  if (cfg.mode == Mode::target_rmse && !(cfg.rmse > 0.0))
    throw std::invalid_argument("sperr: target-rmse mode requires rmse > 0");
  if (cfg.mode == Mode::pwe && !(cfg.q_over_t > 0.0))
    throw std::invalid_argument("sperr: q_over_t must be > 0");
  // Non-finite samples would silently poison the transform and quantizer;
  // reject them up front (the reference SPERR has the same requirement).
  for (size_t i = 0; i < dims.total(); ++i)
    if (!std::isfinite(data[i]))
      throw std::invalid_argument("sperr: input contains NaN or Inf at index " +
                                  std::to_string(i));

  const auto chunks = make_chunks(dims, cfg.chunk_dims);
  std::vector<pipeline::ChunkStream> streams(chunks.size());
  std::vector<double> means(chunks.size(), 0.0);

  // Intra-chunk SPECK lanes (byte-identical output at any setting). An
  // explicit count is honored as-is; auto (0) only expands on single-chunk
  // inputs, where the OpenMP chunk loop cannot use the machine — combining
  // auto with a parallel chunk loop would oversubscribe every core.
  const int intra_threads =
      cfg.intra_chunk_threads == 0 && chunks.size() > 1 ? 1
                                                        : cfg.intra_chunk_threads;

#ifdef SPERR_HAVE_OPENMP
  const int nt = cfg.num_threads > 0 ? cfg.num_threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic) num_threads(nt)
#endif
  for (size_t i = 0; i < chunks.size(); ++i) {
    const Chunk& c = chunks[i];
    // All large per-chunk scratch (gather buffer, coefficient copy, wavelet
    // tiles) comes from this worker's arena: after the first chunk of a
    // given size the loop performs no heap allocation for these buffers.
    Arena& arena = tls_arena();
    arena.reset();
    double* buf = arena.alloc<double>(c.dims.total());
    gather_chunk(data, dims, c, buf);
    // Chunk mean goes into the v3 directory: the DC fallback for coarse_fill
    // recovery when a damaged chunk's SPECK stream is beyond salvage.
    double sum = 0.0;
    for (size_t k = 0; k < c.dims.total(); ++k) sum += buf[k];
    means[i] = sum / double(c.dims.total());
    if (cfg.mode == Mode::pwe) {
      streams[i] = pipeline::encode_pwe(buf, c.dims, cfg.tolerance, cfg.q_over_t,
                                        nullptr, &arena, intra_threads);
    } else if (cfg.mode == Mode::target_rmse) {
      streams[i] = pipeline::encode_target_rmse(buf, c.dims, cfg.rmse, &arena,
                                                intra_threads);
    } else {
      const auto budget = size_t(std::llround(cfg.bpp * double(c.dims.total())));
      streams[i] = pipeline::encode_fixed_rate(buf, c.dims,
                                               std::max<size_t>(budget, 8), &arena);
    }
  }

  ContainerHeader hdr;
  hdr.mode = cfg.mode;
  hdr.precision = precision;
  hdr.dims = dims;
  hdr.chunk_dims = cfg.chunk_dims;
  hdr.quality = cfg.mode == Mode::pwe ? cfg.tolerance
                : cfg.mode == Mode::target_rmse ? cfg.rmse
                                                : cfg.bpp;
  std::vector<uint8_t> cat;  // scratch to hash speck‖outlier contiguously
  for (size_t i = 0; i < streams.size(); ++i) {
    const auto& s = streams[i];
    ChunkEntry e(s.speck.size(), s.outlier.size());
    if (s.outlier.empty()) {
      e.checksum = xxhash64(s.speck.data(), s.speck.size());
    } else {
      cat.assign(s.speck.begin(), s.speck.end());
      cat.insert(cat.end(), s.outlier.begin(), s.outlier.end());
      e.checksum = xxhash64(cat.data(), cat.size());
    }
    e.mean = means[i];
    hdr.entries.push_back(e);
  }

  std::vector<uint8_t> inner;
  hdr.serialize(inner);
  for (const auto& s : streams) {
    inner.insert(inner.end(), s.speck.begin(), s.speck.end());
    inner.insert(inner.end(), s.outlier.begin(), s.outlier.end());
  }

  const size_t inner_bytes = inner.size();
  const lossless::EncodeOptions lossless_opts{cfg.lossless_block_size, cfg.num_threads};
  const auto t0 = std::chrono::steady_clock::now();
  auto out = wrap_container(std::move(inner), cfg.lossless_pass, lossless_opts);
  const auto t1 = std::chrono::steady_clock::now();

  if (stats) {
    *stats = Stats{};
    stats->compressed_bytes = out.size();
    stats->num_chunks = chunks.size();
    if (cfg.lossless_pass) {
      const size_t bs = std::clamp(cfg.lossless_block_size, size_t(1) << 12, size_t(1) << 30);
      stats->lossless_blocks = inner_bytes == 0 ? 0 : (inner_bytes - 1) / bs + 1;
      stats->timing.lossless_s = std::chrono::duration<double>(t1 - t0).count();
    }
    // Serial reduction in chunk-index order — per-pass (and per-stage)
    // timers are doubles, and summing them in OpenMP completion order would
    // make these fields differ run-to-run on identical inputs (float
    // addition is not associative). Keeping the fold here, ordered, makes
    // Stats (and the --speck_json records built from it) reproducible.
    for (const auto& s : streams) {
      stats->speck_bytes += s.speck.size();
      stats->outlier_bytes += s.outlier.size();
      stats->num_outliers += s.num_outliers;
      stats->speck_payload_bits += s.speck_stats.payload_bits;
      stats->speck_planes_coded += s.speck_stats.planes_coded;
      stats->speck_significant += s.speck_stats.significant_count;
      for (const auto& p : s.speck_stats.passes) {
        stats->speck_sorting_s += p.sorting_s;
        stats->speck_significance_s += p.significance_s;
        stats->speck_refinement_s += p.refinement_s;
      }
      stats->timing += s.timing;
    }
    stats->bpp = double(out.size()) * 8.0 / double(dims.total());
  }
  return out;
}

}  // namespace

std::vector<uint8_t> compress(const double* data, Dims dims, const Config& cfg,
                              Stats* stats) {
  return compress_impl(data, dims, cfg, 8, stats);
}

std::vector<uint8_t> compress(const float* data, Dims dims, const Config& cfg,
                              Stats* stats) {
  std::vector<double> wide(data, data + dims.total());
  return compress_impl(wide.data(), dims, cfg, 4, stats);
}

double tolerance_from_idx(const double* data, size_t n, int idx) {
  const FieldStats s = compute_stats(data, n);
  return std::ldexp(s.range(), -idx);
}

double tolerance_from_idx(const float* data, size_t n, int idx) {
  const FieldStats s = compute_stats(data, n);
  return std::ldexp(s.range(), -idx);
}

}  // namespace sperr
