#pragma once

// Volume chunking for embarrassingly parallel execution (paper §III-D).
// A volume is cut into a grid of chunks of (at most) the preferred extents;
// trailing chunks along each axis absorb the remainder, so neither
// power-of-two extents nor divisibility is required.

#include <algorithm>
#include <vector>

#include "common/types.h"

namespace sperr {

struct Chunk {
  Dims origin{0, 0, 0};  ///< offset of this chunk within the volume
  Dims dims;             ///< extents of this chunk
};

/// Enumerate the chunk grid in z-major, x-fastest order.
std::vector<Chunk> make_chunks(Dims volume, Dims preferred);

/// Upper bound on make_chunks(volume, preferred).size(), computable without
/// materializing the grid. Decoders gate untrusted headers on this before
/// building the (48-bytes-per-entry) chunk vector: a header declaring huge
/// extents with tiny chunks must be rejected, not enumerated. Safe for any
/// plausible_dims volume (counts fit comfortably in 64 bits).
inline size_t chunk_count_bound(Dims volume, Dims preferred) {
  const auto per_axis = [](size_t n, size_t pref) {
    pref = std::min(std::max<size_t>(pref, 1), std::max<size_t>(n, 1));
    return n / pref + 1;
  };
  return per_axis(volume.x, preferred.x) * per_axis(volume.y, preferred.y) *
         per_axis(volume.z, preferred.z);
}

/// Copy one chunk out of a volume into a contiguous buffer.
void gather_chunk(const double* volume, Dims vol_dims, const Chunk& chunk,
                  double* out);

/// Write a contiguous chunk buffer back into its place in the volume.
void scatter_chunk(const double* chunk_data, const Chunk& chunk,
                   double* volume, Dims vol_dims);

/// scatter_chunk narrowing to float on the way out, for the f32 decode path
/// (no intermediate full-volume double field).
void scatter_chunk_narrow(const double* chunk_data, const Chunk& chunk,
                          float* volume, Dims vol_dims);

}  // namespace sperr
