#pragma once

// Volume chunking for embarrassingly parallel execution (paper §III-D).
// A volume is cut into a grid of chunks of (at most) the preferred extents;
// trailing chunks along each axis absorb the remainder, so neither
// power-of-two extents nor divisibility is required.

#include <vector>

#include "common/types.h"

namespace sperr {

struct Chunk {
  Dims origin{0, 0, 0};  ///< offset of this chunk within the volume
  Dims dims;             ///< extents of this chunk
};

/// Enumerate the chunk grid in z-major, x-fastest order.
std::vector<Chunk> make_chunks(Dims volume, Dims preferred);

/// Copy one chunk out of a volume into a contiguous buffer.
void gather_chunk(const double* volume, Dims vol_dims, const Chunk& chunk,
                  double* out);

/// Write a contiguous chunk buffer back into its place in the volume.
void scatter_chunk(const double* chunk_data, const Chunk& chunk,
                   double* volume, Dims vol_dims);

}  // namespace sperr
