#include "sperr/pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "outlier/coder.h"
#include "speck/decoder.h"
#include "speck/encoder.h"
#include "wavelet/dwt.h"

namespace sperr::pipeline {

ChunkStream encode_pwe(const double* data, Dims dims, double tolerance,
                       double q_over_t,
                       std::vector<outlier::Outlier>* capture_outliers,
                       Arena* arena, int intra_chunk_threads) {
  ChunkStream result;
  const size_t n = dims.total();
  const double q = q_over_t * tolerance;
  Arena& a = arena ? *arena : tls_arena();
  Arena::Scope scope(a);
  result.timing.bytes = uint64_t(n) * sizeof(double);

  // Stage 1: forward wavelet transform.
  Timer timer;
  double* coeffs = a.alloc<double>(n);
  std::copy(data, data + n, coeffs);
  wavelet::forward_dwt(coeffs, dims, wavelet::Kernel::cdf97, &a);
  result.timing.transform_s = timer.seconds();

  // Stage 2: SPECK-code all bitplanes down to the quantization step q. The
  // encoder also hands back the decoder-equivalent coefficient
  // reconstruction so stage 3 need not decode the stream it just built.
  timer.reset();
  std::vector<double> recon;
  result.speck = speck::encode(coeffs, dims, q, 0, &result.speck_stats, &recon,
                               intra_chunk_threads);
  result.timing.speck_s = timer.seconds();

  // Stage 3: locate outliers — inverse transform plus a comparison with the
  // original input (paper §V-C stage 3).
  timer.reset();
  wavelet::inverse_dwt(recon.data(), dims, wavelet::Kernel::cdf97, &a);
  std::vector<outlier::Outlier> outliers;
  for (size_t i = 0; i < n; ++i) {
    const double err = data[i] - recon[i];
    if (std::fabs(err) > tolerance) outliers.push_back({i, err});
  }
  result.timing.locate_s = timer.seconds();
  if (capture_outliers) *capture_outliers = outliers;

  // Stage 4: code the outliers so they can be corrected to within t.
  timer.reset();
  outlier::EncodeStats ostats;
  result.outlier = outlier::encode(std::move(outliers), n, tolerance, &ostats);
  result.num_outliers = ostats.num_outliers;
  result.outlier_payload_bits = ostats.payload_bits;
  result.timing.outlier_s = timer.seconds();

  return result;
}

ChunkStream encode_fixed_rate(const double* data, Dims dims, size_t budget_bits,
                              Arena* arena) {
  ChunkStream result;
  const size_t n = dims.total();
  Arena& a = arena ? *arena : tls_arena();
  Arena::Scope scope(a);
  result.timing.bytes = uint64_t(n) * sizeof(double);

  Timer timer;
  double* coeffs = a.alloc<double>(n);
  std::copy(data, data + n, coeffs);
  wavelet::forward_dwt(coeffs, dims, wavelet::Kernel::cdf97, &a);
  result.timing.transform_s = timer.seconds();

  // Pick q far below the coefficient scale so the bit budget, not the
  // quantization floor, terminates coding (~50 bitplanes available).
  double max_mag = 0.0;
  for (size_t i = 0; i < n; ++i) max_mag = std::max(max_mag, std::fabs(coeffs[i]));
  const double q = max_mag > 0.0 ? std::ldexp(max_mag, -50) : 1.0;

  timer.reset();
  result.speck = speck::encode(coeffs, dims, q, budget_bits, &result.speck_stats);
  result.timing.speck_s = timer.seconds();
  return result;
}

ChunkStream encode_target_rmse(const double* data, Dims dims, double rmse_target,
                               Arena* arena, int intra_chunk_threads) {
  ChunkStream result;
  const size_t n = dims.total();
  Arena& a = arena ? *arena : tls_arena();
  Arena::Scope scope(a);
  result.timing.bytes = uint64_t(n) * sizeof(double);

  Timer timer;
  double* coeffs = a.alloc<double>(n);
  std::copy(data, data + n, coeffs);
  wavelet::forward_dwt(coeffs, dims, wavelet::Kernel::cdf97, &a);
  result.timing.transform_s = timer.seconds();

  // Unit-norm near-orthogonal basis: coefficient-domain RMSE ~ output RMSE
  // (paper §III-A / §VII). Mid-riser quantization with step q injects
  // q/sqrt(12) RMSE per coded coefficient; dead-zone zeros add a little
  // more, so take a 2x safety margin.
  const double q = rmse_target * std::sqrt(12.0) * 0.5;

  timer.reset();
  result.speck = speck::encode(coeffs, dims, q, 0, &result.speck_stats, nullptr,
                               intra_chunk_threads);
  result.timing.speck_s = timer.seconds();
  return result;
}

Status decode_lowres(const uint8_t* speck_stream, size_t speck_len, Dims dims,
                     size_t drop_levels, std::vector<double>& out,
                     Dims& coarse_dims) {
  const size_t max_levels = wavelet::plan_levels(dims).max();
  const size_t keep = std::min(drop_levels, max_levels);

  std::vector<double> full(dims.total());
  const Status s = speck::decode(speck_stream, speck_len, dims, full.data());
  if (s != Status::ok) return s;
  wavelet::inverse_dwt_partial(full.data(), dims, keep);

  // Extract the low-pass box and divide out the per-pass DC gain so the
  // coarse field sits on the data's own scale.
  coarse_dims = wavelet::lowpass_box_at(dims, keep);
  const wavelet::LevelPlan plan = wavelet::plan_levels(dims);
  const size_t passes = std::min(keep, plan.lx) + std::min(keep, plan.ly) +
                        std::min(keep, plan.lz);
  const double scale = 1.0 / std::pow(wavelet::lowpass_dc_gain(), double(passes));

  out.resize(coarse_dims.total());
  for (size_t z = 0; z < coarse_dims.z; ++z)
    for (size_t y = 0; y < coarse_dims.y; ++y)
      for (size_t x = 0; x < coarse_dims.x; ++x)
        out[coarse_dims.index(x, y, z)] = full[dims.index(x, y, z)] * scale;
  return Status::ok;
}

Status decode_lowres(const std::vector<uint8_t>& speck_stream, Dims dims,
                     size_t drop_levels, std::vector<double>& out,
                     Dims& coarse_dims) {
  return decode_lowres(speck_stream.data(), speck_stream.size(), dims, drop_levels,
                       out, coarse_dims);
}

Status decode(const uint8_t* speck_stream, size_t speck_len,
              const uint8_t* outlier_stream, size_t outlier_len, Dims dims,
              double* out, Arena* arena, int intra_chunk_threads) {
  Arena& a = arena ? *arena : tls_arena();
  Arena::Scope scope(a);
  const Status s =
      speck::decode(speck_stream, speck_len, dims, out, nullptr, intra_chunk_threads);
  if (s != Status::ok) return s;
  wavelet::inverse_dwt(out, dims, wavelet::Kernel::cdf97, &a);

  if (outlier_len != 0) {
    std::vector<outlier::Outlier> outliers;
    const Status so = outlier::decode(outlier_stream, outlier_len, dims.total(), outliers);
    if (so != Status::ok) return so;
    for (const auto& o : outliers) out[o.pos] += o.corr;
  }
  return Status::ok;
}

Status decode(const std::vector<uint8_t>& speck_stream,
              const std::vector<uint8_t>& outlier_stream, Dims dims, double* out) {
  return decode(speck_stream.data(), speck_stream.size(), outlier_stream.data(),
                outlier_stream.size(), dims, out);
}

}  // namespace sperr::pipeline
