#include "sperr/chunker.h"

#include <algorithm>
#include <cstring>

namespace sperr {

namespace {

// Split extent n into segments of `pref` with the remainder folded into the
// final segment when it would be smaller than half a chunk; this avoids the
// degenerate slivers (e.g. a 1-voxel-thin chunk) that hurt wavelet quality.
std::vector<std::pair<size_t, size_t>> segments(size_t n, size_t pref) {
  std::vector<std::pair<size_t, size_t>> out;  // (offset, length)
  pref = std::min(std::max<size_t>(pref, 1), n);
  size_t off = 0;
  while (n - off > pref) {
    const size_t rest = n - off - pref;
    if (rest < pref / 2) {
      // Absorb the sliver into this final, slightly longer segment.
      out.emplace_back(off, n - off);
      return out;
    }
    out.emplace_back(off, pref);
    off += pref;
  }
  out.emplace_back(off, n - off);
  return out;
}

}  // namespace

std::vector<Chunk> make_chunks(Dims volume, Dims preferred) {
  const auto xs = segments(volume.x, preferred.x);
  const auto ys = segments(volume.y, preferred.y);
  const auto zs = segments(volume.z, preferred.z);
  std::vector<Chunk> chunks;
  chunks.reserve(xs.size() * ys.size() * zs.size());
  for (const auto& [zo, zl] : zs)
    for (const auto& [yo, yl] : ys)
      for (const auto& [xo, xl] : xs)
        chunks.push_back({Dims{xo, yo, zo}, Dims{xl, yl, zl}});
  return chunks;
}

void gather_chunk(const double* volume, Dims vol_dims, const Chunk& chunk,
                  double* out) {
  const Dims& d = chunk.dims;
  for (size_t z = 0; z < d.z; ++z)
    for (size_t y = 0; y < d.y; ++y) {
      const size_t src =
          vol_dims.index(chunk.origin.x, chunk.origin.y + y, chunk.origin.z + z);
      std::memcpy(out + d.index(0, y, z), volume + src, d.x * sizeof(double));
    }
}

void scatter_chunk(const double* chunk_data, const Chunk& chunk, double* volume,
                   Dims vol_dims) {
  const Dims& d = chunk.dims;
  for (size_t z = 0; z < d.z; ++z)
    for (size_t y = 0; y < d.y; ++y) {
      const size_t dst =
          vol_dims.index(chunk.origin.x, chunk.origin.y + y, chunk.origin.z + z);
      std::memcpy(volume + dst, chunk_data + d.index(0, y, z), d.x * sizeof(double));
    }
}

void scatter_chunk_narrow(const double* chunk_data, const Chunk& chunk,
                          float* volume, Dims vol_dims) {
  const Dims& d = chunk.dims;
  for (size_t z = 0; z < d.z; ++z)
    for (size_t y = 0; y < d.y; ++y) {
      const size_t dst =
          vol_dims.index(chunk.origin.x, chunk.origin.y + y, chunk.origin.z + z);
      const double* src = chunk_data + d.index(0, y, z);
      for (size_t x = 0; x < d.x; ++x) volume[dst + x] = float(src[x]);
    }
}

}  // namespace sperr
