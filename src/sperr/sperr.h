#pragma once

// Public API of the SPERR reproduction: lossy compression of structured
// 1/2/3-D scientific data with either a maximum point-wise error (PWE)
// guarantee or a size bound.
//
// Quick start:
//
//   sperr::Config cfg;
//   cfg.mode = sperr::Mode::pwe;
//   cfg.tolerance = 1e-3;                       // every value within 1e-3
//   auto blob = sperr::compress(field.data(), {256, 256, 256}, cfg);
//
//   std::vector<double> recon;
//   sperr::Dims dims;
//   sperr::decompress(blob.data(), blob.size(), recon, dims);
//
// Large volumes are cut into chunks (cfg.chunk_dims, default 256^3) that are
// compressed independently in parallel with OpenMP (paper §III-D). The final
// container is passed through a built-in lossless codec (paper §V).

#include <cstdint>
#include <vector>

#include "common/resource.h"
#include "common/types.h"
#include "sperr/config.h"

namespace sperr {

/// Compress a double-precision field of the given extents.
/// For mode == pwe, cfg.tolerance must be > 0; for fixed_rate, cfg.bpp > 0.
/// `stats`, when non-null, receives size/outlier/timing instrumentation.
std::vector<uint8_t> compress(const double* data, Dims dims, const Config& cfg,
                              Stats* stats = nullptr);

/// Single-precision convenience overload (processed internally in double;
/// the container records the input precision for round-tripping).
std::vector<uint8_t> compress(const float* data, Dims dims, const Config& cfg,
                              Stats* stats = nullptr);

/// Decompress a container produced by compress(). `out` is resized; `dims`
/// receives the original extents.
///
/// Every decode entry point below takes an optional `limits`
/// (common/resource.h): header-declared resource needs — output bytes,
/// lossless raw size, chunk counts — are admitted against it *before* any
/// allocation is sized from them, and a violation returns
/// Status::resource_exhausted. nullptr means ResourceLimits::defaults(),
/// which is finite: decoding fully untrusted bytes is safe by default, and
/// unbounded decoding requires opting in via ResourceLimits::unlimited().
Status decompress(const uint8_t* stream, size_t nbytes, std::vector<double>& out,
                  Dims& dims, const ResourceLimits* limits = nullptr);
Status decompress(const uint8_t* stream, size_t nbytes, std::vector<float>& out,
                  Dims& dims, const ResourceLimits* limits = nullptr);

/// Fault-isolated decompression. Chunks are independent streams and v3
/// containers checksum each one, so a damaged archive is salvageable: every
/// chunk is verified (XXH64 over its speck+outlier bytes) and decoded
/// independently, and `policy` decides what happens to damaged chunks —
/// fail_fast mirrors decompress() (error out, deterministically reporting
/// the lowest damaged chunk index), zero_fill and coarse_fill patch the
/// damaged region and keep going, so the N−1 good chunks come back
/// bit-identical to a clean decode. `report`, when non-null, receives the
/// per-chunk verdicts (status, checksum comparison, byte offsets, timing).
///
/// Returns ok when the output field is usable under the chosen policy (for
/// the fill policies that includes recovered fields — inspect
/// report->damaged for whether anything was patched); returns an error only
/// when nothing could be recovered (wrapper/header/directory destroyed, or
/// fail_fast met damage). Works on v1/v2 containers too, where only
/// structural damage (bad lengths, truncation) is detectable.
Status decompress_tolerant(const uint8_t* stream, size_t nbytes, Recovery policy,
                           std::vector<double>& out, Dims& dims,
                           DecodeReport* report = nullptr,
                           const ResourceLimits* limits = nullptr);

/// Integrity audit without reconstruction: unwrap the lossless layer, check
/// the header self-checksum, and verify every chunk's XXH64. Much cheaper
/// than a decode (hashing only). Returns ok for a fully intact archive;
/// corrupt_chunk when any chunk fails (all chunks are always audited —
/// per-chunk verdicts land in `report`). v1/v2 containers verify lengths
/// only (checksum_present = false in their chunk reports).
Status verify_container(const uint8_t* stream, size_t nbytes,
                        DecodeReport* report = nullptr,
                        const ResourceLimits* limits = nullptr);

/// Multi-resolution decompression (paper §VII): reconstruct the field at a
/// coarsened resolution by stopping the inverse wavelet recursion
/// `drop_levels` early — each dropped level roughly halves every
/// transformed axis. Requires a single-chunk container (per-chunk coarse
/// grids would not tile a coarse volume); multi-chunk streams return
/// invalid_argument. drop_levels == 0 yields full resolution (outlier
/// corrections are not applied — they live on the fine grid and are within
/// the tolerance by construction).
Status decompress_lowres(const uint8_t* stream, size_t nbytes, size_t drop_levels,
                         std::vector<double>& out, Dims& coarse_dims,
                         const ResourceLimits* limits = nullptr);

/// Truncate a fixed-rate container to a lower bitrate without recompressing
/// (paper §VII: the SPECK stream is embedded, so any prefix decodes). Only
/// fixed-rate containers are truncatable — a PWE container's outlier
/// corrections are not embedded, so cutting one would void its guarantee
/// (returns invalid_argument). The result is a valid container at
/// ~new_bpp; requesting a rate above the stored one is a no-op copy.
Status truncate_fixed_rate(const uint8_t* stream, size_t nbytes, double new_bpp,
                           std::vector<uint8_t>& out);

/// Table I translation: tolerance t = Range / 2^idx of the given field.
double tolerance_from_idx(const double* data, size_t n, int idx);
double tolerance_from_idx(const float* data, size_t n, int idx);

}  // namespace sperr
