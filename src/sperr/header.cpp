#include "sperr/header.h"

#include "common/byteio.h"
#include "lossless/codec.h"

namespace sperr {

void ContainerHeader::serialize(std::vector<uint8_t>& out) const {
  put_u32(out, kInnerMagic);
  put_u8(out, uint8_t(mode));
  put_u8(out, precision);
  put_u64(out, dims.x);
  put_u64(out, dims.y);
  put_u64(out, dims.z);
  put_u64(out, chunk_dims.x);
  put_u64(out, chunk_dims.y);
  put_u64(out, chunk_dims.z);
  put_f64(out, quality);
  put_u32(out, uint32_t(chunk_lens.size()));
  for (const auto& [sl, ol] : chunk_lens) {
    put_u64(out, sl);
    put_u64(out, ol);
  }
}

Status ContainerHeader::deserialize(ByteReader& br) {
  if (br.u32() != kInnerMagic) return Status::corrupt_stream;
  const uint8_t m = br.u8();
  if (m > uint8_t(Mode::target_rmse)) return Status::corrupt_stream;
  mode = Mode(m);
  precision = br.u8();
  if (precision != 4 && precision != 8) return Status::corrupt_stream;
  dims.x = br.u64();
  dims.y = br.u64();
  dims.z = br.u64();
  chunk_dims.x = br.u64();
  chunk_dims.y = br.u64();
  chunk_dims.z = br.u64();
  quality = br.f64();
  const uint32_t n = br.u32();
  if (!br.ok()) return Status::truncated_stream;
  if (!plausible_dims(dims)) return Status::corrupt_stream;
  // Each chunk entry occupies 16 header bytes; an n beyond that is garbage.
  if (n > br.remaining() / 16) return Status::truncated_stream;
  chunk_lens.clear();
  chunk_lens.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t sl = br.u64();
    const uint64_t ol = br.u64();
    if (!br.ok()) return Status::truncated_stream;
    chunk_lens.emplace_back(sl, ol);
  }
  if (dims.total() == 0) return Status::corrupt_stream;
  return Status::ok;
}

std::vector<uint8_t> wrap_container(std::vector<uint8_t> inner, bool lossless,
                                    const lossless::EncodeOptions& opts) {
  std::vector<uint8_t> payload =
      lossless ? lossless::compress(inner, opts) : std::move(inner);

  std::vector<uint8_t> out;
  out.reserve(payload.size() + 14);
  put_u32(out, ContainerHeader::kOuterMagic);
  put_u8(out, ContainerHeader::kVersion);
  put_u8(out, lossless ? 1 : 0);
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status unwrap_container(const uint8_t* data, size_t size, std::vector<uint8_t>& inner,
                        size_t* corrupt_block) {
  ByteReader br(data, size);
  if (br.u32() != ContainerHeader::kOuterMagic) return Status::corrupt_stream;
  const uint8_t version = br.u8();
  if (version < ContainerHeader::kMinVersion || version > ContainerHeader::kVersion)
    return Status::corrupt_stream;
  const uint8_t lossless_flag = br.u8();
  const uint64_t len = br.u64();
  if (!br.ok()) return Status::truncated_stream;
  const uint8_t* payload = br.raw(len);
  if (!payload) return Status::truncated_stream;

  if (lossless_flag) return lossless::decompress(payload, len, inner, corrupt_block);
  inner.assign(payload, payload + len);
  return Status::ok;
}

}  // namespace sperr
