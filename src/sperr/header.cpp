#include "sperr/header.h"

#include "common/byteio.h"
#include "common/checksum.h"
#include "lossless/codec.h"

namespace sperr {

namespace {
constexpr size_t kEntryBytesV2 = 16;  ///< u64 speck_len + u64 outlier_len
constexpr size_t kEntryBytesV3 = 32;  ///< + u64 checksum + f64 mean
}  // namespace

void ContainerHeader::serialize(std::vector<uint8_t>& out) const {
  const size_t start = out.size();
  put_u32(out, kInnerMagic);
  put_u8(out, uint8_t(mode));
  put_u8(out, precision);
  put_u64(out, dims.x);
  put_u64(out, dims.y);
  put_u64(out, dims.z);
  put_u64(out, chunk_dims.x);
  put_u64(out, chunk_dims.y);
  put_u64(out, chunk_dims.z);
  put_f64(out, quality);
  put_u32(out, uint32_t(entries.size()));
  for (const ChunkEntry& e : entries) {
    put_u64(out, e.speck_len);
    put_u64(out, e.outlier_len);
    put_u64(out, e.checksum);
    put_f64(out, e.mean);
  }
  // Self-checksum over every header byte so far: directory damage is caught
  // before the lengths mis-slice the payload.
  put_u64(out, xxhash64(out.data() + start, out.size() - start));
}

Status ContainerHeader::deserialize(ByteReader& br, uint8_t ver) {
  const size_t start = br.pos();
  version = ver;
  if (br.u32() != kInnerMagic) return Status::corrupt_stream;
  const uint8_t m = br.u8();
  if (m > uint8_t(Mode::target_rmse)) return Status::corrupt_stream;
  mode = Mode(m);
  precision = br.u8();
  if (precision != 4 && precision != 8) return Status::corrupt_stream;
  dims.x = br.u64();
  dims.y = br.u64();
  dims.z = br.u64();
  chunk_dims.x = br.u64();
  chunk_dims.y = br.u64();
  chunk_dims.z = br.u64();
  quality = br.f64();
  const uint32_t n = br.u32();
  if (!br.ok()) return Status::truncated_stream;
  if (!plausible_dims(dims)) return Status::corrupt_stream;
  const size_t entry_bytes = has_integrity() ? kEntryBytesV3 : kEntryBytesV2;
  // An entry count beyond what the remaining bytes can hold is garbage.
  if (n > br.remaining() / entry_bytes) return Status::truncated_stream;
  entries.clear();
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ChunkEntry e;
    e.speck_len = br.u64();
    e.outlier_len = br.u64();
    if (has_integrity()) {
      e.checksum = br.u64();
      e.mean = br.f64();
    }
    if (!br.ok()) return Status::truncated_stream;
    entries.push_back(e);
  }
  if (has_integrity()) {
    const size_t hashed = br.pos() - start;
    const uint64_t stored = br.u64();
    if (!br.ok()) return Status::truncated_stream;
    if (stored != xxhash64(br.base() + start, hashed)) return Status::corrupt_stream;
  }
  if (dims.total() == 0) return Status::corrupt_stream;
  return Status::ok;
}

std::vector<uint8_t> wrap_container(std::vector<uint8_t> inner, bool lossless,
                                    const lossless::EncodeOptions& opts) {
  std::vector<uint8_t> payload =
      lossless ? lossless::compress(inner, opts) : std::move(inner);

  std::vector<uint8_t> out;
  out.reserve(payload.size() + 14);
  put_u32(out, ContainerHeader::kOuterMagic);
  put_u8(out, ContainerHeader::kVersion);
  put_u8(out, lossless ? 1 : 0);
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status unwrap_container(const uint8_t* data, size_t size, std::vector<uint8_t>& inner,
                        size_t* corrupt_block, uint8_t* version,
                        const ResourceLimits* limits) {
  ByteReader br(data, size);
  if (br.u32() != ContainerHeader::kOuterMagic) return Status::corrupt_stream;
  const uint8_t ver = br.u8();
  if (ver < ContainerHeader::kMinVersion || ver > ContainerHeader::kVersion)
    return Status::corrupt_stream;
  if (version) *version = ver;
  const uint8_t lossless_flag = br.u8();
  const uint64_t len = br.u64();
  if (!br.ok()) return Status::truncated_stream;
  const uint8_t* payload = br.raw(len);
  if (!payload) return Status::truncated_stream;

  if (lossless_flag)
    return lossless::decompress(payload, len, inner, corrupt_block,
                                /*num_threads=*/0, limits);
  inner.assign(payload, payload + len);
  return Status::ok;
}

Status open_container(const uint8_t* data, size_t size, std::vector<uint8_t>& inner,
                      ContainerHeader& hdr, size_t* payload_pos,
                      size_t* corrupt_block, const ResourceLimits* limits) {
  uint8_t version = ContainerHeader::kVersion;
  if (const Status s =
          unwrap_container(data, size, inner, corrupt_block, &version, limits);
      s != Status::ok)
    return s;
  ByteReader br(inner.data(), inner.size());
  if (const Status s = hdr.deserialize(br, version); s != Status::ok) return s;
  // The directory parsed, so the chunk count is real — but decoding admits
  // one buffer per chunk, so an absurd count is rejected before any of that.
  if (!effective_limits(limits).admits_chunks(hdr.entries.size()))
    return Status::resource_exhausted;
  // The declared extents size every downstream buffer; admit them here so
  // even header-only consumers (sperr_cc info) refuse a bomb. deserialize
  // capped dims at kMaxVolumeElements, so the product cannot overflow.
  const uint64_t declared = uint64_t(hdr.dims.total()) * hdr.precision;
  if (!effective_limits(limits).admits_output(declared))
    return Status::resource_exhausted;
  if (payload_pos) *payload_pos = br.pos();
  return Status::ok;
}

}  // namespace sperr
