#pragma once

// Deterministic synthetic stand-ins for the SDRBench data sets the paper
// evaluates on (§VI-B) and the Kodak Lighthouse image (Fig. 1). Each
// generator reproduces the statistical character that drives compressor
// behaviour on the real field:
//   * Miranda (hydrodynamics): smooth turbulent fields with material
//     interfaces (Rayleigh-Taylor-like mixing layers);
//   * S3D (combustion): sharp reaction fronts over smooth backgrounds;
//   * Nyx (cosmology): log-normal density with orders-of-magnitude dynamic
//     range and point-like halos;
//   * QMCPACK: oscillatory, localized orbitals stacked as separate volumes.
// All generators are seeded and bit-reproducible across platforms (they use
// the project's own xoshiro/hash primitives, never <random>).

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sperr::data {

/// Band-limited fractal (multi-octave) value noise in [-1, 1]-ish range.
/// Coordinates are in grid units; `base_freq` is the number of lattice cells
/// across a unit domain at octave 0.
double fractal_noise(double x, double y, double z, uint64_t seed,
                     int octaves, double base_freq, double persistence);

// --- Miranda-like hydrodynamics fields -------------------------------------
std::vector<double> miranda_pressure(Dims dims, uint64_t seed = 1);
std::vector<double> miranda_viscosity(Dims dims, uint64_t seed = 2);
std::vector<double> miranda_density(Dims dims, uint64_t seed = 3);
std::vector<double> miranda_velocity_x(Dims dims, uint64_t seed = 4);

// --- S3D-like combustion fields ---------------------------------------------
std::vector<double> s3d_temperature(Dims dims, uint64_t seed = 5);
std::vector<double> s3d_ch4(Dims dims, uint64_t seed = 6);
std::vector<double> s3d_velocity_x(Dims dims, uint64_t seed = 7);

// --- Nyx-like cosmology fields ----------------------------------------------
std::vector<double> nyx_dark_matter_density(Dims dims, uint64_t seed = 8);
std::vector<double> nyx_velocity_x(Dims dims, uint64_t seed = 9);

// --- QMCPACK-like orbitals ---------------------------------------------------
/// One volume per orbital; `orbital` selects which (changes frequency/site).
std::vector<double> qmcpack_orbital(Dims dims, int orbital, uint64_t seed = 10);

// --- 2-D natural-image stand-in (Fig. 1) -------------------------------------
std::vector<double> lighthouse_2d(Dims dims, uint64_t seed = 11);

/// Look up a generator by its benchmark name (e.g. "miranda_pressure",
/// "nyx_dark_matter_density"). Throws std::invalid_argument on unknown names.
std::vector<double> make_field(const std::string& name, Dims dims, uint64_t seed = 0);

/// Names accepted by make_field.
const std::vector<std::string>& field_names();

}  // namespace sperr::data
