#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "data/spectral.h"

namespace sperr::data {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Stateless hash of a lattice point -> double in [-1, 1].
inline uint64_t mix64(uint64_t v) {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ULL;
  v ^= v >> 33;
  return v;
}

inline double lattice_value(int64_t ix, int64_t iy, int64_t iz, uint64_t seed) {
  uint64_t h = seed;
  h = mix64(h ^ (uint64_t(ix) * 0x9e3779b97f4a7c15ULL));
  h = mix64(h ^ (uint64_t(iy) * 0xbf58476d1ce4e5b9ULL));
  h = mix64(h ^ (uint64_t(iz) * 0x94d049bb133111ebULL));
  return double(h >> 11) * 0x1.0p-52 - 1.0;  // [-1, 1)
}

inline double fade(double u) {  // Perlin quintic: C2-continuous interpolation
  return u * u * u * (u * (u * 6.0 - 15.0) + 10.0);
}

/// Single-octave value noise at continuous lattice coordinates.
double value_noise(double x, double y, double z, uint64_t seed) {
  const double fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
  const auto ix = int64_t(fx), iy = int64_t(fy), iz = int64_t(fz);
  const double ux = fade(x - fx), uy = fade(y - fy), uz = fade(z - fz);

  double c[2][2][2];
  for (int dz = 0; dz < 2; ++dz)
    for (int dy = 0; dy < 2; ++dy)
      for (int dx = 0; dx < 2; ++dx)
        c[dz][dy][dx] = lattice_value(ix + dx, iy + dy, iz + dz, seed);

  auto lerp = [](double a, double b, double u) { return a + (b - a) * u; };
  const double x00 = lerp(c[0][0][0], c[0][0][1], ux);
  const double x01 = lerp(c[0][1][0], c[0][1][1], ux);
  const double x10 = lerp(c[1][0][0], c[1][0][1], ux);
  const double x11 = lerp(c[1][1][0], c[1][1][1], ux);
  const double y0 = lerp(x00, x01, uy);
  const double y1 = lerp(x10, x11, uy);
  return lerp(y0, y1, uz);
}

/// Evaluate `fn(u, v, w)` over the grid with normalized coordinates in
/// [0, 1) along each axis, writing into a fresh vector.
template <class Fn>
std::vector<double> fill_grid(Dims dims, Fn fn) {
  std::vector<double> out(dims.total());
  const double sx = 1.0 / double(dims.x);
  const double sy = 1.0 / double(dims.y);
  const double sz = 1.0 / double(dims.z);
#pragma omp parallel for collapse(2) schedule(static)
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y) {
      const double w = double(z) * sz;
      const double v = double(y) * sy;
      double* row = out.data() + dims.index(0, y, z);
      for (size_t x = 0; x < dims.x; ++x) row[x] = fn(double(x) * sx, v, w);
    }
  return out;
}

/// A set of randomly placed Gaussian kernels (hotspots / halos / orbital
/// sites), deterministic per seed.
struct Kernels {
  std::vector<double> cx, cy, cz, amp, width;

  Kernels(int count, uint64_t seed, double amp_lo, double amp_hi, double w_lo,
          double w_hi) {
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
      cx.push_back(rng.uniform());
      cy.push_back(rng.uniform());
      cz.push_back(rng.uniform());
      amp.push_back(rng.uniform(amp_lo, amp_hi));
      width.push_back(rng.uniform(w_lo, w_hi));
    }
  }

  [[nodiscard]] double eval(double x, double y, double z) const {
    double v = 0.0;
    for (size_t i = 0; i < cx.size(); ++i) {
      const double dx = x - cx[i], dy = y - cy[i], dz = z - cz[i];
      const double r2 = dx * dx + dy * dy + dz * dz;
      v += amp[i] * std::exp(-r2 / (2.0 * width[i] * width[i]));
    }
    return v;
  }
};

}  // namespace

double fractal_noise(double x, double y, double z, uint64_t seed, int octaves,
                     double base_freq, double persistence) {
  double sum = 0.0, amp = 1.0, freq = base_freq, norm = 0.0;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * value_noise(x * freq, y * freq, z * freq, seed + uint64_t(o) * 7919);
    norm += amp;
    amp *= persistence;
    freq *= 2.0;
  }
  return norm > 0.0 ? sum / norm : 0.0;
}

std::vector<double> miranda_pressure(Dims dims, uint64_t seed) {
  // Smooth, broad-spectrum turbulence plus a large-scale vertical gradient,
  // like a pressure field in an RT mixing simulation. Units ~ 1e6 (dyn/cm^2)
  // to give a realistic absolute scale for the tolerance-from-range math.
  return fill_grid(dims, [seed](double x, double y, double z) {
    const double turb = fractal_noise(x, y, z, seed, 6, 4.0, 0.55);
    const double strat = 1.0 + 0.4 * z + 0.08 * std::sin(kTwoPi * x);
    return 1.0e6 * (strat + 0.25 * turb);
  });
}

std::vector<double> miranda_viscosity(Dims dims, uint64_t seed) {
  // Effective viscosity concentrated in the mixing layer: smooth background
  // with a band of enhanced, interface-modulated values.
  return fill_grid(dims, [seed](double x, double y, double z) {
    const double interface_pos =
        0.5 + 0.12 * fractal_noise(x, y, 0.0, seed + 101, 4, 3.0, 0.5);
    const double d = (z - interface_pos) / 0.08;
    const double layer = std::exp(-d * d);
    const double turb = 0.5 + 0.5 * fractal_noise(x, y, z, seed, 5, 6.0, 0.5);
    return 1.0e-4 + 3.0e-3 * layer * turb;
  });
}

std::vector<double> miranda_density(Dims dims, uint64_t seed) {
  // Two fluids with a perturbed interface and a mixing zone: a tanh profile
  // through a noisy interface height plus in-layer turbulence.
  return fill_grid(dims, [seed](double x, double y, double z) {
    const double interface_pos =
        0.5 + 0.10 * fractal_noise(x, y, 0.0, seed + 31, 5, 4.0, 0.55);
    const double mix = std::tanh((z - interface_pos) / 0.05);
    const double turb = fractal_noise(x, y, z, seed, 6, 8.0, 0.5);
    return 1.5 + 1.0 * mix + 0.15 * turb * std::exp(-std::pow((z - interface_pos) / 0.15, 2));
  });
}

std::vector<double> miranda_velocity_x(Dims dims, uint64_t seed) {
  // Zero-mean turbulent velocity, broad spectrum.
  return fill_grid(dims, [seed](double x, double y, double z) {
    return 50.0 * fractal_noise(x, y, z, seed, 6, 5.0, 0.6);
  });
}

std::vector<double> s3d_temperature(Dims dims, uint64_t seed) {
  // Flame kernels: ambient 800 K, burned pockets near 2300 K with sharp
  // (but resolved) reaction fronts — the front steepness is what stresses
  // compressors on combustion data.
  const Kernels flames(6, seed, 0.8, 1.0, 0.08, 0.18);
  return fill_grid(dims, [&, seed](double x, double y, double z) {
    const double k = flames.eval(x, y, z);
    const double front = 1.0 / (1.0 + std::exp(-(k - 0.45) / 0.03));
    const double wrinkle = 0.04 * fractal_noise(x, y, z, seed + 3, 5, 12.0, 0.5);
    return 800.0 + 1500.0 * std::clamp(front + wrinkle * front, 0.0, 1.0);
  });
}

std::vector<double> s3d_ch4(Dims dims, uint64_t seed) {
  // Fuel mass fraction: consumed (≈0) inside burned pockets, ~0.2 outside,
  // complementary to the temperature field, with mild stratification.
  const Kernels flames(6, seed - 1, 0.8, 1.0, 0.08, 0.18);  // same layout family
  return fill_grid(dims, [&, seed](double x, double y, double z) {
    const double k = flames.eval(x, y, z);
    const double unburned = 1.0 - 1.0 / (1.0 + std::exp(-(k - 0.45) / 0.03));
    const double strat = 1.0 + 0.2 * fractal_noise(x, y, z, seed + 7, 4, 3.0, 0.5);
    return 0.2 * unburned * strat;
  });
}

std::vector<double> s3d_velocity_x(Dims dims, uint64_t seed) {
  // Shear layer plus turbulence (jet-in-crossflow-like).
  return fill_grid(dims, [seed](double x, double y, double z) {
    const double shear = 30.0 * std::tanh((y - 0.5) / 0.15);
    const double turb = 12.0 * fractal_noise(x, y, z, seed, 6, 6.0, 0.55);
    return shear + turb;
  });
}

std::vector<double> nyx_dark_matter_density(Dims dims, uint64_t seed) {
  // Log-normal base (exp of a Gaussian-ish fractal field) with dense halos:
  // the resulting field spans many orders of magnitude, like Nyx's baryon /
  // dark matter density outputs.
  const Kernels halos(40, seed + 17, 3.0, 8.0, 0.004, 0.02);
  return fill_grid(dims, [&, seed](double x, double y, double z) {
    const double g = fractal_noise(x, y, z, seed, 6, 3.0, 0.65);
    const double web = std::exp(2.8 * g);  // filamentary cosmic web
    return web + 50.0 * halos.eval(x, y, z);
  });
}

std::vector<double> nyx_velocity_x(Dims dims, uint64_t seed) {
  // Large-scale coherent flows with small-scale perturbations (km/s scale).
  return fill_grid(dims, [seed](double x, double y, double z) {
    const double bulk = 300.0 * fractal_noise(x, y, z, seed, 3, 1.5, 0.6);
    const double fine = 40.0 * fractal_noise(x, y, z, seed + 13, 4, 12.0, 0.5);
    return bulk + fine;
  });
}

std::vector<double> qmcpack_orbital(Dims dims, int orbital, uint64_t seed) {
  // A localized orbital: Gaussian envelopes around a few sites modulated by
  // plane waves whose frequency rises with the orbital index — higher
  // orbitals oscillate faster, exactly the property that makes the QMCPACK
  // data progressively harder to compress.
  const uint64_t s = seed + uint64_t(orbital) * 7919;
  const Kernels sites(3, s, 0.7, 1.0, 0.10, 0.22);
  Rng rng(s + 1);
  const double kx = rng.uniform(2.0, 5.0) + orbital % 5;
  const double ky = rng.uniform(2.0, 5.0) + (orbital / 5) % 5;
  const double kz = rng.uniform(2.0, 5.0) + (orbital / 25) % 5;
  const double phase = rng.uniform(0.0, kTwoPi);
  return fill_grid(dims, [&](double x, double y, double z) {
    const double env = sites.eval(x, y, z);
    const double wave = std::cos(kTwoPi * (kx * x + ky * y + kz * z) + phase);
    return env * wave;
  });
}

std::vector<double> lighthouse_2d(Dims dims, uint64_t seed) {
  // Natural-image stand-in for the Kodak Lighthouse shot: sky gradient,
  // a vertical tower with sharp edges, a picket fence (periodic vertical
  // edges), and grass texture. 2-D (dims.z is expected to be 1).
  return fill_grid(dims, [seed](double x, double y, double) {
    const double horizon = 0.55;
    double v;
    if (y < horizon) {
      v = 0.75 - 0.25 * y / horizon;  // sky gradient
      v += 0.05 * fractal_noise(x, y, 0.0, seed + 5, 3, 4.0, 0.5);  // clouds
      // lighthouse tower: sharp-edged vertical band with horizontal stripes
      if (std::fabs(x - 0.62) < 0.035 * (1.0 - 0.4 * y / horizon)) {
        v = (int(y * 24.0) % 2 == 0) ? 0.9 : 0.15;
      }
    } else {
      const double g = (y - horizon) / (1.0 - horizon);
      v = 0.35 + 0.20 * fractal_noise(x, y, 0.0, seed, 6, 40.0, 0.6);  // grass
      // picket fence near the bottom
      if (g > 0.55 && g < 0.8) {
        const bool picket = std::fmod(x * 28.0, 1.0) < 0.6;
        v = picket ? 0.85 : v * 0.6;
      }
    }
    return 255.0 * std::clamp(v, 0.0, 1.0);
  });
}

std::vector<double> make_field(const std::string& name, Dims dims, uint64_t seed) {
  if (name == "miranda_pressure") return miranda_pressure(dims, seed + 1);
  if (name == "miranda_viscosity") return miranda_viscosity(dims, seed + 2);
  if (name == "miranda_density") return miranda_density(dims, seed + 3);
  if (name == "miranda_velocity_x") return miranda_velocity_x(dims, seed + 4);
  if (name == "s3d_temperature") return s3d_temperature(dims, seed + 5);
  if (name == "s3d_ch4") return s3d_ch4(dims, seed + 6);
  if (name == "s3d_velocity_x") return s3d_velocity_x(dims, seed + 7);
  if (name == "nyx_dark_matter_density") return nyx_dark_matter_density(dims, seed + 8);
  if (name == "nyx_velocity_x") return nyx_velocity_x(dims, seed + 9);
  if (name == "qmcpack_orbitals") return qmcpack_orbital(dims, 0, seed + 10);
  if (name == "lighthouse") return lighthouse_2d(dims, seed + 11);
  if (name == "kolmogorov") return kolmogorov_turbulence(dims, seed + 12);
  throw std::invalid_argument("unknown synthetic field: " + name);
}

const std::vector<std::string>& field_names() {
  static const std::vector<std::string> names = {
      "miranda_pressure", "miranda_viscosity",       "miranda_density",
      "miranda_velocity_x", "s3d_temperature",       "s3d_ch4",
      "s3d_velocity_x",   "nyx_dark_matter_density", "nyx_velocity_x",
      "qmcpack_orbitals", "lighthouse",          "kolmogorov",
  };
  return names;
}

}  // namespace sperr::data
