#pragma once

// Spectral synthesis substrate: a self-contained radix-2 FFT and a Gaussian
// random field (GRF) generator with a prescribed isotropic power spectrum
// P(k) ~ k^exponent. Real turbulence data (the Miranda/JHU-style sets the
// paper evaluates on) has a Kolmogorov k^-5/3 energy spectrum; synthesizing
// stand-ins directly in the spectral domain gives the most faithful
// smoothness profile a synthetic field can have, complementing the cheaper
// octave-noise generators in synthetic.h.

#include <complex>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr::data {

/// In-place iterative radix-2 FFT; `a.size()` must be a power of two.
/// `inverse` applies the conjugate transform *and* the 1/N normalization.
void fft(std::vector<std::complex<double>>& a, bool inverse);

/// Separable 3-D FFT over a grid whose extents are all powers of two.
void fft3(std::vector<std::complex<double>>& grid, Dims dims, bool inverse);

/// Gaussian random field with isotropic power spectrum P(k) ~ k^exponent
/// (exponent < 0 = smooth/red, 0 = white). The field is generated on the
/// smallest power-of-two grid covering `dims`, cropped, and normalized to
/// zero mean and unit variance. Deterministic per seed.
std::vector<double> gaussian_random_field(Dims dims, double exponent,
                                          uint64_t seed);

/// Turbulence-like field with the Kolmogorov spectrum (energy E(k) ~ k^-5/3,
/// i.e. 3-D power spectral density P(k) ~ k^-11/3).
std::vector<double> kolmogorov_turbulence(Dims dims, uint64_t seed = 21);

}  // namespace sperr::data
