#include "data/spectral.h"

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace sperr::data {

namespace {

constexpr double kTwoPi = 6.283185307179586;

size_t next_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

void fft(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  if (n < 2) return;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 1.0 : -1.0) * kTwoPi / double(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse)
    for (auto& v : a) v /= double(n);
}

void fft3(std::vector<std::complex<double>>& grid, Dims dims, bool inverse) {
  std::vector<std::complex<double>> line;

  // Along x (contiguous).
  line.resize(dims.x);
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y) {
      const size_t base = dims.index(0, y, z);
      for (size_t x = 0; x < dims.x; ++x) line[x] = grid[base + x];
      fft(line, inverse);
      for (size_t x = 0; x < dims.x; ++x) grid[base + x] = line[x];
    }
  // Along y.
  if (dims.y > 1) {
    line.resize(dims.y);
    for (size_t z = 0; z < dims.z; ++z)
      for (size_t x = 0; x < dims.x; ++x) {
        for (size_t y = 0; y < dims.y; ++y) line[y] = grid[dims.index(x, y, z)];
        fft(line, inverse);
        for (size_t y = 0; y < dims.y; ++y) grid[dims.index(x, y, z)] = line[y];
      }
  }
  // Along z.
  if (dims.z > 1) {
    line.resize(dims.z);
    for (size_t y = 0; y < dims.y; ++y)
      for (size_t x = 0; x < dims.x; ++x) {
        for (size_t z = 0; z < dims.z; ++z) line[z] = grid[dims.index(x, y, z)];
        fft(line, inverse);
        for (size_t z = 0; z < dims.z; ++z) grid[dims.index(x, y, z)] = line[z];
      }
  }
}

std::vector<double> gaussian_random_field(Dims dims, double exponent,
                                          uint64_t seed) {
  const Dims work{next_pow2(dims.x), dims.y > 1 ? next_pow2(dims.y) : 1,
                  dims.z > 1 ? next_pow2(dims.z) : 1};

  // White Gaussian noise in real space, shaped in the spectral domain. This
  // sidesteps explicit Hermitian-symmetry bookkeeping: FFT(real noise) is
  // already symmetric, and scaling by a real filter preserves that.
  Rng rng(seed);
  std::vector<std::complex<double>> grid(work.total());
  for (auto& v : grid) v = {rng.gaussian(), 0.0};
  fft3(grid, work, false);

  // Amplitude filter: sqrt(P(k)) ~ k^(exponent/2), isotropic in the signed
  // frequency index (Nyquist-wrapped).
  auto freq = [](size_t i, size_t n) {
    const double f = double(i <= n / 2 ? i : n - i);
    return f / double(n);
  };
  for (size_t z = 0; z < work.z; ++z)
    for (size_t y = 0; y < work.y; ++y)
      for (size_t x = 0; x < work.x; ++x) {
        const double kx = freq(x, work.x);
        const double ky = work.y > 1 ? freq(y, work.y) : 0.0;
        const double kz = work.z > 1 ? freq(z, work.z) : 0.0;
        const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
        const size_t idx = work.index(x, y, z);
        if (k == 0.0) {
          grid[idx] = 0.0;  // zero-mean field
        } else {
          grid[idx] *= std::pow(k, exponent / 2.0);
        }
      }
  fft3(grid, work, true);

  // Crop to the requested extents, then normalize to unit variance.
  std::vector<double> out(dims.total());
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y)
      for (size_t x = 0; x < dims.x; ++x)
        out[dims.index(x, y, z)] = grid[work.index(x, y, z)].real();

  const FieldStats fs = compute_stats(out.data(), out.size());
  const double scale = fs.stddev() > 0 ? 1.0 / fs.stddev() : 1.0;
  for (auto& v : out) v = (v - fs.mean) * scale;
  return out;
}

std::vector<double> kolmogorov_turbulence(Dims dims, uint64_t seed) {
  // 3-D power spectral density exponent for Kolmogorov: E(k) ~ k^-5/3 and
  // P(k) = E(k) / (4 pi k^2) ~ k^-11/3.
  return gaussian_random_field(dims, -11.0 / 3.0, seed);
}

}  // namespace sperr::data
