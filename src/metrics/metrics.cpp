#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace sperr::metrics {

namespace {

template <class T>
Quality compare_impl(const T* orig, const T* recon, size_t n) {
  Quality q;
  if (n == 0) return q;

  FieldStats s;
  double sq_sum = 0.0;
  double max_err = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double o = double(orig[i]);
    s.add(o);
    const double e = o - double(recon[i]);
    sq_sum += e * e;
    max_err = std::max(max_err, std::fabs(e));
  }
  q.rmse = std::sqrt(sq_sum / double(n));
  q.max_pwe = max_err;
  q.range = s.range();
  q.sigma = s.stddev();
  const double denom = q.rmse > 0.0 ? q.rmse : 1e-300;
  q.psnr = 20.0 * std::log10(q.range > 0.0 ? q.range / denom : 1.0);
  return q;
}

}  // namespace

Quality compare(const double* orig, const double* recon, size_t n) {
  return compare_impl(orig, recon, n);
}

Quality compare(const float* orig, const float* recon, size_t n) {
  return compare_impl(orig, recon, n);
}

double accuracy_gain(double sigma, double rmse, double bpp) {
  const double floor = sigma * 1e-18;  // beyond double precision anyway
  const double e = std::max(rmse, floor);
  if (sigma <= 0.0) return -bpp;
  return std::log2(sigma / e) - bpp;
}

double snr_db(double sigma, double rmse) {
  if (rmse <= 0.0 || sigma <= 0.0) return 0.0;
  return 20.0 * std::log10(sigma / rmse);
}

double mean_ssim(const double* a, const double* b, Dims dims) {
  constexpr size_t kWin = 8;
  constexpr size_t kStride = 4;

  // Stabilizing constants scaled to the data range of `a`.
  const FieldStats fs = compute_stats(a, dims.total());
  const double range = fs.range() > 0.0 ? fs.range() : 1.0;
  const double c1 = (0.01 * range) * (0.01 * range);
  const double c2 = (0.03 * range) * (0.03 * range);

  double total = 0.0;
  size_t windows = 0;
  for (size_t z = 0; z < dims.z; ++z) {
    for (size_t y0 = 0; y0 + kWin <= dims.y || (y0 == 0 && dims.y < kWin); y0 += kStride) {
      for (size_t x0 = 0; x0 + kWin <= dims.x || (x0 == 0 && dims.x < kWin); x0 += kStride) {
        const size_t wy = std::min(kWin, dims.y - y0);
        const size_t wx = std::min(kWin, dims.x - x0);
        double ma = 0, mb = 0;
        const double cnt = double(wx * wy);
        for (size_t y = y0; y < y0 + wy; ++y)
          for (size_t x = x0; x < x0 + wx; ++x) {
            ma += a[dims.index(x, y, z)];
            mb += b[dims.index(x, y, z)];
          }
        ma /= cnt;
        mb /= cnt;
        double va = 0, vb = 0, cov = 0;
        for (size_t y = y0; y < y0 + wy; ++y)
          for (size_t x = x0; x < x0 + wx; ++x) {
            const double da = a[dims.index(x, y, z)] - ma;
            const double db = b[dims.index(x, y, z)] - mb;
            va += da * da;
            vb += db * db;
            cov += da * db;
          }
        va /= cnt;
        vb /= cnt;
        cov /= cnt;
        const double ssim = ((2 * ma * mb + c1) * (2 * cov + c2)) /
                            ((ma * ma + mb * mb + c1) * (va + vb + c2));
        total += ssim;
        ++windows;
        if (dims.x < kWin) break;
      }
      if (dims.y < kWin) break;
    }
  }
  return windows ? total / double(windows) : 1.0;
}

}  // namespace sperr::metrics
