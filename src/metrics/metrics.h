#pragma once

// Compression-quality metrics used throughout the evaluation:
//   * RMSE / PSNR / max point-wise error (the paper's quality axes),
//   * accuracy gain (paper §V-B, Eq. 2): gain = log2(sigma / E) - R, a
//     rate-and-error-combined figure of merit that flattens the 6.02 dB/bit
//     plateau of SNR plots,
//   * mean SSIM over 2-D slices (mentioned §VI-C as a domain-specific
//     alternative).

#include <cstddef>

#include "common/types.h"

namespace sperr::metrics {

struct Quality {
  double rmse = 0.0;
  double psnr = 0.0;     ///< dB, peak = data range of the original
  double max_pwe = 0.0;  ///< max |orig - recon|
  double range = 0.0;    ///< original data range
  double sigma = 0.0;    ///< original standard deviation
};

/// Compare a reconstruction against the original field.
Quality compare(const double* orig, const double* recon, size_t n);
Quality compare(const float* orig, const float* recon, size_t n);

/// Accuracy gain (Eq. 2): log2(sigma / rmse) - bpp. Returns -inf-ish very
/// negative values when rmse is 0 are avoided by clamping rmse to a tiny
/// floor (lossless reconstruction => gain is bounded by the bit budget).
double accuracy_gain(double sigma, double rmse, double bpp);

/// SNR (dB) relative to the signal's own standard deviation.
double snr_db(double sigma, double rmse);

/// Mean SSIM between two fields, computed per 2-D slice (z-major) with an
/// 8x8 sliding window (stride 4) and the standard stabilizing constants.
double mean_ssim(const double* a, const double* b, Dims dims);

}  // namespace sperr::metrics
