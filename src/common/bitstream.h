#pragma once

// Bit-level serialization used by every entropy-coding stage (SPECK, the
// outlier coder, Huffman). Bits are packed LSB-first into bytes so that a
// stream can be truncated at any byte boundary and remain a decodable prefix
// (the property SPECK's embedded coding relies on).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sperr {

/// Append-only bit writer. Bits are packed LSB-first within each byte.
class BitWriter {
 public:
  BitWriter() = default;

  void put(bool bit) {
    if (nbit_ % 8 == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= uint8_t(1u << (nbit_ % 8));
    ++nbit_;
  }

  /// Append `count` (<= 64) bits of `value`, least-significant bit first.
  /// Bits of `value` above `count` are ignored. Byte-at-a-time internally,
  /// so batching emission through this path (e.g. SPECK's refinement pass)
  /// costs ~1/8 of the equivalent put() loop.
  void put_bits(uint64_t value, unsigned count);

  /// Append a full 64-bit word, least-significant bit first.
  void put_word(uint64_t value) { put_bits(value, 64); }

  [[nodiscard]] size_t bit_count() const { return nbit_; }
  [[nodiscard]] size_t byte_count() const { return bytes_.size(); }

  /// Steal the packed bytes (trailing bits of the last byte are zero).
  [[nodiscard]] std::vector<uint8_t> take() { nbit_ = 0; return std::move(bytes_); }
  [[nodiscard]] const std::vector<uint8_t>& bytes() const { return bytes_; }

  void clear() { bytes_.clear(); nbit_ = 0; }

 private:
  std::vector<uint8_t> bytes_;
  size_t nbit_ = 0;
};

/// Sequential bit reader over an externally owned byte range. Reading past
/// the end does not throw: it returns 0-bits and latches `exhausted()`, which
/// lets embedded-stream decoders terminate exactly where the encoder stopped.
class BitReader {
 public:
  BitReader() = default;
  BitReader(const uint8_t* data, size_t nbytes, size_t nbits = SIZE_MAX)
      : data_(data), nbits_(nbits == SIZE_MAX ? nbytes * 8 : nbits) {}

  [[nodiscard]] bool get() {
    if (pos_ >= nbits_) {
      exhausted_ = true;
      return false;
    }
    const bool bit = (data_[pos_ / 8] >> (pos_ % 8)) & 1u;
    ++pos_;
    return bit;
  }

  /// Read `count` (<= 64) bits, least-significant first. Missing bits read
  /// as zero (latching exhausted(), like get()). Byte-at-a-time internally —
  /// the word-batched counterpart of get() for refinement-style bulk reads.
  [[nodiscard]] uint64_t get_bits(unsigned count);

  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] size_t bits_read() const { return pos_; }
  [[nodiscard]] size_t bits_left() const { return pos_ < nbits_ ? nbits_ - pos_ : 0; }

 private:
  const uint8_t* data_ = nullptr;
  size_t nbits_ = 0;
  size_t pos_ = 0;
  bool exhausted_ = false;
};

}  // namespace sperr
