#pragma once

// Bit-level serialization used by every entropy-coding stage (SPECK, the
// outlier coder, Huffman). Bits are packed LSB-first into bytes so that a
// stream can be truncated at any byte boundary and remain a decodable prefix
// (the property SPECK's embedded coding relies on).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sperr {

/// Append-only bit writer. Bits are packed LSB-first within each byte.
class BitWriter {
 public:
  BitWriter() = default;

  void put(bool bit) {
    if (nbit_ % 8 == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= uint8_t(1u << (nbit_ % 8));
    ++nbit_;
  }

  /// Append `count` (<= 64) bits of `value`, least-significant bit first.
  /// Bits of `value` above `count` are ignored. Byte-at-a-time internally,
  /// so batching emission through this path (e.g. SPECK's refinement pass)
  /// costs ~1/8 of the equivalent put() loop.
  void put_bits(uint64_t value, unsigned count);

  /// Append a full 64-bit word, least-significant bit first.
  void put_word(uint64_t value) { put_bits(value, 64); }

  [[nodiscard]] size_t bit_count() const { return nbit_; }
  [[nodiscard]] size_t byte_count() const { return bytes_.size(); }

  /// Steal the packed bytes (trailing bits of the last byte are zero).
  [[nodiscard]] std::vector<uint8_t> take() { nbit_ = 0; return std::move(bytes_); }
  [[nodiscard]] const std::vector<uint8_t>& bytes() const { return bytes_; }

  void clear() { bytes_.clear(); nbit_ = 0; }

 private:
  std::vector<uint8_t> bytes_;
  size_t nbit_ = 0;
};

/// Word-batched append-only bit writer with the same LSB-first packing as
/// BitWriter, built for entropy-coder hot loops: bits accumulate in a 64-bit
/// register and every call spills the completed whole bytes with one
/// unaligned 8-byte store into a geometrically grown buffer, so a
/// put_bits() call is a shift/or plus a store instead of BitWriter's
/// byte-at-a-time push_back loop. Producing the identical byte sequence as
/// BitWriter for the same put_bits sequence is a tested invariant.
class WordBitWriter {
 public:
  WordBitWriter() = default;

  /// Append `count` (<= 56) bits of `value`, least-significant bit first.
  /// Bits of `value` at or above `count` must be zero (callers pre-pack
  /// code + extra bits into one masked word; an unmasked stray bit would
  /// corrupt every later bit in the accumulator). Spilling whole bytes
  /// every call keeps the pending count <= 7 between calls, so 7 + 56
  /// never overflows the register.
  void put_bits(uint64_t value, unsigned count) {
    acc_ |= value << cnt_;
    cnt_ += count;
    nbit_ += count;
    const unsigned nbytes = cnt_ >> 3;  // <= 7 given the invariant above
    if (nbytes != 0) {
      if (pos_ + 8 > bytes_.size()) grow();
      // Byte-wise spill compiles to one unaligned store on little-endian
      // targets and stays format-correct on big-endian ones. The store is
      // always 8 bytes wide; only `nbytes` of them are finalized.
      uint8_t* p = bytes_.data() + pos_;
      for (unsigned i = 0; i < 8; ++i) p[i] = uint8_t(acc_ >> (8 * i));
      pos_ += nbytes;
      acc_ >>= 8 * nbytes;
      cnt_ &= 7;
    }
  }

  /// Append `count` zero bits (any count), batched through put_bits. The
  /// SPECK sorting sweep emits long runs of insignificant-set zeros this
  /// way instead of one put per set.
  void put_zeros(size_t count) {
    while (count >= 48) {
      put_bits(0, 48);
      count -= 48;
    }
    if (count) put_bits(0, unsigned(count));
  }

  /// Append `nbits` bits from an LSB-first packed byte buffer (the format
  /// finish() produces), 48 bits per put_bits call. This is how per-lane
  /// bit streams from a parallel sweep merge into the master stream in
  /// deterministic lane order.
  void append_bits(const uint8_t* bytes, size_t nbits) {
    size_t done = 0;
    while (nbits - done >= 48) {
      uint64_t v = 0;
      const size_t byte = done >> 3;  // done is a multiple of 48, so aligned
      for (unsigned i = 0; i < 6; ++i) v |= uint64_t(bytes[byte + i]) << (8 * i);
      put_bits(v, 48);
      done += 48;
    }
    while (done < nbits) {
      const unsigned take = unsigned(std::min<size_t>(8, nbits - done));
      const uint8_t mask = uint8_t((take < 8 ? (1u << take) : 256u) - 1u);
      put_bits(bytes[done >> 3] & mask, take);
      done += take;
    }
  }

  [[nodiscard]] size_t bit_count() const { return nbit_; }
  [[nodiscard]] size_t byte_count() const { return (nbit_ + 7) / 8; }

  /// Flush the accumulator tail and return the packed bytes (sized to
  /// ceil(bit_count / 8), trailing bits of the last byte zero). The writer
  /// stays reusable after clear().
  const std::vector<uint8_t>& finish();

  void clear() {
    pos_ = 0;
    acc_ = 0;
    cnt_ = 0;
    nbit_ = 0;
  }

 private:
  void grow();

  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;     ///< bytes of bytes_ holding finalized output
  uint64_t acc_ = 0;   ///< pending bits, LSB = oldest
  unsigned cnt_ = 0;   ///< pending bit count (<= 7 between calls)
  size_t nbit_ = 0;    ///< total bits written since clear()
};

/// Sequential bit reader over an externally owned byte range. Reading past
/// the end does not throw: it returns 0-bits and latches `exhausted()`, which
/// lets embedded-stream decoders terminate exactly where the encoder stopped.
class BitReader {
 public:
  BitReader() = default;
  BitReader(const uint8_t* data, size_t nbytes, size_t nbits = SIZE_MAX)
      : data_(data), nbits_(nbits == SIZE_MAX ? nbytes * 8 : nbits) {}

  [[nodiscard]] bool get() {
    if (pos_ >= nbits_) {
      exhausted_ = true;
      return false;
    }
    const bool bit = (data_[pos_ / 8] >> (pos_ % 8)) & 1u;
    ++pos_;
    return bit;
  }

  /// Read `count` (<= 64) bits, least-significant first. Missing bits read
  /// as zero (latching exhausted(), like get()). Byte-at-a-time internally —
  /// the word-batched counterpart of get() for refinement-style bulk reads.
  [[nodiscard]] uint64_t get_bits(unsigned count);

  /// Length of the run of zero bits starting at the cursor, capped at
  /// min(limit, bits_left()). Does not consume bits or latch exhausted():
  /// the SPECK decoder peeks the insignificant-set run, bulk-skips it, then
  /// resumes bit-by-bit at the first 1-bit (or stream end).
  [[nodiscard]] size_t peek_zero_run(size_t limit) const;

  /// Advance the cursor by `count` bits. Caller guarantees
  /// count <= bits_left() (peek_zero_run's clamp provides this).
  void skip(size_t count) { pos_ += count; }

  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] size_t bits_read() const { return pos_; }
  [[nodiscard]] size_t bits_left() const { return pos_ < nbits_ ? nbits_ - pos_ : 0; }

 private:
  const uint8_t* data_ = nullptr;
  size_t nbits_ = 0;
  size_t pos_ = 0;
  bool exhausted_ = false;
};

}  // namespace sperr
