#include "common/checksum.h"

#include <cstring>

namespace sperr {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

inline uint64_t rotl(uint64_t v, int r) { return (v << r) | (v >> (64 - r)); }

inline uint64_t read_u64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // all on-disk integers in this code base are little endian
}

inline uint32_t read_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t round64(uint64_t acc, uint64_t lane) {
  return rotl(acc + lane * kPrime2, 31) * kPrime1;
}

inline uint64_t merge_round(uint64_t acc, uint64_t lane) {
  acc ^= round64(0, lane);
  return acc * kPrime1 + kPrime4;
}

}  // namespace

uint64_t xxhash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const uint8_t* const stripe_end = end - 32;
    do {
      v1 = round64(v1, read_u64(p));
      v2 = round64(v2, read_u64(p + 8));
      v3 = round64(v3, read_u64(p + 16));
      v4 = round64(v4, read_u64(p + 24));
      p += 32;
    } while (p <= stripe_end);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += uint64_t(len);

  while (p + 8 <= end) {
    h ^= round64(0, read_u64(p));
    h = rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= uint64_t(read_u32(p)) * kPrime1;
    h = rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= uint64_t(*p) * kPrime5;
    h = rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace sperr
