#pragma once

// 64-bit non-cryptographic checksum for container integrity (the lossless
// back end stamps one per block so corruption is localized to a block index
// instead of poisoning the whole archive). The algorithm is XXH64,
// implemented from scratch against the published specification: four lanes
// of multiply-rotate over 32-byte stripes, a merge, then an avalanche
// finalizer. Throughput is a few bytes per cycle — negligible next to the
// entropy coding it guards.

#include <cstddef>
#include <cstdint>

namespace sperr {

/// XXH64 of `len` bytes at `data` (seeded variant; 0 is the default seed).
[[nodiscard]] uint64_t xxhash64(const void* data, size_t len, uint64_t seed = 0);

}  // namespace sperr
