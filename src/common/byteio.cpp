#include "common/byteio.h"

namespace sperr {

void put_u8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(uint8_t(v));
  out.push_back(uint8_t(v >> 8));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(uint8_t(v >> (8 * i)));
}

void put_f64(std::vector<uint8_t>& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

uint8_t ByteReader::u8() {
  if (pos_ + 1 > size_) { ok_ = false; return 0; }
  return data_[pos_++];
}

uint16_t ByteReader::u16() {
  if (pos_ + 2 > size_) { ok_ = false; return 0; }
  uint16_t v = uint16_t(data_[pos_]) | uint16_t(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t ByteReader::u32() {
  if (pos_ + 4 > size_) { ok_ = false; return 0; }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t ByteReader::u64() {
  if (pos_ + 8 > size_) { ok_ = false; return 0; }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() {
  const uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

const uint8_t* ByteReader::raw(size_t n) {
  if (pos_ + n > size_) { ok_ = false; return nullptr; }
  const uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

}  // namespace sperr
