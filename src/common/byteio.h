#pragma once

// Little-endian scalar (de)serialization for container headers. All on-disk
// integers in this code base are little endian regardless of host order.

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.h"

namespace sperr {

void put_u8(std::vector<uint8_t>& out, uint8_t v);
void put_u16(std::vector<uint8_t>& out, uint16_t v);
void put_u32(std::vector<uint8_t>& out, uint32_t v);
void put_u64(std::vector<uint8_t>& out, uint64_t v);
void put_f64(std::vector<uint8_t>& out, double v);

/// Cursor-based reader; sets `ok = false` (and returns 0) on overrun instead
/// of reading out of bounds.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  double f64();

  /// Raw view of the next `n` bytes (nullptr on overrun).
  const uint8_t* raw(size_t n);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] size_t pos() const { return pos_; }
  /// Underlying buffer (for checksumming already-consumed header bytes).
  [[nodiscard]] const uint8_t* base() const { return data_; }
  [[nodiscard]] size_t remaining() const { return pos_ <= size_ ? size_ - pos_ : 0; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sperr
