#pragma once

// Wall-clock stopwatch for the pipeline-stage timing experiments (Figs 6, 7,
// 10). steady_clock so timings are monotone under NTP adjustments.

#include <chrono>

namespace sperr {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sperr
