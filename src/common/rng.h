#pragma once

// Deterministic, seedable PRNG (xoshiro256++) so synthetic data sets and
// property tests reproduce bit-for-bit across platforms. <random> engines and
// distributions are implementation-defined; we avoid them for data that
// benchmarks depend on.

#include <cmath>
#include <cstdint>

namespace sperr {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return double(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  uint64_t below(uint64_t n) { return n ? next() % n : 0; }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double gaussian() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static constexpr uint64_t rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace sperr
