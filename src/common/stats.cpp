#include "common/stats.h"

#include <cmath>

namespace sperr {

double FieldStats::stddev() const {
  return std::sqrt(variance());
}

}  // namespace sperr
