#pragma once

// Deterministic fault injection for robustness testing. Given a byte buffer
// and a table of "slices" (interesting byte ranges — e.g. the per-chunk
// streams of a SPERR container, or the blocks of a lossless stream), a seed
// derives a reproducible set of faults which can then be applied to a copy
// of the buffer. Four fault families model the common storage failure
// modes: flipped bits and corrupted bursts inside a slice, tail truncation,
// slice duplication (an insertion that shifts everything behind it), and
// slice content swaps (reordering). The planner knows nothing about
// container formats — callers supply the slice table — so it lives in
// common/ below every codec layer.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sperr::faultinject {

/// A byte range of the target buffer that faults may be aimed at.
struct ByteRange {
  size_t offset = 0;
  size_t length = 0;
};

enum class FaultKind : uint8_t {
  bit_flip,         ///< XOR one bit somewhere inside the target slice
  byte_burst,       ///< overwrite `length` bytes of the target slice with noise
  zero_range,       ///< zero `length` bytes of the target slice
  truncate_tail,    ///< drop `length` bytes from the end of the buffer
  duplicate_slice,  ///< re-insert a copy of the target slice right after it
  swap_slices,      ///< exchange the byte contents of slices `target` and `other`
};

struct Fault {
  FaultKind kind = FaultKind::bit_flip;
  uint32_t target = 0;  ///< slice index the fault lands in
  uint32_t other = 0;   ///< swap partner (swap_slices only)
  size_t offset = 0;    ///< byte offset within the target slice
  size_t length = 0;    ///< burst/zero/truncate extent in bytes
  uint8_t mask = 0;     ///< bit_flip XOR mask / burst noise seed
};

/// Human-readable one-liner ("bit_flip slice 3 +17 mask 0x40") for logs.
[[nodiscard]] std::string to_string(const Fault& f);

/// Derive `count` faults from `seed`. Content faults (bit_flip, byte_burst,
/// zero_range) come first and at most one structural fault (truncate_tail,
/// duplicate_slice, swap_slices) is planned, last, so every fault applies at
/// well-defined offsets of the original layout. Zero-length slices are never
/// targeted; the result is empty iff no slice has any bytes.
[[nodiscard]] std::vector<Fault> plan(uint64_t seed, size_t count,
                                      const std::vector<ByteRange>& slices,
                                      size_t buffer_size);

/// Apply a fault plan (built by plan() over the same slice table) to a copy
/// of the buffer. Deterministic: same inputs, same output bytes.
[[nodiscard]] std::vector<uint8_t> apply(const uint8_t* data, size_t size,
                                         const std::vector<ByteRange>& slices,
                                         const std::vector<Fault>& faults);

/// Ground truth for detectors: the indices of slices whose stored bytes the
/// plan changed, moved, or cut (sorted, unique). Computed by applying the
/// plan and diffing each slice region, so it is exact for any fault mix.
[[nodiscard]] std::vector<size_t> damaged_slices(const uint8_t* data, size_t size,
                                                 const std::vector<ByteRange>& slices,
                                                 const std::vector<Fault>& faults);

}  // namespace sperr::faultinject
