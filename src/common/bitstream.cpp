#include "common/bitstream.h"

namespace sperr {

void BitWriter::put_bits(uint64_t value, unsigned count) {
  for (unsigned i = 0; i < count; ++i) put((value >> i) & 1u);
}

uint64_t BitReader::get_bits(unsigned count) {
  uint64_t v = 0;
  for (unsigned i = 0; i < count; ++i)
    if (get()) v |= uint64_t(1) << i;
  return v;
}

}  // namespace sperr
