#include "common/bitstream.h"

#include <algorithm>

namespace sperr {

void BitWriter::put_bits(uint64_t value, unsigned count) {
  if (count == 0) return;
  if (count < 64) value &= (uint64_t(1) << count) - 1;
  const unsigned used = unsigned(nbit_ % 8);
  nbit_ += count;
  if (used != 0) {
    // Top up the partially filled last byte first.
    bytes_.back() |= uint8_t(value << used);
    const unsigned space = 8 - used;
    if (count <= space) return;
    value >>= space;
    count -= space;
  }
  // Byte-aligned from here: emit whole bytes, then the masked remainder
  // (so trailing bits of the last byte stay zero, as put() guarantees).
  while (count >= 8) {
    bytes_.push_back(uint8_t(value));
    value >>= 8;
    count -= 8;
  }
  if (count != 0) bytes_.push_back(uint8_t(value));
}

const std::vector<uint8_t>& WordBitWriter::finish() {
  // Spill the (< 64) pending bits a byte at a time, then trim the buffer to
  // exactly ceil(nbit_ / 8) so trailing garbage from a previous, longer use
  // of this writer can never leak into the output.
  while (cnt_ > 0) {
    if (pos_ + 1 > bytes_.size()) grow();
    bytes_[pos_++] = uint8_t(acc_);
    acc_ >>= 8;
    cnt_ = cnt_ > 8 ? cnt_ - 8 : 0;
  }
  bytes_.resize((nbit_ + 7) / 8);
  return bytes_;
}

void WordBitWriter::grow() {
  bytes_.resize(std::max<size_t>(256, bytes_.size() * 2));
}

size_t BitReader::peek_zero_run(size_t limit) const {
  const size_t avail = pos_ < nbits_ ? nbits_ - pos_ : 0;
  limit = std::min(limit, avail);
  size_t run = 0;
  size_t p = pos_;
  while (run < limit) {
    const unsigned off = unsigned(p % 8);
    const unsigned chunk = unsigned(std::min<size_t>(8 - off, limit - run));
    const unsigned window = (unsigned(data_[p / 8]) >> off) & ((1u << chunk) - 1u);
    if (window != 0) {
      // First 1-bit inside the window ends the run.
      unsigned z = 0;
      while (((window >> z) & 1u) == 0) ++z;
      return run + z;
    }
    run += chunk;
    p += chunk;
  }
  return run;
}

uint64_t BitReader::get_bits(unsigned count) {
  if (count == 0) return 0;
  const size_t avail = pos_ < nbits_ ? nbits_ - pos_ : 0;
  const unsigned take = count <= avail ? count : unsigned(std::min<size_t>(avail, 64));
  if (take < count) exhausted_ = true;  // missing bits read as zero
  uint64_t v = 0;
  unsigned got = 0;
  size_t p = pos_;
  while (got < take) {
    const unsigned off = unsigned(p % 8);
    const unsigned chunk = std::min(8 - off, take - got);
    const unsigned bits = (unsigned(data_[p / 8]) >> off) & ((1u << chunk) - 1u);
    v |= uint64_t(bits) << got;
    got += chunk;
    p += chunk;
  }
  pos_ += take;
  return v;
}

}  // namespace sperr
