#pragma once

// Packed per-element bit flags. Bitplane coders track per-coefficient state
// (signs, significance marks) for multi-million-element grids; a
// byte-per-flag vector wastes 8x the cache footprint of a packed bitset.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sperr {

/// Fixed-size packed bitset with word access, sized at runtime.
class PackedBits {
 public:
  PackedBits() = default;
  explicit PackedBits(size_t n) { assign(n); }

  /// Resize to `n` bits, all cleared.
  void assign(size_t n) {
    n_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  [[nodiscard]] size_t size() const { return n_; }

  [[nodiscard]] bool get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(size_t i) { words_[i >> 6] |= uint64_t(1) << (i & 63); }
  void set(size_t i, bool v) {
    const uint64_t mask = uint64_t(1) << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Number of set bits.
  [[nodiscard]] size_t count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += size_t(std::popcount(w));
    return c;
  }

 private:
  std::vector<uint64_t> words_;
  size_t n_ = 0;
};

}  // namespace sperr
